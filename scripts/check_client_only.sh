#!/usr/bin/env bash
# Examples and commands must reach the sharded engine through the public
# txdel/client facade — repro/internal/engine is an implementation detail.
#
# Thin wrapper kept for its entry points (Makefile, CI, muscle memory):
# the check itself is txgc-lint's layering analyzer, which walks the full
# import DAG — transitive chains, dot- and blank imports included — where
# this script's previous grep saw only literal quoted strings.
set -euo pipefail
cd "$(dirname "$0")/.."

go run ./cmd/txgc-lint -only layering ./...
echo "check_client_only: OK (txgc-lint layering invariants hold)"
