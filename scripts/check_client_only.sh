#!/usr/bin/env bash
# Examples and commands must reach the sharded engine through the public
# txdel/client facade — repro/internal/engine is an implementation detail.
# Fails if any example or cmd imports it.
set -euo pipefail
cd "$(dirname "$0")/.."

bad=$(grep -rn '"repro/internal/engine"' examples cmd --include='*.go' || true)
if [ -n "$bad" ]; then
    echo "check_client_only: examples/cmd must import repro/txdel/client, not repro/internal/engine:" >&2
    echo "$bad" >&2
    exit 1
fi
echo "check_client_only: OK (no example or cmd imports repro/internal/engine)"
