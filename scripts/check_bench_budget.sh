#!/bin/sh
# Runs the engine throughput benchmark (greedy-c1, 4 shards) with -benchmem
# and fails if allocs/op regresses above the budget in bench_budget.txt.
set -eu
cd "$(dirname "$0")/.."

budget=$(awk '/^max_allocs_per_op/ {print $2}' bench_budget.txt)
[ -n "$budget" ] || { echo "check_bench_budget: no max_allocs_per_op in bench_budget.txt" >&2; exit 2; }

out=$(go test -run '^$' -bench 'BenchmarkEngineThroughput/shards=4/policy=greedy-c1$' \
	-benchtime 3000x -benchmem ./internal/engine/)
echo "$out"

allocs=$(echo "$out" | awk '/policy=greedy-c1/ {for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}' | head -1)
[ -n "$allocs" ] || { echo "check_bench_budget: could not parse allocs/op from benchmark output" >&2; exit 2; }

if [ "$allocs" -gt "$budget" ]; then
	echo "check_bench_budget: FAIL: $allocs allocs/op exceeds budget of $budget" >&2
	exit 1
fi
echo "check_bench_budget: OK: $allocs allocs/op within budget of $budget"
