#!/bin/sh
# Runs the engine hot-path benchmarks with -benchmem and fails if allocs/op
# regresses above the budgets in bench_budget.txt: the partition-local path
# (BenchmarkEngineThroughput, greedy-c1, 4 shards), the cross-partition
# 2PC path (BenchmarkEngineCrossFrac at CrossFrac=0.05), the telemetry
# emitter overhead (BenchmarkEngineEmitOverhead on vs off, ns/op delta),
# and the retention governor's peak retained count under attack
# (BenchmarkEngineRetentionGoverned, peak-kept vs max_peak_kept).
set -eu
cd "$(dirname "$0")/.."

budget=$(awk '/^max_allocs_per_op/ {print $2}' bench_budget.txt)
cross_budget=$(awk '/^max_cross_allocs_per_op/ {print $2}' bench_budget.txt)
emit_budget=$(awk '/^max_emit_overhead_pct/ {print $2}' bench_budget.txt)
kept_budget=$(awk '/^max_peak_kept/ {print $2}' bench_budget.txt)
[ -n "$budget" ] || { echo "check_bench_budget: no max_allocs_per_op in bench_budget.txt" >&2; exit 2; }
[ -n "$cross_budget" ] || { echo "check_bench_budget: no max_cross_allocs_per_op in bench_budget.txt" >&2; exit 2; }
[ -n "$emit_budget" ] || { echo "check_bench_budget: no max_emit_overhead_pct in bench_budget.txt" >&2; exit 2; }
[ -n "$kept_budget" ] || { echo "check_bench_budget: no max_peak_kept in bench_budget.txt" >&2; exit 2; }

out=$(go test -run '^$' -bench 'BenchmarkEngineThroughput/shards=4/policy=greedy-c1$|BenchmarkEngineCrossFrac/cross=5' \
	-benchtime 3000x -benchmem ./internal/engine/)
echo "$out"

parse_allocs() {
	echo "$out" | awk -v pat="$1" '$0 ~ pat {for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}' | head -1
}

allocs=$(parse_allocs 'policy=greedy-c1')
[ -n "$allocs" ] || { echo "check_bench_budget: could not parse local allocs/op from benchmark output" >&2; exit 2; }
if [ "$allocs" -gt "$budget" ]; then
	echo "check_bench_budget: FAIL: local path $allocs allocs/op exceeds budget of $budget" >&2
	exit 1
fi
echo "check_bench_budget: OK: local path $allocs allocs/op within budget of $budget"

cross_allocs=$(parse_allocs 'cross=5')
[ -n "$cross_allocs" ] || { echo "check_bench_budget: could not parse cross allocs/op from benchmark output" >&2; exit 2; }
if [ "$cross_allocs" -gt "$cross_budget" ]; then
	echo "check_bench_budget: FAIL: cross path $cross_allocs allocs/op exceeds budget of $cross_budget" >&2
	exit 1
fi
echo "check_bench_budget: OK: cross path $cross_allocs allocs/op within budget of $cross_budget"

# Emitter overhead: run the on/off pair a few times and compare the best
# ns/op of each variant (min-of-3 suppresses scheduler noise; the budget is
# a regression fence, not a microbenchmark paper).
emit_out=$(go test -run '^$' -bench 'BenchmarkEngineEmitOverhead' \
	-benchtime 5000x -count=3 -benchmem ./internal/engine/)
echo "$emit_out"

min_nsop() {
	echo "$emit_out" | awk -v pat="$1" '$0 ~ pat {for (i = 2; i <= NF; i++) if ($i == "ns/op") print $(i-1)}' |
		sort -n | head -1
}

off=$(min_nsop 'emitter=off')
on=$(min_nsop 'emitter=on')
[ -n "$off" ] && [ -n "$on" ] || { echo "check_bench_budget: could not parse emitter ns/op from benchmark output" >&2; exit 2; }
overhead=$(awk -v off="$off" -v on="$on" 'BEGIN {printf "%.1f", (on - off) * 100 / off}')
if awk -v o="$overhead" -v b="$emit_budget" 'BEGIN {exit !(o > b)}'; then
	echo "check_bench_budget: FAIL: emitter overhead ${overhead}% (off ${off} ns/op, on ${on} ns/op) exceeds budget of ${emit_budget}%" >&2
	exit 1
fi
emit_allocs=$(echo "$emit_out" | awk '/emitter=on/ {for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}' | sort -n | tail -1)
[ -n "$emit_allocs" ] || { echo "check_bench_budget: could not parse emitter=on allocs/op" >&2; exit 2; }
if [ "$emit_allocs" -gt "$budget" ]; then
	echo "check_bench_budget: FAIL: emitter=on path $emit_allocs allocs/op exceeds budget of $budget (Emit must not allocate)" >&2
	exit 1
fi
echo "check_bench_budget: OK: emitter overhead ${overhead}% within budget of ${emit_budget}%, emitter=on $emit_allocs allocs/op within budget of $budget"

# Retention governor: peak retained count while the adversarial leak
# family runs must stay under max_peak_kept — the bounded-retention SLO as
# a build gate, not just a soak assertion.
kept_out=$(go test -run '^$' -bench 'BenchmarkEngineRetentionGoverned' \
	-benchtime 2000x ./internal/engine/)
echo "$kept_out"

peak=$(echo "$kept_out" | awk '/BenchmarkEngineRetentionGoverned/ {for (i = 2; i <= NF; i++) if ($i == "peak-kept") print $(i-1)}' | head -1)
[ -n "$peak" ] || { echo "check_bench_budget: could not parse peak-kept from benchmark output" >&2; exit 2; }
peak_int=${peak%.*}
if [ "$peak_int" -gt "$kept_budget" ]; then
	echo "check_bench_budget: FAIL: governed peak retention $peak exceeds budget of $kept_budget" >&2
	exit 1
fi
echo "check_bench_budget: OK: governed peak retention $peak within budget of $kept_budget"
