#!/bin/sh
# Runs the engine hot-path benchmarks with -benchmem and fails if they
# regress above the budgets in bench_budget.txt: the partition-local path
# (BenchmarkEngineThroughput, greedy-c1 and nogc, 4 shards), the
# cross-partition 2PC path (BenchmarkEngineCrossFrac at CrossFrac=0.05),
# the telemetry emitter overhead (BenchmarkEngineEmitOverhead on vs off,
# ns/op delta), the retention governor's peak retained count under attack
# (BenchmarkEngineRetentionGoverned, peak-kept vs max_peak_kept), the
# durability layer's WAL overhead at the default fsync batch
# (BenchmarkEngineWALOverhead on vs off, ns/op delta vs
# max_wal_overhead_ns), and the submission path's p99 per-step latency at
# two cores (BenchmarkEngineParallelScaling, p99-step-ns vs
# max_p99_step_ns).
#
# Usage: check_bench_budget.sh [all|alloc|scale]
#   all   (default) every gate
#   alloc allocation + emitter + retention gates only
#   scale the -cpu 2 p99 latency gate only (the CI bench-scale job)
set -eu
cd "$(dirname "$0")/.."

section=${1:-all}
case "$section" in
all | alloc | scale) ;;
*)
	echo "usage: $0 [all|alloc|scale]" >&2
	exit 2
	;;
esac

budget=$(awk '/^max_allocs_per_op/ {print $2}' bench_budget.txt)
nogc_budget=$(awk '/^max_nogc_allocs_per_op/ {print $2}' bench_budget.txt)
cross_budget=$(awk '/^max_cross_allocs_per_op/ {print $2}' bench_budget.txt)
emit_budget=$(awk '/^max_emit_overhead_ns/ {print $2}' bench_budget.txt)
kept_budget=$(awk '/^max_peak_kept/ {print $2}' bench_budget.txt)
p99_budget=$(awk '/^max_p99_step_ns/ {print $2}' bench_budget.txt)
wal_budget=$(awk '/^max_wal_overhead_ns/ {print $2}' bench_budget.txt)
[ -n "$budget" ] || { echo "check_bench_budget: no max_allocs_per_op in bench_budget.txt" >&2; exit 2; }
[ -n "$nogc_budget" ] || { echo "check_bench_budget: no max_nogc_allocs_per_op in bench_budget.txt" >&2; exit 2; }
[ -n "$cross_budget" ] || { echo "check_bench_budget: no max_cross_allocs_per_op in bench_budget.txt" >&2; exit 2; }
[ -n "$emit_budget" ] || { echo "check_bench_budget: no max_emit_overhead_ns in bench_budget.txt" >&2; exit 2; }
[ -n "$kept_budget" ] || { echo "check_bench_budget: no max_peak_kept in bench_budget.txt" >&2; exit 2; }
[ -n "$p99_budget" ] || { echo "check_bench_budget: no max_p99_step_ns in bench_budget.txt" >&2; exit 2; }
[ -n "$wal_budget" ] || { echo "check_bench_budget: no max_wal_overhead_ns in bench_budget.txt" >&2; exit 2; }

if [ "$section" != "scale" ]; then
	out=$(go test -run '^$' -bench 'BenchmarkEngineThroughput/shards=4/(policy=greedy-c1|policy=nogc)$|BenchmarkEngineCrossFrac/cross=5' \
		-benchtime 3000x -benchmem ./internal/engine/)
	echo "$out"

	parse_allocs() {
		echo "$out" | awk -v pat="$1" '$0 ~ pat {for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}' | head -1
	}

	allocs=$(parse_allocs 'policy=greedy-c1')
	[ -n "$allocs" ] || { echo "check_bench_budget: could not parse local allocs/op from benchmark output" >&2; exit 2; }
	if [ "$allocs" -gt "$budget" ]; then
		echo "check_bench_budget: FAIL: local path $allocs allocs/op exceeds budget of $budget" >&2
		exit 1
	fi
	echo "check_bench_budget: OK: local path $allocs allocs/op within budget of $budget"

	nogc_allocs=$(parse_allocs 'policy=nogc')
	[ -n "$nogc_allocs" ] || { echo "check_bench_budget: could not parse nogc allocs/op from benchmark output" >&2; exit 2; }
	if [ "$nogc_allocs" -gt "$nogc_budget" ]; then
		echo "check_bench_budget: FAIL: nogc path $nogc_allocs allocs/op exceeds budget of $nogc_budget (plumbing regression — nogc's retained-state allocations are already priced in)" >&2
		exit 1
	fi
	echo "check_bench_budget: OK: nogc path $nogc_allocs allocs/op within budget of $nogc_budget"

	cross_allocs=$(parse_allocs 'cross=5')
	[ -n "$cross_allocs" ] || { echo "check_bench_budget: could not parse cross allocs/op from benchmark output" >&2; exit 2; }
	if [ "$cross_allocs" -gt "$cross_budget" ]; then
		echo "check_bench_budget: FAIL: cross path $cross_allocs allocs/op exceeds budget of $cross_budget" >&2
		exit 1
	fi
	echo "check_bench_budget: OK: cross path $cross_allocs allocs/op within budget of $cross_budget"

	# Emitter overhead: the gate is the median of per-invocation (on - off)
	# ns/op deltas over five paired runs. Pairing matters: within one `go
	# test` invocation the two variants run back-to-back, so slow drift on a
	# shared host (thermal, noisy neighbors) cancels out of the delta, where
	# comparing a min or median of independent pools flaps by 15%. The
	# budget is absolute ns (see bench_budget.txt) so speeding up the rest
	# of the hot path cannot fail this gate.
	emit_deltas=""
	emit_allocs=0
	for _i in 1 2 3 4 5; do
		emit_out=$(go test -run '^$' -bench 'BenchmarkEngineEmitOverhead' \
			-benchtime 10000x -benchmem ./internal/engine/)
		echo "$emit_out" | grep BenchmarkEngine || true
		off=$(echo "$emit_out" | awk '/emitter=off/ {for (i = 2; i <= NF; i++) if ($i == "ns/op") print $(i-1)}' | head -1)
		on=$(echo "$emit_out" | awk '/emitter=on/ {for (i = 2; i <= NF; i++) if ($i == "ns/op") print $(i-1)}' | head -1)
		[ -n "$off" ] && [ -n "$on" ] || { echo "check_bench_budget: could not parse emitter ns/op from benchmark output" >&2; exit 2; }
		emit_deltas="$emit_deltas $((on - off))"
		a=$(echo "$emit_out" | awk '/emitter=on/ {for (i = 2; i <= NF; i++) if ($i == "allocs/op") print $(i-1)}' | head -1)
		[ -n "$a" ] || { echo "check_bench_budget: could not parse emitter=on allocs/op" >&2; exit 2; }
		[ "$a" -gt "$emit_allocs" ] && emit_allocs=$a
	done
	delta=$(echo "$emit_deltas" | tr ' ' '\n' | grep -v '^$' | sort -n | awk '{v[NR] = $1} END {print v[int((NR + 1) / 2)]}')
	if [ "$delta" -gt "$emit_budget" ]; then
		echo "check_bench_budget: FAIL: emitter overhead ${delta} ns/op (median of paired deltas:${emit_deltas}) exceeds budget of ${emit_budget} ns" >&2
		exit 1
	fi
	if [ "$emit_allocs" -gt "$budget" ]; then
		echo "check_bench_budget: FAIL: emitter=on path $emit_allocs allocs/op exceeds budget of $budget (Emit must not allocate)" >&2
		exit 1
	fi
	echo "check_bench_budget: OK: emitter overhead ${delta} ns/op (median of paired deltas:${emit_deltas}) within budget of ${emit_budget} ns, emitter=on $emit_allocs allocs/op within budget of $budget"

	# WAL overhead: same paired-delta methodology as the emitter gate — the
	# wal=on-fsync=64 and wal=off variants run back-to-back within one `go
	# test` invocation, so host drift cancels out of the delta. The budget
	# is absolute ns and dominated by real fsync latency (see
	# bench_budget.txt); three pairs suffice because the signal a regression
	# leaves (lost fsync batching, per-record allocation storms) is a
	# multiple of the budget, not a flicker.
	wal_deltas=""
	for _i in 1 2 3; do
		wal_out=$(go test -run '^$' -bench 'BenchmarkEngineWALOverhead/(wal=off|wal=on-fsync=64)$' \
			-benchtime 3000x -benchmem ./internal/engine/)
		echo "$wal_out" | grep BenchmarkEngine || true
		wal_off=$(echo "$wal_out" | awk '/wal=off/ {for (i = 2; i <= NF; i++) if ($i == "ns/op") print $(i-1)}' | head -1)
		wal_on=$(echo "$wal_out" | awk '/wal=on/ {for (i = 2; i <= NF; i++) if ($i == "ns/op") print $(i-1)}' | head -1)
		[ -n "$wal_off" ] && [ -n "$wal_on" ] || { echo "check_bench_budget: could not parse WAL ns/op from benchmark output" >&2; exit 2; }
		wal_deltas="$wal_deltas $((wal_on - wal_off))"
	done
	wal_delta=$(echo "$wal_deltas" | tr ' ' '\n' | grep -v '^$' | sort -n | awk '{v[NR] = $1} END {print v[int((NR + 1) / 2)]}')
	if [ "$wal_delta" -gt "$wal_budget" ]; then
		echo "check_bench_budget: FAIL: WAL overhead ${wal_delta} ns/op (median of paired deltas:${wal_deltas}) exceeds budget of ${wal_budget} ns" >&2
		exit 1
	fi
	echo "check_bench_budget: OK: WAL overhead ${wal_delta} ns/op (median of paired deltas:${wal_deltas}) within budget of ${wal_budget} ns"

	# Retention governor: peak retained count while the adversarial leak
	# family runs must stay under max_peak_kept — the bounded-retention SLO as
	# a build gate, not just a soak assertion.
	kept_out=$(go test -run '^$' -bench 'BenchmarkEngineRetentionGoverned' \
		-benchtime 2000x ./internal/engine/)
	echo "$kept_out"

	peak=$(echo "$kept_out" | awk '/BenchmarkEngineRetentionGoverned/ {for (i = 2; i <= NF; i++) if ($i == "peak-kept") print $(i-1)}' | head -1)
	[ -n "$peak" ] || { echo "check_bench_budget: could not parse peak-kept from benchmark output" >&2; exit 2; }
	peak_int=${peak%.*}
	if [ "$peak_int" -gt "$kept_budget" ]; then
		echo "check_bench_budget: FAIL: governed peak retention $peak exceeds budget of $kept_budget" >&2
		exit 1
	fi
	echo "check_bench_budget: OK: governed peak retention $peak within budget of $kept_budget"
fi

if [ "$section" = "all" ] || [ "$section" = "scale" ]; then
	# Tail latency: the scaling benchmark's client-observed p99 per-step
	# latency at two cores on the canonical cross mix. min-of-3 because p99
	# on shared CI runners eats scheduler preemption tails; the budget is
	# set ~10x measured and catches wake-protocol bugs (lost wakes park the
	# sender for the full claimSleep ladder — a 100x signal, not 2x).
	scale_out=$(go test -run '^$' -bench 'BenchmarkEngineParallelScaling/cross=5' \
		-benchtime 20000x -count=3 -cpu 2 ./internal/engine/)
	echo "$scale_out"

	p99=$(echo "$scale_out" | awk '/BenchmarkEngineParallelScaling/ {for (i = 2; i <= NF; i++) if ($i == "p99-step-ns") print $(i-1)}' |
		sort -n | head -1)
	[ -n "$p99" ] || { echo "check_bench_budget: could not parse p99-step-ns from benchmark output" >&2; exit 2; }
	p99_int=${p99%.*}
	if [ "$p99_int" -gt "$p99_budget" ]; then
		echo "check_bench_budget: FAIL: submission p99 ${p99} ns/step at -cpu 2 exceeds budget of ${p99_budget}" >&2
		exit 1
	fi
	echo "check_bench_budget: OK: submission p99 ${p99} ns/step at -cpu 2 within budget of ${p99_budget}"
fi
