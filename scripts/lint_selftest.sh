#!/usr/bin/env bash
# Self-test for the lint gate: seed one violation per critical analyzer
# into a scratch package and assert txgc-lint exits nonzero naming the
# right diagnostic. This is the CI job's proof that the gate can actually
# fail — a lint step that always passes is indistinguishable from one
# that checks nothing. (The golden tests in internal/lint cover analyzer
# behavior in depth; this covers the installed binary end to end.)
set -euo pipefail
cd "$(dirname "$0")/.."

seed_layering=examples/lintselftest
seed_hotpath=internal/lintselftest
cleanup() { rm -rf "$seed_layering" "$seed_hotpath"; }
trap cleanup EXIT

fail() {
    echo "lint_selftest: $1" >&2
    exit 1
}

# 1. Seeded layering violation: an example importing internal/engine
#    directly must trip the client-facade rule.
mkdir -p "$seed_layering"
cat > "$seed_layering/main.go" <<'EOF'
// Seeded by scripts/lint_selftest.sh; never committed.
package main

import "repro/internal/engine"

func main() { _ = engine.Config{} }
EOF
out=$(go run ./cmd/txgc-lint -only layering ./... 2>&1) \
    && fail "seeded layering violation was NOT caught"
echo "$out" | grep -q "layering-client-facade" \
    || fail "expected layering-client-facade in output, got: $out"
rm -rf "$seed_layering"
echo "lint_selftest: seeded layering violation caught"

# 2. Seeded hotpath allocation: an annotated function with a map literal.
mkdir -p "$seed_hotpath"
cat > "$seed_hotpath/seed.go" <<'EOF'
// Seeded by scripts/lint_selftest.sh; never committed.
package lintselftest

//txgc:hotpath
func seeded() int {
	m := map[int]int{}
	return len(m)
}
EOF
out=$(go run ./cmd/txgc-lint -only hotpath "./$seed_hotpath" 2>&1) \
    && fail "seeded hotpath allocation was NOT caught"
echo "$out" | grep -q "hotpath-alloc" \
    || fail "expected hotpath-alloc in output, got: $out"
rm -rf "$seed_hotpath"
echo "lint_selftest: seeded hotpath allocation caught"

# 3. With the seeds removed, the gate must pass again.
go run ./cmd/txgc-lint ./... || fail "clean tree failed lint after seed removal"
echo "lint_selftest: OK"
