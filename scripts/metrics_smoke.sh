#!/usr/bin/env bash
# End-to-end smoke test of the observability surface: start txgc-serve with
# -metrics-addr and -capture, run a small workload over the v2 wire
# protocol, scrape /metrics, and check that the endpoint exposes the
# expected counters/gauges and that the capture file holds both event and
# step records. A second phase smokes the durability surface: a server on
# -data-dir exposes the WAL counters, survives kill -9, and reports the
# recovered state when restarted on the same directory.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${METRICS_ADDR:-127.0.0.1:9109}"
CAPTURE="$(mktemp /tmp/txgc-capture.XXXXXX.jsonl)"
DATADIR="$(mktemp -d /tmp/txgc-data.XXXXXX)"
SERVE_PID=""
trap 'rm -rf "$CAPTURE" "$DATADIR"; [ -n "$SERVE_PID" ] && kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT

go build -o /tmp/txgc-serve-smoke ./cmd/txgc-serve

# Drive a few local and one cross-partition transaction, then hold the
# stream open long enough for the scrape before EOF triggers shutdown.
(
    printf '%s\n' \
        '{"op":"hello","version":2}' \
        '{"op":"begin","txn":1,"footprint":[0]}' \
        '{"op":"read","txn":1,"entity":0}' \
        '{"op":"write","txn":1,"entities":[0]}' \
        '{"op":"begin","txn":2,"footprint":[1]}' \
        '{"op":"write","txn":2,"entities":[1]}' \
        '{"op":"begin","txn":3,"footprint":[0,1]}' \
        '{"op":"read","txn":3,"entity":0}' \
        '{"op":"write","txn":3,"entities":[0,1]}' \
        '{"op":"stats"}'
    sleep 4
) | /tmp/txgc-serve-smoke -shards 4 -retention-watermark 64 -metrics-addr "$ADDR" -capture "$CAPTURE" -data-dir "$DATADIR" -fsync-batch 1 -verify >/tmp/txgc-smoke-out.jsonl 2>/tmp/txgc-smoke-err.txt &
SERVE_PID=$!

# Wait for the metrics endpoint to come up.
METRICS=""
for _ in $(seq 1 40); do
    if METRICS=$(curl -fsS "http://$ADDR/metrics" 2>/dev/null); then
        if grep -q 'txgc_events_total' <<<"$METRICS"; then
            break
        fi
    fi
    sleep 0.25
done

fail() {
    echo "metrics_smoke: FAIL: $1" >&2
    echo "--- /metrics ---" >&2
    echo "$METRICS" >&2
    echo "--- serve stderr ---" >&2
    cat /tmp/txgc-smoke-err.txt >&2
    exit 1
}

grep -q 'txgc_events_total{shard="0",kind="commit",class="ok"}' <<<"$METRICS" \
    || fail "no per-shard commit counter"
grep -q 'txgc_events_total{shard="client",kind="commit",class="ok"}' <<<"$METRICS" \
    || fail "no client-session commit counter"
grep -q 'txgc_queue_depth{shard="0"}' <<<"$METRICS" || fail "no queue-depth gauge"
grep -q 'txgc_retained{shard="0"}' <<<"$METRICS" || fail "no retained gauge"
grep -q 'txgc_prepared{shard="0"}' <<<"$METRICS" || fail "no prepared gauge"
grep -q 'txgc_session_latency_seconds_bucket{outcome="ok"' <<<"$METRICS" \
    || fail "no session latency histogram"
grep -q 'txgc_events_emitted_total' <<<"$METRICS" || fail "no emitted counter"
grep -q 'txgc_events_dropped_total 0' <<<"$METRICS" || fail "drops on an idle bus"
# The cross transaction (txn 3) prepares on both participants.
grep -q 'kind="prepare"' <<<"$METRICS" || fail "no prepare events from the 2PC path"
# Retention governor surface: the watermark gauge reflects the flag and the
# reap counter renders even when nothing was reaped (this tiny workload
# never crosses 64).
grep -q 'txgc_retention_watermark 64' <<<"$METRICS" || fail "no retention watermark gauge"
grep -q 'txgc_reaped_total' <<<"$METRICS" || fail "no reaped counter"
# Durability surface: the WAL counters render per shard, and strict mode
# (fsync-batch 1) has synced at least once by the time the scrape sees a
# committed transaction.
grep -q 'txgc_wal_appended_bytes_total{shard="0"}' <<<"$METRICS" || fail "no WAL appended-bytes counter"
grep -Eq 'txgc_wal_fsyncs_total\{shard="0"\} [1-9]' <<<"$METRICS" || fail "no WAL fsyncs on the strict path"
grep -q 'txgc_checkpoint_seq{shard="0"}' <<<"$METRICS" || fail "no checkpoint-seq gauge"

wait "$SERVE_PID"
SERVE_PID=""

grep -q '"rec":"event"' "$CAPTURE" || { echo "metrics_smoke: FAIL: no event records in capture" >&2; exit 1; }
grep -q '"rec":"step"' "$CAPTURE" || { echo "metrics_smoke: FAIL: no step records in capture" >&2; exit 1; }
grep -q 'verify OK' /tmp/txgc-smoke-err.txt || { echo "metrics_smoke: FAIL: CSR verify did not pass" >&2; cat /tmp/txgc-smoke-err.txt >&2; exit 1; }

# --- Crash phase: acked state survives kill -9 and is reported at restart.
# Commit one transaction, leave another in flight, then kill the server
# without ceremony; a restart on the same directory replays the WAL, keeps
# the committed transaction (its ID refuses a duplicate begin), and aborts
# the orphan.
rm -rf "$DATADIR" && mkdir "$DATADIR"
(
    printf '%s\n' \
        '{"op":"hello","version":2}' \
        '{"op":"begin","txn":10,"footprint":[0]}' \
        '{"op":"write","txn":10,"entities":[0]}' \
        '{"op":"begin","txn":11,"footprint":[1]}' \
        '{"op":"read","txn":11,"entity":1}'
    sleep 30
) | /tmp/txgc-serve-smoke -shards 4 -data-dir "$DATADIR" -fsync-batch 1 >/tmp/txgc-crash-out.jsonl 2>/tmp/txgc-crash-err.txt &
SERVE_PID=$!
for _ in $(seq 1 40); do
    grep -q '"txn":11' /tmp/txgc-crash-out.jsonl 2>/dev/null && break
    sleep 0.25
done
grep -q '"txn":11' /tmp/txgc-crash-out.jsonl || { echo "metrics_smoke: FAIL: crash-phase workload never acked" >&2; cat /tmp/txgc-crash-err.txt >&2; exit 1; }
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

printf '%s\n' \
    '{"op":"hello","version":2}' \
    '{"op":"begin","txn":10,"footprint":[0]}' \
    | /tmp/txgc-serve-smoke -shards 4 -data-dir "$DATADIR" -fsync-batch 1 >/tmp/txgc-recover-out.jsonl 2>/tmp/txgc-recover-err.txt

grep -Eq 'recovered 4 shards: [1-9][0-9]* records replayed' /tmp/txgc-recover-err.txt \
    || { echo "metrics_smoke: FAIL: no recovery report after kill -9" >&2; cat /tmp/txgc-recover-err.txt >&2; exit 1; }
grep -q '1 orphans aborted' /tmp/txgc-recover-err.txt \
    || { echo "metrics_smoke: FAIL: in-flight txn 11 not aborted at recovery" >&2; cat /tmp/txgc-recover-err.txt >&2; exit 1; }
grep -q '"code":"protocol"' /tmp/txgc-recover-out.jsonl \
    || { echo "metrics_smoke: FAIL: committed txn 10 did not survive the crash (duplicate begin was accepted)" >&2; cat /tmp/txgc-recover-out.jsonl >&2; exit 1; }

echo "metrics_smoke: OK (/metrics exposes counters+gauges+histograms incl. WAL; capture holds events and steps; kill -9 recovery keeps acked state)"
