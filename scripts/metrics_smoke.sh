#!/usr/bin/env bash
# End-to-end smoke test of the observability surface: start txgc-serve with
# -metrics-addr and -capture, run a small workload over the v2 wire
# protocol, scrape /metrics, and check that the endpoint exposes the
# expected counters/gauges and that the capture file holds both event and
# step records.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${METRICS_ADDR:-127.0.0.1:9109}"
CAPTURE="$(mktemp /tmp/txgc-capture.XXXXXX.jsonl)"
SERVE_PID=""
trap 'rm -f "$CAPTURE"; [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true' EXIT

go build -o /tmp/txgc-serve-smoke ./cmd/txgc-serve

# Drive a few local and one cross-partition transaction, then hold the
# stream open long enough for the scrape before EOF triggers shutdown.
(
    printf '%s\n' \
        '{"op":"hello","version":2}' \
        '{"op":"begin","txn":1,"footprint":[0]}' \
        '{"op":"read","txn":1,"entity":0}' \
        '{"op":"write","txn":1,"entities":[0]}' \
        '{"op":"begin","txn":2,"footprint":[1]}' \
        '{"op":"write","txn":2,"entities":[1]}' \
        '{"op":"begin","txn":3,"footprint":[0,1]}' \
        '{"op":"read","txn":3,"entity":0}' \
        '{"op":"write","txn":3,"entities":[0,1]}' \
        '{"op":"stats"}'
    sleep 4
) | /tmp/txgc-serve-smoke -shards 4 -retention-watermark 64 -metrics-addr "$ADDR" -capture "$CAPTURE" -verify >/tmp/txgc-smoke-out.jsonl 2>/tmp/txgc-smoke-err.txt &
SERVE_PID=$!

# Wait for the metrics endpoint to come up.
METRICS=""
for _ in $(seq 1 40); do
    if METRICS=$(curl -fsS "http://$ADDR/metrics" 2>/dev/null); then
        if grep -q 'txgc_events_total' <<<"$METRICS"; then
            break
        fi
    fi
    sleep 0.25
done

fail() {
    echo "metrics_smoke: FAIL: $1" >&2
    echo "--- /metrics ---" >&2
    echo "$METRICS" >&2
    echo "--- serve stderr ---" >&2
    cat /tmp/txgc-smoke-err.txt >&2
    exit 1
}

grep -q 'txgc_events_total{shard="0",kind="commit",class="ok"}' <<<"$METRICS" \
    || fail "no per-shard commit counter"
grep -q 'txgc_events_total{shard="client",kind="commit",class="ok"}' <<<"$METRICS" \
    || fail "no client-session commit counter"
grep -q 'txgc_queue_depth{shard="0"}' <<<"$METRICS" || fail "no queue-depth gauge"
grep -q 'txgc_retained{shard="0"}' <<<"$METRICS" || fail "no retained gauge"
grep -q 'txgc_prepared{shard="0"}' <<<"$METRICS" || fail "no prepared gauge"
grep -q 'txgc_session_latency_seconds_bucket{outcome="ok"' <<<"$METRICS" \
    || fail "no session latency histogram"
grep -q 'txgc_events_emitted_total' <<<"$METRICS" || fail "no emitted counter"
grep -q 'txgc_events_dropped_total 0' <<<"$METRICS" || fail "drops on an idle bus"
# The cross transaction (txn 3) prepares on both participants.
grep -q 'kind="prepare"' <<<"$METRICS" || fail "no prepare events from the 2PC path"
# Retention governor surface: the watermark gauge reflects the flag and the
# reap counter renders even when nothing was reaped (this tiny workload
# never crosses 64).
grep -q 'txgc_retention_watermark 64' <<<"$METRICS" || fail "no retention watermark gauge"
grep -q 'txgc_reaped_total' <<<"$METRICS" || fail "no reaped counter"

wait "$SERVE_PID"
SERVE_PID=""

grep -q '"rec":"event"' "$CAPTURE" || { echo "metrics_smoke: FAIL: no event records in capture" >&2; exit 1; }
grep -q '"rec":"step"' "$CAPTURE" || { echo "metrics_smoke: FAIL: no step records in capture" >&2; exit 1; }
grep -q 'verify OK' /tmp/txgc-smoke-err.txt || { echo "metrics_smoke: FAIL: CSR verify did not pass" >&2; cat /tmp/txgc-smoke-err.txt >&2; exit 1; }

echo "metrics_smoke: OK (/metrics exposes counters+gauges+histograms; capture holds events and steps)"
