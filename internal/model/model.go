// Package model defines the shared vocabulary of the reproduction: database
// entities, transaction identifiers, access strengths, transaction statuses,
// and the steps that schedulers consume.
//
// The model follows Hadzilacos & Yannakakis, "Deleting Completed
// Transactions" (JCSS 38, 1989; PODS '86). A database is a set of entities.
// In the basic model (Section 2 of the paper) a transaction is a BEGIN step,
// a sequence of read steps, and one final atomic write step that installs
// all of its writes and completes the transaction. Section 5 relaxes this:
// the multiple-write model allows interleaved read and write steps (ended by
// an explicit finish step), and the predeclared model declares the full
// read/write sets at BEGIN time.
package model

import "fmt"

// Entity identifies a database item ("entity" in the paper's terminology).
// Entities are dense small integers so that workloads and experiments can
// sweep the database size cheaply.
type Entity int32

// TxnID identifies a transaction. IDs are unique over the life of a
// scheduler and never reused, even after aborts or deletions; allocation
// order doubles as transaction age.
type TxnID int64

// NoTxn is the zero-ish sentinel for "no transaction".
const NoTxn TxnID = -1

// Access is the strength of a transaction's access to an entity.
// The paper says "a write access of an entity by a transaction is stronger
// than a read access"; AtLeastAsStrong encodes exactly that order.
type Access uint8

const (
	// NoAccess means the transaction never touched the entity.
	NoAccess Access = iota
	// ReadAccess means the strongest access was a read.
	ReadAccess
	// WriteAccess means the transaction wrote the entity.
	WriteAccess
)

// AtLeastAsStrong reports whether access a is at least as strong as b.
func (a Access) AtLeastAsStrong(b Access) bool { return a >= b }

// Conflicts reports whether two accesses to the same entity conflict:
// they do iff at least one of them is a write (and both are real accesses).
func (a Access) Conflicts(b Access) bool {
	return a != NoAccess && b != NoAccess && (a == WriteAccess || b == WriteAccess)
}

// String implements fmt.Stringer.
func (a Access) String() string {
	switch a {
	case NoAccess:
		return "none"
	case ReadAccess:
		return "read"
	case WriteAccess:
		return "write"
	default:
		return fmt.Sprintf("Access(%d)", uint8(a))
	}
}

// Status is the lifecycle state of a transaction.
//
// The basic model uses Active and Completed (the paper's atomic-write
// assumption makes completion and commit coincide). The multiple-write
// model of Section 5 distinguishes Finished (all steps executed but still
// dependent on an uncommitted writer, the paper's type F) from Committed
// (type C). Aborted transactions are removed from the graph entirely.
type Status uint8

const (
	// StatusActive is a transaction that has begun and not yet finished
	// (the paper's "active"; type A in Section 5).
	StatusActive Status = iota
	// StatusCompleted is a basic-model transaction that executed its final
	// write; in the basic model it is also committed.
	StatusCompleted
	// StatusFinished is a multiple-write transaction that executed all its
	// steps but still depends on an uncommitted transaction (type F).
	StatusFinished
	// StatusCommitted is a multiple-write transaction whose dependencies
	// have all committed (type C).
	StatusCommitted
	// StatusAborted is a transaction removed after creating a cycle (or by
	// cascading abort in the multiple-write model).
	StatusAborted
)

// Terminated reports whether the transaction has executed all of its steps
// (completed, finished, or committed) — the paper's "completed".
func (s Status) Terminated() bool {
	return s == StatusCompleted || s == StatusFinished || s == StatusCommitted
}

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusCompleted:
		return "completed"
	case StatusFinished:
		return "finished"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// StepKind distinguishes the kinds of steps a scheduler consumes.
type StepKind uint8

const (
	// KindBegin starts a transaction (Rule 1).
	KindBegin StepKind = iota
	// KindRead reads one entity (Rule 2).
	KindRead
	// KindWriteFinal is the basic model's final atomic write step: it
	// installs writes to Entities and completes the transaction (Rule 3).
	KindWriteFinal
	// KindWrite is a multiple-write-model write of a single entity.
	KindWrite
	// KindFinish marks a multiple-write transaction as finished (it has no
	// graph effect; it only changes the transaction's status).
	KindFinish
)

// String implements fmt.Stringer.
func (k StepKind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindRead:
		return "read"
	case KindWriteFinal:
		return "write*"
	case KindWrite:
		return "write"
	case KindFinish:
		return "finish"
	default:
		return fmt.Sprintf("StepKind(%d)", uint8(k))
	}
}

// Step is one unit of scheduler input.
type Step struct {
	Kind StepKind
	Txn  TxnID
	// Entity is the target of KindRead and KindWrite.
	Entity Entity
	// Entities is the write set of KindWriteFinal.
	Entities []Entity
}

// Begin constructs a BEGIN step.
func Begin(t TxnID) Step { return Step{Kind: KindBegin, Txn: t} }

// BeginDeclared constructs a BEGIN step carrying the transaction's declared
// entity footprint in Entities (in the spirit of Section 6's predeclared
// model). Schedulers ignore the footprint; sharded engines use it to route
// the transaction to the shard owning its partition.
func BeginDeclared(t TxnID, xs ...Entity) Step {
	return Step{Kind: KindBegin, Txn: t, Entities: xs}
}

// Read constructs a read step.
func Read(t TxnID, x Entity) Step { return Step{Kind: KindRead, Txn: t, Entity: x} }

// WriteFinal constructs the basic model's final atomic write step.
func WriteFinal(t TxnID, xs ...Entity) Step {
	return Step{Kind: KindWriteFinal, Txn: t, Entities: xs}
}

// Write constructs a multiple-write-model single-entity write step.
func Write(t TxnID, x Entity) Step { return Step{Kind: KindWrite, Txn: t, Entity: x} }

// Finish constructs a multiple-write-model finish marker.
func Finish(t TxnID) Step { return Step{Kind: KindFinish, Txn: t} }

// String implements fmt.Stringer.
func (st Step) String() string {
	switch st.Kind {
	case KindBegin:
		return fmt.Sprintf("T%d:begin", st.Txn)
	case KindRead:
		return fmt.Sprintf("T%d:r(%d)", st.Txn, st.Entity)
	case KindWriteFinal:
		return fmt.Sprintf("T%d:W%v", st.Txn, st.Entities)
	case KindWrite:
		return fmt.Sprintf("T%d:w(%d)", st.Txn, st.Entity)
	case KindFinish:
		return fmt.Sprintf("T%d:finish", st.Txn)
	default:
		return fmt.Sprintf("T%d:?", st.Txn)
	}
}

// AccessSet is a per-entity record of the strongest access a transaction
// has performed. It is the information the paper says can be "forgotten"
// when a transaction is deleted.
type AccessSet map[Entity]Access

// Note records an access, keeping the strongest per entity, and reports
// whether the set changed.
func (as AccessSet) Note(x Entity, a Access) bool {
	if cur := as[x]; a > cur {
		as[x] = a
		return true
	}
	return false
}

// Get returns the strongest access recorded for x (NoAccess if none).
func (as AccessSet) Get(x Entity) Access { return as[x] }

// Clone deep-copies the access set.
func (as AccessSet) Clone() AccessSet {
	out := make(AccessSet, len(as))
	for k, v := range as {
		out[k] = v
	}
	return out
}

// Entities returns the accessed entities in unspecified order.
func (as AccessSet) Entities() []Entity {
	out := make([]Entity, 0, len(as))
	for x := range as {
		out = append(out, x)
	}
	return out
}
