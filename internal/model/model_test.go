package model

import (
	"testing"
	"testing/quick"
)

func TestAccessOrdering(t *testing.T) {
	if !WriteAccess.AtLeastAsStrong(ReadAccess) {
		t.Fatal("write must be at least as strong as read")
	}
	if ReadAccess.AtLeastAsStrong(WriteAccess) {
		t.Fatal("read is not as strong as write")
	}
	if !ReadAccess.AtLeastAsStrong(ReadAccess) || !WriteAccess.AtLeastAsStrong(WriteAccess) {
		t.Fatal("reflexivity")
	}
	if !ReadAccess.AtLeastAsStrong(NoAccess) {
		t.Fatal("any access beats none")
	}
}

func TestConflicts(t *testing.T) {
	cases := []struct {
		a, b Access
		want bool
	}{
		{ReadAccess, ReadAccess, false},
		{ReadAccess, WriteAccess, true},
		{WriteAccess, ReadAccess, true},
		{WriteAccess, WriteAccess, true},
		{NoAccess, WriteAccess, false},
		{WriteAccess, NoAccess, false},
		{NoAccess, NoAccess, false},
	}
	for _, c := range cases {
		if got := c.a.Conflicts(c.b); got != c.want {
			t.Errorf("%v.Conflicts(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestConflictsSymmetric(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := Access(a%3), Access(b%3)
		return x.Conflicts(y) == y.Conflicts(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatusTerminated(t *testing.T) {
	if StatusActive.Terminated() || StatusAborted.Terminated() {
		t.Fatal("active/aborted are not terminated")
	}
	for _, s := range []Status{StatusCompleted, StatusFinished, StatusCommitted} {
		if !s.Terminated() {
			t.Fatalf("%v should be terminated", s)
		}
	}
}

func TestAccessSetNoteKeepsStrongest(t *testing.T) {
	as := make(AccessSet)
	if !as.Note(1, ReadAccess) {
		t.Fatal("first note should change the set")
	}
	if !as.Note(1, WriteAccess) {
		t.Fatal("upgrade should change the set")
	}
	if as.Note(1, ReadAccess) {
		t.Fatal("downgrade must not change the set")
	}
	if as.Get(1) != WriteAccess {
		t.Fatalf("Get = %v, want write", as.Get(1))
	}
	if as.Get(2) != NoAccess {
		t.Fatal("missing entity should report NoAccess")
	}
}

func TestAccessSetCloneIndependent(t *testing.T) {
	as := AccessSet{1: ReadAccess}
	c := as.Clone()
	c.Note(1, WriteAccess)
	c.Note(2, ReadAccess)
	if as.Get(1) != ReadAccess || as.Get(2) != NoAccess {
		t.Fatal("clone shares storage")
	}
}

func TestAccessSetEntities(t *testing.T) {
	as := AccessSet{3: ReadAccess, 7: WriteAccess}
	got := as.Entities()
	if len(got) != 2 {
		t.Fatalf("Entities len = %d", len(got))
	}
	seen := map[Entity]bool{}
	for _, x := range got {
		seen[x] = true
	}
	if !seen[3] || !seen[7] {
		t.Fatalf("Entities = %v", got)
	}
}

func TestStepConstructors(t *testing.T) {
	if s := Begin(5); s.Kind != KindBegin || s.Txn != 5 {
		t.Fatalf("Begin: %+v", s)
	}
	if s := Read(5, 9); s.Kind != KindRead || s.Entity != 9 {
		t.Fatalf("Read: %+v", s)
	}
	if s := WriteFinal(5, 1, 2); s.Kind != KindWriteFinal || len(s.Entities) != 2 {
		t.Fatalf("WriteFinal: %+v", s)
	}
	if s := Write(5, 9); s.Kind != KindWrite || s.Entity != 9 {
		t.Fatalf("Write: %+v", s)
	}
	if s := Finish(5); s.Kind != KindFinish {
		t.Fatalf("Finish: %+v", s)
	}
}

func TestStringers(t *testing.T) {
	// Smoke: every enum value renders, including out-of-range.
	for _, a := range []Access{NoAccess, ReadAccess, WriteAccess, Access(99)} {
		if a.String() == "" {
			t.Fatal("empty Access string")
		}
	}
	for _, s := range []Status{StatusActive, StatusCompleted, StatusFinished, StatusCommitted, StatusAborted, Status(99)} {
		if s.String() == "" {
			t.Fatal("empty Status string")
		}
	}
	for _, k := range []StepKind{KindBegin, KindRead, KindWriteFinal, KindWrite, KindFinish, StepKind(99)} {
		if k.String() == "" {
			t.Fatal("empty StepKind string")
		}
	}
	for _, st := range []Step{Begin(1), Read(1, 2), WriteFinal(1, 2), Write(1, 2), Finish(1), {Kind: StepKind(99), Txn: 1}} {
		if st.String() == "" {
			t.Fatal("empty Step string")
		}
	}
}
