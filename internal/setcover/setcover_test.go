package setcover

import (
	"math/rand"
	"sort"
	"testing"
)

func TestValidate(t *testing.T) {
	ok := &Instance{N: 3, Sets: [][]int{{0, 1}, {2}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Instance{N: 3, Sets: [][]int{{0, 5}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range element must fail")
	}
	uncov := &Instance{N: 3, Sets: [][]int{{0, 1}}}
	if err := uncov.Validate(); err == nil {
		t.Fatal("uncoverable universe must fail")
	}
}

func TestIsCover(t *testing.T) {
	in := &Instance{N: 3, Sets: [][]int{{0, 1}, {2}, {1, 2}}}
	if !in.IsCover([]int{0, 1}) {
		t.Fatal("{0,1} covers")
	}
	if in.IsCover([]int{0}) {
		t.Fatal("{0} does not cover")
	}
	if in.IsCover([]int{0, 99}) {
		t.Fatal("invalid index")
	}
}

func TestGreedyCovers(t *testing.T) {
	in := &Instance{N: 5, Sets: [][]int{{0, 1, 2}, {2, 3}, {3, 4}, {4}}}
	g := Greedy(in)
	if !in.IsCover(g) {
		t.Fatalf("greedy result %v is not a cover", g)
	}
}

func TestMinCoverSmallExact(t *testing.T) {
	// Universe {0..3}; {0,1},{2,3} is the optimal 2-cover even though
	// greedy might pick the size-3 set first.
	in := &Instance{N: 4, Sets: [][]int{{0, 1, 2}, {0, 1}, {2, 3}}}
	mc := MinCover(in)
	if len(mc) != 2 || !in.IsCover(mc) {
		t.Fatalf("MinCover = %v, want a 2-cover", mc)
	}
}

func TestMinCoverSingleSet(t *testing.T) {
	in := &Instance{N: 3, Sets: [][]int{{0, 1, 2}, {0}, {1}}}
	mc := MinCover(in)
	if len(mc) != 1 || mc[0] != 0 {
		t.Fatalf("MinCover = %v", mc)
	}
}

func TestMinCoverEmptyUniverse(t *testing.T) {
	in := &Instance{N: 0}
	if mc := MinCover(in); len(mc) != 0 || mc == nil {
		t.Fatalf("empty universe needs the empty cover, got %v", mc)
	}
}

func TestMinCoverInfeasible(t *testing.T) {
	in := &Instance{N: 2, Sets: [][]int{{0}}}
	if mc := MinCover(in); mc != nil {
		t.Fatalf("infeasible instance must return nil, got %v", mc)
	}
}

// bruteMin enumerates all subsets of sets.
func bruteMin(in *Instance) int {
	m := len(in.Sets)
	best := -1
	for mask := 0; mask < 1<<uint(m); mask++ {
		var chosen []int
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				chosen = append(chosen, i)
			}
		}
		if in.IsCover(chosen) && (best < 0 || len(chosen) < best) {
			best = len(chosen)
		}
	}
	return best
}

func TestMinCoverMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(6)
		m := 3 + rng.Intn(6)
		in := Random(rng, n, m)
		want := bruteMin(in)
		got := MinCover(in)
		if want < 0 {
			if got != nil {
				t.Fatalf("trial %d: expected infeasible", trial)
			}
			continue
		}
		if len(got) != want {
			t.Fatalf("trial %d: MinCover=%d brute=%d (instance %+v)", trial, len(got), want, in)
		}
		if !in.IsCover(got) {
			t.Fatalf("trial %d: result is not a cover", trial)
		}
	}
}

func TestMinCoverNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		in := Random(rng, 4+rng.Intn(20), 4+rng.Intn(10))
		g := Greedy(in)
		mc := MinCover(in)
		if len(mc) > len(g) {
			t.Fatalf("exact %d worse than greedy %d", len(mc), len(g))
		}
	}
}

func TestRandomAlwaysCoverable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		in := Random(rng, 5+rng.Intn(10), 2+rng.Intn(8))
		if err := in.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Sets must be sorted and duplicate-free per construction.
		for _, s := range in.Sets {
			if !sort.IntsAreSorted(s) {
				t.Fatalf("unsorted set %v", s)
			}
			for i := 1; i < len(s); i++ {
				if s[i] == s[i-1] {
					t.Fatalf("duplicate element in %v", s)
				}
			}
		}
	}
}

func TestMinCoverResultSorted(t *testing.T) {
	in := &Instance{N: 4, Sets: [][]int{{3}, {0, 1}, {2}}}
	mc := MinCover(in)
	if !sort.IntsAreSorted(mc) {
		t.Fatalf("result not sorted: %v", mc)
	}
}
