// Package setcover implements the Set Cover problem used by Theorem 5's
// NP-completeness reduction: exact minimum cover via branch-and-bound,
// the greedy ln(n)-approximation, and random instance generation.
package setcover

import (
	"fmt"
	"math/rand"
	"sort"
)

// Instance is a family of subsets over the universe {0, ..., N-1}.
type Instance struct {
	// N is the universe size.
	N int
	// Sets lists the subsets; Sets[i] holds element indices in [0, N).
	Sets [][]int
}

// Validate checks element ranges and that a cover exists at all.
func (in *Instance) Validate() error {
	if in.N < 0 {
		return fmt.Errorf("setcover: negative universe")
	}
	covered := make([]bool, in.N)
	for i, s := range in.Sets {
		for _, e := range s {
			if e < 0 || e >= in.N {
				return fmt.Errorf("setcover: set %d has out-of-range element %d", i, e)
			}
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			return fmt.Errorf("setcover: element %d not covered by any set", e)
		}
	}
	return nil
}

// IsCover reports whether the chosen set indexes cover the universe.
func (in *Instance) IsCover(chosen []int) bool {
	covered := make([]bool, in.N)
	for _, i := range chosen {
		if i < 0 || i >= len(in.Sets) {
			return false
		}
		for _, e := range in.Sets[i] {
			covered[e] = true
		}
	}
	for _, ok := range covered {
		if !ok {
			return false
		}
	}
	return in.N >= 0
}

// masks converts the sets to bitmasks (N ≤ 64 fast path) or returns nil.
func (in *Instance) masks() []uint64 {
	if in.N > 64 {
		return nil
	}
	out := make([]uint64, len(in.Sets))
	for i, s := range in.Sets {
		for _, e := range s {
			out[i] |= 1 << uint(e)
		}
	}
	return out
}

// Greedy returns the classic greedy cover (pick the set covering the most
// uncovered elements until done), or nil if no cover exists.
func Greedy(in *Instance) []int {
	covered := make([]bool, in.N)
	remaining := in.N
	var chosen []int
	for remaining > 0 {
		best, bestGain := -1, 0
		for i, s := range in.Sets {
			gain := 0
			for _, e := range s {
				if !covered[e] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best < 0 {
			return nil
		}
		chosen = append(chosen, best)
		for _, e := range in.Sets[best] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	sort.Ints(chosen)
	return chosen
}

// MinCover returns a minimum-cardinality cover, or nil if none exists.
// Branch-and-bound with greedy incumbent and most-constrained-element
// branching; exact for the instance sizes the reduction experiments use
// (N ≤ 64).
func MinCover(in *Instance) []int {
	if in.N == 0 {
		return []int{}
	}
	if err := in.Validate(); err != nil {
		return nil
	}
	ms := in.masks()
	if ms == nil {
		// Large universe: fall back to greedy (documented approximation).
		return Greedy(in)
	}
	full := uint64(1)<<uint(in.N) - 1
	greedy := Greedy(in)
	best := append([]int{}, greedy...)

	// coverers[e] = sets containing element e, largest first.
	coverers := make([][]int, in.N)
	for i, m := range ms {
		for e := 0; e < in.N; e++ {
			if m&(1<<uint(e)) != 0 {
				coverers[e] = append(coverers[e], i)
			}
		}
	}
	for e := range coverers {
		sort.Slice(coverers[e], func(a, b int) bool {
			return popcount(ms[coverers[e][a]]) > popcount(ms[coverers[e][b]])
		})
	}

	var chosen []int
	var rec func(covered uint64)
	rec = func(covered uint64) {
		if covered == full {
			if len(chosen) < len(best) {
				best = append(best[:0:0], chosen...)
			}
			return
		}
		if len(chosen)+1 >= len(best) {
			// Even one more set cannot beat the incumbent unless it
			// finishes the cover; lower bound prune below handles that.
			if len(chosen)+1 > len(best) {
				return
			}
		}
		// Lower bound: remaining elements / max set size.
		remaining := popcount(full &^ covered)
		maxSize := 0
		for _, m := range ms {
			if c := popcount(m &^ covered); c > maxSize {
				maxSize = c
			}
		}
		if maxSize == 0 {
			return
		}
		lb := (remaining + maxSize - 1) / maxSize
		if len(chosen)+lb >= len(best) {
			return
		}
		// Branch on the uncovered element with fewest coverers.
		branchE, branchCnt := -1, 1<<30
		for e := 0; e < in.N; e++ {
			if covered&(1<<uint(e)) != 0 {
				continue
			}
			cnt := 0
			for _, i := range coverers[e] {
				if ms[i]&^covered != 0 {
					cnt++
				}
			}
			if cnt < branchCnt {
				branchE, branchCnt = e, cnt
			}
		}
		for _, i := range coverers[branchE] {
			chosen = append(chosen, i)
			rec(covered | ms[i])
			chosen = chosen[:len(chosen)-1]
		}
	}
	rec(0)
	sort.Ints(best)
	return best
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Random generates a random instance with n elements and m sets, each
// element appearing in at least one set (so a cover exists).
func Random(rng *rand.Rand, n, m int) *Instance {
	in := &Instance{N: n, Sets: make([][]int, m)}
	for i := range in.Sets {
		size := 1 + rng.Intn(maxInt(1, n/2))
		seen := map[int]bool{}
		for j := 0; j < size; j++ {
			e := rng.Intn(n)
			if !seen[e] {
				seen[e] = true
				in.Sets[i] = append(in.Sets[i], e)
			}
		}
		sort.Ints(in.Sets[i])
	}
	// Guarantee coverage: sprinkle missing elements into random sets.
	covered := make([]bool, n)
	for _, s := range in.Sets {
		for _, e := range s {
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			i := rng.Intn(m)
			in.Sets[i] = append(in.Sets[i], e)
			sort.Ints(in.Sets[i])
		}
	}
	return in
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
