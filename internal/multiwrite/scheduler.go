// Package multiwrite implements the paper's Section 5 "multiple write
// steps" model: a transaction is an arbitrary sequence of read and write
// steps (each write installs immediately), ended by an explicit finish.
// Because writes are visible before completion, a transaction may read
// from an uncommitted writer and thereby *depend* on it; aborts cascade
// along dependencies, and a finished transaction commits only once it no
// longer depends on any uncommitted transaction. Transactions therefore
// have three states: Active (A), Finished-but-uncommitted (F), and
// Committed (C).
//
// The scheduler applies the same conflict-graph Rules 1–3 step by step
// (write arcs at each write). Deletion of a committed transaction is
// governed by condition C3 (see c3.go), whose test is NP-complete
// (Theorem 6).
package multiwrite

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/model"
)

// Stats counts scheduler activity.
type Stats struct {
	Begins    int64
	Reads     int64
	Writes    int64
	Finishes  int64
	Accepted  int64
	Rejected  int64
	Aborts    int64 // includes cascading aborts
	Cascaded  int64 // aborts caused by dependency, not by a rejected step
	Commits   int64
	Deleted   int64
	PeakNodes int
}

// TxnState is the record of one multiwrite transaction.
type TxnState struct {
	ID     model.TxnID
	Status model.Status // Active, Finished, Committed (Aborted = removed)
	Access model.AccessSet
}

// Result reports one step's effect.
type Result struct {
	Step     model.Step
	Accepted bool
	// Aborted lists every transaction aborted by this step: the acting
	// transaction (if rejected) plus all cascading aborts.
	Aborted []model.TxnID
	// Committed lists transactions whose commit was triggered by this
	// step (the finisher itself and/or dependents unblocked by it).
	Committed []model.TxnID
}

// Scheduler is the multiple-write conflict-graph scheduler.
type Scheduler struct {
	g       *graph.Graph
	txns    map[model.TxnID]*TxnState
	readers map[model.Entity]graph.NodeSet
	writers map[model.Entity]graph.NodeSet
	// writeStack tracks, per entity, the live writers in write order; the
	// top is the version a new read observes (aborts pop their writes,
	// restoring before-images).
	writeStack map[model.Entity][]model.TxnID
	// dependsOn[t] = direct uncommitted writers t has read from.
	dependsOn map[model.TxnID]graph.NodeSet
	// dependents[t] = transactions that directly depend on t.
	dependents map[model.TxnID]graph.NodeSet
	stats      Stats
}

// NewScheduler returns an empty multiwrite scheduler.
func NewScheduler() *Scheduler {
	return &Scheduler{
		g:          graph.New(),
		txns:       make(map[model.TxnID]*TxnState),
		readers:    make(map[model.Entity]graph.NodeSet),
		writers:    make(map[model.Entity]graph.NodeSet),
		writeStack: make(map[model.Entity][]model.TxnID),
		dependsOn:  make(map[model.TxnID]graph.NodeSet),
		dependents: make(map[model.TxnID]graph.NodeSet),
	}
}

// Graph exposes the current graph (read-only).
func (s *Scheduler) Graph() *graph.Graph { return s.g }

// Stats returns a snapshot of counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Status implements core.StateView (Aborted for unknown IDs).
func (s *Scheduler) Status(id model.TxnID) model.Status {
	if t, ok := s.txns[id]; ok {
		return t.Status
	}
	return model.StatusAborted
}

// Access implements core.StateView.
func (s *Scheduler) Access(id model.TxnID) model.AccessSet {
	if t, ok := s.txns[id]; ok {
		return t.Access
	}
	return nil
}

// TxnsByStatus returns the IDs with the given status, ascending.
func (s *Scheduler) TxnsByStatus(st model.Status) []model.TxnID {
	var out []model.TxnID
	for id, t := range s.txns {
		if t.Status == st {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Active returns the active transactions (type A).
func (s *Scheduler) Active() []model.TxnID { return s.TxnsByStatus(model.StatusActive) }

// Finished returns the finished-but-uncommitted transactions (type F).
func (s *Scheduler) Finished() []model.TxnID { return s.TxnsByStatus(model.StatusFinished) }

// Committed returns the committed transactions (type C).
func (s *Scheduler) Committed() []model.TxnID { return s.TxnsByStatus(model.StatusCommitted) }

// DependsOn returns the direct uncommitted writers id has read from.
func (s *Scheduler) DependsOn(id model.TxnID) []model.TxnID {
	return s.dependsOn[id].Sorted()
}

// Apply processes one multiwrite-model step.
func (s *Scheduler) Apply(step model.Step) (Result, error) {
	switch step.Kind {
	case model.KindBegin:
		return s.begin(step)
	case model.KindRead:
		return s.read(step)
	case model.KindWrite:
		return s.write(step)
	case model.KindFinish:
		return s.finish(step)
	default:
		return Result{}, fmt.Errorf("multiwrite: step kind %v not part of the multiple-write model", step.Kind)
	}
}

// MustApply panics on protocol errors.
func (s *Scheduler) MustApply(step model.Step) Result {
	res, err := s.Apply(step)
	if err != nil {
		panic(err)
	}
	return res
}

func (s *Scheduler) begin(step model.Step) (Result, error) {
	if _, ok := s.txns[step.Txn]; ok {
		return Result{}, fmt.Errorf("multiwrite: duplicate BEGIN for T%d", step.Txn)
	}
	s.g.AddNode(step.Txn)
	s.txns[step.Txn] = &TxnState{ID: step.Txn, Status: model.StatusActive, Access: make(model.AccessSet)}
	s.stats.Begins++
	s.stats.Accepted++
	s.peak()
	return Result{Step: step, Accepted: true}, nil
}

func (s *Scheduler) activeTxn(id model.TxnID) (*TxnState, error) {
	t, ok := s.txns[id]
	if !ok {
		return nil, fmt.Errorf("multiwrite: step for unknown transaction T%d", id)
	}
	if t.Status != model.StatusActive {
		return nil, fmt.Errorf("multiwrite: step for %v transaction T%d", t.Status, id)
	}
	return t, nil
}

func (s *Scheduler) read(step model.Step) (Result, error) {
	t, err := s.activeTxn(step.Txn)
	if err != nil {
		return Result{}, err
	}
	x := step.Entity
	tails := make(graph.NodeSet)
	for w := range s.writers[x] {
		if w != t.ID {
			tails.Add(w)
		}
	}
	if s.g.ReachesAny(t.ID, tails) {
		return s.rejectAndCascade(step, t.ID), nil
	}
	for w := range tails {
		s.g.AddArc(w, t.ID)
	}
	t.Access.Note(x, model.ReadAccess)
	s.addIndex(s.readers, x, t.ID)
	// Dependency: reading the top-of-stack version of x from an
	// uncommitted writer makes t depend on it.
	if stack := s.writeStack[x]; len(stack) > 0 {
		w := stack[len(stack)-1]
		if w != t.ID {
			if wt := s.txns[w]; wt != nil && wt.Status != model.StatusCommitted {
				s.addDep(t.ID, w)
			}
		}
	}
	s.stats.Reads++
	s.stats.Accepted++
	return Result{Step: step, Accepted: true}, nil
}

func (s *Scheduler) write(step model.Step) (Result, error) {
	t, err := s.activeTxn(step.Txn)
	if err != nil {
		return Result{}, err
	}
	x := step.Entity
	tails := make(graph.NodeSet)
	for r := range s.readers[x] {
		if r != t.ID {
			tails.Add(r)
		}
	}
	for w := range s.writers[x] {
		if w != t.ID {
			tails.Add(w)
		}
	}
	if s.g.ReachesAny(t.ID, tails) {
		return s.rejectAndCascade(step, t.ID), nil
	}
	for u := range tails {
		s.g.AddArc(u, t.ID)
	}
	t.Access.Note(x, model.WriteAccess)
	s.addIndex(s.writers, x, t.ID)
	s.writeStack[x] = append(s.writeStack[x], t.ID)
	s.stats.Writes++
	s.stats.Accepted++
	return Result{Step: step, Accepted: true}, nil
}

func (s *Scheduler) finish(step model.Step) (Result, error) {
	t, err := s.activeTxn(step.Txn)
	if err != nil {
		return Result{}, err
	}
	t.Status = model.StatusFinished
	s.stats.Finishes++
	s.stats.Accepted++
	res := Result{Step: step, Accepted: true}
	res.Committed = s.tryCommit(t.ID)
	return res, nil
}

// tryCommit commits id if finished with no uncommitted dependencies, then
// propagates to dependents. Returns all transactions committed.
func (s *Scheduler) tryCommit(id model.TxnID) []model.TxnID {
	var out []model.TxnID
	queue := []model.TxnID{id}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		t := s.txns[n]
		if t == nil || t.Status != model.StatusFinished || len(s.dependsOn[n]) > 0 {
			continue
		}
		t.Status = model.StatusCommitted
		s.stats.Commits++
		out = append(out, n)
		// Discharge n from its dependents.
		for d := range s.dependents[n] {
			delete(s.dependsOn[d], n)
			if len(s.dependsOn[d]) == 0 {
				delete(s.dependsOn, d)
				queue = append(queue, d)
			}
		}
		delete(s.dependents, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rejectAndCascade aborts the acting transaction and everything that
// depends on it, transitively ("the abort of a transaction B causes the
// abortion of all transactions that depend on it").
func (s *Scheduler) rejectAndCascade(step model.Step, id model.TxnID) Result {
	s.stats.Rejected++
	doomed := s.dependentsClosure(graph.NodeSet{id: {}})
	var aborted []model.TxnID
	for _, n := range doomed.Sorted() {
		s.abortOne(n)
		aborted = append(aborted, n)
		if n != id {
			s.stats.Cascaded++
		}
	}
	s.stats.Aborts += int64(len(aborted))
	s.peak()
	return Result{Step: step, Accepted: false, Aborted: aborted}
}

// dependentsClosure returns seed plus everything that transitively
// depends on it — the paper's M⁺ (with M included).
func (s *Scheduler) dependentsClosure(seed graph.NodeSet) graph.NodeSet {
	out := make(graph.NodeSet, len(seed))
	var stack []model.TxnID
	for n := range seed {
		out.Add(n)
		stack = append(stack, n)
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for d := range s.dependents[n] {
			if !out.Has(d) {
				out.Add(d)
				stack = append(stack, d)
			}
		}
	}
	return out
}

// DependentsClosure exposes M ∪ M⁺ for the C3 checker and tests.
func (s *Scheduler) DependentsClosure(seed graph.NodeSet) graph.NodeSet {
	return s.dependentsClosure(seed)
}

// abortOne removes one transaction entirely: graph node with incident
// arcs, entity indexes, write versions, dependency edges.
func (s *Scheduler) abortOne(id model.TxnID) {
	t := s.txns[id]
	if t == nil {
		return
	}
	s.g.RemoveNode(id)
	for x, a := range t.Access {
		delete(s.readers[x], id)
		if len(s.readers[x]) == 0 {
			delete(s.readers, x)
		}
		if a == model.WriteAccess {
			delete(s.writers[x], id)
			if len(s.writers[x]) == 0 {
				delete(s.writers, x)
			}
			// Pop its versions from the write stack.
			stack := s.writeStack[x]
			kept := stack[:0]
			for _, w := range stack {
				if w != id {
					kept = append(kept, w)
				}
			}
			if len(kept) == 0 {
				delete(s.writeStack, x)
			} else {
				s.writeStack[x] = kept
			}
		}
	}
	for w := range s.dependsOn[id] {
		delete(s.dependents[w], id)
	}
	delete(s.dependsOn, id)
	for d := range s.dependents[id] {
		delete(s.dependsOn[d], id)
	}
	delete(s.dependents, id)
	delete(s.txns, id)
}

// Delete removes a COMMITTED transaction with the reduction splice and
// forgets its access sets. The caller is responsible for safety (C3).
func (s *Scheduler) Delete(id model.TxnID) error {
	t, ok := s.txns[id]
	if !ok {
		return fmt.Errorf("multiwrite: delete of unknown transaction T%d", id)
	}
	if t.Status != model.StatusCommitted {
		return fmt.Errorf("multiwrite: delete of %v transaction T%d (only committed transactions are removable)", t.Status, id)
	}
	for x, a := range t.Access {
		delete(s.readers[x], id)
		if len(s.readers[x]) == 0 {
			delete(s.readers, x)
		}
		if a == model.WriteAccess {
			delete(s.writers[x], id)
			if len(s.writers[x]) == 0 {
				delete(s.writers, x)
			}
		}
	}
	s.g.Reduce(id)
	delete(s.txns, id)
	s.stats.Deleted++
	return nil
}

func (s *Scheduler) addIndex(idx map[model.Entity]graph.NodeSet, x model.Entity, id model.TxnID) {
	set, ok := idx[x]
	if !ok {
		set = make(graph.NodeSet)
		idx[x] = set
	}
	set.Add(id)
}

func (s *Scheduler) addDep(reader, writer model.TxnID) {
	set, ok := s.dependsOn[reader]
	if !ok {
		set = make(graph.NodeSet)
		s.dependsOn[reader] = set
	}
	set.Add(writer)
	dset, ok := s.dependents[writer]
	if !ok {
		dset = make(graph.NodeSet)
		s.dependents[writer] = dset
	}
	dset.Add(reader)
}

func (s *Scheduler) peak() {
	if n := s.g.NumNodes(); n > s.stats.PeakNodes {
		s.stats.PeakNodes = n
	}
}
