package multiwrite

import (
	"testing"

	"repro/internal/model"
)

func apply(t *testing.T, s *Scheduler, st model.Step) Result {
	t.Helper()
	res, err := s.Apply(st)
	if err != nil {
		t.Fatalf("Apply(%v): %v", st, err)
	}
	return res
}

func TestLifecycleActiveFinishedCommitted(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	if s.Status(1) != model.StatusActive {
		t.Fatalf("status = %v", s.Status(1))
	}
	apply(t, s, model.Write(1, 0))
	res := apply(t, s, model.Finish(1))
	if s.Status(1) != model.StatusCommitted {
		t.Fatalf("independent transaction must commit at finish; got %v", s.Status(1))
	}
	if len(res.Committed) != 1 || res.Committed[0] != 1 {
		t.Fatalf("Committed = %v", res.Committed)
	}
}

func TestDirtyReadCreatesDependency(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0)) // T1 writes x, stays active
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 0)) // T2 reads T1's uncommitted write
	if got := s.DependsOn(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("DependsOn(2) = %v, want [1]", got)
	}
	res := apply(t, s, model.Finish(2))
	if s.Status(2) != model.StatusFinished {
		t.Fatalf("T2 depends on active T1: must stay finished, got %v", s.Status(2))
	}
	if len(res.Committed) != 0 {
		t.Fatalf("nothing can commit yet: %v", res.Committed)
	}
}

func TestCommitPropagation(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 0))
	apply(t, s, model.Finish(2)) // F, waiting on T1
	apply(t, s, model.Begin(3))
	apply(t, s, model.Read(3, 0)) // also reads T1's write
	apply(t, s, model.Finish(3))  // F
	res := apply(t, s, model.Finish(1))
	// T1's commit must cascade to T2 and T3.
	if len(res.Committed) != 3 {
		t.Fatalf("Committed = %v, want [1 2 3]", res.Committed)
	}
	for id := model.TxnID(1); id <= 3; id++ {
		if s.Status(id) != model.StatusCommitted {
			t.Fatalf("T%d = %v", id, s.Status(id))
		}
	}
}

func TestTransitiveDependencyChain(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 0))
	apply(t, s, model.Write(2, 1))
	apply(t, s, model.Finish(2))
	apply(t, s, model.Begin(3))
	apply(t, s, model.Read(3, 1)) // reads T2's write; T2 is F
	apply(t, s, model.Finish(3))
	if s.Status(3) != model.StatusFinished {
		t.Fatal("T3 depends on uncommitted T2")
	}
	res := apply(t, s, model.Finish(1))
	if len(res.Committed) != 3 {
		t.Fatalf("chain commit: %v", res.Committed)
	}
}

func TestCascadingAbort(t *testing.T) {
	// T1 writes x (active). T2 reads x (depends on T1), finishes. T3
	// reads T2's write... build: T2 writes y after reading x; T3 reads y.
	// Then T1 aborts: T2 and T3 must cascade.
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 0))
	apply(t, s, model.Write(2, 1))
	apply(t, s, model.Finish(2))
	apply(t, s, model.Begin(3))
	apply(t, s, model.Read(3, 1))
	// Force T1 to abort: T4 writes z, T1 reads z? Build a cycle for T1:
	// T4 reads w; T1 writes w (arc T4->T1); T4 writes v; T1 reads... let
	// T1 read v: arc T4->T1 exists; T1 reading T4's v adds arc T4->T1
	// again (no cycle). Instead: T1 writes w after T4 read w => arc
	// T4->T1; then T4 writes u, and T1 writes u => arc T4->T1 (again no
	// cycle!). Make the cycle: T1 -> T4 first: T4 reads something T1
	// wrote: T4 reads x => arc T1->T4 and dependency. Then T4 writes q,
	// then T1 tries to write q: arc T4->T1 closes the cycle and T1 is
	// rejected.
	apply(t, s, model.Begin(4))
	apply(t, s, model.Read(4, 0))  // T4 reads x from T1: arc T1->T4, dep
	apply(t, s, model.Write(4, 9)) // T4 writes q
	res := apply(t, s, model.Write(1, 9))
	if res.Accepted {
		t.Fatal("T1's write of q must create a cycle and be rejected")
	}
	// Cascade: T1 aborts; T2, T3 (dependents through reads) and T4
	// (read x from T1) all abort.
	want := map[model.TxnID]bool{1: true, 2: true, 3: true, 4: true}
	if len(res.Aborted) != len(want) {
		t.Fatalf("Aborted = %v", res.Aborted)
	}
	for _, id := range res.Aborted {
		if !want[id] {
			t.Fatalf("unexpected abort T%d", id)
		}
		if s.Status(id) != model.StatusAborted {
			t.Fatalf("T%d status = %v", id, s.Status(id))
		}
	}
	if s.Graph().NumNodes() != 0 {
		t.Fatalf("graph should be empty, has %d nodes", s.Graph().NumNodes())
	}
	if s.Stats().Cascaded != 3 {
		t.Fatalf("Cascaded = %d, want 3", s.Stats().Cascaded)
	}
}

func TestAbortRestoresBeforeImage(t *testing.T) {
	// T1 commits a write of x; T2 writes x (active) and aborts; a new
	// reader must then read T1's version (no dependency on anyone).
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0))
	apply(t, s, model.Finish(1))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Write(2, 0))
	// Abort T2 via a cycle: T3 reads x (depends on T2!), that's no good —
	// use entity q: T3 reads q... simplest: T2 reads something creating a
	// cycle. T3 reads y, T2 writes y (arc T3->T2), T3 writes x => arc
	// T2->T3 cycle => T3 rejected. That aborts T3, not T2. Instead: arc
	// T2->T3 first: T3 reads x after T2's write (dep on T2), then T3
	// writes q, then T2 writes q => cycle => T2 rejected, T3 cascades.
	apply(t, s, model.Begin(3))
	apply(t, s, model.Read(3, 0))
	apply(t, s, model.Write(3, 9))
	res := apply(t, s, model.Write(2, 9))
	if res.Accepted {
		t.Fatal("expected rejection")
	}
	// Now a fresh reader of x must see T1's version: no dependencies.
	apply(t, s, model.Begin(4))
	apply(t, s, model.Read(4, 0))
	if got := s.DependsOn(4); len(got) != 0 {
		t.Fatalf("T4 must read committed T1's version; deps = %v", got)
	}
	res = apply(t, s, model.Finish(4))
	if s.Status(4) != model.StatusCommitted {
		t.Fatal("T4 should commit immediately")
	}
	_ = res
}

func TestReadFromCommittedNoDependency(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0))
	apply(t, s, model.Finish(1))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 0))
	if got := s.DependsOn(2); len(got) != 0 {
		t.Fatalf("reading committed data must not create deps: %v", got)
	}
}

func TestRuleArcsMultiwrite(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 0))
	if !s.Graph().HasArc(1, 2) {
		t.Fatal("w1(x) r2(x): arc 1->2")
	}
	apply(t, s, model.Begin(3))
	apply(t, s, model.Write(3, 0))
	if !s.Graph().HasArc(1, 3) || !s.Graph().HasArc(2, 3) {
		t.Fatal("w3(x) must get arcs from prior reader and writer")
	}
}

func TestProtocolErrors(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	if _, err := s.Apply(model.Begin(1)); err == nil {
		t.Fatal("duplicate BEGIN")
	}
	if _, err := s.Apply(model.Read(9, 0)); err == nil {
		t.Fatal("unknown txn")
	}
	if _, err := s.Apply(model.WriteFinal(1, 0)); err == nil {
		t.Fatal("basic-model step kind must error")
	}
	apply(t, s, model.Finish(1))
	if _, err := s.Apply(model.Write(1, 0)); err == nil {
		t.Fatal("write after finish")
	}
	if _, err := s.Apply(model.Finish(1)); err == nil {
		t.Fatal("double finish")
	}
}

func TestDeleteOnlyCommitted(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 0))
	apply(t, s, model.Finish(2)) // F
	if err := s.Delete(2); err == nil {
		t.Fatal("finished-but-uncommitted must not be deletable")
	}
	if err := s.Delete(1); err == nil {
		t.Fatal("active must not be deletable")
	}
	if err := s.Delete(99); err == nil {
		t.Fatal("unknown must not be deletable")
	}
	apply(t, s, model.Finish(1)) // commits both
	if err := s.Delete(2); err != nil {
		t.Fatalf("committed T2 should delete: %v", err)
	}
	if s.Graph().HasNode(2) {
		t.Fatal("delete must remove the node")
	}
}

func TestDeleteSplicesPaths(t *testing.T) {
	s := NewScheduler()
	// Chain 1 -> 2 -> 3 via distinct entities; all commit.
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0))
	apply(t, s, model.Finish(1))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 0))
	apply(t, s, model.Write(2, 1))
	apply(t, s, model.Finish(2))
	apply(t, s, model.Begin(3))
	apply(t, s, model.Read(3, 1))
	apply(t, s, model.Finish(3))
	if err := s.Delete(2); err != nil {
		t.Fatal(err)
	}
	if !s.Graph().HasArc(1, 3) {
		t.Fatal("reduction must splice 1->3")
	}
}

func TestStatusListings(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 0))
	apply(t, s, model.Finish(2))
	apply(t, s, model.Begin(3))
	apply(t, s, model.Write(3, 5))
	apply(t, s, model.Finish(3))
	if got := s.Active(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Active = %v", got)
	}
	if got := s.Finished(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Finished = %v", got)
	}
	if got := s.Committed(); len(got) != 1 || got[0] != 3 {
		t.Fatalf("Committed = %v", got)
	}
	st := s.Stats()
	if st.Begins != 3 || st.Writes != 2 || st.Reads != 1 || st.Commits != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestMustApplyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewScheduler().MustApply(model.Read(1, 0))
}

func TestDependentsClosure(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 0))
	apply(t, s, model.Write(2, 1))
	apply(t, s, model.Finish(2))
	apply(t, s, model.Begin(3))
	apply(t, s, model.Read(3, 1))
	apply(t, s, model.Finish(3))
	got := s.DependentsClosure(map[model.TxnID]struct{}{1: {}})
	if len(got) != 3 || !got.Has(1) || !got.Has(2) || !got.Has(3) {
		t.Fatalf("closure = %v", got.Sorted())
	}
}
