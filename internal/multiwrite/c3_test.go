package multiwrite

import (
	"testing"

	"repro/internal/model"
)

// privateWriterScenario: T1 active reads a; T2 writes a's conflict
// partner... Build the simplest C3-relevant shape:
//
//	A (active) -w-> F1 (finished, dep on A) -w-> C1 (committed)
//
// where C1 writes a private entity: not deletable (M=∅ world has an
// FC-path A→...→C1 but no alternative for the private entity).
func TestC3PrivateEntityBlocksDeletion(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))    // A
	apply(t, s, model.Write(1, 0)) // A writes e0
	apply(t, s, model.Begin(2))    // F1
	apply(t, s, model.Read(2, 0))  // reads A's e0: dep on A; arc 1->2
	apply(t, s, model.Write(2, 1)) // writes e1
	apply(t, s, model.Finish(2))   // F (depends on active A)
	apply(t, s, model.Begin(3))    // C1
	apply(t, s, model.Write(3, 1)) // ww conflict with F1: arc 2->3, no dep
	apply(t, s, model.Write(3, 2)) // private entity e2
	apply(t, s, model.Finish(3))   // commits
	if s.Status(3) != model.StatusCommitted {
		t.Fatalf("T3 = %v", s.Status(3))
	}
	ok, viol, err := s.CheckC3(3)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("T3 wrote a private entity with an FC-path from active T1: C3 must fail")
	}
	if viol.Tj != 1 {
		t.Fatalf("violation Tj = T%d, want T1", viol.Tj)
	}
}

// TestC3AbortWorldMatters: a transaction that looks safe in the M=∅ world
// can be unsafe in a world where aborting an active removes the witness.
func TestC3AbortWorldMatters(t *testing.T) {
	// A1 (active) writes e0.
	// W (finished, dep on A1): reads e0, writes x.      [the witness]
	// A2 (active) reads yy.
	// Ti: writes yy (arc A2->Ti), writes x after W (arc W->Ti), commits.
	// In the M=∅ world: FC-path A2->Ti direct; witness for x: path
	// A2->Ti->? no... witness must be a path from A2 to some Tk≠Ti with
	// access(x) ≥ write. W is not a successor of A2. Hmm — then Ti is
	// already unsafe in the empty world. Reverse: make W a successor of
	// A2 too: W also writes z after A2 reads z (arc A2->W).
	s := NewScheduler()
	apply(t, s, model.Begin(1))    // A1
	apply(t, s, model.Write(1, 0)) // e0
	apply(t, s, model.Begin(2))    // A2
	apply(t, s, model.Read(2, 3))  // reads z (e3)
	apply(t, s, model.Begin(4))    // W
	apply(t, s, model.Read(4, 0))  // dep on A1; arc 1->4
	apply(t, s, model.Write(4, 3)) // writes z: arc 2->4 (A2 read z)
	apply(t, s, model.Write(4, 1)) // writes x (e1)
	apply(t, s, model.Finish(4))   // F (dep on A1)
	apply(t, s, model.Begin(5))    // Ti
	apply(t, s, model.Read(5, 2))  // reads yy (e2)? need arc A2->Ti:
	// A2 must have accessed something Ti writes. A2 read z; Ti writes z.
	apply(t, s, model.Write(5, 3)) // writes z: arcs 2->5 and 4->5
	apply(t, s, model.Write(5, 1)) // writes x after W: arc 4->5
	apply(t, s, model.Finish(5))   // commits? deps: read of e2 (never written) — no dep
	if s.Status(5) != model.StatusCommitted {
		t.Fatalf("T5 = %v", s.Status(5))
	}
	// Empty world: A2 has FC-path to T5 (direct arc). Witness for x: path
	// A2 -> W (arc 2->4), W writes x: OK. Witness for z: W writes z: OK.
	// e2 is read-only for T5; witness needs any reader: nobody else reads
	// e2 — VIOLATION with M=∅? "accesses x at least as strongly": T5
	// reads e2, so a witness must read or write e2. None does. So C3
	// already fails in the empty world. Drop the e2 read to make the
	// empty world pass... (we keep this test focused on the abort world)
	// Rebuild without the e2 read:
	s2 := NewScheduler()
	apply(t, s2, model.Begin(1))
	apply(t, s2, model.Write(1, 0))
	apply(t, s2, model.Begin(2))
	apply(t, s2, model.Read(2, 3))
	apply(t, s2, model.Begin(4))
	apply(t, s2, model.Read(4, 0))
	apply(t, s2, model.Write(4, 3))
	apply(t, s2, model.Write(4, 1))
	apply(t, s2, model.Finish(4))
	apply(t, s2, model.Begin(5))
	apply(t, s2, model.Write(5, 3))
	apply(t, s2, model.Write(5, 1))
	apply(t, s2, model.Finish(5))
	if s2.Status(5) != model.StatusCommitted {
		t.Fatalf("T5 = %v", s2.Status(5))
	}
	// Empty world passes (W witnesses both x and z). But M={A1}: aborting
	// A1 cascades to W (it read A1's e0), removing the witness, while the
	// FC-path A2->T5 (direct arc) survives: C3 must fail.
	ok, viol, err := s2.CheckC3(5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("aborting A1 removes witness W; C3 must fail")
	}
	if len(viol.M) != 1 || viol.M[0] != 1 {
		t.Fatalf("violating M = %v, want [1]", viol.M)
	}
	if viol.Tj != 2 {
		t.Fatalf("Tj = T%d, want T2", viol.Tj)
	}
}

// TestC3Deletable: with a committed witness the deletion is safe in every
// abort world.
func TestC3DeletableWithCommittedWitness(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(2))    // A2 active
	apply(t, s, model.Read(2, 3))  // reads z
	apply(t, s, model.Begin(4))    // W: committed witness
	apply(t, s, model.Write(4, 3)) // writes z: arc 2->4
	apply(t, s, model.Write(4, 1)) // writes x
	apply(t, s, model.Finish(4))   // commits (no deps)
	apply(t, s, model.Begin(5))    // Ti
	apply(t, s, model.Write(5, 3)) // arcs 2->5, 4->5
	apply(t, s, model.Write(5, 1)) // arc 4->5
	apply(t, s, model.Finish(5))   // commits
	ok, viol, err := s.CheckC3(5)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("committed witness W covers both entities; C3 should hold: %v", viol)
	}
	if did, err := s.DeleteIfSafe(5); err != nil || !did {
		t.Fatalf("DeleteIfSafe: %v %v", did, err)
	}
	if s.Graph().HasNode(5) {
		t.Fatal("node should be gone")
	}
}

func TestC3NoActives(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0))
	apply(t, s, model.Finish(1))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Write(2, 0))
	apply(t, s, model.Finish(2))
	for _, id := range []model.TxnID{1, 2} {
		ok, _, err := s.CheckC3(id)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("with no actives every committed txn is deletable; T%d failed", id)
		}
	}
}

func TestC3RequiresCommitted(t *testing.T) {
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Write(1, 0))
	if _, _, err := s.CheckC3(1); err == nil {
		t.Fatal("C3 on active must error")
	}
	if _, _, err := s.CheckC3(99); err == nil {
		t.Fatal("C3 on unknown must error")
	}
}

func TestC3TooManyActives(t *testing.T) {
	s := NewScheduler()
	for id := model.TxnID(0); id < MaxC3Actives+1; id++ {
		apply(t, s, model.Begin(id))
	}
	apply(t, s, model.Begin(100))
	apply(t, s, model.Write(100, 0))
	apply(t, s, model.Finish(100))
	if _, _, err := s.CheckC3(100); err == nil {
		t.Fatal("active count beyond MaxC3Actives must error")
	}
}

func TestIrreducible(t *testing.T) {
	// One committed with private entity + FC path from an active: stuck.
	s := NewScheduler()
	apply(t, s, model.Begin(1))
	apply(t, s, model.Read(1, 0)) // active reads e0
	apply(t, s, model.Begin(2))
	apply(t, s, model.Write(2, 0)) // arc 1->2
	apply(t, s, model.Write(2, 5)) // private
	apply(t, s, model.Finish(2))   // commits
	stuck, err := s.Irreducible()
	if err != nil {
		t.Fatal(err)
	}
	if !stuck {
		t.Fatal("T2's private entity blocks deletion: graph is irreducible")
	}
	// Add a second writer of both entities: now T2 becomes deletable.
	apply(t, s, model.Begin(3))
	apply(t, s, model.Write(3, 0))
	apply(t, s, model.Write(3, 5))
	apply(t, s, model.Finish(3))
	stuck, err = s.Irreducible()
	if err != nil {
		t.Fatal(err)
	}
	if stuck {
		t.Fatal("T3 witnesses everything T2 did; T2 should now be deletable")
	}
}

func TestC3ViolationError(t *testing.T) {
	v := &C3Violation{Ti: 1, M: []model.TxnID{2}, Tj: 3, X: 4}
	if v.Error() == "" {
		t.Fatal("empty error")
	}
}
