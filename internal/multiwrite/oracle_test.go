package multiwrite

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

// mwScript is one planned multiwrite transaction.
type mwScript struct {
	id    model.TxnID
	steps []model.Step
}

// randomMWStream materializes a random multiple-write workload: per
// transaction, interleaved reads and writes ended by Finish.
func randomMWStream(seed int64, txns, entities, maxActive int) []model.Step {
	rng := rand.New(rand.NewSource(seed))
	var out []model.Step
	var live []*mwScript
	next := model.TxnID(1)
	issued := 0
	for issued < txns || len(live) > 0 {
		if issued < txns && (len(live) == 0 || (len(live) < maxActive && rng.Intn(3) == 0)) {
			sc := &mwScript{id: next}
			next++
			issued++
			n := 1 + rng.Intn(4)
			for i := 0; i < n; i++ {
				x := model.Entity(rng.Intn(entities))
				if rng.Intn(2) == 0 {
					sc.steps = append(sc.steps, model.Read(sc.id, x))
				} else {
					sc.steps = append(sc.steps, model.Write(sc.id, x))
				}
			}
			sc.steps = append(sc.steps, model.Finish(sc.id))
			out = append(out, model.Begin(sc.id))
			live = append(live, sc)
			continue
		}
		i := rng.Intn(len(live))
		sc := live[i]
		out = append(out, sc.steps[0])
		sc.steps = sc.steps[1:]
		if len(sc.steps) == 0 {
			live = append(live[:i], live[i+1:]...)
		}
	}
	return out
}

// feed drives a stream through a scheduler, skipping steps of dead
// (aborted, incl. cascaded) transactions; if gc is true, runs the greedy
// C3 sweep after every accepted step that committed something. It returns
// the per-step accept decisions and the log for offline CSR checking.
func feed(t *testing.T, s *Scheduler, steps []model.Step, gc bool) ([]bool, *trace.Log) {
	t.Helper()
	dead := map[model.TxnID]bool{}
	var decisions []bool
	log := trace.NewLog()
	for _, st := range steps {
		if dead[st.Txn] {
			continue
		}
		res, err := s.Apply(st)
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		decisions = append(decisions, res.Accepted)
		log.Append(st, res.Accepted)
		for _, a := range res.Aborted {
			dead[a] = true
			log.MarkAborted(a)
		}
		if gc && len(res.Committed) > 0 {
			s.GreedyC3Sweep(0)
		}
	}
	return decisions, log
}

// TestGreedyC3LockstepEquivalence is the multiple-write analogue of the
// basic-model oracle: a scheduler that C3-deletes committed transactions
// must make exactly the decisions of the never-deleting scheduler, and
// its accepted subschedule must be CSR. (Lemma 4 + Theorem 2, whose proof
// the paper notes is rule-agnostic.)
func TestGreedyC3LockstepEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		// Small active counts keep the exponential C3 affordable.
		steps := randomMWStream(seed, 24, 4, 3)
		full := NewScheduler()
		reduced := NewScheduler()
		fd, flog := feed(t, full, steps, false)
		rd, rlog := feed(t, reduced, steps, true)
		if len(fd) != len(rd) {
			t.Fatalf("seed %d: decision streams differ in length: %d vs %d", seed, len(fd), len(rd))
		}
		for i := range fd {
			if fd[i] != rd[i] {
				t.Fatalf("seed %d: divergence at decision %d: full=%v reduced=%v", seed, i, fd[i], rd[i])
			}
		}
		if err := flog.CheckAcceptedCSR(); err != nil {
			t.Fatalf("seed %d (full): %v", seed, err)
		}
		if err := rlog.CheckAcceptedCSR(); err != nil {
			t.Fatalf("seed %d (reduced): %v", seed, err)
		}
	}
}

// TestGreedyC3ActuallyDeletes guards against the sweep being vacuous.
func TestGreedyC3ActuallyDeletes(t *testing.T) {
	deletedTotal := 0
	for seed := int64(0); seed < 12; seed++ {
		steps := randomMWStream(seed, 24, 4, 3)
		s := NewScheduler()
		dead := map[model.TxnID]bool{}
		for _, st := range steps {
			if dead[st.Txn] {
				continue
			}
			res, err := s.Apply(st)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range res.Aborted {
				dead[a] = true
			}
			if len(res.Committed) > 0 {
				deletedTotal += len(s.GreedyC3Sweep(0))
			}
		}
	}
	if deletedTotal == 0 {
		t.Fatal("greedy C3 never deleted anything across 12 seeds")
	}
}

// TestGreedyC3SweepBudget: the candidate budget stops the sweep early.
func TestGreedyC3SweepBudget(t *testing.T) {
	s := NewScheduler()
	for id := model.TxnID(1); id <= 5; id++ {
		s.MustApply(model.Begin(id))
		s.MustApply(model.Write(id, model.Entity(id)))
		s.MustApply(model.Finish(id))
	}
	got := s.GreedyC3Sweep(2)
	if len(got) > 2 {
		t.Fatalf("budget 2 but deleted %d", len(got))
	}
	if len(got) == 0 {
		t.Fatal("independent committed transactions should be deletable")
	}
}

// TestGreedyC3StopsBeyondActiveCap: with too many actives the sweep
// degrades gracefully (no deletions, no panic).
func TestGreedyC3StopsBeyondActiveCap(t *testing.T) {
	s := NewScheduler()
	for id := model.TxnID(0); id < MaxC3Actives+2; id++ {
		s.MustApply(model.Begin(id))
	}
	s.MustApply(model.Begin(1000))
	s.MustApply(model.Write(1000, 0))
	s.MustApply(model.Finish(1000))
	if got := s.GreedyC3Sweep(0); len(got) != 0 {
		t.Fatalf("sweep beyond the active cap must delete nothing, got %v", got)
	}
}
