// Condition C3 (Section 5): the necessary and sufficient condition for
// safely deleting a COMMITTED transaction in the multiple-write model.
//
//	(C3) For each set M of active transactions, for each entity x
//	accessed by Ti: if G − M⁺ has an FC-path from an active transaction
//	Tj to Ti, then it has also a path from Tj to some other transaction
//	Tk that accesses x at least as strongly as Ti.
//
// Here M⁺ is the set of transactions depending on M (we remove M ∪ M⁺,
// the effect of aborting M), an FC-path uses only Finished/Committed
// intermediate nodes, and the second path is unrestricted (its nodes may
// be of any type, even active). Theorem 6 proves deciding C3 is
// NP-complete — the checker below enumerates subsets M and is exponential
// in the number of active transactions by necessity.
package multiwrite

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
)

// MaxC3Actives bounds the subset enumeration (2^a subsets).
const MaxC3Actives = 20

// C3Violation witnesses a C3 failure.
type C3Violation struct {
	Ti model.TxnID
	// M is the violating set of active transactions.
	M []model.TxnID
	// Tj is the active transaction with an FC-path to Ti in G − M⁺.
	Tj model.TxnID
	// X is the entity with no strongly-enough-accessed alternative Tk.
	X model.Entity
}

// Error implements error.
func (v *C3Violation) Error() string {
	return fmt.Sprintf("C3 violated for T%d: aborting M=%v leaves FC-path from T%d but no alternative path covering entity %d",
		v.Ti, v.M, v.Tj, v.X)
}

// CheckC3 decides whether deleting the committed transaction ti is safe.
// It returns an error if ti is not committed or if the active-transaction
// count exceeds MaxC3Actives.
func (s *Scheduler) CheckC3(ti model.TxnID) (bool, *C3Violation, error) {
	t, ok := s.txns[ti]
	if !ok || t.Status != model.StatusCommitted {
		return false, nil, fmt.Errorf("multiwrite: C3 applies to committed transactions; T%d is %v", ti, s.Status(ti))
	}
	actives := s.Active()
	if len(actives) > MaxC3Actives {
		return false, nil, fmt.Errorf("multiwrite: %d active transactions exceed MaxC3Actives=%d (the problem is NP-complete)", len(actives), MaxC3Actives)
	}
	access := t.Access
	// Enumerate all subsets M of actives, smallest first (violations tend
	// to need small M; the empty set covers the "no aborts" world).
	n := len(actives)
	for mask := 0; mask < 1<<uint(n); mask++ {
		m := make(graph.NodeSet)
		var mList []model.TxnID
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				m.Add(actives[i])
				mList = append(mList, actives[i])
			}
		}
		removed := s.dependentsClosure(m)
		if removed.Has(ti) {
			// ti is committed and cannot depend on actives; but be safe.
			continue
		}
		if ok, viol := s.checkC3ForRemoved(ti, access, removed); !ok {
			viol.M = mList
			return false, viol, nil
		}
	}
	return true, nil, nil
}

// checkC3ForRemoved verifies the C3 body for one removed-set world.
func (s *Scheduler) checkC3ForRemoved(ti model.TxnID, access model.AccessSet, removed graph.NodeSet) (bool, *C3Violation) {
	alive := func(id model.TxnID) bool { return !removed.Has(id) }
	// FC-ancestors of ti in G − removed: walk backwards through
	// Finished/Committed intermediates that are alive.
	fcThrough := func(id model.TxnID) bool {
		if !alive(id) {
			return false
		}
		st := s.Status(id)
		return st == model.StatusFinished || st == model.StatusCommitted
	}
	// BackwardClosure's through-filter governs expansion; arc endpoints
	// must also be alive, so filter the collected set afterwards.
	anc := s.backwardClosureAlive(ti, alive, fcThrough)
	for tj := range anc {
		if s.Status(tj) != model.StatusActive {
			continue
		}
		// Unrestricted descendants of tj among alive nodes.
		desc := s.forwardClosureAlive(tj, alive)
		for x, need := range access {
			found := false
			for tk := range desc {
				if tk == ti {
					continue
				}
				if s.Access(tk).Get(x).AtLeastAsStrong(need) {
					found = true
					break
				}
			}
			if !found {
				return false, &C3Violation{Ti: ti, Tj: tj, X: x}
			}
		}
	}
	return true, nil
}

// backwardClosureAlive collects nodes with a path to src where every node
// on the path (including the collected endpoint's outgoing hop) is alive,
// and intermediates additionally satisfy through.
func (s *Scheduler) backwardClosureAlive(src model.TxnID, alive func(model.TxnID) bool, through func(model.TxnID) bool) graph.NodeSet {
	out := make(graph.NodeSet)
	expanded := graph.NodeSet{src: {}}
	stack := []model.TxnID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s.g.Preds(n, func(p model.TxnID) bool {
			if !alive(p) {
				return true
			}
			if !out.Has(p) && p != src {
				out.Add(p)
			}
			if !expanded.Has(p) && through(p) {
				expanded.Add(p)
				stack = append(stack, p)
			}
			return true
		})
	}
	return out
}

// forwardClosureAlive collects nodes reachable from src via alive nodes.
func (s *Scheduler) forwardClosureAlive(src model.TxnID, alive func(model.TxnID) bool) graph.NodeSet {
	out := make(graph.NodeSet)
	expanded := graph.NodeSet{src: {}}
	stack := []model.TxnID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		s.g.Succs(n, func(d model.TxnID) bool {
			if !alive(d) {
				return true
			}
			if !out.Has(d) && d != src {
				out.Add(d)
				expanded.Add(d)
				stack = append(stack, d)
			}
			return true
		})
	}
	return out
}

// DeleteIfSafe deletes ti iff C3 holds.
func (s *Scheduler) DeleteIfSafe(ti model.TxnID) (bool, error) {
	ok, _, err := s.CheckC3(ti)
	if err != nil || !ok {
		return false, err
	}
	return true, s.Delete(ti)
}

// Irreducible reports whether no committed transaction can be safely
// deleted (used by Theorem 6 part (i): deciding irreducibility is
// NP-complete).
func (s *Scheduler) Irreducible() (bool, error) {
	for _, id := range s.Committed() {
		ok, _, err := s.CheckC3(id)
		if err != nil {
			return false, err
		}
		if ok {
			return false, nil
		}
	}
	return true, nil
}
