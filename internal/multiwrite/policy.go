// GreedyC3: the multiple-write model's deletion policy. After each commit
// it repeatedly deletes any committed transaction satisfying condition C3.
// Each C3 test is exponential in the number of active transactions
// (Theorem 6 — there is no way around it), so the sweep refuses to run
// beyond MaxC3Actives and can be budgeted with MaxCandidates.
package multiwrite

import "repro/internal/model"

// GreedyC3Sweep deletes committed transactions satisfying C3 until none
// does, returning the deleted IDs. maxCandidates bounds how many C3 tests
// run per sweep (0 = unlimited); the sweep stops early when the active
// count exceeds MaxC3Actives (the checker would error).
func (s *Scheduler) GreedyC3Sweep(maxCandidates int) []model.TxnID {
	var deleted []model.TxnID
	tested := 0
	for {
		progress := false
		for _, id := range s.Committed() {
			if maxCandidates > 0 && tested >= maxCandidates {
				return deleted
			}
			ok, _, err := s.CheckC3(id)
			tested++
			if err != nil {
				return deleted // too many actives: stop sweeping
			}
			if ok {
				if s.Delete(id) == nil {
					deleted = append(deleted, id)
					progress = true
				}
			}
		}
		if !progress {
			return deleted
		}
	}
}
