// Theorem 6 (Fig. 3): 3-SAT → multiple-write-model conflict graph in
// which committed transaction C is safely deletable iff the formula is
// unsatisfiable.
package reduction

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/multiwrite"
	"repro/internal/sat"
)

// ThreeSATGadget is the realized Fig. 3 construction.
type ThreeSATGadget struct {
	Formula *sat.Formula
	Sched   *multiwrite.Scheduler
	Steps   []model.Step

	// Role → transaction ID maps. Pos/NegLit are the type-F literal
	// transactions x_i / x̄_i; Pos/NegAct the type-A transactions A_i / Ā_i;
	// Clause[j][k] the type-F literal-occurrence transactions c_jk.
	PosLit, NegLit []model.TxnID
	PosAct, NegAct []model.TxnID
	Clause         [][3]model.TxnID
	A, B, C, D     model.TxnID

	// Y is the entity read by C and D.
	Y model.Entity
}

// arcKind distinguishes Fig. 3's solid (write-write) and dashed
// (write-read, i.e. dependency) arcs.
type arcKind uint8

const (
	arcWW arcKind = iota
	arcWR
)

type specArc struct {
	from, to model.TxnID
	kind     arcKind
}

// BuildThreeSAT realizes the Fig. 3 graph for f as an actual schedule fed
// through the multiwrite scheduler: every arc is labeled with a distinct
// entity accessed only by its endpoints; every transaction except C also
// writes a private entity; C and D read the shared entity y. Transactions
// execute serially in topological order; A, A_i, Ā_i never finish (type
// A), the literal and clause transactions finish but depend on their
// variable's active transaction (type F), and B, C, D commit (type C).
func BuildThreeSAT(f *sat.Formula) (*ThreeSATGadget, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	for i, c := range f.Clauses {
		if len(c) != 3 {
			return nil, fmt.Errorf("reduction: clause %d has %d literals; need exactly 3", i, len(c))
		}
	}
	n, m := f.NumVars, len(f.Clauses)
	g := &ThreeSATGadget{Formula: f}

	// Allocate transaction IDs densely.
	next := model.TxnID(0)
	alloc := func() model.TxnID { id := next; next++; return id }
	g.A = alloc()
	for i := 0; i < n; i++ {
		g.PosAct = append(g.PosAct, alloc())
		g.NegAct = append(g.NegAct, alloc())
		g.PosLit = append(g.PosLit, alloc())
		g.NegLit = append(g.NegLit, alloc())
	}
	for j := 0; j < m; j++ {
		var c [3]model.TxnID
		for k := 0; k < 3; k++ {
			c[k] = alloc()
		}
		g.Clause = append(g.Clause, c)
	}
	g.B = alloc()
	g.C = alloc()
	g.D = alloc()

	// Spec arcs per Fig. 3.
	var arcs []specArc
	ww := func(u, v model.TxnID) { arcs = append(arcs, specArc{u, v, arcWW}) }
	wr := func(u, v model.TxnID) { arcs = append(arcs, specArc{u, v, arcWR}) }
	// Chain: A → x_1, x̄_1; x_i, x̄_i → x_{i+1}, x̄_{i+1}; x_n, x̄_n → B → C.
	ww(g.A, g.PosLit[0])
	ww(g.A, g.NegLit[0])
	for i := 0; i+1 < n; i++ {
		ww(g.PosLit[i], g.PosLit[i+1])
		ww(g.PosLit[i], g.NegLit[i+1])
		ww(g.NegLit[i], g.PosLit[i+1])
		ww(g.NegLit[i], g.NegLit[i+1])
	}
	ww(g.PosLit[n-1], g.B)
	ww(g.NegLit[n-1], g.B)
	ww(g.B, g.C)
	// A_i, Ā_i → D for all i.
	for i := 0; i < n; i++ {
		ww(g.PosAct[i], g.D)
		ww(g.NegAct[i], g.D)
	}
	// Clause paths A → c_j1 → c_j2 → c_j3 → D.
	for j := 0; j < m; j++ {
		ww(g.A, g.Clause[j][0])
		ww(g.Clause[j][0], g.Clause[j][1])
		ww(g.Clause[j][1], g.Clause[j][2])
		ww(g.Clause[j][2], g.D)
	}
	// Dependencies (write-read): A_i → x_i, Ā_i → x̄_i; literal occurrences
	// depend on their variable's transaction of matching sign.
	for i := 0; i < n; i++ {
		wr(g.PosAct[i], g.PosLit[i])
		wr(g.NegAct[i], g.NegLit[i])
	}
	for j, cl := range f.Clauses {
		for k, lit := range cl {
			if lit.Positive() {
				wr(g.PosAct[lit.Var()], g.Clause[j][k])
			} else {
				wr(g.NegAct[lit.Var()], g.Clause[j][k])
			}
		}
	}

	// Entity layout: one distinct entity per arc; then one private entity
	// per transaction except C; then y.
	entity := model.Entity(0)
	arcEnt := make([]model.Entity, len(arcs))
	for i := range arcs {
		arcEnt[i] = entity
		entity++
	}
	private := make(map[model.TxnID]model.Entity)
	for id := model.TxnID(0); id < next; id++ {
		if id == g.C {
			continue
		}
		private[id] = entity
		entity++
	}
	g.Y = entity

	// Realize the schedule: serial topological order. Group arcs by
	// endpoint for step emission.
	outArcs := make(map[model.TxnID][]int)
	inArcs := make(map[model.TxnID][]int)
	for i, a := range arcs {
		outArcs[a.from] = append(outArcs[a.from], i)
		inArcs[a.to] = append(inArcs[a.to], i)
	}
	// Topological order of the spec: actives first, then literal levels,
	// then clause nodes, then B, C, D. (Clause node c_j1 must follow A;
	// all actives have no in-arcs.)
	var order []model.TxnID
	order = append(order, g.A)
	for i := 0; i < n; i++ {
		order = append(order, g.PosAct[i], g.NegAct[i])
	}
	for i := 0; i < n; i++ {
		order = append(order, g.PosLit[i], g.NegLit[i])
	}
	for j := 0; j < m; j++ {
		order = append(order, g.Clause[j][0], g.Clause[j][1], g.Clause[j][2])
	}
	order = append(order, g.B, g.C, g.D)

	isActive := map[model.TxnID]bool{g.A: true}
	for i := 0; i < n; i++ {
		isActive[g.PosAct[i]] = true
		isActive[g.NegAct[i]] = true
	}

	var steps []model.Step
	for _, id := range order {
		steps = append(steps, model.Begin(id))
		// Incoming arcs: this transaction is the later accessor.
		for _, ai := range inArcs[id] {
			a := arcs[ai]
			if a.kind == arcWW {
				steps = append(steps, model.Write(id, arcEnt[ai]))
			} else {
				steps = append(steps, model.Read(id, arcEnt[ai]))
			}
		}
		// Outgoing arcs: this transaction writes first (both ww and wr
		// arcs have a WRITE at the tail).
		for _, ai := range outArcs[id] {
			steps = append(steps, model.Write(id, arcEnt[ai]))
		}
		if p, ok := private[id]; ok {
			steps = append(steps, model.Write(id, p))
		}
		if id == g.C || id == g.D {
			steps = append(steps, model.Read(id, g.Y))
		}
		if !isActive[id] {
			steps = append(steps, model.Finish(id))
		}
	}

	s := multiwrite.NewScheduler()
	for _, st := range steps {
		res, err := s.Apply(st)
		if err != nil {
			return nil, fmt.Errorf("reduction: 3-SAT gadget: %v", err)
		}
		if !res.Accepted {
			return nil, fmt.Errorf("reduction: 3-SAT gadget rejected step %v (construction bug)", st)
		}
	}
	g.Sched = s
	g.Steps = steps
	return g, nil
}

// CDeletable runs the exponential C3 check on transaction C.
func (g *ThreeSATGadget) CDeletable() (bool, *multiwrite.C3Violation, error) {
	return g.Sched.CheckC3(g.C)
}

// AssignmentFromViolation converts a violating set M into the satisfying
// truth assignment Theorem 6's proof extracts: x_i is true iff A_i ∈ M
// (variables with neither transaction in M default to false, which the
// proof shows is consistent).
func (g *ThreeSATGadget) AssignmentFromViolation(viol *multiwrite.C3Violation) sat.Assignment {
	inM := make(graph.NodeSet)
	for _, id := range viol.M {
		inM.Add(id)
	}
	a := make(sat.Assignment, g.Formula.NumVars)
	for i := 0; i < g.Formula.NumVars; i++ {
		a[i] = inM.Has(g.PosAct[i])
	}
	return a
}

// MFromAssignment builds the violating set M the proof uses for a
// satisfying assignment: A_i for true variables, Ā_i for false ones.
func (g *ThreeSATGadget) MFromAssignment(a sat.Assignment) []model.TxnID {
	var m []model.TxnID
	for i := 0; i < g.Formula.NumVars; i++ {
		if a[i] {
			m = append(m, g.PosAct[i])
		} else {
			m = append(m, g.NegAct[i])
		}
	}
	return m
}
