package reduction

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/sat"
	"repro/internal/setcover"
)

// --- Theorem 5: Set Cover ---------------------------------------------

func TestSetCoverGadgetStructure(t *testing.T) {
	in := &setcover.Instance{N: 3, Sets: [][]int{{0, 1}, {1, 2}, {2}}}
	gad, err := BuildSetCover(in)
	if err != nil {
		t.Fatal(err)
	}
	g := gad.Sched.Graph()
	// T0 -> every set transaction and T0 -> TLast.
	for _, ti := range gad.TSet {
		if !g.HasArc(gad.T0, ti) {
			t.Fatalf("missing arc T0->T%d", ti)
		}
	}
	if !g.HasArc(gad.T0, gad.TLast) {
		t.Fatal("missing arc T0->TLast (entity y)")
	}
	if gad.Sched.Status(gad.T0) != model.StatusActive {
		t.Fatal("T0 must stay active")
	}
	if gad.Sched.Status(gad.TLast) != model.StatusCompleted {
		t.Fatal("TLast must be completed")
	}
}

func TestSetCoverNothingDeletableBeforeLastStep(t *testing.T) {
	// Replay the gadget's steps except the final write and assert that no
	// transaction satisfies C1 — the theorem's property (1).
	in := &setcover.Instance{N: 3, Sets: [][]int{{0, 1}, {1, 2}, {0, 2}}}
	gad, err := BuildSetCover(in)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewScheduler(core.Config{})
	for _, st := range gad.Steps[:len(gad.Steps)-1] {
		if res := s.MustApply(st); !res.Accepted {
			t.Fatalf("prefix step rejected: %v", st)
		}
	}
	if got := core.C1Candidates(s, s.Graph(), s.CompletedTxns()); len(got) != 0 {
		t.Fatalf("no transaction may be deletable before the last step; got %v", got)
	}
}

func TestSetCoverTLastNeverDeletable(t *testing.T) {
	in := &setcover.Instance{N: 2, Sets: [][]int{{0}, {1}}}
	gad, err := BuildSetCover(in)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := core.CheckC1(gad.Sched, gad.Sched.Graph(), gad.TLast); ok {
		t.Fatal("T_{m+1} wrote y with no other writer: must not be deletable")
	}
}

func TestSetCoverDeletableIffOthersCover(t *testing.T) {
	// S1={0,1}, S2={1,2}, S3={0,2}: every element in exactly 2 sets, so
	// each Ti individually satisfies C1 after the last step.
	in := &setcover.Instance{N: 3, Sets: [][]int{{0, 1}, {1, 2}, {0, 2}}}
	gad, err := BuildSetCover(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := gad.DeletableNow(); len(got) != 3 {
		t.Fatalf("deletable = %v, want all three set transactions", got)
	}
	// S1={0}: element 0 only in S1 → T1 not individually deletable.
	in2 := &setcover.Instance{N: 2, Sets: [][]int{{0}, {1}, {1}}}
	gad2, err := BuildSetCover(in2)
	if err != nil {
		t.Fatal(err)
	}
	got := gad2.DeletableNow()
	for _, id := range got {
		if id == gad2.TSet[0] {
			t.Fatal("T1 covers element 0 alone; it must not be deletable")
		}
	}
}

func TestTheorem5Correspondence(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(4)
		m := 3 + rng.Intn(4)
		in := setcover.Random(rng, n, m)
		gad, err := BuildSetCover(in)
		if err != nil {
			t.Fatal(err)
		}
		want := gad.PredictedMaxDeletable()
		got := gad.MaxDeletable(0)
		if got != want {
			t.Fatalf("trial %d: max deletable = %d, want m - minCover = %d (instance %+v)",
				trial, got, want, in)
		}
	}
}

func TestTheorem5KeptSetIsCover(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 15; trial++ {
		in := setcover.Random(rng, 3+rng.Intn(4), 3+rng.Intn(4))
		gad, err := BuildSetCover(in)
		if err != nil {
			t.Fatal(err)
		}
		best := core.MaxSafeSet(gad.Sched, gad.Sched.Graph(), gad.Sched.CompletedTxns(), 0)
		// The kept set transactions must form a cover.
		cover := gad.CoverFromKept(best)
		if !in.IsCover(cover) {
			t.Fatalf("trial %d: kept sets %v are not a cover of %+v", trial, cover, in)
		}
	}
}

func TestSetCoverGadgetRejectsBadInstance(t *testing.T) {
	if _, err := BuildSetCover(&setcover.Instance{N: 2, Sets: [][]int{{0}}}); err == nil {
		t.Fatal("uncoverable instance must be rejected")
	}
}

// --- Theorem 6: 3-SAT --------------------------------------------------

func fml(nvars int, clauses ...[3]int) *sat.Formula {
	f := &sat.Formula{NumVars: nvars}
	for _, c := range clauses {
		f.Clauses = append(f.Clauses, sat.Clause{sat.Literal(c[0]), sat.Literal(c[1]), sat.Literal(c[2])})
	}
	return f
}

func TestThreeSATGadgetStructure(t *testing.T) {
	f := fml(3, [3]int{1, 2, 3})
	gad, err := BuildThreeSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	s := gad.Sched
	// Statuses per Fig. 3.
	if s.Status(gad.A) != model.StatusActive {
		t.Fatal("A must be active")
	}
	for i := 0; i < 3; i++ {
		if s.Status(gad.PosAct[i]) != model.StatusActive || s.Status(gad.NegAct[i]) != model.StatusActive {
			t.Fatalf("A_%d/Ā_%d must be active", i, i)
		}
		if s.Status(gad.PosLit[i]) != model.StatusFinished || s.Status(gad.NegLit[i]) != model.StatusFinished {
			t.Fatalf("x_%d/x̄_%d must be finished (F): %v %v", i, i, s.Status(gad.PosLit[i]), s.Status(gad.NegLit[i]))
		}
	}
	for k := 0; k < 3; k++ {
		if s.Status(gad.Clause[0][k]) != model.StatusFinished {
			t.Fatalf("c_1%d must be F", k)
		}
	}
	for _, id := range []model.TxnID{gad.B, gad.C, gad.D} {
		if s.Status(id) != model.StatusCommitted {
			t.Fatalf("B/C/D must be committed; T%d is %v", id, s.Status(id))
		}
	}
	// Key arcs.
	g := s.Graph()
	if !g.HasArc(gad.A, gad.PosLit[0]) || !g.HasArc(gad.A, gad.NegLit[0]) {
		t.Fatal("chain start arcs missing")
	}
	if !g.HasArc(gad.PosLit[2], gad.B) || !g.HasArc(gad.B, gad.C) {
		t.Fatal("chain end arcs missing")
	}
	if !g.HasArc(gad.Clause[0][2], gad.D) {
		t.Fatal("clause path end missing")
	}
	if !g.HasArc(gad.PosAct[0], gad.D) {
		t.Fatal("A_i -> D missing")
	}
	// Dependencies: literal transactions depend on their actives.
	if got := s.DependsOn(gad.PosLit[1]); len(got) != 1 || got[0] != gad.PosAct[1] {
		t.Fatalf("x_2 deps = %v", got)
	}
}

func TestTheorem6BAndDNeverDeletable(t *testing.T) {
	f := fml(3, [3]int{1, -2, 3})
	gad, err := BuildThreeSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []model.TxnID{gad.B, gad.D} {
		ok, _, err := gad.Sched.CheckC3(id)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("T%d wrote a private entity: must not be deletable", id)
		}
	}
}

func TestTheorem6Satisfiable(t *testing.T) {
	// (x1 ∨ x2 ∨ x3): trivially satisfiable → C NOT deletable.
	f := fml(3, [3]int{1, 2, 3})
	gad, err := BuildThreeSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	ok, viol, err := gad.CDeletable()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("satisfiable formula: C must NOT be deletable")
	}
	// The violating M must decode to a satisfying assignment.
	a := gad.AssignmentFromViolation(viol)
	if !f.Satisfies(a) {
		t.Fatalf("extracted assignment %v does not satisfy %v", a, f)
	}
}

func TestTheorem6Unsatisfiable(t *testing.T) {
	// All eight sign patterns over three variables: unsatisfiable.
	f := fml(3,
		[3]int{1, 2, 3}, [3]int{1, 2, -3}, [3]int{1, -2, 3}, [3]int{1, -2, -3},
		[3]int{-1, 2, 3}, [3]int{-1, 2, -3}, [3]int{-1, -2, 3}, [3]int{-1, -2, -3})
	if _, satisfiable := sat.Solve(f); satisfiable {
		t.Fatal("precondition: formula must be unsat")
	}
	gad, err := BuildThreeSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	ok, viol, err := gad.CDeletable()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("unsatisfiable formula: C must be deletable; violation %v", viol)
	}
}

func TestTheorem6RandomCorrespondence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	satCount, unsatCount := 0, 0
	for trial := 0; trial < 12; trial++ {
		n := 3
		m := 2 + rng.Intn(12) // spans SAT and UNSAT densities
		f := sat.Random3CNF(rng, n, m)
		_, satisfiable := sat.Solve(f)
		gad, err := BuildThreeSAT(f)
		if err != nil {
			t.Fatal(err)
		}
		deletable, viol, err := gad.CDeletable()
		if err != nil {
			t.Fatal(err)
		}
		if deletable == satisfiable {
			t.Fatalf("trial %d: deletable=%v but satisfiable=%v for %v", trial, deletable, satisfiable, f)
		}
		if satisfiable {
			satCount++
			if a := gad.AssignmentFromViolation(viol); !f.Satisfies(a) {
				t.Fatalf("trial %d: violation does not decode to a model", trial)
			}
		} else {
			unsatCount++
		}
	}
	if satCount == 0 || unsatCount == 0 {
		t.Skipf("poor mix: %d sat, %d unsat; widen densities", satCount, unsatCount)
	}
}

func TestMFromAssignmentBlocksADPath(t *testing.T) {
	// For a satisfying assignment, aborting M must break every A→D clause
	// path while keeping an FC-path A→C — the proof's forward direction.
	f := fml(3, [3]int{1, -2, 3}, [3]int{-1, 2, -3})
	a, satisfiable := sat.Solve(f)
	if !satisfiable {
		t.Fatal("precondition")
	}
	gad, err := BuildThreeSAT(f)
	if err != nil {
		t.Fatal(err)
	}
	m := gad.MFromAssignment(a)
	seed := make(graph.NodeSet)
	for _, id := range m {
		seed.Add(id)
	}
	removed := gad.Sched.DependentsClosure(seed)
	// Removed must contain, for each clause, at least one occurrence node.
	for j := range f.Clauses {
		hit := false
		for k := 0; k < 3; k++ {
			if removed.Has(gad.Clause[j][k]) {
				hit = true
			}
		}
		if !hit {
			t.Fatalf("clause %d path not broken by M", j)
		}
	}
	// And for each variable, exactly one literal node removed.
	for i := 0; i < f.NumVars; i++ {
		pos := removed.Has(gad.PosLit[i])
		neg := removed.Has(gad.NegLit[i])
		if pos == neg {
			t.Fatalf("variable %d: exactly one of x/x̄ must be removed (pos=%v neg=%v)", i, pos, neg)
		}
	}
}

func TestThreeSATRejectsNon3CNF(t *testing.T) {
	f := &sat.Formula{NumVars: 2, Clauses: []sat.Clause{{1, 2}}}
	if _, err := BuildThreeSAT(f); err == nil {
		t.Fatal("non-3 clause must be rejected")
	}
	bad := &sat.Formula{NumVars: 1, Clauses: []sat.Clause{{1, 1, 5}}}
	if _, err := BuildThreeSAT(bad); err == nil {
		t.Fatal("invalid literal must be rejected")
	}
}
