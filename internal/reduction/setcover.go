// Package reduction builds the paper's two NP-completeness gadgets as
// *actual schedules* fed through the real schedulers:
//
//   - Theorem 5: Set Cover → a basic-model schedule in which the maximum
//     safely-deletable subset has size m − (minimum cover size).
//   - Theorem 6 (Fig. 3): 3-SAT → a multiple-write-model schedule in
//     which committed transaction C is safely deletable iff the formula
//     is unsatisfiable.
//
// Both builders return handles that map gadget roles back to transaction
// IDs and entities, so tests can cross-validate against the independent
// set-cover and SAT solvers.
package reduction

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/setcover"
)

// SetCoverGadget is the realized Theorem 5 construction.
type SetCoverGadget struct {
	// Instance is the source set-cover instance (n elements, m sets).
	Instance *setcover.Instance
	// Sched holds the schedule's final state (T0 still active).
	Sched *core.Scheduler
	// T0 is the active reader; TSet[i] is the transaction of set i;
	// TLast is T_{m+1}.
	T0    model.TxnID
	TSet  []model.TxnID
	TLast model.TxnID
	// Steps is the full schedule p that was applied.
	Steps []model.Step
}

// Entity layout: elements x_e = e; y = n; z_i = n+1+i.
func scEntity(e int) model.Entity   { return model.Entity(e) }
func scY(n int) model.Entity        { return model.Entity(n) }
func scZ(n int, i int) model.Entity { return model.Entity(n + 1 + i) }

// BuildSetCover realizes Theorem 5's schedule for the instance:
//
//	"Transaction T0 reads y and all elements of X. Transaction Ti with
//	1 ≤ i ≤ m reads z_i and writes the elements of S_i. Finally, T_{m+1}
//	reads z_1, ..., z_m and writes y."
//
// After the last step, a subset N of {T1..Tm} is safely deletable iff the
// remaining sets form a cover; hence max deletable = m − min cover.
func BuildSetCover(in *setcover.Instance) (*SetCoverGadget, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	n, m := in.N, len(in.Sets)
	gad := &SetCoverGadget{
		Instance: in,
		T0:       0,
		TLast:    model.TxnID(m + 1),
	}
	for i := 0; i < m; i++ {
		gad.TSet = append(gad.TSet, model.TxnID(i+1))
	}
	var steps []model.Step
	// T0 reads y and all of X, and stays active.
	steps = append(steps, model.Begin(gad.T0), model.Read(gad.T0, scY(n)))
	for e := 0; e < n; e++ {
		steps = append(steps, model.Read(gad.T0, scEntity(e)))
	}
	// T1..Tm execute to completion serially.
	for i := 0; i < m; i++ {
		ti := gad.TSet[i]
		steps = append(steps, model.Begin(ti), model.Read(ti, scZ(n, i)))
		var ws []model.Entity
		for _, e := range in.Sets[i] {
			ws = append(ws, scEntity(e))
		}
		steps = append(steps, model.WriteFinal(ti, ws...))
	}
	// T_{m+1} reads all z_i and writes y (the triggering last step).
	steps = append(steps, model.Begin(gad.TLast))
	for i := 0; i < m; i++ {
		steps = append(steps, model.Read(gad.TLast, scZ(n, i)))
	}
	steps = append(steps, model.WriteFinal(gad.TLast, scY(n)))

	s := core.NewScheduler(core.Config{})
	for _, st := range steps {
		res, err := s.Apply(st)
		if err != nil {
			return nil, fmt.Errorf("reduction: set-cover gadget: %v", err)
		}
		if !res.Accepted {
			return nil, fmt.Errorf("reduction: set-cover gadget rejected step %v (construction bug)", st)
		}
	}
	gad.Sched = s
	gad.Steps = steps
	return gad, nil
}

// DeletableNow returns the set transactions currently satisfying C1.
func (g *SetCoverGadget) DeletableNow() []model.TxnID {
	return core.C1Candidates(g.Sched, g.Sched.Graph(), g.Sched.CompletedTxns())
}

// MaxDeletable computes the maximum safely-deletable subset via the exact
// solver and returns its size.
func (g *SetCoverGadget) MaxDeletable(budget int) int {
	best := core.MaxSafeSet(g.Sched, g.Sched.Graph(), g.Sched.CompletedTxns(), budget)
	return len(best)
}

// CoverFromKept translates a safely-deletable set N into the cover the
// theorem promises: the KEPT set transactions (those not in N).
func (g *SetCoverGadget) CoverFromKept(deleted graph.NodeSet) []int {
	var cover []int
	for i, ti := range g.TSet {
		if !deleted.Has(ti) {
			cover = append(cover, i)
		}
	}
	return cover
}

// PredictedMaxDeletable returns m − (minimum cover size) from the exact
// set-cover solver — the value Theorem 5 says MaxDeletable must equal.
func (g *SetCoverGadget) PredictedMaxDeletable() int {
	mc := setcover.MinCover(g.Instance)
	if mc == nil {
		return 0
	}
	return len(g.Instance.Sets) - len(mc)
}
