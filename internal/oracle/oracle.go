// Package oracle runs two schedulers in lockstep — the original conflict
// scheduler (no deletions) and a reduced scheduler driven by a deletion
// policy — and compares their decisions step by step.
//
// By the paper's Lemma 2 and Theorem 2, a deletion policy is correct iff
// the reduced scheduler behaves exactly like the original on every input;
// the first disagreement, if any, is always the reduced scheduler
// accepting a step the original rejects. The oracle detects exactly that,
// and additionally re-checks the accepted subschedule's conflict
// serializability offline (condition (3) of Lemma 2) with internal/trace.
package oracle

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Divergence describes the first step on which the schedulers disagreed.
type Divergence struct {
	StepIndex       int
	Step            model.Step
	FullAccepted    bool
	ReducedAccepted bool
}

// Error implements error.
func (d *Divergence) Error() string {
	return fmt.Sprintf("oracle: divergence at step %d (%v): full=%v reduced=%v",
		d.StepIndex, d.Step, d.FullAccepted, d.ReducedAccepted)
}

// Runner drives the pair.
type Runner struct {
	Full    *core.Scheduler
	Reduced *core.Scheduler
	Log     *trace.Log
	steps   int
	div     *Divergence
}

// New builds a runner whose reduced scheduler uses policy.
func New(policy core.Policy) *Runner {
	return &Runner{
		Full:    core.NewScheduler(core.Config{}),
		Reduced: core.NewScheduler(core.Config{Policy: policy}),
		Log:     trace.NewLog(),
	}
}

// Diverged returns the recorded divergence, or nil.
func (r *Runner) Diverged() *Divergence { return r.div }

// Steps returns how many steps have been applied.
func (r *Runner) Steps() int { return r.steps }

// Apply feeds one step to both schedulers. It returns the reduced
// scheduler's result and a non-nil *Divergence the first time the two
// disagree (after which the runner refuses further steps: the pair's
// states are no longer comparable).
func (r *Runner) Apply(step model.Step) (core.Result, *Divergence, error) {
	if r.div != nil {
		return core.Result{}, r.div, fmt.Errorf("oracle: already diverged")
	}
	fullRes, errF := r.Full.Apply(step)
	redRes, errR := r.Reduced.Apply(step)
	if errF != nil || errR != nil {
		// Protocol errors must agree too; if only one errs the harness
		// itself is broken.
		if (errF == nil) != (errR == nil) {
			return core.Result{}, nil, fmt.Errorf("oracle: protocol error mismatch: full=%v reduced=%v", errF, errR)
		}
		return core.Result{}, nil, errF
	}
	r.steps++
	r.Log.Append(step, redRes.Accepted)
	if fullRes.Accepted != redRes.Accepted {
		r.div = &Divergence{
			StepIndex:       r.steps,
			Step:            step,
			FullAccepted:    fullRes.Accepted,
			ReducedAccepted: redRes.Accepted,
		}
		return redRes, r.div, nil
	}
	return redRes, nil, nil
}

// Report summarizes a full run.
type Report struct {
	Steps        int
	Divergence   *Divergence
	FullStats    core.Stats
	ReducedStats core.Stats
	// CSRViolation is non-nil if the reduced scheduler's accepted
	// subschedule failed the offline conflict-serializability check.
	CSRViolation error
}

// Ok reports whether the run showed the policy behaving safely.
func (rep *Report) Ok() bool { return rep.Divergence == nil && rep.CSRViolation == nil }

// RunGenerator drains gen (up to maxSteps) through the pair, reporting the
// first divergence if any. Aborts are reported back to the generator from
// the REDUCED scheduler's decisions (identical to the full scheduler's
// until divergence, at which point the run stops anyway).
func (r *Runner) RunGenerator(gen workload.Generator, maxSteps int) Report {
	for i := 0; maxSteps <= 0 || i < maxSteps; i++ {
		step, ok := gen.Next()
		if !ok {
			break
		}
		res, div, err := r.Apply(step)
		if err != nil {
			break
		}
		if div != nil {
			break
		}
		if !res.Accepted {
			gen.NotifyAbort(step.Txn)
		}
	}
	rep := Report{
		Steps:        r.steps,
		Divergence:   r.div,
		FullStats:    r.Full.Stats(),
		ReducedStats: r.Reduced.Stats(),
	}
	if r.div == nil {
		rep.CSRViolation = r.Log.CheckAcceptedCSR()
	}
	return rep
}

// RunSteps feeds a fixed step sequence, skipping steps that belong to
// transactions already aborted, and returns the report. Hand-built
// schedules (examples, gadgets) use this entry point.
func (r *Runner) RunSteps(steps []model.Step) Report {
	aborted := make(map[model.TxnID]bool)
	for _, st := range steps {
		if aborted[st.Txn] {
			continue
		}
		res, div, err := r.Apply(st)
		if err != nil || div != nil {
			break
		}
		if !res.Accepted {
			aborted[st.Txn] = true
		}
	}
	rep := Report{
		Steps:        r.steps,
		Divergence:   r.div,
		FullStats:    r.Full.Stats(),
		ReducedStats: r.Reduced.Stats(),
	}
	if r.div == nil {
		rep.CSRViolation = r.Log.CheckAcceptedCSR()
	}
	return rep
}
