package oracle

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// safePolicies are the policies Theorems 1–4 prove correct (plus safe
// compositions).
func safePolicies() []core.Policy {
	return []core.Policy{
		core.NoGC{},
		core.Lemma1Policy{},
		core.GreedyC1{},
		core.GreedyC1{NewestFirst: true},
		core.MaxSafeExact{Budget: 20000},
		core.NoncurrentSafe{},
		core.NoncurrentNaive{}, // standalone it is safe; see policies.go
		core.Chain{core.GreedyC1{}, core.NoncurrentSafe{}},
	}
}

func workloads(seed int64) []workload.Config {
	return []workload.Config{
		{Entities: 6, Txns: 60, MaxActive: 4, ReadsMin: 1, ReadsMax: 3, WritesMin: 1, WritesMax: 2, Seed: seed},
		{Entities: 3, Txns: 50, MaxActive: 5, ReadsMin: 1, ReadsMax: 2, WritesMin: 1, WritesMax: 1, Seed: seed + 1000},
		{Entities: 24, Txns: 60, MaxActive: 6, ReadsMin: 2, ReadsMax: 5, WritesMin: 0, WritesMax: 2, HotFrac: 0.2, Seed: seed + 2000},
		{Entities: 12, Txns: 50, MaxActive: 4, ReadsMin: 1, ReadsMax: 4, WritesMin: 1, WritesMax: 2, Straggler: 8, Seed: seed + 3000},
		{Entities: 8, Txns: 40, MaxActive: 4, ReadsMin: 1, ReadsMax: 3, WritesMin: 1, WritesMax: 2, ZipfS: 1.4, Seed: seed + 4000},
	}
}

// TestSafePoliciesNeverDiverge is the empirical heart of the reproduction:
// for every provably-safe policy and a spread of workloads, the reduced
// scheduler must agree with the full scheduler on every step, and its
// accepted subschedule must be CSR (Lemma 2 conditions (1)–(3)).
func TestSafePoliciesNeverDiverge(t *testing.T) {
	for _, p := range safePolicies() {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 6; seed++ {
				for wi, cfg := range workloads(seed * 17) {
					r := New(p)
					rep := r.RunGenerator(workload.New(cfg), 0)
					if rep.Divergence != nil {
						t.Fatalf("workload %d seed %d: %v", wi, seed, rep.Divergence)
					}
					if rep.CSRViolation != nil {
						t.Fatalf("workload %d seed %d: %v", wi, seed, rep.CSRViolation)
					}
					if rep.Steps == 0 {
						t.Fatalf("workload %d seed %d: no steps ran", wi, seed)
					}
				}
			}
		})
	}
}

// TestSafePoliciesIdenticalStats: beyond accept/reject agreement, the
// abort and completion counters must match exactly (Lemma 2 condition 2:
// the schedulers behave exactly the same way).
func TestSafePoliciesIdenticalStats(t *testing.T) {
	for _, p := range safePolicies() {
		r := New(p)
		rep := r.RunGenerator(workload.New(workload.Config{
			Entities: 8, Txns: 80, MaxActive: 5, ReadsMin: 1, ReadsMax: 3,
			WritesMin: 1, WritesMax: 2, Seed: 99,
		}), 0)
		if !rep.Ok() {
			t.Fatalf("%s: %v / %v", p.Name(), rep.Divergence, rep.CSRViolation)
		}
		if rep.FullStats.Aborts != rep.ReducedStats.Aborts ||
			rep.FullStats.Completed != rep.ReducedStats.Completed ||
			rep.FullStats.Accepted != rep.ReducedStats.Accepted {
			t.Fatalf("%s: stats diverge: full=%+v reduced=%+v", p.Name(), rep.FullStats, rep.ReducedStats)
		}
	}
}

// TestCommitGCCaught: the unsafe delete-at-commit policy must diverge on
// workloads with read-write contention (Theorem 2's negative direction).
func TestCommitGCCaught(t *testing.T) {
	caught := false
	for seed := int64(0); seed < 40 && !caught; seed++ {
		r := New(core.CommitGC{})
		rep := r.RunGenerator(workload.New(workload.Config{
			Entities: 3, Txns: 60, MaxActive: 5, ReadsMin: 1, ReadsMax: 3,
			WritesMin: 1, WritesMax: 2, Seed: seed,
		}), 0)
		if rep.Divergence != nil {
			caught = true
			if !rep.Divergence.ReducedAccepted || rep.Divergence.FullAccepted {
				t.Fatalf("divergence direction wrong: %+v (Lemma 2: the reduced scheduler accepts what the full one rejects)", rep.Divergence)
			}
		}
	}
	if !caught {
		t.Fatal("CommitGC never diverged across 40 seeds; oracle or policy broken")
	}
}

// TestExample1TrapCaught: the Chain{GreedyC1-newest, NoncurrentNaive}
// composition must diverge on Example 1 plus T1's final write —
// reproducing the paper's Example 1 discussion end to end.
func TestExample1TrapCaught(t *testing.T) {
	r := New(core.Chain{core.GreedyC1{NewestFirst: true}, core.NoncurrentNaive{}})
	steps := append(core.Example1Steps(), model.WriteFinal(core.Ex1T1, core.Ex1X))
	rep := r.RunSteps(steps)
	if rep.Divergence == nil {
		t.Fatal("Example 1 trap must diverge")
	}
	if rep.Divergence.Step.Kind != model.KindWriteFinal || rep.Divergence.Step.Txn != core.Ex1T1 {
		t.Fatalf("divergence at wrong step: %+v", rep.Divergence)
	}
	if rep.Divergence.FullAccepted || !rep.Divergence.ReducedAccepted {
		t.Fatalf("divergence direction wrong: %+v", rep.Divergence)
	}
}

// TestSafeChainOnExample1 passes where the naive chain fails.
func TestSafeChainOnExample1(t *testing.T) {
	r := New(core.Chain{core.GreedyC1{NewestFirst: true}, core.NoncurrentSafe{}})
	steps := append(core.Example1Steps(), model.WriteFinal(core.Ex1T1, core.Ex1X))
	rep := r.RunSteps(steps)
	if !rep.Ok() {
		t.Fatalf("safe chain diverged: %v / %v", rep.Divergence, rep.CSRViolation)
	}
}

// TestNecessityDrivenDivergence: for random schedules, pick a completed
// transaction violating C1, FORCE its deletion, build the Theorem-1
// continuation, and confirm the oracle catches the divergence — the
// necessity direction of Theorem 1, exercised mechanically.
func TestNecessityDrivenDivergence(t *testing.T) {
	tested := 0
	for seed := int64(0); seed < 60 && tested < 8; seed++ {
		// Build a random prefix on a fresh pair.
		r := New(forceDeletePolicy{})
		gen := workload.New(workload.Config{
			Entities: 5, Txns: 12, MaxActive: 4, ReadsMin: 1, ReadsMax: 3,
			WritesMin: 1, WritesMax: 1, Seed: seed,
		})
		// Run roughly half the workload.
		for i := 0; i < 25; i++ {
			step, ok := gen.Next()
			if !ok {
				break
			}
			res, div, err := r.Apply(step)
			if err != nil || div != nil {
				t.Fatalf("seed %d: premature divergence or error: %v %v", seed, div, err)
			}
			if !res.Accepted {
				gen.NotifyAbort(step.Txn)
			}
		}
		// Find a C1 violator on the REDUCED side.
		var victim model.TxnID = model.NoTxn
		var viol *core.C1Violation
		for _, id := range r.Reduced.CompletedTxns() {
			if ok, v := r.Reduced.CheckC1(id); !ok && v != nil && v.Tj != model.NoTxn {
				victim, viol = id, v
				break
			}
		}
		if victim == model.NoTxn {
			continue
		}
		cont, err := core.NecessityContinuation(r.Reduced, victim, viol, 10_000, 9_999)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Force the unsafe deletion on the reduced side only, then replay
		// the continuation through the oracle.
		if !forceDelete(r.Reduced, victim) {
			t.Fatalf("seed %d: force delete failed", seed)
		}
		rep := r.RunSteps(cont)
		if rep.Divergence == nil {
			t.Fatalf("seed %d: necessity continuation did not diverge (victim T%d, viol %v)", seed, victim, viol)
		}
		tested++
	}
	if tested == 0 {
		t.Skip("no C1 violators found in any prefix; widen the workloads")
	}
}

// forceDeletePolicy performs no sweeps; deletions are injected manually.
type forceDeletePolicy struct{}

func (forceDeletePolicy) Name() string      { return "manual" }
func (forceDeletePolicy) Sweep(*core.Sweep) {}

// forceDelete bypasses safety via the exported test hook: we use a sweep
// through a one-shot policy... simplest is DeleteIfSafe's internals — but
// the deletion must be UNSAFE here, so route through the exported
// ForceDelete helper.
func forceDelete(s *core.Scheduler, id model.TxnID) bool {
	return s.ForceDelete(id) == nil
}

func TestDivergenceErrorString(t *testing.T) {
	d := &Divergence{StepIndex: 3, Step: model.Read(1, 2), FullAccepted: false, ReducedAccepted: true}
	if d.Error() == "" {
		t.Fatal("empty error")
	}
}

func TestRunnerRefusesAfterDivergence(t *testing.T) {
	r := New(core.Chain{core.GreedyC1{NewestFirst: true}, core.NoncurrentNaive{}})
	steps := append(core.Example1Steps(), model.WriteFinal(core.Ex1T1, core.Ex1X))
	rep := r.RunSteps(steps)
	if rep.Divergence == nil {
		t.Fatal("expected divergence")
	}
	if _, _, err := r.Apply(model.Begin(500)); err == nil {
		t.Fatal("Apply after divergence must error")
	}
	if r.Diverged() == nil {
		t.Fatal("Diverged() should report")
	}
	if r.Steps() == 0 {
		t.Fatal("Steps()")
	}
	_ = fmt.Sprintf("%v", rep)
}
