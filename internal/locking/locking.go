// Package locking implements a strict two-phase-locking scheduler as the
// paper's baseline: "If pure locking is used to control concurrency, then
// transactions can be closed at commit time" (Section 1). The scheduler
// acquires shared locks for reads and exclusive locks for the final
// atomic write, holds everything to commit, and at commit releases the
// locks and FORGETS the transaction entirely — the storage behaviour the
// conflict-graph scheduler cannot match without the paper's deletion
// conditions.
//
// Blocked steps queue FIFO per entity; deadlocks are detected with a
// waits-for cycle check at block time and resolved by aborting the
// requester. Locking accepts only a subset of the conflict-serializable
// schedules (2PL ⊊ CSR), which experiment E7 quantifies.
package locking

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/model"
)

// Outcome of a step.
type Outcome uint8

const (
	// Executed: locks granted, step ran.
	Executed Outcome = iota
	// Blocked: step queued behind conflicting locks.
	Blocked
	// Aborted: the step would deadlock; its transaction was aborted.
	Aborted
)

// Result reports one step's effect.
type Result struct {
	Step    model.Step
	Outcome Outcome
	// Unblocked lists queued steps granted as a consequence, in order.
	Unblocked []model.Step
	// Committed lists transactions committed (and closed) by this call.
	Committed []model.TxnID
}

// Stats counts scheduler activity.
type Stats struct {
	Begins    int64
	Reads     int64
	Writes    int64
	BlockedEv int64
	Deadlocks int64
	Aborts    int64
	Commits   int64
	// PeakLive is the peak number of transaction records held — the
	// locking scheduler's analogue of retained graph nodes. It never
	// exceeds the number of concurrently active transactions.
	PeakLive int
	// PeakLocks is the peak number of held lock entries.
	PeakLocks int
}

// request is a queued lock acquisition.
type request struct {
	txn model.TxnID
	// wants maps entity -> exclusive?
	wants map[model.Entity]bool
	// step re-emitted on grant.
	step model.Step
}

type txnState struct {
	id model.TxnID
	// held maps entity -> exclusive?
	held    map[model.Entity]bool
	pending *request
	// writeSet of the final write once submitted.
	finishing bool
}

// Scheduler is the strict-2PL baseline.
type Scheduler struct {
	txns map[model.TxnID]*txnState

	// sharedHolders[x] = transactions holding a shared lock on x.
	sharedHolders map[model.Entity]graph.NodeSet
	// exclHolder[x] = transaction holding the exclusive lock, if any.
	exclHolder map[model.Entity]model.TxnID
	// queues[x] = FIFO of waiting requests that include x.
	queue []*request
	stats Stats
}

// NewScheduler returns an empty locking scheduler.
func NewScheduler() *Scheduler {
	return &Scheduler{
		txns:          make(map[model.TxnID]*txnState),
		sharedHolders: make(map[model.Entity]graph.NodeSet),
		exclHolder:    make(map[model.Entity]model.TxnID),
	}
}

// Stats returns a snapshot of the counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Live returns the number of transaction records currently held.
func (s *Scheduler) Live() int { return len(s.txns) }

// IsBlocked reports whether id has a queued request.
func (s *Scheduler) IsBlocked(id model.TxnID) bool {
	t, ok := s.txns[id]
	return ok && t.pending != nil
}

// Apply processes one basic-model step.
func (s *Scheduler) Apply(step model.Step) (Result, error) {
	switch step.Kind {
	case model.KindBegin:
		if _, ok := s.txns[step.Txn]; ok {
			return Result{}, fmt.Errorf("locking: duplicate BEGIN for T%d", step.Txn)
		}
		s.txns[step.Txn] = &txnState{id: step.Txn, held: make(map[model.Entity]bool)}
		s.stats.Begins++
		if n := len(s.txns); n > s.stats.PeakLive {
			s.stats.PeakLive = n
		}
		return Result{Step: step, Outcome: Executed}, nil
	case model.KindRead:
		t, err := s.liveTxn(step.Txn)
		if err != nil {
			return Result{}, err
		}
		s.stats.Reads++
		return s.acquire(t, step, map[model.Entity]bool{step.Entity: false}), nil
	case model.KindWriteFinal:
		t, err := s.liveTxn(step.Txn)
		if err != nil {
			return Result{}, err
		}
		s.stats.Writes++
		wants := make(map[model.Entity]bool, len(step.Entities))
		for _, x := range step.Entities {
			wants[x] = true
		}
		t.finishing = true
		return s.acquire(t, step, wants), nil
	default:
		return Result{}, fmt.Errorf("locking: step kind %v not part of the basic model", step.Kind)
	}
}

func (s *Scheduler) liveTxn(id model.TxnID) (*txnState, error) {
	t, ok := s.txns[id]
	if !ok {
		return nil, fmt.Errorf("locking: step for unknown transaction T%d (no BEGIN, committed, or aborted)", id)
	}
	if t.pending != nil {
		return nil, fmt.Errorf("locking: T%d already has a blocked step", id)
	}
	return t, nil
}

// canGrant reports whether t can take all locks in wants right now.
func (s *Scheduler) canGrant(t *txnState, wants map[model.Entity]bool) bool {
	for x, excl := range wants {
		if holder, ok := s.exclHolder[x]; ok && holder != t.id {
			return false
		}
		if excl {
			for h := range s.sharedHolders[x] {
				if h != t.id {
					return false
				}
			}
		}
	}
	return true
}

// grant takes the locks (upgrading shared to exclusive where needed).
func (s *Scheduler) grant(t *txnState, wants map[model.Entity]bool) {
	for x, excl := range wants {
		if excl {
			delete(s.sharedHolders[x], t.id)
			if len(s.sharedHolders[x]) == 0 {
				delete(s.sharedHolders, x)
			}
			s.exclHolder[x] = t.id
			t.held[x] = true
		} else if !t.held[x] {
			set, ok := s.sharedHolders[x]
			if !ok {
				set = make(graph.NodeSet)
				s.sharedHolders[x] = set
			}
			set.Add(t.id)
			t.held[x] = false
		}
	}
	if n := s.countLocks(); n > s.stats.PeakLocks {
		s.stats.PeakLocks = n
	}
}

func (s *Scheduler) countLocks() int {
	n := len(s.exclHolder)
	for _, hs := range s.sharedHolders {
		n += len(hs)
	}
	return n
}

// blockers returns the transactions t would wait for given wants.
func (s *Scheduler) blockers(t *txnState, wants map[model.Entity]bool) graph.NodeSet {
	out := make(graph.NodeSet)
	for x, excl := range wants {
		if holder, ok := s.exclHolder[x]; ok && holder != t.id {
			out.Add(holder)
		}
		if excl {
			for h := range s.sharedHolders[x] {
				if h != t.id {
					out.Add(h)
				}
			}
		}
	}
	return out
}

// waitsForCycle reports whether blocking t on `blockers` would close a
// cycle in the waits-for graph.
func (s *Scheduler) waitsForCycle(start model.TxnID, first graph.NodeSet) bool {
	seen := make(graph.NodeSet)
	stack := first.Sorted()
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == start {
			return true
		}
		if seen.Has(n) {
			continue
		}
		seen.Add(n)
		// n waits for the blockers of its own pending request.
		if tn := s.txns[n]; tn != nil && tn.pending != nil {
			for b := range s.blockers(tn, tn.pending.wants) {
				stack = append(stack, b)
			}
		}
	}
	return false
}

// acquire grants, blocks, or deadlock-aborts the step.
func (s *Scheduler) acquire(t *txnState, step model.Step, wants map[model.Entity]bool) Result {
	if s.canGrant(t, wants) {
		s.grant(t, wants)
		res := Result{Step: step, Outcome: Executed}
		s.finishIfCommitting(t, &res)
		s.drain(&res)
		return res
	}
	blockers := s.blockers(t, wants)
	if s.waitsForCycle(t.id, blockers) {
		s.stats.Deadlocks++
		s.abort(t.id)
		res := Result{Step: step, Outcome: Aborted}
		s.drain(&res)
		return res
	}
	req := &request{txn: t.id, wants: wants, step: step}
	t.pending = req
	s.queue = append(s.queue, req)
	s.stats.BlockedEv++
	return Result{Step: step, Outcome: Blocked}
}

// finishIfCommitting commits and CLOSES the transaction after its final
// write executed: locks released, record deleted — nothing about the
// transaction survives (the locking scheduler's defining property).
func (s *Scheduler) finishIfCommitting(t *txnState, res *Result) {
	if !t.finishing {
		return
	}
	s.releaseAll(t)
	delete(s.txns, t.id)
	s.stats.Commits++
	res.Committed = append(res.Committed, t.id)
}

func (s *Scheduler) releaseAll(t *txnState) {
	for x, excl := range t.held {
		if excl {
			delete(s.exclHolder, x)
		} else {
			delete(s.sharedHolders[x], t.id)
			if len(s.sharedHolders[x]) == 0 {
				delete(s.sharedHolders, x)
			}
		}
	}
	t.held = make(map[model.Entity]bool)
}

// abort releases everything T holds and drops it (and its queue entry).
func (s *Scheduler) abort(id model.TxnID) {
	t := s.txns[id]
	if t == nil {
		return
	}
	s.releaseAll(t)
	for i, r := range s.queue {
		if r.txn == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	delete(s.txns, id)
	s.stats.Aborts++
}

// drain grants queued requests (first-fit FIFO scan) until a fixpoint.
func (s *Scheduler) drain(res *Result) {
	for {
		progress := false
		for i := 0; i < len(s.queue); i++ {
			r := s.queue[i]
			t := s.txns[r.txn]
			if t == nil {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				i--
				continue
			}
			if s.canGrant(t, r.wants) {
				s.grant(t, r.wants)
				t.pending = nil
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				i--
				res.Unblocked = append(res.Unblocked, r.step)
				s.finishIfCommitting(t, res)
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// WaitsFor exposes the waits-for edges of a blocked transaction (tests).
func (s *Scheduler) WaitsFor(id model.TxnID) []model.TxnID {
	t := s.txns[id]
	if t == nil || t.pending == nil {
		return nil
	}
	out := s.blockers(t, t.pending.wants).Sorted()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
