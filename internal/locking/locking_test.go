package locking

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

func step(t *testing.T, s *Scheduler, st model.Step) Result {
	t.Helper()
	res, err := s.Apply(st)
	if err != nil {
		t.Fatalf("Apply(%v): %v", st, err)
	}
	return res
}

func TestSerialCommitCloses(t *testing.T) {
	s := NewScheduler()
	step(t, s, model.Begin(1))
	step(t, s, model.Read(1, 0))
	res := step(t, s, model.WriteFinal(1, 0))
	if res.Outcome != Executed || len(res.Committed) != 1 {
		t.Fatalf("commit failed: %+v", res)
	}
	if s.Live() != 0 {
		t.Fatal("committed transaction must be CLOSED (no record retained)")
	}
	if s.countLocks() != 0 {
		t.Fatal("all locks must be released at commit")
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	s := NewScheduler()
	step(t, s, model.Begin(1))
	step(t, s, model.Begin(2))
	if r := step(t, s, model.Read(1, 0)); r.Outcome != Executed {
		t.Fatal("first shared lock")
	}
	if r := step(t, s, model.Read(2, 0)); r.Outcome != Executed {
		t.Fatal("second shared lock must coexist")
	}
}

func TestExclusiveBlocksReader(t *testing.T) {
	s := NewScheduler()
	step(t, s, model.Begin(1))
	step(t, s, model.Begin(2))
	step(t, s, model.Read(2, 5)) // T2 shared on 5
	// T1's final write wants exclusive on 5: blocked behind T2.
	res := step(t, s, model.WriteFinal(1, 5))
	if res.Outcome != Blocked {
		t.Fatalf("want Blocked, got %v", res.Outcome)
	}
	if !s.IsBlocked(1) {
		t.Fatal("IsBlocked(1)")
	}
	if got := s.WaitsFor(1); len(got) != 1 || got[0] != 2 {
		t.Fatalf("WaitsFor = %v", got)
	}
	// T2 commits (empty write set): T1's write unblocks and commits too.
	res = step(t, s, model.WriteFinal(2))
	if res.Outcome != Executed {
		t.Fatal("T2 commit")
	}
	if len(res.Unblocked) != 1 || res.Unblocked[0].Txn != 1 {
		t.Fatalf("Unblocked = %v", res.Unblocked)
	}
	if len(res.Committed) != 2 {
		t.Fatalf("Committed = %v (T2 then T1)", res.Committed)
	}
	if s.Live() != 0 {
		t.Fatal("all closed")
	}
}

func TestUpgradeSharedToExclusive(t *testing.T) {
	s := NewScheduler()
	step(t, s, model.Begin(1))
	step(t, s, model.Read(1, 0))
	res := step(t, s, model.WriteFinal(1, 0)) // upgrade own shared lock
	if res.Outcome != Executed {
		t.Fatalf("self-upgrade must succeed: %v", res.Outcome)
	}
}

func TestDeadlockDetectedAndResolved(t *testing.T) {
	// T1 reads x, T2 reads y; T1 writes y (blocked on T2); T2 writes x:
	// waits-for cycle -> T2 aborted; T1 then proceeds.
	s := NewScheduler()
	step(t, s, model.Begin(1))
	step(t, s, model.Begin(2))
	step(t, s, model.Read(1, 0))
	step(t, s, model.Read(2, 1))
	res := step(t, s, model.WriteFinal(1, 1))
	if res.Outcome != Blocked {
		t.Fatal("T1 should block on T2's shared lock")
	}
	res = step(t, s, model.WriteFinal(2, 0))
	if res.Outcome != Aborted {
		t.Fatalf("deadlock must abort the requester; got %v", res.Outcome)
	}
	// T2's abort releases its lock on y: T1 must have been unblocked and
	// committed during the drain.
	if len(res.Unblocked) != 1 || res.Unblocked[0].Txn != 1 {
		t.Fatalf("Unblocked = %v", res.Unblocked)
	}
	st := s.Stats()
	if st.Deadlocks != 1 || st.Aborts != 1 || st.Commits != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if s.Live() != 0 {
		t.Fatal("everything closed or aborted")
	}
}

func TestProtocolErrors(t *testing.T) {
	s := NewScheduler()
	step(t, s, model.Begin(1))
	if _, err := s.Apply(model.Begin(1)); err == nil {
		t.Fatal("duplicate BEGIN")
	}
	if _, err := s.Apply(model.Read(9, 0)); err == nil {
		t.Fatal("unknown txn")
	}
	if _, err := s.Apply(model.Write(1, 0)); err == nil {
		t.Fatal("multiwrite kind")
	}
	// Blocked transactions reject further steps.
	step(t, s, model.Begin(2))
	step(t, s, model.Read(2, 5))
	if r := step(t, s, model.WriteFinal(1, 5)); r.Outcome != Blocked {
		t.Fatal("setup")
	}
	if _, err := s.Apply(model.Read(1, 6)); err == nil {
		t.Fatal("step while blocked must error")
	}
}

// TestLockingProducesCSR: drive random workloads and verify the executed
// schedule (in execution order, including unblocked steps) is conflict
// serializable — 2PL ⊂ CSR.
func TestLockingProducesCSR(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		var executed []model.Step
		aborted := map[model.TxnID]bool{}
		type plan struct {
			id    model.TxnID
			reads []model.Entity
			write []model.Entity
		}
		var act []*plan
		next := model.TxnID(1)
		issued := 0
		record := func(res Result) {
			if res.Outcome == Executed {
				executed = append(executed, res.Step)
			}
			executed = append(executed, res.Unblocked...)
			if res.Outcome == Aborted {
				aborted[res.Step.Txn] = true
			}
		}
		for issued < 25 || len(act) > 0 {
			if issued < 25 && (len(act) == 0 || rng.Intn(3) == 0) {
				p := &plan{id: next}
				next++
				issued++
				for i := 0; i < 1+rng.Intn(3); i++ {
					p.reads = append(p.reads, model.Entity(rng.Intn(5)))
				}
				p.write = []model.Entity{model.Entity(rng.Intn(5))}
				res := step(t, s, model.Begin(p.id))
				record(res)
				act = append(act, p)
				continue
			}
			i := rng.Intn(len(act))
			p := act[i]
			if s.IsBlocked(p.id) {
				// Cannot advance; try another (bounded retries via loop).
				allBlocked := true
				for _, q := range act {
					if !s.IsBlocked(q.id) {
						allBlocked = false
					}
				}
				if allBlocked {
					t.Fatalf("seed %d: all live transactions blocked (undetected deadlock)", seed)
				}
				continue
			}
			var res Result
			done := false
			if len(p.reads) > 0 {
				res = step(t, s, model.Read(p.id, p.reads[0]))
				p.reads = p.reads[1:]
			} else {
				res = step(t, s, model.WriteFinal(p.id, p.write...))
				done = true
			}
			record(res)
			if res.Outcome == Aborted || done {
				act = append(act[:i], act[i+1:]...)
			}
		}
		// Wait out any still-blocked finals: none should remain since all
		// planners finished; sanity: zero live.
		if s.Live() != 0 {
			t.Fatalf("seed %d: %d transactions still live", seed, s.Live())
		}
		// Project out aborted transactions and check CSR.
		var kept []model.Step
		for _, st := range executed {
			if !aborted[st.Txn] {
				kept = append(kept, st)
			}
		}
		if !trace.IsCSR(kept) {
			t.Fatalf("seed %d: 2PL produced a non-CSR schedule", seed)
		}
	}
}

func TestPeakStats(t *testing.T) {
	s := NewScheduler()
	step(t, s, model.Begin(1))
	step(t, s, model.Begin(2))
	step(t, s, model.Read(1, 0))
	step(t, s, model.Read(2, 1))
	st := s.Stats()
	if st.PeakLive != 2 || st.PeakLocks != 2 {
		t.Fatalf("peaks: %+v", st)
	}
}
