// Snapshot codec: a deterministic binary encoding of
// core.SchedulerState, used as the checkpoint payload. The layout is a
// version byte followed by varint-packed sections (transactions, arcs,
// entity writes); every list is length-prefixed and the exporter sorts
// each section, so equal states encode to equal bytes — a property the
// contract tests lean on.
package store

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

const snapshotVersion = 1

const (
	snapFlagCross    = 1 << 0
	snapFlagPrepared = 1 << 1
	snapFlagPinned   = 1 << 2
)

// EncodeSnapshot serializes an exported scheduler state.
func EncodeSnapshot(st core.SchedulerState) []byte {
	buf := []byte{snapshotVersion}
	buf = binary.AppendVarint(buf, st.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(st.Txns)))
	for i := range st.Txns {
		t := &st.Txns[i]
		buf = binary.AppendVarint(buf, int64(t.ID))
		buf = append(buf, byte(t.Status))
		buf = binary.AppendVarint(buf, t.BeginSeq)
		buf = binary.AppendVarint(buf, t.EndSeq)
		var flags byte
		if t.IsCross {
			flags |= snapFlagCross
		}
		if t.Prepared {
			flags |= snapFlagPrepared
		}
		if t.Pinned {
			flags |= snapFlagPinned
		}
		buf = append(buf, flags)
		buf = binary.AppendUvarint(buf, uint64(len(t.Access)))
		for _, a := range t.Access {
			buf = binary.AppendVarint(buf, int64(a.Entity))
			buf = append(buf, byte(a.Access))
			buf = binary.AppendVarint(buf, a.Seq)
		}
		buf = binary.AppendUvarint(buf, uint64(len(t.Labels)))
		for _, l := range t.Labels {
			buf = binary.AppendVarint(buf, int64(l))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.Arcs)))
	for _, a := range st.Arcs {
		buf = binary.AppendVarint(buf, int64(a.From))
		buf = binary.AppendVarint(buf, int64(a.To))
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.Writes)))
	for _, w := range st.Writes {
		buf = binary.AppendVarint(buf, int64(w.Entity))
		buf = binary.AppendVarint(buf, w.Seq)
		buf = binary.AppendVarint(buf, int64(w.Writer))
	}
	return buf
}

// snapReader decodes varint sections with a sticky error.
type snapReader struct {
	p   []byte
	err error
}

func (r *snapReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: snapshot: bad %s", ErrCorruptWAL, what)
	}
}

func (r *snapReader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.p)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.p = r.p[n:]
	return v
}

func (r *snapReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.p)
	if n <= 0 || v > maxFrameLen {
		r.fail(what)
		return 0
	}
	r.p = r.p[n:]
	return v
}

func (r *snapReader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if len(r.p) == 0 {
		r.fail(what)
		return 0
	}
	b := r.p[0]
	r.p = r.p[1:]
	return b
}

// DecodeSnapshot inverts EncodeSnapshot.
func DecodeSnapshot(data []byte) (core.SchedulerState, error) {
	var st core.SchedulerState
	if len(data) == 0 || data[0] != snapshotVersion {
		return st, fmt.Errorf("%w: snapshot: unknown version", ErrCorruptWAL)
	}
	r := &snapReader{p: data[1:]}
	st.Seq = r.varint("seq")
	ntxns := r.uvarint("txn count")
	for i := uint64(0); i < ntxns && r.err == nil; i++ {
		var t core.TxnSnap
		t.ID = model.TxnID(r.varint("txn id"))
		t.Status = model.Status(r.byte("txn status"))
		t.BeginSeq = r.varint("begin seq")
		t.EndSeq = r.varint("end seq")
		flags := r.byte("txn flags")
		t.IsCross = flags&snapFlagCross != 0
		t.Prepared = flags&snapFlagPrepared != 0
		t.Pinned = flags&snapFlagPinned != 0
		naccess := r.uvarint("access count")
		for j := uint64(0); j < naccess && r.err == nil; j++ {
			var a core.AccessSnap
			a.Entity = model.Entity(r.varint("access entity"))
			a.Access = model.Access(r.byte("access kind"))
			a.Seq = r.varint("access seq")
			t.Access = append(t.Access, a)
		}
		nlabels := r.uvarint("label count")
		for j := uint64(0); j < nlabels && r.err == nil; j++ {
			t.Labels = append(t.Labels, model.TxnID(r.varint("label")))
		}
		st.Txns = append(st.Txns, t)
	}
	narcs := r.uvarint("arc count")
	for i := uint64(0); i < narcs && r.err == nil; i++ {
		var a graph.Arc
		a.From = model.TxnID(r.varint("arc from"))
		a.To = model.TxnID(r.varint("arc to"))
		st.Arcs = append(st.Arcs, a)
	}
	nwrites := r.uvarint("write count")
	for i := uint64(0); i < nwrites && r.err == nil; i++ {
		var w core.EntityWrite
		w.Entity = model.Entity(r.varint("write entity"))
		w.Seq = r.varint("write seq")
		w.Writer = model.TxnID(r.varint("writer"))
		st.Writes = append(st.Writes, w)
	}
	if r.err != nil {
		return core.SchedulerState{}, r.err
	}
	if len(r.p) != 0 {
		return core.SchedulerState{}, fmt.Errorf("%w: snapshot: %d trailing bytes", ErrCorruptWAL, len(r.p))
	}
	return st, nil
}
