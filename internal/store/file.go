package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// FailKind names a file-backend operation that the fault-injection seam
// can intercept.
type FailKind uint8

const (
	// OpWrite is a buffered-frame write into the WAL file (Flush).
	OpWrite FailKind = iota
	// OpSync is an fsync of the WAL file.
	OpSync
	// OpCkptWrite is the write+fsync of the checkpoint temp file.
	OpCkptWrite
	// OpCkptRename is the atomic rename installing the checkpoint.
	OpCkptRename
	// OpTruncate is the WAL truncation after a checkpoint.
	OpTruncate
)

// String implements fmt.Stringer.
func (k FailKind) String() string {
	switch k {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpCkptWrite:
		return "ckpt-write"
	case OpCkptRename:
		return "ckpt-rename"
	case OpTruncate:
		return "truncate"
	default:
		return "op-unknown"
	}
}

// FailOp identifies one interceptable operation: its kind and the shard
// performing it.
type FailOp struct {
	Kind  FailKind
	Shard int
}

// Options configures the file backend.
type Options struct {
	// Failpoint, if non-nil, runs before every interceptable I/O
	// operation; a non-nil return fails that operation with the error (the
	// crash harness's kill-at-random-point seam). Once a failpoint has
	// fired, the harness typically keeps failing every later op — a
	// crashed process does not come back for one more write.
	Failpoint func(FailOp) error
}

// File is the file-backed Store: one WAL and one checkpoint file per
// shard under a data directory, plus a meta file pinning the shard count
// (recovering with a different shard count would scatter entities across
// the wrong partitions).
type File struct {
	dir    string
	shards []fileShard
}

const metaName = "meta"

// OpenFile opens (or initializes) a data directory for n shards.
func OpenFile(dir string, n int, opts Options) (*File, error) {
	if n < 1 {
		n = 1
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	metaPath := filepath.Join(dir, metaName)
	meta := fmt.Sprintf("txgc-store v1\nshards %d\n", n)
	if prev, err := os.ReadFile(metaPath); err == nil {
		if string(prev) != meta {
			return nil, fmt.Errorf("store: data dir %s was written with a different layout (%q, want %q)", dir, prev, meta)
		}
	} else if errors.Is(err, os.ErrNotExist) {
		if err := os.WriteFile(metaPath, []byte(meta), 0o666); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	} else {
		return nil, fmt.Errorf("store: %w", err)
	}
	f := &File{dir: dir, shards: make([]fileShard, n)}
	for i := range f.shards {
		sh := &f.shards[i]
		sh.idx = i
		sh.dir = dir
		sh.failpoint = opts.Failpoint
		wal, err := os.OpenFile(f.walPath(i), os.O_RDWR|os.O_CREATE, 0o666)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		sh.wal = wal
	}
	return f, nil
}

func (f *File) walPath(i int) string  { return filepath.Join(f.dir, fmt.Sprintf("shard-%d.wal", i)) }
func (f *File) ckptPath(i int) string { return filepath.Join(f.dir, fmt.Sprintf("shard-%d.ckpt", i)) }

// NumShards implements Store.
func (f *File) NumShards() int { return len(f.shards) }

// Shard implements Store.
func (f *File) Shard(i int) ShardStore { return &f.shards[i] }

// Close implements Store.
func (f *File) Close() error {
	var first error
	for i := range f.shards {
		sh := &f.shards[i]
		if sh.wal == nil {
			continue
		}
		if err := sh.wal.Close(); err != nil && first == nil {
			first = err
		}
		sh.wal = nil
	}
	return first
}

type fileShard struct {
	idx       int
	dir       string
	wal       *os.File
	failpoint func(FailOp) error
	// buf stages encoded frames between Flush calls; off is the WAL
	// file's current write offset (end of the flushed prefix).
	buf     []byte
	off     int64
	lastLSN uint64
	scratch []byte

	appendedBytes atomic.Int64
	fsyncs        atomic.Int64
	checkpointSeq atomic.Uint64
	records       atomic.Int64
}

func (s *fileShard) fail(k FailKind) error {
	if s.failpoint == nil {
		return nil
	}
	return s.failpoint(FailOp{Kind: k, Shard: s.idx})
}

func (s *fileShard) Append(r *Record) error {
	s.lastLSN++
	r.LSN = s.lastLSN
	s.scratch = appendRecordPayload(s.scratch[:0], r)
	before := len(s.buf)
	s.buf = appendFrame(s.buf, s.scratch)
	s.appendedBytes.Add(int64(len(s.buf) - before))
	s.records.Add(1)
	return nil
}

func (s *fileShard) Flush() error {
	if len(s.buf) == 0 {
		return nil
	}
	if err := s.fail(OpWrite); err != nil {
		return fmt.Errorf("store: shard %d wal write: %w", s.idx, err)
	}
	n, err := s.wal.WriteAt(s.buf, s.off)
	s.off += int64(n)
	if err != nil {
		// A short write leaves a torn tail; Load repairs it on recovery.
		s.buf = s.buf[:0]
		return fmt.Errorf("store: shard %d wal write: %w", s.idx, err)
	}
	s.buf = s.buf[:0]
	return nil
}

func (s *fileShard) Sync() error {
	if err := s.Flush(); err != nil {
		return err
	}
	if err := s.fail(OpSync); err != nil {
		return fmt.Errorf("store: shard %d wal fsync: %w", s.idx, err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: shard %d wal fsync: %w", s.idx, err)
	}
	s.fsyncs.Add(1)
	return nil
}

func (s *fileShard) ckptPath() string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%d.ckpt", s.idx))
}

// Checkpoint writes the snapshot to a temp file, fsyncs it, renames it
// over the checkpoint, fsyncs the directory, and truncates the WAL. A
// crash at any point leaves either the old checkpoint (with the full WAL)
// or the new one (with a WAL whose covered prefix Load skips) — never a
// half-installed state.
func (s *fileShard) Checkpoint(snapshot []byte) error {
	if err := s.Sync(); err != nil {
		return err
	}
	covered := s.lastLSN
	frame := encodeCheckpoint(covered, snapshot)
	tmp := s.ckptPath() + ".tmp"
	if err := s.fail(OpCkptWrite); err != nil {
		return fmt.Errorf("store: shard %d checkpoint write: %w", s.idx, err)
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o666)
	if err != nil {
		return fmt.Errorf("store: shard %d checkpoint: %w", s.idx, err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("store: shard %d checkpoint write: %w", s.idx, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: shard %d checkpoint fsync: %w", s.idx, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: shard %d checkpoint close: %w", s.idx, err)
	}
	if err := s.fail(OpCkptRename); err != nil {
		return fmt.Errorf("store: shard %d checkpoint rename: %w", s.idx, err)
	}
	if err := os.Rename(tmp, s.ckptPath()); err != nil {
		return fmt.Errorf("store: shard %d checkpoint rename: %w", s.idx, err)
	}
	syncDir(s.dir)
	if err := s.fail(OpTruncate); err != nil {
		return fmt.Errorf("store: shard %d wal truncate: %w", s.idx, err)
	}
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: shard %d wal truncate: %w", s.idx, err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: shard %d wal fsync: %w", s.idx, err)
	}
	s.off = 0
	s.fsyncs.Add(1)
	s.checkpointSeq.Store(covered)
	return nil
}

// syncDir fsyncs a directory so a rename survives power loss; best-effort
// (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

func (s *fileShard) Load() (ShardState, error) {
	var st ShardState
	ckptData, err := os.ReadFile(s.ckptPath())
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return st, fmt.Errorf("store: shard %d checkpoint: %w", s.idx, err)
	}
	covered, snap, err := decodeCheckpoint(ckptData)
	if err != nil {
		return st, fmt.Errorf("store: shard %d checkpoint: %w", s.idx, err)
	}
	st.Snapshot = snap
	st.CoveredLSN = covered
	data, err := os.ReadFile(s.walPath())
	if err != nil {
		return ShardState{}, fmt.Errorf("store: shard %d wal: %w", s.idx, err)
	}
	recs, cleanLen, err := scanWAL(data)
	if err != nil {
		return ShardState{}, fmt.Errorf("store: shard %d wal: %w", s.idx, err)
	}
	if cleanLen < len(data) {
		// Torn tail from a crash mid-write: truncate to the clean prefix so
		// the next append lands on a frame boundary.
		if err := s.wal.Truncate(int64(cleanLen)); err != nil {
			return ShardState{}, fmt.Errorf("store: shard %d wal repair: %w", s.idx, err)
		}
	}
	s.off = int64(cleanLen)
	s.buf = s.buf[:0]
	last := covered
	for _, r := range recs {
		if r.LSN <= covered {
			continue
		}
		st.Tail = append(st.Tail, r)
		last = r.LSN
	}
	s.lastLSN = last
	s.checkpointSeq.Store(covered)
	return st, nil
}

func (s *fileShard) walPath() string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%d.wal", s.idx))
}

func (s *fileShard) Stats() Stats {
	return Stats{
		AppendedBytes: s.appendedBytes.Load(),
		Fsyncs:        s.fsyncs.Load(),
		CheckpointSeq: s.checkpointSeq.Load(),
		Records:       s.records.Load(),
	}
}
