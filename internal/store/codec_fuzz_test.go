package store

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// FuzzWALFrame throws arbitrary byte mutations and truncations at the
// frame scanner. The contract (satellite of the crash-durability issue):
// any input yields either a clean scan (possibly with a torn tail) or a
// typed ErrCorruptWAL — never a panic, never a record that a re-encode
// does not reproduce byte-for-byte.
func FuzzWALFrame(f *testing.F) {
	// Seed with real WALs: single records, multi-record streams, and a
	// stream with a torn tail.
	mk := func(recs ...*Record) []byte {
		var buf, scratch []byte
		for i, r := range recs {
			r.LSN = uint64(i + 1)
			scratch = appendRecordPayload(scratch[:0], r)
			buf = appendFrame(buf, scratch)
		}
		return buf
	}
	f.Add(mk(rec(RecBegin, 1, 0, 1, 2)))
	f.Add(mk(rec(RecRead, 1, 5)))
	f.Add(mk(rec(RecBegin, 1, 0), rec(RecRead, 1, 0), rec(RecWrite, 1, 0)))
	f.Add(mk(rec(RecBeginSub, -1, 3), rec(RecPrepare, -1, 3), rec(RecCommit, -1), rec(RecAbort, 2)))
	full := mk(rec(RecBegin, 9, 7), rec(RecWrite, 9, 7))
	f.Add(full[:len(full)-3])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, cleanLen, err := scanWAL(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptWAL) {
				t.Fatalf("scanWAL error %v is not ErrCorruptWAL", err)
			}
			return
		}
		if cleanLen < 0 || cleanLen > len(data) {
			t.Fatalf("clean prefix %d out of range [0,%d]", cleanLen, len(data))
		}
		// Re-encoding the decoded records must reproduce the clean prefix
		// exactly: no silent misparse can survive this.
		var buf, scratch []byte
		for i := range recs {
			scratch = appendRecordPayload(scratch[:0], &recs[i])
			buf = appendFrame(buf, scratch)
		}
		if len(buf) != cleanLen {
			t.Fatalf("re-encode length %d != clean prefix %d", len(buf), cleanLen)
		}
		for i := range buf {
			if buf[i] != data[i] {
				t.Fatalf("re-encode differs from input at byte %d", i)
			}
		}
		// LSNs are contiguous by construction.
		for i := 1; i < len(recs); i++ {
			if recs[i].LSN != recs[i-1].LSN+1 {
				t.Fatalf("non-contiguous LSNs %d after %d survived the scan", recs[i].LSN, recs[i-1].LSN)
			}
		}
	})
}

// FuzzSnapshot holds DecodeSnapshot to the same standard: arbitrary bytes
// either decode (and re-encode deterministically) or fail typed.
func FuzzSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{snapshotVersion})
	f.Add(EncodeSnapshot(sampleState()))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeSnapshot(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptWAL) {
				t.Fatalf("DecodeSnapshot error %v is not ErrCorruptWAL", err)
			}
			return
		}
		re, err := DecodeSnapshot(EncodeSnapshot(st))
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if len(re.Txns) != len(st.Txns) || len(re.Arcs) != len(st.Arcs) || len(re.Writes) != len(st.Writes) {
			t.Fatalf("re-decode changed shape")
		}
	})
}

func sampleState() core.SchedulerState {
	s := core.NewScheduler(core.Config{})
	s.MustApply(model.Begin(1))
	s.MustApply(model.Read(1, 3))
	s.MustApply(model.Begin(2))
	s.MustApply(model.WriteFinal(2, 3))
	return s.ExportState()
}
