// WAL frame codec. Every frame — record or checkpoint — is
//
//	len   uint32 LE   (payload length)
//	crc   uint32 LE   (CRC-32C of the payload)
//	payload
//
// A record payload is
//
//	kind  uint8
//	lsn   uvarint
//	txn   varint (zigzag)
//	n     uvarint
//	n ×   entity varint (zigzag)
//
// (RecRead stores its single entity as n=1.) A checkpoint payload is
//
//	covered-lsn uvarint
//	snapshot bytes
//
// Scanning distinguishes two failure shapes. A *torn tail* — the file ends
// inside a frame header or before the payload's declared end — is the
// normal signature of a crash between write and sync: scanWAL stops
// cleanly at the last complete frame and reports the clean prefix length
// so Load can truncate the garbage. A *corrupt* complete frame — bad CRC,
// impossible length, undecodable payload, or an LSN that is not the
// predecessor's + 1 — means confirmed bytes changed, and scanning fails
// with ErrCorruptWAL instead of guessing.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/model"
)

const (
	frameHeaderLen = 8
	// maxFrameLen bounds a single frame's payload (64 MiB): any declared
	// length beyond it is corruption, not a frame we have not finished
	// writing yet.
	maxFrameLen = 1 << 26
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendUvarint / appendVarint are binary.AppendUvarint/AppendVarint
// aliases kept local for symmetry with the decode helpers.

func appendRecordPayload(buf []byte, r *Record) []byte {
	buf = append(buf, byte(r.Kind))
	buf = binary.AppendUvarint(buf, r.LSN)
	buf = binary.AppendVarint(buf, int64(r.Txn))
	if r.Kind == RecRead {
		buf = binary.AppendUvarint(buf, 1)
		buf = binary.AppendVarint(buf, int64(r.Entity))
		return buf
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.Entities)))
	for _, x := range r.Entities {
		buf = binary.AppendVarint(buf, int64(x))
	}
	return buf
}

func decodeRecordPayload(p []byte) (Record, error) {
	var r Record
	if len(p) < 1 {
		return r, fmt.Errorf("empty record payload")
	}
	r.Kind = RecKind(p[0])
	if r.Kind < RecBegin || r.Kind > RecAbort {
		return r, fmt.Errorf("unknown record kind %d", p[0])
	}
	p = p[1:]
	lsn, n := binary.Uvarint(p)
	if n <= 0 {
		return r, fmt.Errorf("bad record lsn")
	}
	r.LSN = lsn
	p = p[n:]
	txn, n := binary.Varint(p)
	if n <= 0 {
		return r, fmt.Errorf("bad record txn")
	}
	r.Txn = model.TxnID(txn)
	p = p[n:]
	count, n := binary.Uvarint(p)
	if n <= 0 || count > maxFrameLen {
		return r, fmt.Errorf("bad record entity count")
	}
	p = p[n:]
	if r.Kind == RecRead {
		if count != 1 {
			return r, fmt.Errorf("read record with %d entities", count)
		}
		x, n := binary.Varint(p)
		if n <= 0 {
			return r, fmt.Errorf("bad read entity")
		}
		r.Entity = model.Entity(x)
		p = p[n:]
	} else if count > 0 {
		r.Entities = make([]model.Entity, count)
		for i := range r.Entities {
			x, n := binary.Varint(p)
			if n <= 0 {
				return r, fmt.Errorf("bad entity %d/%d", i, count)
			}
			r.Entities[i] = model.Entity(x)
			p = p[n:]
		}
	}
	if len(p) != 0 {
		return r, fmt.Errorf("%d trailing bytes after record", len(p))
	}
	return r, nil
}

// appendFrame wraps payload in a length+CRC header.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// nextFrame extracts the first frame's payload from data. ok=false with
// err=nil means a torn tail: data ends inside the frame.
func nextFrame(data []byte) (payload []byte, frameLen int, ok bool, err error) {
	if len(data) < frameHeaderLen {
		return nil, 0, false, nil
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	if n > maxFrameLen {
		return nil, 0, false, fmt.Errorf("%w: frame length %d exceeds limit", ErrCorruptWAL, n)
	}
	total := frameHeaderLen + int(n)
	if len(data) < total {
		return nil, 0, false, nil
	}
	payload = data[frameHeaderLen:total]
	if crc := crc32.Checksum(payload, castagnoli); crc != binary.LittleEndian.Uint32(data[4:8]) {
		return nil, 0, false, fmt.Errorf("%w: frame CRC mismatch", ErrCorruptWAL)
	}
	return payload, total, true, nil
}

// scanWAL decodes every complete frame in data as records. It returns the
// records, the length of the clean prefix (everything before a torn
// tail), and ErrCorruptWAL if any complete frame fails validation —
// including an LSN that does not continue the previous record's by exactly
// one (the first record sets the base).
func scanWAL(data []byte) (recs []Record, cleanLen int, err error) {
	var prevLSN uint64
	first := true
	for {
		payload, frameLen, ok, err := nextFrame(data[cleanLen:])
		if err != nil {
			return nil, 0, err
		}
		if !ok {
			return recs, cleanLen, nil
		}
		rec, derr := decodeRecordPayload(payload)
		if derr != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrCorruptWAL, derr)
		}
		if !first && rec.LSN != prevLSN+1 {
			return nil, 0, fmt.Errorf("%w: LSN %d after %d", ErrCorruptWAL, rec.LSN, prevLSN)
		}
		first = false
		prevLSN = rec.LSN
		recs = append(recs, rec)
		cleanLen += frameLen
	}
}

// encodeCheckpoint frames a checkpoint payload.
func encodeCheckpoint(coveredLSN uint64, snapshot []byte) []byte {
	payload := make([]byte, 0, binary.MaxVarintLen64+len(snapshot))
	payload = binary.AppendUvarint(payload, coveredLSN)
	payload = append(payload, snapshot...)
	return appendFrame(nil, payload)
}

// decodeCheckpoint parses a checkpoint file's single frame. An empty file
// means "no checkpoint yet"; anything else must be exactly one valid
// frame.
func decodeCheckpoint(data []byte) (coveredLSN uint64, snapshot []byte, err error) {
	if len(data) == 0 {
		return 0, nil, nil
	}
	payload, frameLen, ok, err := nextFrame(data)
	if err != nil {
		return 0, nil, err
	}
	if !ok || frameLen != len(data) {
		return 0, nil, fmt.Errorf("%w: checkpoint is not a single complete frame", ErrCorruptWAL)
	}
	lsn, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad checkpoint covered LSN", ErrCorruptWAL)
	}
	return lsn, payload[n:], nil
}
