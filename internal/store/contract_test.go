// Contract suite run against both Store backends: whatever differs
// between holding frames in memory and journaling them to disk, the
// durability semantics — append/sync visibility, checkpoint coverage,
// LSN monotonicity across truncation, torn-tail repair — must not.
package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// backend abstracts "make a store" and "crash the process and come back"
// for the contract suite.
type backend struct {
	name string
	// open returns the store; calling it again simulates a process
	// restart over the same durable medium.
	open func(t *testing.T) Store
}

func backends(t *testing.T) []backend {
	t.Helper()
	mem := NewMem(2)
	return []backend{
		{name: "mem", open: func(t *testing.T) Store { return mem }},
		{name: "file", open: func(t *testing.T) Store {
			dir := filepath.Join(t.TempDir(), "data")
			return mustOpenFile(t, dir)
		}},
	}
}

func mustOpenFile(t *testing.T, dir string) *File {
	t.Helper()
	f, err := OpenFile(dir, 2, Options{})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	return f
}

func rec(kind RecKind, txn model.TxnID, entities ...model.Entity) *Record {
	r := &Record{Kind: kind, Txn: txn}
	if kind == RecRead {
		r.Entity = entities[0]
	} else {
		r.Entities = entities
	}
	return r
}

func appendAll(t *testing.T, sh ShardStore, recs ...*Record) {
	t.Helper()
	for _, r := range recs {
		if err := sh.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func sameRecord(a Record, b *Record) bool {
	if a.Kind != b.Kind || a.Txn != b.Txn || a.Entity != b.Entity || len(a.Entities) != len(b.Entities) {
		return false
	}
	for i := range a.Entities {
		if a.Entities[i] != b.Entities[i] {
			return false
		}
	}
	return true
}

// reopen simulates a restart: for the file backend the store is closed
// and reopened from the directory; Mem survives as the same object.
func reopen(t *testing.T, b backend, st Store) Store {
	t.Helper()
	if f, ok := st.(*File); ok {
		dir := f.dir
		if err := f.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		nf, err := OpenFile(dir, 2, Options{})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		return nf
	}
	return st
}

func TestStoreContract(t *testing.T) {
	for _, b := range backends(t) {
		t.Run(b.name, func(t *testing.T) {
			t.Run("RoundTrip", func(t *testing.T) { contractRoundTrip(t, b) })
		})
	}
}

func contractRoundTrip(t *testing.T, b backend) {
	st := b.open(t)
	if st.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", st.NumShards())
	}
	sh := st.Shard(0)
	want := []*Record{
		rec(RecBegin, 1, 0, 4),
		rec(RecRead, 1, 0),
		rec(RecWrite, 1, 4),
		rec(RecBeginSub, 7, 2),
		rec(RecPrepare, 7, 2),
		rec(RecCommit, 7),
		rec(RecAbort, 9),
		rec(RecBegin, 3), // empty footprint
	}
	appendAll(t, sh, want...)
	for i, r := range want {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d got LSN %d, want %d", i, r.LSN, i+1)
		}
	}
	if err := sh.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	st = reopen(t, b, st)
	got, err := st.Shard(0).Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Snapshot != nil || got.CoveredLSN != 0 {
		t.Fatalf("unexpected checkpoint before any Checkpoint call: %+v", got)
	}
	if len(got.Tail) != len(want) {
		t.Fatalf("Load returned %d records, want %d", len(got.Tail), len(want))
	}
	for i := range want {
		if !sameRecord(got.Tail[i], want[i]) {
			t.Fatalf("record %d mismatch: got %+v want %+v", i, got.Tail[i], want[i])
		}
		if got.Tail[i].LSN != uint64(i+1) {
			t.Fatalf("record %d LSN %d, want %d", i, got.Tail[i].LSN, i+1)
		}
	}
	// The sibling shard is untouched.
	if other, err := st.Shard(1).Load(); err != nil || len(other.Tail) != 0 {
		t.Fatalf("shard 1 should be empty: %+v, %v", other, err)
	}

	// Checkpoint covers everything appended so far and truncates the WAL;
	// LSNs keep counting.
	sh = st.Shard(0)
	snap := []byte("snapshot-bytes")
	if err := sh.Checkpoint(snap); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	after := rec(RecBegin, 11, 1)
	appendAll(t, sh, after)
	if after.LSN != uint64(len(want))+1 {
		t.Fatalf("post-checkpoint LSN %d, want %d (monotone across truncation)", after.LSN, len(want)+1)
	}
	if err := sh.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	stats := sh.Stats()
	if stats.CheckpointSeq != uint64(len(want)) {
		t.Fatalf("CheckpointSeq = %d, want %d", stats.CheckpointSeq, len(want))
	}
	// Counters are since-open of this store instance (a restarted process
	// starts fresh), so only their floor is part of the contract.
	if stats.Records < 1 {
		t.Fatalf("Records = %d, want >= 1", stats.Records)
	}
	if stats.AppendedBytes <= 0 || stats.Fsyncs <= 0 {
		t.Fatalf("stats not counting: %+v", stats)
	}

	st = reopen(t, b, st)
	got, err = st.Shard(0).Load()
	if err != nil {
		t.Fatalf("Load after checkpoint: %v", err)
	}
	if string(got.Snapshot) != string(snap) {
		t.Fatalf("Snapshot = %q, want %q", got.Snapshot, snap)
	}
	if got.CoveredLSN != uint64(len(want)) {
		t.Fatalf("CoveredLSN = %d, want %d", got.CoveredLSN, len(want))
	}
	if len(got.Tail) != 1 || !sameRecord(got.Tail[0], after) {
		t.Fatalf("tail after checkpoint = %+v, want just %+v", got.Tail, after)
	}
}

// TestStoreUnflushedRecordsLost pins the durability boundary: records
// appended but never flushed do not survive a restart, and the LSN
// counter rewinds so the next run stays contiguous.
func TestStoreUnflushedRecordsLost(t *testing.T) {
	for _, b := range backends(t) {
		t.Run(b.name, func(t *testing.T) {
			st := b.open(t)
			sh := st.Shard(0)
			appendAll(t, sh, rec(RecBegin, 1))
			if err := sh.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			appendAll(t, sh, rec(RecRead, 1, 3)) // never flushed

			st = reopen(t, b, st)
			got, err := st.Shard(0).Load()
			if err != nil {
				t.Fatalf("Load: %v", err)
			}
			if len(got.Tail) != 1 || got.Tail[0].Kind != RecBegin {
				t.Fatalf("tail = %+v, want only the synced begin", got.Tail)
			}
			// The replacement record reuses the lost LSN.
			r := rec(RecRead, 1, 3)
			appendAll(t, st.Shard(0), r)
			if r.LSN != 2 {
				t.Fatalf("post-restart LSN = %d, want 2", r.LSN)
			}
		})
	}
}

func TestFileTornTailRepair(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	f := mustOpenFile(t, dir)
	sh := f.Shard(0)
	appendAll(t, sh, rec(RecBegin, 1, 0), rec(RecWrite, 1, 0))
	if err := sh.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	walPath := filepath.Join(dir, "shard-0.wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	for cut := 1; cut < 12 && cut < len(data); cut++ {
		torn := append([]byte(nil), data[:len(data)-cut]...)
		if err := os.WriteFile(walPath, torn, 0o666); err != nil {
			t.Fatalf("write torn wal: %v", err)
		}
		f := mustOpenFile(t, dir)
		got, err := f.Shard(0).Load()
		if err != nil {
			t.Fatalf("cut %d: Load: %v", cut, err)
		}
		if len(got.Tail) != 1 || got.Tail[0].Kind != RecBegin {
			t.Fatalf("cut %d: tail = %+v, want only the first record", cut, got.Tail)
		}
		// The torn bytes are gone from disk and the next append is readable.
		appendAll(t, f.Shard(0), rec(RecAbort, 1))
		if err := f.Shard(0).Sync(); err != nil {
			t.Fatalf("cut %d: Sync: %v", cut, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("cut %d: Close: %v", cut, err)
		}
		f = mustOpenFile(t, dir)
		got, err = f.Shard(0).Load()
		if err != nil {
			t.Fatalf("cut %d: reload: %v", cut, err)
		}
		if len(got.Tail) != 2 || got.Tail[1].Kind != RecAbort {
			t.Fatalf("cut %d: reload tail = %+v", cut, got.Tail)
		}
		f.Close()
		if err := os.WriteFile(walPath, data, 0o666); err != nil {
			t.Fatalf("restore wal: %v", err)
		}
	}
}

func TestFileBitFlipIsCorrupt(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	f := mustOpenFile(t, dir)
	sh := f.Shard(0)
	appendAll(t, sh, rec(RecBegin, 1, 0), rec(RecWrite, 1, 0), rec(RecBegin, 2, 1))
	if err := sh.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	f.Close()

	walPath := filepath.Join(dir, "shard-0.wal")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	// Flip a byte in the middle: a complete frame no longer matches its
	// CRC, which must be corruption, not a silent tail-stop.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if err := os.WriteFile(walPath, flipped, 0o666); err != nil {
		t.Fatalf("write flipped wal: %v", err)
	}
	f = mustOpenFile(t, dir)
	defer f.Close()
	if _, err := f.Shard(0).Load(); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("Load of bit-flipped WAL: err = %v, want ErrCorruptWAL", err)
	}
}

func TestFileMetaMismatch(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	f, err := OpenFile(dir, 4, Options{})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	f.Close()
	if _, err := OpenFile(dir, 8, Options{}); err == nil {
		t.Fatalf("OpenFile with a different shard count should refuse the directory")
	}
}

func TestFileFailpointSeam(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	crash := errors.New("injected crash")
	armed := false
	f, err := OpenFile(dir, 2, Options{Failpoint: func(op FailOp) error {
		if armed && op.Kind == OpSync {
			return crash
		}
		return nil
	}})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer f.Close()
	sh := f.Shard(0)
	appendAll(t, sh, rec(RecBegin, 1))
	if err := sh.Sync(); err != nil {
		t.Fatalf("Sync before arming: %v", err)
	}
	armed = true
	appendAll(t, sh, rec(RecWrite, 1))
	if err := sh.Sync(); !errors.Is(err, crash) {
		t.Fatalf("Sync with armed failpoint: err = %v, want injected crash", err)
	}
}

// TestSnapshotRoundTrip proves the snapshot codec inverts a real
// scheduler export, and that restore rebuilds an equivalent scheduler
// (re-export equals the original).
func TestSnapshotRoundTrip(t *testing.T) {
	s := core.NewScheduler(core.Config{Policy: core.GreedyC1{}, SweepManual: true})
	s.MustApply(model.Begin(1))
	s.MustApply(model.Read(1, 10))
	s.MustApply(model.WriteFinal(1, 10))
	s.MustApply(model.Begin(2))
	s.MustApply(model.Read(2, 10))
	s.MustApply(model.Begin(3))
	s.MustApply(model.WriteFinal(3, 11))
	s.SweepNow()

	exported := s.ExportState()
	enc := EncodeSnapshot(exported)
	dec, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	restored, err := core.RestoreScheduler(core.Config{Policy: core.GreedyC1{}, SweepManual: true}, dec)
	if err != nil {
		t.Fatalf("RestoreScheduler: %v", err)
	}
	re := restored.ExportState()
	if fmt.Sprintf("%+v", re) != fmt.Sprintf("%+v", exported) {
		t.Fatalf("re-export mismatch:\n got %+v\nwant %+v", re, exported)
	}
	if string(EncodeSnapshot(re)) != string(enc) {
		t.Fatalf("re-encoded snapshot differs (encoding not deterministic)")
	}
	// The restored scheduler keeps scheduling: the retained reader of
	// entity 10 still conflicts.
	if restored.Seq() != s.Seq() {
		t.Fatalf("Seq = %d, want %d", restored.Seq(), s.Seq())
	}
	res := restored.MustApply(model.WriteFinal(2, 10))
	if !res.Accepted {
		t.Fatalf("restored scheduler rejected a legal write: %+v", res)
	}
	if !restored.Graph().Acyclic() {
		t.Fatalf("restored graph cyclic after continued scheduling")
	}
}

func TestSnapshotDecodeGarbage(t *testing.T) {
	if _, err := DecodeSnapshot([]byte{snapshotVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("garbage snapshot: err = %v, want ErrCorruptWAL", err)
	}
	if _, err := DecodeSnapshot([]byte{99}); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("unknown version: err = %v, want ErrCorruptWAL", err)
	}
	if _, err := DecodeSnapshot(nil); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("empty snapshot: err = %v, want ErrCorruptWAL", err)
	}
}
