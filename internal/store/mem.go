package store

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Mem is the in-memory Store backend. It runs the same frame codec as the
// file backend over byte buffers — so the contract suite exercises one
// encode/decode path for both — and survives Engine restarts within a
// process, which is what the crash harness and ephemeral deployments
// need. It does not survive the process.
type Mem struct {
	shards []memShard
}

// NewMem returns an in-memory store with n shards.
func NewMem(n int) *Mem {
	if n < 1 {
		n = 1
	}
	m := &Mem{shards: make([]memShard, n)}
	return m
}

// NumShards implements Store.
func (m *Mem) NumShards() int { return len(m.shards) }

// Shard implements Store.
func (m *Mem) Shard(i int) ShardStore { return &m.shards[i] }

// Close implements Store. The buffers stay readable: a reopened engine
// loads from the same Mem to simulate durable storage.
func (m *Mem) Close() error { return nil }

type memShard struct {
	mu sync.Mutex
	// pending holds encoded frames staged by Append; wal holds flushed
	// frames ("durable memory").
	pending []byte
	wal     []byte
	ckpt    []byte
	lastLSN uint64
	scratch []byte

	appendedBytes atomic.Int64
	fsyncs        atomic.Int64
	checkpointSeq atomic.Uint64
	records       atomic.Int64
}

func (s *memShard) Append(r *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lastLSN++
	r.LSN = s.lastLSN
	s.scratch = appendRecordPayload(s.scratch[:0], r)
	before := len(s.pending)
	s.pending = appendFrame(s.pending, s.scratch)
	s.appendedBytes.Add(int64(len(s.pending) - before))
	s.records.Add(1)
	return nil
}

func (s *memShard) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return nil
}

func (s *memShard) flushLocked() {
	if len(s.pending) > 0 {
		s.wal = append(s.wal, s.pending...)
		s.pending = s.pending[:0]
	}
}

func (s *memShard) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	s.fsyncs.Add(1)
	return nil
}

func (s *memShard) Checkpoint(snapshot []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	s.ckpt = encodeCheckpoint(s.lastLSN, snapshot)
	s.wal = s.wal[:0]
	s.checkpointSeq.Store(s.lastLSN)
	s.fsyncs.Add(1)
	return nil
}

func (s *memShard) Load() (ShardState, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st ShardState
	covered, snap, err := decodeCheckpoint(s.ckpt)
	if err != nil {
		return st, fmt.Errorf("mem checkpoint: %w", err)
	}
	st.Snapshot = snap
	st.CoveredLSN = covered
	// Only flushed frames count: an engine that crashed before Flush never
	// confirmed those records, exactly like the file backend's page cache.
	recs, cleanLen, err := scanWAL(s.wal)
	if err != nil {
		return ShardState{}, fmt.Errorf("mem wal: %w", err)
	}
	s.wal = s.wal[:cleanLen]
	s.pending = s.pending[:0]
	last := covered
	for _, r := range recs {
		if r.LSN <= covered {
			continue
		}
		st.Tail = append(st.Tail, r)
		last = r.LSN
	}
	// Pending (never-confirmed) records were discarded above, so the LSN
	// counter rewinds to the last surviving record — keeping future appends
	// contiguous with the flushed prefix.
	s.lastLSN = last
	return st, nil
}

func (s *memShard) Stats() Stats {
	return Stats{
		AppendedBytes: s.appendedBytes.Load(),
		Fsyncs:        s.fsyncs.Load(),
		CheckpointSeq: s.checkpointSeq.Load(),
		Records:       s.records.Load(),
	}
}

// Corrupt flips one byte of the flushed WAL at offset off (for tests).
func (s *memShard) Corrupt(off int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off >= 0 && off < len(s.wal) {
		s.wal[off] ^= 0xff
	}
}

// TruncateWAL drops the last n bytes of the flushed WAL (for tests: a
// simulated torn tail).
func (s *memShard) TruncateWAL(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n > len(s.wal) {
		n = len(s.wal)
	}
	s.wal = s.wal[:len(s.wal)-n]
}
