// Package store is the engine's pluggable durability layer: a per-shard
// write-ahead log of the accepted subschedule plus an atomically-replaced
// checkpoint of the retained scheduler state.
//
// The WAL records what the scheduler *accepted* — begins, reads, final
// writes, 2PC begin/prepare/commit, and every abort (client, governor, or
// rejection victim) — because that stream is exactly what must replay to
// the same conflict graph. The checkpoint is taken at sweep boundaries:
// the paper's deletion conditions (C1/C2, Lemma 1) say what is safe to
// forget from the graph, and what is safe to forget from the graph is what
// is safe to truncate from the log. A sweep that deletes under C1 also
// advances the WAL truncation point — deletion policy as compaction
// policy.
//
// Two backends share one contract (see contract_test.go): Mem keeps the
// encoded frames in memory (surviving engine restarts within a process,
// for tests and ephemeral deployments), File journals them to
// shard-<i>.wal / shard-<i>.ckpt under a data directory with
// CRC-framed records, torn-tail repair, and an atomic
// write-tmp/fsync/rename checkpoint protocol.
package store

import (
	"errors"

	"repro/internal/model"
)

// ErrCorruptWAL marks a WAL or checkpoint whose *complete* frames fail
// validation: a CRC mismatch, an undecodable payload, an impossible frame
// length, or an LSN discontinuity. It is distinct from a torn tail (an
// incomplete final frame from a crash mid-write), which Load repairs
// silently — corruption means bytes the store once confirmed are now
// wrong, and recovery must not guess.
var ErrCorruptWAL = errors.New("store: corrupt WAL")

// RecKind identifies one journal record type.
type RecKind uint8

const (
	// RecBegin is an accepted BEGIN; Entities holds the declared footprint.
	RecBegin RecKind = iota + 1
	// RecRead is an accepted read of Entity.
	RecRead
	// RecWrite is an accepted final write; Entities holds the write set.
	// The transaction is completed.
	RecWrite
	// RecBeginSub is an accepted BEGIN of a cross-shard sub-transaction.
	RecBeginSub
	// RecPrepare is a YES vote on the 2PC PREPARE of a cross sub-
	// transaction; Entities holds this shard's slice of the write set.
	// Synced before the vote is reported — an unsynced YES vote must never
	// reach the coordinator.
	RecPrepare
	// RecCommit is the COMMIT decision applied to a prepared sub-
	// transaction. Synced before the in-memory commit.
	RecCommit
	// RecAbort is any abort: client abort, governor reap, 2PC abort
	// decision, or the victim of a rejected step. Aborts are presumed:
	// losing an unsynced RecAbort is safe because recovery aborts
	// unresolved transactions anyway.
	RecAbort
)

// String implements fmt.Stringer.
func (k RecKind) String() string {
	switch k {
	case RecBegin:
		return "begin"
	case RecRead:
		return "read"
	case RecWrite:
		return "write"
	case RecBeginSub:
		return "begin-sub"
	case RecPrepare:
		return "prepare"
	case RecCommit:
		return "commit"
	case RecAbort:
		return "abort"
	default:
		return "rec-unknown"
	}
}

// Record is one journal entry. LSN is assigned by the store on Append,
// strictly increasing per shard and monotone across checkpoints (a
// checkpoint truncates the log but never rewinds the LSN).
type Record struct {
	LSN  uint64
	Kind RecKind
	Txn  model.TxnID
	// Entity is RecRead's single entity (valid only for RecRead).
	Entity model.Entity
	// Entities is the footprint (RecBegin/RecBeginSub) or write set
	// (RecWrite/RecPrepare).
	Entities []model.Entity
}

// Stats are one shard store's counters, safe to read concurrently with
// appends (the scrape path runs while the shard is hot). Counters count
// since this store instance was opened — a restarted process starts at
// zero; only CheckpointSeq is recovered from the medium.
type Stats struct {
	// AppendedBytes counts encoded frame bytes accepted by Append.
	AppendedBytes int64
	// Fsyncs counts Sync calls that reached the backing medium.
	Fsyncs int64
	// CheckpointSeq is the LSN covered by the latest checkpoint (0 before
	// the first).
	CheckpointSeq uint64
	// Records counts records accepted by Append.
	Records int64
}

// ShardState is what Load recovers: the latest checkpoint's snapshot (nil
// if none was ever taken), the LSN it covers, and the WAL records after
// that point in append order.
type ShardState struct {
	Snapshot   []byte
	CoveredLSN uint64
	Tail       []Record
}

// ShardStore is one shard's durability endpoint. A shard store is owned by
// exactly one shard goroutine; only Stats may be called concurrently.
type ShardStore interface {
	// Append stages one record in the write buffer and assigns its LSN.
	// The record is not durable until Sync.
	Append(*Record) error
	// Flush pushes buffered frames to the backing medium (OS page cache
	// for the file backend) without forcing durability.
	Flush() error
	// Sync flushes and makes everything appended so far durable.
	Sync() error
	// Checkpoint atomically replaces the shard's checkpoint with snapshot,
	// covering every record appended so far, then truncates the WAL. On
	// return the snapshot is durable.
	Checkpoint(snapshot []byte) error
	// Load returns the recovery state: latest checkpoint + WAL tail. A
	// torn tail (incomplete final frame) is repaired; corrupt complete
	// frames yield ErrCorruptWAL.
	Load() (ShardState, error)
	// Stats returns the shard's counters; safe to call concurrently.
	Stats() Stats
}

// Store is a set of per-shard durability endpoints.
type Store interface {
	NumShards() int
	Shard(i int) ShardStore
	Close() error
}
