package trace

import (
	"sync"

	"repro/internal/model"
)

// SafeLog is a mutex-guarded Log for concurrent schedulers: engine shards
// append the steps they apply, in apply order, from several goroutines at
// once. The lock gives the referee a single total order of applied steps —
// exactly the "schedule" the paper's definitions are stated over — without
// trusting any shard's local view.
type SafeLog struct {
	mu sync.Mutex
	l  *Log
}

// NewSafeLog returns an empty thread-safe log.
func NewSafeLog() *SafeLog {
	return &SafeLog{l: NewLog()}
}

// Append records a step and whether the scheduler accepted it.
func (s *SafeLog) Append(step model.Step, accepted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.l.Append(step, accepted)
}

// MarkAborted records an abort that did not come from a rejected step
// (e.g. a transaction killed at a cross-partition barrier).
func (s *SafeLog) MarkAborted(id model.TxnID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.l.MarkAborted(id)
}

// Len returns the number of recorded events.
func (s *SafeLog) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.l.Len()
}

// Snapshot returns a deep copy of the underlying log, safe to inspect
// while appends continue.
func (s *SafeLog) Snapshot() *Log {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := NewLog()
	out.seq = s.l.seq
	out.events = append(out.events, s.l.events...)
	return out
}

// AppendSince returns a copy of the events with Seq > seq, in order. An
// incremental tailer (the crash harness, a WAL writer) calls it with the
// last sequence number it has seen instead of paying Snapshot's
// whole-log copy per poll; the returned slice is the caller's.
func (s *SafeLog) AppendSince(seq int64) []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	events := s.l.events
	// Seqs are 1..len(events) and dense (Append and MarkAborted each claim
	// one), so the tail after seq starts at index seq — no scan needed.
	if seq < 0 {
		seq = 0
	}
	if seq >= int64(len(events)) {
		return nil
	}
	out := make([]Event, int64(len(events))-seq)
	copy(out, events[seq:])
	return out
}

// AcceptedSubschedule returns the accepted subschedule of a snapshot.
func (s *SafeLog) AcceptedSubschedule() []model.Step {
	return s.Snapshot().AcceptedSubschedule()
}

// CheckAcceptedCSR verifies the accepted subschedule is CSR (Lemma 2's
// condition (3)) against a snapshot of the log.
func (s *SafeLog) CheckAcceptedCSR() error {
	return s.Snapshot().CheckAcceptedCSR()
}
