// Package trace records schedules and checks conflict serializability
// offline. It is the independent referee for the equivalence oracle: the
// accepted subschedule of a correct scheduler must always be CSR
// (Lemma 2 / Theorem 2), and trace verifies that from scratch, without
// trusting any scheduler's incremental graph.
package trace

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
)

// Event is one submitted step and its outcome.
type Event struct {
	Seq      int64
	Step     model.Step
	Accepted bool
}

// Log records every submitted step of a run.
type Log struct {
	events  []Event
	aborted graph.NodeSet
	seq     int64
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{aborted: make(graph.NodeSet)}
}

// Append records a step and whether the scheduler accepted it. A rejected
// step marks its transaction aborted.
func (l *Log) Append(step model.Step, accepted bool) {
	l.seq++
	l.events = append(l.events, Event{Seq: l.seq, Step: step, Accepted: accepted})
	if !accepted {
		l.aborted.Add(step.Txn)
	}
}

// MarkAborted records an abort that did not come from a rejected step
// (cascading aborts in the multiple-write model).
func (l *Log) MarkAborted(id model.TxnID) { l.aborted.Add(id) }

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Events returns the recorded events (caller must not mutate).
func (l *Log) Events() []Event { return l.events }

// AcceptedSubschedule returns the paper's "accepted subschedule": the
// accepted steps of transactions that never aborted, in submission order.
func (l *Log) AcceptedSubschedule() []model.Step {
	var out []model.Step
	for _, ev := range l.events {
		if ev.Accepted && !l.aborted.Has(ev.Step.Txn) {
			out = append(out, ev.Step)
		}
	}
	return out
}

// ConflictGraphOf builds, from scratch, the conflict graph of a schedule:
// nodes are the transactions appearing in it and there is an arc Ti→Tj iff
// a step of Ti precedes a conflicting step of Tj. It understands both the
// basic model (KindWriteFinal) and the multiple-write model (KindWrite);
// KindBegin and KindFinish contribute nodes/nothing.
func ConflictGraphOf(steps []model.Step) *graph.Graph {
	g := graph.New()
	// Access history per entity, in order.
	type acc struct {
		txn model.TxnID
		a   model.Access
	}
	hist := make(map[model.Entity][]acc)
	note := func(t model.TxnID, x model.Entity, a model.Access) {
		g.AddNode(t)
		for _, prev := range hist[x] {
			if prev.txn != t && prev.a.Conflicts(a) {
				g.AddArc(prev.txn, t)
			}
		}
		hist[x] = append(hist[x], acc{t, a})
	}
	for _, st := range steps {
		switch st.Kind {
		case model.KindBegin, model.KindFinish:
			g.AddNode(st.Txn)
		case model.KindRead:
			note(st.Txn, st.Entity, model.ReadAccess)
		case model.KindWrite:
			note(st.Txn, st.Entity, model.WriteAccess)
		case model.KindWriteFinal:
			for _, x := range st.Entities {
				note(st.Txn, x, model.WriteAccess)
			}
		}
	}
	return g
}

// IsCSR reports whether the schedule is conflict serializable (acyclic
// conflict graph).
func IsCSR(steps []model.Step) bool {
	return ConflictGraphOf(steps).Acyclic()
}

// SerialOrder returns a serialization order (topological order of the
// conflict graph) or an error if the schedule is not CSR.
func SerialOrder(steps []model.Step) ([]model.TxnID, error) {
	order := ConflictGraphOf(steps).TopoOrder()
	if order == nil {
		return nil, fmt.Errorf("trace: schedule is not conflict serializable")
	}
	return order, nil
}

// CheckAcceptedCSR verifies the log's accepted subschedule is CSR,
// returning a descriptive error otherwise. This is condition (3) of the
// paper's Lemma 2.
func (l *Log) CheckAcceptedCSR() error {
	steps := l.AcceptedSubschedule()
	if !IsCSR(steps) {
		return fmt.Errorf("trace: accepted subschedule of %d steps is NOT conflict serializable", len(steps))
	}
	return nil
}
