// Package trace records schedules and checks conflict serializability
// offline. It is the independent referee for the equivalence oracle: the
// accepted subschedule of a correct scheduler must always be CSR
// (Lemma 2 / Theorem 2), and trace verifies that from scratch, without
// trusting any scheduler's incremental graph.
package trace

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
)

// Event is one submitted step and its outcome, or a positional abort mark.
type Event struct {
	Seq      int64
	Step     model.Step
	Accepted bool
	// AbortMark records an abort that did not come from a rejected step
	// (MarkAborted): it kills the current incarnation of Step.Txn at this
	// position and is not itself a step.
	AbortMark bool
}

// Log records every submitted step of a run.
type Log struct {
	events []Event
	seq    int64
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{}
}

// Append records a step and whether the scheduler accepted it. A rejected
// step aborts its transaction's current incarnation.
func (l *Log) Append(step model.Step, accepted bool) {
	l.seq++
	l.events = append(l.events, Event{Seq: l.seq, Step: step, Accepted: accepted})
}

// MarkAborted records an abort that did not come from a rejected step (a
// client abort, a cross-partition 2PC ABORT decision, or a cascading abort
// in the multiple-write model). The mark is positional: it kills the
// transaction's incarnation that is current at this point of the log, so a
// later reuse of the same TxnID (a fresh BEGIN) is judged on its own.
func (l *Log) MarkAborted(id model.TxnID) {
	l.seq++
	l.events = append(l.events, Event{Seq: l.seq, Step: model.Step{Txn: id}, AbortMark: true})
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Events returns the recorded events (caller must not mutate).
func (l *Log) Events() []Event { return l.events }

// AcceptedSubschedule returns the paper's "accepted subschedule": the
// accepted steps of transaction incarnations that never aborted, in
// submission order. Incarnations make the referee sound under TxnID reuse:
// each BEGIN opens a new incarnation of its ID, an abort (rejected step or
// MarkAborted) kills only the incarnation current at its position, and a
// consecutive run of BEGINs (a cross transaction's per-shard sub-begins)
// leaves earlier incarnations holding bare BEGIN events — isolated nodes
// the conflict graph ignores.
func (l *Log) AcceptedSubschedule() []model.Step {
	steps, _ := l.acceptedIncarnations()
	return steps
}

// acceptedIncarnations computes the accepted subschedule plus, per step,
// the incarnation index of its transaction (1 for the first BEGIN of an
// ID, 2 after a second BEGIN, …).
func (l *Log) acceptedIncarnations() ([]model.Step, []int) {
	type inckey struct {
		id  model.TxnID
		inc int
	}
	cur := make(map[model.TxnID]int)
	killed := make(map[inckey]bool)
	evInc := make([]int, len(l.events))
	for i, ev := range l.events {
		id := ev.Step.Txn
		if ev.AbortMark {
			killed[inckey{id, cur[id]}] = true
			evInc[i] = -1
			continue
		}
		if ev.Step.Kind == model.KindBegin {
			cur[id]++
		}
		evInc[i] = cur[id]
		if !ev.Accepted {
			killed[inckey{id, cur[id]}] = true
		}
	}
	var out []model.Step
	var incs []int
	for i, ev := range l.events {
		if ev.AbortMark || !ev.Accepted || killed[inckey{ev.Step.Txn, evInc[i]}] {
			continue
		}
		out = append(out, ev.Step)
		incs = append(incs, evInc[i])
	}
	return out, incs
}

// ConflictGraphOf builds, from scratch, the conflict graph of a schedule:
// nodes are the transactions appearing in it and there is an arc Ti→Tj iff
// a step of Ti precedes a conflicting step of Tj. It understands both the
// basic model (KindWriteFinal) and the multiple-write model (KindWrite);
// KindBegin and KindFinish contribute nodes/nothing.
//
// Sub-transactions fold into their logical transaction by construction:
// the sharded engine's cross-partition transactions run as per-shard
// sub-transactions that log every step — repeated BEGINs, per-shard reads,
// and one final-write slice per participant — under the shared logical
// TxnID, and the graph keys nodes by TxnID alone. The referee therefore
// checks CSR over logical transactions, which is exactly the paper's
// notion; TestLogicalFoldAcrossShards pins this.
func ConflictGraphOf(steps []model.Step) *graph.Graph {
	g := graph.New()
	// Access history per entity, in order.
	type acc struct {
		txn model.TxnID
		a   model.Access
	}
	hist := make(map[model.Entity][]acc)
	note := func(t model.TxnID, x model.Entity, a model.Access) {
		g.AddNode(t)
		for _, prev := range hist[x] {
			if prev.txn != t && prev.a.Conflicts(a) {
				g.AddArc(prev.txn, t)
			}
		}
		hist[x] = append(hist[x], acc{t, a})
	}
	for _, st := range steps {
		switch st.Kind {
		case model.KindBegin, model.KindFinish:
			g.AddNode(st.Txn)
		case model.KindRead:
			note(st.Txn, st.Entity, model.ReadAccess)
		case model.KindWrite:
			note(st.Txn, st.Entity, model.WriteAccess)
		case model.KindWriteFinal:
			for _, x := range st.Entities {
				note(st.Txn, x, model.WriteAccess)
			}
		}
	}
	return g
}

// IsCSR reports whether the schedule is conflict serializable (acyclic
// conflict graph).
func IsCSR(steps []model.Step) bool {
	return ConflictGraphOf(steps).Acyclic()
}

// SerialOrder returns a serialization order (topological order of the
// conflict graph) or an error if the schedule is not CSR.
func SerialOrder(steps []model.Step) ([]model.TxnID, error) {
	order := ConflictGraphOf(steps).TopoOrder()
	if order == nil {
		return nil, fmt.Errorf("trace: schedule is not conflict serializable")
	}
	return order, nil
}

// CheckAcceptedCSR verifies the log's accepted subschedule is CSR,
// returning a descriptive error otherwise. This is condition (3) of the
// paper's Lemma 2.
//
// Distinct surviving incarnations of a reused TxnID are renamed apart
// before the check: they are different transactions, and folding them into
// one node could fabricate a cycle on a serializable run. A cross
// transaction's consecutive sub-begins are unaffected — all of its
// conflict steps follow its last sub-begin, so they share one incarnation
// and still fold into one logical node.
func (l *Log) CheckAcceptedCSR() error {
	steps, incs := l.acceptedIncarnations()
	// Remap (id, incarnation) to a distinct synthetic ID where needed.
	type inckey struct {
		id  model.TxnID
		inc int
	}
	next := model.TxnID(0)
	for _, st := range steps {
		if st.Txn >= next {
			next = st.Txn + 1
		}
	}
	synth := make(map[inckey]model.TxnID)
	remapped := make([]model.Step, len(steps))
	for i, st := range steps {
		k := inckey{st.Txn, incs[i]}
		id, ok := synth[k]
		if !ok {
			if incs[i] <= 1 {
				id = st.Txn
			} else {
				id = next
				next++
			}
			synth[k] = id
		}
		st.Txn = id
		remapped[i] = st
	}
	if !IsCSR(remapped) {
		return fmt.Errorf("trace: accepted subschedule of %d steps is NOT conflict serializable", len(steps))
	}
	return nil
}
