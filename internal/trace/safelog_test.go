package trace

import (
	"sync"
	"testing"

	"repro/internal/model"
)

// TestAppendSince checks the incremental tail matches what a full
// Snapshot would have shown, without the whole-log copy.
func TestAppendSince(t *testing.T) {
	l := NewSafeLog()
	l.Append(model.Begin(1), true)
	l.Append(model.Read(1, 3), true)
	l.MarkAborted(2)

	tail := l.AppendSince(0)
	if len(tail) != 3 {
		t.Fatalf("AppendSince(0) returned %d events, want 3", len(tail))
	}
	if tail[2].AbortMark != true || tail[2].Step.Txn != 2 {
		t.Fatalf("event 3 = %+v, want the abort mark", tail[2])
	}

	tail = l.AppendSince(2)
	if len(tail) != 1 || !tail[0].AbortMark {
		t.Fatalf("AppendSince(2) = %+v, want just the abort mark", tail)
	}
	if got := l.AppendSince(3); got != nil {
		t.Fatalf("AppendSince(at head) = %+v, want nil", got)
	}
	if got := l.AppendSince(99); got != nil {
		t.Fatalf("AppendSince(past head) = %+v, want nil", got)
	}

	// Incremental tailing reassembles the full log while appends continue.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			l.Append(model.Read(1, model.Entity(i)), i%2 == 0)
		}
	}()
	var seen []Event
	for len(seen) < 103 {
		chunk := l.AppendSince(int64(len(seen)))
		seen = append(seen, chunk...)
	}
	wg.Wait()
	full := l.Snapshot().Events()
	if len(seen) != len(full) {
		t.Fatalf("tailed %d events, log has %d", len(seen), len(full))
	}
	for i := range full {
		if seen[i].Seq != full[i].Seq || seen[i].Step.Txn != full[i].Step.Txn ||
			seen[i].Step.Entity != full[i].Step.Entity || seen[i].Accepted != full[i].Accepted {
			t.Fatalf("event %d: tailed %+v, log %+v", i, seen[i], full[i])
		}
	}
}
