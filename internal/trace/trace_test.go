package trace

import (
	"testing"

	"repro/internal/model"
)

func TestConflictGraphSerial(t *testing.T) {
	steps := []model.Step{
		model.Begin(1), model.Read(1, 0), model.WriteFinal(1, 0),
		model.Begin(2), model.Read(2, 0), model.WriteFinal(2, 0),
	}
	g := ConflictGraphOf(steps)
	if !g.HasArc(1, 2) || g.HasArc(2, 1) {
		t.Fatalf("serial order must give 1->2 only:\n%s", g.String())
	}
	if !IsCSR(steps) {
		t.Fatal("serial schedule is CSR")
	}
}

func TestConflictGraphNonCSR(t *testing.T) {
	// r1(x) r2(y) w1(y) w2(x): T2->T1 (y) and T1->T2 (x) — a cycle.
	steps := []model.Step{
		model.Begin(1), model.Begin(2),
		model.Read(1, 0), model.Read(2, 1),
		model.WriteFinal(1, 1), model.WriteFinal(2, 0),
	}
	if IsCSR(steps) {
		t.Fatal("classic non-CSR interleaving must be rejected")
	}
	if _, err := SerialOrder(steps); err == nil {
		t.Fatal("SerialOrder must fail on non-CSR")
	}
}

func TestConflictGraphReadReadNoArc(t *testing.T) {
	steps := []model.Step{
		model.Begin(1), model.Read(1, 0), model.WriteFinal(1),
		model.Begin(2), model.Read(2, 0), model.WriteFinal(2),
	}
	g := ConflictGraphOf(steps)
	if g.NumArcs() != 0 {
		t.Fatal("read-read must not conflict")
	}
}

func TestConflictGraphMultiwriteSteps(t *testing.T) {
	steps := []model.Step{
		model.Begin(1), model.Write(1, 0), model.Finish(1),
		model.Begin(2), model.Read(2, 0), model.Write(2, 0), model.Finish(2),
	}
	g := ConflictGraphOf(steps)
	if !g.HasArc(1, 2) {
		t.Fatal("w1(x) before r2(x)/w2(x) must give 1->2")
	}
	if g.HasArc(2, 1) {
		t.Fatal("no reverse arc")
	}
}

func TestSerialOrderRespectsArcs(t *testing.T) {
	steps := []model.Step{
		model.Begin(2), model.WriteFinal(2, 0),
		model.Begin(1), model.Read(1, 0), model.WriteFinal(1, 1),
	}
	order, err := SerialOrder(steps)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[model.TxnID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[2] > pos[1] {
		t.Fatalf("T2 wrote before T1 read: order %v wrong", order)
	}
}

func TestLogAcceptedSubschedule(t *testing.T) {
	l := NewLog()
	l.Append(model.Begin(1), true)
	l.Append(model.Read(1, 0), true)
	l.Append(model.Begin(2), true)
	l.Append(model.WriteFinal(2, 0), false) // T2 aborts
	l.Append(model.WriteFinal(1, 0), true)
	sub := l.AcceptedSubschedule()
	for _, st := range sub {
		if st.Txn == 2 {
			t.Fatalf("aborted T2 must be projected out: %v", sub)
		}
	}
	if len(sub) != 3 {
		t.Fatalf("subschedule = %v", sub)
	}
	if err := l.CheckAcceptedCSR(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	if len(l.Events()) != 5 {
		t.Fatal("Events length")
	}
}

func TestLogMarkAborted(t *testing.T) {
	l := NewLog()
	l.Append(model.Begin(1), true)
	l.Append(model.Write(1, 0), true)
	l.MarkAborted(1) // cascading abort, not from a rejected step
	if got := l.AcceptedSubschedule(); len(got) != 0 {
		t.Fatalf("all steps belong to aborted T1: %v", got)
	}
}

func TestCheckAcceptedCSRFailure(t *testing.T) {
	l := NewLog()
	// Log a non-CSR pair as if both were accepted.
	l.Append(model.Begin(1), true)
	l.Append(model.Begin(2), true)
	l.Append(model.Read(1, 0), true)
	l.Append(model.Read(2, 1), true)
	l.Append(model.WriteFinal(1, 1), true)
	l.Append(model.WriteFinal(2, 0), true)
	if err := l.CheckAcceptedCSR(); err == nil {
		t.Fatal("non-CSR accepted subschedule must be reported")
	}
}

// TestLogicalFoldAcrossShards pins the referee's sub-transaction folding:
// a sharded 2PC engine logs a cross-partition transaction as repeated
// BEGINs and per-shard final-write slices under one logical TxnID, and the
// conflict graph must treat them as a single node — both for an innocent
// interleaving and for a cross-shard cycle no single shard could see.
func TestLogicalFoldAcrossShards(t *testing.T) {
	// T1 is cross over entities 0 (shard A) and 1 (shard B): two sub-begin
	// events, a read on each shard, and two final-write slices.
	l := NewLog()
	l.Append(model.Begin(1), true) // sub-begin on shard A
	l.Append(model.Begin(1), true) // sub-begin on shard B
	l.Append(model.Read(1, 0), true)
	l.Append(model.Read(1, 1), true)
	l.Append(model.WriteFinal(1, 0), true) // prepare slice, shard A
	l.Append(model.WriteFinal(1, 1), true) // prepare slice, shard B
	g := ConflictGraphOf(l.AcceptedSubschedule())
	if g.NumNodes() != 1 {
		t.Fatalf("folded graph has %d nodes, want 1 logical node", g.NumNodes())
	}
	if err := l.CheckAcceptedCSR(); err != nil {
		t.Fatal(err)
	}

	// Cross-shard cycle over logical transactions: T1 and T2 both span
	// shards A (entity 0) and B (entity 1). On A: T1 reads 0 before T2's
	// write slice of 0 (T1→T2). On B: T2 reads 1 before T1's write slice
	// of 1 (T2→T1). Each shard's sub-schedule alone is acyclic; the folded
	// graph must not be.
	l = NewLog()
	l.Append(model.Begin(1), true)
	l.Append(model.Begin(2), true)
	l.Append(model.Read(1, 0), true)
	l.Append(model.Read(2, 1), true)
	l.Append(model.WriteFinal(2, 0), true) // T2's slice on shard A
	l.Append(model.WriteFinal(1, 1), true) // T1's slice on shard B
	if err := l.CheckAcceptedCSR(); err == nil {
		t.Fatal("referee missed the cross-shard cycle over logical transactions")
	}
	// Excluding one of the two (its 2PC aborted) restores CSR.
	l.MarkAborted(1)
	if err := l.CheckAcceptedCSR(); err != nil {
		t.Fatalf("after excluding T1: %v", err)
	}
}

// TestReusedIDSecondIncarnationCounted: aborts are positional, so a TxnID
// reused after an abort is judged on its own — the referee must neither
// drop the new incarnation's steps (blinding itself to its conflicts) nor
// resurrect the dead incarnation's.
func TestReusedIDSecondIncarnationCounted(t *testing.T) {
	l := NewLog()
	l.Append(model.Begin(1), true)
	l.Append(model.Read(1, 0), true)
	l.MarkAborted(1)
	l.Append(model.Begin(1), true) // second incarnation
	l.Append(model.Read(1, 5), true)
	l.Append(model.WriteFinal(1, 6), true)
	sub := l.AcceptedSubschedule()
	if len(sub) != 3 {
		t.Fatalf("accepted subschedule = %v, want the 3 steps of the second incarnation", sub)
	}
	for _, st := range sub {
		if st.Kind == model.KindRead && st.Entity == 0 {
			t.Fatalf("dead incarnation's read resurrected: %v", sub)
		}
	}
	// A cycle formed by the *second* incarnation must be caught.
	l = NewLog()
	l.Append(model.Begin(1), true)
	l.MarkAborted(1) // first incarnation dies
	l.Append(model.Begin(1), true)
	l.Append(model.Begin(2), true)
	l.Append(model.Read(1, 0), true)
	l.Append(model.Read(2, 1), true)
	l.Append(model.WriteFinal(2, 0), true)
	l.Append(model.WriteFinal(1, 1), true)
	if err := l.CheckAcceptedCSR(); err == nil {
		t.Fatal("referee blind to a reused ID's cycle")
	}
}

// TestReusedIDCommittedIncarnationsNotFolded: two *committed* incarnations
// of a reused TxnID are different transactions; folding them into one node
// could fabricate a cycle on a serializable run. inc1 reads e1 before X
// writes it (inc1→X) and X reads e2 before inc2 writes it (X→inc2): folded
// that is a cycle, renamed apart it is not.
func TestReusedIDCommittedIncarnationsNotFolded(t *testing.T) {
	l := NewLog()
	l.Append(model.Begin(1), true)
	l.Append(model.Begin(9), true) // X
	l.Append(model.Read(1, 1), true)
	l.Append(model.WriteFinal(1), true) // inc1 commits (read-only)
	l.Append(model.Read(9, 2), true)
	l.Append(model.WriteFinal(9, 1), true) // X writes e1: inc1→X
	l.Append(model.Begin(1), true)         // reuse, second incarnation
	l.Append(model.WriteFinal(1, 2), true) // inc2 writes e2: X→inc2
	if err := l.CheckAcceptedCSR(); err != nil {
		t.Fatalf("serializable run flagged non-CSR (incarnations folded): %v", err)
	}
	if got := len(l.AcceptedSubschedule()); got != 8 {
		t.Fatalf("accepted subschedule has %d steps, want all 8", got)
	}
}
