package trace

import (
	"testing"

	"repro/internal/model"
)

func TestConflictGraphSerial(t *testing.T) {
	steps := []model.Step{
		model.Begin(1), model.Read(1, 0), model.WriteFinal(1, 0),
		model.Begin(2), model.Read(2, 0), model.WriteFinal(2, 0),
	}
	g := ConflictGraphOf(steps)
	if !g.HasArc(1, 2) || g.HasArc(2, 1) {
		t.Fatalf("serial order must give 1->2 only:\n%s", g.String())
	}
	if !IsCSR(steps) {
		t.Fatal("serial schedule is CSR")
	}
}

func TestConflictGraphNonCSR(t *testing.T) {
	// r1(x) r2(y) w1(y) w2(x): T2->T1 (y) and T1->T2 (x) — a cycle.
	steps := []model.Step{
		model.Begin(1), model.Begin(2),
		model.Read(1, 0), model.Read(2, 1),
		model.WriteFinal(1, 1), model.WriteFinal(2, 0),
	}
	if IsCSR(steps) {
		t.Fatal("classic non-CSR interleaving must be rejected")
	}
	if _, err := SerialOrder(steps); err == nil {
		t.Fatal("SerialOrder must fail on non-CSR")
	}
}

func TestConflictGraphReadReadNoArc(t *testing.T) {
	steps := []model.Step{
		model.Begin(1), model.Read(1, 0), model.WriteFinal(1),
		model.Begin(2), model.Read(2, 0), model.WriteFinal(2),
	}
	g := ConflictGraphOf(steps)
	if g.NumArcs() != 0 {
		t.Fatal("read-read must not conflict")
	}
}

func TestConflictGraphMultiwriteSteps(t *testing.T) {
	steps := []model.Step{
		model.Begin(1), model.Write(1, 0), model.Finish(1),
		model.Begin(2), model.Read(2, 0), model.Write(2, 0), model.Finish(2),
	}
	g := ConflictGraphOf(steps)
	if !g.HasArc(1, 2) {
		t.Fatal("w1(x) before r2(x)/w2(x) must give 1->2")
	}
	if g.HasArc(2, 1) {
		t.Fatal("no reverse arc")
	}
}

func TestSerialOrderRespectsArcs(t *testing.T) {
	steps := []model.Step{
		model.Begin(2), model.WriteFinal(2, 0),
		model.Begin(1), model.Read(1, 0), model.WriteFinal(1, 1),
	}
	order, err := SerialOrder(steps)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[model.TxnID]int{}
	for i, id := range order {
		pos[id] = i
	}
	if pos[2] > pos[1] {
		t.Fatalf("T2 wrote before T1 read: order %v wrong", order)
	}
}

func TestLogAcceptedSubschedule(t *testing.T) {
	l := NewLog()
	l.Append(model.Begin(1), true)
	l.Append(model.Read(1, 0), true)
	l.Append(model.Begin(2), true)
	l.Append(model.WriteFinal(2, 0), false) // T2 aborts
	l.Append(model.WriteFinal(1, 0), true)
	sub := l.AcceptedSubschedule()
	for _, st := range sub {
		if st.Txn == 2 {
			t.Fatalf("aborted T2 must be projected out: %v", sub)
		}
	}
	if len(sub) != 3 {
		t.Fatalf("subschedule = %v", sub)
	}
	if err := l.CheckAcceptedCSR(); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 5 {
		t.Fatalf("Len = %d", l.Len())
	}
	if len(l.Events()) != 5 {
		t.Fatal("Events length")
	}
}

func TestLogMarkAborted(t *testing.T) {
	l := NewLog()
	l.Append(model.Begin(1), true)
	l.Append(model.Write(1, 0), true)
	l.MarkAborted(1) // cascading abort, not from a rejected step
	if got := l.AcceptedSubschedule(); len(got) != 0 {
		t.Fatalf("all steps belong to aborted T1: %v", got)
	}
}

func TestCheckAcceptedCSRFailure(t *testing.T) {
	l := NewLog()
	// Log a non-CSR pair as if both were accepted.
	l.Append(model.Begin(1), true)
	l.Append(model.Begin(2), true)
	l.Append(model.Read(1, 0), true)
	l.Append(model.Read(2, 1), true)
	l.Append(model.WriteFinal(1, 1), true)
	l.Append(model.WriteFinal(2, 0), true)
	if err := l.CheckAcceptedCSR(); err == nil {
		t.Fatal("non-CSR accepted subschedule must be reported")
	}
}
