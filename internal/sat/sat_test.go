package sat

import (
	"math/rand"
	"testing"
)

func TestLiteralBasics(t *testing.T) {
	l := Literal(3)
	if l.Var() != 2 || !l.Positive() {
		t.Fatalf("Literal(3): var=%d pos=%v", l.Var(), l.Positive())
	}
	n := l.Neg()
	if n.Var() != 2 || n.Positive() {
		t.Fatalf("Neg: var=%d pos=%v", n.Var(), n.Positive())
	}
}

func TestValidate(t *testing.T) {
	ok := &Formula{NumVars: 2, Clauses: []Clause{{1, -2}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (&Formula{NumVars: 1, Clauses: []Clause{{}}}).Validate(); err == nil {
		t.Fatal("empty clause must fail")
	}
	if err := (&Formula{NumVars: 1, Clauses: []Clause{{5}}}).Validate(); err == nil {
		t.Fatal("out-of-range literal must fail")
	}
	if err := (&Formula{NumVars: 1, Clauses: []Clause{{0}}}).Validate(); err == nil {
		t.Fatal("zero literal must fail")
	}
}

func TestSolveTrivial(t *testing.T) {
	f := &Formula{NumVars: 1, Clauses: []Clause{{1}}}
	a, ok := Solve(f)
	if !ok || !a[0] {
		t.Fatalf("x1 must be satisfiable with x1=true: %v %v", a, ok)
	}
	f2 := &Formula{NumVars: 1, Clauses: []Clause{{1}, {-1}}}
	if _, ok := Solve(f2); ok {
		t.Fatal("x1 AND NOT x1 is unsat")
	}
}

func TestSolveUnitPropagationChain(t *testing.T) {
	// x1; x1->x2; x2->x3  encoded as (x1)(¬x1∨x2)(¬x2∨x3); then ¬x3 unsat.
	f := &Formula{NumVars: 3, Clauses: []Clause{{1}, {-1, 2}, {-2, 3}}}
	a, ok := Solve(f)
	if !ok || !a[0] || !a[1] || !a[2] {
		t.Fatalf("chain: %v %v", a, ok)
	}
	f.Clauses = append(f.Clauses, Clause{-3})
	if _, ok := Solve(f); ok {
		t.Fatal("chain + ¬x3 is unsat")
	}
}

func TestSolvePigeonholeUnsat(t *testing.T) {
	// 3 pigeons, 2 holes: var p*2+h means pigeon p in hole h.
	v := func(p, h int) Literal { return Literal(p*2 + h + 1) }
	f := &Formula{NumVars: 6}
	for p := 0; p < 3; p++ {
		f.Clauses = append(f.Clauses, Clause{v(p, 0), v(p, 1)})
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				f.Clauses = append(f.Clauses, Clause{-v(p1, h), -v(p2, h)})
			}
		}
	}
	if _, ok := Solve(f); ok {
		t.Fatal("pigeonhole PHP(3,2) must be unsat")
	}
}

func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(6)
		m := 1 + rng.Intn(4*n) // spans under- and over-constrained
		f := Random3CNF(rng, n, m)
		_, wantSat := BruteForce(f)
		a, gotSat := Solve(f)
		if gotSat != wantSat {
			t.Fatalf("trial %d: Solve=%v brute=%v for %v", trial, gotSat, wantSat, f)
		}
		if gotSat && !f.Satisfies(a) {
			t.Fatalf("trial %d: assignment does not satisfy", trial)
		}
	}
}

func TestSatisfiesShortAssignment(t *testing.T) {
	f := &Formula{NumVars: 2, Clauses: []Clause{{1, 2}}}
	if f.Satisfies(Assignment{true}) {
		t.Fatal("short assignment must not satisfy")
	}
}

func TestRandom3CNFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := Random3CNF(rng, 8, 20)
	if f.NumVars != 8 || len(f.Clauses) != 20 {
		t.Fatalf("shape: %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatalf("clause size %d", len(c))
		}
		vars := map[int]bool{}
		for _, l := range c {
			if vars[l.Var()] {
				t.Fatalf("repeated variable in clause %v", c)
			}
			vars[l.Var()] = true
		}
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.String() == "" {
		t.Fatal("String()")
	}
}

func TestRandom3CNFMinVars(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := Random3CNF(rng, 1, 2) // fewer than 3 vars requested
	if f.NumVars < 3 {
		t.Fatalf("NumVars = %d; 3-CNF needs at least 3", f.NumVars)
	}
}
