// Package sat implements 3-SAT solving for Theorem 6's NP-completeness
// reduction: a DPLL solver with unit propagation and pure-literal
// elimination, a brute-force reference, and random 3-CNF generation.
//
// A literal is encoded ±(v+1) for variable index v (DIMACS style):
// +3 means variable 2 is true, -3 means variable 2 is false.
package sat

import (
	"fmt"
	"math/rand"
)

// Literal is a signed, 1-based variable reference.
type Literal int

// Var returns the 0-based variable index.
func (l Literal) Var() int {
	if l < 0 {
		return int(-l) - 1
	}
	return int(l) - 1
}

// Positive reports whether the literal is positive.
func (l Literal) Positive() bool { return l > 0 }

// Neg returns the negation.
func (l Literal) Neg() Literal { return -l }

// Clause is a disjunction of literals.
type Clause []Literal

// Formula is a CNF formula.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// Validate checks literal ranges and clause non-emptiness.
func (f *Formula) Validate() error {
	for i, c := range f.Clauses {
		if len(c) == 0 {
			return fmt.Errorf("sat: clause %d empty", i)
		}
		for _, l := range c {
			if l == 0 || l.Var() >= f.NumVars {
				return fmt.Errorf("sat: clause %d has invalid literal %d", i, l)
			}
		}
	}
	return nil
}

// Assignment maps 0-based variables to truth values.
type Assignment []bool

// Satisfies reports whether the assignment satisfies the formula.
func (f *Formula) Satisfies(a Assignment) bool {
	if len(a) < f.NumVars {
		return false
	}
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if a[l.Var()] == l.Positive() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// value is the three-valued assignment state inside the solver.
type value int8

const (
	unassigned value = iota
	vTrue
	vFalse
)

// Solve runs DPLL with unit propagation and pure-literal elimination.
// It returns (assignment, true) if satisfiable, (nil, false) otherwise.
func Solve(f *Formula) (Assignment, bool) {
	if err := f.Validate(); err != nil {
		return nil, false
	}
	assign := make([]value, f.NumVars)
	if !dpll(f, assign) {
		return nil, false
	}
	out := make(Assignment, f.NumVars)
	for i, v := range assign {
		out[i] = v == vTrue
	}
	if !f.Satisfies(out) {
		// Unassigned variables default to false; Satisfies re-validates.
		// dpll only returns true when every clause is satisfied, so this
		// cannot fail; keep the check as an internal invariant.
		panic("sat: solver returned non-satisfying assignment")
	}
	return out, true
}

// clauseState classifies a clause under the current partial assignment.
func clauseState(c Clause, assign []value) (satisfied bool, unassignedLits []Literal) {
	for _, l := range c {
		switch assign[l.Var()] {
		case unassigned:
			unassignedLits = append(unassignedLits, l)
		case vTrue:
			if l.Positive() {
				return true, nil
			}
		case vFalse:
			if !l.Positive() {
				return true, nil
			}
		}
	}
	return false, unassignedLits
}

func dpll(f *Formula, assign []value) bool {
	// Unit propagation + conflict detection, to fixpoint.
	type trailEntry struct{ v int }
	var trail []trailEntry
	undo := func() {
		for _, e := range trail {
			assign[e.v] = unassigned
		}
	}
	setLit := func(l Literal) {
		if l.Positive() {
			assign[l.Var()] = vTrue
		} else {
			assign[l.Var()] = vFalse
		}
		trail = append(trail, trailEntry{l.Var()})
	}
	for {
		changed := false
		for _, c := range f.Clauses {
			sat, un := clauseState(c, assign)
			if sat {
				continue
			}
			switch len(un) {
			case 0:
				undo()
				return false // conflict
			case 1:
				setLit(un[0])
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Pure literal elimination.
	seenPos := make([]bool, f.NumVars)
	seenNeg := make([]bool, f.NumVars)
	for _, c := range f.Clauses {
		sat, un := clauseState(c, assign)
		if sat {
			continue
		}
		for _, l := range un {
			if l.Positive() {
				seenPos[l.Var()] = true
			} else {
				seenNeg[l.Var()] = true
			}
		}
	}
	for v := 0; v < f.NumVars; v++ {
		if assign[v] != unassigned {
			continue
		}
		if seenPos[v] && !seenNeg[v] {
			setLit(Literal(v + 1))
		} else if seenNeg[v] && !seenPos[v] {
			setLit(Literal(-(v + 1)))
		}
	}
	// Check whether everything is satisfied; pick a branch variable from
	// the shortest unsatisfied clause (a cheap MOM heuristic).
	branch := Literal(0)
	shortest := 1 << 30
	allSat := true
	for _, c := range f.Clauses {
		sat, un := clauseState(c, assign)
		if sat {
			continue
		}
		allSat = false
		if len(un) == 0 {
			undo()
			return false
		}
		if len(un) < shortest {
			shortest = len(un)
			branch = un[0]
		}
	}
	if allSat {
		return true
	}
	// Branch.
	setLit(branch)
	if dpll(f, assign) {
		return true
	}
	assign[branch.Var()] = unassigned
	trail = trail[:len(trail)-1]
	setLit(branch.Neg())
	if dpll(f, assign) {
		return true
	}
	undo()
	return false
}

// BruteForce enumerates all 2^n assignments (reference for tests).
func BruteForce(f *Formula) (Assignment, bool) {
	n := f.NumVars
	if n > 24 {
		panic("sat: brute force limited to 24 variables")
	}
	a := make(Assignment, n)
	for mask := 0; mask < 1<<uint(n); mask++ {
		for i := 0; i < n; i++ {
			a[i] = mask&(1<<uint(i)) != 0
		}
		if f.Satisfies(a) {
			out := make(Assignment, n)
			copy(out, a)
			return out, true
		}
	}
	return nil, false
}

// Random3CNF generates a random 3-CNF with n variables and m clauses,
// each clause having three literals over distinct variables.
func Random3CNF(rng *rand.Rand, n, m int) *Formula {
	if n < 3 {
		n = 3
	}
	f := &Formula{NumVars: n}
	for i := 0; i < m; i++ {
		vars := rng.Perm(n)[:3]
		var c Clause
		for _, v := range vars {
			l := Literal(v + 1)
			if rng.Intn(2) == 0 {
				l = -l
			}
			c = append(c, l)
		}
		f.Clauses = append(f.Clauses, c)
	}
	return f
}

// String renders the formula in a compact DIMACS-like form.
func (f *Formula) String() string {
	s := fmt.Sprintf("cnf(%d vars)", f.NumVars)
	for _, c := range f.Clauses {
		s += fmt.Sprintf(" (%v)", []Literal(c))
	}
	return s
}
