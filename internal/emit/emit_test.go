package emit

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/model"
)

// collectSink gathers events for assertions.
type collectSink struct {
	mu  sync.Mutex
	evs []Event
}

func (s *collectSink) Consume(ev Event) {
	s.mu.Lock()
	s.evs = append(s.evs, ev)
	s.mu.Unlock()
}
func (s *collectSink) Close() error { return nil }
func (s *collectSink) snapshot() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.evs...)
}

// TestBusDeliversInOrder: a single producer's events arrive at the sink
// complete and in emission order.
func TestBusDeliversInOrder(t *testing.T) {
	sink := &collectSink{}
	b := NewBus(64, sink)
	const n = 1000
	accepted := 0
	for i := 0; i < n; i++ {
		// The ring is 64 deep and the consumer runs concurrently, so some
		// emits may drop under scheduler jitter; order of the accepted
		// prefix per producer is what must hold.
		if b.Emit(Event{Kind: KindAccept, Txn: int64ToTxn(i)}) {
			accepted++
		}
	}
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	evs := sink.snapshot()
	if len(evs) != accepted {
		t.Fatalf("sink got %d events, bus accepted %d", len(evs), accepted)
	}
	if got, want := b.Emitted(), uint64(accepted); got != want {
		t.Fatalf("Emitted() = %d, want %d", got, want)
	}
	if b.Emitted()+b.Dropped() != n {
		t.Fatalf("emitted %d + dropped %d != %d emits", b.Emitted(), b.Dropped(), n)
	}
	last := int64(-1)
	for _, ev := range evs {
		if int64(ev.Txn) <= last {
			t.Fatalf("out-of-order delivery: %d after %d", ev.Txn, last)
		}
		last = int64(ev.Txn)
	}
}

func int64ToTxn(i int) model.TxnID { return model.TxnID(i) }

// TestBusSaturationDropsNotBlocks: with no consumer progress (sink blocked),
// emitting past capacity returns false immediately and counts drops —
// the hot path's never-block guarantee.
func TestBusSaturationDropsNotBlocks(t *testing.T) {
	gate := make(chan struct{})
	blocked := &gatedSink{gate: gate}
	b := NewBus(8, blocked) // capacity rounds to 8
	// Fill the ring plus the one event the consumer is stuck holding.
	sent := 0
	for i := 0; i < 64; i++ {
		if b.Emit(Event{Kind: KindAccept}) {
			sent++
		}
	}
	if b.Dropped() == 0 {
		t.Fatalf("no drops after %d emits into a full capacity-8 ring", sent)
	}
	if sent > 8+1 {
		t.Fatalf("accepted %d events with a blocked consumer and capacity 8", sent)
	}
	// Release the consumer; everything accepted must still be delivered.
	close(gate)
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := blocked.n; got != sent {
		t.Fatalf("delivered %d, accepted %d", got, sent)
	}
}

type gatedSink struct {
	gate   chan struct{}
	opened bool
	n      int
}

func (s *gatedSink) Consume(Event) {
	if !s.opened {
		<-s.gate
		s.opened = true
	}
	s.n++
}
func (s *gatedSink) Close() error { return nil }

// TestBusConcurrentProducers: hammer the bus from many goroutines under
// -race; every accepted event is delivered exactly once, and per-producer
// order is preserved.
func TestBusConcurrentProducers(t *testing.T) {
	sink := &collectSink{}
	b := NewBus(1024, sink)
	const producers, per = 8, 5000
	var wg sync.WaitGroup
	var acceptedTotal sync.Map
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			n := 0
			for i := 0; i < per; i++ {
				if b.Emit(Event{Kind: KindAccept, Shard: int32(p), Incarnation: int64(i)}) {
					n++
				}
			}
			acceptedTotal.Store(p, n)
		}(p)
	}
	wg.Wait()
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	evs := sink.snapshot()
	want := 0
	acceptedTotal.Range(func(_, v any) bool { want += v.(int); return true })
	if len(evs) != want {
		t.Fatalf("delivered %d events, accepted %d", len(evs), want)
	}
	lastInc := map[int32]int64{}
	for _, ev := range evs {
		if prev, ok := lastInc[ev.Shard]; ok && ev.Incarnation <= prev {
			t.Fatalf("producer %d order violated: %d after %d", ev.Shard, ev.Incarnation, prev)
		}
		lastInc[ev.Shard] = ev.Incarnation
	}
}

// TestBusCloseIdempotentAndLateEmit: double Close is fine, and Emit after
// Close neither blocks nor panics.
func TestBusCloseIdempotentAndLateEmit(t *testing.T) {
	b := NewBus(8, &collectSink{})
	if err := b.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	for i := 0; i < 100; i++ {
		b.Emit(Event{Kind: KindAccept}) // must not block or panic
	}
}

// TestForShardStampsShard: the per-shard emitter forces the shard index.
func TestForShardStampsShard(t *testing.T) {
	sink := &collectSink{}
	b := NewBus(8, sink)
	em := ForShard(b, 3)
	em.Emit(Event{Kind: KindBegin, Shard: 99, Txn: 7})
	b.Close()
	evs := sink.snapshot()
	if len(evs) != 1 || evs[0].Shard != 3 {
		t.Fatalf("events = %+v, want one event with Shard=3", evs)
	}
	if ForShard(nil, 0) != nil {
		t.Fatalf("ForShard(nil bus) must be nil")
	}
}

// TestCaptureSinkJSONL: every event renders as one parseable JSON line
// with the documented fields.
func TestCaptureSinkJSONL(t *testing.T) {
	var buf bytes.Buffer
	s := NewCaptureSink(&buf)
	s.Consume(Event{Kind: KindCommit, Class: ClassOK, Shard: 2, Txn: 41, Incarnation: 9, DurNanos: 1500})
	s.Consume(Event{Kind: KindSweep, Class: ClassOK, Shard: 0, Txn: -1, N: 12})
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("capture lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 not JSON: %v\n%s", err, lines[0])
	}
	if rec["rec"] != "event" || rec["kind"] != "commit" || rec["class"] != "ok" ||
		rec["shard"] != float64(2) || rec["txn"] != float64(41) ||
		rec["inc"] != float64(9) || rec["dur_ns"] != float64(1500) {
		t.Fatalf("line 0 fields wrong: %v", rec)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("line 1 not JSON: %v", err)
	}
	if rec["kind"] != "sweep" || rec["n"] != float64(12) {
		t.Fatalf("line 1 fields wrong: %v", rec)
	}
}

// TestMetricsSinkEndpoint: counters, histograms, gauges, and drop counters
// all render in the exposition format.
func TestMetricsSinkEndpoint(t *testing.T) {
	m := NewMetricsSink()
	b := NewBus(16, m)
	m.SetBus(b)
	m.SetGauges(func() GaugeSnapshot {
		return GaugeSnapshot{
			QueueDepth: []int64{3, 0},
			Retained:   []int64{5, 7},
			Prepared:   []int64{0, 1},
		}
	})
	b.Emit(Event{Kind: KindAccept, Class: ClassOK, Shard: 0, Txn: 1})
	b.Emit(Event{Kind: KindVeto, Class: ClassCycle, Shard: 1, Txn: 2})
	b.Emit(Event{Kind: KindSweep, Class: ClassOK, Shard: 0, Txn: -1, N: 4})
	b.Emit(Event{Kind: KindCommit, Class: ClassOK, Shard: NoShard, Txn: 3, DurNanos: 2_000_000})
	b.Emit(Event{Kind: KindAbort, Class: ClassCycle, Shard: NoShard, Txn: 4, DurNanos: 100_000})
	b.Close()

	if got := m.Counter(0, KindAccept, ClassOK); got != 1 {
		t.Fatalf("Counter(0,accept,ok) = %d, want 1", got)
	}

	rr := httptest.NewRecorder()
	m.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	body := rr.Body.String()
	for _, want := range []string{
		`txgc_events_total{shard="0",kind="accept",class="ok"} 1`,
		`txgc_events_total{shard="1",kind="veto",class="cycle"} 1`,
		`txgc_deleted_total{shard="0"} 4`,
		`txgc_sessions_total{outcome="ok"} 1`,
		`txgc_sessions_total{outcome="cycle"} 1`,
		`txgc_session_latency_seconds_bucket{outcome="ok",le="0.004"} 1`,
		`txgc_session_latency_seconds_count{outcome="ok"} 1`,
		`txgc_queue_depth{shard="0"} 3`,
		`txgc_retained{shard="1"} 7`,
		`txgc_prepared{shard="1"} 1`,
		`txgc_events_emitted_total 5`,
		`txgc_events_dropped_total 0`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

// TestKindClassStrings: names are what the wire and docs promise.
func TestKindClassStrings(t *testing.T) {
	if KindCrossVeto.String() != "cross-veto" || KindShed.String() != "shed" {
		t.Fatal("kind names drifted")
	}
	if ClassCrossCycle.String() != "cross-cycle" || ClassOverload.String() != "overload" {
		t.Fatal("class names drifted")
	}
	if Kind(200).String() != "unknown" || Class(200).String() != "unknown" {
		t.Fatal("out-of-range names must be unknown")
	}
}
