package emit

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// GaugeSnapshot is a point-in-time reading of the engine's per-shard
// gauges, fetched lock-free at scrape time (not derived from events, so a
// dropped event can never skew a gauge).
type GaugeSnapshot struct {
	// QueueDepth is the per-shard submission backlog.
	QueueDepth []int64
	// Retained is the per-shard count of retained completed transactions —
	// the storage the paper's deletion conditions bound.
	Retained []int64
	// Prepared is the per-shard count of prepared-but-undecided 2PC
	// sub-transactions (each pins its node against deletion).
	Prepared []int64
	// RetentionWatermark is the retention governor's configured watermark
	// over the engine-wide retained count (0: governor disabled).
	RetentionWatermark int64
	// WALAppendedBytes is the per-shard count of WAL frame bytes appended
	// since the store was opened (nil: no durability layer configured).
	WALAppendedBytes []int64
	// WALFsyncs is the per-shard count of log syncs that reached the
	// backing medium since the store was opened.
	WALFsyncs []int64
	// CheckpointSeq is the per-shard LSN covered by the latest checkpoint
	// (0 before the first); it survives restarts.
	CheckpointSeq []int64
}

// GaugeSource supplies gauges at scrape time.
type GaugeSource func() GaugeSnapshot

// latencyBuckets are the histogram upper bounds, in seconds. Sessions on a
// healthy engine commit in microseconds; the tail covers 2PC fan-out,
// saturated queues, and deadline-bound stragglers.
var latencyBuckets = []float64{
	16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4,
}

// numLatencyBuckets counts the finite buckets; the histogram array carries
// one extra slot for +Inf.
const numLatencyBuckets = 10

// histogram is one Prometheus histogram (cumulative rendering happens at
// scrape).
type histogram struct {
	buckets [numLatencyBuckets + 1]uint64 // +Inf last
	sum     float64
	count   uint64
}

func (h *histogram) observe(seconds float64) {
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	h.buckets[i]++
	h.sum += seconds
	h.count++
}

// shardCounters is one shard's event counter matrix.
type shardCounters [numKinds][numClasses]uint64

// MetricsSink aggregates the event stream into Prometheus metrics and
// serves them as an http.Handler (the /metrics endpoint):
//
//	txgc_events_total{shard,kind,class}     step/lifecycle events per shard
//	txgc_deleted_total{shard}               transactions reclaimed by sweeps
//	txgc_sessions_total{outcome}            client sessions ended, by outcome
//	txgc_session_latency_seconds{outcome}   session wall-clock histograms
//	txgc_queue_depth{shard}                 submission backlog gauge
//	txgc_retained{shard}                    retained completed transactions
//	txgc_prepared{shard}                    prepared-undecided 2PC gauge
//	txgc_reaped_total                       stragglers aborted by the governor
//	txgc_retention_watermark                the governor's retained watermark
//	txgc_events_emitted_total               events accepted onto the bus
//	txgc_events_dropped_total               events dropped on ring overflow
//
// Consume runs on the bus's drain goroutine; ServeHTTP may run on any
// number of scrape goroutines. One mutex covers both — scrapes are rare
// and the counter update is tens of nanoseconds, so the drain goroutine
// never stalls meaningfully.
type MetricsSink struct {
	mu sync.Mutex
	// shards maps shard index (NoShard included) to its counter matrix.
	shards map[int32]*shardCounters
	// deleted accumulates KindSweep N per shard.
	deleted map[int32]uint64
	// reaped counts KindReap events — stragglers aborted by the retention
	// governor. Rendered even at zero so dashboards can alert on its rate
	// without waiting for the first reap to create the series.
	reaped uint64
	// sessions are the client-session end histograms per outcome class.
	sessions [numClasses]histogram
	started  time.Time

	gauges GaugeSource
	bus    *Bus
}

// NewMetricsSink returns an empty metrics sink. Wire gauges with SetGauges
// and drop counters with SetBus (both optional).
func NewMetricsSink() *MetricsSink {
	return &MetricsSink{
		shards:  make(map[int32]*shardCounters),
		deleted: make(map[int32]uint64),
		started: time.Now(),
	}
}

// SetGauges installs the engine's gauge source, polled at scrape time.
func (m *MetricsSink) SetGauges(g GaugeSource) {
	m.mu.Lock()
	m.gauges = g
	m.mu.Unlock()
}

// SetBus names the bus whose emitted/dropped counters the endpoint should
// expose.
func (m *MetricsSink) SetBus(b *Bus) {
	m.mu.Lock()
	m.bus = b
	m.mu.Unlock()
}

// Consume implements Sink.
func (m *MetricsSink) Consume(ev Event) {
	if int(ev.Kind) >= numKinds || int(ev.Class) >= numClasses {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	sc, ok := m.shards[ev.Shard]
	if !ok {
		sc = new(shardCounters)
		m.shards[ev.Shard] = sc
	}
	sc[ev.Kind][ev.Class]++
	if ev.Kind == KindSweep && ev.N > 0 {
		m.deleted[ev.Shard] += uint64(ev.N)
	}
	if ev.Kind == KindReap {
		m.reaped++
	}
	if ev.Shard == NoShard && (ev.Kind == KindCommit || ev.Kind == KindAbort) {
		m.sessions[ev.Class].observe(float64(ev.DurNanos) / 1e9)
	}
}

// Close implements Sink.
func (m *MetricsSink) Close() error { return nil }

// Counter returns the current count for (shard, kind, class) — test and
// programmatic access to what the endpoint renders.
func (m *MetricsSink) Counter(shard int32, kind Kind, class Class) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if sc, ok := m.shards[shard]; ok {
		return sc[kind][class]
	}
	return 0
}

// ServeHTTP renders the Prometheus text exposition format.
func (m *MetricsSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.mu.Lock()
	defer m.mu.Unlock()

	shardIDs := make([]int32, 0, len(m.shards))
	for id := range m.shards {
		shardIDs = append(shardIDs, id)
	}
	sort.Slice(shardIDs, func(i, j int) bool { return shardIDs[i] < shardIDs[j] })

	shardLabel := func(id int32) string {
		if id == NoShard {
			return "client"
		}
		return strconv.Itoa(int(id))
	}

	fmt.Fprint(w, "# HELP txgc_events_total Lifecycle events by shard, kind, and outcome class.\n# TYPE txgc_events_total counter\n")
	for _, id := range shardIDs {
		sc := m.shards[id]
		for k := 0; k < numKinds; k++ {
			for c := 0; c < numClasses; c++ {
				if n := sc[k][c]; n > 0 {
					fmt.Fprintf(w, "txgc_events_total{shard=%q,kind=%q,class=%q} %d\n",
						shardLabel(id), Kind(k), Class(c), n)
				}
			}
		}
	}

	fmt.Fprint(w, "# HELP txgc_deleted_total Completed transactions reclaimed by deletion-policy sweeps.\n# TYPE txgc_deleted_total counter\n")
	for _, id := range shardIDs {
		if n := m.deleted[id]; n > 0 {
			fmt.Fprintf(w, "txgc_deleted_total{shard=%q} %d\n", shardLabel(id), n)
		}
	}

	fmt.Fprint(w, "# HELP txgc_sessions_total Client sessions ended, by outcome class.\n# TYPE txgc_sessions_total counter\n")
	for c := 0; c < numClasses; c++ {
		if m.sessions[c].count > 0 {
			fmt.Fprintf(w, "txgc_sessions_total{outcome=%q} %d\n", Class(c), m.sessions[c].count)
		}
	}

	fmt.Fprint(w, "# HELP txgc_session_latency_seconds Session wall-clock latency from Begin to commit/abort, by outcome class.\n# TYPE txgc_session_latency_seconds histogram\n")
	for c := 0; c < numClasses; c++ {
		h := &m.sessions[c]
		if h.count == 0 {
			continue
		}
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += h.buckets[i]
			fmt.Fprintf(w, "txgc_session_latency_seconds_bucket{outcome=%q,le=%q} %d\n",
				Class(c), strconv.FormatFloat(ub, 'g', -1, 64), cum)
		}
		cum += h.buckets[len(latencyBuckets)]
		fmt.Fprintf(w, "txgc_session_latency_seconds_bucket{outcome=%q,le=\"+Inf\"} %d\n", Class(c), cum)
		fmt.Fprintf(w, "txgc_session_latency_seconds_sum{outcome=%q} %g\n", Class(c), h.sum)
		fmt.Fprintf(w, "txgc_session_latency_seconds_count{outcome=%q} %d\n", Class(c), h.count)
	}

	if m.gauges != nil {
		gs := m.gauges()
		writeGauge := func(name, help string, vals []int64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for i, v := range vals {
				fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", name, i, v)
			}
		}
		writeGauge("txgc_queue_depth", "Per-shard submission backlog (requests not yet picked up).", gs.QueueDepth)
		writeGauge("txgc_retained", "Per-shard retained completed transactions (the storage deletion reclaims).", gs.Retained)
		writeGauge("txgc_prepared", "Per-shard prepared-but-undecided 2PC sub-transactions (pinned).", gs.Prepared)
		fmt.Fprint(w, "# HELP txgc_retention_watermark Retention governor watermark over the engine-wide retained count (0: disabled).\n# TYPE txgc_retention_watermark gauge\n")
		fmt.Fprintf(w, "txgc_retention_watermark %d\n", gs.RetentionWatermark)
		if gs.WALAppendedBytes != nil {
			writeCounter := func(name, help string, vals []int64) {
				fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
				for i, v := range vals {
					fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", name, i, v)
				}
			}
			writeCounter("txgc_wal_appended_bytes_total", "Per-shard WAL frame bytes appended since the store opened.", gs.WALAppendedBytes)
			writeCounter("txgc_wal_fsyncs_total", "Per-shard WAL syncs that reached the backing medium since the store opened.", gs.WALFsyncs)
			writeGauge("txgc_checkpoint_seq", "Per-shard LSN covered by the latest checkpoint (0 before the first).", gs.CheckpointSeq)
		}
	}

	fmt.Fprint(w, "# HELP txgc_reaped_total Stragglers aborted by the retention governor.\n# TYPE txgc_reaped_total counter\n")
	fmt.Fprintf(w, "txgc_reaped_total %d\n", m.reaped)

	if m.bus != nil {
		fmt.Fprint(w, "# HELP txgc_events_emitted_total Events accepted onto the bus ring.\n# TYPE txgc_events_emitted_total counter\n")
		fmt.Fprintf(w, "txgc_events_emitted_total %d\n", m.bus.Emitted())
		fmt.Fprint(w, "# HELP txgc_events_dropped_total Events dropped on ring overflow (the hot path never blocks).\n# TYPE txgc_events_dropped_total counter\n")
		fmt.Fprintf(w, "txgc_events_dropped_total %d\n", m.bus.Dropped())
	}

	fmt.Fprint(w, "# HELP txgc_uptime_seconds Seconds since the metrics sink was created.\n# TYPE txgc_uptime_seconds gauge\n")
	fmt.Fprintf(w, "txgc_uptime_seconds %g\n", time.Since(m.started).Seconds())
}
