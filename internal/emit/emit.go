// Package emit is the engine's non-blocking telemetry spine: a
// fixed-capacity event bus carrying typed transaction-lifecycle events from
// the schedulers' hot paths to pluggable sinks (structured log, Prometheus
// /metrics, capture files).
//
// The contract the hot path relies on:
//
//   - Emit never blocks. The bus is a bounded multi-producer ring; when the
//     ring is full the event is dropped and counted (Dropped), never queued
//     elsewhere and never waited for.
//   - Emit never allocates. Event is a flat value struct; publishing copies
//     it into a pre-allocated ring cell.
//   - Sinks run on one drain goroutine, so a slow sink can only ever cost
//     dropped events, not engine latency.
//
// Event identity: Shard says which shard graph the event happened on (-1
// for engine- or session-level events), Txn is the logical transaction, and
// Incarnation is the shard scheduler's begin sequence number for that
// incarnation of the ID — a reused TxnID gets a fresh Incarnation, so
// (Shard, Txn, Incarnation) names one sub-transaction lifetime unambiguously
// in a capture.
package emit

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/ring"
)

// Kind is the lifecycle event type.
type Kind uint8

const (
	// KindBegin: a transaction (or sub-transaction, or client session)
	// began.
	KindBegin Kind = iota
	// KindAccept: an access step was applied and accepted.
	KindAccept
	// KindVeto: a step was refused — accepting it would close a cycle in
	// one shard's conflict graph (or the step misrouted; see Class).
	KindVeto
	// KindCrossVeto: the cross-arc registry refused a step — it would
	// close a cycle spanning shard graphs.
	KindCrossVeto
	// KindPrepare: a participant voted YES on its slice of a cross
	// transaction's final write (the sub-node is pinned prepared).
	KindPrepare
	// KindCommit: a transaction completed — a local final write, one
	// participant's COMMIT decision, or a client session committing
	// (Shard == -1, Dur carries the session's wall-clock latency).
	KindCommit
	// KindAbort: a transaction (or sub-transaction, or session) aborted;
	// Class carries the outcome class of the cause.
	KindAbort
	// KindShed: admission control refused a BEGIN at the door (Shard is
	// the overloaded shard).
	KindShed
	// KindSweep: a deletion-policy sweep ran; N is the number of retained
	// completed transactions it reclaimed.
	KindSweep
	// KindReap: the retention governor aborted the oldest live straggler to
	// push retained storage back under the watermark; N is the engine-wide
	// retained count at the decision.
	KindReap

	numKinds = int(KindReap) + 1
)

var kindNames = [numKinds]string{
	"begin", "accept", "veto", "cross-veto", "prepare", "commit", "abort",
	"shed", "sweep", "reap",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return "unknown"
}

// Class is the outcome class of an event, aligned with the engine's typed
// error taxonomy (and txgc-serve's wire codes).
type Class uint8

const (
	// ClassOK: the step/transaction succeeded.
	ClassOK Class = iota
	// ClassCycle: refused — local conflict cycle.
	ClassCycle
	// ClassCrossCycle: refused — cycle spanning shard graphs.
	ClassCrossCycle
	// ClassMisroute: the transaction touched an entity outside its
	// declared partition or participant set.
	ClassMisroute
	// ClassTxnAborted: the transaction died for a non-step reason (client
	// abort, context cancellation or deadline, sibling sub-abort).
	ClassTxnAborted
	// ClassOverload: admission control shed the BEGIN.
	ClassOverload
	// ClassProtocol: session-protocol violation.
	ClassProtocol
	// ClassClosed: the engine shut down underneath the operation.
	ClassClosed
	// ClassInternal: an error outside the taxonomy.
	ClassInternal
	// ClassStraggler: the retention governor reaped the transaction — it was
	// the oldest live straggler while retained storage sat over the
	// watermark.
	ClassStraggler

	numClasses = int(ClassStraggler) + 1
)

var classNames = [numClasses]string{
	"ok", "cycle", "cross-cycle", "misroute", "txn-aborted", "overload",
	"protocol", "closed", "internal", "straggler",
}

// String implements fmt.Stringer.
func (c Class) String() string {
	if int(c) < numClasses {
		return classNames[c]
	}
	return "unknown"
}

// NoShard marks an event not tied to one shard graph: engine-level routing
// decisions and client-session events.
const NoShard int32 = -1

// Event is one lifecycle event. It is a flat value struct — no pointers —
// so emitting one never allocates and capturing one is a plain copy.
type Event struct {
	Kind  Kind
	Class Class
	// Shard is the shard graph the event happened on, or NoShard.
	Shard int32
	// Txn is the logical transaction ID (sub-transactions carry the
	// logical ID, like the trace does).
	Txn model.TxnID
	// Incarnation is the emitting scheduler's begin sequence number for
	// this incarnation of Txn on this shard (0 when not applicable), so a
	// reused ID cannot be confused with its dead predecessor.
	Incarnation int64
	// N is the event's magnitude, when it has one: transactions reclaimed
	// by a KindSweep, queue depth for a shed BEGIN.
	N int64
	// DurNanos is the wall-clock latency carried by client-session
	// KindCommit/KindAbort events (0 elsewhere).
	DurNanos int64
}

// Emitter publishes events. The engine hands each shard scheduler an
// Emitter that stamps the shard index; Emit reports whether the event was
// accepted (false: dropped on overflow or the bus is closed).
type Emitter interface {
	Emit(Event) bool
}

// Sink consumes the event stream. Consume is called from the bus's single
// drain goroutine, so implementations need no internal ordering; they must
// still synchronize any state read by other goroutines (an HTTP scrape, a
// concurrent Flush). Close flushes and releases the sink.
type Sink interface {
	Consume(Event)
	Close() error
}

// Bus is the bounded, non-blocking event bus: multi-producer (every shard
// goroutine plus client goroutines), single consumer (the drain goroutine
// feeding the sinks). The transport is the shared lock-free MPSC ring in
// internal/ring — the same cell protocol the engine's shard mailboxes run
// on — with the bus adding drop-and-count on overflow.
type Bus struct {
	ring *ring.MPSC[Event]

	emitted atomic.Uint64
	dropped atomic.Uint64

	done   chan struct{}
	closed atomic.Bool
	wg     sync.WaitGroup

	sinks []Sink
}

// DefaultBuffer is the ring capacity used when NewBus is given n <= 0.
const DefaultBuffer = 1 << 12

// NewBus starts a bus with a ring of capacity n (rounded up to a power of
// two; n <= 0 means DefaultBuffer) draining into sinks.
func NewBus(n int, sinks ...Sink) *Bus {
	if n <= 0 {
		n = DefaultBuffer
	}
	b := &Bus{
		ring:  ring.NewMPSC[Event](n),
		done:  make(chan struct{}),
		sinks: sinks,
	}
	b.wg.Add(1)
	go b.drain()
	return b
}

// Emit publishes one event without ever blocking: if the ring is full (the
// drain goroutine is behind) the event is dropped and counted. It is safe
// from any number of goroutines and reports whether the event was enqueued.
//
//txgc:hotpath
func (b *Bus) Emit(ev Event) bool {
	if !b.ring.TryPush(ev) {
		// The drain goroutine is a full lap behind. Drop, never block.
		b.dropped.Add(1)
		return false
	}
	b.emitted.Add(1)
	return true
}

// Emitted returns the number of events accepted onto the ring.
func (b *Bus) Emitted() uint64 { return b.emitted.Load() }

// Dropped returns the number of events dropped on ring overflow — the
// price of the never-block guarantee, visible instead of silent.
func (b *Bus) Dropped() uint64 { return b.dropped.Load() }

// drainReady consumes every ready event in ring order, dispatching each to
// all sinks, and returns how many it consumed.
func (b *Bus) drainReady() int {
	n := 0
	for {
		ev, ok := b.ring.Pop()
		if !ok {
			return n
		}
		n++
		for _, s := range b.sinks {
			s.Consume(ev)
		}
	}
}

// drainLinger is how many times the drain goroutine yields and re-checks
// an empty ring before parking on the wake channel. Each park/wake cycle
// costs the producers a flag store plus a channel send and the scheduler a
// goroutine transition — on a busy engine the ring refills within a few
// scheduler slices, so lingering turns most would-be parks into another
// batch consumed with zero producer-side cost.
const drainLinger = 64

func (b *Bus) drain() {
	defer b.wg.Done()
	for {
		if b.drainReady() > 0 {
			continue
		}
		lingered := false
		for i := 0; i < drainLinger; i++ {
			runtime.Gosched()
			if b.drainReady() > 0 {
				lingered = true
				break
			}
		}
		if lingered {
			continue
		}
		if !b.ring.Park(b.done) {
			// Close fired. Final sweep: consume what made it onto the ring
			// before (or while) Close was called, then let the sinks go.
			b.drainReady()
			return
		}
	}
}

// Close stops the drain goroutine after a final sweep of the ring, then
// closes every sink (in order). Emit during and after Close stays safe and
// non-blocking; late events may be dropped. Close is idempotent.
func (b *Bus) Close() error {
	if !b.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(b.done)
	b.wg.Wait()
	var first error
	for _, s := range b.sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// shardEmitter stamps a fixed shard index onto every event.
type shardEmitter struct {
	b     *Bus
	shard int32
}

func (e shardEmitter) Emit(ev Event) bool {
	ev.Shard = e.shard
	return e.b.Emit(ev)
}

// ForShard returns an Emitter that publishes to b with Event.Shard forced
// to shard — what an engine hands each shard's scheduler. A nil bus yields
// a nil Emitter, so callers can thread it through unconditionally.
func ForShard(b *Bus, shard int) Emitter {
	if b == nil {
		return nil
	}
	return shardEmitter{b: b, shard: int32(shard)}
}
