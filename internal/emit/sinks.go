package emit

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// LogSink renders each event as one human-readable line — the cheapest way
// to watch a live engine. Lines are timestamped at consumption (events do
// not carry wall-clock time; the hot path never calls the clock).
type LogSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogSink returns a sink writing lines to w. The caller owns w.
func NewLogSink(w io.Writer) *LogSink { return &LogSink{w: w} }

// Consume implements Sink.
func (s *LogSink) Consume(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.w, "emit %s kind=%s class=%s shard=%d txn=%d inc=%d",
		time.Now().Format(time.RFC3339Nano), ev.Kind, ev.Class, ev.Shard, ev.Txn, ev.Incarnation)
	if ev.N != 0 {
		fmt.Fprintf(s.w, " n=%d", ev.N)
	}
	if ev.DurNanos != 0 {
		fmt.Fprintf(s.w, " dur=%s", time.Duration(ev.DurNanos))
	}
	fmt.Fprintln(s.w)
}

// Close implements Sink; the underlying writer stays open (the caller owns
// it).
func (s *LogSink) Close() error { return nil }

// CaptureSink appends the event stream to a writer as JSON lines —
// one {"rec":"event",...} object per event — so a live session can be
// dumped and replayed offline. txgc-serve pairs it with the trace's step
// records ({"rec":"step",...}, appended at shutdown) in one capture file;
// see docs/observability.md for the format.
//
// Events are buffered; Close (or Flush) drains the buffer. The underlying
// writer is owned by the caller and is not closed.
type CaptureSink struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
}

// captureFlushAt flushes the buffer once it holds this many bytes.
const captureFlushAt = 1 << 15

// NewCaptureSink returns a capture sink appending to w.
func NewCaptureSink(w io.Writer) *CaptureSink {
	return &CaptureSink{w: w, buf: make([]byte, 0, captureFlushAt+256)}
}

// Consume implements Sink. Encoding is hand-rolled into a reused buffer so
// a multi-megaevent capture does not churn the garbage collector.
func (s *CaptureSink) Consume(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buf
	b = append(b, `{"rec":"event","kind":"`...)
	b = append(b, ev.Kind.String()...)
	b = append(b, `","class":"`...)
	b = append(b, ev.Class.String()...)
	b = append(b, `","shard":`...)
	b = strconv.AppendInt(b, int64(ev.Shard), 10)
	b = append(b, `,"txn":`...)
	b = strconv.AppendInt(b, int64(ev.Txn), 10)
	if ev.Incarnation != 0 {
		b = append(b, `,"inc":`...)
		b = strconv.AppendInt(b, ev.Incarnation, 10)
	}
	if ev.N != 0 {
		b = append(b, `,"n":`...)
		b = strconv.AppendInt(b, ev.N, 10)
	}
	if ev.DurNanos != 0 {
		b = append(b, `,"dur_ns":`...)
		b = strconv.AppendInt(b, ev.DurNanos, 10)
	}
	b = append(b, "}\n"...)
	s.buf = b
	if len(s.buf) >= captureFlushAt {
		s.flushLocked()
	}
}

func (s *CaptureSink) flushLocked() {
	if len(s.buf) == 0 {
		return
	}
	s.w.Write(s.buf)
	s.buf = s.buf[:0]
}

// Flush writes out any buffered lines.
func (s *CaptureSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
	return nil
}

// Close implements Sink: it flushes; the underlying writer stays open.
func (s *CaptureSink) Close() error { return s.Flush() }

// CountingSink counts events per kind and discards them — the no-op sink
// benchmarks attach so the measured cost is the bus, not a sink.
type CountingSink struct {
	mu     sync.Mutex
	counts [numKinds]uint64
}

// Consume implements Sink.
func (s *CountingSink) Consume(ev Event) {
	s.mu.Lock()
	if int(ev.Kind) < numKinds {
		s.counts[ev.Kind]++
	}
	s.mu.Unlock()
}

// Count returns how many events of kind k were consumed.
func (s *CountingSink) Count(k Kind) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(k) >= numKinds {
		return 0
	}
	return s.counts[k]
}

// Total returns the number of events consumed.
func (s *CountingSink) Total() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t uint64
	for _, c := range s.counts {
		t += c
	}
	return t
}

// Close implements Sink.
func (s *CountingSink) Close() error { return nil }
