// Transitive-closure variant of the graph engine. The paper remarks:
// "If the cycle-checking algorithm keeps track of the transitive closure
// of the graph (to facilitate testing whether a new arc can be inserted),
// then removing a transaction is equivalent to simply deleting the
// corresponding node and incident edges from the transitive closure."
//
// Closure maintains full reachability incrementally: arc insertion costs
// O(V²) worst case but cycle tests are O(1) per candidate arc, and node
// deletion (the paper's point) is plain removal — no predecessor×successor
// splicing required, because the closure already records every implied
// path.
package graph

import "repro/internal/model"

// Closure is a directed graph that maintains its own transitive closure.
type Closure struct {
	// reach[u] = set of nodes v (v != u) with a path u ⇝ v.
	reach map[model.TxnID]NodeSet
	// rreach[v] = set of nodes u with a path u ⇝ v (inverse of reach).
	rreach map[model.TxnID]NodeSet
	// direct arcs, for NumArcs/rendering parity with Graph.
	out  map[model.TxnID]NodeSet
	arcs int
}

// NewClosure returns an empty closure graph.
func NewClosure() *Closure {
	return &Closure{
		reach:  make(map[model.TxnID]NodeSet),
		rreach: make(map[model.TxnID]NodeSet),
		out:    make(map[model.TxnID]NodeSet),
	}
}

// AddNode inserts an isolated node (idempotent).
func (c *Closure) AddNode(id model.TxnID) {
	if _, ok := c.reach[id]; ok {
		return
	}
	c.reach[id] = make(NodeSet)
	c.rreach[id] = make(NodeSet)
	c.out[id] = make(NodeSet)
}

// HasNode reports membership.
func (c *Closure) HasNode(id model.TxnID) bool {
	_, ok := c.reach[id]
	return ok
}

// NumNodes returns the node count.
func (c *Closure) NumNodes() int { return len(c.reach) }

// NumArcs returns the count of DIRECT arcs inserted (not closure edges).
func (c *Closure) NumArcs() int { return c.arcs }

// Reaches reports whether u ⇝ v (u == v counts when present).
func (c *Closure) Reaches(u, v model.TxnID) bool {
	if u == v {
		return c.HasNode(u)
	}
	r, ok := c.reach[u]
	return ok && r.Has(v)
}

// WouldCycleArc reports, in O(1), whether adding from→to would create a
// cycle: true iff to already reaches from.
func (c *Closure) WouldCycleArc(from, to model.TxnID) bool {
	if from == to {
		return true
	}
	return c.Reaches(to, from)
}

// WouldCycleInto reports whether adding arcs tail→head for every tail
// would create a cycle — the basic scheduler's batch shape (all arcs
// enter the acting transaction).
func (c *Closure) WouldCycleInto(head model.TxnID, tails NodeSet) bool {
	for t := range tails {
		if c.WouldCycleArc(t, head) {
			return true
		}
	}
	return false
}

// AddArc inserts from→to and updates the closure. The caller must have
// checked WouldCycleArc first; inserting a cycle-creating arc panics
// (the closure's invariants would silently corrupt otherwise).
func (c *Closure) AddArc(from, to model.TxnID) {
	if from == to {
		return
	}
	c.AddNode(from)
	c.AddNode(to)
	if c.out[from].Has(to) {
		return
	}
	if c.Reaches(to, from) {
		panic("graph: Closure.AddArc would create a cycle")
	}
	c.out[from].Add(to)
	c.arcs++
	// Everything reaching from (plus from) now reaches everything to
	// reaches (plus to).
	srcs := make([]model.TxnID, 0, len(c.rreach[from])+1)
	srcs = append(srcs, from)
	for u := range c.rreach[from] {
		srcs = append(srcs, u)
	}
	dsts := make([]model.TxnID, 0, len(c.reach[to])+1)
	dsts = append(dsts, to)
	for v := range c.reach[to] {
		dsts = append(dsts, v)
	}
	for _, u := range srcs {
		for _, v := range dsts {
			if u == v {
				continue
			}
			if !c.reach[u].Has(v) {
				c.reach[u].Add(v)
				c.rreach[v].Add(u)
			}
		}
	}
}

// DeleteNode removes a node the paper's way: plain deletion from the
// closure. Reachability among the remaining nodes is preserved exactly
// (any path through the deleted node was already recorded as closure
// edges between its sources and destinations).
func (c *Closure) DeleteNode(id model.TxnID) {
	if !c.HasNode(id) {
		return
	}
	for v := range c.reach[id] {
		delete(c.rreach[v], id)
	}
	for u := range c.rreach[id] {
		delete(c.reach[u], id)
	}
	// Drop direct-arc bookkeeping.
	c.arcs -= len(c.out[id])
	for u, succs := range c.out {
		if u == id {
			continue
		}
		if succs.Has(id) {
			delete(succs, id)
			c.arcs--
		}
	}
	delete(c.out, id)
	delete(c.reach, id)
	delete(c.rreach, id)
}

// Descendants returns the nodes reachable from id (excluding id).
func (c *Closure) Descendants(id model.TxnID) NodeSet {
	out := make(NodeSet, len(c.reach[id]))
	for v := range c.reach[id] {
		out.Add(v)
	}
	return out
}

// Ancestors returns the nodes reaching id (excluding id).
func (c *Closure) Ancestors(id model.TxnID) NodeSet {
	out := make(NodeSet, len(c.rreach[id]))
	for u := range c.rreach[id] {
		out.Add(u)
	}
	return out
}

// Nodes returns all node IDs, ascending.
func (c *Closure) Nodes() []model.TxnID {
	s := make(NodeSet, len(c.reach))
	for id := range c.reach {
		s.Add(id)
	}
	return s.Sorted()
}
