package graph

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/model"
)

// refGraph is the retained map-based reference implementation of the
// directed-graph engine — the pre-arena design, kept verbatim in spirit:
// adjacency as nested maps, no slot recycling, no scratch reuse. The
// differential test below pits the dense-arena Graph against it over tens
// of thousands of random operations; any divergence in mutation results
// or reachability answers fails the test.
type refGraph struct {
	out  map[model.TxnID]map[model.TxnID]bool
	in   map[model.TxnID]map[model.TxnID]bool
	arcs int
}

func newRefGraph() *refGraph {
	return &refGraph{
		out: map[model.TxnID]map[model.TxnID]bool{},
		in:  map[model.TxnID]map[model.TxnID]bool{},
	}
}

func (r *refGraph) addNode(id model.TxnID) {
	if _, ok := r.out[id]; ok {
		return
	}
	r.out[id] = map[model.TxnID]bool{}
	r.in[id] = map[model.TxnID]bool{}
}

func (r *refGraph) hasNode(id model.TxnID) bool { _, ok := r.out[id]; return ok }

func (r *refGraph) addArc(from, to model.TxnID) {
	if from == to || r.out[from][to] {
		return
	}
	r.out[from][to] = true
	r.in[to][from] = true
	r.arcs++
}

func (r *refGraph) removeNode(id model.TxnID) {
	if !r.hasNode(id) {
		return
	}
	for s := range r.out[id] {
		delete(r.in[s], id)
		r.arcs--
	}
	for p := range r.in[id] {
		delete(r.out[p], id)
		r.arcs--
	}
	delete(r.out, id)
	delete(r.in, id)
}

func (r *refGraph) reduce(id model.TxnID) {
	if !r.hasNode(id) {
		return
	}
	for p := range r.in[id] {
		for s := range r.out[id] {
			if p != s {
				r.addArc(p, s)
			}
		}
	}
	r.removeNode(id)
}

func (r *refGraph) reachable(src, dst model.TxnID) bool {
	if src == dst {
		return r.hasNode(src)
	}
	if !r.hasNode(src) || !r.hasNode(dst) {
		return false
	}
	seen := map[model.TxnID]bool{src: true}
	stack := []model.TxnID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range r.out[n] {
			if s == dst {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func (r *refGraph) reachesAny(src model.TxnID, targets NodeSet) bool {
	if !r.hasNode(src) || len(targets) == 0 {
		return false
	}
	if targets.Has(src) {
		return true
	}
	seen := map[model.TxnID]bool{src: true}
	stack := []model.TxnID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range r.out[n] {
			if targets.Has(s) {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func (r *refGraph) forwardClosure(src model.TxnID, through func(model.TxnID) bool) NodeSet {
	out := make(NodeSet)
	if !r.hasNode(src) {
		return out
	}
	expanded := map[model.TxnID]bool{src: true}
	stack := []model.TxnID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range r.out[n] {
			if s != src {
				out.Add(s)
			}
			if !expanded[s] && through(s) {
				expanded[s] = true
				stack = append(stack, s)
			}
		}
	}
	return out
}

func (r *refGraph) nodes() []model.TxnID {
	out := make([]model.TxnID, 0, len(r.out))
	for id := range r.out {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r *refGraph) succList(id model.TxnID) []model.TxnID {
	out := make([]model.TxnID, 0, len(r.out[id]))
	for s := range r.out[id] {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (r *refGraph) predList(id model.TxnID) []model.TxnID {
	out := make([]model.TxnID, 0, len(r.in[id]))
	for p := range r.in[id] {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameIDs(a, b []model.TxnID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameSet(a, b NodeSet) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b.Has(id) {
			return false
		}
	}
	return true
}

// TestGraphDifferentialRandomOps drives ≥10k random mutations (add node,
// add acyclic arc, reduce, remove) through the arena graph and the
// map-based reference simultaneously, checking after every mutation that
// counts agree and, on a sample, that reachability, closures, adjacency
// lists, and cycle tests agree. The workload aggressively recycles slots
// (removes + fresh IDs) to stress the free list and the epoch-stamped
// visited array.
func TestGraphDifferentialRandomOps(t *testing.T) {
	const ops = 12000
	rng := rand.New(rand.NewSource(7))
	g := New()
	ref := newRefGraph()
	var alive []model.TxnID
	next := model.TxnID(0)

	pick := func() model.TxnID { return alive[rng.Intn(len(alive))] }
	dropAlive := func(id model.TxnID) {
		for i, v := range alive {
			if v == id {
				alive[i] = alive[len(alive)-1]
				alive = alive[:len(alive)-1]
				return
			}
		}
	}

	for op := 0; op < ops; op++ {
		roll := rng.Intn(100)
		switch {
		case roll < 25 || len(alive) < 2:
			id := next
			next++
			g.AddNode(id)
			ref.addNode(id)
			alive = append(alive, id)
		case roll < 60:
			from, to := pick(), pick()
			// Keep the graph acyclic, as every scheduler does: check the
			// would-be cycle on both implementations and demand agreement.
			cycleRef := from == to || ref.reachable(to, from)
			cycleG := from == to || g.Reachable(to, from)
			if cycleRef != cycleG {
				t.Fatalf("op %d: cycle check T%d→T%d: ref=%v arena=%v", op, from, to, cycleRef, cycleG)
			}
			if !cycleRef {
				g.AddArc(from, to)
				ref.addArc(from, to)
			}
		case roll < 75:
			id := pick()
			g.Reduce(id)
			ref.reduce(id)
			dropAlive(id)
		case roll < 85:
			id := pick()
			g.RemoveNode(id)
			ref.removeNode(id)
			dropAlive(id)
		default:
			// Query-only round: ReachesAny with a random target set and
			// WouldCycle with a random arc batch.
			src := pick()
			targets := make(NodeSet)
			for k := 0; k < 1+rng.Intn(4); k++ {
				targets.Add(pick())
			}
			if got, want := g.ReachesAny(src, targets), ref.reachesAny(src, targets); got != want {
				t.Fatalf("op %d: ReachesAny(T%d, %v) = %v, ref %v", op, src, targets.Sorted(), got, want)
			}
			var arcs []Arc
			for k := 0; k < 1+rng.Intn(3); k++ {
				arcs = append(arcs, Arc{pick(), pick()})
			}
			want := refWouldCycle(ref, arcs)
			if got := g.WouldCycle(arcs); got != want {
				t.Fatalf("op %d: WouldCycle(%v) = %v, ref %v", op, arcs, got, want)
			}
		}

		if g.NumNodes() != len(ref.out) {
			t.Fatalf("op %d: NumNodes = %d, ref %d", op, g.NumNodes(), len(ref.out))
		}
		if g.NumArcs() != ref.arcs {
			t.Fatalf("op %d: NumArcs = %d, ref %d", op, g.NumArcs(), ref.arcs)
		}
		if op%97 != 0 || len(alive) == 0 {
			continue
		}
		// Periodic deep comparison.
		if !sameIDs(g.Nodes(), ref.nodes()) {
			t.Fatalf("op %d: node sets diverged:\n%v\n%v", op, g.Nodes(), ref.nodes())
		}
		id := pick()
		if !sameIDs(g.SuccList(id), ref.succList(id)) {
			t.Fatalf("op %d: SuccList(T%d) diverged: %v vs %v", op, id, g.SuccList(id), ref.succList(id))
		}
		if !sameIDs(g.PredList(id), ref.predList(id)) {
			t.Fatalf("op %d: PredList(T%d) diverged: %v vs %v", op, id, g.PredList(id), ref.predList(id))
		}
		src, dst := pick(), pick()
		if got, want := g.Reachable(src, dst), ref.reachable(src, dst); got != want {
			t.Fatalf("op %d: Reachable(T%d, T%d) = %v, ref %v", op, src, dst, got, want)
		}
		// Tight-closure agreement under a random predicate.
		barrier := pick()
		through := func(n model.TxnID) bool { return n != barrier }
		if got, want := g.ForwardClosure(src, through), ref.forwardClosure(src, through); !sameSet(got, want) {
			t.Fatalf("op %d: ForwardClosure(T%d) diverged: %v vs %v", op, src, got.Sorted(), want.Sorted())
		}
		if !g.Acyclic() {
			t.Fatalf("op %d: arena graph reports a cycle in an acyclic workload", op)
		}
	}
	if next < 1000 {
		t.Fatalf("workload too small: only %d nodes ever created", next)
	}
}

// refWouldCycle checks an arc batch against the reference by materializing
// a scratch copy.
func refWouldCycle(r *refGraph, arcs []Arc) bool {
	scratch := newRefGraph()
	for id := range r.out {
		scratch.addNode(id)
	}
	for from, succs := range r.out {
		for to := range succs {
			scratch.addArc(from, to)
		}
	}
	for _, a := range arcs {
		if a.From == a.To {
			return true
		}
		scratch.addNode(a.From)
		scratch.addNode(a.To)
		scratch.addArc(a.From, a.To)
	}
	// Cycle iff some node reaches itself through at least one arc.
	for id := range scratch.out {
		for s := range scratch.out[id] {
			if s == id || scratch.reachable(s, id) {
				return true
			}
		}
	}
	return false
}

// TestGraphSlotRecycling pins the free-list behavior: removing nodes and
// adding fresh ones reuses slots without leaking arcs or identities.
func TestGraphSlotRecycling(t *testing.T) {
	g := New()
	for round := 0; round < 50; round++ {
		base := model.TxnID(round * 10)
		for i := model.TxnID(0); i < 10; i++ {
			g.AddNode(base + i)
		}
		for i := model.TxnID(1); i < 10; i++ {
			g.AddArc(base+i-1, base+i)
		}
		if g.NumNodes() != 10 || g.NumArcs() != 9 {
			t.Fatalf("round %d: %d nodes / %d arcs, want 10/9", round, g.NumNodes(), g.NumArcs())
		}
		if !g.Reachable(base, base+9) {
			t.Fatalf("round %d: chain broken", round)
		}
		for i := model.TxnID(0); i < 10; i++ {
			if i%2 == 0 {
				g.RemoveNode(base + i)
			} else {
				g.Reduce(base + i)
			}
		}
		if g.NumNodes() != 0 || g.NumArcs() != 0 {
			t.Fatalf("round %d: %d nodes / %d arcs left after clear", round, g.NumNodes(), g.NumArcs())
		}
	}
}
