// Package graph implements the directed-graph engine underneath every
// scheduler in this repository: the conflict graph of Hadzilacos &
// Yannakakis' "Deleting Completed Transactions" and the reduced graphs
// obtained by deleting nodes.
//
// The engine supports the three operations the paper's schedulers need:
//
//   - incremental cycle checks when a step wants to add a batch of arcs
//     (all arcs of one step share an endpoint, so a single DFS suffices);
//   - reachability restricted to paths whose intermediate nodes satisfy a
//     predicate ("tight" paths through completed transactions only);
//   - node reduction — deleting a node and splicing arcs from all its
//     immediate predecessors to all its immediate successors, the paper's
//     RCG(p, Ti) operation.
//
// Nodes are model.TxnID values. The graph never stores parallel arcs or
// self-loops.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// NodeSet is a set of transaction IDs.
type NodeSet map[model.TxnID]struct{}

// Has reports membership.
func (s NodeSet) Has(id model.TxnID) bool { _, ok := s[id]; return ok }

// Add inserts id.
func (s NodeSet) Add(id model.TxnID) { s[id] = struct{}{} }

// Sorted returns the members in ascending order.
func (s NodeSet) Sorted() []model.TxnID {
	out := make([]model.TxnID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Arc is a directed edge between two transactions.
type Arc struct {
	From, To model.TxnID
}

// Graph is a mutable directed graph over transaction IDs.
// The zero value is not usable; call New.
type Graph struct {
	out map[model.TxnID]NodeSet
	in  map[model.TxnID]NodeSet
	// arcs counts directed edges (each stored once).
	arcs int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		out: make(map[model.TxnID]NodeSet),
		in:  make(map[model.TxnID]NodeSet),
	}
}

// Clone deep-copies the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	c.arcs = g.arcs
	for id, succs := range g.out {
		ns := make(NodeSet, len(succs))
		for s := range succs {
			ns.Add(s)
		}
		c.out[id] = ns
	}
	for id, preds := range g.in {
		ns := make(NodeSet, len(preds))
		for p := range preds {
			ns.Add(p)
		}
		c.in[id] = ns
	}
	return c
}

// AddNode inserts a node with no arcs. Adding an existing node is a no-op.
func (g *Graph) AddNode(id model.TxnID) {
	if _, ok := g.out[id]; ok {
		return
	}
	g.out[id] = make(NodeSet)
	g.in[id] = make(NodeSet)
}

// HasNode reports whether id is present.
func (g *Graph) HasNode(id model.TxnID) bool {
	_, ok := g.out[id]
	return ok
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.out) }

// NumArcs returns the arc count.
func (g *Graph) NumArcs() int { return g.arcs }

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []model.TxnID {
	out := make([]model.TxnID, 0, len(g.out))
	for id := range g.out {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddArc inserts from→to. Self-loops and duplicate arcs are ignored; both
// endpoints must already be nodes (it panics otherwise — schedulers always
// add nodes first, so a violation is a programming error).
func (g *Graph) AddArc(from, to model.TxnID) {
	if from == to {
		return
	}
	succ, ok := g.out[from]
	if !ok {
		panic(fmt.Sprintf("graph: AddArc from missing node T%d", from))
	}
	pred, ok := g.in[to]
	if !ok {
		panic(fmt.Sprintf("graph: AddArc to missing node T%d", to))
	}
	if succ.Has(to) {
		return
	}
	succ.Add(to)
	pred.Add(from)
	g.arcs++
}

// HasArc reports whether from→to exists.
func (g *Graph) HasArc(from, to model.TxnID) bool {
	succ, ok := g.out[from]
	return ok && succ.Has(to)
}

// Succs calls yield for each immediate successor of id until yield returns
// false. Iteration order is unspecified.
func (g *Graph) Succs(id model.TxnID, yield func(model.TxnID) bool) {
	for s := range g.out[id] {
		if !yield(s) {
			return
		}
	}
}

// Preds calls yield for each immediate predecessor of id until yield
// returns false.
func (g *Graph) Preds(id model.TxnID, yield func(model.TxnID) bool) {
	for p := range g.in[id] {
		if !yield(p) {
			return
		}
	}
}

// SuccList returns the immediate successors of id, sorted.
func (g *Graph) SuccList(id model.TxnID) []model.TxnID { return g.out[id].Sorted() }

// PredList returns the immediate predecessors of id, sorted.
func (g *Graph) PredList(id model.TxnID) []model.TxnID { return g.in[id].Sorted() }

// OutDegree returns the number of immediate successors of id.
func (g *Graph) OutDegree(id model.TxnID) int { return len(g.out[id]) }

// InDegree returns the number of immediate predecessors of id.
func (g *Graph) InDegree(id model.TxnID) int { return len(g.in[id]) }

// RemoveNode deletes id and all incident arcs (an *abort*: paths through
// the node are lost on purpose). Removing a missing node is a no-op.
func (g *Graph) RemoveNode(id model.TxnID) {
	succs, ok := g.out[id]
	if !ok {
		return
	}
	for s := range succs {
		delete(g.in[s], id)
		g.arcs--
	}
	for p := range g.in[id] {
		delete(g.out[p], id)
		g.arcs--
	}
	delete(g.out, id)
	delete(g.in, id)
}

// Reduce deletes id and splices arcs from every immediate predecessor to
// every immediate successor, so no path through id is lost. This is the
// paper's reduction operation D(G, Ti): "RCG(p, Ti) is CG(p) with node Ti
// deleted and arcs to and from it replaced by arcs from all its immediate
// predecessors to all its immediate successors."
func (g *Graph) Reduce(id model.TxnID) {
	succs, ok := g.out[id]
	if !ok {
		return
	}
	preds := g.in[id]
	for p := range preds {
		for s := range succs {
			if p == s {
				// A pred that is also a succ would mean a cycle through id;
				// reduced graphs are acyclic so this cannot happen, but be
				// defensive: never create a self-loop.
				continue
			}
			g.AddArc(p, s)
		}
	}
	g.RemoveNode(id)
}

// Reachable reports whether there is a (possibly empty) path from src to
// dst. Reachable(x, x) is true.
func (g *Graph) Reachable(src, dst model.TxnID) bool {
	if src == dst {
		return g.HasNode(src)
	}
	if !g.HasNode(src) || !g.HasNode(dst) {
		return false
	}
	seen := NodeSet{src: {}}
	stack := []model.TxnID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range g.out[n] {
			if s == dst {
				return true
			}
			if !seen.Has(s) {
				seen.Add(s)
				stack = append(stack, s)
			}
		}
	}
	return false
}

// ReachesAny reports whether src reaches any member of targets by a
// non-empty path... more precisely by any path of length >= 1, or length 0
// if src itself is in targets. It is the scheduler's cycle test: a step
// adds arcs tail→src for each tail in targets, so a cycle appears iff src
// already reaches some tail.
func (g *Graph) ReachesAny(src model.TxnID, targets NodeSet) bool {
	if len(targets) == 0 || !g.HasNode(src) {
		return false
	}
	if targets.Has(src) {
		return true
	}
	seen := NodeSet{src: {}}
	stack := []model.TxnID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range g.out[n] {
			if targets.Has(s) {
				return true
			}
			if !seen.Has(s) {
				seen.Add(s)
				stack = append(stack, s)
			}
		}
	}
	return false
}

// AnyReaches reports whether any member of sources reaches dst.
func (g *Graph) AnyReaches(sources NodeSet, dst model.TxnID) bool {
	if len(sources) == 0 || !g.HasNode(dst) {
		return false
	}
	if sources.Has(dst) {
		return true
	}
	// Search backwards from dst.
	seen := NodeSet{dst: {}}
	stack := []model.TxnID{dst}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := range g.in[n] {
			if sources.Has(p) {
				return true
			}
			if !seen.Has(p) {
				seen.Add(p)
				stack = append(stack, p)
			}
		}
	}
	return false
}

// ForwardClosure returns every node reachable from src by a non-empty path
// whose *intermediate* nodes all satisfy through. src itself is not
// included unless reachable by such a path (i.e. never, since the graph is
// acyclic in our uses). Endpoints are unconstrained: this matches the
// paper's "tight successor" when through selects completed transactions.
func (g *Graph) ForwardClosure(src model.TxnID, through func(model.TxnID) bool) NodeSet {
	out := make(NodeSet)
	if !g.HasNode(src) {
		return out
	}
	// expanded marks nodes whose successors we have pushed.
	expanded := NodeSet{src: {}}
	stack := []model.TxnID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range g.out[n] {
			if !out.Has(s) && s != src {
				out.Add(s)
			}
			if !expanded.Has(s) && through(s) {
				expanded.Add(s)
				stack = append(stack, s)
			}
		}
	}
	return out
}

// BackwardClosure is ForwardClosure on the reversed graph: every node that
// reaches src by a non-empty path whose intermediate nodes satisfy through.
func (g *Graph) BackwardClosure(src model.TxnID, through func(model.TxnID) bool) NodeSet {
	out := make(NodeSet)
	if !g.HasNode(src) {
		return out
	}
	expanded := NodeSet{src: {}}
	stack := []model.TxnID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := range g.in[n] {
			if !out.Has(p) && p != src {
				out.Add(p)
			}
			if !expanded.Has(p) && through(p) {
				expanded.Add(p)
				stack = append(stack, p)
			}
		}
	}
	return out
}

// Descendants returns all nodes reachable from src by a non-empty path.
func (g *Graph) Descendants(src model.TxnID) NodeSet {
	return g.ForwardClosure(src, func(model.TxnID) bool { return true })
}

// Ancestors returns all nodes that reach src by a non-empty path.
func (g *Graph) Ancestors(src model.TxnID) NodeSet {
	return g.BackwardClosure(src, func(model.TxnID) bool { return true })
}

// WouldCycle reports whether tentatively adding arcs would create a
// directed cycle. It mutates nothing. The general algorithm inserts the
// arcs into a scratch overlay and runs a DFS from each arc head looking for
// any arc tail; schedulers with single-endpoint batches should prefer
// ReachesAny/AnyReaches, but the certification variant needs this form.
func (g *Graph) WouldCycle(arcs []Arc) bool {
	if len(arcs) == 0 {
		return false
	}
	// Overlay adjacency for the new arcs.
	extra := make(map[model.TxnID][]model.TxnID, len(arcs))
	for _, a := range arcs {
		if a.From == a.To {
			return true
		}
		extra[a.From] = append(extra[a.From], a.To)
	}
	// A new cycle must use at least one new arc; equivalently some head
	// reaches some tail in graph+overlay. Search once from the set of heads.
	tails := make(NodeSet, len(arcs))
	heads := make(NodeSet, len(arcs))
	for _, a := range arcs {
		tails.Add(a.From)
		heads.Add(a.To)
	}
	seen := make(NodeSet)
	stack := make([]model.TxnID, 0, len(heads))
	for h := range heads {
		if !seen.Has(h) {
			seen.Add(h)
			stack = append(stack, h)
		}
	}
	// BFS/DFS through union of existing arcs and overlay arcs. Finding a
	// tail t reachable from a head is necessary but not sufficient (the
	// path must continue from t through ITS new arc back to a head, which
	// the overlay traversal handles automatically since overlay arcs are
	// included). So: cycle iff the traversal, which includes overlay arcs,
	// revisits a node already on the stack? Simpler and correct: a cycle
	// exists in graph+overlay iff DFS from all nodes finds a back edge. We
	// bound work to nodes reachable from heads, which must contain any new
	// cycle. Run a coloring DFS over graph+overlay restricted to that set.
	reach := seen
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for s := range g.out[n] {
			if !reach.Has(s) {
				reach.Add(s)
				stack = append(stack, s)
			}
		}
		for _, s := range extra[n] {
			if !reach.Has(s) {
				reach.Add(s)
				stack = append(stack, s)
			}
		}
	}
	// Coloring DFS for cycle detection on the reachable subgraph.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[model.TxnID]uint8, len(reach))
	type frame struct {
		node model.TxnID
		next []model.TxnID
	}
	neighbors := func(n model.TxnID) []model.TxnID {
		var ns []model.TxnID
		for s := range g.out[n] {
			if reach.Has(s) {
				ns = append(ns, s)
			}
		}
		for _, s := range extra[n] {
			if reach.Has(s) {
				ns = append(ns, s)
			}
		}
		return ns
	}
	for start := range reach {
		if color[start] != white {
			continue
		}
		st := []frame{{start, neighbors(start)}}
		color[start] = gray
		for len(st) > 0 {
			f := &st[len(st)-1]
			if len(f.next) == 0 {
				color[f.node] = black
				st = st[:len(st)-1]
				continue
			}
			n := f.next[len(f.next)-1]
			f.next = f.next[:len(f.next)-1]
			switch color[n] {
			case white:
				color[n] = gray
				st = append(st, frame{n, neighbors(n)})
			case gray:
				return true
			}
		}
	}
	return false
}

// Acyclic reports whether the whole graph is acyclic (used by tests and
// the offline CSR checker).
func (g *Graph) Acyclic() bool {
	indeg := make(map[model.TxnID]int, len(g.out))
	for id := range g.out {
		indeg[id] = len(g.in[id])
	}
	queue := make([]model.TxnID, 0, len(g.out))
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for s := range g.out[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return seen == len(g.out)
}

// TopoOrder returns the nodes in a topological order, or nil if the graph
// has a cycle.
func (g *Graph) TopoOrder() []model.TxnID {
	indeg := make(map[model.TxnID]int, len(g.out))
	for id := range g.out {
		indeg[id] = len(g.in[id])
	}
	// Deterministic order: seed the queue sorted.
	var queue []model.TxnID
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	order := make([]model.TxnID, 0, len(g.out))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		var next []model.TxnID
		for s := range g.out[n] {
			indeg[s]--
			if indeg[s] == 0 {
				next = append(next, s)
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		queue = append(queue, next...)
	}
	if len(order) != len(g.out) {
		return nil
	}
	return order
}

// Arcs returns every arc, sorted by (From, To). Intended for tests and
// rendering; O(E log E).
func (g *Graph) Arcs() []Arc {
	out := make([]Arc, 0, g.arcs)
	for from, succs := range g.out {
		for to := range succs {
			out = append(out, Arc{from, to})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Equal reports whether two graphs have identical node and arc sets.
func (g *Graph) Equal(o *Graph) bool {
	if len(g.out) != len(o.out) || g.arcs != o.arcs {
		return false
	}
	for id, succs := range g.out {
		osuccs, ok := o.out[id]
		if !ok || len(succs) != len(osuccs) {
			return false
		}
		for s := range succs {
			if !osuccs.Has(s) {
				return false
			}
		}
	}
	return true
}

// String renders the graph as "T1->{T2 T3}; T2->{}" lines for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for _, id := range g.Nodes() {
		fmt.Fprintf(&b, "T%d -> {", id)
		for i, s := range g.SuccList(id) {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "T%d", s)
		}
		b.WriteString("}\n")
	}
	return b.String()
}
