// Package graph implements the directed-graph engine underneath every
// scheduler in this repository: the conflict graph of Hadzilacos &
// Yannakakis' "Deleting Completed Transactions" and the reduced graphs
// obtained by deleting nodes.
//
// The engine supports the three operations the paper's schedulers need:
//
//   - incremental cycle checks when a step wants to add a batch of arcs
//     (all arcs of one step share an endpoint, so a single DFS suffices);
//   - reachability restricted to paths whose intermediate nodes satisfy a
//     predicate ("tight" paths through completed transactions only);
//   - node reduction — deleting a node and splicing arcs from all its
//     immediate predecessors to all its immediate successors, the paper's
//     RCG(p, Ti) operation.
//
// Nodes are model.TxnID values. The graph never stores parallel arcs or
// self-loops.
//
// # Dense node arena
//
// Internally nodes live in a dense arena: each node gets a small
// contiguous slot index (a Ref), recycled through a free list when the
// node is removed. Adjacency is slot-indexed slices ([][]Ref), and
// traversals mark visited slots in an epoch-stamped array, so the hot
// operations (ReachesAnyTarget, LinkTargetsTo, ReduceRef) allocate
// nothing in steady state. The map-flavored API (NodeSet in, NodeSet out)
// is preserved on top as thin views for the oracle, the deletion
// conditions, and the NP-solver.
//
// Traversal methods share per-graph scratch state (the visited array and
// DFS stack): predicates and yield callbacks passed to them must not call
// other traversal methods on the same graph.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// NodeSet is a set of transaction IDs.
type NodeSet map[model.TxnID]struct{}

// Has reports membership.
func (s NodeSet) Has(id model.TxnID) bool { _, ok := s[id]; return ok }

// Add inserts id.
func (s NodeSet) Add(id model.TxnID) { s[id] = struct{}{} }

// Sorted returns the members in ascending order.
func (s NodeSet) Sorted() []model.TxnID {
	out := make([]model.TxnID, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Arc is a directed edge between two transactions.
type Arc struct {
	From, To model.TxnID
}

// Ref is a node's slot index in the graph's arena. Refs are dense small
// integers recycled through a free list: a Ref is valid only between the
// AddNodeRef that returned it and the RemoveRef/ReduceRef that frees it,
// after which the same Ref may name a different node. Schedulers cache
// the Ref of each live transaction to stay off the id→slot map on the
// hot path.
type Ref = int32

// NoRef is the sentinel for "no slot".
const NoRef Ref = -1

// Graph is a mutable directed graph over transaction IDs.
// The zero value is not usable; call New.
type Graph struct {
	idx map[model.TxnID]Ref // id → slot
	ids []model.TxnID       // slot → id (model.NoTxn when the slot is free)
	out [][]Ref             // slot → successor slots (unordered)
	in  [][]Ref             // slot → predecessor slots (unordered)
	// free lists recycled slots; adjacency slices keep their capacity
	// across reuse so steady-state churn allocates nothing.
	free  []Ref
	nodes int
	arcs  int // directed edges (each stored once)

	// Epoch-stamped traversal scratch: visited[s] == epoch means slot s
	// was seen by the current traversal; bumping the epoch resets the
	// whole array in O(1).
	visited []uint32
	epoch   uint32
	stack   []Ref

	// Target scratch for the schedulers' cycle test: tmark[s] == tepoch
	// marks slot s as a candidate arc tail, tlist records the marked
	// slots for LinkTargetsTo.
	tmark  []uint32
	tepoch uint32
	tlist  []Ref

	// cset is the reused result set of the *Scratch closure variants.
	cset NodeSet

	// pinned marks prepared-but-undecided nodes (a cross-shard
	// sub-transaction between its PREPARE vote and the coordinator's
	// decision). Pins are advisory: deletion policies must skip pinned
	// nodes, while RemoveRef/ReduceRef still operate (the decision itself
	// releases the node). Cleared automatically when the slot is freed.
	pinned []bool
	pins   int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{idx: make(map[model.TxnID]Ref)}
}

// Clone deep-copies the graph. The clone's slot assignment is compacted,
// so Refs are not portable between a graph and its clone.
func (g *Graph) Clone() *Graph {
	c := New()
	for id := range g.idx {
		c.AddNode(id)
	}
	for from, r := range g.idx {
		for _, s := range g.out[r] {
			c.AddArc(from, g.ids[s])
		}
	}
	return c
}

// AddNode inserts a node with no arcs. Adding an existing node is a no-op.
func (g *Graph) AddNode(id model.TxnID) { g.AddNodeRef(id) }

// AddNodeRef inserts a node (idempotent) and returns its slot.
//
//txgc:hotpath
func (g *Graph) AddNodeRef(id model.TxnID) Ref {
	if r, ok := g.idx[id]; ok {
		return r
	}
	var r Ref
	if n := len(g.free); n > 0 {
		r = g.free[n-1]
		g.free = g.free[:n-1]
		g.ids[r] = id
	} else {
		r = Ref(len(g.ids))
		g.ids = append(g.ids, id)
		g.out = append(g.out, nil)
		g.in = append(g.in, nil)
		g.visited = append(g.visited, 0)
		g.tmark = append(g.tmark, 0)
		g.pinned = append(g.pinned, false)
	}
	g.idx[id] = r
	g.nodes++
	return r
}

// Ref returns the slot of id, or NoRef if absent.
func (g *Graph) Ref(id model.TxnID) Ref {
	if r, ok := g.idx[id]; ok {
		return r
	}
	return NoRef
}

// IDOf returns the transaction occupying slot r.
func (g *Graph) IDOf(r Ref) model.TxnID { return g.ids[r] }

// HasNode reports whether id is present.
func (g *Graph) HasNode(id model.TxnID) bool {
	_, ok := g.idx[id]
	return ok
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.nodes }

// NumArcs returns the arc count.
func (g *Graph) NumArcs() int { return g.arcs }

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []model.TxnID {
	out := make([]model.TxnID, 0, len(g.idx))
	for id := range g.idx {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// hasArcRef reports whether the arc from→to exists, scanning the shorter
// of the two incidence lists.
func (g *Graph) hasArcRef(from, to Ref) bool {
	if len(g.out[from]) <= len(g.in[to]) {
		for _, s := range g.out[from] {
			if s == to {
				return true
			}
		}
		return false
	}
	for _, p := range g.in[to] {
		if p == from {
			return true
		}
	}
	return false
}

// addArcRef inserts from→to by slot, ignoring self-loops and duplicates.
func (g *Graph) addArcRef(from, to Ref) {
	if from == to || g.hasArcRef(from, to) {
		return
	}
	g.out[from] = append(g.out[from], to)
	g.in[to] = append(g.in[to], from)
	g.arcs++
}

// AddArc inserts from→to. Self-loops and duplicate arcs are ignored; both
// endpoints must already be nodes (it panics otherwise — schedulers always
// add nodes first, so a violation is a programming error).
func (g *Graph) AddArc(from, to model.TxnID) {
	f, ok := g.idx[from]
	if !ok {
		panic(fmt.Sprintf("graph: AddArc from missing node T%d", from))
	}
	t, ok := g.idx[to]
	if !ok {
		panic(fmt.Sprintf("graph: AddArc to missing node T%d", to))
	}
	g.addArcRef(f, t)
}

// HasArc reports whether from→to exists.
func (g *Graph) HasArc(from, to model.TxnID) bool {
	f, ok := g.idx[from]
	if !ok {
		return false
	}
	t, ok := g.idx[to]
	if !ok {
		return false
	}
	return g.hasArcRef(f, t)
}

// Succs calls yield for each immediate successor of id until yield returns
// false. Iteration order is unspecified.
func (g *Graph) Succs(id model.TxnID, yield func(model.TxnID) bool) {
	r, ok := g.idx[id]
	if !ok {
		return
	}
	for _, s := range g.out[r] {
		if !yield(g.ids[s]) {
			return
		}
	}
}

// Preds calls yield for each immediate predecessor of id until yield
// returns false.
func (g *Graph) Preds(id model.TxnID, yield func(model.TxnID) bool) {
	r, ok := g.idx[id]
	if !ok {
		return
	}
	for _, p := range g.in[r] {
		if !yield(g.ids[p]) {
			return
		}
	}
}

func (g *Graph) idList(refs []Ref) []model.TxnID {
	out := make([]model.TxnID, len(refs))
	for i, r := range refs {
		out[i] = g.ids[r]
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SuccList returns the immediate successors of id, sorted.
func (g *Graph) SuccList(id model.TxnID) []model.TxnID {
	r, ok := g.idx[id]
	if !ok {
		return nil
	}
	return g.idList(g.out[r])
}

// PredList returns the immediate predecessors of id, sorted.
func (g *Graph) PredList(id model.TxnID) []model.TxnID {
	r, ok := g.idx[id]
	if !ok {
		return nil
	}
	return g.idList(g.in[r])
}

// OutDegree returns the number of immediate successors of id.
func (g *Graph) OutDegree(id model.TxnID) int {
	r, ok := g.idx[id]
	if !ok {
		return 0
	}
	return len(g.out[r])
}

// InDegree returns the number of immediate predecessors of id.
func (g *Graph) InDegree(id model.TxnID) int {
	r, ok := g.idx[id]
	if !ok {
		return 0
	}
	return len(g.in[r])
}

// DropRef removes the first occurrence of x from list by swap-remove
// (order is not preserved). It is the shared primitive for slice-backed
// Ref sets — the graph's incidence lists and the schedulers' per-entity
// reader/writer indexes.
func DropRef(list []Ref, x Ref) []Ref {
	for i, v := range list {
		if v == x {
			list[i] = list[len(list)-1]
			return list[:len(list)-1]
		}
	}
	return list
}

// RemoveNode deletes id and all incident arcs (an *abort*: paths through
// the node are lost on purpose). Removing a missing node is a no-op.
func (g *Graph) RemoveNode(id model.TxnID) {
	if r, ok := g.idx[id]; ok {
		g.RemoveRef(r)
	}
}

// PinRef marks slot r as pinned (a prepared-but-undecided sub-transaction).
// Pinning is idempotent.
func (g *Graph) PinRef(r Ref) {
	if !g.pinned[r] {
		g.pinned[r] = true
		g.pins++
	}
}

// UnpinRef clears the pin on slot r (idempotent).
func (g *Graph) UnpinRef(r Ref) {
	if g.pinned[r] {
		g.pinned[r] = false
		g.pins--
	}
}

// PinnedRef reports whether slot r is pinned.
func (g *Graph) PinnedRef(r Ref) bool { return g.pinned[r] }

// NumPinned returns the number of pinned nodes.
func (g *Graph) NumPinned() int { return g.pins }

// OutRefs returns slot r's successor slots. The slice aliases the graph's
// adjacency storage: callers must treat it as read-only and must not hold
// it across mutations.
func (g *Graph) OutRefs(r Ref) []Ref { return g.out[r] }

// InRefs returns slot r's predecessor slots, under OutRefs' aliasing
// contract.
func (g *Graph) InRefs(r Ref) []Ref { return g.in[r] }

// RemoveRef is RemoveNode by slot; r must be a live slot.
func (g *Graph) RemoveRef(r Ref) {
	for _, s := range g.out[r] {
		g.in[s] = DropRef(g.in[s], r)
		g.arcs--
	}
	for _, p := range g.in[r] {
		g.out[p] = DropRef(g.out[p], r)
		g.arcs--
	}
	g.out[r] = g.out[r][:0]
	g.in[r] = g.in[r][:0]
	g.UnpinRef(r)
	delete(g.idx, g.ids[r])
	g.ids[r] = model.NoTxn
	g.free = append(g.free, r)
	g.nodes--
}

// Reduce deletes id and splices arcs from every immediate predecessor to
// every immediate successor, so no path through id is lost. This is the
// paper's reduction operation D(G, Ti): "RCG(p, Ti) is CG(p) with node Ti
// deleted and arcs to and from it replaced by arcs from all its immediate
// predecessors to all its immediate successors."
func (g *Graph) Reduce(id model.TxnID) {
	if r, ok := g.idx[id]; ok {
		g.ReduceRef(r)
	}
}

// ReduceRef is Reduce by slot; r must be a live slot. The splice iterates
// the incidence lists in place: no sorting, no materialized sets.
//
// Annotated as a hot-path root in its own right: deletion sweeps reach it
// through the Policy interface, which the static call-graph walk from
// Apply cannot cross.
//
//txgc:hotpath
func (g *Graph) ReduceRef(r Ref) {
	// The splice appends to out[p] and in[s] for p, s ≠ r, never to the
	// lists of r itself, so iterating them directly is safe.
	for _, p := range g.in[r] {
		for _, s := range g.out[r] {
			// A pred that is also a succ would mean a cycle through r;
			// reduced graphs are acyclic so this cannot happen, but be
			// defensive: addArcRef never creates a self-loop.
			g.addArcRef(p, s)
		}
	}
	g.RemoveRef(r)
}

// bumpEpoch starts a new traversal epoch, resetting the visited array in
// O(1) (and in O(V) once every 2^32 traversals, at wraparound).
func (g *Graph) bumpEpoch() uint32 {
	g.epoch++
	if g.epoch == 0 {
		clear(g.visited)
		g.epoch = 1
	}
	return g.epoch
}

// Reachable reports whether there is a (possibly empty) path from src to
// dst. Reachable(x, x) is true.
func (g *Graph) Reachable(src, dst model.TxnID) bool {
	if src == dst {
		return g.HasNode(src)
	}
	sr, ok := g.idx[src]
	if !ok {
		return false
	}
	dr, ok := g.idx[dst]
	if !ok {
		return false
	}
	ep := g.bumpEpoch()
	g.visited[sr] = ep
	stack := append(g.stack[:0], sr)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.out[n] {
			if s == dr {
				g.stack = stack
				return true
			}
			if g.visited[s] != ep {
				g.visited[s] = ep
				stack = append(stack, s)
			}
		}
	}
	g.stack = stack
	return false
}

// ResetTargets begins a new target set for the slot-level cycle test.
// The typical scheduler step is:
//
//	g.ResetTargets()
//	for each conflicting transaction w { g.MarkTarget(wRef) }
//	if g.ReachesAnyTarget(actingRef) { reject }
//	g.LinkTargetsTo(actingRef)
//
// None of the four calls allocates in steady state.
func (g *Graph) ResetTargets() {
	g.tepoch++
	if g.tepoch == 0 {
		clear(g.tmark)
		g.tepoch = 1
	}
	g.tlist = g.tlist[:0]
}

// MarkTarget adds a live slot to the current target set (idempotent).
func (g *Graph) MarkTarget(r Ref) {
	if g.tmark[r] == g.tepoch {
		return
	}
	g.tmark[r] = g.tepoch
	g.tlist = append(g.tlist, r)
}

// NumTargets returns the size of the current target set.
func (g *Graph) NumTargets() int { return len(g.tlist) }

// Targets returns the marked slots of the current target set. The slice
// aliases scratch storage: treat it as read-only and do not hold it past
// the next ResetTargets.
func (g *Graph) Targets() []Ref { return g.tlist }

// ReachesAnyTarget reports whether src reaches any marked target by a
// path of length ≥ 1, or length 0 if src itself is marked. It is the
// scheduler's cycle test: a step adds arcs tail→src for each marked tail,
// so a cycle appears iff src already reaches some tail.
//
//txgc:hotpath
func (g *Graph) ReachesAnyTarget(src Ref) bool {
	if len(g.tlist) == 0 {
		return false
	}
	if g.tmark[src] == g.tepoch {
		return true
	}
	ep := g.bumpEpoch()
	g.visited[src] = ep
	stack := append(g.stack[:0], src)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.out[n] {
			if g.tmark[s] == g.tepoch {
				g.stack = stack
				return true
			}
			if g.visited[s] != ep {
				g.visited[s] = ep
				stack = append(stack, s)
			}
		}
	}
	g.stack = stack
	return false
}

// LinkTargetsTo adds an arc tail→head for every marked target (self-loops
// and duplicates ignored). Callers run ReachesAnyTarget first, so the new
// arcs cannot create a cycle.
//
//txgc:hotpath
func (g *Graph) LinkTargetsTo(head Ref) {
	for _, t := range g.tlist {
		g.addArcRef(t, head)
	}
}

// ReachesAny reports whether src reaches any member of targets by a
// non-empty path... more precisely by any path of length >= 1, or length 0
// if src itself is in targets. This is the map-flavored compatibility
// wrapper over the target machinery; it clobbers the current target set.
func (g *Graph) ReachesAny(src model.TxnID, targets NodeSet) bool {
	sr, ok := g.idx[src]
	if !ok || len(targets) == 0 {
		return false
	}
	if targets.Has(src) {
		return true
	}
	g.ResetTargets()
	for id := range targets {
		if r, ok := g.idx[id]; ok {
			g.MarkTarget(r)
		}
	}
	return g.ReachesAnyTarget(sr)
}

// AnyReaches reports whether any member of sources reaches dst.
func (g *Graph) AnyReaches(sources NodeSet, dst model.TxnID) bool {
	dr, ok := g.idx[dst]
	if !ok || len(sources) == 0 {
		return false
	}
	if sources.Has(dst) {
		return true
	}
	g.ResetTargets()
	for id := range sources {
		if r, ok := g.idx[id]; ok {
			g.MarkTarget(r)
		}
	}
	if len(g.tlist) == 0 {
		return false
	}
	// Search backwards from dst.
	ep := g.bumpEpoch()
	g.visited[dr] = ep
	stack := append(g.stack[:0], dr)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range g.in[n] {
			if g.tmark[p] == g.tepoch {
				g.stack = stack
				return true
			}
			if g.visited[p] != ep {
				g.visited[p] = ep
				stack = append(stack, p)
			}
		}
	}
	g.stack = stack
	return false
}

// ForwardClosure returns every node reachable from src by a non-empty path
// whose *intermediate* nodes all satisfy through. src itself is not
// included unless reachable by such a path (i.e. never, since the graph is
// acyclic in our uses). Endpoints are unconstrained: this matches the
// paper's "tight successor" when through selects completed transactions.
func (g *Graph) ForwardClosure(src model.TxnID, through func(model.TxnID) bool) NodeSet {
	return g.closure(src, through, g.out)
}

// BackwardClosure is ForwardClosure on the reversed graph: every node that
// reaches src by a non-empty path whose intermediate nodes satisfy through.
func (g *Graph) BackwardClosure(src model.TxnID, through func(model.TxnID) bool) NodeSet {
	return g.closure(src, through, g.in)
}

// ForwardClosureScratch and BackwardClosureScratch are the closure
// variants for single-owner hot paths (a scheduler evaluating C1 on its
// own graph): the result set lives in graph-owned scratch, so no map is
// allocated per call. The returned set is valid only until the next
// *Scratch closure call on g and must not be retained or mutated.
func (g *Graph) ForwardClosureScratch(src model.TxnID, through func(model.TxnID) bool) NodeSet {
	return g.closureInto(g.scratchSet(), src, through, g.out)
}

// BackwardClosureScratch is ForwardClosureScratch on the reversed graph.
func (g *Graph) BackwardClosureScratch(src model.TxnID, through func(model.TxnID) bool) NodeSet {
	return g.closureInto(g.scratchSet(), src, through, g.in)
}

// AncestorsScratch is Ancestors into graph-owned scratch (same validity
// contract as the other *Scratch closures).
func (g *Graph) AncestorsScratch(src model.TxnID) NodeSet {
	return g.BackwardClosureScratch(src, func(model.TxnID) bool { return true })
}

func (g *Graph) scratchSet() NodeSet {
	if g.cset == nil {
		g.cset = make(NodeSet)
	}
	clear(g.cset)
	return g.cset
}

func (g *Graph) closure(src model.TxnID, through func(model.TxnID) bool, adj [][]Ref) NodeSet {
	return g.closureInto(make(NodeSet), src, through, adj)
}

func (g *Graph) closureInto(out NodeSet, src model.TxnID, through func(model.TxnID) bool, adj [][]Ref) NodeSet {
	sr, ok := g.idx[src]
	if !ok {
		return out
	}
	// visited marks nodes whose neighbors we have pushed ("expanded").
	ep := g.bumpEpoch()
	g.visited[sr] = ep
	stack := append(g.stack[:0], sr)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range adj[n] {
			if s != sr {
				out.Add(g.ids[s])
			}
			if g.visited[s] != ep && through(g.ids[s]) {
				g.visited[s] = ep
				stack = append(stack, s)
			}
		}
	}
	g.stack = stack
	return out
}

// Descendants returns all nodes reachable from src by a non-empty path.
func (g *Graph) Descendants(src model.TxnID) NodeSet {
	return g.ForwardClosure(src, func(model.TxnID) bool { return true })
}

// Ancestors returns all nodes that reach src by a non-empty path.
func (g *Graph) Ancestors(src model.TxnID) NodeSet {
	return g.BackwardClosure(src, func(model.TxnID) bool { return true })
}

// WouldCycle reports whether tentatively adding arcs would create a
// directed cycle. It mutates nothing, and tolerates arc endpoints that are
// not (yet) nodes of the graph — the certification variant tests the
// candidate transaction's arcs before inserting its node. Schedulers with
// single-endpoint batches should prefer the target machinery; this general
// form is off the hot path and may allocate.
func (g *Graph) WouldCycle(arcs []Arc) bool {
	if len(arcs) == 0 {
		return false
	}
	// Overlay adjacency for the new arcs.
	extra := make(map[model.TxnID][]model.TxnID, len(arcs))
	for _, a := range arcs {
		if a.From == a.To {
			return true
		}
		extra[a.From] = append(extra[a.From], a.To)
	}
	succs := func(n model.TxnID, yield func(model.TxnID)) {
		if r, ok := g.idx[n]; ok {
			for _, s := range g.out[r] {
				yield(g.ids[s])
			}
		}
		for _, s := range extra[n] {
			yield(s)
		}
	}
	// A new cycle must use at least one new arc, so it lives entirely in
	// the subgraph reachable from the arc heads. Collect that subgraph,
	// then run a coloring DFS over graph+overlay restricted to it.
	reach := make(NodeSet, len(arcs))
	var stack []model.TxnID
	for _, a := range arcs {
		if !reach.Has(a.To) {
			reach.Add(a.To)
			stack = append(stack, a.To)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		succs(n, func(s model.TxnID) {
			if !reach.Has(s) {
				reach.Add(s)
				stack = append(stack, s)
			}
		})
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[model.TxnID]uint8, len(reach))
	type frame struct {
		node model.TxnID
		next []model.TxnID
	}
	neighbors := func(n model.TxnID) []model.TxnID {
		var ns []model.TxnID
		succs(n, func(s model.TxnID) {
			if reach.Has(s) {
				ns = append(ns, s)
			}
		})
		return ns
	}
	for start := range reach {
		if color[start] != white {
			continue
		}
		st := []frame{{start, neighbors(start)}}
		color[start] = gray
		for len(st) > 0 {
			f := &st[len(st)-1]
			if len(f.next) == 0 {
				color[f.node] = black
				st = st[:len(st)-1]
				continue
			}
			n := f.next[len(f.next)-1]
			f.next = f.next[:len(f.next)-1]
			switch color[n] {
			case white:
				color[n] = gray
				st = append(st, frame{n, neighbors(n)})
			case gray:
				return true
			}
		}
	}
	return false
}

// Acyclic reports whether the whole graph is acyclic (used by tests and
// the offline CSR checker).
func (g *Graph) Acyclic() bool {
	indeg := make([]int, len(g.ids))
	queue := make([]Ref, 0, g.nodes)
	for _, r := range g.idx {
		indeg[r] = len(g.in[r])
		if indeg[r] == 0 {
			queue = append(queue, r)
		}
	}
	seen := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, s := range g.out[n] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	return seen == g.nodes
}

// TopoOrder returns the nodes in a topological order, or nil if the graph
// has a cycle.
func (g *Graph) TopoOrder() []model.TxnID {
	indeg := make([]int, len(g.ids))
	// Deterministic order: seed the queue sorted.
	var queue []model.TxnID
	for id, r := range g.idx {
		indeg[r] = len(g.in[r])
		if indeg[r] == 0 {
			queue = append(queue, id)
		}
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i] < queue[j] })
	order := make([]model.TxnID, 0, g.nodes)
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		var next []model.TxnID
		for _, s := range g.out[g.idx[n]] {
			sr := s
			indeg[sr]--
			if indeg[sr] == 0 {
				next = append(next, g.ids[sr])
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		queue = append(queue, next...)
	}
	if len(order) != g.nodes {
		return nil
	}
	return order
}

// Arcs returns every arc, sorted by (From, To). Intended for tests and
// rendering; O(E log E).
func (g *Graph) Arcs() []Arc {
	out := make([]Arc, 0, g.arcs)
	for from, r := range g.idx {
		for _, s := range g.out[r] {
			out = append(out, Arc{from, g.ids[s]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Equal reports whether two graphs have identical node and arc sets.
func (g *Graph) Equal(o *Graph) bool {
	if g.nodes != o.nodes || g.arcs != o.arcs {
		return false
	}
	for id, r := range g.idx {
		or, ok := o.idx[id]
		if !ok || len(g.out[r]) != len(o.out[or]) {
			return false
		}
		for _, s := range g.out[r] {
			os, ok := o.idx[g.ids[s]]
			if !ok || !o.hasArcRef(or, os) {
				return false
			}
		}
	}
	return true
}

// String renders the graph as "T1->{T2 T3}; T2->{}" lines for debugging.
func (g *Graph) String() string {
	var b strings.Builder
	for _, id := range g.Nodes() {
		fmt.Fprintf(&b, "T%d -> {", id)
		for i, s := range g.SuccList(id) {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "T%d", s)
		}
		b.WriteString("}\n")
	}
	return b.String()
}
