package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func mk(t *testing.T, arcs ...[2]model.TxnID) *Graph {
	t.Helper()
	g := New()
	for _, a := range arcs {
		g.AddNode(a[0])
		g.AddNode(a[1])
		g.AddArc(a[0], a[1])
	}
	return g
}

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	g.AddNode(1)
	g.AddNode(1)
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestAddArcBasics(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2})
	if !g.HasArc(1, 2) {
		t.Fatal("missing arc 1->2")
	}
	if g.HasArc(2, 1) {
		t.Fatal("unexpected arc 2->1")
	}
	g.AddArc(1, 2) // duplicate
	if g.NumArcs() != 1 {
		t.Fatalf("NumArcs = %d, want 1", g.NumArcs())
	}
	g.AddNode(3)
	g.AddArc(3, 3) // self-loop ignored
	if g.NumArcs() != 1 {
		t.Fatalf("NumArcs after self-loop = %d, want 1", g.NumArcs())
	}
}

func TestAddArcMissingNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g := New()
	g.AddNode(1)
	g.AddArc(1, 99)
}

func TestRemoveNodeDropsPathsThroughIt(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2}, [2]model.TxnID{2, 3})
	if !g.Reachable(1, 3) {
		t.Fatal("1 should reach 3")
	}
	g.RemoveNode(2)
	if g.Reachable(1, 3) {
		t.Fatal("RemoveNode must not preserve paths")
	}
	if g.NumArcs() != 0 {
		t.Fatalf("NumArcs = %d, want 0", g.NumArcs())
	}
}

func TestReducePreservesPaths(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2}, [2]model.TxnID{2, 3}, [2]model.TxnID{4, 2})
	g.Reduce(2)
	if g.HasNode(2) {
		t.Fatal("node 2 still present")
	}
	if !g.HasArc(1, 3) || !g.HasArc(4, 3) {
		t.Fatalf("reduction must splice pred->succ arcs; got:\n%s", g.String())
	}
}

func TestReduceMissingNodeNoop(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2})
	g.Reduce(99)
	if g.NumNodes() != 2 || g.NumArcs() != 1 {
		t.Fatal("reduce of missing node changed the graph")
	}
}

func TestReachable(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2}, [2]model.TxnID{2, 3}, [2]model.TxnID{5, 4})
	cases := []struct {
		from, to model.TxnID
		want     bool
	}{
		{1, 3, true}, {3, 1, false}, {1, 1, true}, {1, 4, false}, {5, 4, true},
	}
	for _, c := range cases {
		if got := g.Reachable(c.from, c.to); got != c.want {
			t.Errorf("Reachable(%d,%d) = %v, want %v", c.from, c.to, got, c.want)
		}
	}
}

func TestReachesAny(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2}, [2]model.TxnID{2, 3})
	if !g.ReachesAny(1, NodeSet{3: {}}) {
		t.Fatal("1 reaches 3")
	}
	if g.ReachesAny(3, NodeSet{1: {}, 2: {}}) {
		t.Fatal("3 reaches nothing")
	}
	if !g.ReachesAny(1, NodeSet{1: {}}) {
		t.Fatal("src in targets counts")
	}
	if g.ReachesAny(1, NodeSet{}) {
		t.Fatal("empty targets")
	}
}

func TestAnyReaches(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2}, [2]model.TxnID{2, 3})
	if !g.AnyReaches(NodeSet{1: {}}, 3) {
		t.Fatal("1 reaches 3")
	}
	if g.AnyReaches(NodeSet{3: {}}, 1) {
		t.Fatal("3 does not reach 1")
	}
}

func TestForwardClosureTightSemantics(t *testing.T) {
	// 1 -> 2 -> 3, with 2 blocked: closure(1) must include 2 (endpoint)
	// but not 3 (needs to pass through 2).
	g := mk(t, [2]model.TxnID{1, 2}, [2]model.TxnID{2, 3})
	got := g.ForwardClosure(1, func(n model.TxnID) bool { return n != 2 })
	if !got.Has(2) {
		t.Fatal("closure must include direct successor 2 (endpoints unconstrained)")
	}
	if got.Has(3) {
		t.Fatal("closure must not pass through blocked node 2")
	}
	// With 2 allowed, 3 is included.
	got = g.ForwardClosure(1, func(model.TxnID) bool { return true })
	if !got.Has(3) {
		t.Fatal("closure should include 3 when 2 is allowed")
	}
}

func TestBackwardClosureTightSemantics(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2}, [2]model.TxnID{2, 3})
	got := g.BackwardClosure(3, func(n model.TxnID) bool { return n != 2 })
	if !got.Has(2) || got.Has(1) {
		t.Fatalf("backward closure through blocked 2 wrong: %v", got.Sorted())
	}
}

func TestClosureSrcNotIncluded(t *testing.T) {
	// Acyclic graph: src never reachable from itself by non-empty path.
	g := mk(t, [2]model.TxnID{1, 2})
	if got := g.ForwardClosure(1, func(model.TxnID) bool { return true }); got.Has(1) {
		t.Fatal("src must not be in its own forward closure of a DAG")
	}
}

func TestWouldCycle(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2}, [2]model.TxnID{2, 3})
	if g.WouldCycle([]Arc{{3, 4}}) {
		t.Fatal("arc to missing node cannot cycle until node exists")
	}
	if !g.WouldCycle([]Arc{{From: 3, To: 1}}) {
		t.Fatal("3->1 closes a cycle")
	}
	if g.WouldCycle([]Arc{{From: 1, To: 3}}) {
		t.Fatal("1->3 is a chord, not a cycle")
	}
	// Cycle entirely within the new arcs.
	g.AddNode(7)
	g.AddNode(8)
	if !g.WouldCycle([]Arc{{7, 8}, {8, 7}}) {
		t.Fatal("two new arcs forming a 2-cycle must be detected")
	}
	if !g.WouldCycle([]Arc{{5, 5}}) {
		t.Fatal("self-loop arc is a cycle")
	}
	if g.WouldCycle(nil) {
		t.Fatal("no arcs, no cycle")
	}
}

func TestWouldCycleDoesNotMutate(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2})
	before := g.Clone()
	g.WouldCycle([]Arc{{2, 1}})
	if !g.Equal(before) {
		t.Fatal("WouldCycle mutated the graph")
	}
}

func TestAcyclicAndTopo(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2}, [2]model.TxnID{2, 3}, [2]model.TxnID{1, 3})
	if !g.Acyclic() {
		t.Fatal("DAG reported cyclic")
	}
	order := g.TopoOrder()
	pos := map[model.TxnID]int{}
	for i, id := range order {
		pos[id] = i
	}
	for _, a := range g.Arcs() {
		if pos[a.From] >= pos[a.To] {
			t.Fatalf("topo order violates arc %v", a)
		}
	}
	// Make it cyclic.
	g.AddArc(3, 1)
	if g.Acyclic() {
		t.Fatal("cycle not detected")
	}
	if g.TopoOrder() != nil {
		t.Fatal("TopoOrder on cyclic graph must be nil")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2})
	c := g.Clone()
	c.AddNode(9)
	c.AddArc(2, 9)
	if g.HasNode(9) || g.NumArcs() != 1 {
		t.Fatal("clone shares state with original")
	}
	if !g.Equal(mk(t, [2]model.TxnID{1, 2})) {
		t.Fatal("original changed")
	}
}

func TestDescendantsAncestors(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2}, [2]model.TxnID{2, 3}, [2]model.TxnID{4, 3})
	d := g.Descendants(1)
	if !d.Has(2) || !d.Has(3) || d.Has(4) {
		t.Fatalf("Descendants(1) = %v", d.Sorted())
	}
	a := g.Ancestors(3)
	if !a.Has(1) || !a.Has(2) || !a.Has(4) {
		t.Fatalf("Ancestors(3) = %v", a.Sorted())
	}
}

// Property: Reduce preserves reachability among the remaining nodes.
func TestReduceReachabilityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 12
		g := New()
		for i := model.TxnID(0); i < n; i++ {
			g.AddNode(i)
		}
		// Random DAG: arcs only from lower to higher IDs.
		for i := model.TxnID(0); i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(4) == 0 {
					g.AddArc(i, j)
				}
			}
		}
		victim := model.TxnID(r.Intn(n))
		before := map[[2]model.TxnID]bool{}
		for i := model.TxnID(0); i < n; i++ {
			for j := model.TxnID(0); j < n; j++ {
				if i != victim && j != victim {
					before[[2]model.TxnID{i, j}] = g.Reachable(i, j)
				}
			}
		}
		g.Reduce(victim)
		for k, want := range before {
			if got := g.Reachable(k[0], k[1]); got != want {
				t.Logf("seed %d: reachability %v changed: %v -> %v", seed, k, want, got)
				return false
			}
		}
		return g.Acyclic()
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: RemoveNode never makes an unreachable pair reachable.
func TestRemoveNodeMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 10
		g := New()
		for i := model.TxnID(0); i < n; i++ {
			g.AddNode(i)
		}
		for i := model.TxnID(0); i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					g.AddArc(i, j)
				}
			}
		}
		victim := model.TxnID(r.Intn(n))
		before := map[[2]model.TxnID]bool{}
		for i := model.TxnID(0); i < n; i++ {
			for j := model.TxnID(0); j < n; j++ {
				before[[2]model.TxnID{i, j}] = g.Reachable(i, j)
			}
		}
		g.RemoveNode(victim)
		for i := model.TxnID(0); i < n; i++ {
			for j := model.TxnID(0); j < n; j++ {
				if i == victim || j == victim {
					continue
				}
				if g.Reachable(i, j) && !before[[2]model.TxnID{i, j}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: WouldCycle(arcs) agrees with actually adding the arcs and
// running the full acyclicity check.
func TestWouldCycleAgreesWithAcyclic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 8
		g := New()
		for i := model.TxnID(0); i < n; i++ {
			g.AddNode(i)
		}
		for i := model.TxnID(0); i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Intn(3) == 0 {
					g.AddArc(i, j)
				}
			}
		}
		// Random candidate arcs, any direction.
		var arcs []Arc
		for k := 0; k < 1+r.Intn(4); k++ {
			arcs = append(arcs, Arc{model.TxnID(r.Intn(n)), model.TxnID(r.Intn(n))})
		}
		// Skip self-loop candidates: WouldCycle treats them as cycles,
		// while AddArc ignores them; they are not interesting here.
		for _, a := range arcs {
			if a.From == a.To {
				return true
			}
		}
		pred := g.WouldCycle(arcs)
		h := g.Clone()
		for _, a := range arcs {
			h.AddArc(a.From, a.To)
		}
		return pred == !h.Acyclic()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeSetSorted(t *testing.T) {
	s := NodeSet{}
	s.Add(3)
	s.Add(1)
	s.Add(2)
	got := s.Sorted()
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("not sorted: %v", got)
		}
	}
}

func TestStringRendering(t *testing.T) {
	g := mk(t, [2]model.TxnID{1, 2})
	if s := g.String(); s == "" {
		t.Fatal("String should render something")
	}
}
