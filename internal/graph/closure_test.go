package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestClosureBasics(t *testing.T) {
	c := NewClosure()
	c.AddNode(1)
	c.AddNode(1)
	if c.NumNodes() != 1 {
		t.Fatal("idempotent AddNode")
	}
	c.AddArc(1, 2) // auto-adds node 2
	c.AddArc(2, 3)
	if !c.Reaches(1, 3) {
		t.Fatal("closure must record 1⇝3")
	}
	if c.Reaches(3, 1) {
		t.Fatal("no reverse path")
	}
	if !c.Reaches(1, 1) {
		t.Fatal("self-reach for present node")
	}
	if c.NumArcs() != 2 {
		t.Fatalf("direct arcs = %d", c.NumArcs())
	}
	c.AddArc(1, 2) // duplicate
	if c.NumArcs() != 2 {
		t.Fatal("duplicate arc counted")
	}
}

func TestClosureWouldCycle(t *testing.T) {
	c := NewClosure()
	c.AddArc(1, 2)
	c.AddArc(2, 3)
	if !c.WouldCycleArc(3, 1) {
		t.Fatal("3->1 closes a cycle")
	}
	if c.WouldCycleArc(1, 3) {
		t.Fatal("1->3 is a chord")
	}
	if !c.WouldCycleArc(5, 5) {
		t.Fatal("self-loop")
	}
	if !c.WouldCycleInto(1, NodeSet{3: {}}) {
		t.Fatal("batch into 1 from 3 cycles")
	}
	if c.WouldCycleInto(3, NodeSet{1: {}, 2: {}}) {
		t.Fatal("batch into 3 is fine")
	}
}

func TestClosureAddCyclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := NewClosure()
	c.AddArc(1, 2)
	c.AddArc(2, 1)
}

func TestClosureDeletePreservesReachability(t *testing.T) {
	// The paper's remark: deleting a node from the closure needs no
	// splicing.
	c := NewClosure()
	c.AddArc(1, 2)
	c.AddArc(2, 3)
	c.AddArc(4, 2)
	c.DeleteNode(2)
	if !c.Reaches(1, 3) || !c.Reaches(4, 3) {
		t.Fatal("paths through the deleted node must survive in the closure")
	}
	if c.HasNode(2) {
		t.Fatal("node still present")
	}
	c.DeleteNode(99) // no-op
}

func TestClosureAncestorsDescendants(t *testing.T) {
	c := NewClosure()
	c.AddArc(1, 2)
	c.AddArc(2, 3)
	if d := c.Descendants(1); !d.Has(2) || !d.Has(3) || d.Has(1) {
		t.Fatalf("Descendants(1) = %v", d.Sorted())
	}
	if a := c.Ancestors(3); !a.Has(1) || !a.Has(2) {
		t.Fatalf("Ancestors(3) = %v", a.Sorted())
	}
	if n := c.Nodes(); len(n) != 3 {
		t.Fatalf("Nodes = %v", n)
	}
}

// Property: Closure agrees with Graph+Reduce on reachability under a
// random interleaving of arc insertions and deletions.
func TestClosureAgreesWithGraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 10
		g := New()
		c := NewClosure()
		ids := make([]model.TxnID, n)
		for i := range ids {
			ids[i] = model.TxnID(i)
			g.AddNode(ids[i])
			c.AddNode(ids[i])
		}
		alive := map[model.TxnID]bool{}
		for _, id := range ids {
			alive[id] = true
		}
		for op := 0; op < 40; op++ {
			switch r.Intn(4) {
			case 0, 1, 2: // try an arc
				u := ids[r.Intn(n)]
				v := ids[r.Intn(n)]
				if u == v || !alive[u] || !alive[v] {
					continue
				}
				// Both engines must agree on the cycle test.
				gc := g.WouldCycle([]Arc{{u, v}})
				cc := c.WouldCycleArc(u, v)
				if gc != cc {
					t.Logf("seed %d: cycle test disagrees for %d->%d: graph=%v closure=%v", seed, u, v, gc, cc)
					return false
				}
				if !gc {
					g.AddArc(u, v)
					c.AddArc(u, v)
				}
			case 3: // delete (reduce) a random alive node
				u := ids[r.Intn(n)]
				if !alive[u] {
					continue
				}
				alive[u] = false
				g.Reduce(u)
				c.DeleteNode(u)
			}
		}
		// Reachability among alive nodes must agree everywhere.
		for _, u := range ids {
			for _, v := range ids {
				if !alive[u] || !alive[v] {
					continue
				}
				if g.Reachable(u, v) != c.Reaches(u, v) {
					t.Logf("seed %d: reach(%d,%d) disagrees", seed, u, v)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkClosureCycleCheck(b *testing.B) {
	c := NewClosure()
	for i := model.TxnID(0); i < 200; i++ {
		c.AddNode(i)
	}
	for i := model.TxnID(0); i+1 < 200; i++ {
		c.AddArc(i, i+1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.WouldCycleArc(199, 0)
	}
}

func BenchmarkGraphCycleCheckDFS(b *testing.B) {
	g := New()
	for i := model.TxnID(0); i < 200; i++ {
		g.AddNode(i)
	}
	for i := model.TxnID(0); i+1 < 200; i++ {
		g.AddArc(i, i+1)
	}
	targets := NodeSet{0: {}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ReachesAny(199, targets)
	}
}
