package engine

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// The chaos soak: drive the full adversarial leak family (sleepers,
// label-chain bombs, cross fan-out victims, respawning attackers) against
// the engine and sample the engine-wide retained count after every chunk.
//
//   - Governor ON: every sample must stay under watermark + one chunk —
//     the governor's SLO. An innocent PriorityHigh long-runner rides along
//     for the entire attack and must survive to commit.
//   - Governor OFF: the same attack leaks without bound — samples grow
//     monotonically past the watermark, which is the control arm proving
//     the suite actually manufactures retention (a self-healing adversary
//     would pass the ON arm vacuously).
//
// CI runs this in short mode under -race (the `soak` job).

const (
	soakShards    = 4
	soakChunk     = 64
	soakWatermark = 32
	// highID is the innocent PriorityHigh long-runner; its entity is far
	// above the adversary's trap range so the only interaction with the
	// attack is through the governor's selection policy.
	soakHighID     = model.TxnID(1) << 40
	soakHighEntity = model.Entity(1) << 30 // partition 0
)

// soakVictims scales the attack length to the -short flag.
func soakVictims(t *testing.T) int {
	if testing.Short() {
		return 300
	}
	return 2000
}

// runSoak drives the adversary against a fresh engine in chunks of
// soakChunk steps, reaping (when watermark > 0) and sampling retained
// counts after each chunk. It begins the PriorityHigh long-runner first —
// oldest active in the system, the governor's most tempting victim — and
// asserts it still commits after the attack ends.
func runSoak(t *testing.T, watermark int) (samples []int64, st Stats) {
	t.Helper()
	eng := New(Config{
		Shards:                soakShards,
		Policy:                func() core.Policy { return core.GreedyC1{} },
		SweepEveryCompletions: 4,
		RetentionWatermark:    watermark,
		GovernorInterval:      time.Hour, // GovernNow drives reaping deterministically
	})
	defer eng.Close()

	if res := eng.SubmitPriority(context.Background(), model.BeginDeclared(soakHighID, soakHighEntity), PriorityHigh); !res.Accepted() {
		t.Fatalf("high-priority begin: %v (%v)", res.Outcome, res.Err)
	}

	adv := workload.NewAdversary(workload.AdversaryConfig{
		Shards:        soakShards,
		Victims:       soakVictims(t),
		Sleepers:      2,
		CrossSleepers: 2,
		FanOutFrac:    0.25,
		Respawn:       true,
		BaseTxnID:     1,
		Seed:          7,
	})

	steps := make([]model.Step, 0, soakChunk)
	results := make([]Result, 0, soakChunk)
	notified := make(map[model.TxnID]bool)
	for {
		steps = steps[:0]
		for len(steps) < soakChunk {
			st, ok := adv.Next()
			if !ok {
				break
			}
			steps = append(steps, st)
		}
		if len(steps) == 0 {
			break
		}
		results = eng.SubmitBatchInto(results[:0], steps)
		for _, r := range results {
			if r.Aborted == soakHighID {
				t.Fatalf("the PriorityHigh transaction was aborted mid-attack: %v (%v)", r.Step, r.Err)
			}
			if r.Aborted != model.NoTxn && !notified[r.Aborted] {
				notified[r.Aborted] = true
				adv.NotifyAbort(r.Aborted)
			}
		}
		eng.GovernNow()
		samples = append(samples, retainedTotal(eng))
	}

	// The exempt long-runner outlived the whole attack and commits.
	res := eng.Submit(model.WriteFinal(soakHighID, soakHighEntity))
	if !res.Accepted() || res.CompletedTxn != soakHighID {
		t.Fatalf("PriorityHigh final after soak: %v (%v) — it must never be reaped", res.Outcome, res.Err)
	}
	return samples, eng.Stats()
}

// TestSoakBoundedRetentionUnderAttack is the governor-ON arm: retained
// storage stays bounded by watermark + one chunk for the entire attack.
func TestSoakBoundedRetentionUnderAttack(t *testing.T) {
	samples, st := runSoak(t, soakWatermark)
	if len(samples) == 0 {
		t.Fatal("adversary produced no chunks")
	}
	bound := int64(soakWatermark + soakChunk)
	for i, s := range samples {
		if s > bound {
			t.Fatalf("sample %d/%d: retained = %d, exceeds watermark+chunk = %d", i, len(samples), s, bound)
		}
	}
	if st.Reaped == 0 {
		t.Fatal("governor reaped nothing — the attack never pressured the watermark")
	}
	t.Logf("chunks=%d reaped=%d peak=%d bound=%d", len(samples), st.Reaped, maxSample(samples), bound)
}

// TestSoakUnboundedRetentionWithoutGovernor is the control arm: the same
// attack with the governor disabled leaks monotonically past the bound the
// ON arm enforces. If this arm ever stops growing, the adversary has gone
// self-healing (e.g. a reused trap entity) and the ON arm proves nothing.
func TestSoakUnboundedRetentionWithoutGovernor(t *testing.T) {
	samples, st := runSoak(t, 0)
	if st.Reaped != 0 {
		t.Fatalf("Stats.Reaped = %d with the governor disabled", st.Reaped)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i] < samples[i-1] {
			t.Fatalf("retained shrank without the governor: sample %d = %d < sample %d = %d (the leak self-healed)",
				i, samples[i], i-1, samples[i-1])
		}
	}
	final := samples[len(samples)-1]
	if bound := int64(soakWatermark + soakChunk); final <= bound {
		t.Fatalf("final retained = %d, want > %d — the attack is too weak to test the governor", final, bound)
	}
	t.Logf("chunks=%d final=%d", len(samples), final)
}

func maxSample(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
