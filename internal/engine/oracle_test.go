package engine

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/workload"
)

// driveWorkload feeds one generator's stream into the engine, reacting to
// rejections the way a client session would: a rejected or errored step
// means the transaction is dead (cycle abort, cross-cycle veto, or
// misroute), so the generator discards its remaining plan.
func driveWorkload(eng *Engine, cfg workload.Config) {
	gen := workload.New(cfg)
	for {
		step, ok := gen.Next()
		if !ok {
			return
		}
		res := eng.Submit(step)
		switch res.Outcome {
		case OutcomeAccepted:
		default:
			gen.NotifyAbort(step.Txn)
		}
	}
}

// TestOracleShardedCSR is the equivalence oracle of the sharded engine:
// for every deletion policy, heavy concurrent partition-aware traffic
// (including cross-partition transactions and a straggler) is replayed
// through the offline trace referee, which rebuilds the conflict graph of
// the accepted subschedule from scratch. If sharding, batching, amortized
// GC, or the coordinator barrier ever let a non-CSR schedule through, this
// test fails.
func TestOracleShardedCSR(t *testing.T) {
	policies := map[string]func() core.Policy{
		"nogc":            nil,
		"lemma1":          func() core.Policy { return core.Lemma1Policy{} },
		"greedy-c1":       func() core.Policy { return core.GreedyC1{} },
		"noncurrent-safe": func() core.Policy { return core.NoncurrentSafe{} },
	}
	for name, factory := range policies {
		t.Run(name, func(t *testing.T) {
			log := trace.NewSafeLog()
			eng := New(Config{
				Shards:                4,
				Policy:                factory,
				SweepEveryCompletions: 3,
				BatchSize:             16,
				Log:                   log,
			})
			defer eng.Close()

			const drivers = 4
			var wg sync.WaitGroup
			for d := 0; d < drivers; d++ {
				wg.Add(1)
				go func(d int) {
					defer wg.Done()
					cfg := workload.Config{
						Entities:         64,
						Txns:             150,
						MaxActive:        4,
						Shards:           4,
						CrossFrac:        0.05,
						DeclareFootprint: true,
						BaseTxnID:        model.TxnID(d * 1_000_000),
						RestartAborted:   true,
						Seed:             int64(100 + d),
					}
					if d == 0 {
						cfg.Straggler = 10
					}
					driveWorkload(eng, cfg)
				}(d)
			}
			wg.Wait()

			if err := log.CheckAcceptedCSR(); err != nil {
				t.Fatalf("policy %s: %v", name, err)
			}
			s := eng.Stats()
			if s.Completed == 0 {
				t.Fatalf("policy %s: nothing completed (stats %+v)", name, s)
			}
			if factory != nil && s.Deleted == 0 {
				t.Errorf("policy %s: GC never deleted anything", name)
			}
			if s.CrossTxns == 0 {
				t.Errorf("policy %s: no cross-partition transactions exercised", name)
			}
			if s.BarrierKills != 0 || s.Quiesces != 0 {
				t.Errorf("policy %s: BarrierKills=%d Quiesces=%d, want 0/0 under 2PC",
					name, s.BarrierKills, s.Quiesces)
			}
			t.Logf("policy %s: %d accepted, %d completed, %d deleted, %d cross, %d prepares, %d cross-aborts",
				name, s.Accepted, s.Completed, s.Deleted, s.CrossTxns, s.Prepares, s.CrossAborts)
		})
	}
}

// TestOracleCrossHeavyCSR is the 2PC stress oracle: a quarter of all
// transactions span partitions (some across three shards), every deletion
// policy runs, and concurrent drivers hammer the engine — run under -race
// in CI. The offline referee rebuilds the conflict graph of the accepted
// subschedule over *logical* transactions (sub-transactions share the
// logical TxnID, so the fold is by construction) and must find it acyclic;
// and no cross-partition commit may kill a bystander (BarrierKills == 0 is
// the tentpole's success metric).
func TestOracleCrossHeavyCSR(t *testing.T) {
	policies := map[string]func() core.Policy{
		"nogc":            nil,
		"lemma1":          func() core.Policy { return core.Lemma1Policy{} },
		"greedy-c1":       func() core.Policy { return core.GreedyC1{} },
		"noncurrent-safe": func() core.Policy { return core.NoncurrentSafe{} },
		"max-safe":        func() core.Policy { return core.MaxSafeExact{} },
	}
	for name, factory := range policies {
		t.Run(name, func(t *testing.T) {
			log := trace.NewSafeLog()
			eng := New(Config{
				Shards:                4,
				Policy:                factory,
				SweepEveryCompletions: 2,
				BatchSize:             16,
				Log:                   log,
			})
			defer eng.Close()

			const drivers = 4
			var wg sync.WaitGroup
			for d := 0; d < drivers; d++ {
				wg.Add(1)
				go func(d int) {
					defer wg.Done()
					cfg := workload.Config{
						Entities:         48,
						Txns:             200,
						MaxActive:        5,
						Shards:           4,
						CrossFrac:        0.25,
						CrossShards:      2 + d%2, // half the drivers span 3 partitions
						DeclareFootprint: true,
						BaseTxnID:        model.TxnID(d * 1_000_000),
						RestartAborted:   true,
						Seed:             int64(9000 + d),
					}
					if d == 0 {
						cfg.Straggler = 8
					}
					driveWorkload(eng, cfg)
				}(d)
			}
			wg.Wait()

			if err := log.CheckAcceptedCSR(); err != nil {
				t.Fatalf("policy %s: accepted subschedule of logical txns not CSR: %v", name, err)
			}
			s := eng.Stats()
			if s.BarrierKills != 0 || s.Quiesces != 0 {
				t.Fatalf("policy %s: BarrierKills=%d Quiesces=%d, want 0/0", name, s.BarrierKills, s.Quiesces)
			}
			if s.CrossTxns == 0 || s.Prepares == 0 {
				t.Fatalf("policy %s: cross path unexercised (stats %+v)", name, s)
			}
			if s.Completed == 0 {
				t.Fatalf("policy %s: nothing completed", name)
			}
			if factory != nil && s.Deleted == 0 {
				t.Errorf("policy %s: GC never deleted anything under cross-heavy load", name)
			}
			for i, p := range s.PreparedByShard {
				if p != 0 {
					t.Errorf("policy %s: shard %d leaked %d prepared pins", name, i, p)
				}
			}
			t.Logf("policy %s: %d completed, %d deleted, %d cross, %d prepares, %d cross-aborts, peak kept %d",
				name, s.Completed, s.Deleted, s.CrossTxns, s.Prepares, s.CrossAborts, s.Merged.PeakKept)
		})
	}
}

// TestOracleSingleShardMatchesCore cross-checks that a 1-shard engine's
// accepted subschedule is CSR and its counters agree with the scheduler's:
// the engine adds concurrency plumbing, not semantics.
func TestOracleSingleShardMatchesCore(t *testing.T) {
	log := trace.NewSafeLog()
	eng := New(Config{
		Shards: 1,
		Policy: func() core.Policy { return core.GreedyC1{} },
		Log:    log,
	})
	defer eng.Close()
	driveWorkload(eng, workload.Config{
		Entities: 24, Txns: 300, MaxActive: 6,
		HotFrac: 0.1, DeclareFootprint: true, Seed: 42,
	})
	if err := log.CheckAcceptedCSR(); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Accepted != s.Merged.Accepted || s.Completed != s.Merged.Completed {
		t.Fatalf("engine/scheduler counter mismatch: %+v vs %+v", s, s.Merged)
	}
}
