package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// TestReapCrossStragglerUnblocksDownstreamGC pins the interaction between
// the governor and PR 3's cross-ancestor conservatism. A cross-partition
// sleeper traps eight victims (reads their entities before they write),
// so every victim is double-gated: C1 fails (the sleeper is an active
// tight predecessor with no witness in sight) AND the victim carries the
// sleeper's cross-ancestor label. Reaping the sleeper must purge the
// stale labels along with the arcs, so ONE governor pass — reap plus its
// forced sweep — reclaims the whole backlog. Run under -race in CI.
func TestReapCrossStragglerUnblocksDownstreamGC(t *testing.T) {
	eng := New(Config{
		Shards:                2,
		Policy:                func() core.Policy { return core.GreedyC1{} },
		SweepEveryCompletions: 1,
		RetentionWatermark:    4,
		GovernorInterval:      time.Hour, // only GovernNow drives reaping
	})
	defer eng.Close()
	must := func(res Result) {
		t.Helper()
		if !res.Accepted() {
			t.Fatalf("%v: %v (%v)", res.Step, res.Outcome, res.Err)
		}
	}

	// The sleeper: cross footprint {0,1}, so it sources labels on both
	// shards. It reads each victim's trap entity (even entities, shard 0)
	// before the victim writes it, then never commits.
	must(eng.Submit(model.BeginDeclared(1, 0, 1)))
	const victims = 8
	for k := 1; k <= victims; k++ {
		trap := model.Entity(2 * k)
		vid := model.TxnID(100 + k)
		must(eng.Submit(model.Read(1, trap)))
		must(eng.Submit(model.BeginDeclared(vid, trap)))
		res := eng.Submit(model.WriteFinal(vid, trap))
		if !res.Accepted() || res.CompletedTxn != vid {
			t.Fatalf("victim %d final: %v (%v)", vid, res.Outcome, res.Err)
		}
	}

	// Every completion swept (SweepEveryCompletions: 1), yet nothing was
	// deletable: the victims are hostages.
	if got := retainedTotal(eng); got != victims {
		t.Fatalf("retained before reap = %d, want %d (victims pinned)", got, victims)
	}

	// One governor pass: reap the sleeper, sweep, watermark holds again.
	if n := eng.GovernNow(); n != 1 {
		t.Fatalf("GovernNow reaped %d, want 1", n)
	}
	if s := eng.Stats(); s.Reaped != 1 {
		t.Fatalf("Stats.Reaped = %d, want 1", s.Reaped)
	}
	if got := retainedTotal(eng); got != 0 {
		t.Fatalf("retained after reap = %d, want 0 (labels must die with the sleeper)", got)
	}

	// The sleeper's session sees the dedicated sentinel — and still the
	// generic one, so existing errors.Is(err, ErrTxnAborted) code holds.
	res := eng.Submit(model.Read(1, 18))
	if !errors.Is(res.Err, ErrStragglerAborted) || !errors.Is(res.Err, ErrTxnAborted) {
		t.Fatalf("post-reap step err = %v, want ErrStragglerAborted wrapping ErrTxnAborted", res.Err)
	}

	// No registry debris: the reap went through the same cross-abort path
	// as a client abort, which drops the entry (and with it the labels).
	eng.registry.mu.Lock()
	live := len(eng.registry.txns)
	eng.registry.mu.Unlock()
	if live != 0 {
		t.Fatalf("cross-arc registry still tracks %d transactions after the reap", live)
	}

	// Below the watermark the governor is idle.
	if n := eng.GovernNow(); n != 0 {
		t.Fatalf("second GovernNow reaped %d, want 0 (watermark holds)", n)
	}
}

// TestGovernorExemptsPriorityHigh: a PriorityHigh straggler is older than a
// normal one and pins its own victim, but the governor must skip it — it
// reaps the younger normal straggler instead, and the high-priority
// transaction still commits afterwards.
func TestGovernorExemptsPriorityHigh(t *testing.T) {
	eng := New(Config{
		Shards:                1,
		Policy:                func() core.Policy { return core.GreedyC1{} },
		SweepEveryCompletions: 1,
		RetentionWatermark:    2,
		GovernorInterval:      time.Hour,
	})
	defer eng.Close()
	must := func(res Result) {
		t.Helper()
		if !res.Accepted() {
			t.Fatalf("%v: %v (%v)", res.Step, res.Outcome, res.Err)
		}
	}

	// T1: PriorityHigh sleeper, begun first (oldest by BeginSeq). Traps
	// victim 100 via entity 2.
	must(eng.SubmitPriority(context.Background(), model.BeginDeclared(1, 0), PriorityHigh))
	must(eng.Submit(model.Read(1, 2)))
	// T2: normal sleeper, younger. Traps victim 101 via entity 4.
	must(eng.Submit(model.BeginDeclared(2, 4)))
	must(eng.Submit(model.Read(2, 4)))

	must(eng.Submit(model.BeginDeclared(100, 2)))
	must(eng.Submit(model.WriteFinal(100, 2)))
	must(eng.Submit(model.BeginDeclared(101, 4)))
	must(eng.Submit(model.WriteFinal(101, 4)))

	if got := retainedTotal(eng); got != 2 {
		t.Fatalf("retained = %d, want 2", got)
	}
	if n := eng.GovernNow(); n != 1 {
		t.Fatalf("GovernNow reaped %d, want 1 (the normal straggler only)", n)
	}
	// T2's hostage is reclaimed; T1's is still pinned — by design, the
	// exemption trades retention for priority.
	if got := retainedTotal(eng); got != 1 {
		t.Fatalf("retained after reap = %d, want 1 (high-priority victim stays pinned)", got)
	}
	res := eng.Submit(model.Read(2, 6))
	if !errors.Is(res.Err, ErrStragglerAborted) {
		t.Fatalf("reaped straggler err = %v, want ErrStragglerAborted", res.Err)
	}
	// The exempt transaction was untouched and commits normally.
	res = eng.Submit(model.WriteFinal(1, 0))
	if !res.Accepted() || res.CompletedTxn != 1 {
		t.Fatalf("PriorityHigh final after governor pass: %v (%v) — exemption violated", res.Outcome, res.Err)
	}
}

// TestGovernorRequiresPolicy: a watermark without a deletion policy is
// inert — reaping would free nothing (nogc never sweeps), so New refuses
// to start the loop and GovernNow refuses to reap.
func TestGovernorRequiresPolicy(t *testing.T) {
	eng := New(Config{Shards: 1, RetentionWatermark: 1, GovernorInterval: time.Hour})
	defer eng.Close()
	if res := eng.Submit(model.BeginDeclared(1, 0)); !res.Accepted() {
		t.Fatalf("begin: %v", res.Err)
	}
	if res := eng.Submit(model.WriteFinal(1, 0)); !res.Accepted() {
		t.Fatalf("final: %v", res.Err)
	}
	if n := eng.GovernNow(); n != 0 {
		t.Fatalf("GovernNow without a policy reaped %d, want 0", n)
	}
	if eng.govStop != nil {
		t.Fatal("governor loop started without a deletion policy")
	}
}

// retainedTotal sums the per-shard retained completed-transaction counts.
func retainedTotal(e *Engine) int64 {
	var total int64
	for _, n := range e.RetainedCounts() {
		total += n
	}
	return total
}
