package engine

import (
	"sync"

	"repro/internal/model"
)

// routeStripes is the number of independent locks the route table is split
// across. Power of two; TxnIDs are typically sequential, so the low bits
// spread live transactions evenly. 64 stripes keep the table's footprint
// at a few KB while making cross-goroutine collisions on the submit path
// rare at any realistic client count.
const routeStripes = 64

// routeMap is the engine's live TxnID → route table. It replaces the old
// sync.Map: routes are stored by value in small typed maps, so registering
// a transaction allocates neither a *route box nor an interface key, and
// lookups on the submit hot path are one mutex + one typed map probe on an
// uncontended stripe. Routes are immutable once stored (the record is
// deleted and re-created, never mutated), which is what makes by-value
// storage sound.
type routeMap struct {
	stripes [routeStripes]routeStripe
}

type routeStripe struct {
	mu sync.Mutex
	m  map[model.TxnID]route
	// Pad each stripe to its own cache line so neighboring locks don't
	// false-share under concurrent submitters.
	_ [40]byte
}

func (rm *routeMap) init() {
	for i := range rm.stripes {
		rm.stripes[i].m = make(map[model.TxnID]route, 8)
	}
}

func (rm *routeMap) stripe(id model.TxnID) *routeStripe {
	return &rm.stripes[uint64(id)&(routeStripes-1)]
}

// load returns the route registered for id.
func (rm *routeMap) load(id model.TxnID) (route, bool) {
	s := rm.stripe(id)
	s.mu.Lock()
	r, ok := s.m[id]
	s.mu.Unlock()
	return r, ok
}

// storeNew registers r for id unless a route already exists; it reports
// whether the store happened (false = duplicate).
func (rm *routeMap) storeNew(id model.TxnID, r route) bool {
	s := rm.stripe(id)
	s.mu.Lock()
	if _, dup := s.m[id]; dup {
		s.mu.Unlock()
		return false
	}
	s.m[id] = r
	s.mu.Unlock()
	return true
}

// delete removes id's route (no-op if absent).
func (rm *routeMap) delete(id model.TxnID) {
	s := rm.stripe(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
}
