// The retention governor: the enforcement half of the paper's storage
// argument. The deletion conditions (C1/C2) bound *what may* be reclaimed;
// they cannot bound *what is* retained, because one long-lived active
// transaction is an active tight predecessor of every completed transaction
// it raced — none of them can ever acquire the witnesses Theorem 1 demands
// while it lives, and PR 3's cross-ancestor labels extend the blockade
// across shards. The governor turns the watermark into an SLO: when the
// engine-wide retained count crosses Config.RetentionWatermark, it aborts
// the oldest live straggler through the same machinery as a client
// context-deadline abort (Engine.Abort → reqAbortOne / crossClientAbort),
// which removes the straggler's node and arcs, drops its registry entry and
// labels, and thereby re-enables the sweeps that reclaim its hostages.
//
// Selection policy: oldest active by BeginSeq (reported per shard by
// core.Scheduler.OldestActives, compared across shards by age in scheduler
// steps), skipping PriorityHigh transactions (route.pri) and prepared 2PC
// sub-transactions (a YES vote is a promise the coordinator owns). One
// governor pass reaps, sweeps, rechecks — and stops as soon as the
// watermark holds, no straggler remains eligible, or a reap frees nothing
// deletable (reaping more actives then would be a massacre with no storage
// payoff).
package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/model"
)

const (
	// governorCandidates is how many oldest actives each shard reports per
	// pass; enough to survive a few PriorityHigh or just-finished entries
	// at the front without a second round-trip.
	governorCandidates = 8
	// maxReapsPerPass caps the reap+sweep iterations of one governor pass,
	// bounding the time a pass can hold govMu even under a watermark set
	// absurdly below the working set.
	maxReapsPerPass = 32
	// reapedRemember bounds the reaped-ID memory (reapedSet): old entries
	// are evicted FIFO once the session that owned them has long since seen
	// its error.
	reapedRemember = 1024
)

// reapedSet remembers recently reaped TxnIDs so late steps of a reaped
// transaction surface ErrStragglerAborted instead of the generic
// ErrTxnAborted. It is consulted only on failure paths (route misses and
// scheduler rejections), and the atomic count makes the empty case — every
// engine without a governor — a single load.
type reapedSet struct {
	mu   sync.Mutex
	ids  map[model.TxnID]struct{}
	ring [reapedRemember]model.TxnID
	pos  int
	n    atomic.Int64
}

func (r *reapedSet) add(id model.TxnID) {
	r.mu.Lock()
	if r.ids == nil {
		r.ids = make(map[model.TxnID]struct{})
	}
	if _, ok := r.ids[id]; !ok {
		if len(r.ids) >= reapedRemember {
			delete(r.ids, r.ring[r.pos])
		}
		r.ids[id] = struct{}{}
		r.ring[r.pos] = id
		r.pos = (r.pos + 1) % reapedRemember
		r.n.Store(int64(len(r.ids)))
	}
	r.mu.Unlock()
}

func (r *reapedSet) remove(id model.TxnID) {
	if r.n.Load() == 0 {
		return
	}
	r.mu.Lock()
	if _, ok := r.ids[id]; ok {
		delete(r.ids, id)
		r.n.Store(int64(len(r.ids)))
	}
	r.mu.Unlock()
}

func (r *reapedSet) contains(id model.TxnID) bool {
	if r.n.Load() == 0 {
		return false
	}
	r.mu.Lock()
	_, ok := r.ids[id]
	r.mu.Unlock()
	return ok
}

// governorLoop is the governor goroutine: wake every GovernorInterval,
// check the watermark, reap if crossed. Started by New iff
// RetentionWatermark > 0 and a Policy is configured.
func (e *Engine) governorLoop() {
	defer close(e.govDone)
	t := time.NewTicker(e.cfg.GovernorInterval)
	defer t.Stop()
	for {
		select {
		case <-e.govStop:
			return
		case <-t.C:
			e.GovernNow()
		}
	}
}

// GovernNow runs one governor pass synchronously and returns the number of
// stragglers it reaped. The background loop calls it on its ticker; tests
// call it directly (with a long GovernorInterval) to drive reaping
// deterministically. Safe for concurrent use; a no-op when the governor is
// not configured or the engine closed.
func (e *Engine) GovernNow() int {
	if e.cfg.RetentionWatermark <= 0 || e.cfg.Policy == nil || e.closed.Load() {
		return 0
	}
	e.govMu.Lock()
	defer e.govMu.Unlock()
	reaped := 0
	for attempts := 0; attempts < maxReapsPerPass; attempts++ {
		var total int64
		for _, n := range e.RetainedCounts() {
			total += n
		}
		if total < int64(e.cfg.RetentionWatermark) {
			break
		}
		id, shardIdx, inc, ok := e.oldestStraggler()
		if !ok {
			// Nothing eligible: every active is PriorityHigh, prepared, or
			// gone. The watermark stays crossed until traffic changes.
			break
		}
		if !e.reapOne(id, shardIdx, inc, total) {
			// Lost the race (the straggler finished first); try the next
			// candidate in the same pass.
			continue
		}
		reaped++
		if e.sweepAll() == 0 {
			// The reap released nothing deletable — the remaining retention
			// is pinned by other actives or undecided 2PC, and reaping more
			// of the oldest would repeat the same non-result. Yield until
			// the next tick.
			break
		}
	}
	return reaped
}

// oldestStraggler picks the reap victim: the globally oldest active
// transaction by age in scheduler steps, excluding PriorityHigh routes and
// (inside OldestActives) prepared sub-transactions. Ages from different
// shards are comparable only as staleness proxies — each shard's seq
// advances at its own traffic rate — which is exactly the bias we want: a
// straggler on a busy shard blocks more deletions per unit time.
func (e *Engine) oldestStraggler() (id model.TxnID, shard int, inc int64, ok bool) {
	var best core.ActiveInfo
	bestShard := -1
	for i, sh := range e.shards {
		rep, alive := sh.do(request{kind: reqOldest})
		if !alive {
			continue
		}
		for _, info := range rep.actives {
			r, routed := e.routes.load(info.ID)
			if !routed || r.pri == PriorityHigh {
				continue
			}
			if bestShard < 0 || info.Age > best.Age {
				best, bestShard = info, i
			}
		}
	}
	if bestShard < 0 {
		return model.NoTxn, 0, 0, false
	}
	return best.ID, bestShard, best.BeginSeq, true
}

// reapOne aborts one straggler through the client-abort machinery,
// recording the verdict first so any session step racing the abort already
// finds the reaped mark. Returns false if the transaction resolved itself
// before the abort landed.
func (e *Engine) reapOne(id model.TxnID, shard int, inc, total int64) bool {
	e.reaped.add(id)
	if !e.Abort(id) {
		e.reaped.remove(id)
		return false
	}
	e.reapedN.Add(1)
	if e.cfg.Bus != nil {
		e.cfg.Bus.Emit(emit.Event{Kind: emit.KindReap, Class: emit.ClassStraggler,
			Shard: int32(shard), Txn: id, Incarnation: inc, N: total})
	}
	return true
}

// sweepAll forces a deletion-policy sweep on every shard and returns the
// total number of transactions reclaimed. The governor sweeps after each
// reap so the released pins and labels turn into reclaimed storage before
// the next watermark check — without it, retained counts would only drop
// at the shards' amortized sweep cadence and the pass would over-reap.
func (e *Engine) sweepAll() int64 {
	var n int64
	for _, sh := range e.shards {
		if rep, ok := sh.do(request{kind: reqSweep}); ok {
			n += rep.n
		}
	}
	return n
}
