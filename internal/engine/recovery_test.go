package engine

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/trace"
)

// greedyPolicy is the deletion policy the recovery tests sweep with.
func greedyPolicy() core.Policy { return core.GreedyC1{} }

// TestRecoverRoundTrip closes an engine gracefully and reopens it from the
// same store: retained state survives, the checkpoint advanced past the
// sweeps, and the seeded referee accepts the recovered history plus fresh
// post-restart traffic.
func TestRecoverRoundTrip(t *testing.T) {
	st := store.NewMem(2)
	eng, rep, err := Open(Config{
		Shards: 2, Policy: greedyPolicy, SweepEveryCompletions: 2, Store: st,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rep == nil || rep.Shards != 2 || rep.RecordsReplayed != 0 {
		t.Fatalf("fresh-store report = %+v", rep)
	}
	// Eight local transactions per shard (entity parity selects the shard).
	for i := 0; i < 16; i++ {
		id := model.TxnID(i + 1)
		x := model.Entity(i%2 + 2*(i/2)) // shard i%2
		mustAccept(t, eng.Submit(model.BeginDeclared(id, x)))
		mustAccept(t, eng.Submit(model.Read(id, x)))
		mustAccept(t, eng.Submit(model.WriteFinal(id, x)))
	}
	pre := eng.Stats()
	eng.Close()

	log := trace.NewSafeLog()
	eng2, rep2, err := Open(Config{
		Shards: 2, Policy: greedyPolicy, SweepEveryCompletions: 2, Store: st, Log: log,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	if rep2.OrphansAborted != 0 || rep2.CrossAborted != 0 || len(rep2.InDoubt) != 0 {
		t.Fatalf("clean shutdown recovered with resolutions: %+v", rep2)
	}
	if pre.Deleted > 0 {
		ck := false
		for _, seq := range rep2.CheckpointSeqs {
			if seq > 0 {
				ck = true
			}
		}
		if !ck {
			t.Fatalf("sweeps ran pre-crash (deleted=%d) but no checkpoint advanced: %v",
				pre.Deleted, rep2.CheckpointSeqs)
		}
	}
	// Retained completed transactions are really back: a retained ID must
	// refuse a duplicate BEGIN, and fresh traffic over the same entities
	// must still serialize with the recovered history.
	retained := 0
	for i := 0; i < 16; i++ {
		id := model.TxnID(i + 1)
		res := eng2.Submit(model.Begin(id))
		if res.Outcome == OutcomeError {
			retained++
		} else if res.Accepted() {
			// An undeclared BEGIN routes by ID hash; stay in that partition.
			mustAccept(t, eng2.Submit(model.WriteFinal(id, model.Entity(id%2))))
		}
	}
	if retained != rep2.TxnsRetained {
		t.Fatalf("duplicate-BEGIN probe found %d retained, report says %d", retained, rep2.TxnsRetained)
	}
	for i := 0; i < 8; i++ {
		id := model.TxnID(100 + i)
		x := model.Entity(i % 2)
		mustAccept(t, eng2.Submit(model.BeginDeclared(id, x)))
		mustAccept(t, eng2.Submit(model.Read(id, x)))
		mustAccept(t, eng2.Submit(model.WriteFinal(id, x)))
	}
	if err := log.CheckAcceptedCSR(); err != nil {
		t.Fatalf("recovered + fresh trace not CSR: %v", err)
	}
}

// TestRecoverOrphanAbort: a local transaction active at the crash has no
// surviving session; recovery aborts it and frees its ID.
func TestRecoverOrphanAbort(t *testing.T) {
	st := store.NewMem(1)
	eng := New(Config{Shards: 1, Store: st})
	mustAccept(t, eng.Submit(model.Begin(7)))
	mustAccept(t, eng.Submit(model.Read(7, 3)))
	eng.Close()

	eng2, rep, err := Open(Config{Shards: 1, Store: st})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	if rep.OrphansAborted != 1 {
		t.Fatalf("OrphansAborted = %d, want 1", rep.OrphansAborted)
	}
	// The orphan is gone: its ID begins fresh.
	mustAccept(t, eng2.Submit(model.Begin(7)))
	mustAccept(t, eng2.Submit(model.WriteFinal(7, 3)))

	// And the abort is durable: a second restart resolves nothing.
	eng2.Close()
	eng3, rep3, err := Open(Config{Shards: 1, Store: st})
	if err != nil {
		t.Fatalf("re-reopen: %v", err)
	}
	defer eng3.Close()
	if rep3.OrphansAborted != 0 {
		t.Fatalf("second recovery re-aborted the orphan: %+v", rep3)
	}
}

// TestRecoverStoreShardMismatch: the store's shard count must match the
// engine's.
func TestRecoverStoreShardMismatch(t *testing.T) {
	if _, _, err := Open(Config{Shards: 2, Store: store.NewMem(3)}); err == nil {
		t.Fatal("Open accepted a 3-shard store for a 2-shard engine")
	}
}

// crash2PC drives a cross-partition transaction to the all-prepared window
// (every participant voted YES, votes synced, no decision) and "crashes":
// the engine closes while the decision is parked, so the store holds
// durable PREPAREs and nothing else — exactly what a coordinator crash
// between phases leaves behind. It returns the store and the bystander
// transaction ID that was live on shard 0 at the crash.
func crash2PC(t *testing.T) *store.Mem {
	t.Helper()
	st := store.NewMem(2)
	eng := New(Config{Shards: 2, Store: st})
	// A bystander completes before the crash; it must survive recovery.
	mustAccept(t, eng.Submit(model.BeginDeclared(50, 4)))
	mustAccept(t, eng.Submit(model.WriteFinal(50, 4)))

	mustAccept(t, eng.Submit(model.BeginDeclared(9, 0, 1)))
	mustAccept(t, eng.Submit(model.Read(9, 0)))
	mustAccept(t, eng.Submit(model.Read(9, 1)))

	prepared := make(chan struct{})
	release := make(chan struct{})
	testHookPrepared = func(model.TxnID) {
		close(prepared)
		<-release
	}
	defer func() { testHookPrepared = nil }()
	done := make(chan Result, 1)
	go func() { done <- eng.Submit(model.WriteFinal(9, 0, 1)) }()
	<-prepared
	// Both YES votes are durable; the decision is parked in the hook. Close
	// the shards (the crash), then let the driver run into the wall.
	eng.Close()
	close(release)
	res := <-done
	if res.Accepted() {
		t.Fatalf("final write committed across the crash: %+v", res)
	}
	return st
}

// TestRecoverPrepared2PCPresumedAbort: by default a fully-prepared cross
// transaction with no durable decision is presumed aborted — the engine was
// its own coordinator and the coordinator died undecided.
func TestRecoverPrepared2PCPresumedAbort(t *testing.T) {
	st := crash2PC(t)
	eng, rep, err := Open(Config{Shards: 2, Store: st})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng.Close()
	if rep.CrossAborted != 1 || len(rep.InDoubt) != 0 {
		t.Fatalf("report = %+v, want CrossAborted=1, no in-doubt", rep)
	}
	for i, n := range eng.PreparedCounts() {
		if n != 0 {
			t.Fatalf("shard %d still pins %d prepared subs", i, n)
		}
	}
	// The pins are really released: a fresh transaction writes the same
	// entities and commits, and the dead ID begins fresh.
	mustAccept(t, eng.Submit(model.BeginDeclared(60, 0, 1)))
	if res := eng.Submit(model.WriteFinal(60, 0, 1)); !res.Accepted() {
		t.Fatalf("write over released pins: %+v", res)
	}
	mustAccept(t, eng.Submit(model.BeginDeclared(9, 0)))
	mustAccept(t, eng.Submit(model.WriteFinal(9, 0)))
}

// TestRecoverPrepared2PCHeldInDoubt: with HoldInDoubt the transaction stays
// pinned and registered until ResolveInDoubt decides it — either way the
// prepared gauges drain to zero on both shards.
func TestRecoverPrepared2PCHeldInDoubt(t *testing.T) {
	for _, commit := range []bool{true, false} {
		name := "abort"
		if commit {
			name = "commit"
		}
		t.Run(name, func(t *testing.T) {
			st := crash2PC(t)
			eng, rep, err := Open(Config{Shards: 2, Store: st, HoldInDoubt: true})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer eng.Close()
			if len(rep.InDoubt) != 1 || rep.InDoubt[0] != 9 || rep.CrossAborted != 0 {
				t.Fatalf("report = %+v, want InDoubt=[9]", rep)
			}
			for i, n := range eng.PreparedCounts() {
				if n != 1 {
					t.Fatalf("shard %d pins %d prepared subs, want 1 (held in doubt)", i, n)
				}
			}
			if eng.ResolveInDoubt(9, commit) != true {
				t.Fatal("ResolveInDoubt refused the held transaction")
			}
			if eng.ResolveInDoubt(9, commit) {
				t.Fatal("ResolveInDoubt resolved the same transaction twice")
			}
			for i, n := range eng.PreparedCounts() {
				if n != 0 {
					t.Fatalf("shard %d still pins %d after %s", i, n, name)
				}
			}
			st2 := eng.Stats()
			if commit && st2.Completed != 1 {
				t.Fatalf("Completed = %d after commit resolution, want 1", st2.Completed)
			}
			// The resolution is durable: a third generation sees nothing in
			// doubt and nothing prepared.
			eng.Close()
			eng3, rep3, err := Open(Config{Shards: 2, Store: st, HoldInDoubt: true})
			if err != nil {
				t.Fatalf("third open: %v", err)
			}
			defer eng3.Close()
			if len(rep3.InDoubt) != 0 {
				t.Fatalf("resolved transaction back in doubt: %+v", rep3)
			}
			for i, n := range eng3.PreparedCounts() {
				if n != 0 {
					t.Fatalf("shard %d pins %d after durable resolution", i, n)
				}
			}
			if commit {
				// Committed: the ID is retained, so a duplicate BEGIN errors.
				if res := eng3.Submit(model.Begin(9)); res.Outcome != OutcomeError {
					t.Fatalf("committed ID began fresh: %+v", res)
				}
			} else {
				mustAccept(t, eng3.Submit(model.BeginDeclared(9, 0)))
			}
		})
	}
}

// TestRecoverCommitEvidenceFinishesLaggards: a durable COMMIT on one
// participant commits the transaction everywhere — the decision stands even
// if the other participant crashed before hearing it.
func TestRecoverCommitEvidenceFinishesLaggards(t *testing.T) {
	st := crash2PC(t)
	// Manufacture the laggard: shard 0 heard COMMIT (durably), shard 1 did
	// not. Recovery must finish shard 1's commit, not presume abort.
	sh0 := st.Shard(0)
	if err := sh0.Append(&store.Record{Kind: store.RecCommit, Txn: 9}); err != nil {
		t.Fatalf("append commit evidence: %v", err)
	}
	if err := sh0.Sync(); err != nil {
		t.Fatalf("sync commit evidence: %v", err)
	}
	eng, rep, err := Open(Config{Shards: 2, Store: st, HoldInDoubt: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng.Close()
	if rep.CrossCommitted != 1 || len(rep.InDoubt) != 0 || rep.CrossAborted != 0 {
		t.Fatalf("report = %+v, want CrossCommitted=1", rep)
	}
	for i, n := range eng.PreparedCounts() {
		if n != 0 {
			t.Fatalf("shard %d still pins %d after finished commit", i, n)
		}
	}
	// Committed on both shards now: duplicate BEGIN errors everywhere.
	if res := eng.Submit(model.BeginDeclared(9, 1)); res.Outcome != OutcomeError {
		t.Fatalf("committed ID began fresh on shard 1: %+v", res)
	}
}

// TestRecoverCorruptCheckpointFails: a checkpoint that does not decode must
// fail Open with ErrCorruptWAL, not silently start empty.
func TestRecoverCorruptSnapshotFails(t *testing.T) {
	st := store.NewMem(1)
	if err := st.Shard(0).Checkpoint([]byte("not a snapshot")); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	_, _, err := Open(Config{Shards: 1, Store: st})
	if !errors.Is(err, store.ErrCorruptWAL) {
		t.Fatalf("Open = %v, want ErrCorruptWAL", err)
	}
}

func mustAccept(t *testing.T, res Result) {
	t.Helper()
	if !res.Accepted() {
		t.Fatalf("submission refused: %+v err=%v", res, res.Err)
	}
}
