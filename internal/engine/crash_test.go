// Crash and fault-injection harness for the durability layer: kill the
// process at an arbitrary journaling op (a failpoint that starts failing
// every store operation after a per-round trigger), recover from the
// surviving medium, and verify the recovered engine — the accepted
// subschedule still passes the CSR referee, no prepared 2PC outlives
// recovery undecided, and (in strict mode) no acknowledged write is lost.
// Torn tails, flipped bits, and fsync errors get dedicated arms.
package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/trace"
)

// killpoint is the crash seam: after `left` store operations (writes,
// syncs, checkpoint steps — anything the file backend routes through its
// failpoint), every further operation fails, which is how a kill(9) looks
// to code that can no longer reach its disk.
type killpoint struct {
	left atomic.Int64
}

var errInjectedCrash = errors.New("injected crash")

func (k *killpoint) fn(op store.FailOp) error {
	if k.left.Add(-1) < 0 {
		return errInjectedCrash
	}
	return nil
}

// ackTracker records, per entity, the last acknowledged final write and the
// set of writes whose acknowledgement never arrived (in flight, refused, or
// answered with an error at the crash). The strict-mode invariant: the
// recovered last writer of an entity is the acknowledged one unless an
// unresolved write superseded it — an acked write may only be shadowed,
// never lost.
type ackTracker struct {
	acked map[model.Entity]model.TxnID
	maybe map[model.Entity]map[model.TxnID]bool
}

func newAckTracker() *ackTracker {
	return &ackTracker{
		acked: make(map[model.Entity]model.TxnID),
		maybe: make(map[model.Entity]map[model.TxnID]bool),
	}
}

func (tr *ackTracker) note(id model.TxnID, ents []model.Entity, acked bool) {
	for _, e := range ents {
		if acked {
			tr.acked[e] = id
		} else {
			if tr.maybe[e] == nil {
				tr.maybe[e] = make(map[model.TxnID]bool)
			}
			tr.maybe[e][id] = true
		}
	}
}

// driveCrashLoad submits n transactions — 70% partition-local, 30%
// cross-partition — over a private entity range starting at base (entities
// base+p+shards*k live on shard p, so goroutines with distinct bases never
// conflict with each other). Failures are expected once the killpoint
// trips; the driver just keeps going, like a client retrying into a dying
// server.
func driveCrashLoad(eng *Engine, seed int64, base model.Entity, idBase, n int, tr *ackTracker) {
	rng := rand.New(rand.NewSource(seed))
	ns := eng.NumShards()
	ent := func(p int) model.Entity { return base + model.Entity(p+ns*rng.Intn(8)) }
	for i := 0; i < n; i++ {
		id := model.TxnID(idBase + i)
		if rng.Intn(100) < 30 && ns > 1 {
			p1 := rng.Intn(ns)
			p2 := (p1 + 1 + rng.Intn(ns-1)) % ns
			e1, e2 := ent(p1), ent(p2)
			if !eng.Submit(model.BeginDeclared(id, e1, e2)).Accepted() {
				continue
			}
			eng.Submit(model.Read(id, e1))
			eng.Submit(model.Read(id, e2))
			res := eng.Submit(model.WriteFinal(id, e1, e2))
			if tr != nil {
				tr.note(id, []model.Entity{e1, e2}, res.Accepted())
			}
		} else {
			p := rng.Intn(ns)
			e1, e2 := ent(p), ent(p)
			if !eng.Submit(model.BeginDeclared(id, e1, e2)).Accepted() {
				continue
			}
			eng.Submit(model.Read(id, e2))
			res := eng.Submit(model.WriteFinal(id, e1))
			if tr != nil {
				tr.note(id, []model.Entity{e1}, res.Accepted())
			}
		}
	}
}

// TestCrashRecoveryLoop is the harness headline: for a spread of
// deterministic kill points, run concurrent mixed local/cross traffic into
// a file-backed engine until the store starts failing every operation,
// then recover from the surviving files and verify the contract — Open
// succeeds, no prepared sub-transaction is left pinned, the seeded trace
// passes the CSR referee, and fresh traffic over the same entities keeps
// it passing.
func TestCrashRecoveryLoop(t *testing.T) {
	rounds := 6
	if testing.Short() {
		rounds = 3
	}
	const shards = 4
	for round := 0; round < rounds; round++ {
		t.Run(fmt.Sprintf("kill=%d", 40+round*173), func(t *testing.T) {
			dir := t.TempDir()
			kp := &killpoint{}
			kp.left.Store(int64(40 + round*173))
			fs, err := store.OpenFile(dir, shards, store.Options{Failpoint: kp.fn})
			if err != nil {
				t.Fatalf("open store: %v", err)
			}
			eng, _, err := Open(Config{
				Shards: shards, Policy: greedyPolicy,
				SweepEveryCompletions: 2, WALSyncEvery: 4, Store: fs,
			})
			if err != nil {
				t.Fatalf("open engine: %v", err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 3; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					driveCrashLoad(eng, int64(round*10+g), model.Entity(g*1024), 100000*(g+1), 150, nil)
				}(g)
			}
			wg.Wait()
			eng.Close()
			fs.Close()

			// The process is dead; reopen from whatever reached the files.
			fs2, err := store.OpenFile(dir, shards, store.Options{})
			if err != nil {
				t.Fatalf("reopen store: %v", err)
			}
			defer fs2.Close()
			log := trace.NewSafeLog()
			eng2, rep, err := Open(Config{
				Shards: shards, Policy: greedyPolicy,
				SweepEveryCompletions: 2, Store: fs2, Log: log,
			})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer eng2.Close()
			if rep.Shards != shards {
				t.Fatalf("report shards = %d", rep.Shards)
			}
			for i, n := range eng2.PreparedCounts() {
				if n != 0 {
					t.Fatalf("shard %d left %d prepared subs undecided after recovery", i, n)
				}
			}
			if err := log.CheckAcceptedCSR(); err != nil {
				t.Fatalf("recovered subschedule not CSR: %v", err)
			}
			for g := 0; g < 3; g++ {
				driveCrashLoad(eng2, int64(7000+round*10+g), model.Entity(g*1024), 500000+100000*(g+1), 60, nil)
			}
			if err := log.CheckAcceptedCSR(); err != nil {
				t.Fatalf("post-recovery traffic broke CSR: %v", err)
			}
		})
	}
}

// TestCrashStrictNoAckedLoss: with WALSyncEvery=1 every acknowledgement
// implies durability. Crash at a spread of points and verify entity-level:
// each entity's recovered last writer is its last acknowledged writer, or a
// write whose acknowledgement was still unresolved at the crash. A missing
// or unknown writer is a lost ack — the strict contract broken.
func TestCrashStrictNoAckedLoss(t *testing.T) {
	const shards = 2
	for round := 0; round < 4; round++ {
		t.Run(fmt.Sprintf("kill=%d", 25+round*97), func(t *testing.T) {
			dir := t.TempDir()
			kp := &killpoint{}
			kp.left.Store(int64(25 + round*97))
			fs, err := store.OpenFile(dir, shards, store.Options{Failpoint: kp.fn})
			if err != nil {
				t.Fatalf("open store: %v", err)
			}
			eng, _, err := Open(Config{
				Shards: shards, Policy: greedyPolicy,
				SweepEveryCompletions: 2, WALSyncEvery: 1, Store: fs,
			})
			if err != nil {
				t.Fatalf("open engine: %v", err)
			}
			tr := newAckTracker()
			driveCrashLoad(eng, int64(round), 0, 1000, 200, tr)
			eng.Close()
			fs.Close()

			fs2, err := store.OpenFile(dir, shards, store.Options{})
			if err != nil {
				t.Fatalf("reopen store: %v", err)
			}
			defer fs2.Close()
			eng2, _, err := Open(Config{Shards: shards, Policy: greedyPolicy, Store: fs2})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			// Close first: the shard goroutines exit, making the schedulers
			// safe to inspect directly.
			eng2.Close()
			recovered := make(map[model.Entity]model.TxnID)
			for _, sh := range eng2.shards {
				for _, w := range sh.sched.ExportState().Writes {
					recovered[w.Entity] = w.Writer
				}
			}
			for e, want := range tr.acked {
				got, ok := recovered[e]
				if !ok {
					t.Fatalf("entity %d: acked write by T%d lost entirely", e, want)
				}
				if got != want && !tr.maybe[e][got] {
					t.Fatalf("entity %d: recovered writer T%d is neither the acked T%d nor an unresolved write", e, got, want)
				}
			}
		})
	}
}

// TestCrashTornTail: a crash mid-write leaves a partial frame at the end of
// the WAL. Load must repair it (the frame was never synced, so nothing
// acknowledged is in it) and recovery proceeds.
func TestCrashTornTail(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	fs, err := store.OpenFile(dir, shards, store.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	eng := New(Config{Shards: shards, Store: fs})
	driveCrashLoad(eng, 1, 0, 1000, 40, nil)
	eng.Close()
	fs.Close()

	// A torn frame: a length header promising more bytes than follow.
	f, err := os.OpenFile(filepath.Join(dir, "shard-0.wal"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := f.Write([]byte{0x40, 0, 0, 0, 0xde, 0xad, 0xbe}); err != nil {
		t.Fatalf("tear wal: %v", err)
	}
	f.Close()

	fs2, err := store.OpenFile(dir, shards, store.Options{})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer fs2.Close()
	log := trace.NewSafeLog()
	eng2, _, err := Open(Config{Shards: shards, Store: fs2, Log: log})
	if err != nil {
		t.Fatalf("recovery with torn tail failed: %v", err)
	}
	defer eng2.Close()
	driveCrashLoad(eng2, 2, 0, 900000, 20, nil)
	if err := log.CheckAcceptedCSR(); err != nil {
		t.Fatalf("trace after torn-tail repair not CSR: %v", err)
	}
}

// TestCrashBitFlip: a flipped bit inside a complete frame is silent medium
// corruption; Open must refuse with ErrCorruptWAL rather than replay a
// history the CRC says never happened.
func TestCrashBitFlip(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.OpenFile(dir, 1, store.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	// No policy: no sweep, no checkpoint, so the WAL keeps every frame.
	eng := New(Config{Shards: 1, Store: fs})
	driveCrashLoad(eng, 3, 0, 1000, 20, nil)
	eng.Close()
	fs.Close()

	wal := filepath.Join(dir, "shard-0.wal")
	data, err := os.ReadFile(wal)
	if err != nil || len(data) == 0 {
		t.Fatalf("read wal: %v (len %d)", err, len(data))
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(wal, data, 0o644); err != nil {
		t.Fatalf("write wal: %v", err)
	}

	fs2, err := store.OpenFile(dir, 1, store.Options{})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer fs2.Close()
	if _, _, err := Open(Config{Shards: 1, Store: fs2}); !errors.Is(err, store.ErrCorruptWAL) {
		t.Fatalf("Open over flipped bit = %v, want ErrCorruptWAL", err)
	}
}

// TestCrashFsyncFailStop: an fsync error on one shard fail-stops that shard
// — its strict-mode submissions answer ErrClosed-wrapped refusals — while
// the other shards keep serving. A restart over the same directory comes
// back clean.
func TestCrashFsyncFailStop(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	var syncs atomic.Int64
	fp := func(op store.FailOp) error {
		if op.Shard == 0 && op.Kind == store.OpSync && syncs.Add(1) > 2 {
			return errInjectedCrash
		}
		return nil
	}
	fs, err := store.OpenFile(dir, shards, store.Options{Failpoint: fp})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	eng, _, err := Open(Config{Shards: shards, WALSyncEvery: 1, Store: fs})
	if err != nil {
		t.Fatalf("open engine: %v", err)
	}
	// Shard 0 (even entities): submissions succeed until the third sync,
	// then fail-stop with ErrClosed-wrapped refusals.
	sawDead := false
	for i := 0; i < 10; i++ {
		id := model.TxnID(i + 1)
		res := eng.Submit(model.BeginDeclared(id, 0))
		if res.Accepted() {
			res = eng.Submit(model.WriteFinal(id, 0))
		}
		if !res.Accepted() {
			if !errors.Is(res.Err, ErrClosed) {
				t.Fatalf("fail-stopped shard answered %v, want ErrClosed wrap", res.Err)
			}
			sawDead = true
			break
		}
	}
	if !sawDead {
		t.Fatal("shard 0 never fail-stopped despite fsync errors")
	}
	// Shard 1 (odd entities) is unaffected.
	mustAccept(t, eng.Submit(model.BeginDeclared(100, 1)))
	mustAccept(t, eng.Submit(model.WriteFinal(100, 1)))
	eng.Close()
	fs.Close()

	fs2, err := store.OpenFile(dir, shards, store.Options{})
	if err != nil {
		t.Fatalf("reopen store: %v", err)
	}
	defer fs2.Close()
	eng2, _, err := Open(Config{Shards: shards, Store: fs2})
	if err != nil {
		t.Fatalf("recovery after fsync fail-stop: %v", err)
	}
	defer eng2.Close()
	mustAccept(t, eng2.Submit(model.BeginDeclared(200, 0)))
	mustAccept(t, eng2.Submit(model.WriteFinal(200, 0)))
	mustAccept(t, eng2.Submit(model.BeginDeclared(201, 1)))
	mustAccept(t, eng2.Submit(model.WriteFinal(201, 1)))
}

// TestWALBoundedUnderGovernedSoak: deletion policy = compaction policy. An
// adversarial straggler pins retention; the governor reaps it under the
// watermark; the freed sweeps keep advancing the checkpoint — so the WAL's
// resting size stays a small fraction of the bytes ever appended.
func TestWALBoundedUnderGovernedSoak(t *testing.T) {
	const shards = 2
	dir := t.TempDir()
	fs, err := store.OpenFile(dir, shards, store.Options{})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	eng, _, err := Open(Config{
		Shards: shards, Policy: greedyPolicy,
		SweepEveryCompletions: 4, WALSyncEvery: 32,
		RetentionWatermark: 32, GovernorInterval: time.Hour,
		Store: fs,
	})
	if err != nil {
		t.Fatalf("open engine: %v", err)
	}
	// The straggler: oldest active in the system, pinning its completed
	// predecessors against C1 until the governor reaps it.
	mustAccept(t, eng.Submit(model.BeginDeclared(1, 0)))
	mustAccept(t, eng.Submit(model.Read(1, 0)))
	n := 1200
	if testing.Short() {
		n = 400
	}
	for i := 0; i < n; i++ {
		id := model.TxnID(i + 10)
		x := model.Entity(i % 2)
		mustAccept(t, eng.Submit(model.BeginDeclared(id, x)))
		mustAccept(t, eng.Submit(model.Read(id, x)))
		mustAccept(t, eng.Submit(model.WriteFinal(id, x)))
		if i%64 == 63 {
			eng.GovernNow()
		}
	}
	eng.GovernNow()
	var appended int64
	for i := 0; i < shards; i++ {
		st := fs.Shard(i).Stats()
		appended += st.AppendedBytes
		if st.CheckpointSeq == 0 {
			t.Fatalf("shard %d never checkpointed under the soak", i)
		}
	}
	eng.Close()
	fs.Close()
	var resting int64
	for i := 0; i < shards; i++ {
		fi, err := os.Stat(filepath.Join(dir, fmt.Sprintf("shard-%d.wal", i)))
		if err != nil {
			t.Fatalf("stat wal: %v", err)
		}
		resting += fi.Size()
	}
	if resting > appended/4 {
		t.Fatalf("WAL not truncated: resting %d bytes vs %d appended", resting, appended)
	}
}
