package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/workload"
)

// This file pins the lock-free submission path (ring.Mailbox transport,
// in-cell reply rendezvous, batched consumer runs) differentially: the
// engine's aggregate Stats must agree exactly with what the clients
// observed in their Results, and the accepted subschedule must pass the
// offline CSR referee. Any lost request, duplicated reply, or reply
// delivered to the wrong sender shows up as a counter mismatch or a
// non-CSR schedule. Run under -race in CI (the race-cross job), where the
// rendezvous protocol's memory ordering is also checked.

// resultTally is what a client can prove happened from the Results it was
// handed back.
type resultTally struct {
	submitted, accepted, rejected, errored, completedTxns int64
}

func (t *resultTally) add(o *resultTally) {
	t.submitted += o.submitted
	t.accepted += o.accepted
	t.rejected += o.rejected
	t.errored += o.errored
	t.completedTxns += o.completedTxns
}

// driveBatched feeds one generator's stream through SubmitBatchInto in
// multi-transaction chunks — the pipelined mode the ring transport
// rebuilt — and tallies every Result.
func driveBatched(eng *Engine, cfg workload.Config, chunk int, tally *resultTally, onChunk func()) {
	gen := workload.New(cfg)
	steps := make([]model.Step, 0, chunk)
	results := make([]Result, 0, chunk)
	notified := make(map[model.TxnID]bool)
	for {
		steps = steps[:0]
		for len(steps) < chunk {
			st, ok := gen.Next()
			if !ok {
				break
			}
			steps = append(steps, st)
		}
		if len(steps) == 0 {
			return
		}
		tally.submitted += int64(len(steps))
		results = eng.SubmitBatchInto(results[:0], steps)
		for _, r := range results {
			switch r.Outcome {
			case OutcomeAccepted:
				tally.accepted++
			case OutcomeRejected:
				tally.rejected++
			default:
				tally.errored++
			}
			if r.CompletedTxn != model.NoTxn {
				tally.completedTxns++
			}
			if r.Aborted != model.NoTxn && !notified[r.Aborted] {
				notified[r.Aborted] = true
				gen.NotifyAbort(r.Aborted)
			}
		}
		if onChunk != nil {
			onChunk()
		}
	}
}

// checkTally asserts the engine's aggregate counters equal the union of
// what the clients observed. Aborted is deliberately not compared: the
// governor (and 2PC sibling aborts) legitimately abort transactions
// without a client step carrying the news.
func checkTally(t *testing.T, eng *Engine, want *resultTally) {
	t.Helper()
	s := eng.Stats()
	if s.Submitted != want.submitted {
		t.Errorf("Stats.Submitted = %d, clients submitted %d", s.Submitted, want.submitted)
	}
	if s.Accepted != want.accepted {
		t.Errorf("Stats.Accepted = %d, clients saw %d accepted", s.Accepted, want.accepted)
	}
	if s.Rejected != want.rejected {
		t.Errorf("Stats.Rejected = %d, clients saw %d rejected", s.Rejected, want.rejected)
	}
	if s.Completed != want.completedTxns {
		t.Errorf("Stats.Completed = %d, clients saw %d completions", s.Completed, want.completedTxns)
	}
}

// TestSubmissionDifferentialLocal: partition-local traffic only, whole
// pipelined batches, four concurrent drivers. Every counter must match and
// the accepted subschedule must be CSR.
func TestSubmissionDifferentialLocal(t *testing.T) {
	log := trace.NewSafeLog()
	eng := New(Config{
		Shards:                4,
		Policy:                func() core.Policy { return core.GreedyC1{} },
		SweepEveryCompletions: 3,
		BatchSize:             16,
		Log:                   log,
	})
	defer eng.Close()

	const drivers = 4
	var mu sync.Mutex
	var total resultTally
	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			var tally resultTally
			driveBatched(eng, workload.Config{
				Entities: 64, Txns: 200, MaxActive: 4,
				Shards: 4, DeclareFootprint: true,
				BaseTxnID: model.TxnID(d * 1_000_000), RestartAborted: true,
				Seed: int64(400 + d),
			}, 24, &tally, nil)
			mu.Lock()
			total.add(&tally)
			mu.Unlock()
		}(d)
	}
	wg.Wait()

	if err := log.CheckAcceptedCSR(); err != nil {
		t.Fatalf("accepted subschedule not CSR: %v", err)
	}
	checkTally(t, eng, &total)
	if s := eng.Stats(); s.Completed == 0 || s.Deleted == 0 {
		t.Fatalf("workload did not exercise completion+GC (stats %+v)", s)
	}
}

// TestSubmissionDifferentialCrossHeavy: a quarter of transactions span
// partitions (2PC, registry labels, upkeep kicks riding the same ring).
func TestSubmissionDifferentialCrossHeavy(t *testing.T) {
	log := trace.NewSafeLog()
	eng := New(Config{
		Shards:                4,
		Policy:                func() core.Policy { return core.GreedyC1{} },
		SweepEveryCompletions: 2,
		BatchSize:             16,
		Log:                   log,
	})
	defer eng.Close()

	const drivers = 4
	var mu sync.Mutex
	var total resultTally
	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			var tally resultTally
			driveBatched(eng, workload.Config{
				Entities: 48, Txns: 200, MaxActive: 5,
				Shards: 4, CrossFrac: 0.25, CrossShards: 2 + d%2,
				DeclareFootprint: true,
				BaseTxnID:        model.TxnID(d * 1_000_000), RestartAborted: true,
				Seed: int64(4000 + d),
			}, 24, &tally, nil)
			mu.Lock()
			total.add(&tally)
			mu.Unlock()
		}(d)
	}
	wg.Wait()

	if err := log.CheckAcceptedCSR(); err != nil {
		t.Fatalf("accepted subschedule of logical txns not CSR: %v", err)
	}
	checkTally(t, eng, &total)
	s := eng.Stats()
	if s.CrossTxns == 0 || s.Prepares == 0 {
		t.Fatalf("cross path unexercised (stats %+v)", s)
	}
	for i, p := range s.PreparedByShard {
		if p != 0 {
			t.Errorf("shard %d leaked %d prepared pins", i, p)
		}
	}
}

// TestSubmissionDifferentialGovernorReaping: stragglers hold arcs open
// under a low retention watermark, so the governor reaps concurrently with
// submission traffic — the reap's reqOldest/reqSweep round-trips and the
// victims' dead-route rejections all cross the new transport.
func TestSubmissionDifferentialGovernorReaping(t *testing.T) {
	log := trace.NewSafeLog()
	eng := New(Config{
		Shards:                4,
		Policy:                func() core.Policy { return core.GreedyC1{} },
		SweepEveryCompletions: 4,
		RetentionWatermark:    32,
		GovernorInterval:      time.Hour, // paced explicitly per chunk
		BatchSize:             16,
		Log:                   log,
	})
	defer eng.Close()

	const drivers = 4
	var mu sync.Mutex
	var total resultTally
	var wg sync.WaitGroup
	var chunks atomic.Int64
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			var tally resultTally
			cfg := workload.Config{
				Entities: 48, Txns: 250, MaxActive: 5,
				Shards: 4, DeclareFootprint: true,
				BaseTxnID: model.TxnID(d * 1_000_000), RestartAborted: true,
				Seed: int64(7000 + d),
			}
			// Every driver parks a straggler so each stream keeps arcs
			// open; the governor must reap to hold the watermark.
			cfg.Straggler = 10 + d
			driveBatched(eng, cfg, 24, &tally, func() {
				if chunks.Add(1)%4 == 0 {
					eng.GovernNow()
				}
			})
			mu.Lock()
			total.add(&tally)
			mu.Unlock()
		}(d)
	}
	wg.Wait()
	eng.GovernNow()

	if err := log.CheckAcceptedCSR(); err != nil {
		t.Fatalf("accepted subschedule not CSR under reaping: %v", err)
	}
	checkTally(t, eng, &total)
	s := eng.Stats()
	if s.Reaped == 0 {
		t.Fatalf("governor never reaped (stats %+v)", s)
	}
	if s.Completed == 0 || s.Deleted == 0 {
		t.Fatalf("workload did not exercise completion+GC (stats %+v)", s)
	}
}
