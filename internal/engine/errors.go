// The engine's typed error taxonomy. Result.Err is the single source of
// truth about why a submission failed: every non-accepted Result carries an
// error wrapping exactly one of the sentinels below (plus the failing
// step's context), so clients branch with errors.Is instead of decoding an
// outcome enum. The Outcome field survives only as a coarse derived
// classification (accepted / rejected / error) for display.
package engine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/emit"
	"repro/internal/model"
)

var (
	// ErrClosed: the engine has been closed; no state was changed.
	ErrClosed = errors.New("engine: closed")
	// ErrCycle: the step was refused because accepting it would close a
	// cycle in its shard's conflict graph (the paper's Rule 2/3 rejection);
	// the acting transaction aborted.
	ErrCycle = errors.New("engine: step would close a conflict cycle")
	// ErrCrossCycle: the cross-arc registry vetoed the step — accepting it
	// would close a cycle spanning two or more shard graphs; the acting
	// cross-partition transaction aborted.
	ErrCrossCycle = errors.New("engine: step would close a cycle across shard graphs")
	// ErrMisroute: the transaction touched an entity outside its declared
	// partition (local) or participant set (cross); it aborted.
	ErrMisroute = errors.New("engine: entity outside the transaction's partition")
	// ErrTxnAborted: the step addressed a transaction that is not live —
	// it never began, already finished, or aborted (including an abort
	// forced by context cancellation or deadline expiry).
	ErrTxnAborted = errors.New("engine: transaction aborted or unknown")
	// ErrProtocol: the submission violated the session protocol (duplicate
	// BEGIN, step after the final write, a step kind outside the basic
	// model). Engine state is unchanged and the transaction, if live,
	// stays live.
	ErrProtocol = errors.New("engine: protocol violation")
	// ErrOverload: admission control shed the BEGIN — a shard it would
	// run on is over the configured queue-depth watermark. Nothing began;
	// the client may retry later or escalate to PriorityHigh.
	ErrOverload = errors.New("engine: shard over the admission watermark")
	// ErrStragglerAborted: the retention governor reaped the transaction —
	// it was the oldest live straggler while retained completed storage sat
	// over Config.RetentionWatermark. Errors carrying it also match
	// ErrTxnAborted (the transaction is dead either way); test for this
	// sentinel first to distinguish a reap from a client-side abort.
	ErrStragglerAborted = errors.New("engine: aborted by the retention governor (straggler reap)")
)

// ClassOf maps a Result.Err onto the telemetry outcome class the event bus
// carries (nil → ClassOK). The specific sentinels are tested before
// ErrTxnAborted because ctxErr wraps both a cause and ErrTxnAborted.
func ClassOf(err error) emit.Class {
	switch {
	case err == nil:
		return emit.ClassOK
	case errors.Is(err, ErrCycle):
		return emit.ClassCycle
	case errors.Is(err, ErrCrossCycle):
		return emit.ClassCrossCycle
	case errors.Is(err, ErrMisroute):
		return emit.ClassMisroute
	case errors.Is(err, ErrOverload):
		return emit.ClassOverload
	case errors.Is(err, ErrProtocol):
		return emit.ClassProtocol
	case errors.Is(err, ErrClosed):
		return emit.ClassClosed
	case errors.Is(err, ErrStragglerAborted):
		return emit.ClassStraggler
	case errors.Is(err, ErrTxnAborted),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return emit.ClassTxnAborted
	default:
		return emit.ClassInternal
	}
}

// stepErr wraps a taxonomy sentinel with the failing step's context. Only
// failure paths pay the allocation.
func stepErr(step model.Step, sentinel error) error {
	//lint:ignore hotpath-fmt failure path by definition — the doc comment above is the contract
	return fmt.Errorf("engine: %v: %w", step, sentinel)
}

// ctxErr reports a transaction killed by its context: both ErrTxnAborted
// and the context's cause (context.Canceled / context.DeadlineExceeded)
// are reachable through errors.Is.
func ctxErr(step model.Step, cause error) error {
	//lint:ignore hotpath-fmt failure path: runs once per killed transaction, not per step
	return fmt.Errorf("engine: %v: %w (%w)", step, ErrTxnAborted, cause)
}

// stragglerErr reports a transaction reaped by the retention governor:
// both ErrStragglerAborted and ErrTxnAborted are reachable through
// errors.Is, mirroring ctxErr's shape for context kills.
func stragglerErr(step model.Step) error {
	//lint:ignore hotpath-fmt failure path: runs once per reaped straggler, not per step
	return fmt.Errorf("engine: %v: %w (%w)", step, ErrStragglerAborted, ErrTxnAborted)
}
