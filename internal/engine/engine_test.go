package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
)

// TestSingleShardSemantics pins the engine to the paper's scheduler
// semantics on one shard: the classic two-transaction cycle is rejected.
func TestSingleShardSemantics(t *testing.T) {
	eng := New(Config{Shards: 1})
	defer eng.Close()

	mustOutcome := func(res Result, want Outcome) {
		t.Helper()
		if res.Outcome != want {
			t.Fatalf("%v: outcome = %v (err=%v), want %v", res.Step, res.Outcome, res.Err, want)
		}
	}
	// T1 reads x, T2 reads y, T2 writes x (T1→T2), then T1 writes y: cycle.
	mustOutcome(eng.Submit(model.Begin(0)), OutcomeAccepted)
	mustOutcome(eng.Submit(model.Begin(1)), OutcomeAccepted)
	mustOutcome(eng.Submit(model.Read(0, 10)), OutcomeAccepted)
	mustOutcome(eng.Submit(model.Read(1, 11)), OutcomeAccepted)
	res := eng.Submit(model.WriteFinal(1, 10))
	mustOutcome(res, OutcomeAccepted)
	if res.CompletedTxn != 1 {
		t.Fatalf("CompletedTxn = %v, want 1", res.CompletedTxn)
	}
	res = eng.Submit(model.WriteFinal(0, 11))
	mustOutcome(res, OutcomeRejected)
	if res.Aborted != 0 {
		t.Fatalf("Aborted = %v, want 0", res.Aborted)
	}
	s := eng.Stats()
	if s.Completed != 1 || s.Aborted != 1 {
		t.Fatalf("stats = %+v, want 1 completed / 1 aborted", s)
	}
}

// TestRoutingAndMisroute verifies the partition discipline: a declared
// single-partition transaction is pinned to its shard and aborted the
// moment it strays.
func TestRoutingAndMisroute(t *testing.T) {
	eng := New(Config{Shards: 4})
	defer eng.Close()

	// Footprint {0,4,8} is all partition 0.
	if res := eng.Submit(model.BeginDeclared(1, 0, 4, 8)); res.Outcome != OutcomeAccepted {
		t.Fatalf("begin: %v (%v)", res.Outcome, res.Err)
	}
	if res := eng.Submit(model.Read(1, 8)); res.Outcome != OutcomeAccepted {
		t.Fatalf("in-partition read: %v (%v)", res.Outcome, res.Err)
	}
	// Entity 3 belongs to partition 3: misroute, transaction aborted.
	res := eng.Submit(model.Read(1, 3))
	if res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrMisroute) {
		t.Fatalf("foreign read: %v (%v), want rejected/ErrMisroute", res.Outcome, res.Err)
	}
	// The transaction is gone now.
	res = eng.Submit(model.Read(1, 8))
	if res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrUnknownTxn) {
		t.Fatalf("post-abort read: %v (%v), want rejected/ErrUnknownTxn", res.Outcome, res.Err)
	}
	if s := eng.Stats(); s.Misroutes != 1 {
		t.Fatalf("Misroutes = %d, want 1", s.Misroutes)
	}
}

// TestCrossPartitionAtomicApply drives one cross-partition transaction and
// checks the coordinator path: reads are buffered, the final write commits
// atomically, and concurrent actives are killed at the barrier.
func TestCrossPartitionAtomicApply(t *testing.T) {
	log := trace.NewSafeLog()
	eng := New(Config{Shards: 4, Log: log})
	defer eng.Close()

	// A local active on shard 1 that will be killed at the barrier.
	if res := eng.Submit(model.BeginDeclared(7, 1)); !res.Accepted() {
		t.Fatalf("victim begin: %v (%v)", res.Outcome, res.Err)
	}
	if res := eng.Submit(model.Read(7, 1)); !res.Accepted() {
		t.Fatalf("victim read: %v (%v)", res.Outcome, res.Err)
	}

	// Cross transaction spanning partitions 0 and 2.
	if res := eng.Submit(model.BeginDeclared(9, 0, 2)); res.Outcome != OutcomeBuffered {
		t.Fatalf("cross begin: %v (%v)", res.Outcome, res.Err)
	}
	if res := eng.Submit(model.Read(9, 0)); res.Outcome != OutcomeBuffered {
		t.Fatalf("cross read: %v (%v)", res.Outcome, res.Err)
	}
	res := eng.Submit(model.WriteFinal(9, 2))
	if res.Outcome != OutcomeAccepted || res.CompletedTxn != 9 {
		t.Fatalf("cross final: %v (%v), CompletedTxn=%v", res.Outcome, res.Err, res.CompletedTxn)
	}

	s := eng.Stats()
	if s.CrossTxns != 1 || s.Quiesces != 1 {
		t.Fatalf("stats = %+v, want 1 cross txn / 1 quiesce", s)
	}
	if s.BarrierKills != 1 {
		t.Fatalf("BarrierKills = %d, want 1 (the shard-1 active)", s.BarrierKills)
	}
	// The victim's next step is rejected as unknown.
	if res := eng.Submit(model.WriteFinal(7)); res.Outcome != OutcomeRejected {
		t.Fatalf("victim final after kill: %v (%v)", res.Outcome, res.Err)
	}
	// The referee agrees with everything that was accepted.
	if err := log.CheckAcceptedCSR(); err != nil {
		t.Fatal(err)
	}
	// The killed victim's steps are excluded from the accepted subschedule.
	for _, st := range log.AcceptedSubschedule() {
		if st.Txn == 7 {
			t.Fatalf("barrier victim's step %v survived in the accepted subschedule", st)
		}
	}
}

// TestDuplicateBeginAndBadKinds covers protocol errors.
func TestDuplicateBeginAndBadKinds(t *testing.T) {
	eng := New(Config{Shards: 2})
	defer eng.Close()
	if res := eng.Submit(model.BeginDeclared(1, 0)); !res.Accepted() {
		t.Fatalf("begin: %v", res.Outcome)
	}
	if res := eng.Submit(model.BeginDeclared(1, 0)); res.Outcome != OutcomeError {
		t.Fatalf("duplicate begin: %v, want error", res.Outcome)
	}
	if res := eng.Submit(model.Write(1, 0)); res.Outcome != OutcomeError {
		t.Fatalf("multiwrite step: %v, want error", res.Outcome)
	}
	if res := eng.Submit(model.Read(99, 0)); res.Outcome != OutcomeRejected {
		t.Fatalf("read without begin: %v, want rejected", res.Outcome)
	}
}

// TestClientAbort exercises Engine.Abort for both route kinds.
func TestClientAbort(t *testing.T) {
	eng := New(Config{Shards: 2})
	defer eng.Close()
	eng.Submit(model.BeginDeclared(1, 0))
	if !eng.Abort(1) {
		t.Fatal("abort of live local txn returned false")
	}
	if eng.Abort(1) {
		t.Fatal("second abort returned true")
	}
	eng.Submit(model.BeginDeclared(2, 0, 1)) // cross, buffered
	if !eng.Abort(2) {
		t.Fatal("abort of buffered cross txn returned false")
	}
	if res := eng.Submit(model.Read(2, 0)); res.Outcome != OutcomeRejected {
		t.Fatalf("read after cross abort: %v", res.Outcome)
	}
}

// TestGCDeletesUnderLoad runs sequential partition-local traffic with
// GreedyC1 and checks that amortized sweeps actually reclaim nodes and the
// retained graph stays far below the transaction count.
func TestGCDeletesUnderLoad(t *testing.T) {
	eng := New(Config{
		Shards:                2,
		Policy:                func() core.Policy { return core.GreedyC1{} },
		SweepEveryCompletions: 4,
	})
	defer eng.Close()
	const txns = 400
	for i := 0; i < txns; i++ {
		id := model.TxnID(i)
		p := i % 2
		x := model.Entity(p + 2*(i%50))
		if res := eng.Submit(model.BeginDeclared(id, x)); !res.Accepted() {
			t.Fatalf("begin %d: %v (%v)", i, res.Outcome, res.Err)
		}
		eng.Submit(model.Read(id, x))
		eng.Submit(model.WriteFinal(id, x))
	}
	s := eng.Stats()
	if s.Deleted == 0 || s.Sweeps == 0 {
		t.Fatalf("no GC happened: %+v", s)
	}
	if kept := s.Merged.PeakKept; kept > txns/4 {
		t.Fatalf("peak retained completed = %d, want far below %d", kept, txns)
	}
	if s.Deleted != s.Merged.Deleted {
		t.Fatalf("engine Deleted=%d != scheduler Deleted=%d", s.Deleted, s.Merged.Deleted)
	}
}

// TestConcurrentSubmitRace hammers the engine from many goroutines with a
// mix of local and cross transactions; run under -race. Outcomes are
// whatever they are (kills and rejections included) — the assertions are
// the internal consistency of the counters.
func TestConcurrentSubmitRace(t *testing.T) {
	eng := New(Config{
		Shards:                4,
		Policy:                func() core.Policy { return core.GreedyC1{} },
		SweepEveryCompletions: 4,
		BatchSize:             8,
	})
	defer eng.Close()

	const workers = 8
	const txnsPerWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWorker; i++ {
				id := model.TxnID(w*txnsPerWorker + i)
				p := (w + i) % 4
				x := model.Entity(p + 4*(i%25))
				var fp []model.Entity
				if i%10 == 9 { // every tenth transaction is cross
					y := model.Entity((p+1)%4 + 4*(i%25))
					fp = []model.Entity{x, y}
				} else {
					fp = []model.Entity{x}
				}
				if res := eng.Submit(model.BeginDeclared(id, fp...)); res.Outcome == OutcomeError {
					t.Errorf("begin %d: %v", id, res.Err)
					return
				}
				for _, e := range fp {
					eng.Submit(model.Read(id, e))
				}
				eng.Submit(model.WriteFinal(id, fp[0]))
			}
		}(w)
	}
	wg.Wait()

	s := eng.Stats()
	if s.Accepted != s.Merged.Accepted {
		t.Fatalf("engine Accepted=%d != scheduler Accepted=%d", s.Accepted, s.Merged.Accepted)
	}
	if s.Completed != s.Merged.Completed {
		t.Fatalf("engine Completed=%d != scheduler Completed=%d", s.Completed, s.Merged.Completed)
	}
	if s.CrossTxns == 0 {
		t.Fatal("no cross transactions ran")
	}
	if s.Completed+s.Aborted == 0 {
		t.Fatal("nothing finished")
	}
}

// TestStatsAfterClose verifies final per-shard stats survive Close.
func TestStatsAfterClose(t *testing.T) {
	eng := New(Config{Shards: 2})
	eng.Submit(model.BeginDeclared(1, 0))
	eng.Submit(model.WriteFinal(1, 0))
	eng.Close()
	eng.Close() // idempotent
	s := eng.Stats()
	if s.Merged.Completed != 1 {
		t.Fatalf("after close: Merged.Completed = %d, want 1", s.Merged.Completed)
	}
	if res := eng.Submit(model.Begin(2)); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", res.Err)
	}
}

// TestReusedIDDoesNotPoisonRoute: a BEGIN whose ID collides with a
// retained completed transaction must fail cleanly without leaving a stale
// route behind (regression: the route used to stay forever).
func TestReusedIDDoesNotPoisonRoute(t *testing.T) {
	eng := New(Config{Shards: 2}) // nogc: completed txns stay retained
	defer eng.Close()
	eng.Submit(model.BeginDeclared(4, 0))
	eng.Submit(model.WriteFinal(4, 0))
	if res := eng.Submit(model.BeginDeclared(4, 0)); res.Outcome != OutcomeError {
		t.Fatalf("reused begin: %v, want error", res.Outcome)
	}
	// Without a lingering route, this is rejected at the engine (unknown
	// txn), not routed to the shard as if T4 were live.
	res := eng.Submit(model.Read(4, 0))
	if res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrUnknownTxn) {
		t.Fatalf("read after failed reuse: %v (%v), want rejected/ErrUnknownTxn", res.Outcome, res.Err)
	}
}

// TestCrossReuseKeepsOriginalInTrace: a cross-partition transaction reusing
// the ID of a retained committed transaction must fail without marking the
// *original* transaction aborted in the trace (regression: MarkAborted used
// to erase the committed transaction's steps from the referee's input).
func TestCrossReuseKeepsOriginalInTrace(t *testing.T) {
	log := trace.NewSafeLog()
	eng := New(Config{Shards: 2, Log: log}) // nogc keeps T1 retained on shard 0
	defer eng.Close()
	eng.Submit(model.BeginDeclared(1, 0))
	eng.Submit(model.WriteFinal(1, 0))
	// Reuse ID 1 for a cross transaction; its atomic apply hits a
	// duplicate-BEGIN protocol error on shard 0.
	eng.Submit(model.BeginDeclared(1, 0, 1))
	res := eng.Submit(model.WriteFinal(1, 1))
	if res.Outcome != OutcomeError {
		t.Fatalf("cross reuse final: %v (%v), want error", res.Outcome, res.Err)
	}
	var got int
	for _, st := range log.AcceptedSubschedule() {
		if st.Txn == 1 {
			got++
		}
	}
	if got != 2 {
		t.Fatalf("original T1 has %d steps in the accepted subschedule, want 2 (begin+write)", got)
	}
}

// TestStatsCloseRace: Stats must return (not hang) when racing Close.
func TestStatsCloseRace(t *testing.T) {
	for i := 0; i < 20; i++ {
		eng := New(Config{Shards: 2})
		eng.Submit(model.BeginDeclared(1, 0))
		eng.Submit(model.WriteFinal(1, 0))
		done := make(chan Stats, 1)
		go func() { done <- eng.Stats() }()
		eng.Close()
		s := <-done
		if s.Merged.Completed != 1 {
			t.Fatalf("iter %d: Merged.Completed = %d, want 1", i, s.Merged.Completed)
		}
	}
}
