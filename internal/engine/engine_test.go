package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
)

// TestSingleShardSemantics pins the engine to the paper's scheduler
// semantics on one shard: the classic two-transaction cycle is rejected.
func TestSingleShardSemantics(t *testing.T) {
	eng := New(Config{Shards: 1})
	defer eng.Close()

	mustOutcome := func(res Result, want Outcome) {
		t.Helper()
		if res.Outcome != want {
			t.Fatalf("%v: outcome = %v (err=%v), want %v", res.Step, res.Outcome, res.Err, want)
		}
	}
	// T1 reads x, T2 reads y, T2 writes x (T1→T2), then T1 writes y: cycle.
	mustOutcome(eng.Submit(model.Begin(0)), OutcomeAccepted)
	mustOutcome(eng.Submit(model.Begin(1)), OutcomeAccepted)
	mustOutcome(eng.Submit(model.Read(0, 10)), OutcomeAccepted)
	mustOutcome(eng.Submit(model.Read(1, 11)), OutcomeAccepted)
	res := eng.Submit(model.WriteFinal(1, 10))
	mustOutcome(res, OutcomeAccepted)
	if res.CompletedTxn != 1 {
		t.Fatalf("CompletedTxn = %v, want 1", res.CompletedTxn)
	}
	res = eng.Submit(model.WriteFinal(0, 11))
	mustOutcome(res, OutcomeRejected)
	if res.Aborted != 0 {
		t.Fatalf("Aborted = %v, want 0", res.Aborted)
	}
	s := eng.Stats()
	if s.Completed != 1 || s.Aborted != 1 {
		t.Fatalf("stats = %+v, want 1 completed / 1 aborted", s)
	}
}

// TestRoutingAndMisroute verifies the partition discipline: a declared
// single-partition transaction is pinned to its shard and aborted the
// moment it strays.
func TestRoutingAndMisroute(t *testing.T) {
	eng := New(Config{Shards: 4})
	defer eng.Close()

	// Footprint {0,4,8} is all partition 0.
	if res := eng.Submit(model.BeginDeclared(1, 0, 4, 8)); res.Outcome != OutcomeAccepted {
		t.Fatalf("begin: %v (%v)", res.Outcome, res.Err)
	}
	if res := eng.Submit(model.Read(1, 8)); res.Outcome != OutcomeAccepted {
		t.Fatalf("in-partition read: %v (%v)", res.Outcome, res.Err)
	}
	// Entity 3 belongs to partition 3: misroute, transaction aborted.
	res := eng.Submit(model.Read(1, 3))
	if res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrMisroute) {
		t.Fatalf("foreign read: %v (%v), want rejected/ErrMisroute", res.Outcome, res.Err)
	}
	// The transaction is gone now.
	res = eng.Submit(model.Read(1, 8))
	if res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrTxnAborted) {
		t.Fatalf("post-abort read: %v (%v), want rejected/ErrTxnAborted", res.Outcome, res.Err)
	}
	if s := eng.Stats(); s.Misroutes != 1 {
		t.Fatalf("Misroutes = %d, want 1", s.Misroutes)
	}
}

// TestCrossPartition2PC drives one cross-partition transaction through the
// two-phase commit and checks that bystanders survive: a concurrent active
// on a participating shard is untouched by the cross commit and completes
// afterwards. This is the regression test for the stop-the-world
// coordinator the 2PC replaced (it used to kill T7 at the barrier).
func TestCrossPartition2PC(t *testing.T) {
	log := trace.NewSafeLog()
	eng := New(Config{Shards: 4, Log: log})
	defer eng.Close()

	// A local active on shard 0 — a *participant* of the cross commit.
	if res := eng.Submit(model.BeginDeclared(7, 4)); !res.Accepted() {
		t.Fatalf("bystander begin: %v (%v)", res.Outcome, res.Err)
	}
	if res := eng.Submit(model.Read(7, 4)); !res.Accepted() {
		t.Fatalf("bystander read: %v (%v)", res.Outcome, res.Err)
	}

	// Cross transaction spanning partitions 0 and 2: sub-transactions begin
	// on both shards, the read applies immediately on shard 0, and the
	// final write runs PREPARE on both participants before COMMIT.
	if res := eng.Submit(model.BeginDeclared(9, 0, 2)); !res.Accepted() {
		t.Fatalf("cross begin: %v (%v)", res.Outcome, res.Err)
	}
	if res := eng.Submit(model.Read(9, 0)); !res.Accepted() {
		t.Fatalf("cross read: %v (%v)", res.Outcome, res.Err)
	}
	res := eng.Submit(model.WriteFinal(9, 2))
	if res.Outcome != OutcomeAccepted || res.CompletedTxn != 9 {
		t.Fatalf("cross final: %v (%v), CompletedTxn=%v", res.Outcome, res.Err, res.CompletedTxn)
	}

	s := eng.Stats()
	if s.CrossTxns != 1 || s.Prepares != 2 {
		t.Fatalf("stats = %+v, want 1 cross txn / 2 prepares", s)
	}
	if s.BarrierKills != 0 || s.Quiesces != 0 {
		t.Fatalf("BarrierKills=%d Quiesces=%d, want 0/0 (no global barrier under 2PC)", s.BarrierKills, s.Quiesces)
	}
	for i, p := range s.PreparedByShard {
		if p != 0 {
			t.Fatalf("shard %d still has %d prepared sub-transactions after the decision", i, p)
		}
	}
	// The bystander survived the cross commit and completes normally.
	if res := eng.Submit(model.WriteFinal(7, 4)); !res.Accepted() || res.CompletedTxn != 7 {
		t.Fatalf("bystander final after cross commit: %v (%v)", res.Outcome, res.Err)
	}
	// The referee agrees with everything that was accepted, and both
	// transactions' steps are in the accepted subschedule.
	if err := log.CheckAcceptedCSR(); err != nil {
		t.Fatal(err)
	}
	survivors := map[model.TxnID]bool{}
	for _, st := range log.AcceptedSubschedule() {
		survivors[st.Txn] = true
	}
	if !survivors[7] || !survivors[9] {
		t.Fatalf("accepted subschedule lost a committed transaction: %v", survivors)
	}
}

// TestCrossCycleDetectedAtPrepare builds the cycle the stop-the-world
// coordinator existed to prevent — two cross transactions whose shard-local
// paths compose into a global cycle — and checks the cross-arc registry
// catches it at PREPARE time, aborting only the cross transaction itself.
func TestCrossCycleDetectedAtPrepare(t *testing.T) {
	log := trace.NewSafeLog()
	eng := New(Config{Shards: 2, Log: log})
	defer eng.Close()

	// Entities 0 (shard 0) and 1 (shard 1). Both transactions participate
	// on both shards.
	mustAccept := func(res Result) {
		t.Helper()
		if !res.Accepted() {
			t.Fatalf("%v: %v (%v)", res.Step, res.Outcome, res.Err)
		}
	}
	mustAccept(eng.Submit(model.BeginDeclared(1, 0, 1)))
	mustAccept(eng.Submit(model.BeginDeclared(2, 0, 1)))
	mustAccept(eng.Submit(model.Read(1, 0))) // T1 reads x on shard 0
	mustAccept(eng.Submit(model.Read(2, 1))) // T2 reads y on shard 1
	// T2 writes x: shard 0 gets arc T1→T2 (reader before writer), which the
	// registry records as an inter-shard reach-arc T1→T2.
	res := eng.Submit(model.WriteFinal(2, 0))
	if !res.Accepted() || res.CompletedTxn != 2 {
		t.Fatalf("T2 final: %v (%v)", res.Outcome, res.Err)
	}
	// T1 writes y: shard 1 would add arc T2→T1, composing with T1→T2 into
	// a global cycle no single shard can see. The registry vetoes the
	// prepare; T1 aborts, nothing else does.
	res = eng.Submit(model.WriteFinal(1, 1))
	if res.Outcome != OutcomeRejected || res.Aborted != 1 {
		t.Fatalf("T1 final: %v (%v), want rejected cross abort", res.Outcome, res.Err)
	}
	if !errors.Is(res.Err, ErrCrossCycle) {
		t.Fatalf("T1 final err = %v, want ErrCrossCycle", res.Err)
	}
	s := eng.Stats()
	if s.CrossAborts != 1 || s.BarrierKills != 0 {
		t.Fatalf("stats = %+v, want 1 cross abort and 0 barrier kills", s)
	}
	for i, p := range s.PreparedByShard {
		if p != 0 {
			t.Fatalf("shard %d leaked %d prepared pins after the cross abort", i, p)
		}
	}
	// The referee must agree: with T1 excluded the subschedule is CSR (and
	// it would not have been with both).
	if err := log.CheckAcceptedCSR(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossAbortReleasesPins is the regression test for aborting a cross
// transaction part-way: a client abort after sub-transactions and reads
// exist on several shards, and a prepare that fails on the second
// participant, must both release every participant's state (pins included)
// deterministically — proven by reusing the IDs, which only works if every
// shard forgot them.
func TestCrossAbortReleasesPins(t *testing.T) {
	eng := New(Config{Shards: 3})
	defer eng.Close()

	// Client abort mid-flight: sub-transactions live on shards 0,1,2.
	if res := eng.Submit(model.BeginDeclared(1, 0, 1, 2)); !res.Accepted() {
		t.Fatalf("begin: %v (%v)", res.Outcome, res.Err)
	}
	if res := eng.Submit(model.Read(1, 1)); !res.Accepted() {
		t.Fatalf("read: %v (%v)", res.Outcome, res.Err)
	}
	if !eng.Abort(1) {
		t.Fatal("abort of live cross txn returned false")
	}
	if eng.Abort(1) {
		t.Fatal("second abort returned true")
	}
	if res := eng.Submit(model.Read(1, 0)); res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrTxnAborted) {
		t.Fatalf("read after abort: %v (%v)", res.Outcome, res.Err)
	}
	// Every shard released its sub-transaction: the ID is reusable.
	if res := eng.Submit(model.BeginDeclared(1, 0, 1, 2)); !res.Accepted() {
		t.Fatalf("begin after abort (ID reuse): %v (%v)", res.Outcome, res.Err)
	}
	if res := eng.Submit(model.WriteFinal(1, 0, 1, 2)); !res.Accepted() || res.CompletedTxn != 1 {
		t.Fatalf("reused txn final: %v (%v)", res.Outcome, res.Err)
	}

	// Prepare failure on the second participant: T10 reads entity 3 on
	// shard 0 and entity 4 on shard 1; a conflicting committed local write
	// on shard 1 makes T10's final write close a local cycle there, so the
	// first participant (shard 0) votes yes and pins, then shard 1 votes
	// no — the abort must unpin shard 0.
	if res := eng.Submit(model.BeginDeclared(10, 3, 4)); !res.Accepted() {
		t.Fatalf("T10 begin: %v (%v)", res.Outcome, res.Err)
	}
	if res := eng.Submit(model.Read(10, 3)); !res.Accepted() {
		t.Fatalf("T10 read 3: %v (%v)", res.Outcome, res.Err)
	}
	if res := eng.Submit(model.Read(10, 4)); !res.Accepted() {
		t.Fatalf("T10 read 4: %v (%v)", res.Outcome, res.Err)
	}
	// Local T11 on shard 1: writes 4 after T10's read (arc T10→T11)…
	if res := eng.Submit(model.BeginDeclared(11, 4)); !res.Accepted() {
		t.Fatalf("T11 begin: %v (%v)", res.Outcome, res.Err)
	}
	if res := eng.Submit(model.WriteFinal(11, 4)); !res.Accepted() {
		t.Fatalf("T11 final: %v (%v)", res.Outcome, res.Err)
	}
	// …then T10's final write of {3,4}: shard 0 prepares fine (and pins),
	// but on shard 1 the write needs arc T11→T10 while T10→T11 already
	// exists — a local cycle, so shard 1 votes no.
	res := eng.Submit(model.WriteFinal(10, 3, 4))
	if res.Outcome != OutcomeRejected || res.Aborted != 10 {
		t.Fatalf("T10 final: %v (%v), want local-cycle rejection", res.Outcome, res.Err)
	}
	s := eng.Stats()
	for i, p := range s.PreparedByShard {
		if p != 0 {
			t.Fatalf("shard %d leaked %d prepared pins after vote-no abort", i, p)
		}
	}
	if s.BarrierKills != 0 {
		t.Fatalf("BarrierKills = %d, want 0", s.BarrierKills)
	}
	// Both IDs reusable: every participant cleaned up.
	if res := eng.Submit(model.BeginDeclared(10, 3, 4)); !res.Accepted() {
		t.Fatalf("T10 reuse after vote-no: %v (%v)", res.Outcome, res.Err)
	}
}

// TestDuplicateBeginAndBadKinds covers protocol errors.
func TestDuplicateBeginAndBadKinds(t *testing.T) {
	eng := New(Config{Shards: 2})
	defer eng.Close()
	if res := eng.Submit(model.BeginDeclared(1, 0)); !res.Accepted() {
		t.Fatalf("begin: %v", res.Outcome)
	}
	if res := eng.Submit(model.BeginDeclared(1, 0)); res.Outcome != OutcomeError {
		t.Fatalf("duplicate begin: %v, want error", res.Outcome)
	}
	if res := eng.Submit(model.Write(1, 0)); res.Outcome != OutcomeError {
		t.Fatalf("multiwrite step: %v, want error", res.Outcome)
	}
	if res := eng.Submit(model.Read(99, 0)); res.Outcome != OutcomeRejected {
		t.Fatalf("read without begin: %v, want rejected", res.Outcome)
	}
}

// TestClientAbort exercises Engine.Abort for both route kinds.
func TestClientAbort(t *testing.T) {
	eng := New(Config{Shards: 2})
	defer eng.Close()
	eng.Submit(model.BeginDeclared(1, 0))
	if !eng.Abort(1) {
		t.Fatal("abort of live local txn returned false")
	}
	if eng.Abort(1) {
		t.Fatal("second abort returned true")
	}
	eng.Submit(model.BeginDeclared(2, 0, 1)) // cross: sub-txns on shards 0,1
	if !eng.Abort(2) {
		t.Fatal("abort of live cross txn returned false")
	}
	if res := eng.Submit(model.Read(2, 0)); res.Outcome != OutcomeRejected {
		t.Fatalf("read after cross abort: %v", res.Outcome)
	}
}

// TestGCDeletesUnderLoad runs sequential partition-local traffic with
// GreedyC1 and checks that amortized sweeps actually reclaim nodes and the
// retained graph stays far below the transaction count.
func TestGCDeletesUnderLoad(t *testing.T) {
	eng := New(Config{
		Shards:                2,
		Policy:                func() core.Policy { return core.GreedyC1{} },
		SweepEveryCompletions: 4,
	})
	defer eng.Close()
	const txns = 400
	for i := 0; i < txns; i++ {
		id := model.TxnID(i)
		p := i % 2
		x := model.Entity(p + 2*(i%50))
		if res := eng.Submit(model.BeginDeclared(id, x)); !res.Accepted() {
			t.Fatalf("begin %d: %v (%v)", i, res.Outcome, res.Err)
		}
		eng.Submit(model.Read(id, x))
		eng.Submit(model.WriteFinal(id, x))
	}
	// Quiesce before comparing the engine's atomic Deleted counter with the
	// schedulers' (a post-batch sweep can land between the two reads on a
	// live engine); Close is idempotent with the deferred one.
	eng.Close()
	s := eng.Stats()
	if s.Deleted == 0 || s.Sweeps == 0 {
		t.Fatalf("no GC happened: %+v", s)
	}
	if kept := s.Merged.PeakKept; kept > txns/4 {
		t.Fatalf("peak retained completed = %d, want far below %d", kept, txns)
	}
	if s.Deleted != s.Merged.Deleted {
		t.Fatalf("engine Deleted=%d != scheduler Deleted=%d", s.Deleted, s.Merged.Deleted)
	}
}

// TestConcurrentSubmitRace hammers the engine from many goroutines with a
// mix of local and cross transactions; run under -race. Outcomes are
// whatever they are (kills and rejections included) — the assertions are
// the internal consistency of the counters.
func TestConcurrentSubmitRace(t *testing.T) {
	eng := New(Config{
		Shards:                4,
		Policy:                func() core.Policy { return core.GreedyC1{} },
		SweepEveryCompletions: 4,
		BatchSize:             8,
	})
	defer eng.Close()

	const workers = 8
	const txnsPerWorker = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < txnsPerWorker; i++ {
				id := model.TxnID(w*txnsPerWorker + i)
				p := (w + i) % 4
				x := model.Entity(p + 4*(i%25))
				var fp []model.Entity
				if i%10 == 9 { // every tenth transaction is cross
					y := model.Entity((p+1)%4 + 4*(i%25))
					fp = []model.Entity{x, y}
				} else {
					fp = []model.Entity{x}
				}
				if res := eng.Submit(model.BeginDeclared(id, fp...)); res.Outcome == OutcomeError {
					t.Errorf("begin %d: %v", id, res.Err)
					return
				}
				for _, e := range fp {
					eng.Submit(model.Read(id, e))
				}
				eng.Submit(model.WriteFinal(id, fp[0]))
			}
		}(w)
	}
	wg.Wait()

	s := eng.Stats()
	// Engine counters are logical (one BEGIN/final/completion per cross
	// transaction) while scheduler counters see one sub-transaction per
	// participant, so the per-shard sums dominate whenever cross traffic
	// ran.
	if s.Accepted > s.Merged.Accepted {
		t.Fatalf("engine Accepted=%d > scheduler Accepted=%d", s.Accepted, s.Merged.Accepted)
	}
	if s.Completed > s.Merged.Completed {
		t.Fatalf("engine Completed=%d > scheduler Completed=%d", s.Completed, s.Merged.Completed)
	}
	if s.CrossTxns == 0 {
		t.Fatal("no cross transactions ran")
	}
	if s.Completed+s.Aborted == 0 {
		t.Fatal("nothing finished")
	}
	if s.BarrierKills != 0 || s.Quiesces != 0 {
		t.Fatalf("BarrierKills=%d Quiesces=%d, want 0/0 under 2PC", s.BarrierKills, s.Quiesces)
	}
}

// TestStatsAfterClose verifies final per-shard stats survive Close.
func TestStatsAfterClose(t *testing.T) {
	eng := New(Config{Shards: 2})
	eng.Submit(model.BeginDeclared(1, 0))
	eng.Submit(model.WriteFinal(1, 0))
	eng.Close()
	eng.Close() // idempotent
	s := eng.Stats()
	if s.Merged.Completed != 1 {
		t.Fatalf("after close: Merged.Completed = %d, want 1", s.Merged.Completed)
	}
	if res := eng.Submit(model.Begin(2)); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", res.Err)
	}
}

// TestReusedIDDoesNotPoisonRoute: a BEGIN whose ID collides with a
// retained completed transaction must fail cleanly without leaving a stale
// route behind (regression: the route used to stay forever).
func TestReusedIDDoesNotPoisonRoute(t *testing.T) {
	eng := New(Config{Shards: 2}) // nogc: completed txns stay retained
	defer eng.Close()
	eng.Submit(model.BeginDeclared(4, 0))
	eng.Submit(model.WriteFinal(4, 0))
	if res := eng.Submit(model.BeginDeclared(4, 0)); res.Outcome != OutcomeError {
		t.Fatalf("reused begin: %v, want error", res.Outcome)
	}
	// Without a lingering route, this is rejected at the engine (unknown
	// txn), not routed to the shard as if T4 were live.
	res := eng.Submit(model.Read(4, 0))
	if res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrTxnAborted) {
		t.Fatalf("read after failed reuse: %v (%v), want rejected/ErrTxnAborted", res.Outcome, res.Err)
	}
}

// TestCrossReuseKeepsOriginalInTrace: a cross-partition transaction reusing
// the ID of a retained committed transaction must fail without marking the
// *original* transaction aborted in the trace (regression: MarkAborted used
// to erase the committed transaction's steps from the referee's input).
// Under 2PC the collision surfaces at BEGIN (the sub-begin fan-out hits the
// duplicate on shard 0 and rolls back), not at the final write.
func TestCrossReuseKeepsOriginalInTrace(t *testing.T) {
	log := trace.NewSafeLog()
	eng := New(Config{Shards: 2, Log: log}) // nogc keeps T1 retained on shard 0
	defer eng.Close()
	eng.Submit(model.BeginDeclared(1, 0))
	eng.Submit(model.WriteFinal(1, 0))
	// Reuse ID 1 for a cross transaction; the sub-begin on shard 0 hits a
	// duplicate-BEGIN protocol error and the fan-out rolls back.
	if res := eng.Submit(model.BeginDeclared(1, 0, 1)); res.Outcome != OutcomeError {
		t.Fatalf("cross reuse begin: %v (%v), want error", res.Outcome, res.Err)
	}
	// No route was left behind: the follow-up final write is unknown.
	if res := eng.Submit(model.WriteFinal(1, 1)); res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrTxnAborted) {
		t.Fatalf("cross reuse final: %v (%v), want rejected/ErrTxnAborted", res.Outcome, res.Err)
	}
	var got int
	for _, st := range log.AcceptedSubschedule() {
		if st.Txn == 1 {
			got++
		}
	}
	if got != 2 {
		t.Fatalf("original T1 has %d steps in the accepted subschedule, want 2 (begin+write)", got)
	}
}

// TestStatsCloseRace: Stats must return (not hang) when racing Close.
func TestStatsCloseRace(t *testing.T) {
	for i := 0; i < 20; i++ {
		eng := New(Config{Shards: 2})
		eng.Submit(model.BeginDeclared(1, 0))
		eng.Submit(model.WriteFinal(1, 0))
		done := make(chan Stats, 1)
		go func() { done <- eng.Stats() }()
		eng.Close()
		s := <-done
		if s.Merged.Completed != 1 {
			t.Fatalf("iter %d: Merged.Completed = %d, want 1", i, s.Merged.Completed)
		}
	}
}

// TestCrossIDReuseStaleLabels is the regression test for stale
// cross-ancestor labels colliding with TxnID reuse: after cross T1 aborts,
// its labels linger lazily on completed nodes; if the same ID is reused
// for a new cross transaction, those stale entries must be purged — or the
// label flood stops at them, the registry misses the new incarnation's
// reach-path, and a global cycle commits. With the purge, the
// cycle-closing local write is vetoed; the incarnation-aware referee
// double-checks the accepted subschedule either way.
func TestCrossIDReuseStaleLabels(t *testing.T) {
	log := trace.NewSafeLog()
	eng := New(Config{Shards: 2, Log: log})
	defer eng.Close()
	must := func(res Result) {
		t.Helper()
		if !res.Accepted() {
			t.Fatalf("%v: %v (%v)", res.Step, res.Outcome, res.Err)
		}
	}
	// Era 1: long-lived local v reads e0; cross T1 reads e0; local L's
	// write of e0 hands label 1 to L (and arc v→L); local M extends the
	// chain (arc L→M, label 1 on M); then T1 aborts, leaving stale labels.
	must(eng.Submit(model.BeginDeclared(5, 0, 8))) // v, shard 0
	must(eng.Submit(model.Read(5, 0)))
	must(eng.Submit(model.BeginDeclared(1, 0, 9))) // T1 cross {0,1}
	must(eng.Submit(model.Read(1, 0)))
	must(eng.Submit(model.BeginDeclared(7, 0, 4))) // L, shard 0
	must(eng.Submit(model.WriteFinal(7, 0, 4)))
	must(eng.Submit(model.BeginDeclared(11, 4, 6))) // M, shard 0
	must(eng.Submit(model.Read(11, 4)))
	must(eng.Submit(model.WriteFinal(11, 6)))
	if !eng.Abort(1) {
		t.Fatal("abort of T1")
	}
	// T2 links M→T2 while label 1 is dead (pruned from the tail M, but L
	// still carries its stale copy).
	must(eng.Submit(model.BeginDeclared(2, 6, 9))) // T2 cross {0,1}
	must(eng.Submit(model.Read(2, 6)))
	// Era 2: reuse ID 1 for a fresh cross transaction (purge must clear
	// L's stale label here), then close the loop: T2 commits writing e9,
	// new T1 reads it (reach-arc 2→1), and v's write of e8 would complete
	// the path 1→v→L→M→2 — a global cycle — so it must be vetoed.
	must(eng.Submit(model.BeginDeclared(1, 8, 9)))
	must(eng.Submit(model.Read(1, 8)))
	must(eng.Submit(model.WriteFinal(2, 9)))
	must(eng.Submit(model.Read(1, 9)))
	res := eng.Submit(model.WriteFinal(5, 8))
	if res.Outcome != OutcomeRejected || res.Aborted != 5 {
		t.Fatalf("cycle-closing write: %v (%v), want rejection aborting T5 (stale label hid the reach-path?)",
			res.Outcome, res.Err)
	}
	// The reused transaction itself commits fine.
	res = eng.Submit(model.WriteFinal(1))
	if !res.Accepted() || res.CompletedTxn != 1 {
		t.Fatalf("reused T1 final: %v (%v)", res.Outcome, res.Err)
	}
	if err := log.CheckAcceptedCSR(); err != nil {
		t.Fatal(err)
	}
	// The referee actually sees the second incarnation (it must not be
	// blinded by the first incarnation's abort).
	var era2 int
	for _, st := range log.AcceptedSubschedule() {
		if st.Txn == 1 {
			era2++
		}
	}
	if era2 == 0 {
		t.Fatal("referee dropped the reused incarnation's steps")
	}
}
