package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

// TestStatsDifferential audits the Merge/snapshot consistency contract: the
// merged per-shard scheduler stats must equal the engine-wide totals after a
// mixed local/cross workload. The workload is conflict-free by construction
// so every count is exact: L local transactions (one read, one final write)
// and C cross transactions with exactly two participants each (one read, a
// two-entity final write through 2PC), then M misrouted transactions that
// abort.
func TestStatsDifferential(t *testing.T) {
	const shards = 4
	const L, C, M = 40, 12, 5
	eng := New(Config{Shards: shards})
	defer eng.Close()

	// Entities are unique per transaction so no conflict arcs ever form.
	next := model.Entity(0)
	take := func(part int) model.Entity {
		for {
			x := next
			next++
			if int(x)%shards == part {
				return x
			}
		}
	}

	for i := 0; i < L; i++ {
		x := take(i % shards)
		id := model.TxnID(i)
		if res := eng.Submit(model.BeginDeclared(id, x)); !res.Accepted() {
			t.Fatalf("local begin %d: %v (%v)", i, res.Outcome, res.Err)
		}
		if res := eng.Submit(model.Read(id, x)); !res.Accepted() {
			t.Fatalf("local read %d: %v (%v)", i, res.Outcome, res.Err)
		}
		res := eng.Submit(model.WriteFinal(id, x))
		if !res.Accepted() || res.CompletedTxn != id {
			t.Fatalf("local write %d: %v (%v)", i, res.Outcome, res.Err)
		}
	}
	for i := 0; i < C; i++ {
		a, b := take(i%shards), take((i+1)%shards)
		id := model.TxnID(1000 + i)
		if res := eng.Submit(model.BeginDeclared(id, a, b)); !res.Accepted() {
			t.Fatalf("cross begin %d: %v (%v)", i, res.Outcome, res.Err)
		}
		if res := eng.Submit(model.Read(id, a)); !res.Accepted() {
			t.Fatalf("cross read %d: %v (%v)", i, res.Outcome, res.Err)
		}
		res := eng.Submit(model.WriteFinal(id, a, b))
		if !res.Accepted() || res.CompletedTxn != id {
			t.Fatalf("cross write %d: %v (%v)", i, res.Outcome, res.Err)
		}
	}
	for i := 0; i < M; i++ {
		// A single-partition transaction that strays: reading an entity of
		// the next partition is a misroute and aborts it.
		home := i % shards
		id := model.TxnID(2000 + i)
		if res := eng.Submit(model.BeginDeclared(id, take(home))); !res.Accepted() {
			t.Fatalf("stray begin %d: %v (%v)", i, res.Outcome, res.Err)
		}
		res := eng.Submit(model.Read(id, take((home+1)%shards)))
		if !errors.Is(res.Err, ErrMisroute) {
			t.Fatalf("stray read %d: err = %v, want ErrMisroute", i, res.Err)
		}
	}

	st := eng.Stats()

	// The snapshot's Merged must be exactly the fold of its PerShard slice.
	var fold core.Stats
	for _, cs := range st.PerShard {
		fold.Merge(cs)
	}
	if fold != st.Merged {
		t.Fatalf("Merged is not the fold of PerShard:\n merged: %+v\n   fold: %+v", st.Merged, fold)
	}

	// Engine-wide totals against the merged scheduler counters. A cross
	// transaction runs one sub-transaction per participant (two here), so
	// scheduler-level begins/writes/completions count it twice while the
	// engine counts logical transactions once.
	assertEq := func(name string, got, want int64) {
		t.Helper()
		if got != want {
			t.Fatalf("%s = %d, want %d (stats %+v)", name, got, want, st)
		}
	}
	assertEq("Completed", st.Completed, L+C)
	assertEq("Merged.Completed", st.Merged.Completed, L+2*C)
	assertEq("Merged.Begins", st.Merged.Begins, L+2*C+M)
	assertEq("Merged.Writes", st.Merged.Writes, L+2*C)
	assertEq("Merged.Reads", st.Merged.Reads, L+C)
	assertEq("Prepares", st.Prepares, 2*C)
	assertEq("CrossTxns", st.CrossTxns, C)
	assertEq("Misroutes", st.Misroutes, M)
	assertEq("Aborted", st.Aborted, M)
	assertEq("Merged.Aborts", st.Merged.Aborts, M)
	assertEq("Merged.Rejected", st.Merged.Rejected, 0) // misroutes abort pre-scheduler
	assertEq("CrossAborts", st.CrossAborts, 0)
	assertEq("Shed", st.Shed, 0)
}

// TestGaugesUnderConcurrentLoad hammers the lock-free gauge accessors —
// QueueDepths, RetainedCounts, PreparedCounts, and the Gauges snapshot the
// metrics endpoint polls — while a mixed local/cross workload runs, then
// checks the monotone engine counters never regress and every gauge drains
// to zero once the engine closes. Run under -race this is also the data-race
// proof for the gauge paths.
func TestGaugesUnderConcurrentLoad(t *testing.T) {
	const shards = 4
	eng := New(Config{Shards: shards, SweepEveryCompletions: 4})

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastEmitted [5]int64 // completed, accepted, deleted, sweeps, crossTxns
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := eng.Gauges()
				for _, vs := range [][]int64{g.QueueDepth, g.Retained, g.Prepared} {
					if len(vs) != shards {
						t.Errorf("gauge slice has %d entries, want %d", len(vs), shards)
						return
					}
					for i, v := range vs {
						if v < 0 {
							t.Errorf("negative gauge at shard %d: %d", i, v)
							return
						}
					}
				}
				st := eng.Stats()
				now := [5]int64{st.Completed, st.Accepted, st.Deleted, st.Sweeps, st.CrossTxns}
				for i, v := range now {
					if v < lastEmitted[i] {
						t.Errorf("monotone counter %d regressed: %d -> %d", i, lastEmitted[i], v)
						return
					}
				}
				lastEmitted = now
			}
		}()
	}

	var writers sync.WaitGroup
	for w := 0; w < shards; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 200; i++ {
				id := model.TxnID(w*10_000 + i)
				x := model.Entity(w + shards*(w*200+i)) // unique, partition w
				if !eng.Submit(model.BeginDeclared(id, x)).Accepted() {
					continue
				}
				eng.Submit(model.Read(id, x))
				eng.Submit(model.WriteFinal(id, x))
			}
			// A handful of cross transactions to exercise the prepared gauge.
			for i := 0; i < 20; i++ {
				id := model.TxnID(100_000 + w*1_000 + i)
				a := model.Entity(w + shards*(1_000_000+w*100+i))
				b := a + 1 // next partition (mod shards)
				if !eng.Submit(model.BeginDeclared(id, a, b)).Accepted() {
					continue
				}
				eng.Submit(model.WriteFinal(id, a, b))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	eng.Close()
	g := eng.Gauges()
	for _, vs := range [][]int64{g.QueueDepth, g.Retained, g.Prepared} {
		for i, v := range vs {
			if v != 0 {
				t.Fatalf("gauge at shard %d = %d after Close, want 0 (snapshot %+v)", i, v, g)
			}
		}
	}
}
