// Crash recovery: rebuilding an engine from the durability layer.
//
// Each shard's scheduler is reconstructed in two layers — the latest
// checkpoint (a state export, carrying the splice arcs deletion left
// behind) and the WAL tail replayed on top of it. Replay runs under a
// permissive cross tracker and a nil emitter: only accepted records were
// journaled, so every veto already did its work before the crash, and
// re-emitting replayed steps would double-count every metric. The live
// registry and emitter are installed once replay ends.
//
// After replay the engine resolves what the crash interrupted:
//
//   - Local active transactions are orphans — their client sessions died
//     with the process — and are aborted.
//   - A cross-partition transaction with durable COMMIT evidence (a
//     RecCommit in some shard's tail, or a completed sub-transaction in
//     some checkpoint) finishes committing on every lagging participant:
//     the coordinator decided, so the decision stands.
//   - A cross transaction prepared on EVERY participant but with no commit
//     evidence is in doubt. By default it is presumed aborted (the engine
//     itself was the coordinator and died undecided); with
//     Config.HoldInDoubt it stays pinned and registered, awaiting
//     ResolveInDoubt.
//   - Anything else — a cross transaction missing a durable YES vote
//     somewhere — aborts everywhere.
//
// Every resolution is journaled and synced before Open returns, so a crash
// during (or right after) recovery re-resolves to the same state.
//
//lint:file-ignore shardowned recovery runs on Open's goroutine strictly before any shard goroutine starts, so it owns every shard's state by happens-before (the goroutine launch in Open is the synchronization point)
package engine

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/model"
	"repro/internal/store"
)

// RecoveryReport summarizes what Open recovered from Config.Store.
type RecoveryReport struct {
	// Shards is the number of shards opened.
	Shards int
	// CheckpointSeqs is the LSN each shard's checkpoint covered at
	// recovery, indexed by shard (0: no checkpoint yet; nil without a
	// Store).
	CheckpointSeqs []uint64
	// RecordsReplayed counts WAL tail records re-applied on top of the
	// checkpoints, summed over shards.
	RecordsReplayed int
	// TxnsRetained counts transactions retained after resolution, summed
	// over shards (a cross transaction counts once per participant).
	TxnsRetained int
	// OrphansAborted counts local active transactions aborted because
	// their client sessions did not survive the crash.
	OrphansAborted int
	// CrossCommitted counts cross transactions whose durable COMMIT
	// decision was completed on lagging participants.
	CrossCommitted int
	// CrossAborted counts cross transactions aborted during recovery
	// (undecided, partially prepared, or presumed abort).
	CrossAborted int
	// InDoubt lists the fully-prepared cross transactions held pinned for
	// ResolveInDoubt (only with Config.HoldInDoubt).
	InDoubt []model.TxnID
}

// recoveryTracker is the cross tracker WAL replay runs under: every reach
// is admitted and every label stays live. Only accepted records were
// journaled — the vetoes already happened — so replay must never re-veto.
type recoveryTracker struct{}

func (recoveryTracker) OnCrossReach(src, dst model.TxnID) bool { return true }
func (recoveryTracker) LabelLive(src model.TxnID) bool         { return true }

// subState is one shard's view of a recovered cross transaction.
type subState struct {
	shard    int
	active   bool
	prepared bool
}

// recover builds every shard's scheduler — fresh without a Store,
// checkpoint+tail otherwise — and resolves interrupted transactions. It
// runs before the shard goroutines start, so scheduler access is
// single-threaded.
func (e *Engine) recover() (*RecoveryReport, error) {
	rep := &RecoveryReport{Shards: len(e.shards)}
	if e.cfg.Store == nil {
		for i, sh := range e.shards {
			sh.sched = core.NewScheduler(e.schedConfig(i, e.liveTracker(), emit.ForShard(e.cfg.Bus, i)))
		}
		return rep, nil
	}
	rep.CheckpointSeqs = make([]uint64, len(e.shards))
	// commitEvidence marks cross transactions with a durable COMMIT
	// decision visible from some shard's tail.
	commitEvidence := make(map[model.TxnID]bool)
	for i, sh := range e.shards {
		state, err := sh.st.Load()
		if err != nil {
			return nil, fmt.Errorf("engine: recover shard %d: %w", i, err)
		}
		rep.CheckpointSeqs[i] = state.CoveredLSN
		replayCfg := e.schedConfig(i, recoveryTracker{}, nil)
		if state.Snapshot != nil {
			snap, err := store.DecodeSnapshot(state.Snapshot)
			if err != nil {
				return nil, fmt.Errorf("engine: recover shard %d: checkpoint: %w", i, err)
			}
			sh.sched, err = core.RestoreScheduler(replayCfg, snap)
			if err != nil {
				return nil, fmt.Errorf("engine: recover shard %d: checkpoint: %v: %w", i, err, store.ErrCorruptWAL)
			}
		} else {
			sh.sched = core.NewScheduler(replayCfg)
		}
		for _, r := range state.Tail {
			if err := replayRecord(sh.sched, r); err != nil {
				return nil, fmt.Errorf("engine: recover shard %d: replay LSN %d (%v): %w", i, r.LSN, err, store.ErrCorruptWAL)
			}
			if r.Kind == store.RecCommit {
				commitEvidence[r.Txn] = true
			}
			rep.RecordsReplayed++
		}
	}

	// Classify what survived. A completed cross sub-transaction is commit
	// evidence too: CommitPrepared only ever runs after the decision.
	cross := make(map[model.TxnID][]subState)
	var crossOrder []model.TxnID // deterministic resolution order
	orphans := make([][]model.TxnID, len(e.shards))
	staleLabels := make(map[model.TxnID]bool)
	reachPairs := make([][2]model.TxnID, 0)
	for i, sh := range e.shards {
		st := sh.sched.ExportState()
		for _, t := range st.Txns {
			for _, l := range t.Labels {
				staleLabels[l] = true
				if t.IsCross && l != t.ID {
					// A label l on a cross sub-node of t.ID witnesses a
					// shard-local path l→…→t.ID: re-derive the registry
					// reach-arc if both ends end up registered (in doubt).
					reachPairs = append(reachPairs, [2]model.TxnID{l, t.ID})
				}
			}
			if t.IsCross {
				if _, seen := cross[t.ID]; !seen {
					crossOrder = append(crossOrder, t.ID)
				}
				cross[t.ID] = append(cross[t.ID], subState{
					shard:    i,
					active:   t.Status == model.StatusActive,
					prepared: t.Prepared,
				})
				if t.Status == model.StatusCompleted {
					commitEvidence[t.ID] = true
				}
			} else if t.Status == model.StatusActive {
				orphans[i] = append(orphans[i], t.ID)
			}
		}
	}

	// Orphaned local actives: their sessions are gone; abort.
	for i, ids := range orphans {
		sh := e.shards[i]
		for _, id := range ids {
			if sh.sched.AbortTxn(id) == nil {
				sh.journal(store.RecAbort, id, 0, nil)
				rep.OrphansAborted++
			}
		}
	}

	// Cross transactions: finish commits, hold or presume-abort the
	// prepared, abort the rest.
	inDoubtSet := make(map[model.TxnID]bool)
	for _, id := range crossOrder {
		subs := cross[id]
		allPrepared := true
		anyActive := false
		for _, s := range subs {
			if s.active {
				anyActive = true
				if !s.prepared {
					allPrepared = false
				}
			}
		}
		switch {
		case commitEvidence[id]:
			for _, s := range subs {
				if !s.active {
					continue
				}
				sh := e.shards[s.shard]
				if s.prepared {
					if err := sh.journalSynced(store.RecCommit, id, nil); err != nil {
						return nil, fmt.Errorf("engine: recover shard %d: journal commit T%d: %w", s.shard, id, err)
					}
					if _, err := sh.sched.CommitPrepared(id); err != nil {
						return nil, fmt.Errorf("engine: recover shard %d: commit T%d: %v: %w", s.shard, id, err, store.ErrCorruptWAL)
					}
				} else if sh.sched.AbortTxn(id) == nil {
					// A committed transaction with an unprepared sub cannot
					// happen under the protocol (votes are synced before the
					// decision); shed the stray sub defensively.
					sh.journal(store.RecAbort, id, 0, nil)
				}
			}
			rep.CrossCommitted++
		case anyActive && allPrepared && e.cfg.HoldInDoubt:
			parts := make([]int, 0, len(subs))
			for _, s := range subs {
				parts = append(parts, s.shard)
				e.shards[s.shard].preparedN.Add(1)
			}
			e.registry.register(id, parts)
			e.routes.storeNew(id, route{kind: routeCross, ct: &crossTxn{id: id, parts: parts}})
			inDoubtSet[id] = true
			rep.InDoubt = append(rep.InDoubt, id)
		default:
			// Undecided (presumed abort), partially prepared, or no active
			// sub left at all. Aborting an already-gone sub is a no-op.
			aborted := false
			for _, s := range subs {
				sh := e.shards[s.shard]
				if sh.sched.AbortTxn(id) == nil {
					sh.journal(store.RecAbort, id, 0, nil)
					aborted = true
				}
			}
			if aborted {
				rep.CrossAborted++
			}
		}
	}

	// Registry arcs among the held in-doubt transactions, re-derived from
	// the restored label sets.
	for _, p := range reachPairs {
		if inDoubtSet[p[0]] && inDoubtSet[p[1]] {
			e.registry.OnCrossReach(p[0], p[1])
		}
	}
	// Every other recovered cross ID is a dead incarnation whose labels
	// may linger in shard graphs: mark it so re-registration purges them.
	for id := range cross {
		if !inDoubtSet[id] {
			e.registry.markDirty(id)
		}
	}
	for id := range staleLabels {
		if !inDoubtSet[id] {
			e.registry.markDirty(id)
		}
	}

	// Make the resolutions durable, count what is retained, seed the trace
	// referee, and swap in the live tracker and emitter.
	for i, sh := range e.shards {
		sh.walSync()
		if sh.walErr != nil {
			return nil, fmt.Errorf("engine: recover shard %d: sync resolutions: %w", i, sh.walErr)
		}
		rep.TxnsRetained += len(sh.sched.ExportState().Txns)
	}
	if e.cfg.Log != nil {
		e.seedTraceLog()
	}
	for i, sh := range e.shards {
		sh.sched.SetTracker(e.liveTracker())
		sh.sched.SetEmitter(emit.ForShard(e.cfg.Bus, i))
		sh.retainedN.Store(int64(sh.sched.NumCompleted()))
	}
	return rep, nil
}

// replayRecord re-applies one journal record. Accepted records must
// re-accept — the WAL and checkpoint describe one deterministic history,
// so any divergence means the medium lied.
func replayRecord(sched *core.Scheduler, r store.Record) error {
	switch r.Kind {
	case store.RecBegin:
		res, err := sched.Apply(model.Step{Kind: model.KindBegin, Txn: r.Txn, Entities: r.Entities})
		if err != nil || !res.Accepted {
			return replayDiverged(r, res, err)
		}
	case store.RecRead:
		res, err := sched.Apply(model.Step{Kind: model.KindRead, Txn: r.Txn, Entity: r.Entity})
		if err != nil || !res.Accepted {
			return replayDiverged(r, res, err)
		}
	case store.RecWrite:
		res, err := sched.Apply(model.Step{Kind: model.KindWriteFinal, Txn: r.Txn, Entities: r.Entities})
		if err != nil || !res.Accepted {
			return replayDiverged(r, res, err)
		}
	case store.RecBeginSub:
		if _, err := sched.BeginCross(model.Step{Kind: model.KindBegin, Txn: r.Txn, Entities: r.Entities}); err != nil {
			return fmt.Errorf("%v replay: %v", r.Kind, err)
		}
	case store.RecPrepare:
		vote, err := sched.PrepareFinal(model.Step{Kind: model.KindWriteFinal, Txn: r.Txn, Entities: r.Entities})
		if err != nil || vote != core.VoteYes {
			return fmt.Errorf("%v replay: vote=%v err=%v", r.Kind, vote, err)
		}
	case store.RecCommit:
		if _, err := sched.CommitPrepared(r.Txn); err != nil {
			// A recovery resolution journaled by an earlier crash-during-
			// recovery may duplicate a commit the replay already applied.
			if t := sched.Txn(r.Txn); t == nil || t.Status != model.StatusCompleted {
				return fmt.Errorf("%v replay: %v", r.Kind, err)
			}
		}
	case store.RecAbort:
		// Presumed abort: duplicates and unknown victims are fine.
		sched.AbortTxn(r.Txn)
	default:
		return fmt.Errorf("unknown record kind %d", r.Kind)
	}
	return nil
}

func replayDiverged(r store.Record, res core.Result, err error) error {
	if err != nil {
		return fmt.Errorf("%v replay: %v", r.Kind, err)
	}
	return fmt.Errorf("%v replay: journaled-accepted step re-applied as rejected (aborted T%d)", r.Kind, res.Aborted)
}

// seedTraceLog reconstructs the accepted subschedule of the recovered
// history into Config.Log, so the CSR referee covers pre-crash steps plus
// everything the restarted engine accepts. The events are synthesized from
// final state: one BEGIN per logical transaction, each retained read at
// its access sequence number, each write set as one final write — ordered
// per shard by scheduler sequence, which preserves every conflict order
// (conflicts never span shards). Aborted and deleted transactions are
// simply absent, exactly as the accepted subschedule excludes them.
func (e *Engine) seedTraceLog() {
	type ev struct {
		seq  int64
		step model.Step
	}
	begun := make(map[model.TxnID]bool)
	for _, sh := range e.shards {
		st := sh.sched.ExportState()
		events := make([]ev, 0, len(st.Txns)*2)
		for _, t := range st.Txns {
			if !begun[t.ID] {
				begun[t.ID] = true
				e.cfg.Log.Append(model.Step{Kind: model.KindBegin, Txn: t.ID}, true)
			}
			var writes []model.Entity
			var writeSeq int64
			for _, a := range t.Access {
				if a.Access == model.WriteAccess {
					writes = append(writes, a.Entity)
					if a.Seq > writeSeq {
						writeSeq = a.Seq
					}
				} else {
					events = append(events, ev{seq: a.Seq, step: model.Step{Kind: model.KindRead, Txn: t.ID, Entity: a.Entity}})
				}
			}
			if len(writes) > 0 {
				events = append(events, ev{seq: writeSeq, step: model.Step{Kind: model.KindWriteFinal, Txn: t.ID, Entities: writes}})
			}
		}
		// Insertion sort by seq: recovery-time, lists are small, and export
		// order (BeginSeq) is already nearly sorted.
		for i := 1; i < len(events); i++ {
			for j := i; j > 0 && events[j].seq < events[j-1].seq; j-- {
				events[j], events[j-1] = events[j-1], events[j]
			}
		}
		for _, v := range events {
			e.cfg.Log.Append(v.step, true)
		}
	}
}

// ResolveInDoubt decides a cross transaction Open held in doubt
// (Config.HoldInDoubt): commit completes it on every participant, abort
// releases it everywhere. It reports false if id is not an unresolved
// in-doubt transaction. The decision is journaled and synced on every
// participant before it applies, like any 2PC decision.
func (e *Engine) ResolveInDoubt(id model.TxnID, commit bool) bool {
	r, ok := e.routes.load(id)
	if !ok || r.kind != routeCross {
		return false
	}
	ct := r.ct
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.done {
		return false
	}
	if !commit {
		e.finishCrossAbort(ct, -1)
		return true
	}
	for i, p := range ct.parts {
		rep, ok := e.shards[p].do(request{kind: reqCommitSub, step: model.Step{Txn: id}, decisionDurable: i > 0})
		if ok && i == 0 && rep.res.Outcome != OutcomeAccepted && rep.res.Aborted == id {
			// The decision could not be made durable anywhere (the first
			// participant's journal is dead): resolve as abort, which is
			// what recovery would conclude from the evidence-free medium.
			e.finishCrossAbort(ct, p)
			return true
		}
		if !ok {
			ct.done = true
			e.registry.drop(id)
			e.routes.delete(id)
			return false
		}
	}
	ct.done = true
	ct.committed = true
	e.registry.decideCommit(id)
	for _, p := range ct.parts {
		e.shards[p].trySend(request{kind: reqUpkeep})
	}
	e.routes.delete(id)
	e.completed.Add(1)
	return true
}
