package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/model"
	"repro/internal/ring"
	"repro/internal/store"
	"repro/internal/trace"
)

// Config configures an Engine.
type Config struct {
	// Shards is the number of entity partitions / scheduler goroutines
	// (default 1).
	Shards int
	// Policy builds the deletion policy for one shard; each shard gets its
	// own instance. nil means never delete (NoGC).
	Policy func() core.Policy
	// BatchSize caps how many queued steps a shard applies between GC
	// opportunities (default 64).
	BatchSize int
	// QueueDepth is the per-shard submission buffer (default 1024).
	QueueDepth int
	// SweepEveryCompletions is the GC cadence: a shard sweeps once it has
	// accumulated this many completions/aborts since the last sweep
	// (default 8). Lower is tighter memory, higher is faster.
	SweepEveryCompletions int
	// OverloadWatermark, if > 0, enables admission control: a BEGIN routed
	// at a shard whose submission backlog (Stats.QueueDepth) is at or above
	// the watermark is shed with ErrOverload instead of queued — the
	// transaction never begins and no queue slot is consumed. Steps of
	// already-admitted transactions are never shed (they drain the
	// backlog), and a PriorityHigh BEGIN bypasses the watermark.
	OverloadWatermark int
	// RetentionWatermark, if > 0, enables the retention governor: whenever
	// the engine-wide retained completed count (sum of RetainedCounts) sits
	// at or above the watermark, the governor aborts the oldest live
	// straggler — the active transaction with the smallest BeginSeq, which
	// is what pins completed predecessors against deletion (Theorem 1's
	// active-tight-predecessor condition) — through the same machinery as a
	// client's context-deadline abort, then sweeps. PriorityHigh
	// transactions and prepared 2PC sub-transactions are exempt. Requires a
	// Policy: without one nothing is ever deleted, so reaping could never
	// lower retention.
	RetentionWatermark int
	// GovernorInterval is how often the retention governor wakes to check
	// the watermark (default 2ms when RetentionWatermark > 0). Tests drive
	// the governor deterministically with GovernNow and set a long interval.
	GovernorInterval time.Duration
	// Log, if non-nil, records every applied step for offline refereeing
	// (trace.CheckAcceptedCSR). Sub-transactions of a cross-partition
	// transaction log under the logical TxnID, so the referee's conflict
	// graph folds them into one logical node by construction.
	Log *trace.SafeLog
	// Bus, if non-nil, receives a lifecycle event for every begin, accepted
	// step, veto, prepare, commit, abort, shed, and sweep, stamped with the
	// shard it happened on. The bus never blocks the hot path; the caller
	// owns its lifecycle (close it after Engine.Close so the tail of the
	// stream is drained).
	Bus *emit.Bus
	// Store, if non-nil, is the durability layer: each shard journals the
	// accepted subschedule it applies — begins, reads, final writes, 2PC
	// begin/prepare/commit, and every abort — to its own write-ahead log,
	// and checkpoints its retained state at sweep boundaries (what the
	// deletion policy proved safe to forget is exactly what is safe to
	// truncate from the log). Open recovers from it before any shard goes
	// live. Store.NumShards must equal Shards.
	Store store.Store
	// WALSyncEvery batches fsyncs on the journaling hot path: a shard
	// forces its log once this many records accumulated since the last
	// sync (default 64; acknowledged-but-unsynced records can be lost to a
	// crash). 1 is strict mode: every record is durable before its reply.
	// PREPARE votes and COMMIT decisions are always synced immediately
	// regardless — 2PC safety never rides the batch. Ignored without a
	// Store.
	WALSyncEvery int
	// CheckpointEverySweeps is the checkpoint cadence, measured in
	// deletion-policy sweeps (default 1: every sweep advances the
	// checkpoint and truncates the WAL). Higher trades recovery replay
	// length for fewer snapshot writes. Ignored without a Store.
	CheckpointEverySweeps int
	// HoldInDoubt keeps a fully-prepared cross-partition transaction found
	// at recovery pinned, registered, and awaiting an explicit
	// ResolveInDoubt decision, instead of presuming abort. Off by default:
	// with the engine itself acting as coordinator, a crash loses the
	// coordinator, and presumed abort is the standard resolution.
	HoldInDoubt bool
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.SweepEveryCompletions <= 0 {
		c.SweepEveryCompletions = 8
	}
	if c.RetentionWatermark > 0 && c.GovernorInterval <= 0 {
		c.GovernorInterval = 2 * time.Millisecond
	}
	if c.WALSyncEvery <= 0 {
		c.WALSyncEvery = 64
	}
	if c.CheckpointEverySweeps <= 0 {
		c.CheckpointEverySweeps = 1
	}
	return c
}

// Outcome is a coarse classification of one submission, derived from
// Result.Err (which is the single source of truth — see errors.go).
type Outcome uint8

const (
	// OutcomeAccepted: the step was applied and accepted (Err == nil).
	OutcomeAccepted Outcome = iota
	// OutcomeRejected: the step was refused and Aborted names the victim;
	// Err wraps ErrCycle, ErrCrossCycle, ErrMisroute, ErrOverload, or
	// ErrTxnAborted.
	OutcomeRejected
	// OutcomeError: the submission could not be processed and state is
	// unchanged; Err wraps ErrProtocol or ErrClosed.
	OutcomeError
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeAccepted:
		return "accepted"
	case OutcomeRejected:
		return "rejected"
	case OutcomeError:
		return "error"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Result reports the engine-level effect of one submission. Err is nil iff
// the step was applied and accepted; otherwise it wraps one member of the
// error taxonomy (errors.go) plus the step's context.
type Result struct {
	Step    model.Step
	Outcome Outcome
	// Aborted is the transaction aborted by this submission (NoTxn
	// otherwise). The step that kills a transaction carries the specific
	// cause (ErrCycle, ErrCrossCycle, ErrMisroute); later steps addressed
	// to the dead transaction carry ErrTxnAborted.
	Aborted model.TxnID
	// CompletedTxn is set when the submission completed its transaction
	// (for a cross-partition transaction, that is its final write's
	// two-phase commit reaching the COMMIT decision).
	CompletedTxn model.TxnID
	Err          error
}

// Accepted reports whether the step was applied and accepted.
func (r Result) Accepted() bool { return r.Outcome == OutcomeAccepted }

// Priority classifies a BEGIN for admission control.
type Priority uint8

const (
	// PriorityNormal BEGINs are subject to Config.OverloadWatermark.
	PriorityNormal Priority = iota
	// PriorityHigh BEGINs are admitted even above the overload watermark.
	PriorityHigh
)

// Stats is a point-in-time aggregate of engine counters. The scalar fields
// are maintained as lock-free atomics on the submit path; the per-shard
// scheduler stats are fetched by a snapshot request through each shard's
// queue.
//
// The scalar step/transaction counters are logical: a cross-partition
// transaction counts one BEGIN, one accepted final write, and one
// completion no matter how many shards participate, while the PerShard
// scheduler counters see one sub-transaction per participant. Merged
// therefore over-counts relative to the logical fields whenever cross
// traffic ran.
type Stats struct {
	Submitted int64 // Submit calls
	Accepted  int64 // steps applied and accepted
	Rejected  int64 // steps refused (cycle, cross-cycle, misroute, overload, dead txn)
	Completed int64 // transactions completed
	Aborted   int64 // transactions aborted, all causes
	Deleted   int64 // nodes reclaimed by deletion-policy sweeps
	Sweeps    int64 // amortized GC sweeps executed
	CrossTxns int64 // cross-partition transactions begun
	Shed      int64 // BEGINs refused by admission control (ErrOverload)
	Reaped    int64 // stragglers aborted by the retention governor

	// Prepares counts PREPARE requests sent to participants (one per
	// participating shard per cross-partition final write).
	Prepares int64
	// CrossAborts counts logical cross-partition transactions aborted:
	// NO votes (local or cross-shard cycle at prepare), registry vetoes on
	// reads, misroutes, and client aborts.
	CrossAborts int64

	// Quiesces and BarrierKills counted the pre-2PC stop-the-world
	// coordinator (one global barrier per cross commit, killing every
	// concurrent active transaction). The 2PC engine never quiesces and
	// never kills a bystander, so both are retained at zero — and the
	// engine tests assert exactly that.
	Quiesces     int64
	BarrierKills int64

	Misroutes int64 // partition-discipline violations

	// PreparedByShard is the instantaneous number of prepared-but-
	// undecided sub-transactions pinned on each shard, indexed by shard.
	PreparedByShard []int64

	// QueueDepth is the instantaneous per-shard submission backlog
	// (requests enqueued or blocked enqueuing, not yet picked up by the
	// shard goroutine), indexed by shard. Maintained as a cheap atomic on
	// the submit path; groundwork for admission control and load shedding.
	QueueDepth []int64

	// PerShard are the underlying scheduler counters, indexed by shard.
	PerShard []core.Stats
	// Merged is the sum of PerShard (peaks add; see core.Stats.Merge).
	Merged core.Stats
}

type routeKind uint8

const (
	routeLocal routeKind = iota
	routeCross
)

// route is the engine's record of where a live transaction executes. pri is
// the admission priority the transaction began with; the retention governor
// consults it to exempt PriorityHigh transactions from straggler reaping.
type route struct {
	kind  routeKind
	shard int
	ct    *crossTxn
	pri   Priority
}

// Engine is the concurrent sharded scheduler. Submit may be called from
// any number of goroutines; Close must not race in-flight Submits.
type Engine struct {
	cfg    Config
	shards []*shard
	// routes maps live TxnID → route (striped; see routemap.go).
	routes routeMap
	// registry is the cross-arc registry consulted by every shard's
	// scheduler (core.CrossTracker) and by the 2PC driver.
	registry *crossRegistry
	closed   atomic.Bool

	// reaped remembers recently governor-aborted TxnIDs so a straggler's
	// session learns *why* it died (ErrStragglerAborted) instead of the
	// generic ErrTxnAborted; reapedN is the Stats.Reaped counter. govMu
	// serializes governor passes (the ticker and explicit GovernNow calls);
	// govStop/govDone bound the governor goroutine's lifetime (nil when the
	// governor is disabled).
	reaped  reapedSet
	reapedN atomic.Int64
	govMu   sync.Mutex
	govStop chan struct{}
	govDone chan struct{}

	submitted, accepted, rejected       atomic.Int64
	completed, aborted, deleted, sweeps atomic.Int64
	crossTxns, prepares, crossAborts    atomic.Int64
	misroutes, shed                     atomic.Int64

	// resBufPool recycles SubmitBatch result buffers, keeping the steady
	// state submit path free of allocations. (Replies need no pool: the
	// shard mailbox's ring cell is the completion slot.)
	resBufPool sync.Pool
}

// New starts an engine with cfg's shard goroutines running. It is Open
// without the recovery report, and panics if recovery fails — which is only
// possible with a Config.Store whose medium is corrupt; use Open to handle
// that case.
func New(cfg Config) *Engine {
	e, _, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Open starts an engine. With a Config.Store it first recovers: every
// shard's scheduler is rebuilt from its checkpoint plus WAL tail, orphaned
// transactions are resolved (see recovery.go), and only then do the shard
// goroutines and the governor start. The report describes what was
// recovered (empty-but-non-nil without a Store).
func Open(cfg Config) (*Engine, *RecoveryReport, error) {
	cfg = cfg.withDefaults()
	if cfg.Store != nil && cfg.Store.NumShards() != cfg.Shards {
		return nil, nil, fmt.Errorf("engine: store has %d shards, config wants %d", cfg.Store.NumShards(), cfg.Shards)
	}
	e := &Engine{cfg: cfg, registry: newCrossRegistry(cfg.Shards)}
	e.routes.init()
	e.resBufPool.New = func() any { b := make([]Result, 0, 64); return &b }
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		sh := &shard{
			idx:  i,
			eng:  e,
			mb:   ring.NewMailbox[request, reply](cfg.QueueDepth),
			done: make(chan struct{}),
		}
		if cfg.Store != nil {
			//lint:ignore shardowned-access construction: the shard goroutine does not exist yet; its launch below happens-after this write
			sh.st = cfg.Store.Shard(i)
		}
		e.shards[i] = sh
	}
	rep, err := e.recover()
	if err != nil {
		return nil, nil, err
	}
	for _, sh := range e.shards {
		go sh.run()
	}
	if cfg.RetentionWatermark > 0 && cfg.Policy != nil {
		e.govStop = make(chan struct{})
		e.govDone = make(chan struct{})
		go e.governorLoop()
	}
	return e, rep, nil
}

// schedConfig is the scheduler configuration of shard i with the given
// cross tracker and emitter (recovery replays with both nil, then swaps in
// the live ones).
func (e *Engine) schedConfig(i int, tracker core.CrossTracker, em emit.Emitter) core.Config {
	var pol core.Policy
	if e.cfg.Policy != nil {
		pol = e.cfg.Policy()
	}
	return core.Config{Policy: pol, SweepManual: true, Cross: tracker, Emitter: em}
}

// liveTracker is the cross tracker a live shard scheduler consults. A
// single shard can never see a cross transaction; leaving the tracker nil
// keeps its scheduler entirely label-free.
func (e *Engine) liveTracker() core.CrossTracker {
	if e.cfg.Shards > 1 {
		return e.registry
	}
	return nil
}

// NumShards returns the number of shards.
func (e *Engine) NumShards() int { return len(e.shards) }

// partitionOf returns the shard owning entity x.
func (e *Engine) partitionOf(x model.Entity) int {
	return int(uint32(x)) % len(e.shards)
}

// beginRoute classifies a BEGIN's declared footprint without allocating:
// home is the owning shard of a partition-local footprint (or the ID-hash
// fallback for an undeclared one) and cross reports a footprint spanning
// more than one partition.
func (e *Engine) beginRoute(step model.Step) (home int, cross bool) {
	xs := step.Entities
	if len(xs) == 0 {
		// Undeclared footprint: hash the transaction ID; the transaction
		// must then happen to stay inside that partition or its first
		// foreign access will misroute-abort it.
		return int(uint64(step.Txn) % uint64(len(e.shards))), false
	}
	home = e.partitionOf(xs[0])
	for _, x := range xs[1:] {
		if e.partitionOf(x) != home {
			return home, true
		}
	}
	return home, false
}

// Submit routes one step to its shard and returns the engine-level result.
// Steps of one transaction must be submitted sequentially (each after the
// previous one's Result), as a real client session would.
func (e *Engine) Submit(step model.Step) Result {
	return e.SubmitPriority(context.Background(), step, PriorityNormal)
}

// SubmitCtx is Submit under a context: a BEGIN with an already-cancelled
// context is refused before it begins, an access step with a cancelled
// context aborts its transaction (releasing every shard's state), and a
// cross-partition final write observing cancellation between PREPARE and
// the decision aborts instead of committing. The Result's Err then wraps
// both ErrTxnAborted and the context's cause.
func (e *Engine) SubmitCtx(ctx context.Context, step model.Step) Result {
	return e.SubmitPriority(ctx, step, PriorityNormal)
}

// SubmitPriority is SubmitCtx with an admission-control priority for BEGIN
// steps (access steps ignore the priority — an admitted transaction is
// never shed).
func (e *Engine) SubmitPriority(ctx context.Context, step model.Step, pri Priority) Result {
	if e.closed.Load() {
		return Result{Step: step, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: stepErr(step, ErrClosed)}
	}
	e.submitted.Add(1)
	if ctx.Err() != nil {
		e.rejected.Add(1)
		if step.Kind != model.KindBegin {
			// Cancellation kills the whole transaction, not just this step.
			e.Abort(step.Txn)
		}
		// Cause, not Err: a derived context cancelled for a deadline still
		// reports context.DeadlineExceeded.
		return Result{Step: step, Outcome: OutcomeRejected, Aborted: step.Txn, CompletedTxn: model.NoTxn, Err: ctxErr(step, context.Cause(ctx))}
	}
	switch step.Kind {
	case model.KindBegin:
		return e.submitBegin(ctx, step, pri)
	case model.KindRead, model.KindWriteFinal:
		return e.submitAccess(ctx, step)
	default:
		return Result{Step: step, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn,
			Err: fmt.Errorf("engine: step kind %v not part of the basic model: %w", step.Kind, ErrProtocol)}
	}
}

// shardOverloaded reports whether admission control should shed a BEGIN
// bound for shard p.
func (e *Engine) shardOverloaded(p int) bool {
	w := e.cfg.OverloadWatermark
	return w > 0 && e.shards[p].depth.Load() >= int64(w)
}

// shedBegin refuses a BEGIN under admission control: nothing began, no
// queue slot was consumed, and the ID remains free. home is the overloaded
// shard the event is attributed to; N carries its backlog at the decision.
func (e *Engine) shedBegin(step model.Step, home int) Result {
	e.shed.Add(1)
	e.rejected.Add(1)
	if e.cfg.Bus != nil {
		e.cfg.Bus.Emit(emit.Event{Kind: emit.KindShed, Class: emit.ClassOverload,
			Shard: int32(home), Txn: step.Txn, N: e.shards[home].depth.Load()})
	}
	return Result{Step: step, Outcome: OutcomeRejected, Aborted: step.Txn, CompletedTxn: model.NoTxn, Err: stepErr(step, ErrOverload)}
}

// registerBegin routes a BEGIN: a cross-partition footprint fans out as
// sub-transactions (direct result), a duplicate or shed ID answers
// directly, and a partition-local BEGIN registers its route and reports
// the home shard the step must be applied on. The duplicate check runs
// before the shed check so a protocol bug is never misreported as a
// retryable overload.
func (e *Engine) registerBegin(ctx context.Context, step model.Step, pri Priority) (home int, direct bool, res Result) {
	// A reused TxnID sheds the reaped mark of its dead predecessor: the new
	// incarnation must never inherit a straggler verdict.
	e.reaped.remove(step.Txn)
	h, cross := e.beginRoute(step)
	if cross {
		return 0, true, e.beginCross(ctx, step, pri)
	}
	if !e.routes.storeNew(step.Txn, route{kind: routeLocal, shard: h, pri: pri}) {
		return 0, true, Result{Step: step, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn,
			Err: fmt.Errorf("engine: duplicate BEGIN for T%d: %w", step.Txn, ErrProtocol)}
	}
	if pri != PriorityHigh && e.shardOverloaded(h) {
		e.routes.delete(step.Txn)
		return 0, true, e.shedBegin(step, h)
	}
	return h, false, Result{}
}

// SubmitBatch submits a client's steps in order and returns one Result per
// step. Consecutive steps bound for the same shard are pipelined through a
// single shard round-trip, so a whole partition-local transaction (BEGIN,
// reads, final write) costs one queue hop instead of one per step. The
// ordering contract is Submit's: steps of one transaction must appear in
// order, and a client must not submit a transaction's next step elsewhere
// before the batch returns. Within one batch, a step pipelined behind its
// own transaction's final write or failed BEGIN is answered with the
// scheduler's protocol error rather than the engine's unknown-transaction
// rejection (per-step clients never see that window); either way the
// client learns the transaction is dead, and route bookkeeping is
// restored by the time the batch returns. Cross-partition steps interrupt
// the pipeline (each is a routed round-trip of its own, and a final write
// runs the two-phase commit) but never stall other clients' traffic.
func (e *Engine) SubmitBatch(steps []model.Step) []Result {
	return e.SubmitBatchInto(make([]Result, 0, len(steps)), steps)
}

// SubmitBatchInto is SubmitBatch appending into dst (pass a reused buffer
// with spare capacity to keep the submit path allocation-free). The batch
// path submits at PriorityNormal with no deadline; session clients needing
// per-transaction contexts or priorities use the per-step path.
func (e *Engine) SubmitBatchInto(dst []Result, steps []model.Step) []Result {
	if len(steps) == 0 {
		return dst
	}
	if e.closed.Load() {
		for _, st := range steps {
			dst = append(dst, Result{Step: st, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: ErrClosed})
		}
		return dst
	}
	// run is the current span of consecutive steps bound for one shard.
	runStart, runShard := -1, -1
	flush := func(end int) {
		if runStart >= 0 {
			dst = e.flushRun(dst, runShard, steps[runStart:end])
			runStart = -1
		}
	}
	extend := func(i, shard int) {
		if runStart >= 0 && shard != runShard {
			flush(i)
		}
		if runStart < 0 {
			runStart, runShard = i, shard
		}
	}
	for i, st := range steps {
		e.submitted.Add(1)
		switch st.Kind {
		case model.KindBegin:
			if _, live := e.routes.load(st.Txn); live {
				// The pending run may complete/abort this very ID; apply
				// it first so duplicate detection sees the final state.
				flush(i)
			}
			home, direct, res := e.registerBegin(context.Background(), st, PriorityNormal)
			if direct {
				flush(i)
				dst = append(dst, res)
				continue
			}
			extend(i, home)
		case model.KindRead, model.KindWriteFinal:
			r, ok := e.routes.load(st.Txn)
			if !ok {
				flush(i)
				e.rejected.Add(1)
				dst = append(dst, Result{Step: st, Outcome: OutcomeRejected, Aborted: st.Txn, CompletedTxn: model.NoTxn, Err: e.deadTxnErr(st)})
				continue
			}
			if r.kind == routeCross {
				// Routed individually; a final write runs the 2PC, so the
				// pending run must land first to preserve step order.
				flush(i)
				dst = append(dst, e.crossStep(context.Background(), st, r))
				continue
			}
			if foreign := e.misroutedStep(st, r.shard); foreign {
				flush(i)
				dst = append(dst, e.misroute(st, r))
				continue
			}
			extend(i, r.shard)
		default:
			flush(i)
			dst = append(dst, Result{Step: st, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn,
				Err: fmt.Errorf("engine: step kind %v not part of the basic model: %w", st.Kind, ErrProtocol)})
		}
	}
	flush(len(steps))
	return dst
}

// misroutedStep reports whether a partition-local transaction's step
// touches an entity outside its home shard.
func (e *Engine) misroutedStep(st model.Step, home int) bool {
	if st.Kind == model.KindRead {
		return e.partitionOf(st.Entity) != home
	}
	for _, x := range st.Entities {
		if e.partitionOf(x) != home {
			return true
		}
	}
	return false
}

// flushRun applies one same-shard span through a single reqBatch
// round-trip, appending its results to dst.
func (e *Engine) flushRun(dst []Result, shardIdx int, steps []model.Step) []Result {
	bufp := e.resBufPool.Get().(*[]Result)
	rep, ok := e.shards[shardIdx].do(request{kind: reqBatch, steps: steps, done: (*bufp)[:0]})
	if !ok {
		// Lost request (Close raced us). The buffer may still be written
		// by the shutdown drain — abandon it rather than recycle.
		for _, st := range steps {
			if st.Kind == model.KindBegin {
				e.routes.delete(st.Txn)
			}
			dst = append(dst, Result{Step: st, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: ErrClosed})
		}
		return dst
	}
	dst = append(dst, rep.results...)
	// Mirror submitBegin: a BEGIN the scheduler refused must drop the
	// route we registered, or the ID stays poisoned forever.
	for i, st := range steps {
		if st.Kind == model.KindBegin && i < len(rep.results) && rep.results[i].Outcome == OutcomeError {
			e.routes.delete(st.Txn)
		}
	}
	*bufp = rep.results[:0]
	e.resBufPool.Put(bufp)
	return dst
}

func (e *Engine) submitBegin(ctx context.Context, step model.Step, pri Priority) Result {
	home, direct, res := e.registerBegin(ctx, step, pri)
	if direct {
		return res
	}
	res = e.doStep(home, step)
	if res.Outcome == OutcomeError {
		// The scheduler refused to start the transaction (e.g. its ID
		// collides with a retained completed transaction): drop the route
		// we just created, or the ID stays poisoned forever.
		e.routes.delete(step.Txn)
	}
	return res
}

// doStep runs one step on a shard, mapping a lost request (Close raced the
// caller) to ErrClosed.
func (e *Engine) doStep(shard int, step model.Step) Result {
	rep, ok := e.shards[shard].do(request{kind: reqStep, step: step})
	if !ok {
		return Result{Step: step, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: ErrClosed}
	}
	return rep.res
}

// deadTxnErr is the error for a step addressed to a transaction with no
// live route: stragglerErr when the retention governor reaped it (so the
// session learns why), plain ErrTxnAborted otherwise.
func (e *Engine) deadTxnErr(step model.Step) error {
	if e.reaped.contains(step.Txn) {
		return stragglerErr(step)
	}
	return stepErr(step, ErrTxnAborted)
}

func (e *Engine) submitAccess(ctx context.Context, step model.Step) Result {
	r, ok := e.routes.load(step.Txn)
	if !ok {
		e.rejected.Add(1)
		return Result{Step: step, Outcome: OutcomeRejected, Aborted: step.Txn, CompletedTxn: model.NoTxn, Err: e.deadTxnErr(step)}
	}
	if r.kind == routeCross {
		return e.crossStep(ctx, step, r)
	}
	if e.misroutedStep(step, r.shard) {
		return e.misroute(step, r)
	}
	return e.doStep(r.shard, step)
}

// misroute aborts a partition-local transaction that touched a foreign
// entity: the partition discipline is what makes per-shard acyclicity
// equal global CSR for local transactions, so it must be enforced, not
// trusted.
func (e *Engine) misroute(step model.Step, r route) Result {
	e.misroutes.Add(1)
	e.rejected.Add(1)
	if e.cfg.Bus != nil {
		e.cfg.Bus.Emit(emit.Event{Kind: emit.KindVeto, Class: emit.ClassMisroute,
			Shard: int32(r.shard), Txn: step.Txn})
	}
	if e.cfg.Log != nil {
		// A rejected step marks the transaction aborted in the trace.
		e.cfg.Log.Append(step, false)
	}
	e.shards[r.shard].do(request{kind: reqAbortOne, step: model.Step{Txn: step.Txn}})
	e.routes.delete(step.Txn)
	return Result{Step: step, Outcome: OutcomeRejected, Aborted: step.Txn, CompletedTxn: model.NoTxn, Err: stepErr(step, ErrMisroute)}
}

// Abort aborts a live transaction (e.g. on client disconnect). For a
// cross-partition transaction it releases the sub-transactions — pins
// included — on every participant, whatever state the transaction is in.
// It returns false if the transaction is unknown or already decided.
func (e *Engine) Abort(id model.TxnID) bool {
	r, ok := e.routes.load(id)
	if !ok {
		return false
	}
	if r.kind == routeCross {
		return e.crossClientAbort(r.ct)
	}
	e.shards[r.shard].do(request{kind: reqAbortOne, step: model.Step{Txn: id}})
	e.routes.delete(id)
	if e.cfg.Log != nil {
		e.cfg.Log.MarkAborted(id)
	}
	return true
}

// Stats returns a snapshot of the aggregate counters. It is safe to call
// concurrently with Submits and after Close.
func (e *Engine) Stats() Stats {
	s := Stats{
		Submitted:   e.submitted.Load(),
		Accepted:    e.accepted.Load(),
		Rejected:    e.rejected.Load(),
		Completed:   e.completed.Load(),
		Aborted:     e.aborted.Load(),
		Deleted:     e.deleted.Load(),
		Sweeps:      e.sweeps.Load(),
		CrossTxns:   e.crossTxns.Load(),
		Shed:        e.shed.Load(),
		Reaped:      e.reapedN.Load(),
		Prepares:    e.prepares.Load(),
		CrossAborts: e.crossAborts.Load(),
		Misroutes:   e.misroutes.Load(),
	}
	for _, sh := range e.shards {
		var cs core.Stats
		if rep, ok := sh.do(request{kind: reqStats}); ok {
			cs = rep.stats
		} else {
			// The shard shut down (do only fails once done is closed, and
			// final is written before that), so its last snapshot is valid.
			//lint:ignore shardowned-access read after <-sh.done: final is written before close(done), which do's failure proves happened
			cs = sh.final
		}
		s.PerShard = append(s.PerShard, cs)
		s.Merged.Merge(cs)
		// A shard that shut down serves nothing: its backlog is dead, its
		// depth gauge may hold a phantom +1 from a submit that raced the
		// shutdown drain, and a prepare whose decision was cut off by Close
		// would pin the prepared gauge forever — so report zero rather than
		// the stale counters.
		select {
		case <-sh.done:
			s.QueueDepth = append(s.QueueDepth, 0)
			s.PreparedByShard = append(s.PreparedByShard, 0)
		default:
			s.QueueDepth = append(s.QueueDepth, sh.depth.Load())
			s.PreparedByShard = append(s.PreparedByShard, sh.preparedN.Load())
		}
	}
	return s
}

// QueueDepths returns the instantaneous per-shard submission backlog
// without a shard round-trip — the same gauge admission control sheds on
// (Stats.QueueDepth fetches it alongside the heavier scheduler counters).
// Dead shards report zero.
func (e *Engine) QueueDepths() []int64 {
	out := make([]int64, len(e.shards))
	for i, sh := range e.shards {
		select {
		case <-sh.done:
		default:
			out[i] = sh.depth.Load()
		}
	}
	return out
}

// RetainedCounts returns the per-shard count of retained completed
// transactions (the storage the deletion policy reclaims), lock-free like
// QueueDepths. The gauge is refreshed by the shard goroutine after every
// batch, so it trails the scheduler by at most one batch. Dead shards
// report zero: a closed engine retains nothing a client can reach.
func (e *Engine) RetainedCounts() []int64 {
	out := make([]int64, len(e.shards))
	for i, sh := range e.shards {
		select {
		case <-sh.done:
		default:
			out[i] = sh.retainedN.Load()
		}
	}
	return out
}

// PreparedCounts returns the per-shard count of prepared-but-undecided 2PC
// sub-transactions (each pins its node against deletion), lock-free like
// QueueDepths. Dead shards report zero.
func (e *Engine) PreparedCounts() []int64 {
	out := make([]int64, len(e.shards))
	for i, sh := range e.shards {
		select {
		case <-sh.done:
		default:
			out[i] = sh.preparedN.Load()
		}
	}
	return out
}

// Gauges snapshots the per-shard gauges in the shape the metrics endpoint
// polls at scrape time (emit.GaugeSource).
func (e *Engine) Gauges() emit.GaugeSnapshot {
	gs := emit.GaugeSnapshot{
		QueueDepth:         e.QueueDepths(),
		Retained:           e.RetainedCounts(),
		Prepared:           e.PreparedCounts(),
		RetentionWatermark: int64(e.cfg.RetentionWatermark),
	}
	if e.cfg.Store != nil {
		n := len(e.shards)
		gs.WALAppendedBytes = make([]int64, n)
		gs.WALFsyncs = make([]int64, n)
		gs.CheckpointSeq = make([]int64, n)
		for i := 0; i < n; i++ {
			st := e.cfg.Store.Shard(i).Stats()
			gs.WALAppendedBytes[i] = st.AppendedBytes
			gs.WALFsyncs[i] = st.Fsyncs
			gs.CheckpointSeq[i] = int64(st.CheckpointSeq)
		}
	}
	return gs
}

// Close stops the shard goroutines. Submits still in flight when Close is
// called receive ErrClosed; callers should stop submitting first.
func (e *Engine) Close() {
	if !e.closed.CompareAndSwap(false, true) {
		return
	}
	if e.govStop != nil {
		// Stop the governor before the shards: a reap mid-shutdown would
		// race the shard drain for no benefit.
		close(e.govStop)
		<-e.govDone
	}
	for _, sh := range e.shards {
		sh.trySend(request{kind: reqStop})
	}
	for _, sh := range e.shards {
		<-sh.done
	}
}
