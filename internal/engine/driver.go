package engine

import "repro/internal/model"

// StepSource is a stream of scheduler steps with abort feedback —
// satisfied structurally by workload.Generator, so workload generators
// plug in without an import in either direction.
type StepSource interface {
	// Next returns the next step, or ok=false when the stream is done.
	Next() (step model.Step, ok bool)
	// NotifyAbort tells the source the engine aborted id, so it must
	// discard the transaction's remaining steps.
	NotifyAbort(id model.TxnID)
}

// Drive pumps a step source into the engine through SubmitBatchInto,
// batchSize steps per round-trip, reusing its step and result buffers so
// the submission loop allocates nothing in steady state. It reacts to
// rejections the way a per-step client session would: a rejected or
// errored step means the transaction is dead (cycle abort, misroute,
// overload shed, or engine shutdown), so the source discards its remaining
// plan. Because a whole batch is decided before the source hears about
// aborts, steps of a freshly dead transaction may still be in flight; the
// engine rejects them as unknown, and the abort is reported to the source
// only once. Returns the number of steps submitted.
func (e *Engine) Drive(src StepSource, batchSize int) int {
	if batchSize < 1 {
		batchSize = 1
	}
	steps := make([]model.Step, 0, batchSize)
	results := make([]Result, 0, batchSize)
	notified := make(map[model.TxnID]bool)
	submitted := 0
	for {
		steps = steps[:0]
		for len(steps) < batchSize {
			st, ok := src.Next()
			if !ok {
				break
			}
			steps = append(steps, st)
		}
		if len(steps) == 0 {
			return submitted
		}
		submitted += len(steps)
		results = e.SubmitBatchInto(results[:0], steps)
		for _, r := range results {
			switch r.Outcome {
			case OutcomeAccepted:
			default:
				if !notified[r.Step.Txn] {
					notified[r.Step.Txn] = true
					src.NotifyAbort(r.Step.Txn)
				}
			}
		}
		// Once notified, the source stops emitting the dead transaction's
		// steps, so duplicates can only occur within one batch: reset the
		// dedup set instead of letting it grow for the life of the drive.
		clear(notified)
	}
}
