package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
)

// TestResultErrTaxonomyRoundTrip produces every member of the error
// taxonomy through the real engine paths and asserts it survives the
// wrapping with step context — errors.Is must hold end to end, and every
// non-accepted Result must carry a non-nil Err.
func TestResultErrTaxonomyRoundTrip(t *testing.T) {
	eng := New(Config{Shards: 2})
	defer eng.Close()
	must := func(res Result) {
		t.Helper()
		if !res.Accepted() || res.Err != nil {
			t.Fatalf("%v: %v (%v)", res.Step, res.Outcome, res.Err)
		}
	}

	// ErrCycle: the classic two-transaction rw-cycle on one shard.
	must(eng.Submit(model.BeginDeclared(1, 0, 2)))
	must(eng.Submit(model.BeginDeclared(2, 0, 2)))
	must(eng.Submit(model.Read(1, 0)))
	must(eng.Submit(model.Read(2, 2)))
	must(eng.Submit(model.WriteFinal(2, 0)))
	res := eng.Submit(model.WriteFinal(1, 2))
	if res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrCycle) {
		t.Fatalf("local cycle: %v (%v), want ErrCycle", res.Outcome, res.Err)
	}

	// ErrTxnAborted: a step for the freshly-dead transaction.
	res = eng.Submit(model.Read(1, 0))
	if !errors.Is(res.Err, ErrTxnAborted) {
		t.Fatalf("dead-txn step err = %v, want ErrTxnAborted", res.Err)
	}

	// ErrMisroute: a declared partition-local transaction strays.
	must(eng.Submit(model.BeginDeclared(3, 0)))
	res = eng.Submit(model.Read(3, 1))
	if !errors.Is(res.Err, ErrMisroute) {
		t.Fatalf("misroute err = %v, want ErrMisroute", res.Err)
	}

	// ErrCrossCycle: two cross transactions whose shard-local paths compose
	// into a global cycle; the registry vetoes the second prepare.
	must(eng.Submit(model.BeginDeclared(10, 0, 1)))
	must(eng.Submit(model.BeginDeclared(11, 0, 1)))
	must(eng.Submit(model.Read(10, 0)))
	must(eng.Submit(model.Read(11, 1)))
	must(eng.Submit(model.WriteFinal(11, 0)))
	res = eng.Submit(model.WriteFinal(10, 1))
	if res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrCrossCycle) {
		t.Fatalf("cross cycle: %v (%v), want ErrCrossCycle", res.Outcome, res.Err)
	}

	// ErrProtocol: duplicate BEGIN (live ID), and a step kind outside the
	// basic model.
	must(eng.Submit(model.BeginDeclared(20, 0)))
	res = eng.Submit(model.BeginDeclared(20, 0))
	if res.Outcome != OutcomeError || !errors.Is(res.Err, ErrProtocol) {
		t.Fatalf("duplicate begin: %v (%v), want ErrProtocol", res.Outcome, res.Err)
	}
	res = eng.Submit(model.Write(20, 0))
	if !errors.Is(res.Err, ErrProtocol) {
		t.Fatalf("bad kind err = %v, want ErrProtocol", res.Err)
	}

	// ErrTxnAborted via context: an access step under a cancelled context
	// aborts its transaction and reports both the taxonomy member and the
	// context cause.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res = eng.SubmitCtx(ctx, model.Read(20, 0))
	if res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrTxnAborted) || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("cancelled-ctx step: %v (%v), want ErrTxnAborted + context.Canceled", res.Outcome, res.Err)
	}
	if res = eng.Submit(model.Read(20, 0)); !errors.Is(res.Err, ErrTxnAborted) {
		t.Fatalf("T20 should be dead after ctx abort, got %v", res.Err)
	}
	// A BEGIN under a cancelled context never starts.
	res = eng.SubmitCtx(ctx, model.BeginDeclared(21, 0))
	if res.Outcome != OutcomeRejected || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("cancelled-ctx begin: %v (%v)", res.Outcome, res.Err)
	}
	if res = eng.Submit(model.BeginDeclared(21, 0)); !res.Accepted() {
		t.Fatalf("ID 21 should be free after refused begin: %v", res.Err)
	}

	// ErrClosed.
	eng2 := New(Config{Shards: 1})
	eng2.Close()
	if res = eng2.Submit(model.Begin(1)); !errors.Is(res.Err, ErrClosed) {
		t.Fatalf("closed err = %v, want ErrClosed", res.Err)
	}
}

// TestCtxCancelBetweenPrepareAndDecision cancels a cross-partition final
// write's context in the exact window where every participant holds a
// prepared-but-undecided (pinned) sub-transaction. The 2PC driver must
// decide ABORT: pins released, PreparedByShard drained to zero, and no
// cross-arc registry entry left behind. Run under -race in CI.
func TestCtxCancelBetweenPrepareAndDecision(t *testing.T) {
	eng := New(Config{Shards: 2})
	defer eng.Close()
	must := func(res Result) {
		t.Helper()
		if !res.Accepted() {
			t.Fatalf("%v: %v (%v)", res.Step, res.Outcome, res.Err)
		}
	}
	must(eng.Submit(model.BeginDeclared(1, 0, 1)))
	must(eng.Submit(model.Read(1, 0)))
	must(eng.Submit(model.Read(1, 1)))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	testHookPrepared = func(id model.TxnID) {
		if id == 1 {
			cancel()
		}
	}
	defer func() { testHookPrepared = nil }()

	res := eng.SubmitCtx(ctx, model.WriteFinal(1, 0, 1))
	if res.Outcome != OutcomeRejected || res.Aborted != 1 {
		t.Fatalf("final under mid-2PC cancel: %v (%v), want rejected abort of T1", res.Outcome, res.Err)
	}
	if !errors.Is(res.Err, ErrTxnAborted) || !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err = %v, want ErrTxnAborted + context.Canceled", res.Err)
	}

	s := eng.Stats()
	if s.Prepares != 2 {
		t.Fatalf("Prepares = %d, want 2 (both participants voted before the cancel)", s.Prepares)
	}
	for i, p := range s.PreparedByShard {
		if p != 0 {
			t.Fatalf("shard %d still pins %d prepared sub-transactions after the ctx abort", i, p)
		}
	}
	if s.CrossAborts != 1 || s.Completed != 0 {
		t.Fatalf("stats = %+v, want 1 cross abort and 0 completions", s)
	}

	// No registry entry leaked (and no stale cleanliness debt).
	eng.registry.mu.Lock()
	live := len(eng.registry.txns)
	eng.registry.mu.Unlock()
	if live != 0 {
		t.Fatalf("cross-arc registry still tracks %d transactions after the abort", live)
	}
	for i := range eng.registry.cleanPending {
		if n := eng.registry.cleanPending[i].Load(); n != 0 {
			t.Fatalf("shard %d cleanPending = %d, want 0", i, n)
		}
	}

	// The ID is fully released: a fresh incarnation begins and commits.
	testHookPrepared = nil
	must(eng.Submit(model.BeginDeclared(1, 0, 1)))
	res = eng.Submit(model.WriteFinal(1, 0, 1))
	if !res.Accepted() || res.CompletedTxn != 1 {
		t.Fatalf("reused T1 final: %v (%v)", res.Outcome, res.Err)
	}
}

// blockingPolicy wedges its shard inside a GC sweep until the gate is
// closed — a deterministic way to pile up a submission backlog.
type blockingPolicy struct{ gate chan struct{} }

func (p *blockingPolicy) Name() string         { return "test-block" }
func (p *blockingPolicy) Sweep(sw *core.Sweep) { <-p.gate }

// TestOverloadShedsBegins saturates a shard (its goroutine wedged in a
// sweep, submitters stacked on the queue) and asserts that admission
// control sheds further BEGINs with ErrOverload instead of blocking, that
// a PriorityHigh BEGIN is exempt, and that the engine drains cleanly once
// the shard resumes — no deadlock anywhere.
func TestOverloadShedsBegins(t *testing.T) {
	const watermark = 4
	gate := make(chan struct{})
	eng := New(Config{
		Shards:                1,
		Policy:                func() core.Policy { return &blockingPolicy{gate: gate} },
		SweepEveryCompletions: 1,
		BatchSize:             1,
		QueueDepth:            64,
		OverloadWatermark:     watermark,
	})
	defer eng.Close()

	// Complete one transaction; the post-batch sweep then wedges the shard.
	if res := eng.Submit(model.BeginDeclared(1, 0)); !res.Accepted() {
		t.Fatalf("begin: %v (%v)", res.Outcome, res.Err)
	}
	if res := eng.Submit(model.WriteFinal(1, 0)); !res.Accepted() {
		t.Fatalf("final: %v (%v)", res.Outcome, res.Err)
	}

	// Stack submitters on the wedged shard until the backlog passes the
	// watermark. The first submitter goes alone so its ID (10) is known to
	// be routed before the duplicate check below.
	var wg sync.WaitGroup
	const stacked = watermark + 2
	results := make([]Result, stacked)
	spawn := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = eng.SubmitPriority(context.Background(), model.BeginDeclared(model.TxnID(10+i), 0), PriorityHigh)
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	spawn(0)
	for eng.shards[0].depth.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first submitter never enqueued")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < stacked; i++ {
		spawn(i)
	}
	for eng.shards[0].depth.Load() < watermark {
		if time.Now().After(deadline) {
			t.Fatal("backlog never reached the watermark")
		}
		time.Sleep(time.Millisecond)
	}

	// A normal-priority BEGIN is shed immediately — it neither blocks nor
	// consumes a queue slot.
	res := eng.Submit(model.BeginDeclared(99, 0))
	if res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrOverload) {
		t.Fatalf("overloaded begin: %v (%v), want rejected/ErrOverload", res.Outcome, res.Err)
	}
	// A duplicate of a routed ID is a protocol bug even under overload —
	// the saturation must not relabel it as retryable.
	res = eng.Submit(model.BeginDeclared(10, 0))
	if res.Outcome != OutcomeError || !errors.Is(res.Err, ErrProtocol) || errors.Is(res.Err, ErrOverload) {
		t.Fatalf("duplicate begin under overload: %v (%v), want ErrProtocol", res.Outcome, res.Err)
	}
	// The shed ID was never consumed: admitting it later must succeed.
	close(gate)
	wg.Wait()
	for i, r := range results {
		if !r.Accepted() {
			t.Fatalf("stacked high-priority begin %d: %v (%v) — the watermark must not shed PriorityHigh", i, r.Outcome, r.Err)
		}
	}
	if res := eng.Submit(model.BeginDeclared(99, 0)); !res.Accepted() {
		t.Fatalf("begin after drain: %v (%v)", res.Outcome, res.Err)
	}
	s := eng.Stats()
	if s.Shed != 1 {
		t.Fatalf("Stats.Shed = %d, want 1", s.Shed)
	}
}
