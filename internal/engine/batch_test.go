package engine

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSubmitBatchSemantics pins SubmitBatch to Submit's semantics over a
// mixed pipeline: two interleaved local transactions, a cross-partition
// transaction (immediate sub-transaction steps + two-phase-commit final), a
// step for an unknown transaction — and, since 2PC, the concurrent local T2
// surviving the cross commit.
func TestSubmitBatchSemantics(t *testing.T) {
	eng := New(Config{Shards: 4})
	defer eng.Close()

	steps := []model.Step{
		model.BeginDeclared(1, 0, 4), // shard 0 local
		model.BeginDeclared(2, 1),    // shard 1 local
		model.Read(1, 4),
		model.Read(2, 1),
		model.BeginDeclared(3, 2, 3), // cross partitions 2,3
		model.Read(3, 2),             // applies on shard 2 immediately
		model.WriteFinal(1, 0),
		model.WriteFinal(3, 3), // two-phase commit on shards 2 and 3
		model.Read(99, 0),      // unknown transaction
		model.WriteFinal(2, 1), // T2 survived the cross commit
	}
	results := eng.SubmitBatch(steps)
	if len(results) != len(steps) {
		t.Fatalf("got %d results for %d steps", len(results), len(steps))
	}
	want := []Outcome{
		OutcomeAccepted, OutcomeAccepted, OutcomeAccepted, OutcomeAccepted,
		OutcomeAccepted, OutcomeAccepted, OutcomeAccepted, OutcomeAccepted,
		OutcomeRejected, OutcomeAccepted,
	}
	for i, w := range want {
		if results[i].Outcome != w {
			t.Fatalf("step %d (%v): outcome %v (err=%v), want %v",
				i, steps[i], results[i].Outcome, results[i].Err, w)
		}
	}
	if results[6].CompletedTxn != 1 || results[7].CompletedTxn != 3 || results[9].CompletedTxn != 2 {
		t.Fatalf("completions: %v / %v / %v, want T1 / T3 / T2",
			results[6].CompletedTxn, results[7].CompletedTxn, results[9].CompletedTxn)
	}
	if !errors.Is(results[8].Err, ErrTxnAborted) {
		t.Fatalf("unknown-txn step err = %v, want ErrTxnAborted", results[8].Err)
	}
	s := eng.Stats()
	if s.BarrierKills != 0 {
		t.Fatalf("BarrierKills = %d, want 0 under 2PC", s.BarrierKills)
	}
	if s.Completed != 3 {
		t.Fatalf("Completed = %d, want 3", s.Completed)
	}
	if s.Prepares != 2 {
		t.Fatalf("Prepares = %d, want 2 (one per participant of T3)", s.Prepares)
	}
}

// TestSubmitBatchMisroute: a foreign access mid-batch aborts the
// transaction exactly as per-step submission would, and the batch
// continues past it.
func TestSubmitBatchMisroute(t *testing.T) {
	eng := New(Config{Shards: 4})
	defer eng.Close()
	results := eng.SubmitBatch([]model.Step{
		model.BeginDeclared(1, 0),
		model.Read(1, 0),
		model.Read(1, 3), // partition 3: misroute, aborts T1
		model.Read(1, 0), // now unknown
		model.BeginDeclared(2, 0),
		model.WriteFinal(2, 0),
	})
	if results[2].Outcome != OutcomeRejected || !errors.Is(results[2].Err, ErrMisroute) {
		t.Fatalf("misroute step: %v (%v)", results[2].Outcome, results[2].Err)
	}
	if results[3].Outcome != OutcomeRejected || !errors.Is(results[3].Err, ErrTxnAborted) {
		t.Fatalf("post-abort step: %v (%v)", results[3].Outcome, results[3].Err)
	}
	if !results[5].Accepted() || results[5].CompletedTxn != 2 {
		t.Fatalf("T2 final: %v, CompletedTxn=%v", results[5].Outcome, results[5].CompletedTxn)
	}
}

// TestSubmitBatchDuplicateBegin: a BEGIN reusing a still-routed ID errors
// without disturbing the live transaction, and a BEGIN whose ID collides
// with a retained completed transaction fails without poisoning the route
// (the SubmitBatch analogue of TestReusedIDDoesNotPoisonRoute).
func TestSubmitBatchDuplicateBegin(t *testing.T) {
	eng := New(Config{Shards: 2}) // nogc: completed txns stay retained
	defer eng.Close()
	results := eng.SubmitBatch([]model.Step{
		model.BeginDeclared(4, 0),
		model.BeginDeclared(4, 0), // duplicate while live
		model.WriteFinal(4, 0),
		model.BeginDeclared(4, 0), // reuse of a retained completed ID
		model.Read(4, 0),          // must be unknown, not routed
	})
	if results[1].Outcome != OutcomeError {
		t.Fatalf("duplicate live begin: %v, want error", results[1].Outcome)
	}
	if !results[2].Accepted() || results[2].CompletedTxn != 4 {
		t.Fatalf("final: %v", results[2].Outcome)
	}
	if results[3].Outcome != OutcomeError {
		t.Fatalf("retained-ID begin: %v, want error", results[3].Outcome)
	}
	// The read was pipelined in the same shard run as the failed BEGIN, so
	// it reaches the scheduler and reports its protocol error (documented
	// batch divergence: per-step clients would see rejected/ErrTxnAborted).
	if results[4].Outcome != OutcomeError {
		t.Fatalf("read after failed reuse: %v (%v), want error", results[4].Outcome, results[4].Err)
	}
	// What matters is that the failed BEGIN did not poison the route: a
	// later per-step submission must see the ID as unknown, not routed.
	res := eng.Submit(model.Read(4, 0))
	if res.Outcome != OutcomeRejected || !errors.Is(res.Err, ErrTxnAborted) {
		t.Fatalf("read after batch: %v (%v), want rejected/ErrTxnAborted", res.Outcome, res.Err)
	}
}

// TestSubmitBatchConcurrentCSR hammers SubmitBatch from many goroutines —
// through Engine.Drive fed by workload generators — with mixed local and
// cross-partition traffic and a GC policy, then replays the accepted
// subschedule through the offline CSR referee. Run under -race this is
// the batch path's data-race and safety oracle.
func TestSubmitBatchConcurrentCSR(t *testing.T) {
	log := trace.NewSafeLog()
	eng := New(Config{
		Shards:                4,
		Policy:                func() core.Policy { return core.GreedyC1{} },
		SweepEveryCompletions: 3,
		BatchSize:             16,
		Log:                   log,
	})
	defer eng.Close()

	const drivers = 4
	var wg sync.WaitGroup
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			gen := workload.New(workload.Config{
				Entities:         64,
				Txns:             150,
				MaxActive:        4,
				Shards:           4,
				CrossFrac:        0.05,
				DeclareFootprint: true,
				BaseTxnID:        model.TxnID(d * 1_000_000),
				RestartAborted:   true,
				Seed:             int64(500 + d),
			})
			eng.Drive(gen, 8)
		}(d)
	}
	wg.Wait()

	if err := log.CheckAcceptedCSR(); err != nil {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.Completed == 0 || s.Deleted == 0 {
		t.Fatalf("batched run did no work: %+v", s)
	}
	if s.CrossTxns == 0 {
		t.Error("no cross-partition transactions exercised through batches")
	}
	// Logical engine counters vs per-participant scheduler counters: the
	// per-shard sums dominate whenever cross transactions ran (one
	// sub-transaction per participant).
	if s.Accepted > s.Merged.Accepted || s.Completed > s.Merged.Completed {
		t.Fatalf("engine/scheduler counter mismatch: %+v vs %+v", s, s.Merged)
	}
	if s.BarrierKills != 0 {
		t.Fatalf("BarrierKills = %d, want 0 under 2PC", s.BarrierKills)
	}
	if len(s.QueueDepth) != 4 {
		t.Fatalf("QueueDepth has %d entries, want 4", len(s.QueueDepth))
	}
	for i, d := range s.QueueDepth {
		if d != 0 {
			t.Errorf("shard %d: queue depth %d after quiescence, want 0", i, d)
		}
	}
	t.Logf("batched: %d accepted, %d completed, %d deleted, %d cross, %d prepares, %d cross-aborts",
		s.Accepted, s.Completed, s.Deleted, s.CrossTxns, s.Prepares, s.CrossAborts)
}

// TestSubmitBatchEquivalentToPerStep replays the same single-threaded
// workload through per-step Submit and through SubmitBatch and demands
// identical outcomes and identical engine counters (concurrency aside,
// batching is pure plumbing).
func TestSubmitBatchEquivalentToPerStep(t *testing.T) {
	build := func() (*Engine, *workload.Gen) {
		eng := New(Config{
			Shards:                2,
			Policy:                func() core.Policy { return core.GreedyC1{} },
			SweepEveryCompletions: 2,
		})
		gen := workload.New(workload.Config{
			Entities: 32, Txns: 200, MaxActive: 4,
			Shards: 2, DeclareFootprint: true, Seed: 9,
		})
		return eng, gen
	}

	engA, genA := build()
	defer engA.Close()
	var perStep []Outcome
	for {
		st, ok := genA.Next()
		if !ok {
			break
		}
		res := engA.Submit(st)
		perStep = append(perStep, res.Outcome)
		switch res.Outcome {
		case OutcomeAccepted:
		default:
			genA.NotifyAbort(st.Txn)
		}
	}

	engB, genB := build()
	defer engB.Close()
	var batched []Outcome
	steps := make([]model.Step, 0, 1)
	for {
		st, ok := genB.Next()
		if !ok {
			break
		}
		// Batch of one: same information flow as per-step, so the streams
		// stay step-for-step comparable even under aborts.
		steps = append(steps[:0], st)
		res := engB.SubmitBatch(steps)[0]
		batched = append(batched, res.Outcome)
		switch res.Outcome {
		case OutcomeAccepted:
		default:
			genB.NotifyAbort(st.Txn)
		}
	}

	if len(perStep) != len(batched) {
		t.Fatalf("step counts diverged: %d vs %d", len(perStep), len(batched))
	}
	for i := range perStep {
		if perStep[i] != batched[i] {
			t.Fatalf("outcome %d diverged: per-step %v vs batched %v", i, perStep[i], batched[i])
		}
	}
	sa, sb := engA.Stats(), engB.Stats()
	if sa.Accepted != sb.Accepted || sa.Completed != sb.Completed || sa.Aborted != sb.Aborted {
		t.Fatalf("counters diverged: per-step %+v vs batched %+v", sa, sb)
	}
}
