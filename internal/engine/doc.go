// Package engine is the concurrent, sharded transaction-processing engine:
// the paper's conflict-graph scheduler with online deletion (packages core
// and graph) lifted from single-threaded library code to a thread-safe
// service that absorbs sustained traffic from many client goroutines.
//
// # Architecture
//
// The entity space is hash-partitioned: entity x belongs to partition
// x mod N. Each of the N shards is owned by exactly one goroutine (the
// single-writer discipline) running its own core.Scheduler with its own
// conflict graph and deletion policy. Clients call Submit, which routes the
// step to its shard over a buffered channel; the shard goroutine drains
// steps in batches, applies them, replies, and runs the deletion-policy
// sweep between batches (amortized GC off the per-step path, cadence set
// by Config.SweepEveryCompletions).
//
// A transaction declares its entity footprint on BEGIN
// (model.BeginDeclared). A footprint inside one partition routes the
// transaction to that shard for its whole life; the engine enforces the
// partition discipline by rejecting (and aborting) any later step that
// touches a foreign partition. A footprint spanning partitions marks the
// transaction cross-partition: it runs as one sub-transaction per
// participating shard, all sharing the logical TxnID, and commits through
// the two-phase protocol below.
//
// # Why per-shard acyclicity is global CSR — the 2PC argument
//
// Two transactions conflict only if they access a common entity. Local
// transactions of different shards touch disjoint entity sets, so the
// global conflict graph restricted to local transactions is the disjoint
// union of the per-shard graphs, and per-shard acceptance (each shard
// accepts only acyclic extensions, the paper's Rules 1–3) is exactly
// global conflict serializability for them.
//
// Cross-partition transactions break the disjointness: fold each logical
// transaction's sub-nodes into one node and a global cycle can thread
// through several shard graphs while every individual graph stays acyclic.
// Three observations restore the argument without ever freezing the world:
//
//  1. Any global cycle not contained in one shard graph must change shards
//     at nodes present in more than one graph — cross transactions — and a
//     simple cycle must pass through at least two distinct ones. So it
//     decomposes into shard-local paths between sub-nodes of cross
//     transactions.
//
//  2. Shard-local reachability from cross sub-nodes is tracked exactly, as
//     it forms: every node carries the set of cross transactions whose
//     sub-node reaches it within that shard (its cross-ancestor labels,
//     core/subtxn.go), sourced at sub-nodes and flooded forward the moment
//     an arc is added. When label X first lands on the sub-node of a
//     different cross transaction Y, a shard-local path X→…→Y exists: an
//     inter-shard reach-arc X→Y, reported to the engine's cross-arc
//     registry (cross2pc.go).
//
//  3. The registry keeps the reach-arcs among live cross transactions and
//     refuses the one that would close a registry cycle — the acting step
//     is rejected and only its own transaction aborts. By (1)+(2) every
//     global cycle would have to complete a registry cycle first, so no
//     accepted schedule contains one. The refusal lands wherever the last
//     connecting arc appears: at PREPARE (the classic two-transaction case
//     — the cross transaction itself aborts, voting no), or at a local
//     step whose new arcs complete the last shard-local path (that local
//     transaction aborts, exactly the paper's cycle-rejection semantics).
//
// The commit itself is a two-phase protocol driven from the submitting
// goroutine: PREPARE each participant (the shard runs Rule 3 on its slice
// of the write set, places the arcs, pins the sub-node, and votes), then
// COMMIT or ABORT everywhere. Participants never pause — the prepared pin
// freezes the sub-transaction, not the shard — and shards never wait on
// each other, so concurrent two-phase commits cannot deadlock and
// non-participants are untouched: Stats.BarrierKills stays zero by
// construction, asserted across the test suite.
//
// # Deletion under sharding — C1/C2 lifted to logical transactions
//
// Each shard garbage-collects its own graph with its own policy instance;
// C1/C2 are properties of a scheduler's reduced graph and apply per shard
// unchanged — but per-shard C1 cannot see inter-shard paths, so deletion
// is additionally gated (core.Sweep refuses) for:
//
//   - prepared-but-undecided sub-nodes (pinned in the graph arena);
//   - sub-nodes of registry-tracked logical transactions;
//   - any node carrying a live cross-ancestor label, since reducing it
//     would stop the label from reaching future successors and hide a
//     reach-arc from the registry.
//
// The registry retires a cross transaction T — unpinning all of the above
// and letting plain per-shard C1/C2 resume — once (a) T is decided, (b)
// every participant reports T's sub-node free of active ancestors, and (c)
// no live cross transaction still reaches T (registry in-degree zero).
// (a)+(b) freeze T's ancestor sets: arcs only ever point into acting
// nodes, so a completed sub-node all of whose ancestors are completed can
// never gain new ones, and no new label can arrive at it (its carrier
// would already be an active ancestor). (c) covers cycles that would use
// T's *existing* through-paths while only the return path is new: the
// reach-arcs into and out of T must stay until nothing live can re-enter
// it. Retirement cascades along out-arcs, so chains of decided
// transactions drain as their predecessors expire.
//
// The offline referee (trace.CheckAcceptedCSR) closes the loop end to end:
// sub-transactions log under the logical TxnID, so the referee rebuilds
// the conflict graph over logical transactions from scratch and verifies
// acyclicity in the randomized oracles, including the cross-heavy -race
// oracle (TestOracleCrossHeavyCSR).
package engine
