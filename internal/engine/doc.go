// Package engine is the concurrent, sharded transaction-processing engine:
// the paper's conflict-graph scheduler with online deletion (packages core
// and graph) lifted from single-threaded library code to a thread-safe
// service that absorbs sustained traffic from many client goroutines.
//
// # Architecture
//
// The entity space is hash-partitioned: entity x belongs to partition
// x mod N. Each of the N shards is owned by exactly one goroutine (the
// single-writer discipline) running its own core.Scheduler with its own
// conflict graph and deletion policy. Clients call Submit, which routes the
// step to its shard over a buffered channel; the shard goroutine drains
// steps in batches, applies them, replies, and runs the deletion-policy
// sweep between batches (amortized GC off the per-step path, cadence set
// by Config.SweepEveryCompletions).
//
// A transaction declares its entity footprint on BEGIN
// (model.BeginDeclared). A footprint inside one partition routes the
// transaction to that shard for its whole life; the engine enforces the
// partition discipline by rejecting (and aborting) any later step that
// touches a foreign partition. A footprint spanning partitions marks the
// transaction cross-partition: its steps are buffered and acknowledged as
// OutcomeBuffered, and when its final write arrives the whole transaction
// is applied atomically through the shard-0 coordinator path described
// below.
//
// # Why per-shard acyclicity is global CSR
//
// Two transactions conflict only if they access a common entity. Local
// transactions of different shards touch disjoint entity sets, so every
// conflict between local transactions is between two transactions of the
// same shard, and that shard's scheduler sees both: the global conflict
// graph restricted to local transactions is the *disjoint union* of the
// per-shard graphs. A disjoint union of acyclic graphs is acyclic, so
// per-shard acceptance (each shard accepts only acyclic extensions, the
// paper's Rules 1–3) is exactly global conflict serializability — no
// cross-shard bookkeeping needed.
//
// Cross-partition transactions would break that argument (one node with
// arcs in two shard graphs can close a cycle no single shard sees), so the
// coordinator path restores it by brute force: the coordinator closes the
// admission gate (new BEGINs park at their shard), aborts every active
// transaction on every shard (removing an active node is always safe — it
// can only discard arcs of a transaction that will never commit), and only
// then applies the buffered transaction's steps back-to-back on shard 0's
// scheduler. At that instant no other transaction is active anywhere and
// nothing else can be accepted until the gate reopens, so the cross
// transaction occupies a contiguous atomic block of the global accepted
// schedule: every other transaction's steps lie entirely before or
// entirely after it, giving only one-directional conflict arcs and hence
// no cycles through the cross node. The offline referee
// (trace.CheckAcceptedCSR) verifies this end to end in the oracle test.
//
// The price is that a cross-partition commit kills every concurrent active
// transaction (counted in Stats.BarrierKills) — correct but expensive,
// which is precisely the motivation for the cross-shard 2PC follow-on in
// the ROADMAP.
//
// # Deletion under sharding
//
// Each shard garbage-collects its own graph with its own policy instance
// (C1/C2 are properties of a scheduler's reduced graph, so they apply
// per shard unchanged). Sweeps run between batches via
// core.Scheduler.SweepNow with Config.SweepManual set, so deletion cost is
// amortized and never added to an individual Submit's latency.
package engine
