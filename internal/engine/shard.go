package engine

import (
	"repro/internal/core"
	"repro/internal/model"
)

type reqKind uint8

const (
	// reqStep applies one step to the shard's scheduler.
	reqStep reqKind = iota
	// reqStats snapshots the shard's scheduler counters.
	reqStats
	// reqCross atomically applies a buffered cross-partition transaction
	// (shard 0 only, sent by the coordinator with the gate closed).
	reqCross
	// reqAbortAll kills every active transaction (coordinator barrier).
	reqAbortAll
	// reqAbortOne kills one active transaction (misroute / client abort).
	reqAbortOne
	// reqKick re-examines parked BEGINs after the gate reopened.
	reqKick
	// reqStop shuts the shard down.
	reqStop
)

type request struct {
	kind  reqKind
	step  model.Step
	ct    *crossTxn
	reply chan reply
}

type reply struct {
	res    Result
	stats  core.Stats
	killed []model.TxnID
}

// shard is one entity partition: a single-writer goroutine owning one
// core.Scheduler. All scheduler access happens on that goroutine.
type shard struct {
	idx   int
	eng   *Engine
	sched *core.Scheduler
	ch    chan request
	done  chan struct{}
	// parked holds BEGIN requests deferred while the admission gate is
	// closed; their clients block in Submit until the gate reopens.
	parked []request
	// sinceSweep counts completions/aborts since the last GC sweep.
	sinceSweep int
	// final is the scheduler's last Stats, published via close(done).
	final core.Stats
}

// do sends a request and waits for its reply. ok=false means the shard
// shut down without serving the request (Close raced the caller).
func (sh *shard) do(req request) (reply, bool) {
	req.reply = make(chan reply, 1)
	select {
	case sh.ch <- req:
	case <-sh.done:
		return reply{}, false
	}
	select {
	case r := <-req.reply:
		return r, true
	case <-sh.done:
		// The shard exited. shutdown drains the queue and fails pending
		// requests, so a reply may still have been posted — but a request
		// enqueued after that drain is simply lost.
		select {
		case r := <-req.reply:
			return r, true
		default:
			return reply{}, false
		}
	}
}

// run is the shard goroutine: drain a batch, apply it, then sweep.
func (sh *shard) run() {
	defer close(sh.done)
	for {
		req, ok := <-sh.ch
		if !ok {
			return
		}
		stop := sh.handle(req)
		for n := 1; n < sh.eng.cfg.BatchSize && !stop; n++ {
			select {
			case r := <-sh.ch:
				stop = sh.handle(r)
			default:
				n = sh.eng.cfg.BatchSize
			}
		}
		// Amortized GC between batches: replies are already out, so sweep
		// cost never lands on an individual submission's latency.
		sh.maybeSweep()
		if stop {
			sh.shutdown()
			return
		}
	}
}

func (sh *shard) handle(req request) (stop bool) {
	switch req.kind {
	case reqStep:
		if req.step.Kind == model.KindBegin && sh.eng.gateIsClosed() {
			sh.parked = append(sh.parked, req)
			return false
		}
		sh.applyStep(req)
	case reqStats:
		req.reply <- reply{stats: sh.sched.Stats()}
	case reqCross:
		req.reply <- reply{res: sh.applyCross(req.ct)}
	case reqAbortAll:
		req.reply <- reply{killed: sh.abortAll()}
	case reqAbortOne:
		if err := sh.sched.AbortTxn(req.step.Txn); err == nil {
			sh.eng.aborted.Add(1)
			sh.sinceSweep++
		}
		req.reply <- reply{}
	case reqKick:
		sh.unpark()
	case reqStop:
		return true
	}
	return false
}

// applyStep runs one step on the scheduler and replies with the
// engine-level result.
func (sh *shard) applyStep(req request) {
	eng := sh.eng
	res, err := sh.sched.Apply(req.step)
	if err != nil {
		req.reply <- reply{res: Result{Step: req.step, Outcome: OutcomeError,
			Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: err}}
		return
	}
	if eng.cfg.Log != nil {
		eng.cfg.Log.Append(req.step, res.Accepted)
	}
	out := Result{Step: req.step, Aborted: res.Aborted, CompletedTxn: res.CompletedTxn}
	if res.Accepted {
		out.Outcome = OutcomeAccepted
		eng.accepted.Add(1)
	} else {
		out.Outcome = OutcomeRejected
		eng.rejected.Add(1)
	}
	if res.CompletedTxn != model.NoTxn {
		eng.completed.Add(1)
		eng.routes.Delete(res.CompletedTxn)
		sh.sinceSweep++
	}
	if res.Aborted != model.NoTxn {
		eng.aborted.Add(1)
		eng.routes.Delete(res.Aborted)
		sh.sinceSweep++
	}
	req.reply <- reply{res: out}
}

// applyCross applies a buffered cross-partition transaction back-to-back.
// The coordinator guarantees no transaction is active on any shard and the
// gate is closed, so these steps form an atomic block of the global
// schedule.
func (sh *shard) applyCross(ct *crossTxn) Result {
	eng := sh.eng
	out := Result{Step: ct.steps[len(ct.steps)-1], Aborted: model.NoTxn, CompletedTxn: model.NoTxn}
	applied := false
	for _, st := range ct.steps {
		res, err := sh.sched.Apply(st)
		if err != nil {
			// Protocol violation (e.g. a reused ID whose original is still
			// retained): undo any partial application to restore the
			// no-actives invariant. Only a transaction we actually started
			// may be marked aborted — ct.id could name a *different*,
			// committed transaction whose accepted steps must stay in the
			// accepted subschedule.
			if applied && sh.sched.Status(ct.id) == model.StatusActive {
				_ = sh.sched.AbortTxn(ct.id)
				if eng.cfg.Log != nil {
					eng.cfg.Log.MarkAborted(ct.id)
				}
				eng.aborted.Add(1)
				sh.sinceSweep++
				out.Aborted = ct.id
			}
			out.Outcome = OutcomeError
			out.Err = err
			return out
		}
		applied = true
		if eng.cfg.Log != nil {
			eng.cfg.Log.Append(st, res.Accepted)
		}
		if !res.Accepted {
			eng.rejected.Add(1)
			eng.aborted.Add(1)
			sh.sinceSweep++
			out.Outcome = OutcomeRejected
			out.Aborted = ct.id
			return out
		}
		eng.accepted.Add(1)
	}
	eng.completed.Add(1)
	sh.sinceSweep++
	out.Outcome = OutcomeAccepted
	out.CompletedTxn = ct.id
	return out
}

// abortAll kills every active transaction on this shard (coordinator
// barrier). Removing active nodes is always safe; the victims' accepted
// steps are excluded from the accepted subschedule via MarkAborted.
func (sh *shard) abortAll() []model.TxnID {
	ids := sh.sched.ActiveTxns()
	for _, id := range ids {
		_ = sh.sched.AbortTxn(id)
		if sh.eng.cfg.Log != nil {
			sh.eng.cfg.Log.MarkAborted(id)
		}
		sh.eng.routes.Delete(id)
		sh.eng.aborted.Add(1)
		sh.sinceSweep++
	}
	return ids
}

// unpark re-examines parked BEGINs once the gate reopens. If the gate
// closed again in the meantime they simply park again.
func (sh *shard) unpark() {
	parked := sh.parked
	sh.parked = nil
	for i, req := range parked {
		if sh.eng.gateIsClosed() {
			sh.parked = append(sh.parked, parked[i:]...)
			return
		}
		sh.applyStep(req)
	}
}

func (sh *shard) maybeSweep() {
	if sh.eng.cfg.Policy == nil || sh.sinceSweep < sh.eng.cfg.SweepEveryCompletions {
		return
	}
	deleted := sh.sched.SweepNow()
	sh.eng.deleted.Add(int64(len(deleted)))
	sh.eng.sweeps.Add(1)
	sh.sinceSweep = 0
}

// shutdown fails parked and still-queued requests so no client blocks
// forever, publishes final stats, and returns.
func (sh *shard) shutdown() {
	sh.final = sh.sched.Stats()
	fail := func(req request) {
		if req.reply == nil {
			return
		}
		// A drained stats request can still be answered truthfully; every
		// other kind is refused.
		req.reply <- reply{stats: sh.final, res: Result{Step: req.step, Outcome: OutcomeError,
			Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: ErrClosed}}
	}
	for _, req := range sh.parked {
		fail(req)
	}
	sh.parked = nil
	for {
		select {
		case req := <-sh.ch:
			fail(req)
		default:
			return
		}
	}
}
