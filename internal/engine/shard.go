package engine

import (
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/ring"
	"repro/internal/store"
)

type reqKind uint8

const (
	// reqStep applies one step to the shard's scheduler (local steps and
	// cross sub-transaction reads alike).
	reqStep reqKind = iota
	// reqBatch applies a run of steps in one round-trip (SubmitBatch).
	reqBatch
	// reqStats snapshots the shard's scheduler counters.
	reqStats
	// reqBeginSub begins a sub-transaction of a cross-partition
	// transaction on this shard.
	reqBeginSub
	// reqPrepareSub is phase one of a cross-partition final write: vote on
	// this shard's slice of the write set, pinning the sub-node on yes.
	reqPrepareSub
	// reqCommitSub is the COMMIT decision for a prepared sub-transaction.
	reqCommitSub
	// reqAbortSub releases a sub-transaction (any state: begun, mid-reads,
	// or prepared) — the ABORT decision, a sibling-abort, or a client
	// abort.
	reqAbortSub
	// reqAbortOne kills one active local transaction (misroute / client
	// abort).
	reqAbortOne
	// reqUpkeep is a no-op wake-up: the 2PC driver kicks participants
	// after a commit decision so a shard blocked waiting for traffic runs
	// its registry upkeep (reportCrossClean) promptly.
	reqUpkeep
	// reqPurgeLabel erases stale cross-ancestor labels of a dead
	// incarnation before its TxnID is re-registered (see
	// crossRegistry.register).
	reqPurgeLabel
	// reqOldest snapshots the shard's oldest active transactions for the
	// retention governor's straggler selection.
	reqOldest
	// reqSweep forces a deletion-policy sweep now (the governor sweeps
	// after each reap so released pins turn into reclaimed storage before
	// the next watermark check).
	reqSweep
	// reqStop shuts the shard down.
	reqStop
)

type request struct {
	kind reqKind
	step model.Step
	// decisionDurable marks a reqCommitSub whose COMMIT decision is already
	// durable on an earlier participant: a journaling failure here must not
	// block the in-memory commit (recovery finishes the laggard from the
	// evidence). The first participant's journal is the commit point.
	decisionDurable bool
	// steps is a reqBatch's remaining pipeline; it aliases the caller's
	// input (the caller blocks until the reply, so the shard owns it).
	steps []model.Step
	// done accumulates a reqBatch's results.
	done []Result
}

type reply struct {
	res     Result
	results []Result
	stats   core.Stats
	// actives answers reqOldest; n answers reqSweep (transactions deleted).
	actives []core.ActiveInfo
	n       int64
}

// shard is one entity partition: a single-writer goroutine owning one
// core.Scheduler. All scheduler access happens on that goroutine.
//
// Submission runs on a lock-free MPSC ring (ring.Mailbox): producers claim
// a cell with one CAS and publish with one store, and replies come back
// through the same cell — no per-request channel is allocated, pooled, or
// selected on. The shard goroutine drains the ring in runs of up to
// BatchSize, so one wake amortizes across a whole backlog.
type shard struct {
	idx int
	eng *Engine
	// sched is the shard's single-writer scheduler kernel. Everything
	// marked //txgc:owner shard below is part of the same discipline: the
	// goroutine running (*shard).run owns it, everyone else goes through
	// the mailbox. txgc-lint's shardowned analyzer enforces the access
	// side of that contract statically.
	sched *core.Scheduler //txgc:owner shard
	mb    *ring.Mailbox[request, reply]
	done  chan struct{}
	// depth counts requests enqueued (or blocked enqueuing) and not yet
	// picked up by the shard goroutine — the submission backlog surfaced
	// in Stats.QueueDepth for admission-control decisions.
	depth atomic.Int64
	// preparedN is the number of prepared-but-undecided sub-transactions
	// currently pinned on this shard (Stats.PreparedByShard). Only the
	// shard goroutine writes it, but the atomic type licenses gauge reads
	// from anywhere — the shardowned analyzer exempts atomics.
	preparedN atomic.Int64 //txgc:owner shard
	// retainedN mirrors the scheduler's retained-completed count for
	// lock-free gauge reads (Engine.RetainedCounts); the shard goroutine
	// refreshes it after every batch.
	retainedN atomic.Int64
	// sinceSweep counts completions/aborts since the last GC sweep.
	sinceSweep int //txgc:owner shard
	// cleanBuf is scratch for cross-registry clean reporting.
	cleanBuf []model.TxnID //txgc:owner shard
	// final is the scheduler's last Stats, published via close(done);
	// readers synchronize on <-done before touching it.
	final core.Stats //txgc:owner shard

	// st is this shard's durability endpoint (nil: no WAL). All journal
	// state below is touched only on the shard goroutine (and by recovery,
	// which runs before the goroutine starts).
	st store.ShardStore //txgc:owner shard
	// walErr is the first journaling failure. The shard then fail-stops:
	// new applies are refused (wrapping ErrClosed), while abort and commit
	// paths still run so in-flight 2PC decisions resolve in memory.
	walErr error //txgc:owner shard
	// walPending counts records appended since the last sync; at
	// Config.WALSyncEvery the shard forces the log.
	walPending int //txgc:owner shard
	// sweepsSinceCkpt counts policy sweeps since the last checkpoint;
	// dirtySinceCkpt notes records appended since then (an idle shard
	// never rewrites an unchanged snapshot).
	sweepsSinceCkpt int  //txgc:owner shard
	dirtySinceCkpt  bool //txgc:owner shard
	// recBuf is the reused journal record: Append serializes synchronously
	// and never retains its argument, so one buffer per shard replaces a
	// heap-moved local per journaled record (found by txgc-lint -escape).
	recBuf store.Record //txgc:owner shard
}

// trySend enqueues a fire-and-forget request (no reply expected), keeping
// the depth gauge consistent. It reports false if the shard already shut
// down.
func (sh *shard) trySend(req request) bool {
	select {
	case <-sh.done:
		return false
	default:
	}
	sh.depth.Add(1)
	if !sh.mb.Post(req, sh.done) {
		sh.depth.Add(-1)
		return false
	}
	return true
}

// do sends a request and waits for its reply. ok=false means the shard
// shut down without serving the request (Close raced the caller). The
// round-trip is one ring cell: claim, publish, park on the cell until the
// shard writes the reply back into it — nothing is allocated and no pool
// is touched. A request published but never served (the shutdown drain
// already ran) leaves its cell abandoned; by then every later submission
// fails fast on sh.done, so the ring is garbage either way.
func (sh *shard) do(req request) (reply, bool) {
	sh.depth.Add(1)
	rep, sent, ok := sh.mb.Send(req, sh.done)
	if !sent {
		// Never published: the shard shut down while the ring was full and
		// no consumer will ever decrement for this request.
		sh.depth.Add(-1)
		return reply{}, false
	}
	if !ok {
		// Published but unanswered (Close raced the caller): the depth
		// decrement belongs to whoever drains the cell, which may be no
		// one — Stats reports dead shards at zero, so the phantom count is
		// invisible.
		return reply{}, false
	}
	return rep, true
}

// run is the shard goroutine: drain a run of requests from the ring, apply
// it, then sweep — one park/wake cycle amortizes across the whole run. No
// timer is needed for registry upkeep: a shard's cleanliness verdict
// (HasActivePredecessor over its own graph) can only change through a
// request this shard processes, and every processed batch ends in
// reportCrossClean — while the decided-transition itself is delivered by
// the reqUpkeep kick the 2PC driver sends after decideCommit.
func (sh *shard) run() {
	defer close(sh.done)
	for {
		req, tk, fire, ok := sh.mb.Next()
		if !ok {
			// Idle: housekeeping already ran when the last batch ended, so
			// just park until a producer publishes. Shutdown arrives as a
			// reqStop request, never via the park.
			sh.mb.Park(nil)
			continue
		}
		sh.depth.Add(-1)
		stop := sh.handle(req, tk, fire)
		for n := 1; n < sh.eng.cfg.BatchSize && !stop; n++ {
			req, tk, fire, ok = sh.mb.Next()
			if !ok {
				break
			}
			sh.depth.Add(-1)
			stop = sh.handle(req, tk, fire)
		}
		// Batch-end journal flush: buffered frames reach the OS so a
		// process kill loses at most the unsynced fsync batch, never the
		// unflushed one.
		sh.walFlush()
		// Amortized GC between batches: replies are already out, so sweep
		// cost never lands on an individual submission's latency.
		sh.maybeSweep()
		sh.retainedN.Store(int64(sh.sched.NumCompleted()))
		// Registry upkeep: report decided cross sub-transactions whose
		// ancestor set froze, so the registry can retire them and unblock
		// deletion of their labeled successors.
		sh.reportCrossClean()
		if stop {
			sh.shutdown()
			return
		}
	}
}

func (sh *shard) handle(req request, tk uint64, fire bool) (stop bool) {
	switch req.kind {
	case reqStep:
		sh.mb.Reply(tk, reply{res: sh.applyOne(req.step)})
	case reqBatch:
		for _, st := range req.steps {
			req.done = append(req.done, sh.applyOne(st))
		}
		sh.mb.Reply(tk, reply{results: req.done})
	case reqStats:
		sh.mb.Reply(tk, reply{stats: sh.sched.Stats()})
	case reqBeginSub:
		sh.mb.Reply(tk, reply{res: sh.applyBeginSub(req.step)})
	case reqPrepareSub:
		sh.mb.Reply(tk, reply{res: sh.applyPrepareSub(req.step)})
	case reqCommitSub:
		sh.mb.Reply(tk, reply{res: sh.applyCommitSub(req.step.Txn, req.decisionDurable)})
	case reqAbortSub:
		sh.applyAbortSub(req.step.Txn)
		sh.mb.Reply(tk, reply{})
	case reqAbortOne:
		if err := sh.sched.AbortTxn(req.step.Txn); err == nil {
			sh.eng.aborted.Add(1)
			sh.sinceSweep++
			sh.journal(store.RecAbort, req.step.Txn, 0, nil)
		}
		sh.mb.Reply(tk, reply{})
	case reqUpkeep:
		// Nothing to do here: the run loop calls reportCrossClean after
		// every batch; this request exists only to unblock the park. Posted
		// fire-and-forget, so there is no reply to send.
	case reqPurgeLabel:
		sh.sched.PurgeLabel(req.step.Txn)
		sh.mb.Reply(tk, reply{})
	case reqOldest:
		sh.mb.Reply(tk, reply{actives: sh.sched.OldestActives(governorCandidates)})
	case reqSweep:
		n := int64(len(sh.sched.SweepNow()))
		sh.eng.deleted.Add(n)
		sh.eng.sweeps.Add(1)
		sh.sinceSweep = 0
		sh.sweepsSinceCkpt++
		sh.maybeCheckpoint()
		// Refresh the retained gauge before replying: the governor reads it
		// right after the sweep returns, and the run loop's own refresh only
		// happens once the whole batch drains.
		sh.retainedN.Store(int64(sh.sched.NumCompleted()))
		sh.mb.Reply(tk, reply{n: n})
	case reqStop:
		return true
	}
	return false
}

// applyOne runs one step on the scheduler and returns the engine-level
// result, updating the engine counters and route table. A rejected step of
// a cross sub-transaction removes only this shard's sub-node; the
// submitting goroutine owns the logical abort (siblings, route, counters),
// so route and abort bookkeeping are skipped here for cross routes.
//
//txgc:hotpath
func (sh *shard) applyOne(step model.Step) (out Result) {
	eng := sh.eng
	if sh.walRefuse(step, &out) {
		return out
	}
	res, err := sh.sched.Apply(step)
	if err != nil {
		if step.Kind != model.KindBegin && eng.reaped.contains(step.Txn) {
			// The governor's abort landed between the submitter's route
			// lookup and this step reaching the scheduler: the transaction
			// is dead by reap, not protocol-confused — report it that way so
			// the session doesn't mistake its victim for still-live.
			eng.rejected.Add(1)
			return Result{Step: step, Outcome: OutcomeRejected,
				Aborted: step.Txn, CompletedTxn: model.NoTxn,
				Err: stragglerErr(step)}
		}
		// The scheduler refused to process the step at all (duplicate
		// BEGIN, step for a finished transaction, bad kind): a protocol
		// violation, state unchanged.
		return Result{Step: step, Outcome: OutcomeError,
			Aborted: model.NoTxn, CompletedTxn: model.NoTxn,
			//lint:ignore hotpath-fmt protocol-violation path: accepted steps never reach this return
			Err: fmt.Errorf("engine: %w: %v", ErrProtocol, err)}
	}
	if eng.cfg.Log != nil {
		eng.cfg.Log.Append(step, res.Accepted)
	}
	out = Result{Step: step, Aborted: res.Aborted, CompletedTxn: res.CompletedTxn}
	if res.Accepted {
		out.Outcome = OutcomeAccepted
		eng.accepted.Add(1)
		switch step.Kind {
		case model.KindBegin:
			sh.journal(store.RecBegin, step.Txn, 0, step.Entities)
		case model.KindRead:
			sh.journal(store.RecRead, step.Txn, step.Entity, nil)
		case model.KindWriteFinal:
			sh.journal(store.RecWrite, step.Txn, 0, step.Entities)
		}
		if sh.walErr != nil && sh.eng.cfg.WALSyncEvery <= 1 {
			// Strict mode promised durability before the ack, and the journal
			// died on this very step: answer with the failure instead of the
			// accept. The scheduler keeps the step in memory, but the shard
			// has fail-stopped, so the only observer left is recovery — which
			// won't have the record, agreeing with the client that the ack
			// never happened.
			out = Result{Step: step, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: sh.walDeadErr(step)}
		}
	} else {
		out.Outcome = OutcomeRejected
		if res.CrossVeto {
			out.Err = stepErr(step, ErrCrossCycle)
		} else {
			out.Err = stepErr(step, ErrCycle)
		}
		eng.rejected.Add(1)
		if res.Aborted != model.NoTxn {
			// The rejection's victim is gone from the graph; replay must
			// see the abort or it would resurrect the victim live.
			sh.journal(store.RecAbort, res.Aborted, 0, nil)
		}
	}
	if res.CompletedTxn != model.NoTxn {
		eng.completed.Add(1)
		eng.routes.delete(res.CompletedTxn)
		sh.sinceSweep++
	}
	if res.Aborted != model.NoTxn {
		sh.sinceSweep++
		if r, ok := eng.routes.load(res.Aborted); !ok || r.kind != routeCross {
			eng.aborted.Add(1)
			eng.routes.delete(res.Aborted)
		}
	}
	return out
}

// applyBeginSub begins a cross sub-transaction on this shard's scheduler.
// Engine-level logical counters are the 2PC driver's job; the shard only
// applies and logs.
func (sh *shard) applyBeginSub(step model.Step) (out Result) {
	if sh.walRefuse(step, &out) {
		return out
	}
	if _, err := sh.sched.BeginCross(step); err != nil {
		return Result{Step: step, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn,
			Err: fmt.Errorf("engine: %w: %v", ErrProtocol, err)}
	}
	if sh.eng.cfg.Log != nil {
		sh.eng.cfg.Log.Append(step, true)
	}
	sh.journal(store.RecBeginSub, step.Txn, 0, step.Entities)
	if sh.walErr != nil && sh.eng.cfg.WALSyncEvery <= 1 {
		// Strict mode: the sub-begin could not be made durable, so refuse it
		// and let the coordinator abort the siblings (see applyOne).
		return Result{Step: step, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: sh.walDeadErr(step)}
	}
	return Result{Step: step, Outcome: OutcomeAccepted, Aborted: model.NoTxn, CompletedTxn: model.NoTxn}
}

// applyPrepareSub votes on this shard's slice of a cross final write. A
// YES vote logs the write at its conflict position (the arcs go into the
// graph now; a later ABORT excludes the transaction via MarkAborted) and
// pins the sub-node.
func (sh *shard) applyPrepareSub(step model.Step) (out Result) {
	if sh.walRefuse(step, &out) {
		return out
	}
	vote, err := sh.sched.PrepareFinal(step)
	// The gauge tracks the scheduler's prepared state, not the vote: a
	// late registry veto (VoteCrossCycle out of crossFlood) leaves the
	// node prepared+pinned until the coordinator's abort, and that abort
	// decrements the gauge via applyAbortSub.
	if sh.sched.Prepared(step.Txn) {
		sh.preparedN.Add(1)
	}
	if err != nil {
		return Result{Step: step, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn,
			Err: fmt.Errorf("engine: %w: %v", ErrProtocol, err)}
	}
	switch vote {
	case core.VoteYes:
		if jerr := sh.journalSynced(store.RecPrepare, step.Txn, step.Entities); jerr != nil {
			// The YES vote could not be made durable, so it must never
			// reach the coordinator: release the sub-transaction locally
			// and answer with the failure (the coordinator then aborts the
			// siblings).
			if sh.sched.Prepared(step.Txn) {
				sh.preparedN.Add(-1)
			}
			if sh.sched.AbortTxn(step.Txn) == nil {
				sh.sinceSweep++
			}
			return Result{Step: step, Outcome: OutcomeError, Aborted: step.Txn, CompletedTxn: model.NoTxn, Err: sh.walDeadErr(step)}
		}
		if sh.eng.cfg.Log != nil {
			sh.eng.cfg.Log.Append(step, true)
		}
		return Result{Step: step, Outcome: OutcomeAccepted, Aborted: model.NoTxn, CompletedTxn: model.NoTxn}
	case core.VoteCrossCycle:
		return Result{Step: step, Outcome: OutcomeRejected, Aborted: step.Txn, CompletedTxn: model.NoTxn, Err: stepErr(step, ErrCrossCycle)}
	default: // VoteLocalCycle
		return Result{Step: step, Outcome: OutcomeRejected, Aborted: step.Txn, CompletedTxn: model.NoTxn, Err: stepErr(step, ErrCycle)}
	}
}

// applyCommitSub completes a prepared sub-transaction (COMMIT decision).
// The decision record is journaled and synced BEFORE the in-memory commit:
// once any participant has a durable RecCommit, recovery finishes the
// commit on every lagging sibling. The first participant's journal is
// therefore the commit point — if it fails, no durable evidence exists
// anywhere, recovery would presume abort, and so must we: release the
// prepared sub and answer with the failure so the coordinator aborts the
// siblings instead of acknowledging a commit only memory ever saw. Once
// some earlier participant holds the record (decisionDurable), a local
// journal failure fail-stops the shard but the commit still applies in
// memory: the decision stands, and recovery finishes it from the evidence.
func (sh *shard) applyCommitSub(id model.TxnID, decisionDurable bool) Result {
	if err := sh.journalSynced(store.RecCommit, id, nil); err != nil && !decisionDurable {
		if sh.sched.Prepared(id) {
			sh.preparedN.Add(-1)
		}
		if sh.sched.AbortTxn(id) == nil {
			sh.sinceSweep++
		}
		return Result{Outcome: OutcomeError, Aborted: id, CompletedTxn: model.NoTxn,
			Err: sh.walDeadErr(model.Step{Kind: model.KindWriteFinal, Txn: id})}
	}
	res, err := sh.sched.CommitPrepared(id)
	if err != nil {
		return Result{Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn,
			Err: fmt.Errorf("engine: %w: %v", ErrProtocol, err)}
	}
	sh.preparedN.Add(-1)
	sh.sinceSweep++
	return Result{Outcome: OutcomeAccepted, Aborted: model.NoTxn, CompletedTxn: res.CompletedTxn}
}

// applyAbortSub releases a sub-transaction in any state; unknown IDs (the
// scheduler already rejected a step of it here) are fine.
func (sh *shard) applyAbortSub(id model.TxnID) {
	if sh.sched.Prepared(id) {
		sh.preparedN.Add(-1)
	}
	if err := sh.sched.AbortTxn(id); err == nil {
		sh.sinceSweep++
		sh.journal(store.RecAbort, id, 0, nil)
	}
}

// ---------------------------------------------------------------------------
// Journaling. Every accepted step and every abort is appended to the
// shard's WAL before its reply leaves the shard; PREPARE votes and COMMIT
// decisions are additionally synced before they take effect (see
// journalSynced call sites). A journaling failure fail-stops the shard —
// walErr latches, new applies are refused — because continuing to accept
// work that cannot be made durable would silently break the recovery
// contract.

// journal appends one record, syncing per Config.WALSyncEvery. No-op
// without a store or after a journaling failure (the failure already
// latched; the caller's apply was refused or is a resolution path that
// must still run in memory).
func (sh *shard) journal(kind store.RecKind, txn model.TxnID, entity model.Entity, entities []model.Entity) {
	if sh.st == nil || sh.walErr != nil {
		return
	}
	sh.recBuf = store.Record{Kind: kind, Txn: txn, Entity: entity, Entities: entities}
	if err := sh.st.Append(&sh.recBuf); err != nil {
		sh.walErr = err
		return
	}
	sh.walPending++
	sh.dirtySinceCkpt = true
	if sh.walPending >= sh.eng.cfg.WALSyncEvery {
		sh.walSync()
	}
}

// journalSynced appends one record and forces it to the medium, reporting
// the failure (nil store: nil). 2PC uses it for the records whose loss
// would be unsafe: an unsynced YES vote must never reach the coordinator,
// and an unsynced COMMIT must never be applied.
func (sh *shard) journalSynced(kind store.RecKind, txn model.TxnID, entities []model.Entity) error {
	if sh.st == nil {
		return nil
	}
	if sh.walErr != nil {
		return sh.walErr
	}
	rec := store.Record{Kind: kind, Txn: txn, Entities: entities}
	if err := sh.st.Append(&rec); err != nil {
		sh.walErr = err
		return err
	}
	sh.dirtySinceCkpt = true
	sh.walSync()
	return sh.walErr
}

// walSync forces the log; a failure latches walErr.
func (sh *shard) walSync() {
	if sh.st == nil || sh.walErr != nil {
		return
	}
	if err := sh.st.Sync(); err != nil {
		sh.walErr = err
		return
	}
	sh.walPending = 0
}

// walFlush pushes buffered frames to the OS at batch end: records acked
// inside the batch survive a process kill (not a power loss) without
// paying an fsync per batch.
func (sh *shard) walFlush() {
	if sh.st == nil || sh.walErr != nil {
		return
	}
	if err := sh.st.Flush(); err != nil {
		sh.walErr = err
	}
}

// walDeadErr is the refusal a fail-stopped shard answers new applies with.
func (sh *shard) walDeadErr(step model.Step) error {
	//lint:ignore hotpath-fmt fail-stop path: the shard is already dead when this runs
	return fmt.Errorf("engine: shard %d journal failed (%v): %v: %w", sh.idx, sh.walErr, step, ErrClosed)
}

// walRefuse reports whether the shard has fail-stopped, filling res with
// the refusal if so.
func (sh *shard) walRefuse(step model.Step, res *Result) bool {
	if sh.walErr == nil {
		return false
	}
	*res = Result{Step: step, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: sh.walDeadErr(step)}
	return true
}

// maybeCheckpoint snapshots the retained state and truncates the WAL once
// enough sweeps have run — checkpoint-at-sweep: the sweep just proved (C1/
// C2) what is safe to forget, so the snapshot is as small as it will get
// and everything the log said is now inside it.
func (sh *shard) maybeCheckpoint() {
	if sh.st == nil || sh.walErr != nil || !sh.dirtySinceCkpt ||
		sh.sweepsSinceCkpt < sh.eng.cfg.CheckpointEverySweeps {
		return
	}
	snap := store.EncodeSnapshot(sh.sched.ExportState())
	if err := sh.st.Checkpoint(snap); err != nil {
		sh.walErr = err
		return
	}
	sh.sweepsSinceCkpt = 0
	sh.dirtySinceCkpt = false
	sh.walPending = 0
}

func (sh *shard) maybeSweep() {
	if sh.eng.cfg.Policy == nil || sh.sinceSweep < sh.eng.cfg.SweepEveryCompletions {
		return
	}
	deleted := sh.sched.SweepNow()
	sh.eng.deleted.Add(int64(len(deleted)))
	sh.eng.sweeps.Add(1)
	sh.sinceSweep = 0
	sh.sweepsSinceCkpt++
	sh.maybeCheckpoint()
}

// reportCrossClean tells the registry which decided cross transactions
// have a frozen ancestor set on this shard (no active ancestor — Lemma 1's
// premise, which is monotone once the sub-node is completed). When every
// participant has reported, the registry retires the transaction and its
// labels die, unblocking deletion downstream.
func (sh *shard) reportCrossClean() {
	reg := sh.eng.registry
	if reg.cleanPending[sh.idx].Load() == 0 {
		return
	}
	sh.cleanBuf = reg.pendingClean(sh.idx, sh.cleanBuf[:0])
	for _, id := range sh.cleanBuf {
		t := sh.sched.Txn(id)
		if t == nil || !core.HasActivePredecessor(sh.sched, sh.sched.Graph(), id) {
			reg.reportClean(id, sh.idx)
		}
	}
}

// shutdown fails still-queued requests so no client blocks forever,
// publishes final stats, and returns. A request published after this final
// drain is simply lost; its sender unparks on sh.done once run returns.
func (sh *shard) shutdown() {
	// A graceful close is a sync point: everything acknowledged is durable
	// when Close returns.
	sh.walSync()
	sh.final = sh.sched.Stats()
	for {
		req, tk, fire, ok := sh.mb.Next()
		if !ok {
			return
		}
		sh.depth.Add(-1)
		if fire {
			continue
		}
		if req.kind == reqBatch {
			// Remaining steps of a queued batch fail; results already
			// computed are delivered as-is.
			for _, st := range req.steps {
				req.done = append(req.done, Result{Step: st, Outcome: OutcomeError,
					Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: ErrClosed})
			}
			sh.mb.Reply(tk, reply{results: req.done, stats: sh.final})
			continue
		}
		// A drained stats request can still be answered truthfully; every
		// other kind is refused.
		sh.mb.Reply(tk, reply{stats: sh.final, res: Result{Step: req.step, Outcome: OutcomeError,
			Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: ErrClosed}})
	}
}
