package engine

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/model"
)

type reqKind uint8

const (
	// reqStep applies one step to the shard's scheduler.
	reqStep reqKind = iota
	// reqBatch applies a run of steps in one round-trip (SubmitBatch).
	reqBatch
	// reqStats snapshots the shard's scheduler counters.
	reqStats
	// reqCross atomically applies a buffered cross-partition transaction
	// (shard 0 only, sent by the coordinator with the gate closed).
	reqCross
	// reqAbortAll kills every active transaction (coordinator barrier).
	reqAbortAll
	// reqAbortOne kills one active transaction (misroute / client abort).
	reqAbortOne
	// reqKick re-examines parked BEGINs after the gate reopened.
	reqKick
	// reqStop shuts the shard down.
	reqStop
)

type request struct {
	kind reqKind
	step model.Step
	// steps is a reqBatch's remaining pipeline; it aliases the caller's
	// input (the caller blocks until the reply, so the shard owns it).
	steps []model.Step
	// done accumulates a reqBatch's results, surviving a mid-batch park.
	done  []Result
	ct    *crossTxn
	reply chan reply
}

type reply struct {
	res     Result
	results []Result
	stats   core.Stats
	killed  []model.TxnID
}

// shard is one entity partition: a single-writer goroutine owning one
// core.Scheduler. All scheduler access happens on that goroutine.
type shard struct {
	idx   int
	eng   *Engine
	sched *core.Scheduler
	ch    chan request
	done  chan struct{}
	// depth counts requests enqueued (or blocked enqueuing) and not yet
	// picked up by the shard goroutine — the submission backlog surfaced
	// in Stats.QueueDepth for admission-control decisions.
	depth atomic.Int64
	// parked holds requests deferred while the admission gate is closed
	// (BEGIN steps, or batches whose next step is a BEGIN); their clients
	// block in Submit/SubmitBatch until the gate reopens.
	parked []request
	// sinceSweep counts completions/aborts since the last GC sweep.
	sinceSweep int
	// final is the scheduler's last Stats, published via close(done).
	final core.Stats
}

// trySend enqueues a fire-and-forget request (no reply expected), keeping
// the depth gauge consistent. It reports false if the shard already shut
// down.
func (sh *shard) trySend(req request) bool {
	sh.depth.Add(1)
	select {
	case sh.ch <- req:
		return true
	case <-sh.done:
		sh.depth.Add(-1)
		return false
	}
}

// do sends a request and waits for its reply. ok=false means the shard
// shut down without serving the request (Close raced the caller).
// Reply channels come from a pool; a channel is only returned to the pool
// on paths where no late reply can still be posted to it.
func (sh *shard) do(req request) (reply, bool) {
	c := sh.eng.replyPool.Get().(chan reply)
	req.reply = c
	sh.depth.Add(1)
	select {
	case sh.ch <- req:
	case <-sh.done:
		sh.depth.Add(-1)
		// Never enqueued: nothing can write to c, safe to recycle.
		sh.eng.replyPool.Put(c)
		return reply{}, false
	}
	select {
	case r := <-c:
		sh.eng.replyPool.Put(c)
		return r, true
	case <-sh.done:
		// The shard exited. shutdown drains the queue and fails pending
		// requests, so a reply may still have been posted — but a request
		// enqueued after that drain is simply lost.
		select {
		case r := <-c:
			sh.eng.replyPool.Put(c)
			return r, true
		default:
			// A late reply from the shutdown drain may still arrive on c;
			// abandon the channel rather than risk a stale read by a
			// future user.
			return reply{}, false
		}
	}
}

// run is the shard goroutine: drain a batch, apply it, then sweep.
func (sh *shard) run() {
	defer close(sh.done)
	for {
		req, ok := <-sh.ch
		if !ok {
			return
		}
		sh.depth.Add(-1)
		stop := sh.handle(req)
		for n := 1; n < sh.eng.cfg.BatchSize && !stop; n++ {
			select {
			case r := <-sh.ch:
				sh.depth.Add(-1)
				stop = sh.handle(r)
			default:
				n = sh.eng.cfg.BatchSize
			}
		}
		// Amortized GC between batches: replies are already out, so sweep
		// cost never lands on an individual submission's latency.
		sh.maybeSweep()
		if stop {
			sh.shutdown()
			return
		}
	}
}

func (sh *shard) handle(req request) (stop bool) {
	switch req.kind {
	case reqStep:
		if req.step.Kind == model.KindBegin && sh.eng.gateIsClosed() {
			sh.parked = append(sh.parked, req)
			return false
		}
		req.reply <- reply{res: sh.applyOne(req.step)}
	case reqBatch:
		sh.handleBatch(req)
	case reqStats:
		req.reply <- reply{stats: sh.sched.Stats()}
	case reqCross:
		req.reply <- reply{res: sh.applyCross(req.ct)}
	case reqAbortAll:
		req.reply <- reply{killed: sh.abortAll()}
	case reqAbortOne:
		if err := sh.sched.AbortTxn(req.step.Txn); err == nil {
			sh.eng.aborted.Add(1)
			sh.sinceSweep++
		}
		req.reply <- reply{}
	case reqKick:
		sh.unpark()
	case reqStop:
		return true
	}
	return false
}

// handleBatch pipelines a run of same-shard steps through the scheduler.
// If the admission gate closes in front of a BEGIN mid-batch, the batch
// parks with its partial results and resumes on the next kick, exactly
// like a parked single-step BEGIN (the client stays blocked meanwhile).
func (sh *shard) handleBatch(req request) {
	for len(req.steps) > 0 {
		st := req.steps[0]
		if st.Kind == model.KindBegin && sh.eng.gateIsClosed() {
			sh.parked = append(sh.parked, req)
			return
		}
		req.done = append(req.done, sh.applyOne(st))
		req.steps = req.steps[1:]
	}
	req.reply <- reply{results: req.done}
}

// applyOne runs one step on the scheduler and returns the engine-level
// result, updating the engine counters and route table.
func (sh *shard) applyOne(step model.Step) Result {
	eng := sh.eng
	res, err := sh.sched.Apply(step)
	if err != nil {
		return Result{Step: step, Outcome: OutcomeError,
			Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: err}
	}
	if eng.cfg.Log != nil {
		eng.cfg.Log.Append(step, res.Accepted)
	}
	out := Result{Step: step, Aborted: res.Aborted, CompletedTxn: res.CompletedTxn}
	if res.Accepted {
		out.Outcome = OutcomeAccepted
		eng.accepted.Add(1)
	} else {
		out.Outcome = OutcomeRejected
		eng.rejected.Add(1)
	}
	if res.CompletedTxn != model.NoTxn {
		eng.completed.Add(1)
		eng.routes.Delete(res.CompletedTxn)
		sh.sinceSweep++
	}
	if res.Aborted != model.NoTxn {
		eng.aborted.Add(1)
		eng.routes.Delete(res.Aborted)
		sh.sinceSweep++
	}
	return out
}

// applyCross applies a buffered cross-partition transaction back-to-back.
// The coordinator guarantees no transaction is active on any shard and the
// gate is closed, so these steps form an atomic block of the global
// schedule.
func (sh *shard) applyCross(ct *crossTxn) Result {
	eng := sh.eng
	out := Result{Step: ct.steps[len(ct.steps)-1], Aborted: model.NoTxn, CompletedTxn: model.NoTxn}
	applied := false
	for _, st := range ct.steps {
		res, err := sh.sched.Apply(st)
		if err != nil {
			// Protocol violation (e.g. a reused ID whose original is still
			// retained): undo any partial application to restore the
			// no-actives invariant. Only a transaction we actually started
			// may be marked aborted — ct.id could name a *different*,
			// committed transaction whose accepted steps must stay in the
			// accepted subschedule.
			if applied && sh.sched.Status(ct.id) == model.StatusActive {
				_ = sh.sched.AbortTxn(ct.id)
				if eng.cfg.Log != nil {
					eng.cfg.Log.MarkAborted(ct.id)
				}
				eng.aborted.Add(1)
				sh.sinceSweep++
				out.Aborted = ct.id
			}
			out.Outcome = OutcomeError
			out.Err = err
			return out
		}
		applied = true
		if eng.cfg.Log != nil {
			eng.cfg.Log.Append(st, res.Accepted)
		}
		if !res.Accepted {
			eng.rejected.Add(1)
			eng.aborted.Add(1)
			sh.sinceSweep++
			out.Outcome = OutcomeRejected
			out.Aborted = ct.id
			return out
		}
		eng.accepted.Add(1)
	}
	eng.completed.Add(1)
	sh.sinceSweep++
	out.Outcome = OutcomeAccepted
	out.CompletedTxn = ct.id
	return out
}

// abortAll kills every active transaction on this shard (coordinator
// barrier). Removing active nodes is always safe; the victims' accepted
// steps are excluded from the accepted subschedule via MarkAborted.
func (sh *shard) abortAll() []model.TxnID {
	ids := sh.sched.ActiveTxns()
	for _, id := range ids {
		_ = sh.sched.AbortTxn(id)
		if sh.eng.cfg.Log != nil {
			sh.eng.cfg.Log.MarkAborted(id)
		}
		sh.eng.routes.Delete(id)
		sh.eng.aborted.Add(1)
		sh.sinceSweep++
	}
	return ids
}

// unpark re-examines parked requests once the gate reopens. If the gate
// closed again in the meantime they simply park again.
func (sh *shard) unpark() {
	parked := sh.parked
	sh.parked = nil
	for i, req := range parked {
		if sh.eng.gateIsClosed() {
			sh.parked = append(sh.parked, parked[i:]...)
			return
		}
		switch req.kind {
		case reqBatch:
			sh.handleBatch(req) // may re-park itself
		default:
			req.reply <- reply{res: sh.applyOne(req.step)}
		}
	}
}

func (sh *shard) maybeSweep() {
	if sh.eng.cfg.Policy == nil || sh.sinceSweep < sh.eng.cfg.SweepEveryCompletions {
		return
	}
	deleted := sh.sched.SweepNow()
	sh.eng.deleted.Add(int64(len(deleted)))
	sh.eng.sweeps.Add(1)
	sh.sinceSweep = 0
}

// shutdown fails parked and still-queued requests so no client blocks
// forever, publishes final stats, and returns.
func (sh *shard) shutdown() {
	sh.final = sh.sched.Stats()
	fail := func(req request) {
		if req.reply == nil {
			return
		}
		if req.kind == reqBatch {
			// Remaining steps of a parked/queued batch fail; results
			// already computed are delivered as-is.
			for _, st := range req.steps {
				req.done = append(req.done, Result{Step: st, Outcome: OutcomeError,
					Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: ErrClosed})
			}
			req.reply <- reply{results: req.done, stats: sh.final}
			return
		}
		// A drained stats request can still be answered truthfully; every
		// other kind is refused.
		req.reply <- reply{stats: sh.final, res: Result{Step: req.step, Outcome: OutcomeError,
			Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: ErrClosed}}
	}
	for _, req := range sh.parked {
		fail(req)
	}
	sh.parked = nil
	for {
		select {
		case req := <-sh.ch:
			sh.depth.Add(-1)
			fail(req)
		default:
			return
		}
	}
}
