package engine

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/model"
	"repro/internal/store"
	"repro/internal/workload"
)

// BenchmarkEngineThroughput sweeps shard count × deletion policy under
// partition-local traffic from GOMAXPROCS submitter goroutines. Each
// iteration is one whole transaction (BEGIN + 3 reads + final write = 5
// steps) pipelined through SubmitBatch — one shard round-trip per
// transaction, the way a real client session drives the engine; steps/s
// is reported as a metric. Under nogc the per-shard graphs grow without
// bound, so sharding pays even on one core (smaller graphs → cheaper
// conflict checks); with a GC policy the graphs stay small and the
// benchmark measures the engine's plumbing overhead instead. Regenerate
// BENCH_engine.json with:
//
//	go test -run '^$' -bench BenchmarkEngineThroughput -benchtime 3000x -benchmem ./internal/engine/
func BenchmarkEngineThroughput(b *testing.B) {
	const entities = 1 << 12
	policies := []struct {
		name    string
		factory func() core.Policy
	}{
		{"nogc", nil},
		{"greedy-c1", func() core.Policy { return core.GreedyC1{} }},
		{"lemma1", func() core.Policy { return core.Lemma1Policy{} }},
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, pol := range policies {
			b.Run(fmt.Sprintf("shards=%d/policy=%s", shards, pol.name), func(b *testing.B) {
				eng := New(Config{Shards: shards, Policy: pol.factory})
				defer eng.Close()
				var nextID atomic.Int64
				perPart := entities / shards
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					rng := rand.New(rand.NewSource(nextID.Add(1)))
					fp := make([]model.Entity, 4)
					steps := make([]model.Step, 0, 5)
					results := make([]Result, 0, 5)
					for pb.Next() {
						id := model.TxnID(nextID.Add(1))
						p := rng.Intn(shards)
						for i := range fp {
							fp[i] = model.Entity(p + shards*rng.Intn(perPart))
						}
						steps = append(steps[:0], model.BeginDeclared(id, fp...))
						for _, x := range fp[:3] {
							steps = append(steps, model.Read(id, x))
						}
						steps = append(steps, model.WriteFinal(id, fp[3]))
						results = eng.SubmitBatchInto(results[:0], steps)
					}
				})
				b.StopTimer()
				b.ReportMetric(float64(b.N)*5/b.Elapsed().Seconds(), "steps/s")
			})
		}
	}
}

// BenchmarkEngineEmitOverhead measures what attaching the telemetry bus
// costs the hot path: the same partition-local workload as
// BenchmarkEngineThroughput (4 shards, greedy-c1, whole transactions through
// SubmitBatchInto) run once without an emitter and once publishing every
// lifecycle event to a live bus draining into a CountingSink.
// scripts/check_bench_budget.sh gates the ns/op delta (median of paired
// on/off runs) at max_emit_overhead_ns and holds the emitter=on variant to
// the same allocs/op budget as the bare path — Emit must stay
// allocation-free.
// Regenerate the BENCH_engine.json record with:
//
//	go test -run '^$' -bench BenchmarkEngineEmitOverhead -benchtime 10000x -benchmem ./internal/engine/
func BenchmarkEngineEmitOverhead(b *testing.B) {
	const entities = 1 << 12
	const shards = 4
	run := func(b *testing.B, bus *emit.Bus) {
		eng := New(Config{Shards: shards, Policy: func() core.Policy { return core.GreedyC1{} }, Bus: bus})
		defer eng.Close()
		var nextID atomic.Int64
		perPart := entities / shards
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(nextID.Add(1)))
			fp := make([]model.Entity, 4)
			steps := make([]model.Step, 0, 5)
			results := make([]Result, 0, 5)
			for pb.Next() {
				id := model.TxnID(nextID.Add(1))
				p := rng.Intn(shards)
				for i := range fp {
					fp[i] = model.Entity(p + shards*rng.Intn(perPart))
				}
				steps = append(steps[:0], model.BeginDeclared(id, fp...))
				for _, x := range fp[:3] {
					steps = append(steps, model.Read(id, x))
				}
				steps = append(steps, model.WriteFinal(id, fp[3]))
				results = eng.SubmitBatchInto(results[:0], steps)
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)*5/b.Elapsed().Seconds(), "steps/s")
	}
	b.Run("emitter=off", func(b *testing.B) { run(b, nil) })
	b.Run("emitter=on", func(b *testing.B) {
		var sink emit.CountingSink
		bus := emit.NewBus(emit.DefaultBuffer, &sink)
		defer bus.Close()
		run(b, bus)
	})
}

// BenchmarkEngineRetentionGoverned drives the adversarial leak family
// (sleepers, label bombs, cross fan-out, respawning attackers — see
// workload.Adversary) against a governed engine and reports peak-kept, the
// highest engine-wide retained count ever sampled. Each iteration is one
// victim transaction; the governor runs once per chunk, exactly like the
// soak test. scripts/check_bench_budget.sh gates peak-kept at
// max_peak_kept: a regression here means the governor stopped bounding
// retention under attack, the one property this subsystem exists for.
// Regenerate the BENCH_engine.json record with:
//
//	go test -run '^$' -bench BenchmarkEngineRetentionGoverned -benchtime 2000x -benchmem ./internal/engine/
func BenchmarkEngineRetentionGoverned(b *testing.B) {
	const shards = 4
	const chunk = 64
	const watermark = 64
	eng := New(Config{
		Shards:                shards,
		Policy:                func() core.Policy { return core.GreedyC1{} },
		SweepEveryCompletions: 4,
		RetentionWatermark:    watermark,
		GovernorInterval:      time.Hour, // paced explicitly, once per chunk
	})
	defer eng.Close()
	adv := workload.NewAdversary(workload.AdversaryConfig{
		Shards:        shards,
		Victims:       b.N,
		Sleepers:      2,
		CrossSleepers: 2,
		FanOutFrac:    0.25,
		Respawn:       true,
		BaseTxnID:     1,
		Seed:          7,
	})
	var peak, steps int64
	buf := make([]model.Step, 0, chunk)
	results := make([]Result, 0, chunk)
	notified := make(map[model.TxnID]bool)
	b.ReportAllocs()
	b.ResetTimer()
	for {
		buf = buf[:0]
		for len(buf) < chunk {
			st, ok := adv.Next()
			if !ok {
				break
			}
			buf = append(buf, st)
		}
		if len(buf) == 0 {
			break
		}
		steps += int64(len(buf))
		results = eng.SubmitBatchInto(results[:0], buf)
		for _, r := range results {
			if r.Aborted != model.NoTxn && !notified[r.Aborted] {
				notified[r.Aborted] = true
				adv.NotifyAbort(r.Aborted)
			}
		}
		eng.GovernNow()
		var total int64
		for _, n := range eng.RetainedCounts() {
			total += n
		}
		if total > peak {
			peak = total
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(peak), "peak-kept")
	b.ReportMetric(float64(eng.Stats().Reaped), "reaps")
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/s")
}

// BenchmarkEngineCrossFrac measures the cost of the cross-partition path:
// fixed 4 shards, greedy-c1, sweeping the cross-partition fraction
// (CrossFrac ∈ {0, 0.01, 0.05, 0.25}). Under the pre-2PC stop-the-world
// coordinator, completed/op collapsed as cross traffic rose (every cross
// commit killed all concurrent actives — kills/op); under 2PC kills/op is
// zero by construction and completions stay at 1.0/op. Regenerate the
// BENCH_engine.json record with:
//
//	go test -run '^$' -bench BenchmarkEngineCrossFrac -benchtime 30000x -benchmem -cpu 8 ./internal/engine/
func BenchmarkEngineCrossFrac(b *testing.B) {
	const entities = 1 << 12
	const shards = 4
	for _, crossPct := range []int{0, 1, 5, 25} {
		b.Run(fmt.Sprintf("cross=%d%%", crossPct), func(b *testing.B) {
			eng := New(Config{Shards: shards, Policy: func() core.Policy { return core.GreedyC1{} }})
			defer eng.Close()
			var nextID atomic.Int64
			perPart := entities / shards
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(nextID.Add(1)))
				for pb.Next() {
					id := model.TxnID(nextID.Add(1))
					p := rng.Intn(shards)
					x := model.Entity(p + shards*rng.Intn(perPart))
					fp := []model.Entity{x}
					if crossPct > 0 && rng.Intn(100) < crossPct {
						q := (p + 1) % shards
						fp = append(fp, model.Entity(q+shards*rng.Intn(perPart)))
					}
					eng.Submit(model.BeginDeclared(id, fp...))
					for _, e := range fp {
						eng.Submit(model.Read(id, e))
					}
					eng.Submit(model.WriteFinal(id, fp[0]))
				}
			})
			b.StopTimer()
			s := eng.Stats()
			b.ReportMetric(float64(s.Prepares)/float64(b.N), "prepares/op")
			b.ReportMetric(float64(s.Completed)/float64(b.N), "completed/op")
			b.ReportMetric(float64(s.BarrierKills)/float64(b.N), "kills/op")
			if s.BarrierKills != 0 {
				b.Fatalf("BarrierKills = %d, want 0 under 2PC", s.BarrierKills)
			}
		})
	}
}

// BenchmarkEngineWALOverhead measures what crash durability costs the hot
// path: the same partition-local workload as BenchmarkEngineThroughput
// (4 shards, greedy-c1, whole transactions through SubmitBatchInto) run
// once without a store and once journaling every accepted step to a
// per-shard file WAL, sweeping the fsync batch (1 = strict, every record
// durable before its ack; 64 = default; 256 = throughput-oriented).
// scripts/check_bench_budget.sh gates the ns/op delta of the default
// wal=on-fsync=64 variant against wal=off (median of paired runs, same
// methodology as the emitter gate) at max_wal_overhead_ns. Regenerate the
// BENCH_engine.json record with:
//
//	go test -run '^$' -bench BenchmarkEngineWALOverhead -benchtime 10000x -benchmem ./internal/engine/
func BenchmarkEngineWALOverhead(b *testing.B) {
	const entities = 1 << 12
	const shards = 4
	run := func(b *testing.B, st store.Store, syncEvery int) {
		eng, _, err := Open(Config{
			Shards:       shards,
			Policy:       func() core.Policy { return core.GreedyC1{} },
			Store:        st,
			WALSyncEvery: syncEvery,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		var nextID atomic.Int64
		perPart := entities / shards
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(nextID.Add(1)))
			fp := make([]model.Entity, 4)
			steps := make([]model.Step, 0, 5)
			results := make([]Result, 0, 5)
			for pb.Next() {
				id := model.TxnID(nextID.Add(1))
				p := rng.Intn(shards)
				for i := range fp {
					fp[i] = model.Entity(p + shards*rng.Intn(perPart))
				}
				steps = append(steps[:0], model.BeginDeclared(id, fp...))
				for _, x := range fp[:3] {
					steps = append(steps, model.Read(id, x))
				}
				steps = append(steps, model.WriteFinal(id, fp[3]))
				results = eng.SubmitBatchInto(results[:0], steps)
			}
		})
		b.StopTimer()
		b.ReportMetric(float64(b.N)*5/b.Elapsed().Seconds(), "steps/s")
	}
	b.Run("wal=off", func(b *testing.B) { run(b, nil, 0) })
	for _, batch := range []int{1, 64, 256} {
		b.Run(fmt.Sprintf("wal=on-fsync=%d", batch), func(b *testing.B) {
			st, err := store.OpenFile(b.TempDir(), shards, store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			run(b, st, batch)
		})
	}
}

// latHist is a fixed log-linear latency histogram: 16 sub-buckets per
// octave, so any sample lands within 1/16 of its true value and recording
// is two shifts and an increment — no allocation, no sorting, safe to keep
// per-goroutine and merge under a mutex at the end. This is what lets the
// scaling benchmark report p99 without perturbing the path it measures.
const latBuckets = 61 * 16

type latHist [latBuckets]int64

func (h *latHist) record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < 16 {
		h[v]++
		return
	}
	l := bits.Len64(v)
	h[(l-4)*16+int((v>>(l-5))&15)]++
}

func (h *latHist) merge(o *latHist) {
	for i, n := range o {
		h[i] += n
	}
}

// quantile returns the lower bound of the bucket holding the q-th sample
// (0 < q <= 1), i.e. a value the true quantile is guaranteed to be >= and
// within 1/16 of.
func (h *latHist) quantile(q float64) int64 {
	var total int64
	for _, n := range h {
		total += n
	}
	if total == 0 {
		return 0
	}
	want := int64(q * float64(total))
	if want < 1 {
		want = 1
	}
	var cum int64
	for i, n := range h {
		cum += n
		if cum >= want {
			if i < 16 {
				return int64(i)
			}
			return int64(16+i%16) << (i/16 - 1)
		}
	}
	return 1 << 62 // unreachable: every recorded sample lands in a bucket
}

// BenchmarkEngineParallelScaling is the multi-core scaling story: fixed 8
// shards, greedy-c1, GOMAXPROCS submitter goroutines pipelining whole
// 5-step transactions through SubmitBatchInto, at CrossFrac 0 (pure
// partition-local) and 0.05 (the oracle suite's canonical mix). Run it
// with -cpu 1,2,4,8 and compare steps/s across the sweep: the ring
// mailbox submission path has no global lock, so throughput should rise
// with cores until the shard consumers saturate. Each iteration's
// SubmitBatchInto round-trip is timed into a log-linear histogram
// (per-goroutine, merged at the end — nothing allocated per op) and the
// p99 per-step latency (txn round-trip / 5 steps) is reported as
// p99-step-ns, which scripts/check_bench_budget.sh gates at
// max_p99_step_ns. cores records GOMAXPROCS for the BENCH_engine.json
// record — on a single-core host the -cpu sweep measures oversubscription
// scheduling, not parallelism; record physical_cores alongside.
// Regenerate the BENCH_engine.json record with:
//
//	go test -run '^$' -bench BenchmarkEngineParallelScaling -benchtime 20000x -benchmem -cpu 1,2,4,8 ./internal/engine/
func BenchmarkEngineParallelScaling(b *testing.B) {
	const entities = 1 << 12
	const shards = 8
	for _, crossPct := range []int{0, 5} {
		b.Run(fmt.Sprintf("cross=%d%%", crossPct), func(b *testing.B) {
			eng := New(Config{Shards: shards, Policy: func() core.Policy { return core.GreedyC1{} }})
			defer eng.Close()
			var nextID atomic.Int64
			var mu sync.Mutex
			var hist latHist
			perPart := entities / shards
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(nextID.Add(1)))
				fp := make([]model.Entity, 0, 5)
				steps := make([]model.Step, 0, 6)
				results := make([]Result, 0, 6)
				var local latHist
				for pb.Next() {
					id := model.TxnID(nextID.Add(1))
					p := rng.Intn(shards)
					fp = fp[:0]
					for i := 0; i < 4; i++ {
						fp = append(fp, model.Entity(p+shards*rng.Intn(perPart)))
					}
					if crossPct > 0 && rng.Intn(100) < crossPct {
						q := (p + 1) % shards
						fp = append(fp, model.Entity(q+shards*rng.Intn(perPart)))
					}
					steps = append(steps[:0], model.BeginDeclared(id, fp...))
					for _, x := range fp[1:] {
						steps = append(steps, model.Read(id, x))
					}
					steps = append(steps, model.WriteFinal(id, fp[0]))
					t0 := time.Now()
					results = eng.SubmitBatchInto(results[:0], steps)
					local.record(time.Since(t0).Nanoseconds())
				}
				mu.Lock()
				hist.merge(&local)
				mu.Unlock()
			})
			b.StopTimer()
			nSteps := float64(b.N) * 5
			b.ReportMetric(nSteps/b.Elapsed().Seconds(), "steps/s")
			b.ReportMetric(float64(hist.quantile(0.50))/5, "p50-step-ns")
			b.ReportMetric(float64(hist.quantile(0.99))/5, "p99-step-ns")
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
		})
	}
}
