// Cross-shard two-phase commit: the engine-side half of the protocol whose
// shard-side half lives in core's sub-transactions (core/subtxn.go).
//
// A cross-partition transaction is split into one sub-transaction per
// participating shard, all sharing the logical TxnID. BEGIN fans out
// sub-begins; reads route to the owning shard and apply immediately, like
// local steps; the final write runs the two-phase commit from the
// submitting goroutine: PREPARE each participant (the shard votes on its
// slice of the write set, pinning the sub-node on yes), then COMMIT or
// ABORT everywhere. Non-participating shards never hear about any of it,
// and participating shards keep serving other traffic between vote and
// decision — the prepared pin, not a pause, is what freezes the
// sub-transaction.
//
// The cross-arc registry below is the piece that restores global safety:
// it records, per pair of cross transactions, whether one's sub-node
// reaches the other's inside some shard graph (reported by the shards'
// label propagation), and vetoes the step that would close a cycle among
// those reach-arcs. See the package documentation for the full argument.
package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/model"
)

// testHookPrepared, when non-nil, is invoked by commitCross after every
// participant voted YES and before the decision — the window in which a
// prepared-but-undecided sub-transaction is pinned on each shard. Tests use
// it to cancel the submitting context exactly between PREPARE and decision.
var testHookPrepared func(model.TxnID)

// crossTxn is the engine's record of a live cross-partition transaction.
type crossTxn struct {
	mu    sync.Mutex
	id    model.TxnID
	parts []int // participating shards, ascending
	// done marks the decision (or a failed begin); committed distinguishes
	// COMMIT from ABORT for late-arriving steps.
	done      bool
	committed bool
}

// participant reports whether shard p takes part in the transaction.
func (ct *crossTxn) participant(p int) bool {
	for _, q := range ct.parts {
		if q == p {
			return true
		}
	}
	return false
}

// crossEntry is one cross transaction's registry record.
type crossEntry struct {
	parts   []int
	decided bool
	// clean[i] records that parts[i] reported the sub-node has no active
	// ancestor there (monotone; see reportClean). cleanN counts them.
	clean  []bool
	cleanN int
	// out/in are the inter-shard reach-arcs among registered transactions.
	out map[model.TxnID]struct{}
	in  map[model.TxnID]struct{}
}

// crossRegistry tracks live cross transactions and the inter-shard
// reach-arcs among them. It implements core.CrossTracker for every shard
// scheduler of the engine. All methods are safe for concurrent use.
type crossRegistry struct {
	mu   sync.Mutex
	txns map[model.TxnID]*crossEntry
	// size mirrors len(txns) so shards can skip clean-reporting without
	// taking the lock; live mirrors the key set so LabelLive — called per
	// label per node on every policy sweep of every shard — never touches
	// the mutex. Both are updated under mu; a stale "live" read is
	// conservative (labels only go live→dead).
	size atomic.Int64
	live sync.Map
	// dirty records TxnIDs of dropped/retired cross transactions whose
	// labels may still sit, unpruned, in shard graphs. Re-registering such
	// an ID must purge those stale entries first (see register), or the new
	// incarnation's flood would stop at them and hide real reach-paths.
	dirty map[model.TxnID]struct{}
	// cleanPending[p] counts decided entries still awaiting shard p's
	// cleanliness report. shard.run's post-batch reportCrossClean scans
	// the registry only while its shard's gauge is non-zero — and the
	// decided-transition itself is delivered by the reqUpkeep kick the 2PC
	// driver sends after decideCommit — so stalled *undecided*
	// transactions and non-participant shards cost nothing. Invariant
	// (under mu): for every decided entry e, each participant i with
	// !e.clean[i] contributes 1 to cleanPending[e.parts[i]].
	cleanPending []atomic.Int64
}

func newCrossRegistry(shards int) *crossRegistry {
	return &crossRegistry{
		txns:         make(map[model.TxnID]*crossEntry),
		dirty:        make(map[model.TxnID]struct{}),
		cleanPending: make([]atomic.Int64, shards),
	}
}

var _ core.CrossTracker = (*crossRegistry)(nil)

// register adds a cross transaction with its participant set. needsPurge
// reports that the ID previously named a dropped/retired cross transaction
// whose stale labels must be purged from every shard before any
// sub-transaction of the new incarnation begins (the caller does the
// purge; label work on the new incarnation cannot start until its
// sub-nodes exist, so purging after register but before the sub-begins is
// race-free — in the window, stale labels read as live, which is merely
// conservative).
func (r *crossRegistry) register(id model.TxnID, parts []int) (needsPurge bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.dirty[id]; ok {
		delete(r.dirty, id)
		needsPurge = true
	}
	r.txns[id] = &crossEntry{parts: parts, clean: make([]bool, len(parts))}
	r.live.Store(id, struct{}{})
	r.size.Store(int64(len(r.txns)))
	return needsPurge
}

// removeLocked erases id and its arcs. Caller holds r.mu.
func (r *crossRegistry) removeLocked(id model.TxnID) {
	e, ok := r.txns[id]
	if !ok {
		return
	}
	for o := range e.out {
		if oe, ok := r.txns[o]; ok {
			delete(oe.in, id)
		}
	}
	for i := range e.in {
		if ie, ok := r.txns[i]; ok {
			delete(ie.out, id)
		}
	}
	delete(r.txns, id)
	r.live.Delete(id)
	r.dirty[id] = struct{}{}
	if e.decided {
		for i, p := range e.parts {
			if !e.clean[i] {
				r.cleanPending[p].Add(-1)
			}
		}
	}
	r.size.Store(int64(len(r.txns)))
}

// markDirty records id as a dead cross incarnation whose labels may still
// sit, unpruned, in shard graphs. Recovery calls it for every cross ID it
// restored but did not re-register (committed, aborted, or presumed-abort
// resolved), so a future re-registration of the ID purges the stale labels
// exactly as it would for an ID retired live.
func (r *crossRegistry) markDirty(id model.TxnID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.txns[id]; !ok {
		r.dirty[id] = struct{}{}
	}
}

// drop retires an aborted cross transaction immediately: its sub-nodes are
// removed from every shard graph, so it can never be on a future cycle.
// Labels it sourced die with it (pruned lazily by the shards). Dropping
// its arcs may unblock successors' retirement.
func (r *crossRegistry) drop(id model.TxnID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.txns[id]
	if !ok {
		return
	}
	succs := make([]model.TxnID, 0, len(e.out))
	for s := range e.out {
		succs = append(succs, s)
	}
	r.removeLocked(id)
	for _, s := range succs {
		r.maybeRetireLocked(s)
	}
}

// decideCommit marks a committed transaction decided; see maybeRetireLocked
// for when it actually leaves the registry.
func (r *crossRegistry) decideCommit(id model.TxnID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.txns[id]
	if !ok {
		return
	}
	e.decided = true
	for i, p := range e.parts {
		if !e.clean[i] {
			r.cleanPending[p].Add(1)
		}
	}
	r.maybeRetireLocked(id)
}

// maybeRetireLocked retires id iff no future global cycle can pass through
// it, which needs all three of:
//
//  1. decided — its own sub-nodes stop acting;
//  2. clean on every participant — no active node reaches any sub-node, so
//     (arcs only ever point into acting nodes) the logical node's ancestor
//     set is frozen on every shard, and no *new* label can ever arrive at
//     it (a node whose new label would flow in would itself be an active
//     predecessor);
//  3. registry in-degree zero — no live cross transaction reaches it even
//     through *existing* paths. Without this, a cycle could close through
//     id later without touching id at all: X→…→id and id→…→Y both already
//     exist, and only the return path Y→…→X is new. Retiring id would have
//     deleted exactly the two arcs that make that veto fire.
//
// Conditions 1+2 guarantee no new incoming paths, 3 guarantees no existing
// incoming path from anything still alive; together nothing can ever
// re-enter id, so its outgoing reach-arcs are dead weight and the entry can
// go. Retirement cascades: removing id's out-arcs may zero a successor's
// in-degree.
func (r *crossRegistry) maybeRetireLocked(id model.TxnID) {
	e, ok := r.txns[id]
	if !ok {
		return
	}
	if !e.decided || e.cleanN != len(e.parts) || len(e.in) != 0 {
		return
	}
	succs := make([]model.TxnID, 0, len(e.out))
	for s := range e.out {
		succs = append(succs, s)
	}
	r.removeLocked(id)
	for _, s := range succs {
		r.maybeRetireLocked(s)
	}
}

// pendingClean appends to buf the decided transactions for which shard has
// not yet reported cleanliness, and returns it.
func (r *crossRegistry) pendingClean(shard int, buf []model.TxnID) []model.TxnID {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, e := range r.txns {
		if !e.decided {
			continue
		}
		for i, p := range e.parts {
			if p == shard && !e.clean[i] {
				buf = append(buf, id)
				break
			}
		}
	}
	return buf
}

// reportClean records that id's sub-node on shard has no active ancestor.
// The property is monotone — in the basic model arcs only ever point into
// acting nodes, so once every path into a completed sub-node passes
// through completed nodes only, its ancestor set is frozen — which is what
// makes a one-shot report sound. When the last participant reports, the
// transaction is retired from the registry.
func (r *crossRegistry) reportClean(id model.TxnID, shard int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.txns[id]
	if !ok {
		return
	}
	for i, p := range e.parts {
		if p == shard && !e.clean[i] {
			e.clean[i] = true
			e.cleanN++
			if e.decided {
				r.cleanPending[p].Add(-1)
			}
		}
	}
	r.maybeRetireLocked(id)
}

// reachableLocked reports whether from reaches to through registry arcs.
// Caller holds r.mu; the registry graph is tiny (live cross transactions
// only), so a straight DFS with a map is fine.
func (r *crossRegistry) reachableLocked(from, to model.TxnID) bool {
	if from == to {
		return true
	}
	visited := map[model.TxnID]struct{}{from: {}}
	stack := []model.TxnID{from}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		e, ok := r.txns[n]
		if !ok {
			continue
		}
		for s := range e.out {
			if s == to {
				return true
			}
			if _, seen := visited[s]; !seen {
				visited[s] = struct{}{}
				stack = append(stack, s)
			}
		}
	}
	return false
}

// OnCrossReach implements core.CrossTracker: a shard discovered a path
// src→…→dst inside its graph. Recording the reach-arc src→dst is refused
// (false) iff dst already reaches src through the registry — then some
// chain of shard-local paths dst→…→src exists across the other shards,
// and accepting the acting step would close a global cycle.
func (r *crossRegistry) OnCrossReach(src, dst model.TxnID) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	se, sok := r.txns[src]
	de, dok := r.txns[dst]
	if !sok || !dok {
		// One side is retired: it can no longer be on a future cycle, so
		// the arc is irrelevant.
		return true
	}
	if _, ok := se.out[dst]; ok {
		return true
	}
	if r.reachableLocked(dst, src) {
		return false
	}
	if se.out == nil {
		se.out = make(map[model.TxnID]struct{})
	}
	if de.in == nil {
		de.in = make(map[model.TxnID]struct{})
	}
	se.out[dst] = struct{}{}
	de.in[src] = struct{}{}
	return true
}

// LabelLive implements core.CrossTracker: a label stays relevant while its
// transaction is registered. Lock-free (see the live mirror) because the
// policy sweeps of every shard call it per label per retained node.
func (r *crossRegistry) LabelLive(id model.TxnID) bool {
	if r.size.Load() == 0 {
		return false
	}
	_, ok := r.live.Load(id)
	return ok
}

// ---------------------------------------------------------------------------
// Engine-side protocol driver. All of these run on the submitting client's
// goroutine with ct.mu held, doing plain round-trips to participant shards;
// shards never block on each other, so concurrent two-phase commits (even
// with overlapping participants) cannot deadlock.

// participantsOf returns the sorted distinct shards owning the footprint.
func (e *Engine) participantsOf(xs []model.Entity) []int {
	parts := make([]int, 0, 4)
	for _, x := range xs {
		p := e.partitionOf(x)
		dup := false
		for _, q := range parts {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			parts = append(parts, p)
		}
	}
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return parts
}

// beginCross fans a cross-partition BEGIN out as one sub-begin per
// participating shard. On any failure (admission shed, duplicate ID on
// some shard, or the engine closing) the sub-transactions already begun
// are rolled back and the logical transaction never existed.
func (e *Engine) beginCross(ctx context.Context, step model.Step, pri Priority) Result {
	ct := &crossTxn{id: step.Txn, parts: e.participantsOf(step.Entities)}
	if !e.routes.storeNew(step.Txn, route{kind: routeCross, ct: ct, pri: pri}) {
		return Result{Step: step, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn,
			Err: fmt.Errorf("engine: duplicate BEGIN for T%d: %w", step.Txn, ErrProtocol)}
	}
	if pri != PriorityHigh && e.cfg.OverloadWatermark > 0 {
		// A cross transaction runs on every participant; one overloaded
		// participant sheds it whole. Checked after the duplicate test (a
		// protocol bug must never read as retryable overload); no
		// sub-transaction exists yet, so dropping the route is the whole
		// rollback.
		for _, p := range ct.parts {
			if e.shardOverloaded(p) {
				e.routes.delete(step.Txn)
				return e.shedBegin(step, p)
			}
		}
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.done {
		// A concurrent Engine.Abort won the race after the route was
		// published and already resolved the transaction (it deleted the
		// route and counted the abort). Beginning sub-transactions now
		// would resurrect it with no route left to ever finish them.
		return Result{Step: step, Outcome: OutcomeRejected, Aborted: step.Txn, CompletedTxn: model.NoTxn, Err: stepErr(step, ErrTxnAborted)}
	}
	if e.registry.register(step.Txn, ct.parts) {
		// The ID is being reused after an earlier cross incarnation died:
		// purge its stale labels everywhere before any sub-node exists.
		for _, sh := range e.shards {
			sh.do(request{kind: reqPurgeLabel, step: model.Step{Txn: step.Txn}})
		}
	}
	for i, p := range ct.parts {
		// A context dying mid-fan-out rolls back like any sub-begin
		// failure: the logical transaction never existed.
		var rep reply
		ok := ctx.Err() == nil
		if ok {
			rep, ok = e.shards[p].do(request{kind: reqBeginSub, step: step})
		}
		if !ok || rep.res.Outcome != OutcomeAccepted {
			for _, q := range ct.parts[:i] {
				e.abortSub(step.Txn, q)
			}
			ct.done = true
			e.registry.drop(step.Txn)
			e.routes.delete(step.Txn)
			if err := ctx.Err(); err != nil {
				e.rejected.Add(1)
				return Result{Step: step, Outcome: OutcomeRejected, Aborted: step.Txn, CompletedTxn: model.NoTxn, Err: ctxErr(step, context.Cause(ctx))}
			}
			if !ok {
				return Result{Step: step, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: stepErr(step, ErrClosed)}
			}
			return rep.res
		}
	}
	e.crossTxns.Add(1)
	e.accepted.Add(1)
	return Result{Step: step, Outcome: OutcomeAccepted, Aborted: model.NoTxn, CompletedTxn: model.NoTxn}
}

// crossStep handles a read or final write of a live cross transaction.
func (e *Engine) crossStep(ctx context.Context, step model.Step, r route) Result {
	ct := r.ct
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.done {
		if ct.committed {
			return Result{Step: step, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn,
				Err: fmt.Errorf("engine: step for T%d after its final write: %w", ct.id, ErrProtocol)}
		}
		e.rejected.Add(1)
		return Result{Step: step, Outcome: OutcomeRejected, Aborted: step.Txn, CompletedTxn: model.NoTxn, Err: e.deadTxnErr(step)}
	}
	if step.Kind == model.KindRead {
		p := e.partitionOf(step.Entity)
		if !ct.participant(p) {
			return e.crossMisroute(step, ct)
		}
		res := e.doStep(p, step)
		if res.Outcome == OutcomeRejected && res.Aborted == ct.id {
			// The shard rejected the read (local cycle, or the registry
			// vetoed an inter-shard arc) and removed its sub-node; finish
			// the logical abort on the siblings.
			e.finishCrossAbort(ct, p)
		}
		return res
	}
	return e.commitCross(ctx, ct, step)
}

// crossMisroute aborts a cross transaction that touched an entity outside
// its declared participant set. Caller holds ct.mu.
func (e *Engine) crossMisroute(step model.Step, ct *crossTxn) Result {
	e.misroutes.Add(1)
	e.rejected.Add(1)
	if e.cfg.Bus != nil {
		e.cfg.Bus.Emit(emit.Event{Kind: emit.KindVeto, Class: emit.ClassMisroute,
			Shard: emit.NoShard, Txn: ct.id})
	}
	if e.cfg.Log != nil {
		e.cfg.Log.Append(step, false)
	}
	e.finishCrossAbort(ct, -1)
	return Result{Step: step, Outcome: OutcomeRejected, Aborted: ct.id, CompletedTxn: model.NoTxn, Err: stepErr(step, ErrMisroute)}
}

// finishCrossAbort aborts ct's sub-transactions on every participant except
// skipShard (whose scheduler already removed its own sub-node), then
// retires the logical transaction: route, registry entry, trace exclusion,
// and the engine's logical abort counters. Caller holds ct.mu.
func (e *Engine) finishCrossAbort(ct *crossTxn, skipShard int) {
	for _, p := range ct.parts {
		if p != skipShard {
			e.abortSub(ct.id, p)
		}
	}
	ct.done = true
	e.registry.drop(ct.id)
	e.routes.delete(ct.id)
	e.aborted.Add(1)
	e.crossAborts.Add(1)
	if e.cfg.Log != nil {
		e.cfg.Log.MarkAborted(ct.id)
	}
}

// abortSub releases one shard's sub-transaction (pin included), ignoring
// shards that already lost it.
func (e *Engine) abortSub(id model.TxnID, shard int) {
	e.shards[shard].do(request{kind: reqAbortSub, step: model.Step{Txn: id}})
}

// writeSubsetFor carves the slice of the final write set owned by shard p.
func (e *Engine) writeSubsetFor(final model.Step, p int) model.Step {
	var xs []model.Entity
	for _, x := range final.Entities {
		if e.partitionOf(x) == p {
			xs = append(xs, x)
		}
	}
	return model.Step{Kind: model.KindWriteFinal, Txn: final.Txn, Entities: xs}
}

// commitCross is the two-phase commit of ct's final write. Caller holds
// ct.mu. Every outcome — commit, local-cycle vote, registry veto, context
// cancellation between PREPARE and decision, shard shutdown — resolves the
// transaction deterministically on all participants: a prepared-but-
// undecided sub-transaction never outlives the decision, and its pins are
// released on every shard.
func (e *Engine) commitCross(ctx context.Context, ct *crossTxn, final model.Step) Result {
	for _, x := range final.Entities {
		if !ct.participant(e.partitionOf(x)) {
			return e.crossMisroute(final, ct)
		}
	}
	for _, p := range ct.parts {
		sub := e.writeSubsetFor(final, p)
		rep, ok := e.shards[p].do(request{kind: reqPrepareSub, step: sub})
		e.prepares.Add(1)
		if !ok {
			e.finishCrossAbort(ct, -1)
			return Result{Step: final, Outcome: OutcomeError, Aborted: ct.id, CompletedTxn: model.NoTxn, Err: stepErr(final, ErrClosed)}
		}
		switch rep.res.Outcome {
		case OutcomeAccepted:
		case OutcomeRejected:
			// A NO vote: either a local cycle on shard p (ErrCycle) or a
			// registry veto (ErrCrossCycle). Abort everywhere — only this
			// transaction dies; no bystander is touched.
			e.finishCrossAbort(ct, -1)
			e.rejected.Add(1)
			return Result{Step: final, Outcome: OutcomeRejected, Aborted: ct.id, CompletedTxn: model.NoTxn, Err: rep.res.Err}
		default:
			e.finishCrossAbort(ct, -1)
			return Result{Step: final, Outcome: OutcomeError, Aborted: ct.id, CompletedTxn: model.NoTxn, Err: rep.res.Err}
		}
	}
	if hook := testHookPrepared; hook != nil {
		hook(ct.id)
	}
	if ctx.Err() != nil {
		// The client's context died while every participant sat prepared:
		// decide ABORT, releasing the pins and the registry entry, exactly
		// as a client abort would.
		e.rejected.Add(1)
		e.finishCrossAbort(ct, -1)
		return Result{Step: final, Outcome: OutcomeRejected, Aborted: ct.id, CompletedTxn: model.NoTxn, Err: ctxErr(final, context.Cause(ctx))}
	}
	// Unanimous YES: commit everywhere. The write arcs are already in every
	// participant's graph (placed at prepare), so the decision only flips
	// sub-transactions to completed and releases pins. The first
	// participant's durable RecCommit is the commit point; if it cannot be
	// journaled, no evidence of the decision exists anywhere and the
	// transaction resolves as the abort recovery would presume.
	for i, p := range ct.parts {
		rep, ok := e.shards[p].do(request{kind: reqCommitSub, step: model.Step{Txn: ct.id}, decisionDurable: i > 0})
		if ok && i == 0 && rep.res.Outcome != OutcomeAccepted && rep.res.Aborted == ct.id {
			// The commit point failed (journal dead on the first
			// participant, which already released its own sub): abort the
			// siblings and report the transaction aborted.
			e.finishCrossAbort(ct, p)
			return Result{Step: final, Outcome: OutcomeError, Aborted: ct.id, CompletedTxn: model.NoTxn, Err: rep.res.Err}
		}
		if !ok {
			// The engine is closing; surviving shards keep their prepared
			// state only until their goroutines exit.
			ct.done = true
			e.registry.drop(ct.id)
			e.routes.delete(ct.id)
			return Result{Step: final, Outcome: OutcomeError, Aborted: model.NoTxn, CompletedTxn: model.NoTxn, Err: stepErr(final, ErrClosed)}
		}
	}
	ct.done = true
	ct.committed = true
	e.registry.decideCommit(ct.id)
	// Wake the participants: a shard that checked its cleanPending gauge
	// before decideCommit raised it may be blocked waiting for traffic;
	// the kick makes it run reportCrossClean (a shard that is busy treats
	// it as a no-op request).
	for _, p := range ct.parts {
		e.shards[p].trySend(request{kind: reqUpkeep})
	}
	e.routes.delete(ct.id)
	e.accepted.Add(1)
	e.completed.Add(1)
	return Result{Step: final, Outcome: OutcomeAccepted, Aborted: model.NoTxn, CompletedTxn: ct.id}
}

// crossClientAbort implements Engine.Abort for a cross transaction: it
// releases the sub-transactions (pins included) on all participants,
// whatever state the transaction is in — freshly begun, mid-reads, or
// prepared-but-undecided (Abort then serializes after the decision via
// ct.mu and reports false). Returns whether the abort took effect.
func (e *Engine) crossClientAbort(ct *crossTxn) bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.done {
		return false
	}
	e.finishCrossAbort(ct, -1)
	return true
}
