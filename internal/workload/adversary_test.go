package workload

import (
	"testing"

	"repro/internal/model"
)

func drainAdversary(t *testing.T, a *Adversary, limit int) []model.Step {
	t.Helper()
	var out []model.Step
	for len(out) < limit {
		st, ok := a.Next()
		if !ok {
			return out
		}
		out = append(out, st)
	}
	t.Fatalf("adversary produced %d steps without finishing (runaway queue)", limit)
	return nil
}

// TestAdversaryDeterministic: same config, same seed, same stream.
func TestAdversaryDeterministic(t *testing.T) {
	cfg := AdversaryConfig{Shards: 4, Victims: 200, Sleepers: 2, CrossSleepers: 1, FanOutFrac: 0.3, Seed: 11}
	a := drainAdversary(t, NewAdversary(cfg), 1<<16)
	b := drainAdversary(t, NewAdversary(cfg), 1<<16)
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("step %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestAdversaryFreshTrapsNeverReused is the load-bearing property: every
// trap entity is written by exactly one victim and each victim's trap was
// read by a sleeper first. A reused trap would make its next writer the
// previous victim's C1 witness — the leak would self-heal and the whole
// suite would prove nothing.
func TestAdversaryFreshTrapsNeverReused(t *testing.T) {
	steps := drainAdversary(t, NewAdversary(AdversaryConfig{
		Shards: 4, Victims: 500, Sleepers: 3, CrossSleepers: 2, FanOutFrac: 0.25, Seed: 3,
	}), 1<<16)
	read := make(map[model.Entity]bool)
	written := make(map[model.Entity]bool)
	victims := 0
	for _, st := range steps {
		switch st.Kind {
		case model.KindRead:
			read[st.Entity] = true
		case model.KindWriteFinal:
			victims++
			for _, x := range st.Entities {
				if written[x] {
					t.Fatalf("trap entity %d written twice — the leak would self-heal", x)
				}
				written[x] = true
				if !read[x] {
					t.Fatalf("victim %v writes %d, never read by a sleeper — untrapped victim", st.Txn, x)
				}
			}
		}
	}
	if victims != 500 {
		t.Fatalf("issued %d victims, want 500", victims)
	}
}

// TestAdversaryRespawn: reaping a sleeper retires its ID for good; with
// Respawn the slot comes back under a fresh ID and keeps trapping, without
// it the attack winds down once every sleeper is gone.
func TestAdversaryRespawn(t *testing.T) {
	for _, respawn := range []bool{true, false} {
		a := NewAdversary(AdversaryConfig{Shards: 1, Victims: 50, Sleepers: 1, Respawn: respawn, Seed: 5})
		// Pull steps until the sleeper's BEGIN is out, then reap it.
		st, ok := a.Next()
		if !ok || st.Kind != model.KindBegin {
			t.Fatalf("respawn=%v: first step = %v, want the sleeper BEGIN", respawn, st)
		}
		sleeper := st.Txn
		a.NotifyAbort(sleeper)
		rest := drainAdversary(t, a, 1<<16)
		sawRespawn := false
		for _, st := range rest {
			if st.Txn == sleeper {
				t.Fatalf("respawn=%v: dead sleeper %v still issues %v", respawn, sleeper, st)
			}
			if st.Kind == model.KindBegin && len(st.Entities) == 1 && st.Txn != sleeper {
				// Victim begins also match this shape; a respawned sleeper is
				// identified by a later read from the same ID.
				for _, later := range rest {
					if later.Kind == model.KindRead && later.Txn == st.Txn {
						sawRespawn = true
					}
				}
			}
		}
		if sawRespawn != respawn {
			t.Fatalf("respawn=%v: saw respawned sleeper = %v", respawn, sawRespawn)
		}
		if a.Aborts() != 1 {
			t.Fatalf("respawn=%v: Aborts = %d, want 1", respawn, a.Aborts())
		}
	}
}
