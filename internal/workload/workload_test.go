package workload

import (
	"testing"

	"repro/internal/model"
)

func drain(g *Gen, max int) []model.Step {
	var out []model.Step
	for i := 0; i < max; i++ {
		st, ok := g.Next()
		if !ok {
			break
		}
		out = append(out, st)
	}
	return out
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Entities: 16, Txns: 50, MaxActive: 4, Seed: 7}
	a := drain(New(cfg), 10000)
	b := drain(New(cfg), 10000)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("step %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := drain(New(Config{Entities: 16, Txns: 50, Seed: 1}), 10000)
	b := drain(New(Config{Entities: 16, Txns: 50, Seed: 2}), 10000)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i].String() != b[i].String() {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

// checkWellFormed verifies per-transaction step structure: BEGIN, then
// reads, then exactly one final write, and nothing after.
func checkWellFormed(t *testing.T, steps []model.Step) map[model.TxnID]bool {
	t.Helper()
	began := map[model.TxnID]bool{}
	done := map[model.TxnID]bool{}
	for _, st := range steps {
		switch st.Kind {
		case model.KindBegin:
			if began[st.Txn] {
				t.Fatalf("duplicate BEGIN for T%d", st.Txn)
			}
			began[st.Txn] = true
		case model.KindRead:
			if !began[st.Txn] || done[st.Txn] {
				t.Fatalf("read out of order for T%d", st.Txn)
			}
		case model.KindWriteFinal:
			if !began[st.Txn] || done[st.Txn] {
				t.Fatalf("final write out of order for T%d", st.Txn)
			}
			done[st.Txn] = true
		default:
			t.Fatalf("unexpected step kind %v", st.Kind)
		}
	}
	return done
}

func TestWellFormedStreams(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := New(Config{Entities: 8, Txns: 40, MaxActive: 5, Seed: seed})
		steps := drain(g, 100000)
		done := checkWellFormed(t, steps)
		if len(done) != 40 {
			t.Fatalf("seed %d: %d transactions completed, want 40", seed, len(done))
		}
	}
}

func TestMaxActiveRespected(t *testing.T) {
	g := New(Config{Entities: 8, Txns: 60, MaxActive: 3, Seed: 5})
	active := 0
	peak := 0
	for {
		st, ok := g.Next()
		if !ok {
			break
		}
		switch st.Kind {
		case model.KindBegin:
			active++
		case model.KindWriteFinal:
			active--
		}
		if active > peak {
			peak = active
		}
	}
	if peak > 3 {
		t.Fatalf("peak active = %d exceeds MaxActive=3", peak)
	}
}

func TestEntityRangeRespected(t *testing.T) {
	g := New(Config{Entities: 4, Txns: 50, Seed: 9, ZipfS: 1.5})
	for _, st := range drain(g, 100000) {
		check := func(x model.Entity) {
			if x < 0 || int(x) >= 4 {
				t.Fatalf("entity %d out of range", x)
			}
		}
		if st.Kind == model.KindRead {
			check(st.Entity)
		}
		for _, x := range st.Entities {
			check(x)
		}
	}
}

func TestHotspotSkew(t *testing.T) {
	g := New(Config{Entities: 100, Txns: 300, Seed: 3, HotFrac: 0.1, HotProb: 0.9,
		ReadsMin: 2, ReadsMax: 4})
	hot, cold := 0, 0
	for _, st := range drain(g, 1000000) {
		if st.Kind == model.KindRead {
			if st.Entity < 10 {
				hot++
			} else {
				cold++
			}
		}
	}
	if hot <= cold {
		t.Fatalf("hotspot skew not visible: hot=%d cold=%d", hot, cold)
	}
}

func TestNotifyAbortDiscards(t *testing.T) {
	g := New(Config{Entities: 8, Txns: 10, MaxActive: 2, Seed: 4})
	var victim model.TxnID = -1
	for {
		st, ok := g.Next()
		if !ok {
			break
		}
		if st.Kind == model.KindBegin && victim == -1 {
			victim = st.Txn
			g.NotifyAbort(victim)
			continue
		}
		if st.Txn == victim {
			t.Fatalf("step %v for aborted transaction", st)
		}
	}
	if g.Aborts() != 1 {
		t.Fatalf("Aborts = %d", g.Aborts())
	}
}

func TestRestartAbortedReissuesPlan(t *testing.T) {
	g := New(Config{Entities: 8, Txns: 5, MaxActive: 2, Seed: 4, RestartAborted: true})
	// Abort the first transaction right after its BEGIN; a new BEGIN with
	// a fresh ID must appear later.
	first, ok := g.Next()
	if !ok || first.Kind != model.KindBegin {
		t.Fatalf("first step should be a BEGIN, got %v", first)
	}
	g.NotifyAbort(first.Txn)
	reissued := false
	ids := map[model.TxnID]bool{}
	for {
		st, ok := g.Next()
		if !ok {
			break
		}
		if st.Kind == model.KindBegin {
			if st.Txn == first.Txn {
				t.Fatal("IDs must not be reused")
			}
			ids[st.Txn] = true
		}
	}
	// 5 fresh txns: the aborted one plus 4 others, plus 1 reissue = 5
	// distinct BEGINs after the first.
	if len(ids) != 5 {
		t.Fatalf("got %d subsequent BEGINs, want 5 (4 fresh + 1 reissue)", len(ids))
	}
	reissued = len(ids) == 5
	if !reissued {
		t.Fatal("aborted plan was not reissued")
	}
}

func TestStragglerSpansRun(t *testing.T) {
	g := New(Config{Entities: 8, Txns: 30, MaxActive: 3, Seed: 11, Straggler: 10})
	steps := drain(g, 100000)
	if len(steps) == 0 {
		t.Fatal("no steps")
	}
	// First step is the straggler's BEGIN; find its final write.
	stragglerID := steps[0].Txn
	if steps[0].Kind != model.KindBegin {
		t.Fatalf("first step %v", steps[0])
	}
	finalIdx := -1
	reads := 0
	for i, st := range steps {
		if st.Txn == stragglerID {
			switch st.Kind {
			case model.KindRead:
				reads++
			case model.KindWriteFinal:
				finalIdx = i
			}
		}
	}
	if finalIdx != len(steps)-1 {
		t.Fatalf("straggler must finish last (at %d of %d)", finalIdx, len(steps)-1)
	}
	if reads != 10 {
		t.Fatalf("straggler reads = %d, want 10", reads)
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := New(Config{})
	steps := drain(g, 10000000)
	if len(steps) == 0 {
		t.Fatal("defaults should produce a runnable workload")
	}
	checkWellFormed(t, steps)
	if g.String() == "" {
		t.Fatal("String()")
	}
	if g.Issued() == 0 {
		t.Fatal("Issued()")
	}
}

func TestExhaustionReturnsFalseForever(t *testing.T) {
	g := New(Config{Entities: 4, Txns: 2, Seed: 1})
	drain(g, 1000000)
	for i := 0; i < 3; i++ {
		if _, ok := g.Next(); ok {
			t.Fatal("exhausted generator must keep returning false")
		}
	}
}

func TestPartitionAwareness(t *testing.T) {
	const shards = 4
	cfg := Config{
		Entities: 64, Txns: 200, MaxActive: 4, Shards: shards,
		CrossFrac: 0.3, DeclareFootprint: true, Seed: 11,
	}
	steps := drain(New(cfg), 100000)
	// Reconstruct per-transaction entity footprints from the stream.
	touched := make(map[model.TxnID]map[int]bool)
	declared := make(map[model.TxnID]map[int]bool)
	note := func(m map[model.TxnID]map[int]bool, id model.TxnID, x model.Entity) {
		if m[id] == nil {
			m[id] = make(map[int]bool)
		}
		m[id][int(x)%shards] = true
	}
	for _, st := range steps {
		switch st.Kind {
		case model.KindBegin:
			if len(st.Entities) == 0 {
				t.Fatalf("DeclareFootprint set but BEGIN %v carries no footprint", st)
			}
			for _, x := range st.Entities {
				note(declared, st.Txn, x)
			}
		case model.KindRead:
			note(touched, st.Txn, st.Entity)
		case model.KindWriteFinal:
			for _, x := range st.Entities {
				note(touched, st.Txn, x)
			}
		}
	}
	var local, cross int
	for id, parts := range declared {
		switch len(parts) {
		case 1:
			local++
		default:
			cross++
		}
		// Every touched partition must have been declared.
		for p := range touched[id] {
			if !parts[p] {
				t.Fatalf("T%d touched undeclared partition %d", id, p)
			}
		}
	}
	if local == 0 || cross == 0 {
		t.Fatalf("want a mix of local and cross transactions, got %d local / %d cross", local, cross)
	}
	frac := float64(cross) / float64(local+cross)
	if frac < 0.1 || frac > 0.6 {
		t.Fatalf("cross fraction %.2f wildly off CrossFrac=0.3", frac)
	}
}

func TestBaseTxnID(t *testing.T) {
	steps := drain(New(Config{Entities: 16, Txns: 20, BaseTxnID: 5000, Seed: 3}), 10000)
	for _, st := range steps {
		if st.Txn < 5000 {
			t.Fatalf("step %v below BaseTxnID", st)
		}
	}
}

func TestStragglerDeclaredCross(t *testing.T) {
	cfg := Config{
		Entities: 32, Txns: 30, Shards: 4, DeclareFootprint: true,
		Straggler: 5, Seed: 9,
	}
	steps := drain(New(cfg), 100000)
	first := steps[0]
	if first.Kind != model.KindBegin {
		t.Fatalf("first step %v is not the straggler's BEGIN", first)
	}
	parts := make(map[int]bool)
	for _, x := range first.Entities {
		parts[int(x)%4] = true
	}
	if len(parts) < 2 {
		t.Fatalf("straggler footprint %v does not span partitions", first.Entities)
	}
}

func TestCrossShardsSpan(t *testing.T) {
	const shards = 4
	cfg := Config{
		Entities: 64, Txns: 200, MaxActive: 4, Shards: shards,
		CrossFrac: 1.0, CrossShards: 3, DeclareFootprint: true, Seed: 13,
	}
	steps := drain(New(cfg), 100000)
	spans := make(map[model.TxnID]map[int]bool)
	for _, st := range steps {
		if st.Kind != model.KindBegin {
			continue
		}
		parts := make(map[int]bool)
		for _, x := range st.Entities {
			parts[int(x)%shards] = true
		}
		spans[st.Txn] = parts
	}
	if len(spans) == 0 {
		t.Fatal("no transactions generated")
	}
	for id, parts := range spans {
		if len(parts) != 3 {
			t.Fatalf("T%d spans %d partitions, want exactly CrossShards=3 (footprint parts %v)", id, len(parts), parts)
		}
	}
}
