package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Adversary generates the retention-leak attack family the retention
// governor exists to defeat. The paper's motivating failure needs exactly
// two ingredients: an active transaction A that read an entity x, and a
// completed transaction V that later wrote x with nobody writing x again.
// Then A is an active tight predecessor of V and V can never acquire the
// completed tight successor witness Theorem 1's C1 demands — V is retained
// for as long as A lives. The adversary manufactures that shape on
// purpose, at scale, in three escalating forms:
//
//   - Sleeper transactions: long-lived sessions that never commit. Each
//     victim cycle allocates a FRESH trap entity (never reused — a reused
//     trap's next writer would become the previous victim's witness and
//     the leak would self-heal), has a sleeper read it, then has a
//     short-lived victim write it and complete. One sleeper pins one
//     victim per cycle, forever.
//   - Label-chain bombs: cross-partition sleepers whose declared footprint
//     spans every partition. Their sub-nodes source cross-ancestor labels,
//     so every victim they trap is double-gated: C1 fails (no witness) AND
//     the label keeps policyDeletable false until the registry entry dies —
//     PR 3's known conservatism, weaponized.
//   - Pathological cross fan-out: a FanOutFrac fraction of victims write
//     one fresh trap on EVERY partition and commit through 2PC, so a
//     single cross sleeper pins retained storage on all shards at once.
//
// Reaping a sleeper removes its node, arcs, and registry entry; the next
// sweep then deletes every victim it pinned — which is precisely the
// governor contract the soak test asserts.
type AdversaryConfig struct {
	// Shards is the engine partition count (entity x lives on x mod
	// Shards); default 1.
	Shards int
	// Victims is how many trapped victim transactions to issue.
	Victims int
	// Sleepers is the number of partition-local sleeper sessions (slot j
	// homes at partition j mod Shards); default 1.
	Sleepers int
	// CrossSleepers is the number of label-bomb sleepers whose footprint
	// spans every partition (0 unless Shards > 1).
	CrossSleepers int
	// FanOutFrac in [0,1] is the fraction of victims that write one fresh
	// trap per partition and commit through 2PC (needs a cross sleeper to
	// trap them; 0 unless Shards > 1).
	FanOutFrac float64
	// Respawn restarts a reaped sleeper under a fresh ID, so the attack
	// pressure survives the governor — the steady state the soak test
	// wants: bounded retention under *sustained* attack, not one reap.
	Respawn bool
	// BaseTxnID offsets allocated IDs (disjoint ID spaces per generator).
	BaseTxnID model.TxnID
	// Seed makes the stream deterministic.
	Seed int64
}

func (c *AdversaryConfig) withDefaults() AdversaryConfig {
	out := *c
	if out.Shards <= 0 {
		out.Shards = 1
	}
	if out.Victims <= 0 {
		out.Victims = 100
	}
	if out.Sleepers <= 0 && out.CrossSleepers <= 0 {
		out.Sleepers = 1
	}
	if out.Shards < 2 {
		// Cross shapes need at least two partitions.
		out.CrossSleepers = 0
		out.FanOutFrac = 0
	}
	if out.FanOutFrac < 0 {
		out.FanOutFrac = 0
	}
	if out.FanOutFrac > 1 {
		out.FanOutFrac = 1
	}
	return out
}

// sleeperSlot is one sleeper session: alive until the scheduler (or the
// governor) aborts it, then optionally respawned under a fresh ID.
type sleeperSlot struct {
	id    model.TxnID // NoTxn while dead and awaiting respawn (or retired)
	cross bool
	home  int // local sleepers only
	begun bool
}

// Adversary implements Generator for the attack family.
type Adversary struct {
	cfg   AdversaryConfig
	rng   *rand.Rand
	queue []model.Step
	slots []sleeperSlot
	// trapNext[p] is partition p's next fresh trap entity (p + Shards*k,
	// monotone — fresh traps are the load-bearing trick; see the type doc).
	trapNext []model.Entity
	nextID   model.TxnID
	issued   int
	aborted  int
	// dead marks aborted transactions whose already-queued steps must be
	// dropped instead of emitted.
	dead map[model.TxnID]bool
}

var _ Generator = (*Adversary)(nil)

// NewAdversary returns the attack generator for cfg.
func NewAdversary(cfg AdversaryConfig) *Adversary {
	c := cfg.withDefaults()
	a := &Adversary{
		cfg:      c,
		rng:      rand.New(rand.NewSource(c.Seed)),
		trapNext: make([]model.Entity, c.Shards),
		nextID:   c.BaseTxnID,
		dead:     make(map[model.TxnID]bool),
	}
	for p := range a.trapNext {
		a.trapNext[p] = model.Entity(p)
	}
	for j := 0; j < c.Sleepers; j++ {
		a.slots = append(a.slots, sleeperSlot{id: model.NoTxn, home: j % c.Shards})
	}
	for j := 0; j < c.CrossSleepers; j++ {
		a.slots = append(a.slots, sleeperSlot{id: model.NoTxn, cross: true})
	}
	return a
}

// Aborts returns how many aborts the generator has been notified of.
func (a *Adversary) Aborts() int { return a.aborted }

// Issued returns how many victim transactions have been issued.
func (a *Adversary) Issued() int { return a.issued }

// SleeperIDs returns the IDs of currently-live sleeper sessions (begun and
// not yet aborted), for tests that need to identify reap victims.
func (a *Adversary) SleeperIDs() []model.TxnID {
	var out []model.TxnID
	for _, s := range a.slots {
		if s.id != model.NoTxn && s.begun {
			out = append(out, s.id)
		}
	}
	return out
}

// freshTrap allocates partition p's next never-before-seen entity.
func (a *Adversary) freshTrap(p int) model.Entity {
	x := a.trapNext[p]
	a.trapNext[p] += model.Entity(a.cfg.Shards)
	return x
}

func (a *Adversary) allocID() model.TxnID {
	id := a.nextID
	a.nextID++
	return id
}

// beginSleeper enqueues slot i's BEGIN. A local sleeper declares one fresh
// entity of its home partition (partition discipline is partition-level,
// so its later reads of other traps there are legal); a cross sleeper
// declares one fresh entity per partition, making it a label-sourcing
// cross transaction on every shard.
func (a *Adversary) beginSleeper(i int) {
	s := &a.slots[i]
	s.id = a.allocID()
	s.begun = true
	if s.cross {
		fp := make([]model.Entity, a.cfg.Shards)
		for p := range fp {
			fp[p] = a.freshTrap(p)
		}
		a.queue = append(a.queue, model.BeginDeclared(s.id, fp...))
		return
	}
	a.queue = append(a.queue, model.BeginDeclared(s.id, a.freshTrap(s.home)))
}

// liveSlot picks a random live sleeper slot, preferring cross sleepers
// when cross is required; -1 if none qualifies.
func (a *Adversary) liveSlot(needCross bool) int {
	cands := make([]int, 0, len(a.slots))
	for i, s := range a.slots {
		if s.id == model.NoTxn || !s.begun {
			continue
		}
		if needCross && !s.cross {
			continue
		}
		cands = append(cands, i)
	}
	if len(cands) == 0 {
		return -1
	}
	return cands[a.rng.Intn(len(cands))]
}

// refill plans one victim cycle: (re)begin dead sleeper slots, have a
// sleeper read the fresh trap(s), then issue the victim that writes them.
func (a *Adversary) refill() {
	for i := range a.slots {
		if a.slots[i].id == model.NoTxn && (a.cfg.Respawn || !a.slots[i].begun) {
			a.beginSleeper(i)
		}
	}
	if a.issued >= a.cfg.Victims {
		return
	}
	a.issued++
	victim := a.allocID()
	if a.cfg.FanOutFrac > 0 && a.rng.Float64() < a.cfg.FanOutFrac {
		if i := a.liveSlot(true); i >= 0 {
			// Fan-out victim: one fresh trap per partition, all read by a
			// cross sleeper, committed through 2PC.
			traps := make([]model.Entity, a.cfg.Shards)
			for p := range traps {
				traps[p] = a.freshTrap(p)
				a.queue = append(a.queue, model.Read(a.slots[i].id, traps[p]))
			}
			a.queue = append(a.queue,
				model.BeginDeclared(victim, traps...),
				model.WriteFinal(victim, traps...))
			return
		}
	}
	// Local victim: home it where a live sleeper can trap it.
	i := a.liveSlot(false)
	home := a.rng.Intn(a.cfg.Shards)
	if i >= 0 && !a.slots[i].cross {
		home = a.slots[i].home
	}
	trap := a.freshTrap(home)
	if i >= 0 {
		a.queue = append(a.queue, model.Read(a.slots[i].id, trap))
	}
	a.queue = append(a.queue,
		model.BeginDeclared(victim, trap),
		model.WriteFinal(victim, trap))
}

// Next implements Generator.
func (a *Adversary) Next() (model.Step, bool) {
	for {
		for len(a.queue) > 0 {
			st := a.queue[0]
			a.queue = a.queue[1:]
			if a.dead[st.Txn] {
				continue
			}
			return st, true
		}
		before := len(a.queue)
		a.refill()
		if len(a.queue) == before {
			// No step producible: victims exhausted and every slot retired.
			return model.Step{}, false
		}
	}
}

// NotifyAbort implements Generator.
func (a *Adversary) NotifyAbort(id model.TxnID) {
	a.aborted++
	a.dead[id] = true
	for i := range a.slots {
		if a.slots[i].id == id {
			a.slots[i].id = model.NoTxn
			if !a.cfg.Respawn {
				// Retired for good: begun stays true so refill skips it.
				return
			}
			// Respawned lazily by the next refill.
			return
		}
	}
}

// String describes the adversary configuration.
func (a *Adversary) String() string {
	return fmt.Sprintf("adversary{shards=%d victims=%d sleepers=%d cross=%d fanout=%.2f respawn=%v seed=%d}",
		a.cfg.Shards, a.cfg.Victims, a.cfg.Sleepers, a.cfg.CrossSleepers, a.cfg.FanOutFrac, a.cfg.Respawn, a.cfg.Seed)
}
