// Package workload generates synthetic basic-model step streams: the
// paper's transactions (BEGIN, reads, one final atomic write) arriving
// interleaved. Generators are deterministic given a seed, and react to
// scheduler aborts by discarding (or optionally restarting) the rest of an
// aborted transaction.
//
// The paper has no testbed; these generators realize the workload shapes
// its introduction motivates: uniform access, skewed (hotspot/zipf)
// access, and the long-running reader ("straggler") that keeps completed
// transactions pinned in the conflict graph.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Generator produces steps for a scheduler driver.
type Generator interface {
	// Next returns the next step, or ok=false when the workload is
	// exhausted (all transactions issued and finished).
	Next() (step model.Step, ok bool)
	// NotifyAbort tells the generator the scheduler aborted id, so it
	// must discard the transaction's remaining steps (and, if configured,
	// reissue the same plan under a fresh ID).
	NotifyAbort(id model.TxnID)
}

// Config parameterizes the standard generator.
type Config struct {
	// Entities is the database size e.
	Entities int
	// Txns is the number of transactions to issue (restarts not counted).
	Txns int
	// MaxActive bounds concurrent active transactions (the paper's a).
	MaxActive int
	// ReadsMin/ReadsMax bound the number of read steps per transaction.
	ReadsMin, ReadsMax int
	// WritesMin/WritesMax bound the final write set size (0 allows
	// read-only transactions, which complete with an empty final write).
	WritesMin, WritesMax int
	// HotFrac in (0,1] sends HotProb of accesses to the first
	// HotFrac*Entities entities (hotspot skew); 0 disables.
	HotFrac float64
	// HotProb is the probability of picking from the hot set (default 0.8
	// when HotFrac > 0).
	HotProb float64
	// ZipfS > 1 draws entities from a Zipf distribution with parameter s
	// instead (overrides HotFrac).
	ZipfS float64
	// Straggler, if > 0, starts one long-running transaction at the
	// beginning that performs Straggler reads spread across the whole
	// run before finally committing (read-only). This is the motivating
	// adversary: an old active transaction is a tight predecessor of
	// everything that touches what it read.
	Straggler int
	// RestartAborted reissues an aborted transaction's plan under a new
	// ID (like a real system retrying).
	RestartAborted bool
	// Shards > 1 makes the generator partition-aware for the sharded
	// engine: entity x belongs to partition x mod Shards, and each
	// transaction draws its accesses from a single home partition (chosen
	// through the configured skew) except for a CrossFrac fraction that
	// deliberately span two partitions.
	Shards int
	// CrossFrac in [0,1] is the fraction of transactions whose footprint
	// spans several partitions (cross-partition traffic). Only meaningful
	// with Shards > 1.
	CrossFrac float64
	// CrossShards is how many partitions a cross-partition plan spans
	// (default 2, clamped to Shards). The 2PC engine runs one
	// sub-transaction per spanned partition.
	CrossShards int
	// BaseTxnID offsets allocated transaction IDs so several generators
	// (one per driver goroutine) can feed one engine with disjoint ID
	// spaces.
	BaseTxnID model.TxnID
	// DeclareFootprint emits BEGIN steps carrying the transaction's entity
	// footprint (model.BeginDeclared), which the sharded engine uses for
	// routing.
	DeclareFootprint bool
	// BeginBias is the probability of beginning a new transaction when
	// below MaxActive rather than advancing an active one (default 0.3).
	BeginBias float64
	// Seed makes the stream deterministic.
	Seed int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Entities <= 0 {
		out.Entities = 32
	}
	if out.Txns <= 0 {
		out.Txns = 100
	}
	if out.MaxActive <= 0 {
		out.MaxActive = 4
	}
	if out.ReadsMax < out.ReadsMin {
		out.ReadsMax = out.ReadsMin
	}
	if out.ReadsMax == 0 && out.ReadsMin == 0 {
		out.ReadsMin, out.ReadsMax = 1, 4
	}
	if out.WritesMax < out.WritesMin {
		out.WritesMax = out.WritesMin
	}
	if out.WritesMax == 0 && out.WritesMin == 0 {
		out.WritesMin, out.WritesMax = 1, 2
	}
	if out.HotFrac > 0 && out.HotProb == 0 {
		out.HotProb = 0.8
	}
	if out.BeginBias == 0 {
		out.BeginBias = 0.3
	}
	if out.Shards > out.Entities {
		out.Shards = out.Entities
	}
	if out.CrossFrac < 0 {
		out.CrossFrac = 0
	}
	if out.CrossFrac > 1 {
		out.CrossFrac = 1
	}
	if out.CrossShards < 2 {
		out.CrossShards = 2
	}
	if out.Shards > 1 && out.CrossShards > out.Shards {
		out.CrossShards = out.Shards
	}
	return out
}

// script is one planned transaction: steps not yet emitted.
type script struct {
	id    model.TxnID
	steps []model.Step // remaining steps (BEGIN excluded; emitted at birth)
	plan  planned      // original plan, for restarts
}

type planned struct {
	reads  []model.Entity
	writes []model.Entity
	// straggler plans interleave reads lazily instead.
	straggler bool
}

// Gen is the standard generator.
type Gen struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *rand.Zipf
	active  map[model.TxnID]*script
	order   []model.TxnID // active IDs in begin order, for deterministic picks
	issued  int
	nextID  model.TxnID
	aborted int
	// stragglerID is the long-running reader, NoTxn if none/finished.
	stragglerID    model.TxnID
	stragglerLeft  int
	stragglerEvery int
	sinceStraggler int
	// pending holds plans of aborted transactions awaiting reissue.
	pending []planned
}

var _ Generator = (*Gen)(nil)

// New returns a generator for cfg.
func New(cfg Config) *Gen {
	c := cfg.withDefaults()
	g := &Gen{
		cfg:         c,
		rng:         rand.New(rand.NewSource(c.Seed)),
		active:      make(map[model.TxnID]*script),
		stragglerID: model.NoTxn,
		nextID:      c.BaseTxnID,
	}
	if c.ZipfS > 1 {
		g.zipf = rand.NewZipf(g.rng, c.ZipfS, 1, uint64(c.Entities-1))
	}
	return g
}

// Aborts returns how many aborts the generator has been notified of.
func (g *Gen) Aborts() int { return g.aborted }

// Issued returns how many transactions have been issued (including
// restarts).
func (g *Gen) Issued() int { return g.issued }

func (g *Gen) pickEntity() model.Entity {
	switch {
	case g.zipf != nil:
		return model.Entity(g.zipf.Uint64())
	case g.cfg.HotFrac > 0:
		hot := int(g.cfg.HotFrac * float64(g.cfg.Entities))
		if hot < 1 {
			hot = 1
		}
		if g.rng.Float64() < g.cfg.HotProb {
			return model.Entity(g.rng.Intn(hot))
		}
		if hot >= g.cfg.Entities {
			return model.Entity(g.rng.Intn(g.cfg.Entities))
		}
		return model.Entity(hot + g.rng.Intn(g.cfg.Entities-hot))
	default:
		return model.Entity(g.rng.Intn(g.cfg.Entities))
	}
}

func (g *Gen) pickDistinct(n int) []model.Entity {
	return g.pickDistinctFrom(n, g.pickEntity)
}

func (g *Gen) pickDistinctFrom(n int, pick func() model.Entity) []model.Entity {
	if n <= 0 {
		return nil
	}
	seen := make(map[model.Entity]bool, n)
	out := make([]model.Entity, 0, n)
	for tries := 0; len(out) < n && tries < 16*n+16; tries++ {
		x := pick()
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// partitionOf returns the engine partition of x (x mod Shards).
func (g *Gen) partitionOf(x model.Entity) int { return int(x) % g.cfg.Shards }

// pickInPartition draws uniformly from partition p's entities
// (those ≡ p mod Shards and < Entities).
func (g *Gen) pickInPartition(p int) model.Entity {
	count := (g.cfg.Entities - p + g.cfg.Shards - 1) / g.cfg.Shards
	return model.Entity(p + g.cfg.Shards*g.rng.Intn(count))
}

func (g *Gen) intBetween(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

func (g *Gen) newPlan() planned {
	nr := g.intBetween(g.cfg.ReadsMin, g.cfg.ReadsMax)
	nw := g.intBetween(g.cfg.WritesMin, g.cfg.WritesMax)
	if g.cfg.Shards > 1 {
		return g.newPartitionPlan(nr, nw)
	}
	return planned{reads: g.pickDistinct(nr), writes: g.pickDistinct(nw)}
}

// newPartitionPlan draws a partition-local plan, or with probability
// CrossFrac a plan guaranteed to span CrossShards partitions.
func (g *Gen) newPartitionPlan(nr, nw int) planned {
	// The home partition inherits the configured skew through pickEntity.
	home := g.partitionOf(g.pickEntity())
	if g.rng.Float64() >= g.cfg.CrossFrac {
		pick := func() model.Entity { return g.pickInPartition(home) }
		return planned{
			reads:  g.pickDistinctFrom(nr, pick),
			writes: g.pickDistinctFrom(nw, pick),
		}
	}
	// Participants: home plus CrossShards-1 distinct others.
	parts := []int{home}
	for len(parts) < g.cfg.CrossShards {
		p := g.rng.Intn(g.cfg.Shards)
		dup := false
		for _, q := range parts {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			parts = append(parts, p)
		}
	}
	pick := func() model.Entity {
		return g.pickInPartition(parts[g.rng.Intn(len(parts))])
	}
	pl := planned{
		reads:  g.pickDistinctFrom(nr, pick),
		writes: g.pickDistinctFrom(nw, pick),
	}
	// Guarantee the footprint really spans every chosen partition so the
	// engine begins one sub-transaction per participant.
	for _, p := range parts {
		covered := false
		for _, x := range pl.reads {
			if g.partitionOf(x) == p {
				covered = true
				break
			}
		}
		for _, x := range pl.writes {
			if g.partitionOf(x) == p {
				covered = true
				break
			}
		}
		if !covered {
			pl.reads = append(pl.reads, g.pickInPartition(p))
		}
	}
	return pl
}

func (g *Gen) beginScript(plan planned, fresh bool) model.Step {
	id := g.nextID
	g.nextID++
	sc := &script{id: id, plan: plan}
	for _, x := range plan.reads {
		sc.steps = append(sc.steps, model.Read(id, x))
	}
	sc.steps = append(sc.steps, model.WriteFinal(id, plan.writes...))
	g.active[id] = sc
	g.order = append(g.order, id)
	if fresh {
		g.issued++
	}
	if g.cfg.DeclareFootprint {
		return model.BeginDeclared(id, footprintOf(plan)...)
	}
	return model.Begin(id)
}

// footprintOf returns the deduplicated union of a plan's reads and writes.
func footprintOf(plan planned) []model.Entity {
	seen := make(map[model.Entity]bool, len(plan.reads)+len(plan.writes))
	out := make([]model.Entity, 0, len(plan.reads)+len(plan.writes))
	for _, xs := range [][]model.Entity{plan.reads, plan.writes} {
		for _, x := range xs {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	return out
}

// Next implements Generator.
func (g *Gen) Next() (model.Step, bool) {
	// Launch the straggler first, if configured.
	if g.cfg.Straggler > 0 && g.stragglerID == model.NoTxn && g.issued == 0 {
		id := g.nextID
		g.nextID++
		g.issued++
		g.stragglerID = id
		g.stragglerLeft = g.cfg.Straggler
		// Spread the straggler's reads across the expected run length.
		expected := g.cfg.Txns * (1 + (g.cfg.ReadsMin+g.cfg.ReadsMax)/2)
		g.stragglerEvery = expected / (g.cfg.Straggler + 1)
		if g.stragglerEvery < 1 {
			g.stragglerEvery = 1
		}
		if g.cfg.DeclareFootprint {
			// The straggler reads anywhere, so under sharding it must be
			// declared cross-partition: one entity per partition.
			n := g.cfg.Shards
			if n < 1 {
				n = 1
			}
			fp := make([]model.Entity, n)
			for i := range fp {
				fp[i] = model.Entity(i)
			}
			return model.BeginDeclared(id, fp...), true
		}
		return model.Begin(id), true
	}
	// Straggler read due?
	if g.stragglerID != model.NoTxn && g.stragglerLeft > 0 {
		g.sinceStraggler++
		if g.sinceStraggler >= g.stragglerEvery {
			g.sinceStraggler = 0
			g.stragglerLeft--
			return model.Read(g.stragglerID, g.pickEntity()), true
		}
	}
	// Reissue aborted plans first.
	if len(g.pending) > 0 && len(g.active) < g.cfg.MaxActive {
		plan := g.pending[0]
		g.pending = g.pending[1:]
		return g.beginScript(plan, false), true
	}
	canBegin := g.issued < g.cfg.Txns+g.stragglerIssued() && len(g.active) < g.cfg.MaxActive
	mustBegin := len(g.active) == 0
	if canBegin && (mustBegin || g.rng.Float64() < g.cfg.BeginBias) {
		return g.beginScript(g.newPlan(), true), true
	}
	if len(g.order) > 0 {
		// Advance a random active script.
		i := g.rng.Intn(len(g.order))
		id := g.order[i]
		sc := g.active[id]
		st := sc.steps[0]
		sc.steps = sc.steps[1:]
		if len(sc.steps) == 0 {
			g.dropActive(id)
		}
		return st, true
	}
	// No active scripts; wind down the straggler.
	if g.stragglerID != model.NoTxn {
		if g.stragglerLeft > 0 {
			g.stragglerLeft--
			return model.Read(g.stragglerID, g.pickEntity()), true
		}
		id := g.stragglerID
		g.stragglerID = model.NoTxn
		return model.WriteFinal(id), true // read-only: empty write set
	}
	return model.Step{}, false
}

func (g *Gen) stragglerIssued() int {
	if g.cfg.Straggler > 0 {
		return 1
	}
	return 0
}

func (g *Gen) dropActive(id model.TxnID) {
	delete(g.active, id)
	for i, o := range g.order {
		if o == id {
			g.order = append(g.order[:i], g.order[i+1:]...)
			break
		}
	}
}

// NotifyAbort implements Generator.
func (g *Gen) NotifyAbort(id model.TxnID) {
	g.aborted++
	if id == g.stragglerID {
		g.stragglerID = model.NoTxn
		g.stragglerLeft = 0
		return
	}
	sc, ok := g.active[id]
	if ok {
		g.dropActive(id)
	}
	if g.cfg.RestartAborted && sc != nil {
		// Reissue the same plan under a fresh ID at the next opportunity.
		g.pending = append(g.pending, sc.plan)
	}
}

// String describes the generator configuration.
func (g *Gen) String() string {
	return fmt.Sprintf("workload{e=%d txns=%d a=%d reads=[%d,%d] writes=[%d,%d] hot=%.2f zipf=%.2f straggler=%d seed=%d}",
		g.cfg.Entities, g.cfg.Txns, g.cfg.MaxActive, g.cfg.ReadsMin, g.cfg.ReadsMax,
		g.cfg.WritesMin, g.cfg.WritesMax, g.cfg.HotFrac, g.cfg.ZipfS, g.cfg.Straggler, g.cfg.Seed)
}
