// Package escapedata seeds a compiler-verified heap escape for the
// escape-mode test (no // want comments: escape diagnostics are diffed
// against an allowlist, not golden comments).
package escapedata

type node struct {
	v int
}

// Leak returns a pointer to a local, the canonical escape.
//
//txgc:hotpath
func Leak(v int) *node {
	n := node{v: v}
	return &n
}

// Stay keeps everything on the stack: no escape may be reported.
//
//txgc:hotpath
func Stay(v int) int {
	n := node{v: v}
	return n.v
}
