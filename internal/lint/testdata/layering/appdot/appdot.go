// Package appdot blank-imports engine — invisible to a grep for the
// qualified identifier, visible to the import DAG.
package appdot

import _ "repro/internal/lint/testdata/layering/engine" // want `\[layering-facade\] blank import: repro/internal/lint/testdata/layering/appdot imports repro/internal/lint/testdata/layering/engine — seeded: apps go through client`

func Main() int { return 0 }
