// Package engine is the forbidden layer in the seeded import DAG.
package engine

func Run() int { return 1 }
