// Package client is the sanctioned gateway (Via) to engine.
package client

import "repro/internal/lint/testdata/layering/engine"

func Begin() int { return engine.Run() }
