// Package bridge legitimately uses engine; it exists so app can reach
// engine transitively without importing it directly.
package bridge

import "repro/internal/lint/testdata/layering/engine"

func Relay() int { return engine.Run() }
