// Package kernel sits below engine and must not import it.
package kernel

import "repro/internal/lint/testdata/layering/engine" // want `\[layering-kernel-below-engine\] repro/internal/lint/testdata/layering/kernel imports repro/internal/lint/testdata/layering/engine — seeded: the kernel must not know the engine`

func Tick() int { return engine.Run() }
