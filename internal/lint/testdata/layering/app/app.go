// Package app reaches engine transitively through bridge — the chain the
// old grep could never see.
package app

import "repro/internal/lint/testdata/layering/bridge" // want `\[layering-facade\] repro/internal/lint/testdata/layering/app reaches repro/internal/lint/testdata/layering/engine via repro/internal/lint/testdata/layering/bridge → repro/internal/lint/testdata/layering/engine — seeded: apps go through client`

func Main() int { return bridge.Relay() }
