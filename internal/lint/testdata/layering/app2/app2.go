// Package app2 goes through the sanctioned client gateway: no diagnostic.
package app2

import "repro/internal/lint/testdata/layering/client"

func Main() int { return client.Begin() }
