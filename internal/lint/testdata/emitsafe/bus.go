// Package emitdata seeds emitsafe-analyzer violations for the golden test.
// The test injects EmitRoot{Type: "Bus", Method: "Emit"} for this package.
package emitdata

import (
	"sync"
	"time"
)

type Bus struct {
	ch   chan int
	mu   sync.Mutex
	done chan struct{}
}

// Emit is the never-block root under test.
func (b *Bus) Emit(v int) bool {
	// The sanctioned pattern: a send that cannot park.
	select {
	case b.ch <- v:
		return true
	default:
	}
	b.slowPath(v)
	return false
}

// slowPath is reachable from Emit: each construct here must be flagged.
func (b *Bus) slowPath(v int) {
	b.ch <- v // want `\[emitsafe-send\] channel send can block \(reachable from repro/internal/lint/testdata/emitsafe\.\(\*Bus\)\.Emit\)`
	<-b.done  // want `\[emitsafe-recv\] channel receive can block`
	select {  // want `\[emitsafe-select\] select without default can block`
	case b.ch <- v:
	case <-b.done:
	}
	time.Sleep(time.Millisecond) // want `\[emitsafe-sleep\] time\.Sleep parks the goroutine`
	b.mu.Lock()                  // want `\[emitsafe-lock\] sync\.Lock can park the goroutine`
	b.mu.Unlock()
}

// Drain is NOT reachable from Emit: blocking here is fine.
func (b *Bus) Drain() {
	for v := range b.ch {
		_ = v
	}
	b.mu.Lock()
	b.mu.Unlock()
}
