// Package hotdata seeds hotpath-analyzer violations for the golden test.
// Every flagged line carries a // want comment; unflagged lines are the
// negative cases.
package hotdata

import "fmt"

type item struct {
	n int
}

// annotated is a hot-path root: each construct below must be flagged.
//
//txgc:hotpath
func annotated(xs []int) int {
	fmt.Println("boom")             // want `\[hotpath-fmt\] call to fmt\.Println allocates`
	m := map[int]int{}              // want `\[hotpath-alloc\] map literal allocates`
	sl := []int{1, 2}               // want `\[hotpath-alloc\] slice literal allocates`
	buf := make([]byte, 8)          // want `\[hotpath-alloc\] make allocates`
	p := &item{n: 1}                // want `\[hotpath-alloc\] &composite literal allocates`
	s := "a" + string(rune(len(m))) // want `\[hotpath-concat\] string concatenation allocates`
	var sink any
	sink = item{n: 2} // want `\[hotpath-iface\] item → any boxes a non-pointer value on the heap`
	_ = sink
	f := func() int { return xs[0] } // want `\[hotpath-closure\] closure captures "xs"`
	return helper(len(sl)+len(buf)+p.n+len(s)) + f()
}

// helper is NOT annotated but is a static callee of annotated: its
// violations are reported with the root named.
func helper(n int) int {
	h := map[int]int{n: n} // want `\[hotpath-alloc\] map literal allocates \(on the hot path of repro/internal/lint/testdata/hotpath\.annotated\)`
	return len(h)
}

// cold has the same constructs but is unreachable from any annotated
// function — nothing here may be flagged.
func cold() int {
	fmt.Println("fine")
	m := map[int]int{}
	return len(m)
}

// suppressedHot shows an explained suppression: the diagnostic must not
// surface.
//
//txgc:hotpath
func suppressedHot() int {
	//lint:ignore hotpath-alloc golden-test fixture: explained suppressions must silence the finding
	m := map[int]int{}
	return len(m)
}

//txgc:hotpat typo // want `\[annotation\] unknown annotation //txgc:hotpat \(known: hotpath, owner\)`

// constants and pointer-shaped conversions must not be flagged as boxing.
//
//txgc:hotpath
func boxingNegatives(p *item) any {
	var sink any
	sink = 42 // constant: static interface data
	_ = sink
	return p // pointer-shaped: fits the interface word
}
