// Package owneddata seeds shardowned-analyzer violations for the golden
// test.
package owneddata

import "sync/atomic"

type worker struct {
	count int          //txgc:owner shard
	gauge atomic.Int64 //txgc:owner shard
	name  string       // unannotated: free for all
}

// run is the owning loop; everything it reaches may touch count.
func (w *worker) run() {
	w.count++
	w.bump()
}

// bump is inside run's call graph: allowed.
func (w *worker) bump() {
	w.count++
	w.gauge.Store(int64(w.count))
}

// Snapshot is NOT reachable from run: its count access is a violation,
// while the atomic gauge read and the unannotated name are fine.
func (w *worker) Snapshot() (int64, string) {
	n := w.count // want `\[shardowned-access\] repro/internal/lint/testdata/shardowned\.\(\*worker\)\.Snapshot accesses shard-owned field count outside .*run's call graph`
	_ = n
	return w.gauge.Load(), w.name
}

// Reset shows the sanctioned escape hatch: a construction-time access with
// its happens-before argument spelled out.
func (w *worker) Reset() {
	//lint:ignore shardowned-access golden-test fixture: caller guarantees the run goroutine has not started
	w.count = 0
}

// orphan has an owner annotation but no run method to anchor it.
type orphan struct {
	state int //txgc:owner shard // want `\[shardowned-norun\] field orphan\.state is //txgc:owner shard but orphan has no run method to own it`
}

// ghost uses an unknown owner verb.
type ghost struct {
	x int //txgc:owner reaper // want `\[annotation\] unknown owner "reaper"`
}

func use(o *orphan, g *ghost) int { return o.state + g.x }
