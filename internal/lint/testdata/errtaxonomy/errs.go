// Package errdata seeds errtaxonomy-analyzer violations for the golden
// test.
package errdata

import (
	"errors"
	"fmt"
)

// ErrGone is a package-level sentinel: the taxonomy contract applies.
var ErrGone = errors.New("gone")

// notASentinel is local state, not an error: comparisons are free.
var counter int

func compare(err error) bool {
	if err == ErrGone { // want `\[errtaxonomy-compare\] == comparison against sentinel ErrGone sees only the outermost wrapper; use errors\.Is`
		return true
	}
	if err != ErrGone { // want `\[errtaxonomy-compare\] != comparison against sentinel ErrGone`
		return false
	}
	if ErrGone == nil { // nil check: allowed
		return false
	}
	if errors.Is(err, ErrGone) { // the sanctioned spelling
		return true
	}
	return counter == 0
}

func wrap(err error) error {
	if err != nil {
		return fmt.Errorf("outer: %v", ErrGone) // want `\[errtaxonomy-wrap\] fmt\.Errorf formats sentinel ErrGone with %v, erasing it from the errors\.Is chain; use %w`
	}
	return fmt.Errorf("outer: %w", ErrGone) // %w keeps the chain intact
}

func wrapSuppressed(err error) error {
	//lint:ignore errtaxonomy-wrap golden-test fixture: the sentinel is deliberately erased here
	return fmt.Errorf("log-only: %s", ErrGone)
}
