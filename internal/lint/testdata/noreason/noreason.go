// Package noreason seeds a reason-less suppression: the suppression must
// not work AND must itself be reported. Checked programmatically (the
// diagnostic lands on the directive's own line, where a // want comment
// cannot sit).
package noreason

//txgc:hotpath
func bad() int {
	//lint:ignore hotpath-alloc
	m := map[int]int{}
	return len(m) + bad2()
}

//txgc:hotpath
func bad2() int {
	//lint:file-ignore
	s := []int{1}
	return len(s)
}
