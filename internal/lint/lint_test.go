package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden harness: each testdata package marks every expected
// diagnostic with a trailing comment of the form
//
//	// want `regex`
//
// (several backtick-quoted patterns may follow one want). A test fails on
// any unmatched want AND on any diagnostic no want expects, so the
// fixtures are exact: seeded violations prove the analyzer fires,
// unannotated negative cases prove it stays quiet.

var wantRE = regexp.MustCompile("want ((?:`[^`]+`\\s*)+)")

type wantEntry struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, prog *Program) []*wantEntry {
	t.Helper()
	var wants []*wantEntry
	for _, p := range prog.Packages {
		for _, file := range p.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Position(c.Pos())
					for _, pat := range strings.Split(m[1], "`") {
						pat = strings.TrimSpace(pat)
						if pat == "" {
							continue
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						wants = append(wants, &wantEntry{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// goldenTest loads dirs, runs analyzers, and matches diagnostics against
// the // want comments bidirectionally.
func goldenTest(t *testing.T, analyzers []*Analyzer, dirs ...string) {
	t.Helper()
	prog := loadTestdata(t, dirs...)
	wants := collectWants(t, prog)
	for _, d := range Run(prog, analyzers) {
		text := fmt.Sprintf("[%s] %s", d.ID, d.Message)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: %s", d.Pos, text)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q matched no diagnostic", w.file, w.line, w.re)
		}
	}
}

func loadTestdata(t *testing.T, dirs ...string) *Program {
	t.Helper()
	prog, err := Load(LoadConfig{}, dirs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range prog.Errors {
		t.Errorf("load error: %v", e)
	}
	if t.Failed() {
		t.FailNow()
	}
	return prog
}

const tdBase = "repro/internal/lint/testdata"

func TestLayeringGolden(t *testing.T) {
	base := tdBase + "/layering"
	rules := []LayerRule{
		{
			ID:        "kernel-below-engine",
			Scope:     []string{base + "/kernel"},
			Forbidden: []string{base + "/engine"},
			Why:       "seeded: the kernel must not know the engine",
		},
		{
			ID:        "facade",
			Scope:     []string{base + "/app", base + "/app2", base + "/appdot"},
			Forbidden: []string{base + "/engine"},
			Via:       []string{base + "/client"},
			Why:       "seeded: apps go through client",
		},
	}
	goldenTest(t, []*Analyzer{NewLayering(rules)},
		"./testdata/layering/engine", "./testdata/layering/kernel",
		"./testdata/layering/bridge", "./testdata/layering/client",
		"./testdata/layering/app", "./testdata/layering/app2",
		"./testdata/layering/appdot")
}

func TestHotpathGolden(t *testing.T) {
	goldenTest(t, []*Analyzer{NewHotpath()}, "./testdata/hotpath")
}

func TestShardownedGolden(t *testing.T) {
	goldenTest(t, []*Analyzer{NewShardowned()}, "./testdata/shardowned")
}

func TestErrTaxonomyGolden(t *testing.T) {
	goldenTest(t, []*Analyzer{NewErrTaxonomy()}, "./testdata/errtaxonomy")
}

func TestEmitsafeGolden(t *testing.T) {
	roots := []EmitRoot{{Pkg: tdBase + "/emitsafe", Type: "Bus", Method: "Emit"}}
	goldenTest(t, []*Analyzer{NewEmitsafe(roots)}, "./testdata/emitsafe")
}

// TestSuppressionNeedsReason checks both halves of the suppression
// contract programmatically (the diagnostic lands on the directive's own
// line, where a want comment cannot sit): a reason-less //lint:ignore is
// reported, and it does NOT silence the finding it points at.
func TestSuppressionNeedsReason(t *testing.T) {
	prog := loadTestdata(t, "./testdata/noreason")
	var got []string
	for _, d := range Run(prog, []*Analyzer{NewHotpath()}) {
		got = append(got, d.ID)
	}
	want := map[string]int{"suppress-noreason": 2, "hotpath-alloc": 2}
	for id, n := range want {
		c := 0
		for _, g := range got {
			if g == id {
				c++
			}
		}
		if c != n {
			t.Errorf("diagnostics %v: want %d × %s, got %d", got, n, id, c)
		}
	}
}

// TestEscapeMode drives the compiler-backed escape checker end to end:
// a seeded escape is reported against an empty allowlist, silenced by a
// matching entry, and a leftover entry is flagged stale.
func TestEscapeMode(t *testing.T) {
	prog := loadTestdata(t, "./testdata/escape")
	leakKey := tdBase + "/escape.Leak: moved to heap: n"

	rep, err := Escape(prog, filepath.Join(t.TempDir(), "absent.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diags) != 1 || !strings.Contains(rep.Diags[0].Message, leakKey) {
		t.Fatalf("against empty allowlist: want exactly the Leak escape, got %v", rep.Diags)
	}
	if rep.Diags[0].Pos.Line == 0 || !strings.HasSuffix(rep.Diags[0].Pos.Filename, "escape.go") {
		t.Fatalf("escape diagnostic lost its position: %v", rep.Diags[0].Pos)
	}

	allow := filepath.Join(t.TempDir(), "allow.txt")
	staleKey := tdBase + "/escape.Stay: moved to heap: ghost"
	content := "# commentary\n" + leakKey + "\n" + staleKey + "\n"
	if err := os.WriteFile(allow, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Escape(prog, allow)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diags) != 0 {
		t.Fatalf("allowlisted escape still reported: %v", rep.Diags)
	}
	if len(rep.Stale) != 1 || rep.Stale[0] != staleKey {
		t.Fatalf("stale detection: want [%s], got %v", staleKey, rep.Stale)
	}
}
