package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// NewErrTaxonomy builds the errtaxonomy analyzer. The engine's error
// taxonomy (ErrShardClosed, ErrTxnNotFound, ...) is consumed through
// errors.Is so that wrapping — stepErr annotating which sub-operation of a
// 2PC step failed, WAL errors annotating the dead shard — never breaks a
// caller's dispatch. Two constructs silently defeat that contract:
//
//   - `err == ErrFoo` / `err != ErrFoo`: identity comparison against a
//     sentinel sees only the outermost wrapper (nil checks stay legal);
//   - `fmt.Errorf("...: %v", ErrFoo)`: formatting a sentinel with anything
//     but %w erases it from the Is/Unwrap chain.
//
// A sentinel here is any package-level variable of error type in the
// module.
func NewErrTaxonomy() *Analyzer {
	return &Analyzer{
		Name: "errtaxonomy",
		Doc:  "sentinel errors compared with errors.Is and wrapped with %w, never ==/!= or %v",
		Run: func(prog *Program) []Diagnostic {
			var out []Diagnostic
			for _, p := range prog.Packages {
				out = append(out, checkErrTaxonomy(prog, p)...)
			}
			return out
		},
	}
}

func checkErrTaxonomy(prog *Program, p *Package) []Diagnostic {
	var out []Diagnostic
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if s := sentinelError(p.Info, side); s != nil {
						other := n.Y
						if side == n.Y {
							other = n.X
						}
						if isNilExpr(p.Info, other) {
							continue // `ErrFoo == nil` style nil checks are fine
						}
						out = append(out, Diagnostic{
							Analyzer: "errtaxonomy", ID: "errtaxonomy-compare", Pos: prog.Position(n.OpPos),
							Message: fmt.Sprintf("%s comparison against sentinel %s sees only the outermost wrapper; use errors.Is", n.Op, s.Name()),
						})
					}
				}
			case *ast.CallExpr:
				out = append(out, checkErrorfWrap(prog, p, n)...)
			}
			return true
		})
	}
	return out
}

// checkErrorfWrap flags fmt.Errorf calls that format a sentinel error with
// a verb other than %w.
func checkErrorfWrap(prog *Program, p *Package, call *ast.CallExpr) []Diagnostic {
	fn := StaticCallee(p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" || len(call.Args) < 2 {
		return nil
	}
	tv, ok := p.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return nil // non-constant format: nothing to line up against
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	var out []Diagnostic
	for i, arg := range call.Args[1:] {
		s := sentinelError(p.Info, arg)
		if s == nil {
			continue
		}
		verb := byte('v')
		if i < len(verbs) {
			verb = verbs[i]
		}
		if verb != 'w' {
			out = append(out, Diagnostic{

				Analyzer: "errtaxonomy", ID: "errtaxonomy-wrap", Pos: prog.Position(arg.Pos()),
				Message: fmt.Sprintf("fmt.Errorf formats sentinel %s with %%%c, erasing it from the errors.Is chain; use %%w", s.Name(), verb),
			})
		}
	}
	return out
}

// formatVerbs extracts the verb letters of a format string in argument
// order (flags, width, and precision are skipped; %% consumes no argument).
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '1' && c <= '9') || c == '*' || c == '[' || c == ']' {
				i++
				continue
			}
			break
		}
		if i < len(format) && format[i] != '%' {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}

// sentinelError resolves expr to a package-level module variable of error
// type, or nil.
func sentinelError(info *types.Info, expr ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil {
		return nil
	}
	if v.Parent() != v.Pkg().Scope() {
		return nil // not package-level
	}
	errType := types.Universe.Lookup("error").Type()
	if !types.AssignableTo(v.Type(), errType) {
		return nil
	}
	return v
}

func isNilExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.IsNil()
}
