package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// EmitRoot names a method that must never block: the analyzer walks the
// module-local static call graph from it and flags blocking constructs.
type EmitRoot struct {
	Pkg    string // import path
	Type   string // named type in that package
	Method string
}

// DefaultEmitRoots returns the production root: emit.Bus.Emit, whose
// documented contract is "never blocks the caller".
func DefaultEmitRoots(module string) []EmitRoot {
	return []EmitRoot{{Pkg: module + "/internal/emit", Type: "Bus", Method: "Emit"}}
}

// NewEmitsafe builds the emitsafe analyzer: no construct that can park the
// calling goroutine may be reachable from an EmitRoot. Flagged constructs:
//
//   - channel sends and receives, unless they sit in a select with a
//     default clause (the ring's TryPush → wakeConsumer pattern: the send
//     either lands or the select falls through);
//   - select statements without a default clause;
//   - time.Sleep;
//   - sync lock/wait acquisition (Mutex.Lock, RWMutex.Lock/RLock,
//     WaitGroup.Wait, Cond.Wait, Once.Do).
//
// Interface-method calls end the traversal, same as hotpath: an emitter
// behind an interface must carry its own annotation discipline.
func NewEmitsafe(roots []EmitRoot) *Analyzer {
	return &Analyzer{
		Name: "emitsafe",
		Doc:  "no blocking constructs reachable from never-block roots (emit.Bus.Emit)",
		Run: func(prog *Program) []Diagnostic {
			var fns []*types.Func
			for _, r := range roots {
				if fn := resolveEmitRoot(prog, r); fn != nil {
					fns = append(fns, fn)
				}
				// A root whose package isn't in this load (e.g. a narrowed
				// pattern) is skipped, not an error.
			}
			cc := prog.reachableFrom(fns, nil)
			var out []Diagnostic
			for _, fn := range cc.visited {
				out = append(out, checkEmitFunc(prog, cc, fn)...)
			}
			return out
		},
	}
}

func resolveEmitRoot(prog *Program, r EmitRoot) *types.Func {
	p := prog.ByPath[r.Pkg]
	if p == nil || p.Types == nil {
		return nil
	}
	tobj := p.Types.Scope().Lookup(r.Type)
	if tobj == nil {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(tobj.Type()), true, p.Types, r.Method)
	fn, _ := obj.(*types.Func)
	return fn
}

func checkEmitFunc(prog *Program, cc *callChain, fn *types.Func) []Diagnostic {
	fb := prog.FuncBodyOf(fn)
	e := &emitChecker{prog: prog, pkg: fb.Pkg, fn: fn, root: cc.rootOf(fn), nonblocking: map[ast.Node]bool{}}
	// First pass: a comm op inside any select belongs to the select, which
	// is itself non-blocking exactly when it has a default clause. Marking
	// every select's comms keeps a blocking select to one diagnostic.
	ast.Inspect(fb.Decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			cc := clause.(*ast.CommClause)
			if cc.Comm == nil {
				e.nonblocking[sel] = true // default clause: select can't park
			} else {
				e.markComm(cc.Comm)
			}
		}
		return true
	})
	ast.Inspect(fb.Decl.Body, e.visit)
	return e.out
}

type emitChecker struct {
	prog        *Program
	pkg         *Package
	fn          *types.Func
	root        *types.Func
	nonblocking map[ast.Node]bool
	out         []Diagnostic
}

// markComm records a select clause's communication op (send, or receive in
// expression/assign form) as non-blocking.
func (e *emitChecker) markComm(comm ast.Stmt) {
	switch s := comm.(type) {
	case *ast.SendStmt:
		e.nonblocking[s] = true
	case *ast.ExprStmt:
		e.nonblocking[ast.Unparen(s.X)] = true
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			e.nonblocking[ast.Unparen(rhs)] = true
		}
	}
}

func (e *emitChecker) diag(id string, n ast.Node, format string, args ...any) {
	where := ""
	if e.fn != e.root {
		where = fmt.Sprintf(" (reachable from %s)", funcDisplay(e.root))
	}
	e.out = append(e.out, Diagnostic{
		Analyzer: "emitsafe", ID: id, Pos: e.prog.Position(n.Pos()),
		Message: fmt.Sprintf(format, args...) + where,
	})
}

func (e *emitChecker) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		return false // runs on some other goroutine's time
	case *ast.SendStmt:
		if !e.nonblocking[n] {
			e.diag("emitsafe-send", n, "channel send can block")
		}
	case *ast.UnaryExpr:
		if n.Op.String() == "<-" && !e.nonblocking[n] {
			e.diag("emitsafe-recv", n, "channel receive can block")
		}
	case *ast.SelectStmt:
		if !e.nonblocking[n] {
			e.diag("emitsafe-select", n, "select without default can block")
		}
	case *ast.RangeStmt:
		if tv, ok := e.pkg.Info.Types[n.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				e.diag("emitsafe-recv", n, "range over channel blocks between messages")
			}
		}
	case *ast.CallExpr:
		fn := StaticCallee(e.pkg.Info, n)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
			e.diag("emitsafe-sleep", n, "time.Sleep parks the goroutine")
		case fn.Pkg().Path() == "sync" && blockingSyncMethod(fn.Name()):
			e.diag("emitsafe-lock", n, "sync.%s can park the goroutine", fn.Name())
		}
	}
	return true
}

func blockingSyncMethod(name string) bool {
	switch name {
	case "Lock", "RLock", "Wait", "Do":
		return true
	}
	return false
}
