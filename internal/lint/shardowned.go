package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// NewShardowned builds the shardowned analyzer: a struct field annotated
// //txgc:owner shard belongs to the single goroutine running the struct's
// run method. Every access to the field must come from run's intra-package
// static call graph. Two escapes are sanctioned:
//
//   - fields of sync/atomic types (atomic.Int64 and friends) may be read
//     anywhere — the annotation still documents who writes, but the type
//     itself makes cross-goroutine reads safe;
//   - construction-time and post-join accesses (the engine writing sh.st
//     before the goroutine starts, reading sh.final after <-sh.done) carry
//     a //lint:ignore with the happens-before argument as the reason.
//
// This is the static twin of the -race tier: -race can only catch the
// interleavings a test happens to schedule; this catches the access site.
func NewShardowned() *Analyzer {
	return &Analyzer{
		Name: "shardowned",
		Doc:  "//txgc:owner shard fields accessed only from the owning run loop (or via atomics)",
		Run:  runShardowned,
	}
}

func runShardowned(prog *Program) []Diagnostic {
	var out []Diagnostic
	// Group owned fields by declaring struct; each struct gets one
	// reachability set rooted at its run method.
	byStruct := map[*types.Named][]OwnedField{}
	for _, f := range prog.Owned {
		byStruct[f.Struct] = append(byStruct[f.Struct], f)
	}
	for named, fields := range byStruct {
		pkg := fields[0].Pkg
		run := runMethod(named, pkg)
		if run == nil {
			for _, f := range fields {
				out = append(out, Diagnostic{
					Analyzer: "shardowned", ID: "shardowned-norun", Pos: prog.Position(f.Pos),
					Message: fmt.Sprintf("field %s.%s is //txgc:owner shard but %s has no run method to own it", named.Obj().Name(), f.Obj.Name(), named.Obj().Name()),
				})
			}
			continue
		}
		// The ownership domain is intra-package: once control leaves the
		// package the shard pointer should not follow.
		cc := prog.reachableFrom([]*types.Func{run}, func(fb *FuncBody) bool { return fb.Pkg == pkg })
		owned := map[*types.Var]bool{}
		for _, f := range fields {
			if isAtomicType(f.Obj.Type()) {
				continue // safe from anywhere by construction
			}
			owned[f.Obj] = true
		}
		out = append(out, findStrayAccesses(prog, pkg, owned, cc, run)...)
	}
	return out
}

// findStrayAccesses walks every function in pkg and flags selections of an
// owned field from outside the run loop's call graph.
func findStrayAccesses(prog *Program, pkg *Package, owned map[*types.Var]bool, cc *callChain, run *types.Func) []Diagnostic {
	var out []Diagnostic
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn != nil && cc.contains(fn) {
				continue // inside the ownership domain
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pkg.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				v, ok := s.Obj().(*types.Var)
				if !ok || !owned[v] {
					return true
				}
				where := "package-level initializer"
				if fn != nil {
					where = funcDisplay(fn)
				}
				out = append(out, Diagnostic{
					Analyzer: "shardowned", ID: "shardowned-access", Pos: prog.Position(sel.Sel.Pos()),
					Message: fmt.Sprintf("%s accesses shard-owned field %s outside %s's call graph",
						where, v.Name(), funcDisplay(run)),
				})
				return true
			})
		}
	}
	return out
}

// runMethod resolves the run method of named (value or pointer receiver).
func runMethod(named *types.Named, pkg *Package) *types.Func {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, pkg.Types, "run")
	fn, _ := obj.(*types.Func)
	return fn
}

// isAtomicType reports whether t is (or embeds nothing but) a sync/atomic
// type like atomic.Int64.
func isAtomicType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}
