package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// LayerRule is one import-DAG invariant. A package whose path matches
// Scope may not reach any package in Forbidden through the module-local
// import graph, except along paths that pass through a package in Via
// (the sanctioned gateway). Direct imports — including dot- and blank
// imports, which older grep-based checks could see only by accident — and
// transitive chains are both violations; the diagnostic lands on the
// direct import that opens the chain and spells the chain out.
type LayerRule struct {
	ID string
	// Scope is a list of import-path prefixes the rule applies to (a
	// trailing "/..." matches the subtree).
	Scope []string
	// Forbidden packages must not be reachable.
	Forbidden []string
	// Via packages are sanctioned gateways: chains passing through them
	// are allowed.
	Via []string
	// Why links the rule to the invariant it guards, for the diagnostic.
	Why string
}

// DefaultLayerRules is the project import DAG, the single source of truth
// that replaced scripts/check_client_only.sh's grep. module is the module
// path ("repro").
func DefaultLayerRules(module string) []LayerRule {
	m := func(s string) string { return module + "/" + s }
	return []LayerRule{
		{
			ID:        "core-below-engine",
			Scope:     []string{m("internal/core"), m("internal/graph"), m("internal/model")},
			Forbidden: []string{m("internal/engine")},
			Why:       "the scheduler kernel is what the engine shards; a kernel→engine import would invert the layering the single-writer discipline rests on",
		},
		{
			ID:    "emit-is-leaf",
			Scope: []string{m("internal/emit"), m("internal/ring")},
			Forbidden: []string{
				m("internal/engine"), m("internal/core"),
				m("internal/graph"), m("internal/store"),
			},
			Why: "the telemetry spine and ring transport sit below every engine layer; Emit's never-block contract cannot depend on code that may block or allocate above it",
		},
		{
			ID:        "client-facade",
			Scope:     []string{m("cmd/..."), m("examples/...")},
			Forbidden: []string{m("internal/engine")},
			Via:       []string{m("txdel/client")},
			Why:       "examples and commands must reach the sharded engine through the public txdel/client facade; internal/engine is an implementation detail",
		},
	}
}

// NewLayering builds the layering analyzer over an explicit rule set
// (tests inject testdata-scoped rules; production uses DefaultLayerRules).
func NewLayering(rules []LayerRule) *Analyzer {
	return &Analyzer{
		Name: "layering",
		Doc:  "import-DAG invariants: forbidden direct and transitive imports, with sanctioned gateways",
		Run: func(prog *Program) []Diagnostic {
			var out []Diagnostic
			for _, p := range prog.Packages {
				for _, rule := range rules {
					if !matchesAny(p.Path, rule.Scope) {
						continue
					}
					out = append(out, checkLayerRule(prog, p, rule)...)
				}
			}
			return out
		},
	}
}

func matchesAny(path string, patterns []string) bool {
	for _, pat := range patterns {
		if sub, ok := strings.CutSuffix(pat, "/..."); ok {
			if path == sub || strings.HasPrefix(path, sub+"/") {
				return true
			}
		} else if path == pat {
			return true
		}
	}
	return false
}

// checkLayerRule searches, from each direct import of p, for a chain to a
// forbidden package that avoids every Via gateway.
func checkLayerRule(prog *Program, p *Package, rule LayerRule) []Diagnostic {
	var out []Diagnostic
	for _, dep := range p.Imports {
		if matchesAny(dep, rule.Via) {
			continue
		}
		chain := prog.forbiddenChain(dep, rule, map[string]bool{p.Path: true})
		if chain == nil {
			continue
		}
		pos, kind := prog.importSite(p, dep)
		var msg string
		if len(chain) == 1 {
			msg = fmt.Sprintf("%s%s imports %s — %s", kind, p.Path, chain[0], rule.Why)
		} else {
			msg = fmt.Sprintf("%s%s reaches %s via %s — %s",
				kind, p.Path, chain[len(chain)-1], strings.Join(chain, " → "), rule.Why)
		}
		out = append(out, Diagnostic{Analyzer: "layering", ID: "layering-" + rule.ID, Pos: pos, Message: msg})
	}
	return out
}

// forbiddenChain DFSes the module-local import graph from path, skipping
// Via gateways, and returns the chain (path … forbidden) if a forbidden
// package is reachable.
func (prog *Program) forbiddenChain(path string, rule LayerRule, seen map[string]bool) []string {
	if seen[path] || matchesAny(path, rule.Via) {
		return nil
	}
	seen[path] = true
	if matchesAny(path, rule.Forbidden) {
		return []string{path}
	}
	p := prog.ByPath[path]
	if p == nil || !p.InModule {
		return nil // only module packages can re-enter the module
	}
	for _, dep := range p.Imports {
		if chain := prog.forbiddenChain(dep, rule, seen); chain != nil {
			return append([]string{path}, chain...)
		}
	}
	return nil
}

// importSite locates the ImportSpec of dep in p's files and names its
// flavor (dot-import / blank import) so the diagnostic says what the
// old grep could not distinguish.
func (prog *Program) importSite(p *Package, dep string) (pos token.Position, kind string) {
	for _, file := range p.Files {
		for _, imp := range file.Imports {
			if strings.Trim(imp.Path.Value, `"`) != dep {
				continue
			}
			k := ""
			if imp.Name != nil {
				switch imp.Name.Name {
				case ".":
					k = "dot-import: "
				case "_":
					k = "blank import: "
				}
			}
			return prog.Position(imp.Pos()), k
		}
	}
	// No syntax (load error); fall back to the package directory.
	return prog.Position(0), ""
}
