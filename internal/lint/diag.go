package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding. ID is stable and suppressable;
// Analyzer is the producing analyzer's name (also accepted as a
// suppression key, matching all of the analyzer's IDs).
type Diagnostic struct {
	Analyzer string
	ID       string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.ID, d.Message)
}

// Analyzer is one project-invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Program) []Diagnostic
}

// ignoreDirective is one parsed //lint:ignore or //lint:file-ignore
// comment.
type ignoreDirective struct {
	id     string
	reason string
	file   bool // file-ignore: covers the whole file
	pos    token.Position
	// lines the directive covers (its own line and the line following its
	// comment group); unused for file-ignore.
	lines [2]int
}

const (
	ignorePrefix     = "//lint:ignore "
	fileIgnorePrefix = "//lint:file-ignore "
	txgcPrefix       = "//txgc:"
)

// scanDirectives collects //txgc: annotations and //lint: suppressions
// from one package's syntax.
func (prog *Program) scanDirectives(p *Package) {
	if p.Info == nil {
		return
	}
	for _, file := range p.Files {
		fname := prog.Fset.Position(file.Pos()).Filename
		for _, cg := range file.Comments {
			endLine := prog.Fset.Position(cg.End()).Line
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				switch {
				case strings.HasPrefix(text, "//lint:ignore") || strings.HasPrefix(text, "//lint:file-ignore"):
					prog.scanIgnore(fname, c, text, endLine)
				case strings.HasPrefix(text, txgcPrefix):
					prog.checkTxgcSpelling(c, text)
				}
			}
		}
		// Annotations attach to declarations, so resolve them off the AST
		// rather than the flat comment list.
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if hasDirective(d.Doc, "//txgc:hotpath") {
					if fn, ok := p.Info.Defs[d.Name].(*types.Func); ok {
						prog.Hotpath = append(prog.Hotpath, fn)
					}
				}
			case *ast.GenDecl:
				prog.scanOwnedFields(p, d)
			}
		}
	}
}

// scanIgnore parses one suppression comment. A suppression must explain
// itself: a directive without a reason is a diagnostic, not a suppression.
func (prog *Program) scanIgnore(fname string, c *ast.Comment, text string, groupEnd int) {
	rest, file := strings.CutPrefix(text, fileIgnorePrefix)
	if !file {
		rest, _ = strings.CutPrefix(text, ignorePrefix)
	}
	pos := prog.Position(c.Pos())
	id, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
	reason = strings.TrimSpace(reason)
	if id == "" || text == strings.TrimSuffix(ignorePrefix, " ") || text == strings.TrimSuffix(fileIgnorePrefix, " ") {
		prog.badDirs = append(prog.badDirs, Diagnostic{
			Analyzer: "lint", ID: "suppress-noreason", Pos: pos,
			Message: "suppression names no diagnostic ID (want //lint:ignore <id> <reason>)",
		})
		return
	}
	if reason == "" {
		prog.badDirs = append(prog.badDirs, Diagnostic{
			Analyzer: "lint", ID: "suppress-noreason", Pos: pos,
			Message: fmt.Sprintf("suppression of %q gives no reason — an unexplained suppression is itself a violation", id),
		})
		return
	}
	prog.ignores[fname] = append(prog.ignores[fname], ignoreDirective{
		id: id, reason: reason, file: file, pos: pos,
		lines: [2]int{pos.Line, groupEnd + 1},
	})
}

// checkTxgcSpelling rejects unknown //txgc: annotation verbs so a typo
// (`//txgc:hotpat`) fails loudly instead of silently un-annotating.
func (prog *Program) checkTxgcSpelling(c *ast.Comment, text string) {
	body := strings.TrimPrefix(text, txgcPrefix)
	verb, _, _ := strings.Cut(body, " ")
	switch verb {
	case "hotpath", "owner":
	default:
		prog.badDirs = append(prog.badDirs, Diagnostic{
			Analyzer: "lint", ID: "annotation", Pos: prog.Position(c.Pos()),
			Message: fmt.Sprintf("unknown annotation //txgc:%s (known: hotpath, owner)", verb),
		})
	}
}

// scanOwnedFields finds struct fields annotated //txgc:owner shard inside
// a type declaration.
func (prog *Program) scanOwnedFields(p *Package, d *ast.GenDecl) {
	if d.Tok != token.TYPE {
		return
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok || st.Fields == nil {
			continue
		}
		named, _ := p.Info.Defs[ts.Name].Type().(*types.Named)
		for _, field := range st.Fields.List {
			owner, pos, ok := ownerDirective(field)
			if !ok {
				continue
			}
			if owner != "shard" {
				prog.badDirs = append(prog.badDirs, Diagnostic{
					Analyzer: "lint", ID: "annotation", Pos: prog.Position(pos),
					Message: fmt.Sprintf("unknown owner %q (known: shard — the goroutine running the struct's run method)", owner),
				})
				continue
			}
			for _, name := range field.Names {
				if v, ok := p.Info.Defs[name].(*types.Var); ok {
					prog.Owned = append(prog.Owned, OwnedField{Pkg: p, Obj: v, Struct: named, Pos: name.Pos()})
				}
			}
		}
	}
}

// ownerDirective extracts `//txgc:owner <who>` from a field's doc or
// trailing comment.
func ownerDirective(f *ast.Field) (owner string, pos token.Pos, ok bool) {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if rest, found := strings.CutPrefix(text, "//txgc:owner"); found {
				owner, _, _ = strings.Cut(strings.TrimSpace(rest), " ")
				return owner, c.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		t := strings.TrimSpace(c.Text)
		if t == directive || strings.HasPrefix(t, directive+" ") {
			return true
		}
	}
	return false
}

// suppressed reports whether a directive in d's file covers d.
func (prog *Program) suppressed(d Diagnostic) bool {
	var full string
	for f := range prog.ignores {
		if prog.Rel(f) == d.Pos.Filename || f == d.Pos.Filename {
			full = f
			break
		}
	}
	if full == "" {
		return false
	}
	for _, dir := range prog.ignores[full] {
		if dir.id != d.ID && dir.id != d.Analyzer {
			continue
		}
		if dir.file || dir.lines[0] == d.Pos.Line || dir.lines[1] == d.Pos.Line {
			return true
		}
	}
	return false
}

// Run executes the analyzers, applies suppressions, and returns the
// surviving diagnostics sorted by position. Malformed directives
// (reason-less suppressions, unknown annotations) are appended as
// diagnostics and are never themselves suppressable.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(prog) {
			if d.Analyzer == "" {
				d.Analyzer = a.Name
			}
			if !prog.suppressed(d) {
				out = append(out, d)
			}
		}
	}
	out = append(out, prog.badDirs...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return out
}
