// Package lint is txgc-lint's hand-rolled static-analysis driver and the
// project-invariant analyzers that run on it.
//
// The repo's correctness story rests on structural invariants that no
// runtime oracle can see: the client-facade layering, the alloc-free hot
// path, single-writer shard state, the errors.Is taxonomy, and the
// never-blocking telemetry spine. Each analyzer in this package turns one
// of those conventions into a compile-time check. In keeping with the
// module's zero-dependency ethos (hand-rolled Prometheus text, hand-rolled
// JSONL), the driver is stdlib only: packages are discovered with
// `go list -e -export -deps -json`, module packages are parsed with
// go/parser and typechecked with go/types, and imports outside the module
// are satisfied from the compiler export data go list already produced —
// no golang.org/x/tools.
//
// See docs/lint.md for the annotation grammar (`//txgc:hotpath`,
// `//txgc:owner shard`), the analyzer catalog, and the suppression syntax
// (`//lint:ignore <id> <reason>`).
package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage mirrors the subset of `go list -json` output the driver
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Package is one loaded Go package. Module packages carry syntax and full
// type information; packages outside the module (stdlib) carry only the
// metadata needed to satisfy imports and build compile invocations.
type Package struct {
	Path     string
	Dir      string
	Name     string
	GoFiles  []string // absolute paths
	Imports  []string
	Export   string // compiler export data (go list -export)
	InModule bool

	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	listed listPackage
}

// FuncBody locates the declaration of a module function: the package it
// lives in and its syntax.
type FuncBody struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// OwnedField is a struct field annotated `//txgc:owner shard`: it belongs
// to the goroutine running the containing struct's run method.
type OwnedField struct {
	Pkg    *Package
	Obj    *types.Var   // the field object
	Struct *types.Named // the named struct type declaring it
	Pos    token.Pos
}

// Program is the loaded world: every module package typechecked from
// source, plus the metadata of their dependency closure.
type Program struct {
	Fset      *token.FileSet
	Module    string
	ModuleDir string
	// Packages holds the module's packages in dependency order (imports
	// before importers).
	Packages []*Package
	// ByPath indexes every loaded package, module and dependency alike.
	ByPath map[string]*Package
	// Errors collects parse and type errors; analyzers run on what loaded.
	Errors []error

	// Hotpath lists the functions annotated //txgc:hotpath.
	Hotpath []*types.Func
	// Owned lists the fields annotated //txgc:owner shard.
	Owned []OwnedField

	funcs        map[*types.Func]*FuncBody
	ignores      map[string][]ignoreDirective // file path → directives
	badDirs      []Diagnostic                 // malformed //txgc: or //lint: directives
	typechecking map[string]bool
	// imp is shared across every typecheck so a stdlib package has one
	// identity program-wide (two copies of context.Context don't unify).
	imp *progImporter
}

// LoadConfig configures Load.
type LoadConfig struct {
	// Dir is the directory go list runs in (the module root or below);
	// empty means the current directory.
	Dir string
}

// Load runs `go list -e -export -deps -json` over patterns and typechecks
// every package of the surrounding module from source. Dependencies outside
// the module are imported from the compiler export data the same go list
// call produced, so the whole load costs one toolchain invocation.
func Load(cfg LoadConfig, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	modPath, modDir, err := moduleInfo(cfg.Dir)
	if err != nil {
		return nil, err
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Imports,Export,Standard,DepOnly,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:         token.NewFileSet(),
		Module:       modPath,
		ModuleDir:    modDir,
		ByPath:       map[string]*Package{},
		funcs:        map[*types.Func]*FuncBody{},
		ignores:      map[string][]ignoreDirective{},
		typechecking: map[string]bool{},
	}
	prog.imp = &progImporter{prog: prog}
	dec := json.NewDecoder(out)
	var order []*Package
	for {
		var lp listPackage
		if err := dec.Decode(&lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		p := &Package{
			Path:     lp.ImportPath,
			Dir:      lp.Dir,
			Name:     lp.Name,
			Imports:  lp.Imports,
			Export:   lp.Export,
			InModule: lp.Module != nil && lp.Module.Path == modPath && !lp.Standard,
			listed:   lp,
		}
		for _, f := range lp.GoFiles {
			p.GoFiles = append(p.GoFiles, filepath.Join(lp.Dir, f))
		}
		if lp.Error != nil && p.InModule {
			prog.Errors = append(prog.Errors, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err))
		}
		prog.ByPath[p.Path] = p
		order = append(order, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	// go list -deps emits dependencies before their importers, so a single
	// pass typechecks every module package after its module imports.
	for _, p := range order {
		if p.InModule {
			if err := prog.typecheck(p); err != nil {
				prog.Errors = append(prog.Errors, err)
			}
			prog.Packages = append(prog.Packages, p)
		}
	}
	for _, p := range prog.Packages {
		prog.scanDirectives(p)
	}
	return prog, nil
}

func moduleInfo(dir string) (path, root string, err error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Path}} {{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", "", fmt.Errorf("lint: go list -m: %v", err)
	}
	fields := strings.Fields(strings.TrimSpace(string(out)))
	if len(fields) != 2 {
		return "", "", fmt.Errorf("lint: unexpected go list -m output %q", out)
	}
	return fields[0], fields[1], nil
}

// typecheck parses and typechecks one module package from source.
func (prog *Program) typecheck(p *Package) error {
	if p.Types != nil || prog.typechecking[p.Path] {
		return nil
	}
	prog.typechecking[p.Path] = true
	defer func() { prog.typechecking[p.Path] = false }()
	for _, f := range p.GoFiles {
		file, err := parser.ParseFile(prog.Fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		p.Files = append(p.Files, file)
	}
	p.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var firstErr error
	conf := types.Config{
		Importer: prog.imp,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	tpkg, _ := conf.Check(p.Path, prog.Fset, p.Files, p.Info)
	p.Types = tpkg
	if firstErr != nil {
		return fmt.Errorf("lint: typecheck %s: %w", p.Path, firstErr)
	}
	prog.indexFuncs(p)
	return nil
}

// indexFuncs records every function declaration so analyzers can walk the
// module-local static call graph. Module packages import each other from
// source, so a *types.Func seen at a call site in one package is the same
// object indexed here from its defining package.
func (prog *Program) indexFuncs(p *Package) {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			prog.funcs[fn] = &FuncBody{Pkg: p, Decl: fd}
		}
	}
}

// FuncBodyOf returns the declaration of fn if it is a module function with
// a body (generic functions are resolved through their origin).
func (prog *Program) FuncBodyOf(fn *types.Func) *FuncBody {
	if fn == nil {
		return nil
	}
	if fb := prog.funcs[fn]; fb != nil {
		return fb
	}
	if o := fn.Origin(); o != fn {
		return prog.funcs[o]
	}
	return nil
}

// progImporter satisfies module imports from source-typechecked packages
// and everything else from compiler export data.
type progImporter struct {
	prog *Program
	gc   types.ImporterFrom
}

func (im *progImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	p := im.prog.ByPath[path]
	if p == nil {
		return nil, fmt.Errorf("lint: import %q not in the loaded dependency closure", path)
	}
	if p.InModule {
		if err := im.prog.typecheck(p); err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("lint: %s failed to typecheck", path)
		}
		return p.Types, nil
	}
	if p.Export == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	if im.gc == nil {
		lookup := func(path string) (io.ReadCloser, error) {
			dep := im.prog.ByPath[path]
			if dep == nil || dep.Export == "" {
				return nil, fmt.Errorf("lint: no export data for %q", path)
			}
			return os.Open(dep.Export)
		}
		im.gc = importer.ForCompiler(im.prog.Fset, "gc", lookup).(types.ImporterFrom)
	}
	return im.gc.ImportFrom(path, im.prog.ModuleDir, 0)
}

// Rel makes path repo-relative for display; positions stay stable across
// checkouts and containers.
func (prog *Program) Rel(path string) string {
	if r, err := filepath.Rel(prog.ModuleDir, path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}

// Position returns the repo-relative position of pos.
func (prog *Program) Position(pos token.Pos) token.Position {
	p := prog.Fset.Position(pos)
	p.Filename = prog.Rel(p.Filename)
	return p
}

// EnclosingFunc returns the innermost FuncDecl of p's syntax containing
// pos, or nil (package-level initializer). Function literals are attributed
// to their enclosing declaration: a closure runs wherever the surrounding
// function does.
func (p *Package) EnclosingFunc(pos token.Pos) *ast.FuncDecl {
	for _, file := range p.Files {
		if pos < file.FileStart || pos > file.FileEnd {
			continue
		}
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}
