package lint

import (
	"go/ast"
	"go/types"
)

// StaticCallee resolves a call expression to the *types.Func it statically
// invokes, or nil when the target is dynamic: an interface method, a
// function value, or a built-in. Dynamic targets are the analyzers'
// traversal cutoff — an interface call site is where one layer's
// obligations end and the implementor's own annotations must take over.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		sel, ok := info.Selections[fun]
		if ok {
			// Method call or method value: dynamic if the receiver is an
			// interface.
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if recv := fn.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
				return nil
			}
			return fn
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// callChain remembers, for every function reached from an annotated root,
// one call path back to that root — so a diagnostic deep in a callee can
// say which hot path pulled it in.
type callChain struct {
	prog    *Program
	parent  map[*types.Func]*types.Func
	root    map[*types.Func]*types.Func
	visited []*types.Func
}

// reachableFrom walks the module-local static call graph from roots,
// breadth-first. filter, if non-nil, bounds the walk (e.g. shardowned
// stays inside one package).
func (prog *Program) reachableFrom(roots []*types.Func, filter func(*FuncBody) bool) *callChain {
	cc := &callChain{
		prog:   prog,
		parent: map[*types.Func]*types.Func{},
		root:   map[*types.Func]*types.Func{},
	}
	var queue []*types.Func
	for _, r := range roots {
		r = origin(r)
		if _, seen := cc.root[r]; seen {
			continue
		}
		cc.root[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fb := prog.FuncBodyOf(fn)
		if fb == nil || fb.Decl.Body == nil || (filter != nil && !filter(fb)) {
			continue
		}
		cc.visited = append(cc.visited, fn)
		ast.Inspect(fb.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(fb.Pkg.Info, call)
			if callee == nil {
				return true
			}
			callee = origin(callee)
			if prog.FuncBodyOf(callee) == nil {
				return true // outside the module
			}
			if _, seen := cc.root[callee]; seen {
				return true
			}
			cc.root[callee] = cc.root[fn]
			cc.parent[callee] = fn
			queue = append(queue, callee)
			return true
		})
	}
	return cc
}

// origin maps an instantiated generic function back to its declaration.
func origin(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}

// contains reports whether fn was reached.
func (cc *callChain) contains(fn *types.Func) bool {
	_, ok := cc.root[origin(fn)]
	return ok
}

// rootOf names the annotated root that pulled fn into the walk.
func (cc *callChain) rootOf(fn *types.Func) *types.Func {
	return cc.root[origin(fn)]
}

// funcDisplay renders a function as pkg.Func or pkg.(*Recv).Method, the
// form the escape allowlist keys on.
func funcDisplay(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path() + "."
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		name := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			name = "*"
		}
		if n, ok := t.(*types.Named); ok {
			name += n.Obj().Name()
		} else {
			name += t.String()
		}
		return pkg + "(" + name + ")." + fn.Name()
	}
	return pkg + fn.Name()
}
