package lint

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Escape mode: the static hotpath analyzer catches constructs that always
// allocate, but value composite literals, appends, and pointer arguments
// allocate only if the compiler's escape analysis says they escape. Rather
// than re-deriving escape analysis (hopeless) or trusting `go build
// -gcflags=-m` (silent on cache hits), escape mode invokes the compiler
// frontend directly — `go tool compile -m` with an importcfg built from the
// export data `go list -export` already produced — over every package that
// contains a //txgc:hotpath function or a static callee of one. Heap
// escapes inside those functions are diffed against
// lint/escape_allowlist.txt; a new escape is a diagnostic at its exact
// position, a stale allowlist entry is a warning so the file tracks
// reality in both directions (same contract as bench_budget.txt).

// EscapeReport is the outcome of one escape-mode run.
type EscapeReport struct {
	Diags []Diagnostic
	// Stale lists allowlist entries no compiler escape matched — fixed
	// escapes whose entries should be deleted.
	Stale []string
}

var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// Escape runs the compiler's escape analysis over every package touched by
// the hotpath call graph and diffs heap escapes inside hot functions
// against the allowlist.
func Escape(prog *Program, allowlistPath string) (*EscapeReport, error) {
	allow, allowOrder, err := readAllowlist(allowlistPath)
	if err != nil {
		return nil, err
	}
	cc := prog.reachableFrom(prog.Hotpath, nil)
	hotByPkg := map[*Package][]*types.Func{}
	for _, fn := range cc.visited {
		fb := prog.FuncBodyOf(fn)
		hotByPkg[fb.Pkg] = append(hotByPkg[fb.Pkg], fn)
	}
	rep := &EscapeReport{}
	used := map[string]bool{}
	// Deterministic package order for deterministic output.
	var pkgs []*Package
	for p := range hotByPkg {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	for _, p := range pkgs {
		diags, err := escapePackage(prog, p, hotByPkg[p], allow, used)
		if err != nil {
			return nil, err
		}
		rep.Diags = append(rep.Diags, diags...)
	}
	for _, key := range allowOrder {
		if !used[key] {
			rep.Stale = append(rep.Stale, key)
		}
	}
	return rep, nil
}

// escapePackage compiles one package with -m and keeps the heap escapes
// that land inside hot functions.
func escapePackage(prog *Program, p *Package, hot []*types.Func, allow map[string]bool, used map[string]bool) ([]Diagnostic, error) {
	hotSet := map[*types.Func]bool{}
	for _, fn := range hot {
		hotSet[fn] = true
	}
	out, err := runCompileM(prog, p)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		m := escapeLineRE.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		fn := enclosingHotFunc(prog, p, m[1], line, hotSet)
		if fn == nil {
			continue // escape in a cold function of the same package
		}
		key := funcDisplay(fn) + ": " + msg
		used[key] = true
		if allow[key] {
			continue
		}
		diags = append(diags, Diagnostic{
			Analyzer: "hotpath", ID: "hotpath-escape",
			Pos: token.Position{Filename: prog.Rel(m[1]), Line: line, Column: col},
			Message: fmt.Sprintf("%s — new heap escape on a hot path; fix it or add %q to lint/escape_allowlist.txt with a reason",
				msg, key),
		})
	}
	return diags, sc.Err()
}

// runCompileM invokes the compiler frontend on p's sources with -m. Going
// through `go tool compile` instead of `go build -gcflags=-m` sidesteps the
// build cache, whose hits print nothing.
func runCompileM(prog *Program, p *Package) ([]byte, error) {
	tmp, err := os.MkdirTemp("", "txgc-lint-escape-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)
	var cfg bytes.Buffer
	for _, dep := range p.Imports {
		if dep == "unsafe" {
			continue // no object file; resolved inside the compiler
		}
		d := prog.ByPath[dep]
		if d == nil || d.Export == "" {
			return nil, fmt.Errorf("lint: escape: no export data for %s (imported by %s)", dep, p.Path)
		}
		fmt.Fprintf(&cfg, "packagefile %s=%s\n", dep, d.Export)
	}
	cfgPath := filepath.Join(tmp, "importcfg")
	if err := os.WriteFile(cfgPath, cfg.Bytes(), 0o644); err != nil {
		return nil, err
	}
	args := []string{
		"tool", "compile",
		"-o", filepath.Join(tmp, "pkg.o"),
		"-p", p.Path,
		"-importcfg", cfgPath,
		"-m",
	}
	args = append(args, p.GoFiles...)
	cmd := exec.Command("go", args...)
	cmd.Dir = prog.ModuleDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("lint: escape: compiling %s: %v\n%s", p.Path, err, out)
	}
	return out, nil
}

// enclosingHotFunc maps a compiler position back to the hot function
// containing it, or nil.
func enclosingHotFunc(prog *Program, p *Package, filename string, line int, hotSet map[*types.Func]bool) *types.Func {
	for _, file := range p.Files {
		tf := prog.Fset.File(file.Pos())
		if tf == nil || tf.Name() != filename {
			continue
		}
		if line < 1 || line > tf.LineCount() {
			return nil
		}
		pos := tf.LineStart(line)
		fd := p.EnclosingFunc(pos)
		if fd == nil || fd.Name == nil {
			return nil
		}
		fn, _ := p.Info.Defs[fd.Name].(*types.Func)
		if fn != nil && hotSet[fn] {
			return fn
		}
		return nil
	}
	return nil
}

// readAllowlist parses lint/escape_allowlist.txt: one entry per line in the
// form `pkg.(Recv).Func: message`; blank lines and #-comments carry the
// per-escape commentary.
func readAllowlist(path string) (map[string]bool, []string, error) {
	allow := map[string]bool{}
	var order []string
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return allow, nil, nil // no allowlist: every escape is new
		}
		return nil, nil, err
	}
	for _, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !allow[line] {
			order = append(order, line)
		}
		allow[line] = true
	}
	return allow, order, nil
}
