package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// NewHotpath builds the hotpath analyzer: functions annotated
// //txgc:hotpath, and every module-local function statically reachable
// from one, may not contain allocating constructs. The static checks are
// the constructs the compiler always heap-allocates (or that drag in an
// allocating runtime path):
//
//   - calls into package fmt (formatting allocates even when the result
//     doesn't escape)
//   - map and slice literals, make, new, and &T{...} composite literals
//   - non-constant string concatenation
//   - conversions of non-pointer-shaped concrete values to interface types
//     (at assignments, call arguments, and returns)
//   - function literals that capture enclosing locals (a capturing closure
//     is a heap allocation; a non-capturing one is a static value)
//
// Plain value composite literals and append growth are deliberately out of
// scope here: whether they allocate depends on escape analysis, which the
// escape mode (txgc-lint -escape) checks against lint/escape_allowlist.txt
// using the compiler's own -m output. Dynamic calls (interface methods,
// function values) end the traversal; the alloc budget gates in
// bench_budget.txt remain the runtime twin of both modes.
func NewHotpath() *Analyzer {
	return &Analyzer{
		Name: "hotpath",
		Doc:  "no allocating constructs in //txgc:hotpath functions or their module-local callees",
		Run: func(prog *Program) []Diagnostic {
			cc := prog.reachableFrom(prog.Hotpath, nil)
			var out []Diagnostic
			for _, fn := range cc.visited {
				out = append(out, checkHotFunc(prog, cc, fn)...)
			}
			return out
		},
	}
}

func checkHotFunc(prog *Program, cc *callChain, fn *types.Func) []Diagnostic {
	fb := prog.FuncBodyOf(fn)
	h := &hotChecker{prog: prog, pkg: fb.Pkg, fn: fn, root: cc.rootOf(fn)}
	ast.Inspect(fb.Decl.Body, h.visit)
	return h.out
}

type hotChecker struct {
	prog *Program
	pkg  *Package
	fn   *types.Func
	root *types.Func
	out  []Diagnostic
}

func (h *hotChecker) diag(id string, pos token.Pos, format string, args ...any) {
	where := ""
	if h.fn != h.root {
		where = fmt.Sprintf(" (on the hot path of %s)", funcDisplay(h.root))
	}
	h.out = append(h.out, Diagnostic{
		Analyzer: "hotpath", ID: id, Pos: h.prog.Position(pos),
		Message: fmt.Sprintf(format, args...) + where,
	})
}

func (h *hotChecker) visit(n ast.Node) bool {
	info := h.pkg.Info
	switch n := n.(type) {
	case *ast.CallExpr:
		h.checkCall(n)
	case *ast.CompositeLit:
		h.checkCompositeLit(n)
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				h.diag("hotpath-alloc", n.Pos(), "&composite literal allocates")
				return false // the inner literal is already reported
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := info.Types[n]; ok && tv.Value == nil && isString(tv.Type) {
				h.diag("hotpath-concat", n.Pos(), "string concatenation allocates")
			}
		}
	case *ast.FuncLit:
		if capt := capturedLocal(info, n); capt != nil {
			h.diag("hotpath-closure", n.Pos(), "closure captures %q — a capturing closure is a heap allocation", capt.Name())
			return false // don't descend: the closure runs elsewhere
		}
		return false
	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			if i < len(n.Lhs) && len(n.Lhs) == len(n.Rhs) {
				if lt, ok := info.Types[n.Lhs[i]]; ok {
					h.checkIfaceConv(lt.Type, rhs)
				}
			}
		}
	case *ast.ReturnStmt:
		sig := h.fn.Type().(*types.Signature)
		if sig.Results().Len() == len(n.Results) {
			for i, res := range n.Results {
				h.checkIfaceConv(sig.Results().At(i).Type(), res)
			}
		}
	}
	return true
}

func (h *hotChecker) checkCall(call *ast.CallExpr) {
	info := h.pkg.Info
	// Builtins: make and new always go through the allocator (make of a
	// sized slice may stay on the stack, but only escape analysis knows —
	// and the hot path has scratch-buffer idioms for every such case).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				h.diag("hotpath-alloc", call.Pos(), "%s allocates", b.Name())
			}
			return
		}
	}
	// Conversions are not calls.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if t := tv.Type; t != nil {
			h.checkIfaceConvAt(t, call.Args[0], call.Pos())
		}
		return
	}
	callee := StaticCallee(info, call)
	if callee == nil {
		return
	}
	if callee.Pkg() != nil && callee.Pkg().Path() == "fmt" {
		h.diag("hotpath-fmt", call.Pos(), "call to fmt.%s allocates", callee.Name())
		return
	}
	// Interface-typed parameters box non-pointer arguments.
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			h.checkIfaceConv(pt, arg)
		}
	}
}

func (h *hotChecker) checkCompositeLit(lit *ast.CompositeLit) {
	tv, ok := h.pkg.Info.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		h.diag("hotpath-alloc", lit.Pos(), "map literal allocates")
	case *types.Slice:
		h.diag("hotpath-alloc", lit.Pos(), "slice literal allocates")
	}
	// Value struct/array literals are escape analysis's business.
}

// checkIfaceConv flags an implicit conversion of a non-pointer-shaped
// concrete value to an interface type — the conversion boxes the value on
// the heap. Pointer-shaped values (pointers, channels, maps, funcs) fit in
// the interface word; constants are compiled to static interface data.
func (h *hotChecker) checkIfaceConv(target types.Type, expr ast.Expr) {
	h.checkIfaceConvAt(target, expr, expr.Pos())
}

func (h *hotChecker) checkIfaceConvAt(target types.Type, expr ast.Expr, pos token.Pos) {
	if target == nil || !types.IsInterface(target.Underlying()) {
		return
	}
	tv, ok := h.pkg.Info.Types[expr]
	if !ok || tv.Type == nil || tv.Value != nil {
		return // untyped constant (incl. nil) → static data
	}
	st := tv.Type
	if types.IsInterface(st.Underlying()) || isPointerShaped(st) || isUntypedNil(st) {
		return
	}
	h.diag("hotpath-iface", pos,
		"%s → %s boxes a non-pointer value on the heap", types.TypeString(st, types.RelativeTo(h.pkg.Types)), target.String())
}

func isPointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// capturedLocal returns a variable the function literal captures from its
// enclosing function, or nil if it captures nothing (a static closure).
func capturedLocal(info *types.Info, lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent().Parent() == types.Universe {
			return true // package-level
		}
		// Declared outside the literal but used inside it → captured.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v
			return false
		}
		return true
	})
	return captured
}
