// Condition C4 (Theorem 7): the necessary and sufficient condition for
// safely deleting a completed transaction under predeclared scheduling
// (valid even with multiple writes), testable in polynomial time:
//
//	(C4) For all active predecessors Tj of Ti and for all entities x
//	accessed by Ti, either
//	 1. Tj has another successor Tk (≠ Ti, Tj) which has accessed x at
//	    least as strongly as Ti, or
//	 2. every entity y that Tj will access in the future has already been
//	    accessed at least as strongly by some successor Tk (≠ Ti) of Tj.
//
// Clause 2's "at least as strongly" is relative to Tj's declared future
// access of y: if Tj will write y, the witness must have written y; if
// Tj will only read y, any access suffices. Active transactions
// satisfying clause 2 "behave essentially as completed": the predeclared
// rules prevent them from ever acquiring a new immediate predecessor
// (Example 2's transaction A).
//
// Note that unlike C1, the predecessor/successor relations here are NOT
// tight — any path counts. The clause-2 escape hatch was omitted from the
// PODS '86 version and restored in the JCSS version we implement.
package predeclared

import (
	"fmt"

	"repro/internal/model"
)

// C4Violation witnesses a C4 failure.
type C4Violation struct {
	Ti model.TxnID
	Tj model.TxnID
	// X is the entity failing clause 1.
	X model.Entity
	// Strength is Ti's access on X.
	Strength model.Access
	// Y is an entity of Tj's future accesses failing clause 2 (the
	// witness the necessity construction needs).
	Y model.Entity
}

// Error implements error.
func (v *C4Violation) Error() string {
	return fmt.Sprintf("C4 violated for T%d: active predecessor T%d, entity %d (%v) has no witness (clause 1) and future entity %d breaks clause 2",
		v.Ti, v.Tj, v.X, v.Strength, v.Y)
}

// CheckC4 evaluates C4 for completed transaction ti.
func (s *Scheduler) CheckC4(ti model.TxnID) (bool, *C4Violation) {
	t, ok := s.txns[ti]
	if !ok || t.Status != model.StatusCompleted {
		return false, &C4Violation{Ti: ti, Tj: model.NoTxn}
	}
	// Active predecessors (any path).
	anc := s.g.Ancestors(ti)
	for tj := range anc {
		tjState := s.txns[tj]
		if tjState == nil || tjState.Status != model.StatusActive {
			continue
		}
		// Successors of Tj (any path).
		succs := s.g.Descendants(tj)
		// strongest1[x]: strongest performed access among successors of
		// Tj other than Ti and Tj (clause 1 witnesses).
		strongest1 := make(map[model.Entity]model.Access)
		// strongest2[x]: same but only excluding Ti (clause 2 witnesses).
		strongest2 := make(map[model.Entity]model.Access)
		for tk := range succs {
			if tk == ti {
				continue
			}
			acc := s.Access(tk)
			for x, a := range acc {
				if a > strongest2[x] {
					strongest2[x] = a
				}
				if tk != tj {
					if a > strongest1[x] {
						strongest1[x] = a
					}
				}
			}
		}
		// Clause 2 is per-Tj: every future entity y of Tj already
		// accessed at least as strongly (relative to Tj's future access).
		clause2 := true
		var badY model.Entity
		for _, y := range tjState.RemainingEntities() {
			need := tjState.RemainingAccess(y)
			// Witness strength: conflicting coverage. If Tj will write y,
			// any future writer D of... the witness must have performed a
			// step conflicting with ANY future conflicting step by a new
			// transaction D; the proof requires the witness to have
			// accessed y at least as strongly as Tj's future access.
			if !strongest2[y].AtLeastAsStrong(need) {
				clause2 = false
				badY = y
				break
			}
		}
		if clause2 {
			continue // this Tj passes for every x via clause 2
		}
		for x, need := range t.Performed {
			if !strongest1[x].AtLeastAsStrong(need) {
				return false, &C4Violation{Ti: ti, Tj: tj, X: x, Strength: need, Y: badY}
			}
		}
	}
	return true, nil
}

// DeleteIfSafe deletes ti iff C4 holds.
func (s *Scheduler) DeleteIfSafe(ti model.TxnID) bool {
	if ok, _ := s.CheckC4(ti); !ok {
		return false
	}
	return s.Delete(ti) == nil
}
