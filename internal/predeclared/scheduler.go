// Package predeclared implements the paper's Section 5 predeclared-
// transactions model: every transaction declares its full read and write
// sets at BEGIN time, which lets the conflict scheduler add arcs as soon
// as the FIRST of two conflicting steps takes place and prevent future
// cycles by DELAYING steps instead of aborting transactions.
//
// Rules (paper, Section 5):
//
//	Rule 1. When a new transaction Ti starts, a node is added, plus an arc
//	Tj→Ti for every Tj that has already executed a step conflicting with a
//	future step of Ti.
//
//	Rules 2&3. When Ti wants to read or write x: for every other Tk that
//	WILL perform a conflicting step on x in the future, add an arc Ti→Tk —
//	provided no cycle forms; if it would, Ti waits for Tk to execute its
//	conflicting step.
//
// There is no deadlock: Ti waits for Tk only when the graph has a path
// Tk→...→Ti, and the graph is acyclic at all times, so the waits-for
// relation is acyclic too (verified by tests).
//
// The model subsumes multiple writes; because nothing ever aborts, there
// are no cascading aborts and a transaction commits at completion.
// Deleting a completed transaction is governed by condition C4
// (Theorem 7), which is polynomial — see c4.go.
package predeclared

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/model"
)

// Decl is a transaction's predeclared access sets. An entity may appear
// in both (read-modify-write); each declared access is performed exactly
// once.
type Decl struct {
	Reads  []model.Entity
	Writes []model.Entity
}

// remAccess tracks which declared accesses are still outstanding.
type remAccess struct {
	read, write bool
}

// strongestRemaining returns the strongest outstanding access.
func (r remAccess) strongest() model.Access {
	switch {
	case r.write:
		return model.WriteAccess
	case r.read:
		return model.ReadAccess
	default:
		return model.NoAccess
	}
}

// TxnState records one predeclared transaction.
type TxnState struct {
	ID        model.TxnID
	Status    model.Status
	Performed model.AccessSet
	remaining map[model.Entity]remAccess
	// blocked is non-nil while the transaction has a delayed step.
	blocked *pendingStep
}

// RemainingAccess returns the strongest outstanding declared access on x.
func (t *TxnState) RemainingAccess(x model.Entity) model.Access {
	return t.remaining[x].strongest()
}

// RemainingEntities lists entities with outstanding accesses, ascending.
func (t *TxnState) RemainingEntities() []model.Entity {
	var out []model.Entity
	for x := range t.remaining {
		out = append(out, x)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

type pendingStep struct {
	txn    model.TxnID
	entity model.Entity
	access model.Access
}

// Outcome of one Apply call.
type Outcome uint8

const (
	// Executed means the step ran (possibly unblocking others).
	Executed Outcome = iota
	// Blocked means the step was delayed; it will execute automatically
	// once its conflicting steps have run.
	Blocked
)

// Result reports one step's effect.
type Result struct {
	Step    model.Step
	Outcome Outcome
	// Unblocked lists previously-delayed steps executed as a consequence
	// of this step, in execution order.
	Unblocked []model.Step
	// Completed lists transactions that completed (the acting one and/or
	// unblocked ones).
	Completed []model.TxnID
	// Deleted lists transactions removed by the GC sweep.
	Deleted []model.TxnID
}

// Config configures the scheduler.
type Config struct {
	// GC enables the greedy C4 deletion policy after every executed step.
	GC bool
	// OnDelete is invoked per deleted transaction.
	OnDelete func(model.TxnID)
}

// Stats counts activity.
type Stats struct {
	Begins    int64
	Steps     int64 // executed read/write steps
	BlockedEv int64 // times a step was delayed
	Completed int64
	Deleted   int64
	PeakNodes int
}

// Scheduler is the predeclared conflict-graph scheduler.
type Scheduler struct {
	g    *graph.Graph
	txns map[model.TxnID]*TxnState
	// waiting holds delayed steps in arrival order.
	waiting []*pendingStep
	cfg     Config
	stats   Stats
}

// NewScheduler returns an empty predeclared scheduler.
func NewScheduler(cfg Config) *Scheduler {
	return &Scheduler{
		g:    graph.New(),
		txns: make(map[model.TxnID]*TxnState),
		cfg:  cfg,
	}
}

// Graph returns the current graph (read-only).
func (s *Scheduler) Graph() *graph.Graph { return s.g }

// Stats returns a snapshot.
func (s *Scheduler) Stats() Stats { return s.stats }

// Txn returns the record for id (nil if unknown or deleted).
func (s *Scheduler) Txn(id model.TxnID) *TxnState { return s.txns[id] }

// Status implements the StateView convention.
func (s *Scheduler) Status(id model.TxnID) model.Status {
	if t, ok := s.txns[id]; ok {
		return t.Status
	}
	return model.StatusAborted
}

// Access returns performed accesses (the StateView convention).
func (s *Scheduler) Access(id model.TxnID) model.AccessSet {
	if t, ok := s.txns[id]; ok {
		return t.Performed
	}
	return nil
}

// Active returns active transaction IDs, ascending.
func (s *Scheduler) Active() []model.TxnID { return s.byStatus(model.StatusActive) }

// Completed returns completed transaction IDs, ascending.
func (s *Scheduler) Completed() []model.TxnID { return s.byStatus(model.StatusCompleted) }

func (s *Scheduler) byStatus(st model.Status) []model.TxnID {
	var out []model.TxnID
	for id, t := range s.txns {
		if t.Status == st {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsBlocked reports whether id has a delayed step pending.
func (s *Scheduler) IsBlocked(id model.TxnID) bool {
	t, ok := s.txns[id]
	return ok && t.blocked != nil
}

// Begin starts a transaction with its declaration (Rule 1).
func (s *Scheduler) Begin(id model.TxnID, d Decl) (Result, error) {
	if _, ok := s.txns[id]; ok {
		return Result{}, fmt.Errorf("predeclared: duplicate BEGIN for T%d", id)
	}
	t := &TxnState{
		ID:        id,
		Status:    model.StatusActive,
		Performed: make(model.AccessSet),
		remaining: make(map[model.Entity]remAccess),
	}
	for _, x := range d.Reads {
		r := t.remaining[x]
		r.read = true
		t.remaining[x] = r
	}
	for _, x := range d.Writes {
		r := t.remaining[x]
		r.write = true
		t.remaining[x] = r
	}
	s.g.AddNode(id)
	// Rule 1 arcs: from transactions whose PERFORMED accesses conflict
	// with a FUTURE access of id. Arcs enter the fresh node: no cycle.
	for _, other := range s.txnList() {
		if other.ID == id {
			continue
		}
		for x, rem := range t.remaining {
			if other.Performed.Get(x).Conflicts(rem.strongest()) {
				s.g.AddArc(other.ID, id)
				break
			}
		}
	}
	s.txns[id] = t
	s.stats.Begins++
	if n := s.g.NumNodes(); n > s.stats.PeakNodes {
		s.stats.PeakNodes = n
	}
	res := Result{Step: model.Begin(id), Outcome: Executed}
	if len(t.remaining) == 0 {
		// Degenerate empty transaction: completes immediately.
		t.Status = model.StatusCompleted
		s.stats.Completed++
		res.Completed = append(res.Completed, id)
	}
	s.sweep(&res)
	return res, nil
}

// Do performs (or delays) the next declared access of id on x.
func (s *Scheduler) Do(id model.TxnID, x model.Entity, a model.Access) (Result, error) {
	t, ok := s.txns[id]
	if !ok {
		return Result{}, fmt.Errorf("predeclared: step for unknown transaction T%d", id)
	}
	if t.Status != model.StatusActive {
		return Result{}, fmt.Errorf("predeclared: step for %v transaction T%d", t.Status, id)
	}
	if t.blocked != nil {
		return Result{}, fmt.Errorf("predeclared: T%d already has a delayed step", id)
	}
	rem := t.remaining[x]
	switch a {
	case model.ReadAccess:
		if !rem.read {
			return Result{}, fmt.Errorf("predeclared: T%d did not declare (or already performed) a read of entity %d", id, x)
		}
	case model.WriteAccess:
		if !rem.write {
			return Result{}, fmt.Errorf("predeclared: T%d did not declare (or already performed) a write of entity %d", id, x)
		}
	default:
		return Result{}, fmt.Errorf("predeclared: invalid access %v", a)
	}
	res := Result{Step: stepFor(id, x, a)}
	p := &pendingStep{txn: id, entity: x, access: a}
	if s.tryExecute(p, &res) {
		res.Outcome = Executed
		s.drainWaiting(&res)
	} else {
		res.Outcome = Blocked
		t.blocked = p
		s.waiting = append(s.waiting, p)
		s.stats.BlockedEv++
	}
	s.sweep(&res)
	return res, nil
}

// Read performs/delays a declared read.
func (s *Scheduler) Read(id model.TxnID, x model.Entity) (Result, error) {
	return s.Do(id, x, model.ReadAccess)
}

// Write performs/delays a declared write.
func (s *Scheduler) Write(id model.TxnID, x model.Entity) (Result, error) {
	return s.Do(id, x, model.WriteAccess)
}

func stepFor(id model.TxnID, x model.Entity, a model.Access) model.Step {
	if a == model.WriteAccess {
		return model.Write(id, x)
	}
	return model.Read(id, x)
}

// tryExecute attempts to run a pending step. On success it records the
// access, adds the Rule 2&3 arcs, and appends completion info to res.
func (s *Scheduler) tryExecute(p *pendingStep, res *Result) bool {
	t := s.txns[p.txn]
	// Arcs to every transaction with a REMAINING conflicting access on x.
	heads := make(graph.NodeSet)
	for _, other := range s.txnList() {
		if other.ID == p.txn {
			continue
		}
		if other.RemainingAccess(p.entity).Conflicts(p.access) {
			heads.Add(other.ID)
		}
	}
	// Cycle iff any head reaches the actor.
	if s.g.AnyReaches(heads, p.txn) {
		return false
	}
	for h := range heads {
		s.g.AddArc(p.txn, h)
	}
	t.Performed.Note(p.entity, p.access)
	rem := t.remaining[p.entity]
	if p.access == model.WriteAccess {
		rem.write = false
	} else {
		rem.read = false
	}
	if rem.read || rem.write {
		t.remaining[p.entity] = rem
	} else {
		delete(t.remaining, p.entity)
	}
	s.stats.Steps++
	if len(t.remaining) == 0 {
		t.Status = model.StatusCompleted
		s.stats.Completed++
		res.Completed = append(res.Completed, p.txn)
	}
	return true
}

// drainWaiting retries delayed steps (FIFO) until a fixpoint.
func (s *Scheduler) drainWaiting(res *Result) {
	for {
		progress := false
		for i := 0; i < len(s.waiting); i++ {
			p := s.waiting[i]
			if s.tryExecute(p, res) {
				s.txns[p.txn].blocked = nil
				res.Unblocked = append(res.Unblocked, stepFor(p.txn, p.entity, p.access))
				s.waiting = append(s.waiting[:i], s.waiting[i+1:]...)
				i--
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// sweep runs the greedy C4 policy if enabled.
func (s *Scheduler) sweep(res *Result) {
	if !s.cfg.GC {
		return
	}
	for {
		progress := false
		for _, id := range s.Completed() {
			if ok, _ := s.CheckC4(id); ok {
				if err := s.Delete(id); err == nil {
					res.Deleted = append(res.Deleted, id)
					progress = true
				}
			}
		}
		if !progress {
			return
		}
	}
}

// Delete removes a completed transaction with the reduction splice,
// forgetting its access information. Safety (C4) is the caller's
// responsibility.
func (s *Scheduler) Delete(id model.TxnID) error {
	t, ok := s.txns[id]
	if !ok {
		return fmt.Errorf("predeclared: delete of unknown transaction T%d", id)
	}
	if t.Status != model.StatusCompleted {
		return fmt.Errorf("predeclared: delete of %v transaction T%d", t.Status, id)
	}
	s.g.Reduce(id)
	delete(s.txns, id)
	s.stats.Deleted++
	if s.cfg.OnDelete != nil {
		s.cfg.OnDelete(id)
	}
	return nil
}

func (s *Scheduler) txnList() []*TxnState {
	out := make([]*TxnState, 0, len(s.txns))
	for _, t := range s.txns {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WaitsFor returns the transactions whose remaining conflicting accesses
// are blocking id's delayed step (empty if id is not blocked). Used by
// the deadlock-freedom tests.
func (s *Scheduler) WaitsFor(id model.TxnID) []model.TxnID {
	t, ok := s.txns[id]
	if !ok || t.blocked == nil {
		return nil
	}
	var out []model.TxnID
	for _, other := range s.txnList() {
		if other.ID == id {
			continue
		}
		if other.RemainingAccess(t.blocked.entity).Conflicts(t.blocked.access) &&
			s.g.Reachable(other.ID, id) {
			out = append(out, other.ID)
		}
	}
	return out
}
