// Example 2 (Fig. 4) from the paper, reused by tests, experiments, and
// example programs.
package predeclared

import "repro/internal/model"

// Example 2 transaction IDs and entities.
const (
	Ex2A model.TxnID = 1
	Ex2B model.TxnID = 2
	Ex2C model.TxnID = 3

	Ex2U model.Entity = 0
	Ex2Z model.Entity = 1
	Ex2Y model.Entity = 2
	Ex2X model.Entity = 3
)

// Example2Scheduler replays the paper's Example 2: "First A reads
// entities u, z; then B reads y, writes u and completes; then C writes x
// and z and completes. Transaction A is still active with one remaining
// step which reads y." The graph is A→B, A→C; B violates C4 while C
// satisfies it.
func Example2Scheduler(cfg Config) *Scheduler {
	s := NewScheduler(cfg)
	mustExec := func(res Result, err error) {
		if err != nil {
			panic(err)
		}
		if res.Outcome != Executed {
			panic("predeclared: Example 2 step blocked: " + res.Step.String())
		}
	}
	mustExec(s.Begin(Ex2A, Decl{Reads: []model.Entity{Ex2U, Ex2Z, Ex2Y}}))
	mustExec(s.Read(Ex2A, Ex2U))
	mustExec(s.Read(Ex2A, Ex2Z))
	mustExec(s.Begin(Ex2B, Decl{Reads: []model.Entity{Ex2Y}, Writes: []model.Entity{Ex2U}}))
	mustExec(s.Read(Ex2B, Ex2Y))
	mustExec(s.Write(Ex2B, Ex2U))
	mustExec(s.Begin(Ex2C, Decl{Writes: []model.Entity{Ex2X, Ex2Z}}))
	mustExec(s.Write(Ex2C, Ex2X))
	mustExec(s.Write(Ex2C, Ex2Z))
	return s
}
