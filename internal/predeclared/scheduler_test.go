package predeclared

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

func exec(t *testing.T) func(Result, error) Result {
	return func(res Result, err error) Result {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if res.Outcome != Executed {
			t.Fatalf("step %v unexpectedly blocked", res.Step)
		}
		return res
	}
}

func TestRule1ArcsAtBegin(t *testing.T) {
	s := NewScheduler(Config{})
	exec(t)(s.Begin(1, Decl{Reads: []model.Entity{0}}))
	exec(t)(s.Read(1, 0)) // performed read of x
	// T2 declares a write of x: Rule 1 must add arc T1->T2 at BEGIN.
	exec(t)(s.Begin(2, Decl{Writes: []model.Entity{0}}))
	if !s.Graph().HasArc(1, 2) {
		t.Fatal("Rule 1 arc from performed-conflicting T1 missing")
	}
}

func TestRule1NoArcForReadRead(t *testing.T) {
	s := NewScheduler(Config{})
	exec(t)(s.Begin(1, Decl{Reads: []model.Entity{0}}))
	exec(t)(s.Read(1, 0))
	exec(t)(s.Begin(2, Decl{Reads: []model.Entity{0}}))
	if s.Graph().NumArcs() != 0 {
		t.Fatal("read-read must not conflict")
	}
}

func TestRule23FutureConflictArcs(t *testing.T) {
	s := NewScheduler(Config{})
	exec(t)(s.Begin(1, Decl{Reads: []model.Entity{0}}))
	exec(t)(s.Begin(2, Decl{Writes: []model.Entity{0}}))
	// T1 reads x while T2's write is still in the future: arc T1->T2.
	exec(t)(s.Read(1, 0))
	if !s.Graph().HasArc(1, 2) {
		t.Fatal("arc to future-conflicting T2 missing")
	}
	// T2 then writes x; T1 has no remaining access: no new arcs.
	res := exec(t)(s.Write(2, 0))
	if s.Graph().HasArc(2, 1) {
		t.Fatal("no reverse arc expected")
	}
	if len(res.Completed) != 1 || res.Completed[0] != 2 {
		t.Fatalf("T2 should complete: %v", res.Completed)
	}
}

func TestDelayInsteadOfAbort(t *testing.T) {
	// T1 declares read x, write y. T2 declares read y, write x.
	// T1 reads x: arc T1->T2 (T2's future write of x).
	// T2 reads y: wants arc T2->T1 (T1's future write of y): cycle -> T2
	// must WAIT (not abort).
	s := NewScheduler(Config{})
	exec(t)(s.Begin(1, Decl{Reads: []model.Entity{0}, Writes: []model.Entity{1}}))
	exec(t)(s.Begin(2, Decl{Reads: []model.Entity{1}, Writes: []model.Entity{0}}))
	exec(t)(s.Read(1, 0))
	res, err := s.Read(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Blocked {
		t.Fatal("T2's read of y must be delayed")
	}
	if !s.IsBlocked(2) {
		t.Fatal("IsBlocked")
	}
	if got := s.WaitsFor(2); len(got) != 1 || got[0] != 1 {
		t.Fatalf("WaitsFor(2) = %v, want [1]", got)
	}
	// T1 writes y: T2's delayed read must auto-execute.
	res = exec(t)(s.Write(1, 1))
	if len(res.Unblocked) != 1 || res.Unblocked[0].Txn != 2 {
		t.Fatalf("Unblocked = %v", res.Unblocked)
	}
	if s.IsBlocked(2) {
		t.Fatal("T2 should be unblocked")
	}
	// Completion: T1 done; T2 still must write x.
	if s.Status(1) != model.StatusCompleted {
		t.Fatalf("T1 = %v", s.Status(1))
	}
	exec(t)(s.Write(2, 0))
	if s.Status(2) != model.StatusCompleted {
		t.Fatalf("T2 = %v", s.Status(2))
	}
}

func TestBlockedTxnRejectsFurtherSteps(t *testing.T) {
	s := NewScheduler(Config{})
	exec(t)(s.Begin(1, Decl{Reads: []model.Entity{0}, Writes: []model.Entity{1}}))
	exec(t)(s.Begin(2, Decl{Reads: []model.Entity{1, 2}, Writes: []model.Entity{0}}))
	exec(t)(s.Read(1, 0))
	if res, err := s.Read(2, 1); err != nil || res.Outcome != Blocked {
		t.Fatalf("setup: %v %v", res, err)
	}
	if _, err := s.Read(2, 2); err == nil {
		t.Fatal("steps while blocked must error")
	}
}

func TestProtocolErrors(t *testing.T) {
	s := NewScheduler(Config{})
	exec(t)(s.Begin(1, Decl{Reads: []model.Entity{0}}))
	if _, err := s.Begin(1, Decl{}); err == nil {
		t.Fatal("duplicate BEGIN")
	}
	if _, err := s.Read(9, 0); err == nil {
		t.Fatal("unknown txn")
	}
	if _, err := s.Write(1, 0); err == nil {
		t.Fatal("undeclared write")
	}
	if _, err := s.Read(1, 5); err == nil {
		t.Fatal("undeclared entity")
	}
	exec(t)(s.Read(1, 0))
	if _, err := s.Read(1, 0); err == nil {
		t.Fatal("already-performed access")
	}
	if _, err := s.Read(1, 0); err == nil {
		t.Fatal("step after completion")
	}
}

func TestReadModifyWriteSameEntity(t *testing.T) {
	s := NewScheduler(Config{})
	exec(t)(s.Begin(1, Decl{Reads: []model.Entity{0}, Writes: []model.Entity{0}}))
	exec(t)(s.Read(1, 0))
	if s.Status(1) != model.StatusActive {
		t.Fatal("write still outstanding")
	}
	exec(t)(s.Write(1, 0))
	if s.Status(1) != model.StatusCompleted {
		t.Fatal("should complete after both accesses")
	}
	if s.Graph().NumArcs() != 0 {
		t.Fatal("self-conflicts must not create arcs")
	}
}

func TestEmptyDeclarationCompletesAtBegin(t *testing.T) {
	s := NewScheduler(Config{})
	res, err := s.Begin(1, Decl{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 1 || s.Status(1) != model.StatusCompleted {
		t.Fatal("empty transaction must complete immediately")
	}
}

func TestNoDeadlockRandomized(t *testing.T) {
	// Random declared transactions driven to completion; progress must
	// never stall (the paper's no-deadlock claim), and the waits-for
	// relation must stay acyclic.
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler(Config{})
		type script struct {
			id   model.TxnID
			todo []model.Step
		}
		var scripts []*script
		next := model.TxnID(1)
		spawn := func() {
			d := Decl{}
			for i := 0; i < 1+rng.Intn(3); i++ {
				d.Reads = append(d.Reads, model.Entity(rng.Intn(4)))
			}
			for i := 0; i < 1+rng.Intn(2); i++ {
				d.Writes = append(d.Writes, model.Entity(rng.Intn(4)))
			}
			// Dedup declarations (each access performed once).
			d.Reads = dedup(d.Reads)
			d.Writes = dedup(d.Writes)
			id := next
			next++
			if _, err := s.Begin(id, d); err != nil {
				t.Fatal(err)
			}
			sc := &script{id: id}
			for _, x := range d.Reads {
				sc.todo = append(sc.todo, model.Read(id, x))
			}
			for _, x := range d.Writes {
				sc.todo = append(sc.todo, model.Write(id, x))
			}
			// Shuffle access order.
			rng.Shuffle(len(sc.todo), func(i, j int) { sc.todo[i], sc.todo[j] = sc.todo[j], sc.todo[i] })
			scripts = append(scripts, sc)
		}
		for i := 0; i < 4; i++ {
			spawn()
		}
		spawned := 4
		stall := 0
		for len(scripts) > 0 {
			progress := false
			for i := 0; i < len(scripts); i++ {
				sc := scripts[i]
				if s.IsBlocked(sc.id) {
					continue
				}
				if len(sc.todo) == 0 {
					scripts = append(scripts[:i], scripts[i+1:]...)
					i--
					progress = true
					continue
				}
				st := sc.todo[0]
				var a model.Access = model.ReadAccess
				if st.Kind == model.KindWrite {
					a = model.WriteAccess
				}
				res, err := s.Do(sc.id, st.Entity, a)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				sc.todo = sc.todo[1:]
				if res.Outcome == Executed || res.Outcome == Blocked {
					progress = true
				}
			}
			// Waits-for acyclicity invariant.
			for _, sc := range scripts {
				for _, w := range s.WaitsFor(sc.id) {
					if ws := s.WaitsFor(w); len(ws) > 0 {
						for _, w2 := range ws {
							if w2 == sc.id {
								t.Fatalf("seed %d: waits-for cycle %d <-> %d", seed, sc.id, w)
							}
						}
					}
				}
			}
			if !progress {
				stall++
				if stall > 1 {
					t.Fatalf("seed %d: stalled with %d scripts outstanding", seed, len(scripts))
				}
			} else {
				stall = 0
			}
			if spawned < 10 && rng.Intn(3) == 0 {
				spawn()
				spawned++
			}
		}
		// All transactions must have completed.
		if got := s.Active(); len(got) != 0 {
			t.Fatalf("seed %d: still active: %v", seed, got)
		}
		if !s.Graph().Acyclic() {
			t.Fatalf("seed %d: graph cyclic", seed)
		}
	}
}

func dedup(xs []model.Entity) []model.Entity {
	seen := map[model.Entity]bool{}
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

func TestStatsAndListings(t *testing.T) {
	s := Example2Scheduler(Config{})
	if got := s.Active(); len(got) != 1 || got[0] != Ex2A {
		t.Fatalf("Active = %v", got)
	}
	if got := s.Completed(); len(got) != 2 {
		t.Fatalf("Completed = %v", got)
	}
	st := s.Stats()
	if st.Begins != 3 || st.Completed != 2 || st.Steps != 6 {
		t.Fatalf("stats: %+v", st)
	}
	if s.Txn(Ex2A) == nil || s.Txn(99) != nil {
		t.Fatal("Txn lookup")
	}
	if s.Status(99) != model.StatusAborted {
		t.Fatal("unknown status convention")
	}
	if s.Access(Ex2B).Get(Ex2U) != model.WriteAccess {
		t.Fatal("performed access of B")
	}
}
