package predeclared

import (
	"testing"

	"repro/internal/model"
)

func TestExample2GraphShape(t *testing.T) {
	s := Example2Scheduler(Config{})
	g := s.Graph()
	if !g.HasArc(Ex2A, Ex2B) || !g.HasArc(Ex2A, Ex2C) {
		t.Fatalf("Fig. 4 arcs missing:\n%s", g.String())
	}
	if g.NumArcs() != 2 {
		t.Fatalf("arcs = %d, want 2:\n%s", g.NumArcs(), g.String())
	}
	if s.Status(Ex2A) != model.StatusActive {
		t.Fatal("A must still be active")
	}
	if r := s.Txn(Ex2A).RemainingEntities(); len(r) != 1 || r[0] != Ex2Y {
		t.Fatalf("A's remaining = %v, want [y]", r)
	}
}

func TestExample2BViolatesC4(t *testing.T) {
	s := Example2Scheduler(Config{})
	ok, viol := s.CheckC4(Ex2B)
	if ok {
		t.Fatal("B must violate C4 (paper, Example 2)")
	}
	if viol.Tj != Ex2A {
		t.Fatalf("violating predecessor = T%d, want A", viol.Tj)
	}
	if viol.Y != Ex2Y {
		t.Fatalf("clause-2 witness entity = %d, want y", viol.Y)
	}
}

func TestExample2CSatisfiesC4(t *testing.T) {
	s := Example2Scheduler(Config{})
	if ok, viol := s.CheckC4(Ex2C); !ok {
		t.Fatalf("C must satisfy C4 via clause 2 (B read y): %v", viol)
	}
	if !s.DeleteIfSafe(Ex2C) {
		t.Fatal("C should delete")
	}
	if s.DeleteIfSafe(Ex2B) {
		t.Fatal("B must not delete")
	}
}

// TestExample2NecessityForB demonstrates why deleting B is unsafe,
// following Theorem 7's necessity construction: a new transaction D that
// declares (and performs) a write of y before A's read of y. With B in
// the graph, Rule 1 adds B→D and D's write of y is DELAYED (it would
// create the cycle D→A→B→D... precisely: arc D→A plus path A→...→D).
// Without B, D's write executes and the accepted schedule is non-CSR.
func TestExample2NecessityForB(t *testing.T) {
	// Full world.
	full := Example2Scheduler(Config{})
	res, err := full.Begin(50, Decl{Writes: []model.Entity{Ex2Y}})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Graph().HasArc(Ex2B, 50) {
		t.Fatal("Rule 1 must add B->D (B read y, D will write y)")
	}
	res, err = full.Write(50, Ex2Y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Blocked {
		t.Fatal("full scheduler must DELAY D's write of y")
	}
	// A's read of y proceeds, then D's write unblocks afterwards.
	res, err = full.Read(Ex2A, Ex2Y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Executed || len(res.Unblocked) != 1 {
		t.Fatalf("A's read should execute and release D: %+v", res)
	}

	// Reduced world: B deleted (unsafely).
	reduced := Example2Scheduler(Config{})
	if err := reduced.Delete(Ex2B); err != nil {
		t.Fatal(err)
	}
	if _, err := reduced.Begin(50, Decl{Writes: []model.Entity{Ex2Y}}); err != nil {
		t.Fatal(err)
	}
	res, err = reduced.Write(50, Ex2Y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Executed {
		t.Fatal("reduced scheduler executes D's write: the divergence")
	}
	// Now A reads y AFTER D wrote it: in the true conflict graph this is
	// D->A plus A->...->D — a cycle the reduced graph cannot see.
	res, err = reduced.Read(Ex2A, Ex2Y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Executed {
		t.Fatal("reduced scheduler accepts A's read (non-CSR accepted)")
	}
}

func TestC4ActiveNotDeletable(t *testing.T) {
	s := Example2Scheduler(Config{})
	if ok, _ := s.CheckC4(Ex2A); ok {
		t.Fatal("active transaction must not satisfy C4")
	}
	if ok, _ := s.CheckC4(99); ok {
		t.Fatal("unknown transaction")
	}
}

func TestC4Clause1Witness(t *testing.T) {
	// A active reads x (performed), will read w.
	// T2 writes x, completes (arc A->T2).
	// T3 writes x, completes (arcs A->T3, T2->T3).
	// T2's clause 1: successor T3 of A wrote x: holds for x.
	s := NewScheduler(Config{})
	exec(t)(s.Begin(1, Decl{Reads: []model.Entity{0, 7}}))
	exec(t)(s.Read(1, 0))
	exec(t)(s.Begin(2, Decl{Writes: []model.Entity{0}}))
	exec(t)(s.Write(2, 0))
	exec(t)(s.Begin(3, Decl{Writes: []model.Entity{0}}))
	exec(t)(s.Write(3, 0))
	if ok, viol := s.CheckC4(2); !ok {
		t.Fatalf("T2 should pass via clause 1 (T3 wrote x): %v", viol)
	}
	// T3: clause 1 fails (T2 is ALSO a successor... yes T2 is a successor
	// of A and wrote x — so T3 passes too; dual of Example 1).
	if ok, _ := s.CheckC4(3); !ok {
		t.Fatal("T3 should pass via clause 1 (T2 wrote x)")
	}
	// After deleting T2, T3's clause 1 loses its witness; clause 2 needs
	// A's future read of w covered — nobody accessed w: fail.
	if !s.DeleteIfSafe(2) {
		t.Fatal("delete T2")
	}
	if ok, _ := s.CheckC4(3); ok {
		t.Fatal("after deleting T2, T3 must violate C4 (Example 1 analogue)")
	}
}

func TestC4Clause2FutureWriteNeverCoverable(t *testing.T) {
	// A active: performed read of x(0), future WRITE of w(7). T2 writes x
	// and completes (arc A->T2). Clause 1 for (A, x): no other successor
	// wrote x. Clause 2: A's future WRITE of w would need a successor
	// that wrote w — which the predeclared rules make impossible (such a
	// write conflicts with A's own future write and would be delayed
	// behind it). So T2 must violate C4 with clause-2 entity w.
	s := NewScheduler(Config{})
	exec(t)(s.Begin(1, Decl{Reads: []model.Entity{0}, Writes: []model.Entity{7}}))
	exec(t)(s.Read(1, 0))
	exec(t)(s.Begin(2, Decl{Writes: []model.Entity{0}}))
	exec(t)(s.Write(2, 0))
	ok, viol := s.CheckC4(2)
	if ok {
		t.Fatal("T2 must violate C4: x has no clause-1 witness and A's future write blocks clause 2")
	}
	if viol.Y != 7 {
		t.Fatalf("clause-2 entity = %d, want w", viol.Y)
	}
	// A successor attempting to access w is DELAYED, confirming why
	// clause 2 is uncoverable for future writes.
	exec(t)(s.Begin(3, Decl{Reads: []model.Entity{7}, Writes: []model.Entity{0}}))
	res, err := s.Write(3, 0) // make T3 a successor of A first
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Executed {
		t.Fatal("T3's write of x should run")
	}
	res, err = s.Read(3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != Blocked {
		t.Fatal("successor's read of w must be delayed behind A's future write")
	}
}

func TestC4Clause2ReadWitness(t *testing.T) {
	// A active: performed reads of x(0) and v(1), future READ of w(7).
	// T2 writes x, completes. T3 reads w and writes v, completes.
	// T2's clause 1 for (A, x) fails (no other writer of x), but clause 2
	// holds: A's only future access is a READ of w, and successor T3 has
	// read w. So T2 is deletable.
	s := NewScheduler(Config{})
	exec(t)(s.Begin(1, Decl{Reads: []model.Entity{0, 1, 7}}))
	exec(t)(s.Read(1, 0))
	exec(t)(s.Read(1, 1))
	exec(t)(s.Begin(2, Decl{Writes: []model.Entity{0}}))
	exec(t)(s.Write(2, 0))
	exec(t)(s.Begin(3, Decl{Reads: []model.Entity{7}, Writes: []model.Entity{1}}))
	exec(t)(s.Read(3, 7)) // read-read with A's future read: no conflict
	exec(t)(s.Write(3, 1))
	if ok, viol := s.CheckC4(2); !ok {
		t.Fatalf("T2 should pass via clause 2 (T3 read w): %v", viol)
	}
	// Control: without T3's read of w, T2 violates.
	s2 := NewScheduler(Config{})
	exec(t)(s2.Begin(1, Decl{Reads: []model.Entity{0, 1, 7}}))
	exec(t)(s2.Read(1, 0))
	exec(t)(s2.Read(1, 1))
	exec(t)(s2.Begin(2, Decl{Writes: []model.Entity{0}}))
	exec(t)(s2.Write(2, 0))
	exec(t)(s2.Begin(3, Decl{Writes: []model.Entity{1}}))
	exec(t)(s2.Write(3, 1))
	ok, viol := s2.CheckC4(2)
	if ok {
		t.Fatal("without the w reader, T2 must violate C4")
	}
	if viol.Y != 7 {
		t.Fatalf("clause-2 entity = %d, want w", viol.Y)
	}
}

func TestGreedyC4PolicySweep(t *testing.T) {
	var deleted []model.TxnID
	s := NewScheduler(Config{GC: true, OnDelete: func(id model.TxnID) { deleted = append(deleted, id) }})
	// Serial unrelated transactions: everything should be collected.
	for id := model.TxnID(1); id <= 4; id++ {
		if _, err := s.Begin(id, Decl{Writes: []model.Entity{model.Entity(id)}}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Write(id, model.Entity(id)); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(s.Completed()); got != 0 {
		t.Fatalf("GC should collect all isolated completed txns; %d retained", got)
	}
	if len(deleted) != 4 {
		t.Fatalf("deleted = %v", deleted)
	}
	if s.Stats().Deleted != 4 {
		t.Fatalf("stats.Deleted = %d", s.Stats().Deleted)
	}
}

func TestGreedyC4OnExample2(t *testing.T) {
	s := Example2Scheduler(Config{GC: true})
	// GC must have deleted C but kept B.
	if s.Txn(Ex2C) != nil {
		t.Fatal("C should have been collected")
	}
	if s.Txn(Ex2B) == nil {
		t.Fatal("B must be retained")
	}
}

func TestDeleteErrors(t *testing.T) {
	s := Example2Scheduler(Config{})
	if err := s.Delete(Ex2A); err == nil {
		t.Fatal("active delete must error")
	}
	if err := s.Delete(99); err == nil {
		t.Fatal("unknown delete must error")
	}
}

func TestC4ViolationError(t *testing.T) {
	v := &C4Violation{Ti: 1, Tj: 2, X: 3, Strength: model.WriteAccess, Y: 4}
	if v.Error() == "" {
		t.Fatal("empty error")
	}
}
