package predeclared

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/trace"
)

// pdAction is one submitted predeclared action (begin or access).
type pdAction struct {
	begin  bool
	id     model.TxnID
	decl   Decl
	entity model.Entity
	access model.Access
}

// randomPDActions materializes a random predeclared workload as a fixed
// action sequence: the SAME submissions go to both schedulers, with each
// scheduler deferring blocked transactions internally.
func randomPDActions(seed int64, txns, entities, maxActive int) []pdAction {
	rng := rand.New(rand.NewSource(seed))
	var out []pdAction
	type script struct {
		id   model.TxnID
		todo []pdAction
	}
	var live []*script
	next := model.TxnID(1)
	issued := 0
	for issued < txns || len(live) > 0 {
		if issued < txns && (len(live) == 0 || (len(live) < maxActive && rng.Intn(3) == 0)) {
			d := Decl{}
			seenR := map[model.Entity]bool{}
			for i := 0; i < 1+rng.Intn(3); i++ {
				x := model.Entity(rng.Intn(entities))
				if !seenR[x] {
					seenR[x] = true
					d.Reads = append(d.Reads, x)
				}
			}
			seenW := map[model.Entity]bool{}
			for i := 0; i < 1+rng.Intn(2); i++ {
				x := model.Entity(rng.Intn(entities))
				if !seenW[x] {
					seenW[x] = true
					d.Writes = append(d.Writes, x)
				}
			}
			sc := &script{id: next}
			next++
			issued++
			out = append(out, pdAction{begin: true, id: sc.id, decl: d})
			for _, x := range d.Reads {
				sc.todo = append(sc.todo, pdAction{id: sc.id, entity: x, access: model.ReadAccess})
			}
			for _, x := range d.Writes {
				sc.todo = append(sc.todo, pdAction{id: sc.id, entity: x, access: model.WriteAccess})
			}
			rng.Shuffle(len(sc.todo), func(i, j int) { sc.todo[i], sc.todo[j] = sc.todo[j], sc.todo[i] })
			live = append(live, sc)
			continue
		}
		i := rng.Intn(len(live))
		sc := live[i]
		out = append(out, sc.todo[0])
		sc.todo = sc.todo[1:]
		if len(sc.todo) == 0 {
			live = append(live[:i], live[i+1:]...)
		}
	}
	return out
}

// runPD drives the actions through one scheduler. A submission for a
// transaction that is currently blocked is deferred and resubmitted after
// the next executed step — both schedulers use the same deterministic
// deferral rule, so their decision streams are comparable. It returns the
// sequence of per-access outcomes in submission order plus a log of the
// EXECUTED schedule for offline CSR checking.
func runPD(t *testing.T, s *Scheduler, actions []pdAction) ([]Outcome, *trace.Log) {
	t.Helper()
	log := trace.NewLog()
	var outcomes []Outcome
	var deferred []pdAction
	record := func(res Result) {
		if res.Outcome == Executed {
			log.Append(res.Step, true)
		}
		for _, st := range res.Unblocked {
			log.Append(st, true)
		}
	}
	submit := func(a pdAction) {
		if a.begin {
			res, err := s.Begin(a.id, a.decl)
			if err != nil {
				t.Fatalf("begin T%d: %v", a.id, err)
			}
			record(res)
			return
		}
		if s.IsBlocked(a.id) {
			deferred = append(deferred, a)
			return
		}
		res, err := s.Do(a.id, a.entity, a.access)
		if err != nil {
			t.Fatalf("T%d access %v(%d): %v", a.id, a.access, a.entity, err)
		}
		outcomes = append(outcomes, res.Outcome)
		record(res)
		if res.Outcome == Executed && len(deferred) > 0 {
			// Retry deferred submissions whose transactions unblocked.
			pending := deferred
			deferred = nil
			for _, d := range pending {
				if s.IsBlocked(d.id) {
					deferred = append(deferred, d)
					continue
				}
				res, err := s.Do(d.id, d.entity, d.access)
				if err != nil {
					t.Fatalf("deferred T%d: %v", d.id, err)
				}
				outcomes = append(outcomes, res.Outcome)
				record(res)
			}
		}
	}
	for _, a := range actions {
		submit(a)
	}
	// Drain the remaining deferred submissions.
	for guard := 0; len(deferred) > 0; guard++ {
		if guard > 10000 {
			t.Fatal("deferred queue never drained (deadlock?)")
		}
		pending := deferred
		deferred = nil
		progress := false
		for _, d := range pending {
			if s.IsBlocked(d.id) {
				deferred = append(deferred, d)
				continue
			}
			res, err := s.Do(d.id, d.entity, d.access)
			if err != nil {
				t.Fatalf("drain T%d: %v", d.id, err)
			}
			outcomes = append(outcomes, res.Outcome)
			record(res)
			progress = true
		}
		if !progress && len(deferred) > 0 {
			t.Fatalf("stalled with %d deferred submissions", len(deferred))
		}
	}
	return outcomes, log
}

// TestGreedyC4LockstepEquivalence: the predeclared scheduler with greedy
// C4 deletion must block/execute exactly like the never-deleting one, and
// both executed schedules must be CSR (Theorem 7 + the rule-agnostic
// Theorem 2).
func TestGreedyC4LockstepEquivalence(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		actions := randomPDActions(seed, 30, 5, 4)
		full := NewScheduler(Config{})
		reduced := NewScheduler(Config{GC: true})
		fo, flog := runPD(t, full, actions)
		ro, rlog := runPD(t, reduced, actions)
		if len(fo) != len(ro) {
			t.Fatalf("seed %d: outcome streams differ in length: %d vs %d", seed, len(fo), len(ro))
		}
		for i := range fo {
			if fo[i] != ro[i] {
				t.Fatalf("seed %d: divergence at outcome %d: full=%v reduced=%v", seed, i, fo[i], ro[i])
			}
		}
		if err := flog.CheckAcceptedCSR(); err != nil {
			t.Fatalf("seed %d (full): %v", seed, err)
		}
		if err := rlog.CheckAcceptedCSR(); err != nil {
			t.Fatalf("seed %d (reduced): %v", seed, err)
		}
		if reduced.Stats().Deleted == 0 {
			t.Fatalf("seed %d: GC never deleted anything", seed)
		}
		// Everyone completes in both worlds (no aborts in this model).
		if got := full.Active(); len(got) != 0 {
			t.Fatalf("seed %d: still active in full: %v", seed, got)
		}
		if got := reduced.Active(); len(got) != 0 {
			t.Fatalf("seed %d: still active in reduced: %v", seed, got)
		}
	}
}

// TestUnsafePDDeletionDiverges: force-deleting a C4 VIOLATOR makes the
// reduced predeclared scheduler execute a step the full one delays —
// Example 2's B, driven by the oracle machinery.
func TestUnsafePDDeletionDiverges(t *testing.T) {
	full := Example2Scheduler(Config{})
	reduced := Example2Scheduler(Config{})
	if err := reduced.Delete(Ex2B); err != nil {
		t.Fatal(err)
	}
	// New transaction D writes y.
	if _, err := full.Begin(50, Decl{Writes: []model.Entity{Ex2Y}}); err != nil {
		t.Fatal(err)
	}
	if _, err := reduced.Begin(50, Decl{Writes: []model.Entity{Ex2Y}}); err != nil {
		t.Fatal(err)
	}
	fres, err := full.Write(50, Ex2Y)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := reduced.Write(50, Ex2Y)
	if err != nil {
		t.Fatal(err)
	}
	if fres.Outcome == rres.Outcome {
		t.Fatalf("expected divergence: full=%v reduced=%v", fres.Outcome, rres.Outcome)
	}
}
