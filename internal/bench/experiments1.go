// Experiments E1–E6: the paper's examples, theorems, and reductions.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/predeclared"
	"repro/internal/reduction"
	"repro/internal/sat"
	"repro/internal/setcover"
	"repro/internal/workload"
)

// E1Example1 replays Example 1 (Fig. 1) and reports the C1 verdicts, the
// both-deletable-but-not-together phenomenon, and the effect of each
// deletion order.
func E1Example1(cfg RunConfig) []*Table {
	shape := &Table{
		ID:      "E1",
		Title:   "Example 1 (Fig. 1) — conflict graph and C1 verdicts",
		Note:    "T1 active reads x; T2, T3 serially read+write x and complete.",
		Columns: []string{"txn", "status", "access(x)", "C1 holds", "witness/violation"},
	}
	s := core.Example1Scheduler(core.Config{})
	for _, id := range []model.TxnID{core.Ex1T1, core.Ex1T2, core.Ex1T3} {
		ok, viol := s.CheckC1(id)
		detail := "—"
		if ok {
			detail = "deletable"
		} else if viol != nil && viol.Tj != model.NoTxn {
			detail = viol.Error()
		} else {
			detail = "not completed"
		}
		shape.AddRow(fmt.Sprintf("T%d", id), s.Status(id).String(),
			s.Access(id).Get(core.Ex1X).String(), ok, detail)
	}

	orders := &Table{
		ID:      "E1",
		Title:   "Example 1 — deleting one disables the other",
		Columns: []string{"delete first", "then deletable?", "C2({T2,T3})", "max safe set size"},
	}
	for _, first := range []model.TxnID{core.Ex1T2, core.Ex1T3} {
		s := core.Example1Scheduler(core.Config{})
		other := core.Ex1T2
		if first == core.Ex1T2 {
			other = core.Ex1T3
		}
		pairOK, _ := s.CheckC2(map[model.TxnID]struct{}{core.Ex1T2: {}, core.Ex1T3: {}})
		maxSet := core.MaxSafeSet(s, s.Graph(), s.CompletedTxns(), 0)
		if !s.DeleteIfSafe(first) {
			orders.AddRow(fmt.Sprintf("T%d", first), "DELETE FAILED", pairOK, len(maxSet))
			continue
		}
		okOther, _ := s.CheckC1(other)
		orders.AddRow(fmt.Sprintf("T%d", first), okOther, pairOK, len(maxSet))
	}
	return []*Table{shape, orders}
}

// E2Theorem1 validates C1 in both directions: sufficiency via lockstep
// oracle runs under GreedyC1 across workload shapes, and necessity by
// force-deleting C1 violators and replaying the adversarial continuation.
func E2Theorem1(cfg RunConfig) []*Table {
	seeds := int64(10)
	if cfg.Quick {
		seeds = 3
	}
	suff := &Table{
		ID:      "E2",
		Title:   "C1 sufficiency — GreedyC1 vs full scheduler (lockstep)",
		Note:    "Divergences must be 0 and every accepted subschedule CSR.",
		Columns: []string{"workload", "seeds", "steps", "deleted", "divergences", "CSR violations"},
	}
	shapes := []struct {
		name string
		mk   func(seed int64) workload.Config
	}{
		{"uniform", func(seed int64) workload.Config {
			return workload.Config{Entities: 12, Txns: 120, MaxActive: 5, ReadsMin: 1, ReadsMax: 3, WritesMin: 1, WritesMax: 2, Seed: seed}
		}},
		{"hotspot", func(seed int64) workload.Config {
			return workload.Config{Entities: 40, Txns: 120, MaxActive: 6, ReadsMin: 1, ReadsMax: 4, WritesMin: 1, WritesMax: 2, HotFrac: 0.1, Seed: seed}
		}},
		{"straggler", func(seed int64) workload.Config {
			return workload.Config{Entities: 16, Txns: 120, MaxActive: 5, ReadsMin: 1, ReadsMax: 3, WritesMin: 1, WritesMax: 2, Straggler: 12, Seed: seed}
		}},
	}
	for _, sh := range shapes {
		var steps, deleted, div, csr int
		for seed := int64(0); seed < seeds; seed++ {
			r := oracle.New(core.GreedyC1{})
			rep := r.RunGenerator(workload.New(sh.mk(seed*31+cfg.Seed)), 0)
			steps += rep.Steps
			deleted += int(rep.ReducedStats.Deleted)
			if rep.Divergence != nil {
				div++
			}
			if rep.CSRViolation != nil {
				csr++
			}
		}
		suff.AddRow(sh.name, seeds, steps, deleted, div, csr)
	}

	nec := &Table{
		ID:      "E2",
		Title:   "C1 necessity — adversarial continuations for C1 violators",
		Note:    "Each force-deleted violator must yield a divergence (Theorem 1's construction).",
		Columns: []string{"seed", "violator", "witness (Tj,x)", "diverged"},
	}
	tested := 0
	for seed := int64(0); seed < 80 && tested < int(seeds); seed++ {
		r := oracle.New(core.NoGC{})
		gen := workload.New(workload.Config{
			Entities: 5, Txns: 14, MaxActive: 4, ReadsMin: 1, ReadsMax: 3,
			WritesMin: 1, WritesMax: 1, Seed: seed + cfg.Seed,
		})
		for i := 0; i < 30; i++ {
			step, ok := gen.Next()
			if !ok {
				break
			}
			res, _, err := r.Apply(step)
			if err != nil {
				break
			}
			if !res.Accepted {
				gen.NotifyAbort(step.Txn)
			}
		}
		var victim model.TxnID = model.NoTxn
		var viol *core.C1Violation
		for _, id := range r.Reduced.CompletedTxns() {
			if ok, v := r.Reduced.CheckC1(id); !ok && v != nil && v.Tj != model.NoTxn {
				victim, viol = id, v
				break
			}
		}
		if victim == model.NoTxn {
			continue
		}
		cont, err := core.NecessityContinuation(r.Reduced, victim, viol, 100000, 99999)
		if err != nil {
			continue
		}
		if r.Reduced.ForceDelete(victim) != nil {
			continue
		}
		rep := r.RunSteps(cont)
		nec.AddRow(seed, fmt.Sprintf("T%d", victim),
			fmt.Sprintf("(T%d,%d)", viol.Tj, viol.X), rep.Divergence != nil)
		tested++
	}
	return []*Table{suff, nec}
}

// E3Bound sweeps (actives a) × (entities e) and confirms the paper's
// closing remark of Section 4: after greedy C1 reduction the graph is
// irreducible, and an irreducible graph holds at most a·e completed
// transactions.
func E3Bound(cfg RunConfig) []*Table {
	t := &Table{
		ID:      "E3",
		Title:   "Irreducible graph size vs the a·e bound",
		Note:    "peak kept = max completed transactions retained under GreedyC1; bound = a·e.",
		Columns: []string{"a (max active)", "e (entities)", "bound a*e", "peak kept", "peak/bound", "within bound"},
	}
	as := []int{1, 2, 4, 8}
	es := []int{2, 8, 32}
	txns := 400
	if cfg.Quick {
		as = []int{2, 4}
		es = []int{4, 8}
		txns = 80
	}
	for _, a := range as {
		for _, e := range es {
			s := core.NewScheduler(core.Config{Policy: core.GreedyC1{}})
			gen := workload.New(workload.Config{
				Entities: e, Txns: txns, MaxActive: a,
				ReadsMin: 1, ReadsMax: 3, WritesMin: 1, WritesMax: 2,
				Seed: cfg.Seed + int64(a*1000+e),
			})
			peak := 0
			for {
				step, ok := gen.Next()
				if !ok {
					break
				}
				res, err := s.Apply(step)
				if err != nil {
					break
				}
				if !res.Accepted {
					gen.NotifyAbort(step.Txn)
				}
				// The bound applies to the post-sweep (irreducible) graph
				// with the CURRENT active count.
				kept := s.NumCompleted()
				if kept > peak {
					peak = kept
				}
			}
			bound := a * e
			t.AddRow(a, e, bound, peak, float64(peak)/float64(bound), peak <= bound)
		}
	}
	return []*Table{t}
}

// E4SetCover realizes Theorem 5's reduction on random instances and
// checks max-deletable = m − minCover, also comparing the greedy policy's
// deletion count against the exact optimum.
func E4SetCover(cfg RunConfig) []*Table {
	t := &Table{
		ID:      "E4",
		Title:   "Theorem 5 — Set Cover reduction",
		Note:    "max deletable must equal m − min cover; greedy is a lower bound.",
		Columns: []string{"elements n", "sets m", "min cover", "predicted max", "exact max", "match", "greedy deletable", "solve ms"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	trials := 12
	if cfg.Quick {
		trials = 4
	}
	for i := 0; i < trials; i++ {
		n := 3 + rng.Intn(5)
		m := 3 + rng.Intn(5)
		in := setcover.Random(rng, n, m)
		gad, err := reduction.BuildSetCover(in)
		if err != nil {
			continue
		}
		mc := setcover.MinCover(in)
		start := time.Now()
		exact := gad.MaxDeletable(0)
		ms := float64(time.Since(start).Microseconds()) / 1000.0
		// Greedy: apply GreedyC1 sweeps on a fresh replay.
		s := core.NewScheduler(core.Config{Policy: core.GreedyC1{}})
		for _, st := range gad.Steps {
			if _, err := s.Apply(st); err != nil {
				break
			}
		}
		greedyDeleted := int(s.Stats().Deleted)
		t.AddRow(n, m, len(mc), m-len(mc), exact, exact == m-len(mc), greedyDeleted, fmt.Sprintf("%.2f", ms))
	}
	return []*Table{t}
}

// E5ThreeSAT realizes Theorem 6's reduction on random 3-CNF formulas and
// checks "C deletable ⟺ unsatisfiable" against DPLL, round-tripping the
// violating abort-set back into a satisfying assignment.
func E5ThreeSAT(cfg RunConfig) []*Table {
	t := &Table{
		ID:      "E5",
		Title:   "Theorem 6 — 3-SAT reduction (Fig. 3 gadget)",
		Note:    "deletable must equal UNSAT; for SAT formulas the violating M decodes to a model.",
		Columns: []string{"vars", "clauses", "satisfiable", "C deletable", "match", "assignment ok", "C3 ms"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	trials := 10
	if cfg.Quick {
		trials = 4
	}
	// Two deterministic anchors — a trivially satisfiable formula and the
	// all-eight-sign-patterns unsatisfiable one — followed by random
	// trials.
	anchors := []*sat.Formula{
		{NumVars: 3, Clauses: []sat.Clause{{1, 2, 3}}},
		{NumVars: 3, Clauses: []sat.Clause{
			{1, 2, 3}, {1, 2, -3}, {1, -2, 3}, {1, -2, -3},
			{-1, 2, 3}, {-1, 2, -3}, {-1, -2, 3}, {-1, -2, -3},
		}},
	}
	for i := 0; i < trials; i++ {
		var f *sat.Formula
		if i < len(anchors) {
			f = anchors[i]
		} else {
			f = sat.Random3CNF(rng, 3, 2+rng.Intn(12))
		}
		_, satisfiable := sat.Solve(f)
		gad, err := reduction.BuildThreeSAT(f)
		if err != nil {
			continue
		}
		start := time.Now()
		deletable, viol, err := gad.CDeletable()
		ms := float64(time.Since(start).Microseconds()) / 1000.0
		if err != nil {
			continue
		}
		assignOK := "n/a"
		if !deletable && viol != nil {
			if f.Satisfies(gad.AssignmentFromViolation(viol)) {
				assignOK = "yes"
			} else {
				assignOK = "NO"
			}
		}
		t.AddRow(f.NumVars, len(f.Clauses), satisfiable, deletable, deletable == !satisfiable, assignOK, fmt.Sprintf("%.2f", ms))
	}
	return []*Table{t}
}

// E6Predeclared replays Example 2 (Fig. 4) and then runs randomized
// predeclared workloads under the greedy C4 policy, reporting retention.
func E6Predeclared(cfg RunConfig) []*Table {
	ex := &Table{
		ID:      "E6",
		Title:   "Example 2 (Fig. 4) — C4 verdicts",
		Note:    "A active (remaining read of y); B, C completed.",
		Columns: []string{"txn", "status", "C4 holds", "detail"},
	}
	s := predeclared.Example2Scheduler(predeclared.Config{})
	for _, id := range []model.TxnID{predeclared.Ex2A, predeclared.Ex2B, predeclared.Ex2C} {
		ok, viol := s.CheckC4(id)
		detail := "deletable"
		if !ok {
			if viol != nil && viol.Tj != model.NoTxn {
				detail = viol.Error()
			} else {
				detail = "not completed"
			}
		}
		ex.AddRow(fmt.Sprintf("T%d", id), s.Status(id).String(), ok, detail)
	}

	gc := &Table{
		ID:      "E6",
		Title:   "Greedy C4 policy on random predeclared workloads",
		Columns: []string{"seed", "txns", "completed", "deleted", "peak nodes", "blocked events"},
	}
	seeds := int64(6)
	if cfg.Quick {
		seeds = 2
	}
	for seed := int64(0); seed < seeds; seed++ {
		sch, stats := runPredeclaredWorkload(cfg.Seed+seed, 40, 6, true)
		gc.AddRow(seed, 40, stats.Completed, stats.Deleted, stats.PeakNodes, stats.BlockedEv)
		_ = sch
	}
	return []*Table{ex, gc}
}

// runPredeclaredWorkload drives random predeclared transactions to
// completion, returning the scheduler and stats.
func runPredeclaredWorkload(seed int64, txns, entities int, gc bool) (*predeclared.Scheduler, predeclared.Stats) {
	rng := rand.New(rand.NewSource(seed))
	s := predeclared.NewScheduler(predeclared.Config{GC: gc})
	type script struct {
		id   model.TxnID
		todo []model.Step
	}
	var scripts []*script
	next := model.TxnID(1)
	spawned := 0
	spawn := func() {
		d := predeclared.Decl{}
		seen := map[model.Entity]bool{}
		for i := 0; i < 1+rng.Intn(3); i++ {
			x := model.Entity(rng.Intn(entities))
			if !seen[x] {
				seen[x] = true
				d.Reads = append(d.Reads, x)
			}
		}
		seenW := map[model.Entity]bool{}
		for i := 0; i < 1+rng.Intn(2); i++ {
			x := model.Entity(rng.Intn(entities))
			if !seenW[x] {
				seenW[x] = true
				d.Writes = append(d.Writes, x)
			}
		}
		id := next
		next++
		spawned++
		if _, err := s.Begin(id, d); err != nil {
			panic(err)
		}
		sc := &script{id: id}
		for _, x := range d.Reads {
			sc.todo = append(sc.todo, model.Read(id, x))
		}
		for _, x := range d.Writes {
			sc.todo = append(sc.todo, model.Write(id, x))
		}
		rng.Shuffle(len(sc.todo), func(i, j int) { sc.todo[i], sc.todo[j] = sc.todo[j], sc.todo[i] })
		scripts = append(scripts, sc)
	}
	for i := 0; i < 4 && spawned < txns; i++ {
		spawn()
	}
	for len(scripts) > 0 || spawned < txns {
		if len(scripts) == 0 {
			spawn()
		}
		progress := false
		for i := 0; i < len(scripts); i++ {
			sc := scripts[i]
			if s.IsBlocked(sc.id) {
				continue
			}
			if len(sc.todo) == 0 {
				scripts = append(scripts[:i], scripts[i+1:]...)
				i--
				progress = true
				continue
			}
			st := sc.todo[0]
			a := model.ReadAccess
			if st.Kind == model.KindWrite {
				a = model.WriteAccess
			}
			if _, err := s.Do(sc.id, st.Entity, a); err != nil {
				panic(err)
			}
			sc.todo = sc.todo[1:]
			progress = true
		}
		if !progress {
			panic("bench: predeclared workload stalled")
		}
		if spawned < txns && rng.Intn(3) == 0 {
			spawn()
		}
	}
	return s, s.Stats()
}
