// Package bench implements the experiment harness: one driver per
// experiment E1–E13, each regenerating a table (or series) that
// corresponds to a figure, example, theorem, or complexity claim of the
// paper — plus engineering experiments on the reproduction itself.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one result table.
type Table struct {
	ID      string
	Title   string
	Note    string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case bool:
			if v {
				row[i] = "yes"
			} else {
				row[i] = "no"
			}
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as CSV (no escaping needed: cells are plain).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Experiment is a named driver.
type Experiment struct {
	ID   string
	Name string
	Run  func(cfg RunConfig) []*Table
}

// RunConfig scales experiments.
type RunConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Quick shrinks sweeps for fast runs (used by tests and -quick).
	Quick bool
	// Out receives progress logging (may be nil).
	Out io.Writer
}

func (c RunConfig) logf(format string, args ...interface{}) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format+"\n", args...)
	}
}

// All returns the registered experiments in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Example 1 / Fig. 1: the deletion trap", E1Example1},
		{"E2", "Theorem 1: C1 sufficiency and necessity", E2Theorem1},
		{"E3", "Section 4: irreducible graphs hold ≤ a·e completed transactions", E3Bound},
		{"E4", "Theorem 5: max-deletable = m − min set cover", E4SetCover},
		{"E5", "Theorem 6 / Fig. 3: C deletable iff formula unsatisfiable", E5ThreeSAT},
		{"E6", "Example 2 / Fig. 4 and Theorem 7: condition C4", E6Predeclared},
		{"E7", "Memory retention and throughput under deletion policies", E7Policies},
		{"E8", "Ablations of C1's tightness and strength requirements", E8Ablation},
		{"E9", "Checker cost: C1/C4 polynomial vs C3 exponential", E9C3Cost},
		{"E10", "Corollary 1: noncurrent rule, safe and unsafe compositions", E10Noncurrent},
		{"E11", "Theorem 2 negative control: commit-time GC caught", E11CommitGC},
		{"E12", "Preventive vs certification conflict scheduling", E12Certification},
		{"E13", "Telemetry bus: emitter overhead and drop-on-overflow", E13EmitTelemetry},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
