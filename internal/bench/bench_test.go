package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func runQuick(t *testing.T, id string) []*Table {
	t.Helper()
	exp, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tables := exp.Run(RunConfig{Seed: 1, Quick: true})
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	for _, tb := range tables {
		if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
			t.Fatalf("%s produced an empty table %q", id, tb.Title)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Fatalf("%s: row width %d != %d columns", id, len(row), len(tb.Columns))
			}
		}
	}
	return tables
}

func cell(tb *Table, row int, col string) string {
	for i, c := range tb.Columns {
		if c == col {
			return tb.Rows[row][i]
		}
	}
	return ""
}

func TestAllRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		ids[e.ID] = true
		if e.Name == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for i := 1; i <= 12; i++ {
		if !ids["E"+strconv.Itoa(i)] {
			t.Fatalf("E%d missing", i)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID on unknown id")
	}
}

func TestE1(t *testing.T) {
	tables := runQuick(t, "E1")
	orders := tables[1]
	// Both rows: "then deletable?" must be "no".
	for r := range orders.Rows {
		if cell(orders, r, "then deletable?") != "no" {
			t.Fatalf("Example 1 phenomenon not reproduced: %+v", orders.Rows[r])
		}
		if cell(orders, r, "C2({T2,T3})") != "no" {
			t.Fatal("pair must fail C2")
		}
		if cell(orders, r, "max safe set size") != "1" {
			t.Fatal("max safe set must have size 1")
		}
	}
}

func TestE2(t *testing.T) {
	tables := runQuick(t, "E2")
	suff := tables[0]
	for r := range suff.Rows {
		if cell(suff, r, "divergences") != "0" || cell(suff, r, "CSR violations") != "0" {
			t.Fatalf("sufficiency violated: %v", suff.Rows[r])
		}
	}
	nec := tables[1]
	for r := range nec.Rows {
		if cell(nec, r, "diverged") != "yes" {
			t.Fatalf("necessity run did not diverge: %v", nec.Rows[r])
		}
	}
}

func TestE3(t *testing.T) {
	tables := runQuick(t, "E3")
	for r := range tables[0].Rows {
		if cell(tables[0], r, "within bound") != "yes" {
			t.Fatalf("a*e bound violated: %v", tables[0].Rows[r])
		}
	}
}

func TestE4(t *testing.T) {
	tables := runQuick(t, "E4")
	for r := range tables[0].Rows {
		if cell(tables[0], r, "match") != "yes" {
			t.Fatalf("Theorem 5 correspondence failed: %v", tables[0].Rows[r])
		}
	}
}

func TestE5(t *testing.T) {
	tables := runQuick(t, "E5")
	for r := range tables[0].Rows {
		if cell(tables[0], r, "match") != "yes" {
			t.Fatalf("Theorem 6 correspondence failed: %v", tables[0].Rows[r])
		}
		if ok := cell(tables[0], r, "assignment ok"); ok != "yes" && ok != "n/a" {
			t.Fatalf("violation decoding failed: %v", tables[0].Rows[r])
		}
	}
}

func TestE6(t *testing.T) {
	tables := runQuick(t, "E6")
	ex := tables[0]
	verdicts := map[string]string{}
	for r := range ex.Rows {
		verdicts[ex.Rows[r][0]] = cell(ex, r, "C4 holds")
	}
	if verdicts["T2"] != "no" || verdicts["T3"] != "yes" {
		t.Fatalf("Example 2 verdicts wrong: %v", verdicts)
	}
}

func TestE7(t *testing.T) {
	tables := runQuick(t, "E7")
	tb := tables[0]
	// For each workload, GreedyC1's peak kept must be <= NoGC's, and
	// locking must appear.
	peak := map[string]map[string]int{}
	for r := range tb.Rows {
		w := tb.Rows[r][0]
		p := tb.Rows[r][1]
		if peak[w] == nil {
			peak[w] = map[string]int{}
		}
		if v := cell(tb, r, "peak kept"); v != "" {
			n, err := strconv.Atoi(v)
			if err == nil {
				peak[w][p] = n
			}
		}
	}
	for w, m := range peak {
		if m["greedy-c1"] > m["nogc"] {
			t.Fatalf("%s: greedy kept more than nogc: %v", w, m)
		}
		if m["lemma1"] < m["greedy-c1"] {
			t.Fatalf("%s: lemma1 (weaker) should keep at least as much as greedy-c1: %v", w, m)
		}
	}
}

func TestE8(t *testing.T) {
	tables := runQuick(t, "E8")
	tb := tables[0]
	for r := range tb.Rows {
		name := tb.Rows[r][0]
		div := cell(tb, r, "divergences")
		safe := cell(tb, r, "safe in theory")
		gadget := cell(tb, r, "gadget caught")
		if safe == "yes" {
			if div != "0" {
				t.Fatalf("safe variant %q diverged: %v", name, tb.Rows[r])
			}
			if gadget != "survived" {
				t.Fatalf("safe variant %q failed a trap gadget: %v", name, tb.Rows[r])
			}
		} else if gadget != "yes" {
			t.Fatalf("unsafe variant %q was not caught by its gadget: %v", name, tb.Rows[r])
		}
	}
}

func TestE9(t *testing.T) {
	runQuick(t, "E9")
}

func TestE10(t *testing.T) {
	tables := runQuick(t, "E10")
	tb := tables[0]
	for r := range tb.Rows {
		name := tb.Rows[r][0]
		div := cell(tb, r, "divergences")
		// Random workloads rarely produce the exact Example-1 pattern, so
		// the trap chain may or may not diverge here; what MUST hold is
		// that every other (safe) policy never diverges.
		if !(strings.Contains(name, "chain") && strings.Contains(name, "naive")) && div != "0" {
			t.Fatalf("safe policy %q diverged: %v", name, tb.Rows[r])
		}
	}
	trap := tables[1]
	for r := range trap.Rows {
		name := trap.Rows[r][0]
		want := "no"
		if strings.Contains(name, "naive") {
			want = "yes"
		}
		if trap.Rows[r][1] != want {
			t.Fatalf("trap table wrong for %q: %v", name, trap.Rows[r])
		}
	}
}

func TestE11(t *testing.T) {
	tables := runQuick(t, "E11")
	anyDiverged := false
	for r := range tables[0].Rows {
		if cell(tables[0], r, "diverged") == "yes" {
			anyDiverged = true
			if cell(tables[0], r, "direction ok (reduced accepts / full rejects)") != "yes" {
				t.Fatalf("divergence direction wrong: %v", tables[0].Rows[r])
			}
		}
	}
	if !anyDiverged {
		t.Fatal("CommitGC never caught in quick run")
	}
}

func TestE12(t *testing.T) {
	tables := runQuick(t, "E12")
	tb := tables[0]
	for r := range tb.Rows {
		prev, _ := strconv.Atoi(cell(tb, r, "preventive completed"))
		cert, _ := strconv.Atoi(cell(tb, r, "certified completed"))
		if cert < prev {
			t.Fatalf("certification completed fewer transactions: %v", tb.Rows[r])
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Note: "note", Columns: []string{"a", "b"}}
	tb.AddRow(1, "two")
	tb.AddRow(3.5, true)
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "note", "a", "two", "3.50", "yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	tb.CSV(&buf)
	if !strings.HasPrefix(buf.String(), "a,b\n") {
		t.Fatalf("csv header: %q", buf.String())
	}
}

func TestRunConfigLogf(t *testing.T) {
	var buf bytes.Buffer
	cfg := RunConfig{Out: &buf}
	cfg.logf("hello %d", 3)
	if !strings.Contains(buf.String(), "hello 3") {
		t.Fatal("logf")
	}
	RunConfig{}.logf("no panic on nil out")
}
