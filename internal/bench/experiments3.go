// Experiment E13: telemetry engineering — what the non-blocking event bus
// costs the engine, and what its drop-on-overflow contract looks like when
// a sink cannot keep up.
package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/emit"
	"repro/internal/engine"
	"repro/internal/model"
	"repro/internal/workload"
)

// slowSink consumes events at a bounded rate, simulating a sink that has
// fallen behind (a stalled scrape, a slow disk). It forces the bus's
// overflow path: the ring fills and producers drop instead of blocking.
type slowSink struct {
	delay time.Duration
	n     int
}

func (s *slowSink) Consume(emit.Event) {
	s.n++
	time.Sleep(s.delay)
}

func (s *slowSink) Close() error { return nil }

// E13EmitTelemetry drives the same mixed local/cross workload through the
// sharded engine four ways — no emitter, a counting sink, the Prometheus
// metrics sink, and a deliberately slow sink behind a tiny ring — and
// reports throughput plus the bus's emitted/dropped accounting. The
// engineering claims under test: attaching telemetry costs the hot path
// nothing measurable, and a saturated bus sheds events (counted, visible)
// rather than applying backpressure to the scheduler.
func E13EmitTelemetry(cfg RunConfig) []*Table {
	const shards = 4
	txns := 30_000
	if cfg.Quick {
		txns = 2_000
	}

	type variant struct {
		name string
		ring int
		mk   func() emit.Sink // nil: no bus at all
	}
	variants := []variant{
		{"none", 0, nil},
		{"counting", emit.DefaultBuffer, func() emit.Sink { return &emit.CountingSink{} }},
		{"metrics", emit.DefaultBuffer, func() emit.Sink { return emit.NewMetricsSink() }},
		{"slow-sink/ring=64", 64, func() emit.Sink { return &slowSink{delay: 50 * time.Microsecond} }},
	}

	tab := &Table{
		ID:    "E13",
		Title: "Telemetry bus: emitter overhead and drop-on-overflow",
		Note: "4 shards, greedy-c1, 4 driver goroutines, CrossFrac=0.05; steps/s is accepted scheduler steps per second. " +
			"The bus never blocks the engine: a saturated ring drops events and counts them instead.",
		Columns: []string{"emitter", "steps/s", "completed", "emitted", "dropped", "drop %", "vs none"},
	}

	var baseline float64
	for _, v := range variants {
		var bus *emit.Bus
		if v.mk != nil {
			bus = emit.NewBus(v.ring, v.mk())
		}
		eng := engine.New(engine.Config{
			Shards:                shards,
			Policy:                func() core.Policy { return core.GreedyC1{} },
			SweepEveryCompletions: 8,
			Bus:                   bus,
		})

		const drivers = 4
		start := time.Now()
		var wg sync.WaitGroup
		for d := 0; d < drivers; d++ {
			wg.Add(1)
			go func(d int) {
				defer wg.Done()
				gen := workload.New(workload.Config{
					Entities:         1 << 12,
					Txns:             txns / drivers,
					MaxActive:        8,
					Shards:           shards,
					CrossFrac:        0.05,
					DeclareFootprint: true,
					BaseTxnID:        model.TxnID(d * 10_000_000),
					Seed:             cfg.Seed + int64(d),
				})
				eng.Drive(gen, 8)
			}(d)
		}
		wg.Wait()
		elapsed := time.Since(start)
		st := eng.Stats()
		eng.Close()

		stepsPerSec := float64(st.Accepted) / elapsed.Seconds()
		var emitted, dropped uint64
		if bus != nil {
			bus.Close()
			emitted, dropped = bus.Emitted(), bus.Dropped()
		}
		if v.mk == nil {
			baseline = stepsPerSec
		}
		rel := "1.00x"
		if v.mk != nil && baseline > 0 {
			rel = fmt.Sprintf("%.2fx", stepsPerSec/baseline)
		}
		dropPct := "0.00"
		if emitted+dropped > 0 {
			dropPct = fmt.Sprintf("%.2f", float64(dropped)*100/float64(emitted+dropped))
		}
		tab.AddRow(v.name, int64(stepsPerSec), st.Completed, emitted, dropped, dropPct, rel)
		cfg.logf("E13 %s: %.0f steps/s, %d emitted, %d dropped (%s)",
			v.name, stepsPerSec, emitted, dropped, elapsed)
	}
	return []*Table{tab}
}
