// Experiments E7–E12: policy engineering comparisons, ablations,
// complexity curves, and negative controls.
package bench

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/locking"
	"repro/internal/model"
	"repro/internal/oracle"
	"repro/internal/reduction"
	"repro/internal/sat"
	"repro/internal/workload"
)

// txnScript is the materialized step list of one transaction.
type txnScript struct {
	id    model.TxnID
	steps []model.Step
}

// materialize drains a generator (never aborting anything) into the
// intended per-transaction scripts plus the global submission order, so
// that every scheduler under comparison sees an identical input stream.
func materialize(cfg workload.Config) []model.Step {
	gen := workload.New(cfg)
	var steps []model.Step
	for {
		st, ok := gen.Next()
		if !ok {
			return steps
		}
		steps = append(steps, st)
	}
}

// runCore feeds the stream to a core scheduler (skipping steps of
// aborted transactions) and reports stats plus wall time.
func runCore(steps []model.Step, policy core.Policy) (core.Stats, time.Duration) {
	s := core.NewScheduler(core.Config{Policy: policy})
	dead := make(map[model.TxnID]bool)
	start := time.Now()
	for _, st := range steps {
		if dead[st.Txn] {
			continue
		}
		res, err := s.Apply(st)
		if err != nil {
			continue
		}
		if !res.Accepted {
			dead[st.Txn] = true
		}
	}
	return s.Stats(), time.Since(start)
}

// runLocking feeds the stream to the 2PL baseline with per-transaction
// gating for blocked steps.
func runLocking(steps []model.Step) (locking.Stats, int, time.Duration) {
	s := locking.NewScheduler()
	// Queue per transaction, preserving global order via round-robin
	// over a pending index.
	queues := make(map[model.TxnID][]model.Step)
	var order []model.TxnID
	for _, st := range steps {
		if _, ok := queues[st.Txn]; !ok {
			order = append(order, st.Txn)
		}
		queues[st.Txn] = append(queues[st.Txn], st)
	}
	dead := make(map[model.TxnID]bool)
	start := time.Now()
	peakLive := 0
	for {
		progress := false
		for _, id := range order {
			q := queues[id]
			if len(q) == 0 || dead[id] || s.IsBlocked(id) {
				continue
			}
			res, err := s.Apply(q[0])
			if err != nil {
				dead[id] = true
				continue
			}
			queues[id] = q[1:]
			progress = true
			if res.Outcome == locking.Aborted {
				dead[id] = true
			}
			if l := s.Live(); l > peakLive {
				peakLive = l
			}
		}
		if !progress {
			break
		}
	}
	return s.Stats(), peakLive, time.Since(start)
}

func e7Workloads(seed int64, quick bool) []struct {
	name string
	cfg  workload.Config
} {
	txns := 600
	if quick {
		txns = 100
	}
	return []struct {
		name string
		cfg  workload.Config
	}{
		{"uniform", workload.Config{Entities: 64, Txns: txns, MaxActive: 8, ReadsMin: 1, ReadsMax: 4, WritesMin: 1, WritesMax: 2, Seed: seed}},
		{"hotspot", workload.Config{Entities: 128, Txns: txns, MaxActive: 8, ReadsMin: 1, ReadsMax: 4, WritesMin: 1, WritesMax: 2, HotFrac: 0.05, Seed: seed + 1}},
		{"zipf", workload.Config{Entities: 128, Txns: txns, MaxActive: 8, ReadsMin: 1, ReadsMax: 4, WritesMin: 1, WritesMax: 2, ZipfS: 1.3, Seed: seed + 2}},
		{"straggler", workload.Config{Entities: 64, Txns: txns, MaxActive: 8, ReadsMin: 1, ReadsMax: 4, WritesMin: 1, WritesMax: 2, Straggler: txns / 10, Seed: seed + 3}},
	}
}

// E7Policies is the engineering table the introduction motivates: how
// much conflict-graph state each policy retains, at what throughput,
// against the locking baseline that retains (almost) nothing.
func E7Policies(cfg RunConfig) []*Table {
	t := &Table{
		ID:      "E7",
		Title:   "Deletion policies — retention and throughput",
		Note:    "peak/avg kept = completed transactions retained in the graph; locking retains none.",
		Columns: []string{"workload", "policy", "steps", "aborts", "peak kept", "avg kept", "deleted", "ms", "ksteps/s"},
	}
	policies := []core.Policy{
		core.NoGC{},
		core.Lemma1Policy{},
		core.NoncurrentSafe{},
		core.GreedyC1{},
		core.MaxSafeExact{Budget: 30000},
	}
	for _, w := range e7Workloads(cfg.Seed+7, cfg.Quick) {
		steps := materialize(w.cfg)
		for _, p := range policies {
			st, d := runCore(steps, p)
			ms := float64(d.Microseconds()) / 1000.0
			rate := 0.0
			if d > 0 {
				rate = float64(st.Accepted+st.Rejected) / d.Seconds() / 1000.0
			}
			t.AddRow(w.name, p.Name(), st.Accepted+st.Rejected, st.Aborts,
				st.PeakKept, st.AvgKept(), st.Deleted,
				fmt.Sprintf("%.1f", ms), fmt.Sprintf("%.0f", rate))
		}
		lst, peakLive, d := runLocking(steps)
		ms := float64(d.Microseconds()) / 1000.0
		rate := 0.0
		if d > 0 {
			rate = float64(lst.Reads+lst.Writes+lst.Begins) / d.Seconds() / 1000.0
		}
		t.AddRow(w.name, "locking-2pl", lst.Reads+lst.Writes+lst.Begins, lst.Aborts,
			0, 0.0, "n/a",
			fmt.Sprintf("%.1f", ms), fmt.Sprintf("%.0f", rate))
		_ = peakLive
	}
	return []*Table{t}
}

// --- E8: ablations ------------------------------------------------------

// c1VariantPolicy deletes per a weakened/strengthened variant of C1.
// Exactly one of the paper's ingredients is toggled per variant.
type c1VariantPolicy struct {
	name string
	// loosePreds quantifies over ALL active predecessors (not only tight
	// ones): stricter than C1, still safe, deletes less.
	loosePreds bool
	// looseSuccs accepts witnesses reachable through ACTIVE intermediates
	// (non-tight successors): weaker than C1 — UNSAFE.
	looseSuccs bool
	// ignoreStrength accepts any witness access regardless of read/write
	// strength: weaker than C1 — UNSAFE.
	ignoreStrength bool
}

func (p c1VariantPolicy) Name() string { return p.name }

func (p c1VariantPolicy) check(s *core.Scheduler, ti model.TxnID) bool {
	if !s.Status(ti).Terminated() {
		return false
	}
	g := s.Graph()
	terminated := func(n model.TxnID) bool { return s.Status(n).Terminated() }
	var preds []model.TxnID
	if p.loosePreds {
		for a := range g.Ancestors(ti) {
			if s.Status(a) == model.StatusActive {
				preds = append(preds, a)
			}
		}
	} else {
		preds = core.ActiveTightPredecessors(s, g, ti)
	}
	access := s.Access(ti)
	for _, tj := range preds {
		var succs graph.NodeSet
		if p.looseSuccs {
			succs = make(graph.NodeSet)
			for d := range g.Descendants(tj) {
				if terminated(d) {
					succs.Add(d)
				}
			}
		} else {
			succs = core.CompletedTightSuccessors(s, g, tj)
		}
		strongest := make(map[model.Entity]model.Access)
		for tk := range succs {
			if tk == ti {
				continue
			}
			for x, a := range s.Access(tk) {
				if a > strongest[x] {
					strongest[x] = a
				}
			}
		}
		for x, need := range access {
			if p.ignoreStrength {
				if strongest[x] == model.NoAccess {
					return false
				}
			} else if !strongest[x].AtLeastAsStrong(need) {
				return false
			}
		}
	}
	return true
}

// Sweep implements core.Policy.
func (p c1VariantPolicy) Sweep(sw *core.Sweep) {
	s := sw.Scheduler()
	for {
		progress := false
		for _, id := range s.CompletedTxns() {
			if p.check(s, id) && sw.Delete(id) {
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// looseSuccTrapSteps is a deterministic schedule on which the non-tight-
// witness variant performs an unsafe deletion: the only witness W for
// Ti's read of x is reachable from the active tight predecessor Tj only
// through the ACTIVE intermediate A (path Tj→C→A→W). The continuation
// aborts A (Theorem 1's dance) and then has Tj write x: the full
// scheduler rejects (cycle through Ti), the reduced one accepts.
//
//	T1=Tj (active): reads e5, e6.    T3=C: writes e6 and e8, completes.
//	T4=A (active): reads e8, e7.     T2=W: reads x=e0, writes e7.
//	T5=Ti: reads x=e0, writes e6.
//
// Graph: 1→3→4→2 and {1,3}→5. Real C1 for T5 fails on (T1, e0): the only
// e0 witness W sits behind the active intermediate T4; the loose variant
// accepts it and deletes T5.
func looseSuccTrapSteps() (prefix, continuation []model.Step) {
	prefix = []model.Step{
		model.Begin(1), model.Read(1, 5), model.Read(1, 6),
		model.Begin(3), model.WriteFinal(3, 6, 8),
		model.Begin(4), model.Read(4, 8), model.Read(4, 7),
		model.Begin(2), model.Read(2, 0), model.WriteFinal(2, 7),
		model.Begin(5), model.Read(5, 0), model.WriteFinal(5, 6),
	}
	// Abort A (T4) with the y-dance on fresh entity 9, then the
	// conflicting access: Tj writes x=e0.
	continuation = []model.Step{
		model.Read(4, 9),
		model.Begin(100), model.WriteFinal(100, 9),
		model.WriteFinal(4, 9), // cycle: T4 aborts in both schedulers
		model.WriteFinal(1, 0),
	}
	return prefix, continuation
}

// strengthTrapSteps is the deterministic schedule on which the ignore-
// strength variant performs an unsafe deletion: Ti WROTE x but its only
// witness W merely READ x. The continuation has Tj read x: full rejects
// (arc Ti→Tj closes the cycle), reduced accepts (no writers of x left).
func strengthTrapSteps() (prefix, continuation []model.Step) {
	prefix = []model.Step{
		model.Begin(1), model.Read(1, 0), // Tj reads x
		model.Begin(2), model.WriteFinal(2, 0), // Ti writes x (arc 1→2)
		model.Begin(3), model.Read(3, 0), model.WriteFinal(3), // W reads x
	}
	continuation = []model.Step{model.Read(1, 0)}
	return prefix, continuation
}

// E8Ablation toggles each ingredient of C1 and shows: tight predecessors
// buy deletions (the loose variant is safe but weaker), while loosening
// the witness side or dropping the strength requirement is UNSAFE — each
// caught by a deterministic trap schedule (and occasionally by the
// randomized oracle).
func E8Ablation(cfg RunConfig) []*Table {
	t := &Table{
		ID:      "E8",
		Title:   "C1 ablations — safety and deletion power",
		Note:    "paper = greedy-c1. 'gadget caught' = deterministic trap schedule diverged.",
		Columns: []string{"variant", "safe in theory", "seeds run", "divergences", "gadget caught", "total deleted (safe runs)"},
	}
	variants := []struct {
		policy core.Policy
		safe   bool
		gadget func() (prefix, cont []model.Step)
	}{
		{core.GreedyC1{}, true, nil},
		{c1VariantPolicy{name: "all-active-preds (stricter)", loosePreds: true}, true, nil},
		{c1VariantPolicy{name: "non-tight-witnesses (UNSAFE)", looseSuccs: true}, false, looseSuccTrapSteps},
		{c1VariantPolicy{name: "ignore-strength (UNSAFE)", ignoreStrength: true}, false, strengthTrapSteps},
	}
	seeds := int64(25)
	if cfg.Quick {
		seeds = 8
	}
	for _, v := range variants {
		var div, deleted int
		for seed := int64(0); seed < seeds; seed++ {
			r := oracle.New(v.policy)
			rep := r.RunGenerator(workload.New(workload.Config{
				Entities: 4, Txns: 50, MaxActive: 5, ReadsMin: 1, ReadsMax: 3,
				WritesMin: 0, WritesMax: 2, Seed: cfg.Seed + seed*13,
			}), 0)
			if rep.Divergence != nil || rep.CSRViolation != nil {
				div++
			} else {
				deleted += int(rep.ReducedStats.Deleted)
			}
		}
		gadget := "n/a"
		if v.gadget != nil {
			prefix, cont := v.gadget()
			r := oracle.New(v.policy)
			rep := r.RunSteps(append(append([]model.Step{}, prefix...), cont...))
			if rep.Divergence != nil {
				gadget = "yes"
			} else {
				gadget = "NO"
			}
		} else if v.safe {
			// Safe variants must survive the traps too.
			ok := true
			for _, g := range []func() ([]model.Step, []model.Step){looseSuccTrapSteps, strengthTrapSteps} {
				prefix, cont := g()
				r := oracle.New(v.policy)
				rep := r.RunSteps(append(append([]model.Step{}, prefix...), cont...))
				if rep.Divergence != nil {
					ok = false
				}
			}
			if ok {
				gadget = "survived"
			} else {
				gadget = "DIVERGED"
			}
		}
		t.AddRow(v.policy.Name(), v.safe, seeds, div, gadget, deleted)
	}
	return []*Table{t}
}

// E9C3Cost measures the C3 checker's exponential growth in the number of
// active transactions (Fig. 3 gadgets of growing size) against the
// polynomial C1 on graphs of comparable size.
func E9C3Cost(cfg RunConfig) []*Table {
	t := &Table{
		ID:      "E9",
		Title:   "Checker cost — C3 is exponential in actives, C1 polynomial in graph size",
		Columns: []string{"gadget vars", "actives a", "subsets 2^a", "C3 ms", "graph nodes", "C1 all-completed ms"},
	}
	maxVars := 5
	if cfg.Quick {
		maxVars = 3
	}
	for n := 1; n <= maxVars; n++ {
		// Build an n-clause formula over max(3, n) variables; each clause
		// uses three consecutive (distinct) variables with mixed signs.
		f := &sat.Formula{NumVars: maxInt(3, n)}
		for j := 0; j < n; j++ {
			c := sat.Clause{
				sat.Literal((j % f.NumVars) + 1),
				sat.Literal(-(((j + 1) % f.NumVars) + 1)),
				sat.Literal(((j + 2) % f.NumVars) + 1),
			}
			f.Clauses = append(f.Clauses, c)
		}
		gad, err := reduction.BuildThreeSAT(f)
		if err != nil {
			continue
		}
		actives := len(gad.Sched.Active())
		start := time.Now()
		_, _, err = gad.CDeletable()
		c3ms := float64(time.Since(start).Microseconds()) / 1000.0
		if err != nil {
			continue
		}
		// C1 comparison: run CheckC1 on every completed transaction of a
		// basic-model workload with a similar node count.
		s := core.NewScheduler(core.Config{})
		gen := workload.New(workload.Config{
			Entities: 8, Txns: gad.Sched.Graph().NumNodes(), MaxActive: 6,
			ReadsMin: 1, ReadsMax: 3, WritesMin: 1, WritesMax: 1, Seed: cfg.Seed,
		})
		for {
			st, ok := gen.Next()
			if !ok {
				break
			}
			res, err := s.Apply(st)
			if err == nil && !res.Accepted {
				gen.NotifyAbort(st.Txn)
			}
		}
		start = time.Now()
		for _, id := range s.CompletedTxns() {
			s.CheckC1(id)
		}
		c1ms := float64(time.Since(start).Microseconds()) / 1000.0
		t.AddRow(f.NumVars, actives, 1<<uint(actives),
			fmt.Sprintf("%.2f", c3ms), gad.Sched.Graph().NumNodes(), fmt.Sprintf("%.3f", c1ms))
	}
	return []*Table{t}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// E10Noncurrent evaluates Corollary 1's rule: standalone it is safe (the
// current writer always survives), composed after C1 deletions it is the
// Example 1 trap, and the presence-guarded variant restores safety.
func E10Noncurrent(cfg RunConfig) []*Table {
	t := &Table{
		ID:      "E10",
		Title:   "Corollary 1 — noncurrent deletions, compositions, and the Example 1 trap",
		Columns: []string{"policy", "seeds", "divergences", "deleted", "peak kept (avg)"},
	}
	seeds := int64(15)
	if cfg.Quick {
		seeds = 5
	}
	policies := []core.Policy{
		core.NoncurrentNaive{},
		core.NoncurrentSafe{},
		core.GreedyC1{},
		core.Chain{core.GreedyC1{NewestFirst: true}, core.NoncurrentSafe{}},
		core.Chain{core.GreedyC1{NewestFirst: true}, core.NoncurrentNaive{}},
	}
	for _, p := range policies {
		var div, deleted, peakSum int
		for seed := int64(0); seed < seeds; seed++ {
			r := oracle.New(p)
			rep := r.RunGenerator(workload.New(workload.Config{
				Entities: 5, Txns: 60, MaxActive: 5, ReadsMin: 1, ReadsMax: 3,
				WritesMin: 1, WritesMax: 2, Seed: cfg.Seed + seed*7,
			}), 0)
			if !rep.Ok() {
				div++
			} else {
				deleted += int(rep.ReducedStats.Deleted)
				peakSum += rep.ReducedStats.PeakKept
			}
		}
		avgPeak := "n/a"
		if seeds > int64(div) {
			avgPeak = fmt.Sprintf("%.1f", float64(peakSum)/float64(seeds-int64(div)))
		}
		t.AddRow(p.Name(), seeds, div, deleted, avgPeak)
	}

	trap := &Table{
		ID:      "E10",
		Title:   "The Example 1 trap, end to end",
		Columns: []string{"policy", "diverged on Example 1 + w1(x)"},
	}
	steps := append(core.Example1Steps(), model.WriteFinal(core.Ex1T1, core.Ex1X))
	for _, p := range []core.Policy{
		core.Chain{core.GreedyC1{NewestFirst: true}, core.NoncurrentNaive{}},
		core.Chain{core.GreedyC1{NewestFirst: true}, core.NoncurrentSafe{}},
	} {
		r := oracle.New(p)
		rep := r.RunSteps(steps)
		trap.AddRow(p.Name(), rep.Divergence != nil)
	}
	return []*Table{t, trap}
}

// E11CommitGC shows Theorem 2's negative direction concretely: closing at
// commit (the locking habit) diverges from the conflict scheduler, and
// always in the dangerous direction (reduced accepts, full rejects).
func E11CommitGC(cfg RunConfig) []*Table {
	t := &Table{
		ID:      "E11",
		Title:   "Commit-time GC under the conflict scheduler (negative control)",
		Columns: []string{"seed", "diverged", "at step", "direction ok (reduced accepts / full rejects)"},
	}
	seeds := int64(12)
	if cfg.Quick {
		seeds = 5
	}
	for seed := int64(0); seed < seeds; seed++ {
		r := oracle.New(core.CommitGC{})
		rep := r.RunGenerator(workload.New(workload.Config{
			Entities: 3, Txns: 80, MaxActive: 5, ReadsMin: 1, ReadsMax: 3,
			WritesMin: 1, WritesMax: 2, Seed: cfg.Seed + seed,
		}), 0)
		if rep.Divergence == nil {
			t.AddRow(seed, false, "—", "—")
			continue
		}
		t.AddRow(seed, true, rep.Divergence.StepIndex,
			rep.Divergence.ReducedAccepted && !rep.Divergence.FullAccepted)
	}
	return []*Table{t}
}

// E12Certification compares the preventive scheduler with the optimistic
// certification variant on identical streams (paper Section 2: "the
// issues are very similar in the two cases").
func E12Certification(cfg RunConfig) []*Table {
	t := &Table{
		ID:      "E12",
		Title:   "Preventive vs certification conflict scheduling",
		Note:    "certification always completes at least as many transactions (it only tests at the end).",
		Columns: []string{"workload", "preventive completed", "preventive aborts", "certified completed", "certification aborts", "cert graph nodes"},
	}
	for _, w := range e7Workloads(cfg.Seed+12, cfg.Quick) {
		steps := materialize(w.cfg)
		pst, _ := runCore(steps, core.NoGC{})
		c := core.NewCertifier()
		dead := make(map[model.TxnID]bool)
		for _, st := range steps {
			if dead[st.Txn] {
				continue
			}
			res, err := c.Apply(st)
			if err != nil {
				continue
			}
			if !res.Accepted {
				dead[st.Txn] = true
			}
		}
		cst := c.Stats()
		t.AddRow(w.name, pst.Completed, pst.Aborts, cst.Completed, cst.Aborts, c.Graph().NumNodes())
	}
	return []*Table{t}
}
