// The certification (optimistic) variant of the conflict-graph scheduler
// (paper, Section 2): "the conflict graph of the completed transactions is
// maintained. The active transactions are left free to run. When an active
// transaction is ready to terminate, a certification phase takes place, in
// which it is tested whether the transaction can be added to the conflict
// graph without creating cycles; if so, it is certified and completed,
// otherwise it aborts."
//
// The paper restricts its deletion analysis to the preventive variant
// because "the issues are very similar in the two cases"; we implement the
// certifier for the E12 comparison of acceptance behaviour and graph size
// (it does not support deletion policies — active transactions are not in
// its graph, so C1's quantifier over active tight predecessors would be
// vacuous and misleading).
package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
)

// certEvent is a timestamped access used to orient conflict arcs at
// certification time.
type certEvent struct {
	txn    model.TxnID
	access model.Access
	seq    int64
}

// Certifier is the optimistic conflict-graph scheduler.
type Certifier struct {
	g *graph.Graph
	// events lists the accesses of certified transactions per entity, in
	// execution order.
	events map[model.Entity][]certEvent
	// pending holds the recorded accesses of active transactions.
	pending map[model.TxnID][]pendingAccess
	status  map[model.TxnID]model.Status
	seq     int64
	stats   Stats
}

type pendingAccess struct {
	entity model.Entity
	access model.Access
	seq    int64
}

// NewCertifier returns an empty certification scheduler.
func NewCertifier() *Certifier {
	return &Certifier{
		g:       graph.New(),
		events:  make(map[model.Entity][]certEvent),
		pending: make(map[model.TxnID][]pendingAccess),
		status:  make(map[model.TxnID]model.Status),
	}
}

// Graph returns the conflict graph of certified transactions (read-only).
func (c *Certifier) Graph() *graph.Graph { return c.g }

// Stats returns a snapshot of the counters.
func (c *Certifier) Stats() Stats { return c.stats }

// Apply processes a basic-model step. BEGIN and reads always succeed (the
// active transaction runs free); the final write triggers certification.
func (c *Certifier) Apply(step model.Step) (Result, error) {
	switch step.Kind {
	case model.KindBegin:
		if _, ok := c.status[step.Txn]; ok {
			return Result{}, fmt.Errorf("core: duplicate BEGIN for T%d", step.Txn)
		}
		c.seq++
		c.status[step.Txn] = model.StatusActive
		c.pending[step.Txn] = nil
		c.stats.Begins++
		c.stats.Accepted++
		return Result{Step: step, Accepted: true, Aborted: model.NoTxn, CompletedTxn: model.NoTxn}, nil
	case model.KindRead:
		if err := c.requireActive(step.Txn); err != nil {
			return Result{}, err
		}
		c.seq++
		c.pending[step.Txn] = append(c.pending[step.Txn], pendingAccess{step.Entity, model.ReadAccess, c.seq})
		c.stats.Reads++
		c.stats.Accepted++
		return Result{Step: step, Accepted: true, Aborted: model.NoTxn, CompletedTxn: model.NoTxn}, nil
	case model.KindWriteFinal:
		if err := c.requireActive(step.Txn); err != nil {
			return Result{}, err
		}
		c.seq++
		for _, x := range step.Entities {
			c.pending[step.Txn] = append(c.pending[step.Txn], pendingAccess{x, model.WriteAccess, c.seq})
		}
		return c.certify(step)
	default:
		return Result{}, fmt.Errorf("core: step kind %v not part of the basic model", step.Kind)
	}
}

func (c *Certifier) requireActive(id model.TxnID) error {
	st, ok := c.status[id]
	if !ok {
		return fmt.Errorf("core: step for unknown transaction T%d", id)
	}
	if st != model.StatusActive {
		return fmt.Errorf("core: step for %v transaction T%d", st, id)
	}
	return nil
}

// certify attempts to add the transaction to the certified graph.
func (c *Certifier) certify(step model.Step) (Result, error) {
	id := step.Txn
	// Compute the arcs the transaction's whole history induces against
	// certified transactions: for each pair of conflicting accesses the
	// arc runs from the earlier access's transaction to the later's.
	var arcs []graph.Arc
	seen := make(map[graph.Arc]bool)
	for _, pa := range c.pending[id] {
		for _, ev := range c.events[pa.entity] {
			if ev.txn == id || !pa.access.Conflicts(ev.access) {
				continue
			}
			var a graph.Arc
			if ev.seq < pa.seq {
				a = graph.Arc{From: ev.txn, To: id}
			} else {
				a = graph.Arc{From: id, To: ev.txn}
			}
			if !seen[a] {
				seen[a] = true
				arcs = append(arcs, a)
			}
		}
	}
	// Tentatively add the node, test the batch, and commit or roll back.
	c.g.AddNode(id)
	if c.g.WouldCycle(arcs) {
		c.g.RemoveNode(id)
		delete(c.pending, id)
		c.status[id] = model.StatusAborted
		c.stats.Rejected++
		c.stats.Aborts++
		return Result{Step: step, Accepted: false, Aborted: id, CompletedTxn: model.NoTxn}, nil
	}
	for _, a := range arcs {
		c.g.AddArc(a.From, a.To)
	}
	for _, pa := range c.pending[id] {
		c.events[pa.entity] = append(c.events[pa.entity], certEvent{id, pa.access, pa.seq})
	}
	delete(c.pending, id)
	c.status[id] = model.StatusCompleted
	c.stats.Writes++
	c.stats.Accepted++
	c.stats.Completed++
	if n := c.g.NumNodes(); n > c.stats.PeakNodes {
		c.stats.PeakNodes = n
	}
	if a := c.g.NumArcs(); a > c.stats.PeakArcs {
		c.stats.PeakArcs = a
	}
	return Result{Step: step, Accepted: true, Aborted: model.NoTxn, CompletedTxn: id}, nil
}
