// State export/restore: the durability layer's view of a scheduler.
//
// A snapshot is NOT a step log. Deletion (the paper's whole point) splices
// predecessor×successor arcs through removed nodes, so the retained graph
// is not reconstructible by replaying the retained transactions' steps —
// the splice arcs name conflicts whose witnesses are gone. ExportState
// therefore captures the graph as it stands (nodes, arcs, pins), the
// per-transaction access bookkeeping Corollary 1 needs (access kinds and
// sequence numbers), the per-entity current-value map (which may name
// deleted transactions — exactly the non-compositionality the paper
// studies), and the cross-shard label sets, all in deterministic order.
//
// RestoreScheduler inverts it. The entity indexes (readers/writers) are
// rebuilt from the access sets: a transaction whose retained access level
// is WriteAccess re-indexes as a writer only, which is conflict-equivalent
// — Rules 2 and 3 consult writers for every conflict a read entry could
// have witnessed, and the arcs those conflicts produced are restored
// verbatim from the arc list anyway.
package core

import (
	"fmt"
	"slices"

	"repro/internal/emit"
	"repro/internal/graph"
	"repro/internal/model"
)

// AccessSnap is one entity's retained access record of a transaction.
type AccessSnap struct {
	Entity model.Entity
	Access model.Access
	// Seq is the sequence number of the transaction's latest access to
	// Entity (Corollary 1's currency input).
	Seq int64
}

// TxnSnap is the exported record of one retained transaction (active or
// completed).
type TxnSnap struct {
	ID       model.TxnID
	Status   model.Status
	BeginSeq int64
	EndSeq   int64
	IsCross  bool
	Prepared bool
	Pinned   bool
	Access   []AccessSnap
	// Labels is the node's cross-ancestor label set (live at export time).
	Labels []model.TxnID
}

// EntityWrite is one entry of the schedule-level current-value map.
// Writer may name a transaction that has since been deleted.
type EntityWrite struct {
	Entity model.Entity
	Seq    int64
	Writer model.TxnID
}

// SchedulerState is everything a scheduler needs to resume exactly where
// it stopped: the retained transactions, the (reduced) conflict graph's
// arcs, the current-value map, and the step counter.
type SchedulerState struct {
	Seq    int64
	Txns   []TxnSnap
	Arcs   []graph.Arc
	Writes []EntityWrite
}

// ExportState captures the scheduler's full retained state in
// deterministic order (transactions by BeginSeq, accesses and writes by
// entity, arcs by the graph's canonical order).
func (s *Scheduler) ExportState() SchedulerState {
	st := SchedulerState{
		Seq:  s.seq,
		Txns: make([]TxnSnap, 0, len(s.txns)),
		Arcs: s.g.Arcs(),
	}
	for id, t := range s.txns {
		snap := TxnSnap{
			ID:       id,
			Status:   t.Status,
			BeginSeq: t.BeginSeq,
			EndSeq:   t.EndSeq,
			IsCross:  t.isCross,
			Prepared: t.prepared,
			Pinned:   s.g.PinnedRef(t.ref),
			Access:   make([]AccessSnap, 0, len(t.Access)),
		}
		for x, a := range t.Access {
			snap.Access = append(snap.Access, AccessSnap{Entity: x, Access: a, Seq: t.accessSeq[x]})
		}
		slices.SortFunc(snap.Access, func(a, b AccessSnap) int { return int(a.Entity - b.Entity) })
		if ls := s.labelsOf(t.ref); len(ls) > 0 {
			snap.Labels = slices.Clone(ls)
			slices.Sort(snap.Labels)
		}
		st.Txns = append(st.Txns, snap)
	}
	slices.SortFunc(st.Txns, func(a, b TxnSnap) int {
		switch {
		case a.BeginSeq < b.BeginSeq:
			return -1
		case a.BeginSeq > b.BeginSeq:
			return 1
		default:
			return 0
		}
	})
	st.Writes = make([]EntityWrite, 0, len(s.lastWriteSeq))
	for x, seq := range s.lastWriteSeq {
		st.Writes = append(st.Writes, EntityWrite{Entity: x, Seq: seq, Writer: s.lastWriter[x]})
	}
	slices.SortFunc(st.Writes, func(a, b EntityWrite) int { return int(a.Entity - b.Entity) })
	return st
}

// RestoreScheduler builds a scheduler from an exported state. The restored
// scheduler continues the original's sequence numbering, so noncurrency
// comparisons and incarnation stamps stay order-isomorphic with the
// pre-crash run.
func RestoreScheduler(cfg Config, st SchedulerState) (*Scheduler, error) {
	s := NewScheduler(cfg)
	s.seq = st.Seq
	for i := range st.Txns {
		snap := &st.Txns[i]
		if _, dup := s.txns[snap.ID]; dup {
			return nil, fmt.Errorf("core: restore: duplicate transaction T%d", snap.ID)
		}
		if snap.Status != model.StatusActive && snap.Status != model.StatusCompleted {
			return nil, fmt.Errorf("core: restore: transaction T%d has non-retainable status %v", snap.ID, snap.Status)
		}
		if snap.BeginSeq > st.Seq || snap.EndSeq > st.Seq {
			return nil, fmt.Errorf("core: restore: transaction T%d sequence numbers exceed scheduler seq %d", snap.ID, st.Seq)
		}
		ref := s.g.AddNodeRef(snap.ID)
		t := &TxnState{
			ID:        snap.ID,
			Status:    snap.Status,
			Access:    make(model.AccessSet, len(snap.Access)),
			accessSeq: make(map[model.Entity]int64, len(snap.Access)),
			BeginSeq:  snap.BeginSeq,
			EndSeq:    snap.EndSeq,
			ref:       ref,
			isCross:   snap.IsCross,
			prepared:  snap.Prepared,
		}
		for _, a := range snap.Access {
			t.Access[a.Entity] = a.Access
			t.accessSeq[a.Entity] = a.Seq
			if a.Access == model.WriteAccess {
				s.writers[a.Entity] = append(s.writers[a.Entity], ref)
			} else {
				s.readers[a.Entity] = append(s.readers[a.Entity], ref)
			}
		}
		s.txns[snap.ID] = t
		switch snap.Status {
		case model.StatusActive:
			s.numActive++
		case model.StatusCompleted:
			s.numCompleted++
		}
		if snap.Prepared && snap.Status != model.StatusActive {
			return nil, fmt.Errorf("core: restore: prepared transaction T%d is not active", snap.ID)
		}
		if snap.Pinned {
			s.g.PinRef(ref)
		}
		if snap.IsCross {
			s.ensureCrossCap(ref)
			s.crossID[ref] = snap.ID
			s.numCross++
		}
		for _, l := range snap.Labels {
			if !s.hasLabel(ref, l) {
				s.addLabel(ref, l)
			}
		}
	}
	for _, a := range st.Arcs {
		if s.g.Ref(a.From) == graph.NoRef || s.g.Ref(a.To) == graph.NoRef {
			return nil, fmt.Errorf("core: restore: arc T%d→T%d names a missing node", a.From, a.To)
		}
		s.g.AddArc(a.From, a.To)
	}
	if !s.g.Acyclic() {
		return nil, fmt.Errorf("core: restore: restored conflict graph is cyclic")
	}
	for _, w := range st.Writes {
		if w.Seq > st.Seq {
			return nil, fmt.Errorf("core: restore: write seq %d for entity %d exceeds scheduler seq %d", w.Seq, w.Entity, st.Seq)
		}
		s.lastWriteSeq[w.Entity] = w.Seq
		s.lastWriter[w.Entity] = w.Writer
	}
	return s, nil
}

// SetTracker swaps the cross-arc tracker. Recovery replays the WAL tail
// under a permissive tracker (the real registry does not yet know the
// recovered cross transactions) and installs the rebuilt registry here
// before the shard goes live.
func (s *Scheduler) SetTracker(t CrossTracker) { s.cfg.Cross = t }

// SetEmitter swaps the lifecycle-event emitter. Recovery replays with a
// nil emitter — replayed steps already happened, so re-emitting them would
// double-count every metric — and installs the live emitter here before
// the shard goes live.
func (s *Scheduler) SetEmitter(em emit.Emitter) { s.cfg.Emitter = em }
