// Maximum safe deletion set (Theorem 5). Finding the largest subset N of
// completed transactions whose simultaneous deletion is safe (condition
// C2) is NP-complete; this file implements an exact branch-and-bound that
// is practical for the candidate-set sizes arising in real sweeps, seeded
// with the greedy solution as incumbent.
package core

import (
	"repro/internal/graph"
	"repro/internal/model"
)

// DefaultMaxSafeBudget is the default bound on branch-and-bound nodes.
const DefaultMaxSafeBudget = 200_000

// demand is one (member, witnesses) constraint extracted from C2: for a
// particular (Ti, Tj, x) triple, at least one transaction in witnesses
// must stay OUT of the deleted set. Ti itself deletes only if each of its
// demands keeps a witness.
type demand struct {
	member    model.TxnID   // Ti — the candidate this demand constrains
	witnesses graph.NodeSet // completed tight successors of Tj accessing x strongly enough
}

// MaxSafeSet returns a maximum-cardinality subset of completed whose
// simultaneous deletion from g is safe per C2. budget bounds the search
// (0 = DefaultMaxSafeBudget); if the bound is hit the best subset found so
// far is returned, which is always at least the greedy solution and always
// safe. The returned set is verified with CheckC2 before being returned;
// failure (which would indicate a bug) degrades to the greedy set.
func MaxSafeSet(v StateView, g *graph.Graph, completed []model.TxnID, budget int) graph.NodeSet {
	if budget <= 0 {
		budget = DefaultMaxSafeBudget
	}
	candidates := C1Candidates(v, g, completed)
	if len(candidates) == 0 {
		return graph.NodeSet{}
	}
	candSet := make(graph.NodeSet, len(candidates))
	for _, c := range candidates {
		candSet.Add(c)
	}

	// Build the demand list. For every candidate Ti, every active tight
	// predecessor Tj, every entity x in access(Ti): the witness set is the
	// set of completed tight successors Tk ≠ Ti of Tj with access(Tk, x)
	// at least as strong as access(Ti, x). Witnesses that are not
	// candidates can never be deleted, so such a demand is always
	// satisfied and dropped. If a demand's witness set (restricted to
	// candidates) is empty BUT it had non-candidate witnesses, it is
	// likewise dropped. C1 guarantees every demand has at least one
	// witness overall.
	var demands []demand
	// Per-candidate demand indexes for fast feasibility updates.
	memberDemands := make(map[model.TxnID][]int)
	witnessDemands := make(map[model.TxnID][]int)
	for _, ti := range candidates {
		access := v.Access(ti)
		for _, tj := range ActiveTightPredecessors(v, g, ti) {
			succs := CompletedTightSuccessors(v, g, tj)
			for x, need := range access {
				wit := make(graph.NodeSet)
				alwaysSatisfied := false
				for tk := range succs {
					if tk == ti {
						continue
					}
					if v.Access(tk).Get(x).AtLeastAsStrong(need) {
						if !candSet.Has(tk) {
							// A permanent witness: this demand can never
							// be violated.
							alwaysSatisfied = true
							break
						}
						wit.Add(tk)
					}
				}
				if alwaysSatisfied {
					continue
				}
				d := demand{member: ti, witnesses: wit}
				idx := len(demands)
				demands = append(demands, d)
				memberDemands[ti] = append(memberDemands[ti], idx)
				for w := range wit {
					witnessDemands[w] = append(witnessDemands[w], idx)
				}
			}
		}
	}

	// Greedy incumbent: delete candidates one at a time in ascending
	// order, keeping the partial set C2-feasible.
	greedy := make(graph.NodeSet)
	for _, c := range candidates {
		greedy.Add(c)
		if ok, _ := CheckC2(v, g, greedy); !ok {
			delete(greedy, c)
		}
	}

	bb := &maxSafeSearch{
		v: v, g: g,
		demands:        demands,
		memberDemands:  memberDemands,
		witnessDemands: witnessDemands,
		budget:         budget,
		best:           cloneSet(greedy),
	}
	// remainingWitnesses[i] counts candidate witnesses of demand i not yet
	// deleted; plus we track whether the demand's member is deleted.
	bb.remaining = make([]int, len(demands))
	for i, d := range demands {
		bb.remaining[i] = len(d.witnesses)
	}
	bb.inSet = make(graph.NodeSet)
	bb.search(candidates, 0)

	if ok, _ := CheckC2(v, g, bb.best); !ok {
		// Defensive: should be unreachable; fall back to the greedy set
		// which was built under direct C2 checks.
		return greedy
	}
	return bb.best
}

type maxSafeSearch struct {
	v              StateView
	g              *graph.Graph
	demands        []demand
	memberDemands  map[model.TxnID][]int
	witnessDemands map[model.TxnID][]int
	remaining      []int // candidate witnesses of each demand still undeleted
	inSet          graph.NodeSet
	best           graph.NodeSet
	budget         int
	nodes          int
}

// feasibleWith reports whether deleting id on top of inSet keeps every
// relevant demand satisfiable: each demand whose member is in the set (or
// is id) must retain ≥1 undeleted witness after id is deleted.
func (b *maxSafeSearch) feasibleWith(id model.TxnID) bool {
	// Demands of id itself must currently have a surviving witness (id is
	// never its own witness by construction, and demands with permanent
	// non-candidate witnesses were dropped at construction time).
	for _, di := range b.memberDemands[id] {
		if b.remaining[di] == 0 {
			return false
		}
	}
	// Demands for which id is a witness: if the member is in the set (or
	// is about to be — but id's member demands were checked above) and id
	// is the LAST witness, infeasible.
	for _, di := range b.witnessDemands[id] {
		d := b.demands[di]
		if d.member == id {
			continue
		}
		if b.inSet.Has(d.member) && b.remaining[di] == 1 {
			return false
		}
	}
	return true
}

func (b *maxSafeSearch) include(id model.TxnID) {
	b.inSet.Add(id)
	for _, di := range b.witnessDemands[id] {
		b.remaining[di]--
	}
}

func (b *maxSafeSearch) exclude(id model.TxnID) {
	delete(b.inSet, id)
	for _, di := range b.witnessDemands[id] {
		b.remaining[di]++
	}
}

func (b *maxSafeSearch) search(cands []model.TxnID, i int) {
	b.nodes++
	if b.nodes > b.budget {
		return
	}
	// Bound: even taking every remaining candidate cannot beat best.
	if len(b.inSet)+(len(cands)-i) <= len(b.best) {
		return
	}
	if i == len(cands) {
		if len(b.inSet) > len(b.best) {
			b.best = cloneSet(b.inSet)
		}
		return
	}
	id := cands[i]
	// Branch 1: include id if feasible.
	if b.feasibleWith(id) {
		b.include(id)
		// Double-check demands of members already chosen remain satisfied
		// (feasibleWith covered them), then recurse.
		b.search(cands, i+1)
		b.exclude(id)
	}
	// Branch 2: exclude id.
	b.search(cands, i+1)
}

func cloneSet(s graph.NodeSet) graph.NodeSet {
	out := make(graph.NodeSet, len(s))
	for k := range s {
		out.Add(k)
	}
	return out
}
