package core

import (
	"fmt"
	"testing"

	"repro/internal/model"
)

// permissiveTracker admits every cross reach and keeps every label live —
// the recovery-time stand-in for the engine registry.
type permissiveTracker struct{}

func (permissiveTracker) OnCrossReach(src, dst model.TxnID) bool { return true }
func (permissiveTracker) LabelLive(src model.TxnID) bool         { return true }

// TestExportRestoreSpliceArcs pins the reason snapshots are state
// exports, not step logs: after a deletion, the splice arcs through the
// deleted node are not derivable from the survivors' steps, yet restore
// must preserve them or a later step could close an invisible cycle.
func TestExportRestoreSpliceArcs(t *testing.T) {
	s := NewScheduler(Config{Policy: GreedyC1{}, SweepManual: true})
	// T1 writes x; T2 reads x (arc T1→T2); T3 overwrites x (arcs T1→T3,
	// T2→T3)... then delete what C1 allows and check the arcs survive a
	// round trip.
	s.MustApply(model.Begin(1))
	s.MustApply(model.WriteFinal(1, 1))
	s.MustApply(model.Begin(2))
	s.MustApply(model.Read(2, 1))
	s.MustApply(model.Begin(3))
	s.MustApply(model.WriteFinal(3, 1))
	deleted := s.SweepNow()

	exp := s.ExportState()
	restored, err := RestoreScheduler(Config{Policy: GreedyC1{}, SweepManual: true}, exp)
	if err != nil {
		t.Fatalf("RestoreScheduler: %v", err)
	}
	re := restored.ExportState()
	if fmt.Sprintf("%+v", re) != fmt.Sprintf("%+v", exp) {
		t.Fatalf("re-export mismatch after deletions %v:\n got %+v\nwant %+v", deleted, re, exp)
	}
	if restored.NumCompleted() != s.NumCompleted() || restored.NumActive() != s.NumActive() {
		t.Fatalf("counters diverged: completed %d/%d active %d/%d",
			restored.NumCompleted(), s.NumCompleted(), restored.NumActive(), s.NumActive())
	}
}

// TestExportRestorePrepared checks a prepared (pinned) cross
// sub-transaction survives a round trip: still prepared, still pinned,
// still committable and abortable, labels intact.
func TestExportRestorePrepared(t *testing.T) {
	cfg := Config{Cross: permissiveTracker{}}
	s := NewScheduler(cfg)
	s.MustApply(model.Begin(1))
	s.MustApply(model.WriteFinal(1, 1))
	if _, err := s.BeginCross(model.Begin(7)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(model.Read(7, 1)); err != nil {
		t.Fatal(err)
	}
	vote, err := s.PrepareFinal(model.WriteFinal(7, 2))
	if err != nil || vote != VoteYes {
		t.Fatalf("PrepareFinal: vote=%v err=%v", vote, err)
	}
	// A bystander downstream of the sub-node carries its label.
	s.MustApply(model.Begin(9))
	s.MustApply(model.Read(9, 2))

	exp := s.ExportState()
	for _, branch := range []string{"commit", "abort"} {
		restored, err := RestoreScheduler(Config{Cross: permissiveTracker{}}, exp)
		if err != nil {
			t.Fatalf("RestoreScheduler: %v", err)
		}
		if !restored.Prepared(7) {
			t.Fatalf("%s: restored T7 not prepared", branch)
		}
		rt := restored.Txn(7)
		if rt == nil || !restored.Graph().PinnedRef(rt.ref) {
			t.Fatalf("%s: restored T7 not pinned", branch)
		}
		if got := fmt.Sprintf("%+v", restored.ExportState()); got != fmt.Sprintf("%+v", exp) {
			t.Fatalf("%s: re-export mismatch", branch)
		}
		switch branch {
		case "commit":
			res, err := restored.CommitPrepared(7)
			if err != nil || res.CompletedTxn != 7 {
				t.Fatalf("CommitPrepared after restore: %+v, %v", res, err)
			}
		case "abort":
			if err := restored.AbortTxn(7); err != nil {
				t.Fatalf("AbortTxn after restore: %v", err)
			}
		}
		if restored.Graph().NumPinned() != 0 {
			t.Fatalf("%s: pin not released", branch)
		}
	}
}

// TestRestoreRejectsBadState checks the validation edges: cyclic graphs,
// duplicate IDs, arcs to missing nodes, prepared non-actives.
func TestRestoreRejectsBadState(t *testing.T) {
	base := func() SchedulerState {
		s := NewScheduler(Config{})
		s.MustApply(model.Begin(1))
		s.MustApply(model.WriteFinal(1, 1))
		s.MustApply(model.Begin(2))
		s.MustApply(model.Read(2, 1))
		return s.ExportState()
	}

	bad := base()
	bad.Arcs = append(bad.Arcs, bad.Arcs[0])
	bad.Arcs[len(bad.Arcs)-1].From, bad.Arcs[len(bad.Arcs)-1].To = bad.Arcs[0].To, bad.Arcs[0].From
	if _, err := RestoreScheduler(Config{}, bad); err == nil {
		t.Fatal("cyclic state restored without error")
	}

	bad = base()
	bad.Txns = append(bad.Txns, bad.Txns[0])
	if _, err := RestoreScheduler(Config{}, bad); err == nil {
		t.Fatal("duplicate transaction restored without error")
	}

	bad = base()
	bad.Arcs = append(bad.Arcs, bad.Arcs[0])
	bad.Arcs[len(bad.Arcs)-1].To = 999
	if _, err := RestoreScheduler(Config{}, bad); err == nil {
		t.Fatal("arc to missing node restored without error")
	}

	bad = base()
	bad.Txns[0].Prepared = true // T1 is completed
	if _, err := RestoreScheduler(Config{}, bad); err == nil {
		t.Fatal("prepared completed transaction restored without error")
	}
}

// TestRestoreNoncurrency checks Corollary 1's inputs survive: a restored
// noncurrent-safe scheduler still refuses to call a current transaction
// noncurrent, and still recognizes a noncurrent one.
func TestRestoreNoncurrency(t *testing.T) {
	s := NewScheduler(Config{})
	s.MustApply(model.Begin(1))
	s.MustApply(model.WriteFinal(1, 5))
	s.MustApply(model.Begin(2))
	s.MustApply(model.WriteFinal(2, 5)) // overwrites: T1 now noncurrent
	s.MustApply(model.Begin(3))
	s.MustApply(model.WriteFinal(3, 6)) // T3 current on 6

	restored, err := RestoreScheduler(Config{}, s.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Noncurrent(1) {
		t.Fatal("restored scheduler lost T1's noncurrency")
	}
	if restored.Noncurrent(2) || restored.Noncurrent(3) {
		t.Fatal("restored scheduler thinks a current transaction is noncurrent")
	}
}
