// Sub-transactions: the cross-shard half of the paper's scheduler, used by
// the sharded engine's two-phase commit. A cross-partition transaction is
// split into one sub-transaction per participating shard; all sub-nodes
// share the logical TxnID, so folding them back into one logical node (for
// the offline referee) is the identity on IDs.
//
// # Cross-ancestor labels
//
// Per-shard acyclicity equals global conflict serializability only while
// shard graphs are disjoint. Sub-transactions break the disjointness: a
// global cycle can thread through two shard graphs, visiting two or more
// cross transactions, with each shard's own graph staying acyclic. To make
// those cycles visible the scheduler maintains, per node, the set of cross
// transactions whose sub-node reaches it within this shard's graph (its
// "cross-ancestor labels"). Labels are sourced at cross sub-nodes and
// propagated eagerly along every arc the moment it is added, so the
// invariant "T labels n iff T's sub-node reaches n here" holds after every
// accepted step (deletion is gated on labels, see below, so reduction never
// breaks the invariant for live labels).
//
// Whenever a label src first arrives at the sub-node of a different cross
// transaction dst, a shard-local path src→…→dst has materialized: an
// inter-shard arc candidate src→dst. The scheduler reports it to the
// engine's cross-arc registry (the CrossTracker); if the registry already
// has a path dst→…→src through other shards, accepting the step would
// close a global cycle, and the tracker vetoes it. The scheduler then
// rejects the step exactly like a local cycle: the acting transaction
// aborts, bystanders are untouched.
//
// # Deletion gating
//
// Labels are also why deletion needs an extra gate beyond C1 (which is a
// per-shard condition): reducing a node that carries a live label would
// stop that label from reaching the node's future successors, hiding an
// inter-shard arc from the registry. Sweep.Delete therefore refuses, via
// policyDeletable:
//
//   - pinned nodes (prepared-but-undecided sub-transactions);
//   - sub-transactions of a logical transaction the tracker still tracks
//     (undecided, or decided but possibly still on a future global cycle);
//   - any node carrying a live label.
//
// The tracker retires a cross transaction once it is decided and has no
// active ancestor on any participating shard (Lemma 1 lifted to the
// logical transaction: arcs only ever point into acting nodes, so with no
// active ancestor anywhere the logical node's ancestor set is frozen and
// no future cycle can pass through it). Dead labels are pruned lazily and
// the per-shard C1/C2 machinery applies unchanged from then on.
package core

import (
	"fmt"

	"repro/internal/emit"
	"repro/internal/graph"
	"repro/internal/model"
)

// CrossTracker is the engine-side cross-arc registry consulted by a shard
// scheduler running sub-transactions. Implementations must be safe for
// concurrent use by all shards.
type CrossTracker interface {
	// OnCrossReach reports that a path from cross transaction src's
	// sub-node to cross transaction dst's sub-node has materialized in the
	// calling shard's graph. Returning false vetoes the acting step:
	// recording the inter-shard arc src→dst would close a cycle among
	// cross transactions spanning shard graphs.
	OnCrossReach(src, dst model.TxnID) bool
	// LabelLive reports whether src's label is still relevant. Labels of
	// retired cross transactions are pruned lazily.
	LabelLive(src model.TxnID) bool
}

// PrepareVote is a participant's answer to the coordinator's PREPARE.
type PrepareVote uint8

const (
	// VoteYes: the sub-transaction's final-write arcs are locally acyclic
	// and the registry accepted the inter-shard arcs; the node is pinned
	// awaiting the decision.
	VoteYes PrepareVote = iota
	// VoteLocalCycle: the final write would close a cycle in this shard's
	// graph. Nothing was mutated.
	VoteLocalCycle
	// VoteCrossCycle: the registry vetoed an inter-shard arc — committing
	// would close a cycle spanning shard graphs. The sub-node may retain
	// its prepare arcs; the coordinator's ABORT releases them.
	VoteCrossCycle
)

// String implements fmt.Stringer.
func (v PrepareVote) String() string {
	switch v {
	case VoteYes:
		return "yes"
	case VoteLocalCycle:
		return "no-local-cycle"
	case VoteCrossCycle:
		return "no-cross-cycle"
	default:
		return fmt.Sprintf("PrepareVote(%d)", uint8(v))
	}
}

// BeginCross begins a sub-transaction of the logical cross transaction
// step.Txn on this shard: a normal BEGIN whose node additionally sources
// its logical ID as a cross-ancestor label.
func (s *Scheduler) BeginCross(step model.Step) (Result, error) {
	res, err := s.begin(step)
	if err != nil {
		return res, err
	}
	t := s.txns[step.Txn]
	t.isCross = true
	s.ensureCrossCap(t.ref)
	s.crossID[t.ref] = t.ID
	s.numCross++
	return res, nil
}

// Prepared reports whether id is a prepared-but-undecided sub-transaction.
func (s *Scheduler) Prepared(id model.TxnID) bool {
	t, ok := s.txns[id]
	return ok && t.prepared
}

// PrepareFinal is phase one of the final write of a cross sub-transaction:
// it runs Rule 3's cycle test for this shard's slice of the write set and,
// on VoteYes, applies the arcs, records the accesses, and pins the node in
// the prepared state (still active; no further steps are accepted for it).
// The transaction completes only via CommitPrepared, or releases everything
// via AbortTxn. On VoteLocalCycle nothing is mutated; on VoteCrossCycle the
// caller must follow up with AbortTxn (on every participant) — the vetoed
// inter-shard arc was not recorded, but prepare arcs may already be in the
// graph.
func (s *Scheduler) PrepareFinal(step model.Step) (PrepareVote, error) {
	t, err := s.activeTxn(step.Txn)
	if err != nil {
		return VoteLocalCycle, err
	}
	if !t.isCross {
		return VoteLocalCycle, fmt.Errorf("core: PrepareFinal for non-cross transaction T%d", t.ID)
	}
	s.seq++
	g := s.g
	g.ResetTargets()
	for _, x := range step.Entities {
		for _, r := range s.readers[x] {
			if r != t.ref {
				g.MarkTarget(r)
			}
		}
		for _, w := range s.writers[x] {
			if w != t.ref {
				g.MarkTarget(w)
			}
		}
	}
	if g.ReachesAnyTarget(t.ref) {
		s.emit(emit.KindVeto, emit.ClassCycle, t.ID, t.BeginSeq, 0)
		return VoteLocalCycle, nil
	}
	if !s.crossCollect(t) {
		s.emit(emit.KindCrossVeto, emit.ClassCrossCycle, t.ID, t.BeginSeq, 0)
		return VoteCrossCycle, nil
	}
	g.LinkTargetsTo(t.ref)
	// Note the write accesses (arcs and indexes), but leave the
	// current-value bookkeeping (lastWriteSeq/lastWriter) to
	// CommitPrepared: an ABORT decision must not leave Corollary 1's
	// noncurrency test believing these entities were overwritten.
	for _, x := range step.Entities {
		s.noteAccess(t, x, model.WriteAccess)
	}
	t.prepared = true
	t.EndSeq = s.seq
	g.PinRef(t.ref)
	s.stats.Writes++
	s.stats.Accepted++
	vote := VoteYes
	if !s.crossFlood(t) {
		// A label propagated onward from the freshly-linked node closed a
		// registry cycle. Vote no; the coordinator aborts all participants,
		// which removes these arcs.
		vote = VoteCrossCycle
	}
	if vote == VoteYes {
		s.emit(emit.KindPrepare, emit.ClassOK, t.ID, t.BeginSeq, 0)
	} else {
		s.emit(emit.KindCrossVeto, emit.ClassCrossCycle, t.ID, t.BeginSeq, 0)
	}
	var res Result
	s.afterStep(&res, false)
	return vote, nil
}

// CommitPrepared is phase two: it completes a prepared sub-transaction
// (the decision was COMMIT) and releases its pin.
func (s *Scheduler) CommitPrepared(id model.TxnID) (Result, error) {
	t, ok := s.txns[id]
	if !ok || !t.prepared {
		return Result{}, fmt.Errorf("core: CommitPrepared for unprepared transaction T%d", id)
	}
	s.g.UnpinRef(t.ref)
	t.prepared = false
	t.Status = model.StatusCompleted
	// The write is now committed: install the current-value bookkeeping at
	// the write's prepare-time position (EndSeq), unless a later write of
	// the entity already landed between vote and decision.
	for x, a := range t.Access {
		if a == model.WriteAccess && t.EndSeq > s.lastWriteSeq[x] {
			s.lastWriteSeq[x] = t.EndSeq
			s.lastWriter[x] = t.ID
		}
	}
	s.numActive--
	s.numCompleted++
	s.stats.Completed++
	s.emit(emit.KindCommit, emit.ClassOK, id, t.BeginSeq, 0)
	res := Result{Accepted: true, Aborted: model.NoTxn, CompletedTxn: id}
	s.afterStep(&res, true)
	return res, nil
}

// crossEnabled reports whether any cross bookkeeping can be live on this
// shard; false keeps the purely-local hot path free of label work.
func (s *Scheduler) crossEnabled() bool {
	return s.cfg.Cross != nil && (s.numCross > 0 || s.numLabeled > 0)
}

// ensureCrossCap grows the per-slot cross bookkeeping to cover ref.
func (s *Scheduler) ensureCrossCap(ref graph.Ref) {
	for int(ref) >= len(s.crossID) {
		s.crossID = append(s.crossID, model.NoTxn)
		s.labels = append(s.labels, nil)
	}
}

// crossOf returns the logical cross transaction occupying slot r, or NoTxn.
func (s *Scheduler) crossOf(r graph.Ref) model.TxnID {
	if int(r) < len(s.crossID) {
		return s.crossID[r]
	}
	return model.NoTxn
}

// labelsOf returns slot r's current label set (possibly containing dead
// labels; prune with pruneLabels).
func (s *Scheduler) labelsOf(r graph.Ref) []model.TxnID {
	if int(r) < len(s.labels) {
		return s.labels[r]
	}
	return nil
}

// pruneLabels drops labels of retired cross transactions from slot r and
// returns the surviving set.
func (s *Scheduler) pruneLabels(r graph.Ref) []model.TxnID {
	ls := s.labelsOf(r)
	if len(ls) == 0 {
		return ls
	}
	kept := ls[:0]
	for _, l := range ls {
		if s.cfg.Cross.LabelLive(l) {
			kept = append(kept, l)
		}
	}
	s.labels[r] = kept
	if len(kept) == 0 {
		s.numLabeled--
	}
	return kept
}

// hasLabel reports whether slot r carries label l (or is l's own sub-node).
func (s *Scheduler) hasLabel(r graph.Ref, l model.TxnID) bool {
	if s.crossOf(r) == l {
		return true
	}
	for _, x := range s.labelsOf(r) {
		if x == l {
			return true
		}
	}
	return false
}

// addLabel records label l on slot r, returning whether it was new. The
// caller has already checked hasLabel.
func (s *Scheduler) addLabel(r graph.Ref, l model.TxnID) {
	s.ensureCrossCap(r)
	if len(s.labels[r]) == 0 {
		s.numLabeled++
	}
	s.labels[r] = append(s.labels[r], l)
}

// crossCollect gathers the live labels arriving at the acting node t from
// the current target set (the tails about to be linked to t) into
// s.inLabels. If t is itself a cross sub-node, every arriving label is an
// inter-shard arc candidate label→t reported to the tracker; a veto makes
// crossCollect return false, and the caller must refuse the step before
// any arc is added.
func (s *Scheduler) crossCollect(t *TxnState) bool {
	s.inLabels = s.inLabels[:0]
	if !s.crossEnabled() {
		return true
	}
	//lint:ignore hotpath-closure seen/arrive never leave this frame, so the compiler stack-allocates them; escape mode (-escape) would flag a 'func literal escapes' regression
	seen := func(l model.TxnID) bool {
		for _, x := range s.inLabels {
			if x == l {
				return true
			}
		}
		return false
	}
	//lint:ignore hotpath-closure non-escaping, as seen above
	arrive := func(l model.TxnID) bool {
		if l == t.ID || seen(l) || s.hasLabel(t.ref, l) {
			return true
		}
		if t.isCross && !s.cfg.Cross.OnCrossReach(l, t.ID) {
			return false
		}
		s.inLabels = append(s.inLabels, l)
		return true
	}
	for _, tail := range s.g.Targets() {
		if c := s.crossOf(tail); c != model.NoTxn {
			if !arrive(c) {
				return false
			}
		}
		for _, l := range s.pruneLabels(tail) {
			if !arrive(l) {
				return false
			}
		}
	}
	return true
}

// crossFlood merges s.inLabels into the acting node's label set and pushes
// every newly-arrived label forward along out-arcs (labels are eager: the
// reaches-invariant must hold after the step). Arrival at another cross
// sub-node reports an inter-shard arc; a veto returns false and the caller
// rejects the step, removing the acting node and with it the only new
// paths (labels already spread beyond it become a harmless
// over-approximation).
func (s *Scheduler) crossFlood(t *TxnState) bool {
	if len(s.inLabels) == 0 {
		return true
	}
	for _, l := range s.inLabels {
		s.addLabel(t.ref, l)
		// Per-label DFS from t through nodes not yet carrying l.
		s.crossStack = append(s.crossStack[:0], t.ref)
		for len(s.crossStack) > 0 {
			n := s.crossStack[len(s.crossStack)-1]
			s.crossStack = s.crossStack[:len(s.crossStack)-1]
			for _, w := range s.g.OutRefs(n) {
				if s.hasLabel(w, l) {
					continue
				}
				if c := s.crossOf(w); c != model.NoTxn {
					if c != l && !s.cfg.Cross.OnCrossReach(l, c) {
						return false
					}
					// A sub-node sources its own ID; store the transit label
					// too so future successors inherit it.
				}
				s.addLabel(w, l)
				s.crossStack = append(s.crossStack, w)
			}
		}
	}
	return true
}

// clearCross erases slot-level cross bookkeeping when t's node leaves the
// graph (abort, rejection, or deletion).
func (s *Scheduler) clearCross(t *TxnState) {
	if s.cfg.Cross == nil {
		return
	}
	r := t.ref
	if int(r) >= len(s.crossID) {
		return
	}
	if s.crossID[r] != model.NoTxn {
		s.crossID[r] = model.NoTxn
		s.numCross--
	}
	if len(s.labels[r]) > 0 {
		s.labels[r] = s.labels[r][:0]
		s.numLabeled--
	}
}

// PurgeLabel erases every stored occurrence of label id from this shard.
// The engine calls it (on all shards) before re-registering a TxnID that
// once named a dropped or retired cross transaction: stale entries of the
// old incarnation would otherwise be indistinguishable from the new
// incarnation's labels and stop crossFlood's DFS early, hiding real
// reach-paths from the registry.
func (s *Scheduler) PurgeLabel(id model.TxnID) {
	if s.numLabeled == 0 {
		return
	}
	for r := range s.labels {
		ls := s.labels[r]
		if len(ls) == 0 {
			continue
		}
		kept := ls[:0]
		for _, l := range ls {
			if l != id {
				kept = append(kept, l)
			}
		}
		s.labels[r] = kept
		if len(kept) == 0 {
			s.numLabeled--
		}
	}
}

// policyDeletable reports whether a deletion policy may remove id: it must
// be a retained completed transaction, not pinned, not a sub-transaction
// the tracker still tracks, and must carry no live cross labels (reducing
// a live-labeled node would hide inter-shard arcs from the registry).
func (s *Scheduler) policyDeletable(id model.TxnID) bool {
	t, ok := s.txns[id]
	if !ok || t.Status != model.StatusCompleted {
		return false
	}
	if s.g.PinnedRef(t.ref) {
		return false
	}
	if s.cfg.Cross == nil {
		return true
	}
	if t.isCross && s.cfg.Cross.LabelLive(t.ID) {
		return false
	}
	return len(s.pruneLabels(t.ref)) == 0
}
