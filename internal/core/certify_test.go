package core

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

func capply(t *testing.T, c *Certifier, st model.Step) Result {
	t.Helper()
	res, err := c.Apply(st)
	if err != nil {
		t.Fatalf("Apply(%v): %v", st, err)
	}
	return res
}

func TestCertifierSerialSchedulesCertify(t *testing.T) {
	c := NewCertifier()
	for id := model.TxnID(1); id <= 3; id++ {
		capply(t, c, model.Begin(id))
		capply(t, c, model.Read(id, 0))
		res := capply(t, c, model.WriteFinal(id, 0))
		if !res.Accepted {
			t.Fatalf("serial transaction T%d must certify", id)
		}
	}
	if c.Graph().NumNodes() != 3 {
		t.Fatalf("graph nodes = %d", c.Graph().NumNodes())
	}
	if !c.Graph().Acyclic() {
		t.Fatal("certified graph must stay acyclic")
	}
}

func TestCertifierRejectsNonCSRInterleaving(t *testing.T) {
	// T1 reads x, T2 reads y, T1 writes y, T2 writes x: classic non-CSR.
	// T1 certifies first; then T2's certification must fail.
	c := NewCertifier()
	capply(t, c, model.Begin(1))
	capply(t, c, model.Begin(2))
	capply(t, c, model.Read(1, 0))
	capply(t, c, model.Read(2, 1))
	res1 := capply(t, c, model.WriteFinal(1, 1))
	if !res1.Accepted {
		t.Fatal("first certification must succeed")
	}
	res2 := capply(t, c, model.WriteFinal(2, 0))
	if res2.Accepted {
		t.Fatal("T2 must fail certification: T1->T2 (rw on y after... ) and T2->T1 arcs both exist")
	}
	if res2.Aborted != 2 {
		t.Fatalf("aborted = T%d", res2.Aborted)
	}
	if c.Graph().HasNode(2) {
		t.Fatal("failed certification must not leave a node")
	}
}

func TestCertifierActiveRunsFree(t *testing.T) {
	// Unlike the preventive scheduler, reads never abort anyone.
	c := NewCertifier()
	capply(t, c, model.Begin(1))
	capply(t, c, model.Read(1, 0))
	capply(t, c, model.Begin(2))
	capply(t, c, model.Read(2, 1))
	capply(t, c, model.WriteFinal(1, 1))
	// T2 can still read freely even what T1 wrote.
	res := capply(t, c, model.Read(2, 1))
	if !res.Accepted {
		t.Fatal("reads always run free under certification")
	}
}

func TestCertifierProtocolErrors(t *testing.T) {
	c := NewCertifier()
	capply(t, c, model.Begin(1))
	if _, err := c.Apply(model.Begin(1)); err == nil {
		t.Fatal("duplicate BEGIN")
	}
	if _, err := c.Apply(model.Read(9, 0)); err == nil {
		t.Fatal("unknown txn")
	}
	if _, err := c.Apply(model.Write(1, 0)); err == nil {
		t.Fatal("multiwrite kind must error")
	}
	capply(t, c, model.WriteFinal(1, 0))
	if _, err := c.Apply(model.Read(1, 0)); err == nil {
		t.Fatal("step after completion")
	}
}

// TestCertifierAcceptsSupersetOfPreventive: any transaction the
// preventive scheduler completes would also certify — on schedules where
// the preventive scheduler aborts nothing, both accept everything, and on
// random schedules certification accepts at least as many transactions.
func TestCertifierAcceptsAtLeastAsMany(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		prev := NewScheduler(Config{})
		cert := NewCertifier()
		type plan struct {
			id    model.TxnID
			reads []model.Entity
			write []model.Entity
		}
		var act []*plan
		next := model.TxnID(1)
		issued := 0
		prevAborts, certAborts := 0, 0
		deadPrev := map[model.TxnID]bool{}
		deadCert := map[model.TxnID]bool{}
		for issued < 12 || len(act) > 0 {
			var st model.Step
			var donePlan int = -1
			if issued < 12 && (len(act) == 0 || rng.Intn(3) == 0) {
				p := &plan{id: next}
				next++
				issued++
				for i := 0; i < 1+rng.Intn(2); i++ {
					p.reads = append(p.reads, model.Entity(rng.Intn(4)))
				}
				p.write = []model.Entity{model.Entity(rng.Intn(4))}
				act = append(act, p)
				st = model.Begin(p.id)
			} else {
				i := rng.Intn(len(act))
				p := act[i]
				if len(p.reads) > 0 {
					st = model.Read(p.id, p.reads[0])
					p.reads = p.reads[1:]
				} else {
					st = model.WriteFinal(p.id, p.write...)
					donePlan = i
				}
			}
			if !deadPrev[st.Txn] {
				res, err := prev.Apply(st)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Accepted {
					deadPrev[st.Txn] = true
					prevAborts++
				}
			}
			if !deadCert[st.Txn] {
				res, err := cert.Apply(st)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Accepted {
					deadCert[st.Txn] = true
					certAborts++
				}
			}
			if donePlan >= 0 {
				act = append(act[:donePlan], act[donePlan+1:]...)
			}
			// Drop plans dead in BOTH schedulers (each scheduler skips its
			// own dead txns independently above).
			for i := len(act) - 1; i >= 0; i-- {
				if deadPrev[act[i].id] && deadCert[act[i].id] {
					act = append(act[:i], act[i+1:]...)
				}
			}
		}
		if cert.Stats().Completed < prev.Stats().Completed {
			t.Fatalf("seed %d: certification completed %d < preventive %d",
				seed, cert.Stats().Completed, prev.Stats().Completed)
		}
	}
}
