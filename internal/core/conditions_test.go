package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
)

// fakeView lets tests fabricate arbitrary status/access assignments on
// hand-built graphs (including shapes unreachable in the basic model but
// reachable on reduced graphs).
type fakeView struct {
	status map[model.TxnID]model.Status
	access map[model.TxnID]model.AccessSet
}

func (v *fakeView) Status(id model.TxnID) model.Status {
	if s, ok := v.status[id]; ok {
		return s
	}
	return model.StatusAborted
}

func (v *fakeView) Access(id model.TxnID) model.AccessSet { return v.access[id] }

func TestExample1GraphShape(t *testing.T) {
	s := Example1Scheduler(Config{})
	g := s.Graph()
	wantArcs := [][2]model.TxnID{{1, 2}, {1, 3}, {2, 3}}
	if g.NumArcs() != len(wantArcs) {
		t.Fatalf("arcs = %d, want %d:\n%s", g.NumArcs(), len(wantArcs), g.String())
	}
	for _, a := range wantArcs {
		if !g.HasArc(a[0], a[1]) {
			t.Fatalf("missing arc T%d->T%d", a[0], a[1])
		}
	}
}

func TestExample1BothSatisfyC1(t *testing.T) {
	s := Example1Scheduler(Config{})
	for _, id := range []model.TxnID{Ex1T2, Ex1T3} {
		ok, viol := s.CheckC1(id)
		if !ok {
			t.Fatalf("T%d should satisfy C1; violation: %v", id, viol)
		}
	}
}

func TestExample1DeletingOneDisablesTheOther(t *testing.T) {
	// Delete T3 first; T2 must then violate C1 (the paper's point).
	s := Example1Scheduler(Config{})
	if err := s.deleteTxn(Ex1T3); err != nil {
		t.Fatal(err)
	}
	ok, viol := s.CheckC1(Ex1T2)
	if ok {
		t.Fatal("after deleting T3, T2 must violate C1")
	}
	if viol.Tj != Ex1T1 || viol.X != Ex1X {
		t.Fatalf("violation witness = (T%d, %d), want (T%d, %d)", viol.Tj, viol.X, Ex1T1, Ex1X)
	}
	// Symmetric order.
	s2 := Example1Scheduler(Config{})
	if err := s2.deleteTxn(Ex1T2); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s2.CheckC1(Ex1T3); ok {
		t.Fatal("after deleting T2, T3 must violate C1")
	}
}

func TestC1ActiveTransactionNeverDeletable(t *testing.T) {
	s := Example1Scheduler(Config{})
	if ok, _ := s.CheckC1(Ex1T1); ok {
		t.Fatal("active transaction must not satisfy C1")
	}
}

func TestC1VacuousWithoutActiveTightPreds(t *testing.T) {
	// Two completed transactions in serial order, no actives: both pass.
	s := NewScheduler(Config{})
	s.MustApply(model.Begin(1))
	s.MustApply(model.WriteFinal(1, 0))
	s.MustApply(model.Begin(2))
	s.MustApply(model.Read(2, 0))
	s.MustApply(model.WriteFinal(2, 0))
	for _, id := range []model.TxnID{1, 2} {
		if ok, _ := s.CheckC1(id); !ok {
			t.Fatalf("T%d has no active predecessors; C1 should hold", id)
		}
	}
}

func TestActiveTightPredecessorsTightness(t *testing.T) {
	// Hand-built: A(active) -> B(active) -> C(completed) -> D(completed).
	// D's active tight predecessors: B (direct-arc-free path B->C->D has
	// completed intermediate C) but NOT A (every path from A passes
	// through the active B).
	g := graph.New()
	for _, id := range []model.TxnID{10, 11, 12, 13} {
		g.AddNode(id)
	}
	g.AddArc(10, 11) // A -> B
	g.AddArc(11, 12) // B -> C
	g.AddArc(12, 13) // C -> D
	v := &fakeView{
		status: map[model.TxnID]model.Status{
			10: model.StatusActive,
			11: model.StatusActive,
			12: model.StatusCompleted,
			13: model.StatusCompleted,
		},
		access: map[model.TxnID]model.AccessSet{},
	}
	got := ActiveTightPredecessors(v, g, 13)
	if len(got) != 1 || got[0] != 11 {
		t.Fatalf("ActiveTightPredecessors = %v, want [11]", got)
	}
}

func TestCompletedTightSuccessorsExcludesThroughActive(t *testing.T) {
	// Tj(active) -> M(active) -> K(completed): K unreachable tightly.
	// Tj(active) -> C(completed) -> L(completed): both C and L tight.
	g := graph.New()
	for _, id := range []model.TxnID{1, 2, 3, 4, 5} {
		g.AddNode(id)
	}
	g.AddArc(1, 2) // Tj -> M
	g.AddArc(2, 3) // M -> K
	g.AddArc(1, 4) // Tj -> C
	g.AddArc(4, 5) // C -> L
	v := &fakeView{
		status: map[model.TxnID]model.Status{
			1: model.StatusActive,
			2: model.StatusActive,
			3: model.StatusCompleted,
			4: model.StatusCompleted,
			5: model.StatusCompleted,
		},
	}
	got := CompletedTightSuccessors(v, g, 1)
	if got.Has(3) {
		t.Fatal("K is only reachable through an active node; not tight")
	}
	if !got.Has(4) || !got.Has(5) {
		t.Fatalf("C and L should be tight successors; got %v", got.Sorted())
	}
	if got.Has(2) {
		t.Fatal("active M is not a completed successor")
	}
}

func TestC1StrengthRequirement(t *testing.T) {
	// T1 active reads x. T2 completes writing x. T3 completes READING x
	// (and writing nothing relevant). T2's witness for (T1, x) must write
	// x; T3 only reads it, so deleting T2 must be unsafe.
	s := NewScheduler(Config{})
	s.MustApply(model.Begin(1))
	s.MustApply(model.Read(1, 0))
	s.MustApply(model.Begin(2))
	s.MustApply(model.WriteFinal(2, 0))
	s.MustApply(model.Begin(3))
	s.MustApply(model.Read(3, 0))
	s.MustApply(model.WriteFinal(3)) // empty write set
	ok, viol := s.CheckC1(2)
	if ok {
		t.Fatal("T2 wrote x; reader T3 is too weak a witness, C1 must fail")
	}
	if viol.Strength != model.WriteAccess {
		t.Fatalf("violation strength = %v, want write", viol.Strength)
	}
	// T3 in contrast only READ x, and T2 wrote it, so T3 is deletable.
	if ok, v := s.CheckC1(3); !ok {
		t.Fatalf("T3 should satisfy C1 (T2 writes x): %v", v)
	}
}

func TestLemma1HasActivePredecessor(t *testing.T) {
	s := Example1Scheduler(Config{})
	if !HasActivePredecessor(s, s.Graph(), Ex1T2) {
		t.Fatal("T2 has active predecessor T1")
	}
	// A disconnected completed txn has none.
	s.MustApply(model.Begin(9))
	s.MustApply(model.WriteFinal(9, 99))
	if HasActivePredecessor(s, s.Graph(), 9) {
		t.Fatal("T9 is isolated")
	}
}

func TestC2SingletonMatchesC1(t *testing.T) {
	s := Example1Scheduler(Config{})
	for _, id := range []model.TxnID{Ex1T2, Ex1T3} {
		okC1, _ := s.CheckC1(id)
		okC2, _ := s.CheckC2(graph.NodeSet{id: {}})
		if okC1 != okC2 {
			t.Fatalf("C1 vs C2 singleton disagree for T%d: %v vs %v", id, okC1, okC2)
		}
	}
}

func TestC2PairExample1Fails(t *testing.T) {
	s := Example1Scheduler(Config{})
	ok, viol := s.CheckC2(graph.NodeSet{Ex1T2: {}, Ex1T3: {}})
	if ok {
		t.Fatal("deleting both T2 and T3 simultaneously must violate C2")
	}
	if viol == nil || viol.Tj != Ex1T1 {
		t.Fatalf("violation = %+v", viol)
	}
}

func TestC2RejectsNonCompletedMembers(t *testing.T) {
	s := Example1Scheduler(Config{})
	if ok, _ := s.CheckC2(graph.NodeSet{Ex1T1: {}}); ok {
		t.Fatal("active member must fail C2")
	}
	if ok, _ := s.CheckC2(graph.NodeSet{99: {}}); ok {
		t.Fatal("unknown member must fail C2")
	}
}

func TestC2WitnessOutsideNRequired(t *testing.T) {
	// T1 active reads x; T2, T3, T4 each read+write x serially. Deleting
	// {T2, T3} is fine (T4 witnesses both). Deleting {T2, T3, T4} is not.
	s := NewScheduler(Config{})
	s.MustApply(model.Begin(1))
	s.MustApply(model.Read(1, 0))
	for id := model.TxnID(2); id <= 4; id++ {
		s.MustApply(model.Begin(id))
		s.MustApply(model.Read(id, 0))
		s.MustApply(model.WriteFinal(id, 0))
	}
	if ok, v := s.CheckC2(graph.NodeSet{2: {}, 3: {}}); !ok {
		t.Fatalf("pair {T2,T3} should pass C2 (T4 is the witness): %v", v)
	}
	if ok, _ := s.CheckC2(graph.NodeSet{2: {}, 3: {}, 4: {}}); ok {
		t.Fatal("all three cannot be deleted simultaneously")
	}
}

func TestNoncurrent(t *testing.T) {
	s := Example1Scheduler(Config{})
	if !s.Noncurrent(Ex1T2) {
		t.Fatal("T2's only entity x was overwritten by T3: noncurrent")
	}
	if s.Noncurrent(Ex1T3) {
		t.Fatal("T3 wrote x last: current")
	}
	if s.Noncurrent(Ex1T1) {
		t.Fatal("active transactions are not candidates")
	}
	if s.Noncurrent(99) {
		t.Fatal("unknown transaction")
	}
}

func TestNoncurrentReaderOfCurrentValue(t *testing.T) {
	// T2 writes x; T3 reads x afterwards and completes. T3 read the
	// current value: current, despite writing nothing.
	s := NewScheduler(Config{})
	s.MustApply(model.Begin(2))
	s.MustApply(model.WriteFinal(2, 0))
	s.MustApply(model.Begin(3))
	s.MustApply(model.Read(3, 0))
	s.MustApply(model.WriteFinal(3))
	if s.Noncurrent(3) {
		t.Fatal("T3 read the current value of x: current")
	}
	if s.Noncurrent(2) {
		t.Fatal("T2 wrote the current value of x: current")
	}
}

func TestCorollary1NoncurrentSatisfiesC1(t *testing.T) {
	// Corollary 1: on the (unreduced) conflict graph, noncurrent implies
	// C1. Exercise on Example 1.
	s := Example1Scheduler(Config{})
	if !s.Noncurrent(Ex1T2) {
		t.Fatal("precondition: T2 noncurrent")
	}
	if ok, v := s.CheckC1(Ex1T2); !ok {
		t.Fatalf("Corollary 1 violated: %v", v)
	}
}

func TestCurrentWriterPresent(t *testing.T) {
	s := Example1Scheduler(Config{})
	if !s.CurrentWriterPresent(Ex1T2) {
		t.Fatal("T3, x's current writer, is present")
	}
	// Delete T3: T2's current writer disappears.
	if err := s.deleteTxn(Ex1T3); err != nil {
		t.Fatal(err)
	}
	if s.CurrentWriterPresent(Ex1T2) {
		t.Fatal("after deleting T3, T2's current writer is gone")
	}
}

func TestCurrentWriterPresentNeverWritten(t *testing.T) {
	// A read of a never-written entity has no current writer.
	s := NewScheduler(Config{})
	s.MustApply(model.Begin(1))
	s.MustApply(model.Read(1, 42))
	s.MustApply(model.WriteFinal(1))
	if s.CurrentWriterPresent(1) {
		t.Fatal("entity 42 was never written; no current writer")
	}
}

func TestC1CandidatesExample1(t *testing.T) {
	s := Example1Scheduler(Config{})
	got := C1Candidates(s, s.Graph(), s.CompletedTxns())
	if len(got) != 2 {
		t.Fatalf("candidates = %v, want [T2 T3]", got)
	}
}

func TestViolationErrorStrings(t *testing.T) {
	v1 := &C1Violation{Ti: 1, Tj: 2, X: 3, Strength: model.WriteAccess}
	if v1.Error() == "" {
		t.Fatal("empty C1Violation error")
	}
	v2 := &C2Violation{Ti: 1, Tj: 2, X: 3, Strength: model.ReadAccess}
	if v2.Error() == "" {
		t.Fatal("empty C2Violation error")
	}
}
