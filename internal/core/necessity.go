// The adversarial continuation from Theorem 1's necessity proof: if a
// completed transaction Ti violates C1 with witness (Tj, x), there is a
// continuation r = s·t after which the conflict scheduler rejects the last
// step while the reduced scheduler (with Ti deleted) accepts it — i.e.
// deleting Ti is demonstrably unsafe.
//
// The construction (quoting the proof): "Let y be any entity other than x.
// First, all active transactions except Tj read y; then a new transaction
// Tm writes y, and finally all active transactions except Tj try to write
// y. Clearly, the last writes will fail and all active transactions except
// Tj will be aborted... The last step t is as follows. If Ti reads but
// does not write x then Tj writes x; if Ti writes x then Tj reads x."
package core

import (
	"fmt"

	"repro/internal/model"
)

// NecessityContinuation builds the continuation r = s·t witnessing that
// deleting ti (which violates C1 via viol) is unsafe after the current
// schedule. The caller supplies a fresh transaction ID for Tm and a fresh
// entity y (one different from viol.X; a never-used entity always works).
//
// Feeding the returned steps to the original scheduler rejects the final
// step (cycle through ti), while a scheduler whose graph had ti reduced
// away accepts it — the divergence the oracle detects.
func NecessityContinuation(s *Scheduler, ti model.TxnID, viol *C1Violation, tm model.TxnID, y model.Entity) ([]model.Step, error) {
	if viol == nil || viol.Tj == model.NoTxn {
		return nil, fmt.Errorf("core: necessity continuation needs a concrete C1 violation witness")
	}
	tj := viol.Tj
	x := viol.X
	if y == x {
		return nil, fmt.Errorf("core: fresh entity y must differ from witness entity x=%d", x)
	}
	if s.Status(tj) != model.StatusActive {
		return nil, fmt.Errorf("core: witness predecessor T%d is not active", tj)
	}
	if _, exists := s.txns[tm]; exists {
		return nil, fmt.Errorf("core: T%d already exists; Tm must be fresh", tm)
	}

	var steps []model.Step
	// Phase s: abort every active transaction except Tj using entity y.
	var others []model.TxnID
	for _, id := range s.ActiveTxns() {
		if id != tj {
			others = append(others, id)
		}
	}
	if len(others) > 0 {
		for _, id := range others {
			steps = append(steps, model.Read(id, y))
		}
		steps = append(steps, model.Begin(tm), model.WriteFinal(tm, y))
		for _, id := range others {
			// Each of these writes y after having read y before Tm's
			// write: arc to Tm and arc from Tm — a cycle, so the step is
			// rejected and the transaction aborts, in both schedulers.
			steps = append(steps, model.WriteFinal(id, y))
		}
	}
	// Phase t: the single conflicting access on x by Tj.
	if viol.Strength == model.WriteAccess {
		steps = append(steps, model.Read(tj, x))
	} else {
		steps = append(steps, model.WriteFinal(tj, x))
	}
	return steps, nil
}
