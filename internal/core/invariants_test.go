package core

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/model"
)

// checkInvariants asserts the scheduler's structural invariants:
//  1. the (reduced) graph is acyclic at all times;
//  2. every graph node has a live transaction record and vice versa;
//  3. the per-entity reader/writer indexes agree exactly with the live
//     access sets (deletion = forgetting, abort = forgetting);
//  4. reduced-graph property (3) of Section 4: whenever two present
//     transactions performed conflicting accesses, an arc joins them.
func checkInvariants(t *testing.T, s *Scheduler) {
	t.Helper()
	if !s.g.Acyclic() {
		t.Fatal("invariant: graph must stay acyclic")
	}
	for _, id := range s.g.Nodes() {
		if s.txns[id] == nil {
			t.Fatalf("invariant: node T%d has no record", id)
		}
	}
	for id := range s.txns {
		if !s.g.HasNode(id) {
			t.Fatalf("invariant: record T%d has no node", id)
		}
	}
	// Index ⊆ access sets. The indexes hold arena slots; every entry must
	// resolve to a live record whose cached ref matches the slot.
	hasRef := func(list []graph.Ref, r graph.Ref) bool {
		for _, v := range list {
			if v == r {
				return true
			}
		}
		return false
	}
	for x, list := range s.readers {
		for _, r := range list {
			id := s.g.IDOf(r)
			tr := s.txns[id]
			if tr == nil || tr.ref != r || tr.Access.Get(x) == model.NoAccess {
				t.Fatalf("invariant: stale reader index entry (slot %d → T%d, %d)", r, id, x)
			}
		}
	}
	for x, list := range s.writers {
		for _, r := range list {
			id := s.g.IDOf(r)
			tr := s.txns[id]
			if tr == nil || tr.ref != r || tr.Access.Get(x) != model.WriteAccess {
				t.Fatalf("invariant: stale writer index entry (slot %d → T%d, %d)", r, id, x)
			}
		}
	}
	// Access sets ⊆ index.
	for id, tr := range s.txns {
		for x, a := range tr.Access {
			if a == model.WriteAccess {
				if !hasRef(s.writers[x], tr.ref) {
					t.Fatalf("invariant: writer (T%d, %d) missing from index", id, x)
				}
			} else if !hasRef(s.readers[x], tr.ref) {
				t.Fatalf("invariant: reader (T%d, %d) missing from index", id, x)
			}
		}
	}
	// Conflicting present pairs are joined by an arc (in one direction).
	ids := s.g.Nodes()
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			ta, tb := s.txns[a], s.txns[b]
			conflict := false
			for x, aa := range ta.Access {
				if aa.Conflicts(tb.Access.Get(x)) {
					conflict = true
					break
				}
			}
			if conflict && !s.g.HasArc(a, b) && !s.g.HasArc(b, a) {
				t.Fatalf("invariant: conflicting pair T%d, T%d with no arc", a, b)
			}
		}
	}
}

// TestSchedulerInvariantsProperty drives random step streams (with random
// policies) and checks the invariants after every step.
func TestSchedulerInvariantsProperty(t *testing.T) {
	policies := []Policy{nil, NoGC{}, GreedyC1{}, NoncurrentSafe{}, Lemma1Policy{}, MaxSafeExact{Budget: 5000}}
	f := func(seed int64) bool {
		s := randomDriver{seed: seed}.run(t, policies[int(uint64(seed)%uint64(len(policies)))])
		checkInvariants(t, s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// randomDriver replays a deterministic random basic-model workload,
// checking invariants at every step.
type randomDriver struct{ seed int64 }

func (d randomDriver) run(t *testing.T, p Policy) *Scheduler {
	t.Helper()
	s := NewScheduler(Config{Policy: p})
	// Reuse the randomScheduler plan logic but with invariant checks.
	rng := newRand(d.seed)
	type plan struct {
		id    model.TxnID
		reads []model.Entity
		write []model.Entity
	}
	var active []*plan
	next := model.TxnID(1)
	issued := 0
	for issued < 12 || len(active) > 0 {
		if issued < 12 && (len(active) == 0 || (len(active) < 4 && rng.Intn(3) == 0)) {
			pl := &plan{id: next}
			next++
			issued++
			for i := 0; i < 1+rng.Intn(3); i++ {
				pl.reads = append(pl.reads, model.Entity(rng.Intn(5)))
			}
			if rng.Intn(4) > 0 {
				pl.write = append(pl.write, model.Entity(rng.Intn(5)))
			}
			s.MustApply(model.Begin(pl.id))
			active = append(active, pl)
			checkInvariants(t, s)
			continue
		}
		i := rng.Intn(len(active))
		pl := active[i]
		var res Result
		if len(pl.reads) > 0 {
			res = s.MustApply(model.Read(pl.id, pl.reads[0]))
			pl.reads = pl.reads[1:]
		} else {
			res = s.MustApply(model.WriteFinal(pl.id, pl.write...))
			pl.reads, pl.write = nil, nil
			active = append(active[:i], active[i+1:]...)
		}
		if !res.Accepted {
			for j, q := range active {
				if q.id == pl.id {
					active = append(active[:j], active[j+1:]...)
					break
				}
			}
		}
		checkInvariants(t, s)
	}
	return s
}

// newRand isolates the math/rand import to one helper.
func newRand(seed int64) *randSource {
	return &randSource{state: uint64(seed)*2862933555777941757 + 3037000493}
}

// randSource is a tiny deterministic PRNG (xorshift*), avoiding any
// coupling to math/rand's generator across Go versions.
type randSource struct{ state uint64 }

func (r *randSource) next() uint64 {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return r.state * 2685821657736338717
}

func (r *randSource) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}
