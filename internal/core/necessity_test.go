package core

import (
	"testing"

	"repro/internal/model"
)

// replay clones a scheduler state by replaying steps; used to compare a
// full and a reduced scheduler on the same continuation.
func replay(t *testing.T, steps []model.Step, cfg Config) *Scheduler {
	t.Helper()
	s := NewScheduler(cfg)
	for _, st := range steps {
		if _, err := s.Apply(st); err != nil {
			t.Fatalf("replay %v: %v", st, err)
		}
	}
	return s
}

// runContinuation feeds steps, skipping those of already-aborted txns,
// and returns whether the FINAL step was accepted.
func runContinuation(t *testing.T, s *Scheduler, steps []model.Step) bool {
	t.Helper()
	aborted := map[model.TxnID]bool{}
	lastAccepted := false
	for _, st := range steps {
		if aborted[st.Txn] {
			continue
		}
		res, err := s.Apply(st)
		if err != nil {
			t.Fatalf("continuation %v: %v", st, err)
		}
		lastAccepted = res.Accepted
		if !res.Accepted {
			aborted[st.Txn] = true
		}
	}
	return lastAccepted
}

// TestNecessityExample1 deletes T3 in Example 1, leaving T2 in violation
// of C1, builds the continuation of Theorem 1's necessity proof for the
// *unsafe* deletion of T2, and verifies the full and reduced schedulers
// disagree on its last step.
func TestNecessityExample1(t *testing.T) {
	base := Example1Steps()

	// Reduced world: delete T3 (safe) and then T2 (unsafe).
	reduced := replay(t, base, Config{})
	if err := reduced.deleteTxn(Ex1T3); err != nil {
		t.Fatal(err)
	}
	ok, viol := reduced.CheckC1(Ex1T2)
	if ok {
		t.Fatal("T2 should violate C1 after T3 is gone")
	}
	steps, err := NecessityContinuation(reduced, Ex1T2, viol, 100 /*Tm*/, 77 /*y*/)
	if err != nil {
		t.Fatal(err)
	}
	if err := reduced.deleteTxn(Ex1T2); err != nil { // the unsafe deletion
		t.Fatal(err)
	}

	// Full world: no deletions at all.
	full := replay(t, base, Config{})

	fullLast := runContinuation(t, full, steps)
	redLast := runContinuation(t, reduced, steps)
	if fullLast {
		t.Fatal("full scheduler must REJECT the adversarial last step")
	}
	if !redLast {
		t.Fatal("reduced scheduler must ACCEPT the adversarial last step (divergence)")
	}
}

// TestNecessityWithOtherActives checks the abort-everyone-else phase: add
// extra active transactions before the continuation and confirm the
// construction still produces the divergence.
func TestNecessityWithOtherActives(t *testing.T) {
	base := Example1Steps()
	extra := []model.Step{
		model.Begin(50), model.Read(50, 5),
		model.Begin(51), model.Read(51, 6),
	}
	all := append(append([]model.Step{}, base...), extra...)

	reduced := replay(t, all, Config{})
	if err := reduced.deleteTxn(Ex1T3); err != nil {
		t.Fatal(err)
	}
	_, viol := reduced.CheckC1(Ex1T2)
	steps, err := NecessityContinuation(reduced, Ex1T2, viol, 100, 77)
	if err != nil {
		t.Fatal(err)
	}
	if err := reduced.deleteTxn(Ex1T2); err != nil {
		t.Fatal(err)
	}
	full := replay(t, all, Config{})

	fullLast := runContinuation(t, full, steps)
	redLast := runContinuation(t, reduced, steps)
	if fullLast || !redLast {
		t.Fatalf("divergence expected: full=%v reduced=%v", fullLast, redLast)
	}
	// The dance must have aborted T50 and T51 in both schedulers.
	for _, s := range []*Scheduler{full, reduced} {
		if s.Txn(50) != nil || s.Txn(51) != nil {
			t.Fatal("helper actives should have aborted")
		}
	}
	// And Tj (T1) must still be active in both.
	if full.Status(Ex1T1) != model.StatusActive {
		// T1 performed the final conflicting step; in the full scheduler
		// that step was rejected, aborting T1. That IS the divergence.
		if full.Txn(Ex1T1) != nil {
			t.Fatal("T1 should have aborted in the full scheduler")
		}
	}
}

// TestNecessityWriteCaseUsesRead covers the branch where Ti WROTE x, so
// the last step is a read by Tj.
func TestNecessityWriteCase(t *testing.T) {
	// T1 active reads nothing relevant... construct: T1 reads z; T2
	// reads z and writes x (completes). T2's violation: active tight pred
	// T1 via arc? T1 read z, T2 writes z? Let's make T2 write z so the
	// arc exists, and also write x with no witness.
	steps := []model.Step{
		model.Begin(1),
		model.Read(1, 10), // z
		model.Begin(2),
		model.WriteFinal(2, 10, 20), // writes z (arc T1->T2) and x=20
	}
	reduced := replay(t, steps, Config{})
	ok, viol := reduced.CheckC1(2)
	if ok {
		t.Fatal("T2 should violate C1 (no witnesses at all)")
	}
	// The witness entity may be z or x; force the x=20 write case by
	// constructing the violation manually if needed.
	if viol.X != 20 {
		viol = &C1Violation{Ti: 2, Tj: 1, X: 20, Strength: model.WriteAccess}
	}
	cont, err := NecessityContinuation(reduced, 2, viol, 100, 77)
	if err != nil {
		t.Fatal(err)
	}
	// Last step must be a READ by T1 of x (because T2 wrote x).
	last := cont[len(cont)-1]
	if last.Kind != model.KindRead || last.Txn != 1 || last.Entity != 20 {
		t.Fatalf("last step = %v, want T1:r(20)", last)
	}
	if err := reduced.deleteTxn(2); err != nil {
		t.Fatal(err)
	}
	full := replay(t, steps, Config{})
	if runContinuation(t, full, cont) {
		t.Fatal("full scheduler must reject")
	}
	if !runContinuation(t, reduced, cont) {
		t.Fatal("reduced scheduler must accept")
	}
}

func TestNecessityInputValidation(t *testing.T) {
	s := Example1Scheduler(Config{})
	if _, err := NecessityContinuation(s, Ex1T2, nil, 100, 77); err == nil {
		t.Fatal("nil violation must error")
	}
	v := &C1Violation{Ti: Ex1T2, Tj: Ex1T1, X: Ex1X, Strength: model.WriteAccess}
	if _, err := NecessityContinuation(s, Ex1T2, v, 100, Ex1X); err == nil {
		t.Fatal("y == x must error")
	}
	bad := &C1Violation{Ti: Ex1T2, Tj: Ex1T3, X: Ex1X, Strength: model.WriteAccess}
	if _, err := NecessityContinuation(s, Ex1T2, bad, 100, 77); err == nil {
		t.Fatal("non-active Tj must error")
	}
	if _, err := NecessityContinuation(s, Ex1T2, v, Ex1T1, 77); err == nil {
		t.Fatal("existing Tm must error")
	}
}
