package core

import (
	"testing"

	"repro/internal/model"
)

func apply(t *testing.T, s *Scheduler, st model.Step) Result {
	t.Helper()
	res, err := s.Apply(st)
	if err != nil {
		t.Fatalf("Apply(%v): %v", st, err)
	}
	return res
}

func TestRule1BeginAddsIsolatedNode(t *testing.T) {
	s := NewScheduler(Config{})
	res := apply(t, s, model.Begin(1))
	if !res.Accepted {
		t.Fatal("BEGIN must be accepted")
	}
	if !s.Graph().HasNode(1) || s.Graph().NumArcs() != 0 {
		t.Fatal("BEGIN must add an isolated node")
	}
	if s.Status(1) != model.StatusActive {
		t.Fatalf("status = %v", s.Status(1))
	}
}

func TestRule2ArcFromWriterToReader(t *testing.T) {
	s := NewScheduler(Config{})
	apply(t, s, model.Begin(1))
	apply(t, s, model.WriteFinal(1, 5)) // T1 writes entity 5, completes
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 5))
	if !s.Graph().HasArc(1, 2) {
		t.Fatal("Rule 2: writer -> reader arc missing")
	}
	if s.Graph().HasArc(2, 1) {
		t.Fatal("arc direction wrong")
	}
}

func TestRule2NoArcFromReaderToReader(t *testing.T) {
	s := NewScheduler(Config{})
	apply(t, s, model.Begin(1))
	apply(t, s, model.Read(1, 5))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 5))
	if s.Graph().NumArcs() != 0 {
		t.Fatal("two reads do not conflict")
	}
}

func TestRule3ArcsFromReadersAndWritersIntoWriter(t *testing.T) {
	s := NewScheduler(Config{})
	apply(t, s, model.Begin(1))
	apply(t, s, model.Read(1, 5)) // reader of 5
	apply(t, s, model.Begin(2))
	apply(t, s, model.WriteFinal(2, 5)) // writer of 5
	apply(t, s, model.Begin(3))
	res := apply(t, s, model.WriteFinal(3, 5))
	if !res.Accepted {
		t.Fatal("write should be accepted")
	}
	if !s.Graph().HasArc(1, 3) {
		t.Fatal("Rule 3: reader -> writer arc missing")
	}
	if !s.Graph().HasArc(2, 3) {
		t.Fatal("Rule 3: writer -> writer arc missing")
	}
}

func TestNoSelfArcs(t *testing.T) {
	s := NewScheduler(Config{})
	apply(t, s, model.Begin(1))
	apply(t, s, model.Read(1, 5))
	res := apply(t, s, model.WriteFinal(1, 5)) // writes what it read
	if !res.Accepted {
		t.Fatal("read-modify-write of one's own entity must be accepted")
	}
	if s.Graph().NumArcs() != 0 {
		t.Fatal("self-conflicts must not create arcs")
	}
	if s.Status(1) != model.StatusCompleted {
		t.Fatalf("status = %v", s.Status(1))
	}
}

func TestCycleRejectedAndTxnAborted(t *testing.T) {
	// T1 reads x. T2 reads y. T1 writes y (arc T2->T1). T2 writes x would
	// add arc T1->T2, closing a cycle: rejected, T2 aborts.
	s := NewScheduler(Config{})
	apply(t, s, model.Begin(1))
	apply(t, s, model.Read(1, 0)) // x
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 1))              // y
	apply(t, s, model.WriteFinal(1, 1))        // T1 writes y; arc T2->T1
	res := apply(t, s, model.WriteFinal(2, 0)) // T2 writes x; would arc T1->T2
	if res.Accepted {
		t.Fatal("cycle-creating step must be rejected")
	}
	if res.Aborted != 2 {
		t.Fatalf("aborted = T%d, want T2", res.Aborted)
	}
	if s.Graph().HasNode(2) {
		t.Fatal("aborted transaction must leave the graph")
	}
	if s.Txn(2) != nil {
		t.Fatal("aborted transaction record must be dropped")
	}
	st := s.Stats()
	if st.Rejected != 1 || st.Aborts != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAbortForgetsAccessInformation(t *testing.T) {
	// After T2 aborts, its reads/writes must not generate arcs for later
	// steps.
	s := NewScheduler(Config{})
	apply(t, s, model.Begin(1))
	apply(t, s, model.Read(1, 0))
	apply(t, s, model.Begin(2))
	apply(t, s, model.Read(2, 1))
	apply(t, s, model.Read(2, 7)) // T2 also reads entity 7
	apply(t, s, model.WriteFinal(1, 1))
	res := apply(t, s, model.WriteFinal(2, 0)) // T2 aborts
	if res.Accepted {
		t.Fatal("expected rejection")
	}
	// A new writer of entity 7 must get no arc from the dead T2.
	apply(t, s, model.Begin(3))
	apply(t, s, model.WriteFinal(3, 7))
	if got := s.Graph().PredList(3); len(got) != 0 {
		t.Fatalf("T3 has predecessors %v; aborted T2's reads must be forgotten", got)
	}
}

func TestEmptyWriteSetCompletes(t *testing.T) {
	s := NewScheduler(Config{})
	apply(t, s, model.Begin(1))
	apply(t, s, model.Read(1, 0))
	res := apply(t, s, model.WriteFinal(1)) // read-only commit
	if !res.Accepted || res.CompletedTxn != 1 {
		t.Fatalf("read-only completion failed: %+v", res)
	}
	if s.Status(1) != model.StatusCompleted {
		t.Fatalf("status = %v", s.Status(1))
	}
}

func TestProtocolErrors(t *testing.T) {
	s := NewScheduler(Config{})
	apply(t, s, model.Begin(1))
	if _, err := s.Apply(model.Begin(1)); err == nil {
		t.Fatal("duplicate BEGIN must error")
	}
	if _, err := s.Apply(model.Read(9, 0)); err == nil {
		t.Fatal("read for unknown txn must error")
	}
	apply(t, s, model.WriteFinal(1, 0))
	if _, err := s.Apply(model.Read(1, 0)); err == nil {
		t.Fatal("step after completion must error")
	}
	if _, err := s.Apply(model.Write(1, 0)); err == nil {
		t.Fatal("multiple-write step kind must error in the basic model")
	}
	if _, err := s.Apply(model.Finish(1)); err == nil {
		t.Fatal("finish step kind must error in the basic model")
	}
}

func TestMustApplyPanicsOnProtocolError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := NewScheduler(Config{})
	s.MustApply(model.Read(1, 0))
}

func TestAcceptedSchedulesStayAcyclic(t *testing.T) {
	s := Example1Scheduler(Config{})
	if !s.Graph().Acyclic() {
		t.Fatal("conflict graph must remain acyclic")
	}
}

func TestActiveAndCompletedListings(t *testing.T) {
	s := Example1Scheduler(Config{})
	if got := s.ActiveTxns(); len(got) != 1 || got[0] != Ex1T1 {
		t.Fatalf("ActiveTxns = %v", got)
	}
	if got := s.CompletedTxns(); len(got) != 2 || got[0] != Ex1T2 || got[1] != Ex1T3 {
		t.Fatalf("CompletedTxns = %v", got)
	}
	if s.NumActive() != 1 || s.NumCompleted() != 2 {
		t.Fatalf("counts: %d active, %d completed", s.NumActive(), s.NumCompleted())
	}
}

func TestStatsTracking(t *testing.T) {
	s := Example1Scheduler(Config{})
	st := s.Stats()
	if st.Begins != 3 || st.Reads != 3 || st.Writes != 2 || st.Completed != 2 {
		t.Fatalf("stats: %+v", st)
	}
	if st.PeakNodes != 3 {
		t.Fatalf("PeakNodes = %d, want 3", st.PeakNodes)
	}
	if st.Accepted != 8 {
		t.Fatalf("Accepted = %d, want 8", st.Accepted)
	}
	if st.AvgKept() <= 0 {
		t.Fatal("AvgKept should be positive after completions")
	}
}

func TestOnDeleteCallback(t *testing.T) {
	var deleted []model.TxnID
	s := NewScheduler(Config{
		Policy:   GreedyC1{},
		OnDelete: func(id model.TxnID) { deleted = append(deleted, id) },
	})
	for _, st := range Example1Steps() {
		apply(t, s, st)
	}
	if len(deleted) == 0 {
		t.Fatal("OnDelete never fired")
	}
}

func TestDeleteIfSafe(t *testing.T) {
	s := Example1Scheduler(Config{})
	if !s.DeleteIfSafe(Ex1T2) {
		t.Fatal("T2 satisfies C1 and should delete")
	}
	if s.DeleteIfSafe(Ex1T3) {
		t.Fatal("after deleting T2, T3 must not be deletable")
	}
	if s.DeleteIfSafe(Ex1T1) {
		t.Fatal("active transactions must never delete")
	}
}
