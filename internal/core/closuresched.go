// ClosureScheduler: the basic conflict-graph scheduler re-implemented on
// the transitive-closure engine, realizing the paper's implementation
// remark: "If the cycle-checking algorithm keeps track of the transitive
// closure of the graph (to facilitate testing whether a new arc can be
// inserted), then removing a transaction is equivalent to simply deleting
// the corresponding node and incident edges from the transitive closure."
//
// The closure answers every cycle test in O(|tails|) membership lookups
// (no DFS), and deletion from it is plain node removal — no
// predecessor×successor splicing. Condition C1, however, is defined over
// the reduced graph's ARC structure (tight paths through completed
// intermediates), which the closure deliberately forgets; so the
// scheduler also maintains the ordinary reduced graph as a shadow used
// only by the deletion sweep. Tests verify step-for-step equivalence with
// the DFS Scheduler under GreedyC1.
package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
)

// ClosureScheduler is the closure-backed basic-model scheduler. It
// supports the same step protocol as Scheduler and an optional greedy C1
// deletion sweep.
type ClosureScheduler struct {
	// c serves the scheduler's cycle tests.
	c *graph.Closure
	// shadow is the reduced conflict graph (arcs + splices), consulted
	// only by the C1 sweep.
	shadow  *graph.Graph
	txns    map[model.TxnID]*TxnState
	readers map[model.Entity]graph.NodeSet
	writers map[model.Entity]graph.NodeSet
	gc      bool
	stats   Stats
}

// NewClosureScheduler returns an empty closure-backed scheduler; gc
// enables the greedy C1 sweep after completions and aborts.
func NewClosureScheduler(gc bool) *ClosureScheduler {
	return &ClosureScheduler{
		c:       graph.NewClosure(),
		shadow:  graph.New(),
		txns:    make(map[model.TxnID]*TxnState),
		readers: make(map[model.Entity]graph.NodeSet),
		writers: make(map[model.Entity]graph.NodeSet),
		gc:      gc,
	}
}

// Stats returns a snapshot of the counters.
func (s *ClosureScheduler) Stats() Stats { return s.stats }

// Closure exposes the underlying closure graph (read-only).
func (s *ClosureScheduler) Closure() *graph.Closure { return s.c }

// Graph exposes the reduced-graph shadow (read-only).
func (s *ClosureScheduler) Graph() *graph.Graph { return s.shadow }

// Status mirrors Scheduler.Status.
func (s *ClosureScheduler) Status(id model.TxnID) model.Status {
	if t, ok := s.txns[id]; ok {
		return t.Status
	}
	return model.StatusAborted
}

// Access mirrors Scheduler.Access.
func (s *ClosureScheduler) Access(id model.TxnID) model.AccessSet {
	if t, ok := s.txns[id]; ok {
		return t.Access
	}
	return nil
}

// NumCompleted returns the retained completed-transaction count.
func (s *ClosureScheduler) NumCompleted() int {
	n := 0
	for _, t := range s.txns {
		if t.Status == model.StatusCompleted {
			n++
		}
	}
	return n
}

// Apply processes one basic-model step.
func (s *ClosureScheduler) Apply(step model.Step) (Result, error) {
	switch step.Kind {
	case model.KindBegin:
		if _, ok := s.txns[step.Txn]; ok {
			return Result{}, fmt.Errorf("core: duplicate BEGIN for T%d", step.Txn)
		}
		s.c.AddNode(step.Txn)
		s.shadow.AddNode(step.Txn)
		s.txns[step.Txn] = &TxnState{ID: step.Txn, Status: model.StatusActive, Access: make(model.AccessSet)}
		s.stats.Begins++
		s.stats.Accepted++
		return Result{Step: step, Accepted: true, Aborted: model.NoTxn, CompletedTxn: model.NoTxn}, nil
	case model.KindRead:
		t, err := s.activeTxn(step.Txn)
		if err != nil {
			return Result{}, err
		}
		tails := make(graph.NodeSet)
		for w := range s.writers[step.Entity] {
			if w != t.ID {
				tails.Add(w)
			}
		}
		// The closure decides acceptance in O(|tails|).
		if s.c.WouldCycleInto(t.ID, tails) {
			return s.reject(step, t), nil
		}
		for w := range tails {
			s.c.AddArc(w, t.ID)
			s.shadow.AddArc(w, t.ID)
		}
		s.note(t, step.Entity, model.ReadAccess)
		s.stats.Reads++
		s.stats.Accepted++
		return Result{Step: step, Accepted: true, Aborted: model.NoTxn, CompletedTxn: model.NoTxn}, nil
	case model.KindWriteFinal:
		t, err := s.activeTxn(step.Txn)
		if err != nil {
			return Result{}, err
		}
		tails := make(graph.NodeSet)
		for _, x := range step.Entities {
			for r := range s.readers[x] {
				if r != t.ID {
					tails.Add(r)
				}
			}
			for w := range s.writers[x] {
				if w != t.ID {
					tails.Add(w)
				}
			}
		}
		if s.c.WouldCycleInto(t.ID, tails) {
			return s.reject(step, t), nil
		}
		for u := range tails {
			s.c.AddArc(u, t.ID)
			s.shadow.AddArc(u, t.ID)
		}
		for _, x := range step.Entities {
			s.note(t, x, model.WriteAccess)
		}
		t.Status = model.StatusCompleted
		s.stats.Writes++
		s.stats.Accepted++
		s.stats.Completed++
		res := Result{Step: step, Accepted: true, Aborted: model.NoTxn, CompletedTxn: t.ID}
		s.sweep(&res)
		return res, nil
	default:
		return Result{}, fmt.Errorf("core: step kind %v not part of the basic model", step.Kind)
	}
}

func (s *ClosureScheduler) activeTxn(id model.TxnID) (*TxnState, error) {
	t, ok := s.txns[id]
	if !ok {
		return nil, fmt.Errorf("core: step for unknown transaction T%d", id)
	}
	if t.Status != model.StatusActive {
		return nil, fmt.Errorf("core: step for %v transaction T%d", t.Status, id)
	}
	return t, nil
}

func (s *ClosureScheduler) note(t *TxnState, x model.Entity, a model.Access) {
	t.Access.Note(x, a)
	idx := s.readers
	if a == model.WriteAccess {
		idx = s.writers
	}
	set, ok := idx[x]
	if !ok {
		set = make(graph.NodeSet)
		idx[x] = set
	}
	set.Add(t.ID)
}

func (s *ClosureScheduler) reject(step model.Step, t *TxnState) Result {
	s.forget(t.ID)
	s.c.DeleteNode(t.ID)      // aborts drop reachability through the node...
	s.shadow.RemoveNode(t.ID) // ...in both structures
	delete(s.txns, t.ID)
	s.stats.Rejected++
	s.stats.Aborts++
	res := Result{Step: step, Accepted: false, Aborted: t.ID, CompletedTxn: model.NoTxn}
	s.sweep(&res)
	return res
}

func (s *ClosureScheduler) forget(id model.TxnID) {
	t := s.txns[id]
	if t == nil {
		return
	}
	for x, a := range t.Access {
		delete(s.readers[x], id)
		if len(s.readers[x]) == 0 {
			delete(s.readers, x)
		}
		if a == model.WriteAccess {
			delete(s.writers[x], id)
			if len(s.writers[x]) == 0 {
				delete(s.writers, x)
			}
		}
	}
}

// CheckC1 evaluates condition C1 on the reduced-graph shadow.
func (s *ClosureScheduler) CheckC1(ti model.TxnID) bool {
	ok, _ := CheckC1(s, s.shadow, ti)
	return ok
}

// sweep greedily deletes C1-satisfying completed transactions (if gc).
// Deletion is the paper's remark in action: the closure just drops the
// node (reachability through it is already recorded); only the shadow
// performs the splice.
func (s *ClosureScheduler) sweep(res *Result) {
	if !s.gc {
		return
	}
	for {
		// Scan candidates in ascending ID order, matching GreedyC1 on the
		// DFS scheduler: greedy deletion is order-sensitive, so a random
		// map order would (rarely) retain a different set.
		var ids []model.TxnID
		for id, t := range s.txns {
			if t.Status == model.StatusCompleted {
				ids = append(ids, id)
			}
		}
		sortTxns(ids)
		progress := false
		for _, id := range ids {
			if s.CheckC1(id) {
				s.forget(id)
				s.c.DeleteNode(id)
				s.shadow.Reduce(id)
				delete(s.txns, id)
				s.stats.Deleted++
				res.Deleted = append(res.Deleted, id)
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}
