package core

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// TestClosureSchedulerExample1 replays Example 1 and expects the same
// behaviour as the DFS scheduler with GreedyC1: one of T2/T3 retained.
func TestClosureSchedulerExample1(t *testing.T) {
	s := NewClosureScheduler(true)
	for _, st := range Example1Steps() {
		res, err := s.Apply(st)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Accepted {
			t.Fatalf("step %v rejected", st)
		}
	}
	if got := s.NumCompleted(); got != 1 {
		t.Fatalf("retained = %d, want 1", got)
	}
	// Deletion was plain node removal on the closure: the active T1 must
	// still reach the surviving completed transaction.
	survivor := model.NoTxn
	for _, id := range []model.TxnID{Ex1T2, Ex1T3} {
		if s.Status(id) == model.StatusCompleted {
			survivor = id
		}
	}
	if survivor == model.NoTxn {
		t.Fatal("no survivor")
	}
	if !s.Closure().Reaches(Ex1T1, survivor) {
		t.Fatal("closure lost reachability after deletion")
	}
}

// TestClosureSchedulerLockstep runs random streams through the DFS
// scheduler and the closure scheduler (both with GreedyC1) and demands
// identical decisions, abort sets, and retention counts.
func TestClosureSchedulerLockstep(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		dfs := NewScheduler(Config{Policy: GreedyC1{}})
		clo := NewClosureScheduler(true)
		type plan struct {
			id    model.TxnID
			reads []model.Entity
			write []model.Entity
		}
		var active []*plan
		next := model.TxnID(1)
		issued := 0
		deadDFS := map[model.TxnID]bool{}
		for issued < 30 || len(active) > 0 {
			var st model.Step
			var finished *plan
			if issued < 30 && (len(active) == 0 || (len(active) < 5 && rng.Intn(3) == 0)) {
				p := &plan{id: next}
				next++
				issued++
				for i := 0; i < 1+rng.Intn(3); i++ {
					p.reads = append(p.reads, model.Entity(rng.Intn(5)))
				}
				if rng.Intn(4) > 0 {
					p.write = append(p.write, model.Entity(rng.Intn(5)))
				}
				active = append(active, p)
				st = model.Begin(p.id)
			} else {
				i := rng.Intn(len(active))
				p := active[i]
				if len(p.reads) > 0 {
					st = model.Read(p.id, p.reads[0])
					p.reads = p.reads[1:]
				} else {
					st = model.WriteFinal(p.id, p.write...)
					finished = p
				}
			}
			r1, err1 := dfs.Apply(st)
			r2, err2 := clo.Apply(st)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("seed %d: protocol error mismatch at %v: %v vs %v", seed, st, err1, err2)
			}
			if err1 != nil {
				t.Fatalf("seed %d: %v", seed, err1)
			}
			if r1.Accepted != r2.Accepted {
				t.Fatalf("seed %d: decision mismatch at %v: dfs=%v closure=%v", seed, st, r1.Accepted, r2.Accepted)
			}
			if !r1.Accepted {
				deadDFS[st.Txn] = true
			}
			if !r1.Accepted || finished != nil {
				// Remove the plan (aborted or completed).
				for j, q := range active {
					if q.id == st.Txn {
						active = append(active[:j], active[j+1:]...)
						break
					}
				}
			}
			if dfs.NumCompleted() != clo.NumCompleted() {
				t.Fatalf("seed %d: retention mismatch after %v: dfs=%d closure=%d",
					seed, st, dfs.NumCompleted(), clo.NumCompleted())
			}
		}
		s1, s2 := dfs.Stats(), clo.Stats()
		if s1.Aborts != s2.Aborts || s1.Completed != s2.Completed || s1.Deleted != s2.Deleted {
			t.Fatalf("seed %d: stats mismatch: dfs=%+v closure=%+v", seed, s1, s2)
		}
	}
}

func TestClosureSchedulerProtocolErrors(t *testing.T) {
	s := NewClosureScheduler(false)
	if _, err := s.Apply(model.Begin(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Apply(model.Begin(1)); err == nil {
		t.Fatal("duplicate BEGIN")
	}
	if _, err := s.Apply(model.Read(9, 0)); err == nil {
		t.Fatal("unknown txn")
	}
	if _, err := s.Apply(model.Write(1, 0)); err == nil {
		t.Fatal("multiwrite kind")
	}
	if _, err := s.Apply(model.WriteFinal(1)); err != nil {
		t.Fatal("read-only completion")
	}
	if _, err := s.Apply(model.Read(1, 0)); err == nil {
		t.Fatal("step after completion")
	}
}

func TestClosureSchedulerNoGCKeepsAll(t *testing.T) {
	s := NewClosureScheduler(false)
	for _, st := range Example1Steps() {
		if _, err := s.Apply(st); err != nil {
			t.Fatal(err)
		}
	}
	if s.NumCompleted() != 2 {
		t.Fatalf("retained = %d, want 2", s.NumCompleted())
	}
	if s.Access(Ex1T2).Get(Ex1X) != model.WriteAccess {
		t.Fatal("access records")
	}
	if s.Graph().NumArcs() != 3 {
		t.Fatalf("shadow arcs = %d, want 3", s.Graph().NumArcs())
	}
}
