package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
)

func TestMaxSafeSetExample1(t *testing.T) {
	s := Example1Scheduler(Config{})
	best := MaxSafeSet(s, s.Graph(), s.CompletedTxns(), 0)
	if len(best) != 1 {
		t.Fatalf("max safe set size = %d, want 1 (got %v)", len(best), best.Sorted())
	}
	if ok, v := s.CheckC2(best); !ok {
		t.Fatalf("returned set not C2-safe: %v", v)
	}
}

func TestMaxSafeSetEmptyWhenNothingDeletable(t *testing.T) {
	s := Example1Scheduler(Config{})
	// Delete T3 manually; T2 alone remains and violates C1.
	if err := s.deleteTxn(Ex1T3); err != nil {
		t.Fatal(err)
	}
	best := MaxSafeSet(s, s.Graph(), s.CompletedTxns(), 0)
	if len(best) != 0 {
		t.Fatalf("nothing is deletable, got %v", best.Sorted())
	}
}

// chainScheduler builds: T1 active reads x; then k transactions each
// read+write x serially. Max safe set = k-1 (must keep the last writer...
// precisely: must keep at least one witness; any k-1 of them delete).
func chainScheduler(t *testing.T, k int) *Scheduler {
	t.Helper()
	s := NewScheduler(Config{})
	s.MustApply(model.Begin(1))
	s.MustApply(model.Read(1, 0))
	for i := 0; i < k; i++ {
		id := model.TxnID(2 + i)
		s.MustApply(model.Begin(id))
		s.MustApply(model.Read(id, 0))
		s.MustApply(model.WriteFinal(id, 0))
	}
	return s
}

func TestMaxSafeSetChain(t *testing.T) {
	for _, k := range []int{1, 2, 3, 5, 8} {
		s := chainScheduler(t, k)
		best := MaxSafeSet(s, s.Graph(), s.CompletedTxns(), 0)
		want := k - 1
		if want < 0 {
			want = 0
		}
		if len(best) != want {
			t.Fatalf("k=%d: max safe = %d, want %d", k, len(best), want)
		}
	}
}

// bruteMaxSafe enumerates all subsets of completed transactions and
// returns the size of the largest C2-safe one. Exponential; small inputs
// only.
func bruteMaxSafe(v StateView, g *graph.Graph, completed []model.TxnID) int {
	best := 0
	n := len(completed)
	for mask := 1; mask < (1 << n); mask++ {
		set := make(graph.NodeSet)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set.Add(completed[i])
			}
		}
		if len(set) <= best {
			continue
		}
		if ok, _ := CheckC2(v, g, set); ok {
			best = len(set)
		}
	}
	return best
}

// randomScheduler drives a small random basic-model workload directly
// (no generator dependency, to avoid an import cycle) and returns the
// scheduler mid-flight.
func randomScheduler(seed int64, txns, entities int) *Scheduler {
	rng := rand.New(rand.NewSource(seed))
	s := NewScheduler(Config{})
	type plan struct {
		id    model.TxnID
		reads []model.Entity
		write []model.Entity
	}
	var active []*plan
	next := model.TxnID(1)
	issued := 0
	for issued < txns || len(active) > 0 {
		if issued < txns && (len(active) == 0 || (len(active) < 4 && rng.Intn(3) == 0)) {
			p := &plan{id: next}
			next++
			issued++
			for i := 0; i < 1+rng.Intn(3); i++ {
				p.reads = append(p.reads, model.Entity(rng.Intn(entities)))
			}
			if rng.Intn(4) > 0 {
				p.write = append(p.write, model.Entity(rng.Intn(entities)))
			}
			s.MustApply(model.Begin(p.id))
			active = append(active, p)
			continue
		}
		i := rng.Intn(len(active))
		p := active[i]
		var res Result
		if len(p.reads) > 0 {
			res = s.MustApply(model.Read(p.id, p.reads[0]))
			p.reads = p.reads[1:]
		} else {
			res = s.MustApply(model.WriteFinal(p.id, p.write...))
			p.reads = nil
			p.write = nil
			active = append(active[:i], active[i+1:]...)
		}
		if !res.Accepted {
			// aborted: drop it
			for j, q := range active {
				if q.id == p.id {
					active = append(active[:j], active[j+1:]...)
					break
				}
			}
		}
	}
	return s
}

func TestMaxSafeSetMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		s := randomScheduler(seed, 7, 4)
		completed := s.CompletedTxns()
		if len(completed) > 12 {
			continue
		}
		want := bruteMaxSafe(s, s.Graph(), completed)
		got := MaxSafeSet(s, s.Graph(), completed, 0)
		if len(got) != want {
			t.Fatalf("seed %d: MaxSafeSet = %d, brute force = %d (completed %v)",
				seed, len(got), want, completed)
		}
		if ok, v := CheckC2(s, s.Graph(), got); !ok {
			t.Fatalf("seed %d: returned set unsafe: %v", seed, v)
		}
	}
}

func TestMaxSafeSetMidScheduleWithActives(t *testing.T) {
	// Keep some transactions active: take random prefixes.
	for seed := int64(100); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler(Config{})
		// Three active readers over 3 entities, five completed writers.
		for id := model.TxnID(1); id <= 3; id++ {
			s.MustApply(model.Begin(id))
			s.MustApply(model.Read(id, model.Entity(rng.Intn(3))))
		}
		for id := model.TxnID(4); id <= 8; id++ {
			s.MustApply(model.Begin(id))
			s.MustApply(model.Read(id, model.Entity(rng.Intn(3))))
			s.MustApply(model.WriteFinal(id, model.Entity(rng.Intn(3))))
		}
		completed := s.CompletedTxns()
		want := bruteMaxSafe(s, s.Graph(), completed)
		got := MaxSafeSet(s, s.Graph(), completed, 0)
		if len(got) != want {
			t.Fatalf("seed %d: MaxSafeSet = %d, brute = %d", seed, len(got), want)
		}
	}
}

func TestMaxSafeAtLeastGreedy(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		s := randomScheduler(seed, 10, 5)
		completed := s.CompletedTxns()
		got := MaxSafeSet(s, s.Graph(), completed, 0)
		// Build the greedy-by-inclusion set under direct C2 checks.
		greedy := make(graph.NodeSet)
		for _, c := range C1Candidates(s, s.Graph(), completed) {
			greedy.Add(c)
			if ok, _ := CheckC2(s, s.Graph(), greedy); !ok {
				delete(greedy, c)
			}
		}
		if len(got) < len(greedy) {
			t.Fatalf("seed %d: exact %d < greedy %d", seed, len(got), len(greedy))
		}
	}
}

func TestMaxSafeTinyBudgetStillSafe(t *testing.T) {
	s := chainScheduler(t, 6)
	got := MaxSafeSet(s, s.Graph(), s.CompletedTxns(), 1) // absurdly small budget
	if ok, _ := s.CheckC2(got); !ok {
		t.Fatal("budget-limited result must still be safe")
	}
}
