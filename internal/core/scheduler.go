// Package core implements the paper's primary contribution: the basic
// conflict-graph scheduler of Section 2 (Rules 1–3, preventive variant and
// the optimistic certification variant), the deletion conditions of
// Sections 3–4 (Lemma 1, Theorem 1's C1, Theorem 4's C2, Corollary 1's
// noncurrent rule), deletion policies built on them, the NP-complete
// maximum-safe-subset solver of Theorem 5, and the adversarial continuation
// of Theorem 1's necessity proof.
//
// Model recap (paper Section 2): a transaction BEGINs, performs read steps,
// and ends with one final atomic write step that installs its whole write
// set and completes (and commits) it. The scheduler maintains a conflict
// graph; a step that would create a cycle is rejected and its transaction
// aborts. Deleting a completed transaction replaces its node by
// predecessor×successor arcs and forgets its read/write sets.
package core

import (
	"fmt"
	"slices"

	"repro/internal/emit"
	"repro/internal/graph"
	"repro/internal/model"
)

// Stats accumulates scheduler counters for the experiment harness.
type Stats struct {
	Begins     int64
	Reads      int64
	Writes     int64 // final write steps accepted
	Accepted   int64 // accepted steps of any kind
	Rejected   int64 // rejected steps (each aborts its transaction)
	Aborts     int64
	Completed  int64
	Deleted    int64 // nodes removed by the deletion policy
	Sweeps     int64 // policy sweeps executed
	PeakNodes  int
	PeakArcs   int
	PeakKept   int   // peak number of completed transactions retained
	KeptSum    int64 // sum over steps of retained completed transactions
	KeptSample int64 // number of samples in KeptSum
}

// AvgKept returns the average number of completed transactions retained in
// the graph per accepted step.
func (s *Stats) AvgKept() float64 {
	if s.KeptSample == 0 {
		return 0
	}
	return float64(s.KeptSum) / float64(s.KeptSample)
}

// Merge adds o's counters into s. The Peak* fields add too, which makes a
// merged snapshot report an upper bound on the true global peak (per-shard
// peaks need not be simultaneous); exact global peaks would require a
// synchronized clock across shards.
func (s *Stats) Merge(o Stats) {
	s.Begins += o.Begins
	s.Reads += o.Reads
	s.Writes += o.Writes
	s.Accepted += o.Accepted
	s.Rejected += o.Rejected
	s.Aborts += o.Aborts
	s.Completed += o.Completed
	s.Deleted += o.Deleted
	s.Sweeps += o.Sweeps
	s.PeakNodes += o.PeakNodes
	s.PeakArcs += o.PeakArcs
	s.PeakKept += o.PeakKept
	s.KeptSum += o.KeptSum
	s.KeptSample += o.KeptSample
}

// TxnState is the scheduler's record of one transaction. Deleting the
// transaction erases this record: that is the storage the paper's
// conditions let us reclaim. Records are pooled: once a transaction is
// deleted or aborted its TxnState (and maps) are recycled for a future
// BEGIN, so steady-state churn allocates nothing.
type TxnState struct {
	ID     model.TxnID
	Status model.Status
	Access model.AccessSet
	// accessSeq tracks, per entity, the sequence number of the latest
	// access; together with Scheduler.lastWriteSeq it decides currency
	// (Corollary 1).
	accessSeq map[model.Entity]int64
	BeginSeq  int64
	EndSeq    int64
	// ref is the transaction's slot in the graph arena, valid while the
	// node is present (active or retained completed).
	ref graph.Ref
	// isCross marks a sub-transaction of a logical cross-shard transaction
	// (see subtxn.go); prepared marks it voted-yes-but-undecided.
	isCross  bool
	prepared bool
}

// Config configures a Scheduler.
type Config struct {
	// Policy is the deletion policy; nil means never delete (NoGC).
	Policy Policy
	// SweepEveryStep forces a policy sweep after every accepted step. By
	// default the scheduler sweeps only after completions and aborts,
	// which is sufficient: in the basic model, BEGIN adds an isolated node
	// and an accepted read only adds arcs whose head is the active reader,
	// so neither can create a new active-tight-predecessor relationship or
	// a new completed witness, hence cannot change any C1 verdict.
	SweepEveryStep bool
	// SweepManual disables the automatic post-step sweeps entirely: the
	// policy runs only when the owner calls SweepNow. Engines use this to
	// amortize GC off the hot path (sweeping between batches instead of
	// after every completion). Safe for any correct policy: C1/C2 are
	// evaluated on the graph as it stands whenever the sweep runs.
	SweepManual bool
	// OnDelete, if non-nil, is invoked for every node the policy deletes.
	OnDelete func(model.TxnID)
	// MaxSafeBudget bounds the branch-and-bound search of MaxSafeExact
	// (nodes explored); 0 means DefaultMaxSafeBudget.
	MaxSafeBudget int
	// Cross, if non-nil, enables sub-transactions on this scheduler and
	// names the engine's cross-arc registry (see subtxn.go). Purely local
	// schedulers leave it nil and pay nothing.
	Cross CrossTracker
	// Emitter, if non-nil, receives a lifecycle event for every begin,
	// accepted step, veto, completion, abort, prepare vote, and sweep. The
	// emitter must never block (see internal/emit); a nil emitter costs one
	// predictable branch per step.
	Emitter emit.Emitter
}

// Result reports the effect of one step.
type Result struct {
	Step     model.Step
	Accepted bool
	// Aborted is the transaction aborted by a rejected step (NoTxn
	// otherwise).
	Aborted model.TxnID
	// CompletedTxn is set when the step completed its transaction.
	CompletedTxn model.TxnID
	// Deleted lists nodes removed by the policy during the post-step sweep.
	Deleted []model.TxnID
	// CrossVeto marks a rejection caused by the cross-arc registry (the
	// step would have closed a cycle spanning shard graphs) rather than a
	// cycle in this shard's own graph. Engines map the two onto distinct
	// typed errors.
	CrossVeto bool
}

// Scheduler is the paper's basic (preventive) conflict-graph scheduler.
type Scheduler struct {
	g    *graph.Graph
	txns map[model.TxnID]*TxnState
	// readers[x] and writers[x] index the transactions currently in the
	// graph that have read/written x — the information Rules 2 and 3
	// consult. Deleting a transaction removes it from these indexes: its
	// access sets are forgotten. The indexes hold arena slots (graph.Ref),
	// not IDs, so the per-step cycle test never touches the id→slot map;
	// empty entries keep their capacity for the next occupant.
	readers map[model.Entity][]graph.Ref
	writers map[model.Entity][]graph.Ref
	// lastWriteSeq and lastWriter track the schedule-level current value
	// per entity (for Corollary 1's noncurrent rule); lastWriter may name
	// a deleted transaction, which is precisely what makes the naive
	// noncurrent rule non-compositional.
	lastWriteSeq map[model.Entity]int64
	lastWriter   map[model.Entity]model.TxnID
	seq          int64
	cfg          Config
	stats        Stats
	// numCompleted and numActive are maintained incrementally so the
	// per-step bookkeeping in afterStep never scans txns.
	numCompleted int
	numActive    int
	// statePool recycles TxnState records (with their maps) across
	// delete/abort → begin.
	statePool []*TxnState
	// idxFree recycles the backing arrays of emptied readers/writers
	// entries: forget deletes an entry whose last occupant leaves (the
	// paper's storage-reclamation point applied to the entity indexes),
	// and without this list every re-touch of such an entity would
	// allocate a fresh one-element slice. Bounded; see forget.
	idxFree [][]graph.Ref
	// compScratch backs Sweep.Completed's candidate list, so the policy
	// sweep loop (which rebuilds the list every deletion round) allocates
	// nothing in steady state. manualSweep and its deleted buffer are the
	// reused Sweep handle of SweepNow for the same reason.
	compScratch []model.TxnID
	manualSweep Sweep
	// autoSweep is the same reuse for the per-step policy sweep in
	// afterStep: one Sweep handle (and deleted buffer) per scheduler, not
	// one heap allocation per completion. Result.Deleted aliases its
	// buffer until the next sweep, matching SweepNow's contract.
	autoSweep Sweep

	// Cross-shard bookkeeping (subtxn.go), all indexed by arena slot.
	// crossID names the logical cross transaction occupying a slot as a
	// sub-transaction (NoTxn otherwise); labels holds each slot's
	// cross-ancestor label set. numCross and numLabeled gate the hot path:
	// both zero means no label work can be needed.
	crossID    []model.TxnID
	labels     [][]model.TxnID
	numCross   int
	numLabeled int
	// inLabels and crossStack are propagation scratch.
	inLabels   []model.TxnID
	crossStack []graph.Ref
}

// NewScheduler returns an empty scheduler with the given configuration.
func NewScheduler(cfg Config) *Scheduler {
	return &Scheduler{
		g:            graph.New(),
		txns:         make(map[model.TxnID]*TxnState),
		readers:      make(map[model.Entity][]graph.Ref),
		writers:      make(map[model.Entity][]graph.Ref),
		lastWriteSeq: make(map[model.Entity]int64),
		lastWriter:   make(map[model.Entity]model.TxnID),
		cfg:          cfg,
	}
}

// Graph exposes the current (reduced) conflict graph. Callers must treat
// it as read-only.
func (s *Scheduler) Graph() *graph.Graph { return s.g }

// Stats returns a snapshot of the counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Seq returns the number of steps processed so far.
func (s *Scheduler) Seq() int64 { return s.seq }

// Txn returns the live record for id, or nil if the transaction is
// unknown, aborted, or deleted.
func (s *Scheduler) Txn(id model.TxnID) *TxnState { return s.txns[id] }

// Status implements StateView.
func (s *Scheduler) Status(id model.TxnID) model.Status {
	if t, ok := s.txns[id]; ok {
		return t.Status
	}
	return model.StatusAborted
}

// Access implements StateView.
func (s *Scheduler) Access(id model.TxnID) model.AccessSet {
	if t, ok := s.txns[id]; ok {
		return t.Access
	}
	return nil
}

// ActiveTxns returns the IDs of active transactions, ascending.
func (s *Scheduler) ActiveTxns() []model.TxnID {
	var out []model.TxnID
	for id, t := range s.txns {
		if t.Status == model.StatusActive {
			out = append(out, id)
		}
	}
	slices.Sort(out)
	return out
}

// CompletedTxns returns the IDs of retained completed transactions,
// ascending. The slice is freshly allocated; the policy sweep path uses
// completedAppend with a scratch buffer instead.
func (s *Scheduler) CompletedTxns() []model.TxnID {
	return s.completedAppend(nil)
}

// completedAppend appends the retained completed transaction IDs to dst,
// ascending.
func (s *Scheduler) completedAppend(dst []model.TxnID) []model.TxnID {
	mark := len(dst)
	for id, t := range s.txns {
		if t.Status == model.StatusCompleted {
			dst = append(dst, id)
		}
	}
	slices.Sort(dst[mark:])
	return dst
}

// NumCompleted returns the number of retained completed transactions.
// The count is maintained incrementally, so this is O(1).
func (s *Scheduler) NumCompleted() int { return s.numCompleted }

// ActiveInfo names one active transaction for the retention governor's
// straggler selection: its ID, its BeginSeq incarnation, and its age in
// scheduler steps (Seq - BeginSeq) — the schedule-time measure of how long
// the transaction has been holding arcs open.
type ActiveInfo struct {
	ID       model.TxnID
	BeginSeq int64
	Age      int64
}

// OldestActives returns up to k active transactions ordered oldest-first by
// BeginSeq. Prepared sub-transactions are excluded: a YES vote pins the
// node until the coordinator decides, so aborting one out from under 2PC is
// never the governor's call. The scan is O(numActive) with an insertion
// pass bounded by k; the governor calls this off the per-step path, only
// when the retention watermark is crossed.
func (s *Scheduler) OldestActives(k int) []ActiveInfo {
	if k <= 0 || s.numActive == 0 {
		return nil
	}
	out := make([]ActiveInfo, 0, k)
	for id, t := range s.txns {
		if t.Status != model.StatusActive || t.prepared {
			continue
		}
		info := ActiveInfo{ID: id, BeginSeq: t.BeginSeq, Age: s.seq - t.BeginSeq}
		if len(out) < k {
			out = append(out, info)
		} else if info.BeginSeq < out[len(out)-1].BeginSeq {
			out[len(out)-1] = info
		} else {
			continue
		}
		for i := len(out) - 1; i > 0 && out[i].BeginSeq < out[i-1].BeginSeq; i-- {
			out[i], out[i-1] = out[i-1], out[i]
		}
	}
	return out
}

// NumActive returns the number of active transactions, O(1).
func (s *Scheduler) NumActive() int { return s.numActive }

// Apply processes one step, returning its Result. A protocol violation
// (unknown transaction, duplicate BEGIN, step after completion, a
// multiple-write-model step kind) yields an error and leaves the state
// unchanged.
//
//txgc:hotpath
func (s *Scheduler) Apply(step model.Step) (Result, error) {
	switch step.Kind {
	case model.KindBegin:
		return s.begin(step)
	case model.KindRead:
		return s.read(step)
	case model.KindWriteFinal:
		return s.writeFinal(step)
	default:
		//lint:ignore hotpath-fmt protocol-violation path: a malformed step already left the hot path, and the error text is the API
		return Result{}, fmt.Errorf("core: step kind %v not part of the basic model", step.Kind)
	}
}

// MustApply is Apply that panics on protocol errors; for tests and
// hand-built schedules.
func (s *Scheduler) MustApply(step model.Step) Result {
	res, err := s.Apply(step)
	if err != nil {
		panic(err)
	}
	return res
}

func (s *Scheduler) begin(step model.Step) (Result, error) {
	id := step.Txn
	if _, ok := s.txns[id]; ok {
		//lint:ignore hotpath-fmt protocol-violation path: duplicate BEGIN is a client bug, not steady state
		return Result{}, fmt.Errorf("core: duplicate BEGIN for T%d", id)
	}
	s.seq++
	// Rule 1: add an isolated node. A fresh node can never create a cycle.
	s.txns[id] = s.acquireState(id, s.g.AddNodeRef(id))
	s.numActive++
	s.stats.Begins++
	s.stats.Accepted++
	s.emit(emit.KindBegin, emit.ClassOK, id, s.seq, 0)
	res := Result{Step: step, Accepted: true, Aborted: model.NoTxn, CompletedTxn: model.NoTxn}
	s.afterStep(&res, false)
	return res, nil
}

func (s *Scheduler) read(step model.Step) (Result, error) {
	t, err := s.activeTxn(step.Txn)
	if err != nil {
		return Result{}, err
	}
	s.seq++
	x := step.Entity
	// Rule 2: arcs from every node that has written x into the reader.
	g := s.g
	g.ResetTargets()
	for _, w := range s.writers[x] {
		if w != t.ref {
			g.MarkTarget(w)
		}
	}
	// A cycle appears iff the reader already reaches one of the tails.
	if g.ReachesAnyTarget(t.ref) {
		return s.reject(step, t, false), nil
	}
	// Cross-shard cycle test: labels arriving at a sub-node are inter-shard
	// arcs; a registry veto rejects the read like a local cycle.
	if !s.crossCollect(t) {
		return s.reject(step, t, true), nil
	}
	g.LinkTargetsTo(t.ref)
	s.noteAccess(t, x, model.ReadAccess)
	if !s.crossFlood(t) {
		return s.reject(step, t, true), nil
	}
	s.stats.Reads++
	s.stats.Accepted++
	s.emit(emit.KindAccept, emit.ClassOK, t.ID, t.BeginSeq, 0)
	res := Result{Step: step, Accepted: true, Aborted: model.NoTxn, CompletedTxn: model.NoTxn}
	s.afterStep(&res, false)
	return res, nil
}

func (s *Scheduler) writeFinal(step model.Step) (Result, error) {
	t, err := s.activeTxn(step.Txn)
	if err != nil {
		return Result{}, err
	}
	s.seq++
	// Rule 3: for every written entity, arcs from every prior reader or
	// writer of it into the writer.
	g := s.g
	g.ResetTargets()
	for _, x := range step.Entities {
		for _, r := range s.readers[x] {
			if r != t.ref {
				g.MarkTarget(r)
			}
		}
		for _, w := range s.writers[x] {
			if w != t.ref {
				g.MarkTarget(w)
			}
		}
	}
	if g.ReachesAnyTarget(t.ref) {
		return s.reject(step, t, false), nil
	}
	if !s.crossCollect(t) {
		return s.reject(step, t, true), nil
	}
	g.LinkTargetsTo(t.ref)
	if !s.crossFlood(t) {
		// The write's new arcs pushed a label into a cross sub-node and the
		// registry vetoed: the step would close a cycle spanning shard
		// graphs. Reject it before any access bookkeeping lands — in
		// particular lastWriteSeq/lastWriter must never name a write that
		// failed, or Corollary 1's noncurrency test would see a phantom
		// overwrite.
		return s.reject(step, t, true), nil
	}
	for _, x := range step.Entities {
		s.noteAccess(t, x, model.WriteAccess)
		s.lastWriteSeq[x] = s.seq
		s.lastWriter[x] = t.ID
	}
	t.Status = model.StatusCompleted
	t.EndSeq = s.seq
	s.numActive--
	s.numCompleted++
	s.stats.Writes++
	s.stats.Accepted++
	s.stats.Completed++
	s.emit(emit.KindCommit, emit.ClassOK, t.ID, t.BeginSeq, 0)
	res := Result{Step: step, Accepted: true, Aborted: model.NoTxn, CompletedTxn: t.ID}
	s.afterStep(&res, true)
	return res, nil
}

func (s *Scheduler) activeTxn(id model.TxnID) (*TxnState, error) {
	t, ok := s.txns[id]
	if !ok {
		//lint:ignore hotpath-fmt protocol-violation path: every accepted step takes the ok branch
		return nil, fmt.Errorf("core: step for unknown transaction T%d (no BEGIN, aborted, or deleted)", id)
	}
	if t.Status != model.StatusActive {
		//lint:ignore hotpath-fmt protocol-violation path, as above
		return nil, fmt.Errorf("core: step for %v transaction T%d", t.Status, id)
	}
	if t.prepared {
		//lint:ignore hotpath-fmt protocol-violation path, as above
		return nil, fmt.Errorf("core: step for prepared transaction T%d", id)
	}
	return t, nil
}

// acquireState returns a fresh-or-recycled TxnState for a BEGIN at the
// current sequence number.
func (s *Scheduler) acquireState(id model.TxnID, ref graph.Ref) *TxnState {
	var t *TxnState
	if n := len(s.statePool); n > 0 {
		t = s.statePool[n-1]
		s.statePool = s.statePool[:n-1]
	} else {
		//lint:ignore hotpath-alloc pool miss only: in steady state delete/abort→begin recycles through statePool, so this branch runs O(peak concurrent txns) times, not O(steps)
		t = &TxnState{
			Access:    make(model.AccessSet),
			accessSeq: make(map[model.Entity]int64),
		}
	}
	t.ID = id
	t.Status = model.StatusActive
	t.BeginSeq = s.seq
	t.EndSeq = 0
	t.ref = ref
	t.isCross = false
	t.prepared = false
	return t
}

// releaseState recycles a TxnState that has been removed from txns. The
// maps are cleared here, at release time: no live code may retain an
// AccessSet of a deleted/aborted transaction.
func (s *Scheduler) releaseState(t *TxnState) {
	clear(t.Access)
	clear(t.accessSeq)
	t.ref = graph.NoRef
	s.statePool = append(s.statePool, t)
}

func (s *Scheduler) noteAccess(t *TxnState, x model.Entity, a model.Access) {
	prev := t.Access[x]
	if a > prev {
		t.Access[x] = a
	}
	t.accessSeq[x] = s.seq
	// First read of x indexes t as a reader; a (final) write indexes it
	// as a writer even if it read x before — Rule 3 consults both.
	if a == model.WriteAccess {
		if prev < model.WriteAccess {
			s.writers[x] = s.appendIdx(s.writers[x], t.ref)
		}
	} else if prev == model.NoAccess {
		s.readers[x] = s.appendIdx(s.readers[x], t.ref)
	}
}

// appendIdx appends r to an entity-index slice, seeding a fresh entry from
// the idxFree recycle list so touching an entity whose index entry was
// reclaimed does not allocate.
func (s *Scheduler) appendIdx(rs []graph.Ref, r graph.Ref) []graph.Ref {
	if rs == nil {
		if n := len(s.idxFree); n > 0 {
			rs = s.idxFree[n-1]
			s.idxFree[n-1] = nil
			s.idxFree = s.idxFree[:n-1]
		}
	}
	return append(rs, r)
}

// reject aborts the acting transaction: the step is refused and the node,
// its arcs, and all its access information are removed. cross marks a
// rejection forced by the cross-arc registry rather than a cycle in this
// shard's own graph.
func (s *Scheduler) reject(step model.Step, t *TxnState, cross bool) Result {
	if cross {
		s.emit(emit.KindCrossVeto, emit.ClassCrossCycle, t.ID, t.BeginSeq, 0)
	} else {
		s.emit(emit.KindVeto, emit.ClassCycle, t.ID, t.BeginSeq, 0)
	}
	s.forget(t)
	s.clearCross(t)
	s.g.RemoveRef(t.ref)
	t.Status = model.StatusAborted
	delete(s.txns, t.ID)
	s.numActive--
	s.releaseState(t)
	s.stats.Rejected++
	s.stats.Aborts++
	res := Result{Step: step, Accepted: false, Aborted: t.ID, CompletedTxn: model.NoTxn, CrossVeto: cross}
	s.afterStep(&res, true)
	return res
}

// forget erases the transaction from the per-entity indexes. Its graph
// node is handled separately (RemoveRef on abort, ReduceRef on deletion).
// An entry whose last occupant leaves is deleted outright — the paper's
// storage-reclamation point applies to the entity indexes too, and a
// long-lived server reading a wide sparse keyspace must not retain a
// slice per entity it ever saw. Hot entities keep a non-empty slice, so
// the steady-state append path stays allocation-free.
func (s *Scheduler) forget(t *TxnState) {
	for x, a := range t.Access {
		if rs := graph.DropRef(s.readers[x], t.ref); len(rs) > 0 {
			s.readers[x] = rs
		} else {
			s.recycleIdx(rs)
			delete(s.readers, x)
		}
		if a == model.WriteAccess {
			if ws := graph.DropRef(s.writers[x], t.ref); len(ws) > 0 {
				s.writers[x] = ws
			} else {
				s.recycleIdx(ws)
				delete(s.writers, x)
			}
		}
	}
}

// idxFreeMax bounds the recycle list; beyond it, emptied backing arrays
// are simply released to the GC (a cold keyspace shrinking for good must
// not pin its index storage forever).
const idxFreeMax = 256

// recycleIdx stashes an emptied index entry's backing array for reuse.
func (s *Scheduler) recycleIdx(rs []graph.Ref) {
	if cap(rs) > 0 && len(s.idxFree) < idxFreeMax {
		s.idxFree = append(s.idxFree, rs[:0])
	}
}

// deleteTxn removes a completed transaction with the paper's reduction:
// splice predecessor×successor arcs and forget the access sets. It is the
// policy-facing primitive and performs no safety check itself.
func (s *Scheduler) deleteTxn(id model.TxnID) error {
	t, ok := s.txns[id]
	if !ok {
		return fmt.Errorf("core: delete of unknown transaction T%d", id)
	}
	if t.Status != model.StatusCompleted {
		return fmt.Errorf("core: delete of %v transaction T%d", t.Status, id)
	}
	s.forget(t)
	s.clearCross(t)
	s.g.ReduceRef(t.ref)
	delete(s.txns, id)
	s.numCompleted--
	s.releaseState(t)
	s.stats.Deleted++
	if s.cfg.OnDelete != nil {
		s.cfg.OnDelete(id)
	}
	return nil
}

// afterStep updates peak statistics and runs the deletion policy.
// sweepEvent is true for the events after which a C1 verdict can change
// (a completion or an abort); see Config.SweepEveryStep.
func (s *Scheduler) afterStep(res *Result, sweepEvent bool) {
	if s.cfg.Policy != nil && !s.cfg.SweepManual && (sweepEvent || s.cfg.SweepEveryStep) {
		sw := &s.autoSweep
		sw.s = s
		sw.justCompleted = res.CompletedTxn
		sw.deleted = sw.deleted[:0]
		s.cfg.Policy.Sweep(sw)
		res.Deleted = sw.deleted
		s.stats.Sweeps++
		s.emit(emit.KindSweep, emit.ClassOK, model.NoTxn, 0, int64(len(sw.deleted)))
	}
	if n := s.g.NumNodes(); n > s.stats.PeakNodes {
		s.stats.PeakNodes = n
	}
	if a := s.g.NumArcs(); a > s.stats.PeakArcs {
		s.stats.PeakArcs = a
	}
	kept := s.numCompleted
	if kept > s.stats.PeakKept {
		s.stats.PeakKept = kept
	}
	s.stats.KeptSum += int64(kept)
	s.stats.KeptSample++
}

// Noncurrent reports whether completed transaction id is noncurrent in the
// sense of Corollary 1: every entity it accessed has been subsequently
// overwritten. This is a property of the schedule, not of the (possibly
// reduced) graph — which is exactly why the naive rule is not
// compositional.
func (s *Scheduler) Noncurrent(id model.TxnID) bool {
	t, ok := s.txns[id]
	if !ok || t.Status != model.StatusCompleted {
		return false
	}
	for x := range t.Access {
		if t.accessSeq[x] >= s.lastWriteSeq[x] {
			return false // t read or wrote the current value of x
		}
	}
	return true
}

// CurrentWriterPresent reports whether, for every entity the completed
// transaction accessed, the schedule's current writer of that entity is a
// *different* transaction that is still present in the graph. Together
// with noncurrency this restores compositional safety (the present current
// writer is a completed tight successor witness for every active tight
// predecessor, as in Corollary 1's proof).
func (s *Scheduler) CurrentWriterPresent(id model.TxnID) bool {
	t, ok := s.txns[id]
	if !ok {
		return false
	}
	for x := range t.Access {
		w, ok := s.lastWriter[x]
		if !ok || w == id {
			return false
		}
		if _, present := s.txns[w]; !present {
			return false
		}
	}
	return true
}

// CheckC1 evaluates Theorem 1's condition C1 for transaction id against
// the scheduler's current (reduced) graph. See conditions.go.
func (s *Scheduler) CheckC1(id model.TxnID) (bool, *C1Violation) {
	return CheckC1(s, s.g, id)
}

// CheckC2 evaluates Theorem 4's condition C2 for the set of transactions.
func (s *Scheduler) CheckC2(set graph.NodeSet) (bool, *C2Violation) {
	return CheckC2(s, s.g, set)
}

// ForceDelete removes a completed transaction WITHOUT any safety check.
// It exists for the necessity experiments (Theorem 1's adversarial
// continuations require performing a deletion that is known to be unsafe)
// and must never be used by deletion policies.
func (s *Scheduler) ForceDelete(id model.TxnID) error {
	return s.deleteTxn(id)
}

// SweepNow runs the configured deletion policy once, outside the normal
// post-step hook, and returns the transactions it deleted. Owners that set
// Config.SweepManual call this between batches so GC cost is amortized off
// the per-step path. It is a no-op without a policy. The returned slice is
// reused by the next SweepNow on this scheduler; callers that retain it
// across sweeps must copy.
func (s *Scheduler) SweepNow() []model.TxnID {
	if s.cfg.Policy == nil {
		return nil
	}
	sw := &s.manualSweep
	sw.s = s
	sw.justCompleted = model.NoTxn
	sw.deleted = sw.deleted[:0]
	s.cfg.Policy.Sweep(sw)
	s.stats.Sweeps++
	s.emit(emit.KindSweep, emit.ClassOK, model.NoTxn, 0, int64(len(sw.deleted)))
	return sw.deleted
}

// AbortTxn aborts an active transaction as if one of its steps had been
// rejected: the node, its arcs, and its access information are removed.
// Removing an active node never un-breaks a cycle check already passed and
// erases only arcs into/out of a transaction that will never commit, so it
// is always safe. Engines use it for the ABORT decision of a cross-shard
// two-phase commit (a prepared sub-transaction's pin is released with its
// node) and to clean up after disconnected clients.
func (s *Scheduler) AbortTxn(id model.TxnID) error {
	t, ok := s.txns[id]
	if !ok {
		return fmt.Errorf("core: abort of unknown transaction T%d", id)
	}
	if t.Status != model.StatusActive {
		return fmt.Errorf("core: abort of %v transaction T%d", t.Status, id)
	}
	s.emit(emit.KindAbort, emit.ClassTxnAborted, id, t.BeginSeq, 0)
	s.forget(t)
	s.clearCross(t)
	s.g.RemoveRef(t.ref)
	t.Status = model.StatusAborted
	delete(s.txns, id)
	s.numActive--
	s.releaseState(t)
	s.stats.Aborts++
	res := Result{Accepted: false, Aborted: id, CompletedTxn: model.NoTxn}
	s.afterStep(&res, true)
	return nil
}

// emit publishes one lifecycle event if an emitter is configured. The
// emitter never blocks, so this never adds latency to a step.
func (s *Scheduler) emit(k emit.Kind, c emit.Class, txn model.TxnID, inc, n int64) {
	if s.cfg.Emitter != nil {
		s.cfg.Emitter.Emit(emit.Event{Kind: k, Class: c, Txn: txn, Incarnation: inc, N: n})
	}
}

// DeleteIfSafe deletes id iff C1 holds, returning whether it deleted.
func (s *Scheduler) DeleteIfSafe(id model.TxnID) bool {
	if ok, _ := s.CheckC1(id); !ok {
		return false
	}
	if err := s.deleteTxn(id); err != nil {
		return false
	}
	return true
}
