package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
)

type reachArc struct{ src, dst model.TxnID }

// fakeTracker is a scriptable CrossTracker: it records reported reach-arcs
// and vetoes the ones listed in veto. Every id is live unless retired.
type fakeTracker struct {
	arcs    []reachArc
	retired map[model.TxnID]bool
	veto    map[reachArc]bool
}

func (f *fakeTracker) OnCrossReach(src, dst model.TxnID) bool {
	if f.veto[reachArc{src, dst}] {
		return false
	}
	f.arcs = append(f.arcs, reachArc{src, dst})
	return true
}

func (f *fakeTracker) LabelLive(id model.TxnID) bool { return !f.retired[id] }

// TestSubTxnLifecycle drives one sub-transaction through begin, reads,
// prepare (pin), and commit, checking status and pin transitions.
func TestSubTxnLifecycle(t *testing.T) {
	tr := &fakeTracker{retired: map[model.TxnID]bool{}, veto: map[reachArc]bool{}}
	s := NewScheduler(Config{Cross: tr})
	if _, err := s.BeginCross(model.Begin(1)); err != nil {
		t.Fatal(err)
	}
	if res := s.MustApply(model.Read(1, 10)); !res.Accepted {
		t.Fatal("sub-txn read rejected")
	}
	vote, err := s.PrepareFinal(model.WriteFinal(1, 11))
	if err != nil || vote != VoteYes {
		t.Fatalf("prepare: vote=%v err=%v", vote, err)
	}
	if !s.Prepared(1) {
		t.Fatal("Prepared(1) = false after VoteYes")
	}
	ts := s.Txn(1)
	if ts.Status != model.StatusActive || !s.Graph().PinnedRef(ts.ref) {
		t.Fatalf("prepared sub-txn: status=%v pinned=%v, want active+pinned", ts.Status, s.Graph().PinnedRef(ts.ref))
	}
	// No further steps while prepared.
	if _, err := s.Apply(model.Read(1, 12)); err == nil {
		t.Fatal("read of prepared transaction succeeded")
	}
	res, err := s.CommitPrepared(1)
	if err != nil || res.CompletedTxn != 1 {
		t.Fatalf("commit: %+v err=%v", res, err)
	}
	if s.Graph().NumPinned() != 0 {
		t.Fatal("pin survived commit")
	}
	if st := s.Status(1); st != model.StatusCompleted {
		t.Fatalf("status after commit = %v", st)
	}
	if s.NumActive() != 0 || s.NumCompleted() != 1 {
		t.Fatalf("counts: active=%d completed=%d", s.NumActive(), s.NumCompleted())
	}
}

// TestSubTxnAbortReleasesPin aborts a prepared sub-transaction and checks
// node, pin, and indexes are gone (the ID becomes reusable).
func TestSubTxnAbortReleasesPin(t *testing.T) {
	tr := &fakeTracker{retired: map[model.TxnID]bool{}, veto: map[reachArc]bool{}}
	s := NewScheduler(Config{Cross: tr})
	s.MustBeginCross(t, 1)
	s.MustApply(model.Read(1, 10))
	if vote, err := s.PrepareFinal(model.WriteFinal(1, 11)); err != nil || vote != VoteYes {
		t.Fatalf("prepare: %v %v", vote, err)
	}
	if err := s.AbortTxn(1); err != nil {
		t.Fatal(err)
	}
	if s.Graph().NumPinned() != 0 || s.Graph().NumNodes() != 0 {
		t.Fatalf("abort left pins=%d nodes=%d", s.Graph().NumPinned(), s.Graph().NumNodes())
	}
	// ID reusable.
	if _, err := s.BeginCross(model.Begin(1)); err != nil {
		t.Fatalf("reuse after abort: %v", err)
	}
}

// MustBeginCross is a test helper.
func (s *Scheduler) MustBeginCross(t *testing.T, id model.TxnID) {
	t.Helper()
	if _, err := s.BeginCross(model.Begin(id)); err != nil {
		t.Fatal(err)
	}
}

// TestLabelPropagation checks the reaches-invariant end to end: a label
// flows from a cross sub-node through a chain of local transactions into a
// second cross sub-node, reporting the inter-shard reach-arc exactly once —
// including when the connecting arc arrives *after* the label (late
// propagation through an existing path).
func TestLabelPropagation(t *testing.T) {
	tr := &fakeTracker{retired: map[model.TxnID]bool{}, veto: map[reachArc]bool{}}
	s := NewScheduler(Config{Cross: tr})
	// Cross sub-txn 100 writes x via prepare; local 1 reads x afterwards →
	// arc 100→1 and label 100 on T1.
	s.MustBeginCross(t, 100)
	if vote, _ := s.PrepareFinal(model.WriteFinal(100, 7)); vote != VoteYes {
		t.Fatalf("prepare vote: %v", vote)
	}
	if _, err := s.CommitPrepared(100); err != nil {
		t.Fatal(err)
	}
	s.MustApply(model.Begin(1))
	s.MustApply(model.Read(1, 7)) // arc 100→1, label 100 arrives at T1
	s.MustApply(model.WriteFinal(1, 8))
	// Cross sub-txn 200 reads y=8 → arc 1→200, and label 100 must arrive
	// at 200: reach-arc 100→200.
	s.MustBeginCross(t, 200)
	if res := s.MustApply(model.Read(200, 8)); !res.Accepted {
		t.Fatal("read rejected")
	}
	want := []reachArc{{100, 200}}
	if len(tr.arcs) != 1 || tr.arcs[0] != want[0] {
		t.Fatalf("reported arcs = %v, want %v", tr.arcs, want)
	}
}

// TestLabelLatePropagation covers the late case: the connecting arc into a
// cross sub-node exists first, and the label arrives afterwards at an
// upstream node — it must flood through the existing arc and still report
// the reach-arc.
func TestLabelLatePropagation(t *testing.T) {
	tr := &fakeTracker{retired: map[model.TxnID]bool{}, veto: map[reachArc]bool{}}
	s := NewScheduler(Config{Cross: tr})
	// Active local 1 reads 5; cross 200's prepared write of 5 creates the
	// arc 1→200 (no labels yet: T1 carries none).
	s.MustApply(model.Begin(1))
	s.MustApply(model.Read(1, 5))
	s.MustBeginCross(t, 200)
	if vote, _ := s.PrepareFinal(model.WriteFinal(200, 5)); vote != VoteYes {
		t.Fatal("prepare 200")
	}
	if _, err := s.CommitPrepared(200); err != nil {
		t.Fatal(err)
	}
	// Cross 300 writes 9 and commits; then still-active 1 reads 9: label
	// 300 arrives at T1 and must flood through the *existing* arc 1→200,
	// reporting 300→200.
	s.MustBeginCross(t, 300)
	if vote, _ := s.PrepareFinal(model.WriteFinal(300, 9)); vote != VoteYes {
		t.Fatal("prepare 300")
	}
	if _, err := s.CommitPrepared(300); err != nil {
		t.Fatal(err)
	}
	if res := s.MustApply(model.Read(1, 9)); !res.Accepted {
		t.Fatal("read of 9 rejected")
	}
	found := false
	for _, a := range tr.arcs {
		if a == (reachArc{300, 200}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("late reach-arc 300→200 not reported; arcs = %v", tr.arcs)
	}
}

// TestPrepareVetoAtCollect: a veto on the incoming labels of a prepare
// leaves the graph unmutated (VoteCrossCycle before any arc lands).
func TestPrepareVetoAtCollect(t *testing.T) {
	tr := &fakeTracker{retired: map[model.TxnID]bool{}, veto: map[reachArc]bool{}}
	s := NewScheduler(Config{Cross: tr})
	s.MustBeginCross(t, 100)
	if vote, _ := s.PrepareFinal(model.WriteFinal(100, 7)); vote != VoteYes {
		t.Fatal("prepare 100")
	}
	if _, err := s.CommitPrepared(100); err != nil {
		t.Fatal(err)
	}
	s.MustBeginCross(t, 200)
	s.MustApply(model.Read(200, 7)) // arc 100→200 reported and allowed
	arcsBefore := s.Graph().NumArcs()
	// A fresh cross sub-txn 300 reading 7 would report reach-arc 100→300;
	// script the tracker to veto exactly that and the read must be
	// rejected with no graph mutation.
	tr.veto[reachArc{100, 300}] = true
	s.MustBeginCross(t, 300)
	res := s.MustApply(model.Read(300, 7))
	if res.Accepted || res.Aborted != 300 {
		t.Fatalf("vetoed read: %+v, want rejection aborting 300", res)
	}
	if s.Graph().NumArcs() != arcsBefore {
		t.Fatalf("vetoed read changed arcs: %d → %d", arcsBefore, s.Graph().NumArcs())
	}
	if s.Status(300) != model.StatusAborted {
		t.Fatalf("status(300) = %v", s.Status(300))
	}
}

// TestDeletionGatedByLabels: a completed local transaction carrying a live
// cross label is not deletable; once the label's transaction retires it
// becomes deletable again.
func TestDeletionGatedByLabels(t *testing.T) {
	tr := &fakeTracker{retired: map[model.TxnID]bool{}, veto: map[reachArc]bool{}}
	s := NewScheduler(Config{Policy: GreedyC1{}, SweepManual: true, Cross: tr})
	// Cross 100 writes 7; local 1 reads 7 (label 100), writes 8, completes.
	s.MustBeginCross(t, 100)
	if vote, _ := s.PrepareFinal(model.WriteFinal(100, 7)); vote != VoteYes {
		t.Fatal("prepare 100")
	}
	if _, err := s.CommitPrepared(100); err != nil {
		t.Fatal(err)
	}
	s.MustApply(model.Begin(1))
	s.MustApply(model.Read(1, 7))
	s.MustApply(model.WriteFinal(1, 8))
	// Both are completed with no active predecessors: plain C1 would
	// delete both, but the gate must refuse the labeled T1 and the
	// sub-transaction 100 while the tracker keeps them live.
	deleted := s.SweepNow()
	if len(deleted) != 0 {
		t.Fatalf("sweep deleted %v while labels live", deleted)
	}
	if s.policyDeletable(1) {
		t.Fatal("labeled node reported deletable")
	}
	tr.retired[100] = true
	deleted = s.SweepNow()
	if len(deleted) != 2 {
		t.Fatalf("sweep after retirement deleted %v, want both", deleted)
	}
}

// TestPinnedNodeNotDeletable: pins gate deletion directly at the graph
// level even without any label.
func TestPinnedNodeNotDeletable(t *testing.T) {
	s := NewScheduler(Config{Policy: GreedyC1{}, SweepManual: true})
	s.MustApply(model.Begin(1))
	s.MustApply(model.WriteFinal(1, 5))
	ref := s.Graph().Ref(1)
	s.Graph().PinRef(ref)
	if got := s.SweepNow(); len(got) != 0 {
		t.Fatalf("sweep deleted pinned node: %v", got)
	}
	s.Graph().UnpinRef(ref)
	if got := s.SweepNow(); len(got) != 1 {
		t.Fatalf("sweep after unpin deleted %v, want [1]", got)
	}
}

// TestGraphPins pins the graph-level pin bookkeeping: idempotence, counts,
// and automatic release when the slot is freed or recycled.
func TestGraphPins(t *testing.T) {
	g := graph.New()
	r := g.AddNodeRef(1)
	g.PinRef(r)
	g.PinRef(r)
	if !g.PinnedRef(r) || g.NumPinned() != 1 {
		t.Fatalf("pin: pinned=%v count=%d", g.PinnedRef(r), g.NumPinned())
	}
	g.RemoveRef(r)
	if g.NumPinned() != 0 {
		t.Fatalf("pin survived RemoveRef: %d", g.NumPinned())
	}
	r2 := g.AddNodeRef(2) // recycles the slot
	if g.PinnedRef(r2) {
		t.Fatal("recycled slot inherited a pin")
	}
	g.PinRef(r2)
	g.UnpinRef(r2)
	g.UnpinRef(r2)
	if g.NumPinned() != 0 {
		t.Fatalf("unpin not idempotent: %d", g.NumPinned())
	}
}

// TestAbortedPrepareLeavesNoPhantomWrite: an ABORTed prepare must not leave
// lastWriteSeq/lastWriter claiming the entity was overwritten — otherwise
// Corollary 1's noncurrency test (and, after client ID reuse, even the
// presence guard) would let NoncurrentSafe delete the true current writer.
func TestAbortedPrepareLeavesNoPhantomWrite(t *testing.T) {
	tr := &fakeTracker{retired: map[model.TxnID]bool{}, veto: map[reachArc]bool{}}
	s := NewScheduler(Config{Cross: tr})
	// T10 writes entity 5 and completes: the current writer.
	s.MustApply(model.Begin(10))
	s.MustApply(model.WriteFinal(10, 5))
	// Cross T50 prepares a write of 5, then the coordinator aborts it.
	s.MustBeginCross(t, 50)
	if vote, err := s.PrepareFinal(model.WriteFinal(50, 5)); err != nil || vote != VoteYes {
		t.Fatalf("prepare: %v %v", vote, err)
	}
	if err := s.AbortTxn(50); err != nil {
		t.Fatal(err)
	}
	// Entity 5 was never overwritten: T10 must not read as noncurrent.
	if s.Noncurrent(10) {
		t.Fatal("aborted prepare left a phantom overwrite: Noncurrent(10) = true")
	}
	// A prepare that actually commits does install the bookkeeping.
	s.MustBeginCross(t, 60)
	if vote, _ := s.PrepareFinal(model.WriteFinal(60, 5)); vote != VoteYes {
		t.Fatal("prepare 60")
	}
	if _, err := s.CommitPrepared(60); err != nil {
		t.Fatal(err)
	}
	if !s.Noncurrent(10) {
		t.Fatal("committed overwrite not reflected: Noncurrent(10) = false")
	}
}
