// Deletion policies (the paper's Section 4: "A deletion policy P is an
// algorithm which given reduced graph G outputs a set of completed nodes to
// be deleted. ... Call a deletion policy correct if the scheduling
// algorithm accepts only CSR schedules.")
//
// By Theorem 2 a policy is correct iff it performs only safe deletions; by
// Theorems 3 and 4, safety is exactly C1 for single deletions (repeatable
// on reduced graphs) and C2 for sets. The policies here are:
//
//   - NoGC           — never delete (the reference full scheduler).
//   - Lemma1Policy   — delete completed nodes with no active predecessor.
//   - GreedyC1       — repeatedly delete any node satisfying C1 (safe by
//     Theorem 3; maximal by inclusion but not maximum).
//   - MaxSafeExact   — exact maximum safe subset via branch-and-bound over
//     C1 candidates with C2 feasibility (Theorem 5 problem).
//   - NoncurrentSafe — Corollary 1 made compositional: delete noncurrent
//     transactions whose current writers are still present.
//   - CommitGC       — UNSAFE negative control: delete at completion, the
//     locking-scheduler habit the introduction warns about.
//   - NoncurrentNaive— UNSAFE negative control: Corollary 1 applied
//     verbatim to reduced graphs (the Example 1 trap).
package core

import (
	"cmp"
	"slices"

	"repro/internal/graph"
	"repro/internal/model"
)

// Policy decides which completed transactions to delete after a step. The
// scheduler invokes Sweep after completions and aborts (or after every
// accepted step with Config.SweepEveryStep); the policy performs deletions
// through the Sweep handle.
type Policy interface {
	// Name identifies the policy in experiment tables.
	Name() string
	// Sweep performs zero or more deletions via sw.
	Sweep(sw *Sweep)
}

// Sweep is the mutating handle a Policy receives. It records what was
// deleted so the scheduler can report it in the step Result.
type Sweep struct {
	s             *Scheduler
	justCompleted model.TxnID
	deleted       []model.TxnID
}

// Scheduler returns the underlying scheduler (read via its query methods).
func (sw *Sweep) Scheduler() *Scheduler { return sw.s }

// JustCompleted returns the transaction completed by the triggering step,
// or NoTxn.
func (sw *Sweep) JustCompleted() model.TxnID { return sw.justCompleted }

// Completed returns the retained completed transactions that a policy may
// consider for deletion, ascending. Under a cross-shard engine this
// excludes pinned (prepared-but-undecided) sub-transactions, sub-
// transactions whose logical transaction the cross-arc registry still
// tracks, and nodes carrying live cross-ancestor labels — deleting any of
// those could hide an inter-shard arc (see subtxn.go). Purely local
// schedulers get the plain completed set.
// The returned slice is backed by scheduler scratch: it is valid until the
// next Completed call (each deletion round of a policy loop rebuilds it),
// and policies may reorder it in place.
func (sw *Sweep) Completed() []model.TxnID {
	sw.s.compScratch = sw.s.completedAppend(sw.s.compScratch[:0])
	ids := sw.s.compScratch
	// Fast path: a shard that has never seen a cross transaction (no
	// sub-nodes, no labels, no pins) filters nothing, even when a tracker
	// is configured — the cross-free GC path stays identical to a plain
	// local scheduler's.
	if !sw.s.crossEnabled() && sw.s.g.NumPinned() == 0 {
		return ids
	}
	kept := ids[:0]
	for _, id := range ids {
		if sw.s.policyDeletable(id) {
			kept = append(kept, id)
		}
	}
	return kept
}

// CheckC1 tests condition C1 for id on the current graph.
func (sw *Sweep) CheckC1(id model.TxnID) bool {
	ok, _ := sw.s.CheckC1(id)
	return ok
}

// CheckC2 tests condition C2 for a set on the current graph.
func (sw *Sweep) CheckC2(set graph.NodeSet) bool {
	ok, _ := sw.s.CheckC2(set)
	return ok
}

// Delete removes id unconditionally with respect to C1/C2 (the policy is
// responsible for that safety), but never a node the engine has gated
// (pinned, registry-tracked, or live-labeled — see Completed). It returns
// false if id is not a deletable retained completed transaction.
func (sw *Sweep) Delete(id model.TxnID) bool {
	if !sw.s.policyDeletable(id) {
		return false
	}
	if err := sw.s.deleteTxn(id); err != nil {
		return false
	}
	sw.deleted = append(sw.deleted, id)
	return true
}

// DeleteSet removes every member of set, in ascending order, returning how
// many were actually deleted (gated members are skipped).
func (sw *Sweep) DeleteSet(set graph.NodeSet) int {
	n := 0
	for _, id := range set.Sorted() {
		if sw.Delete(id) {
			n++
		}
	}
	return n
}

// Deleted returns the transactions deleted so far in this sweep.
func (sw *Sweep) Deleted() []model.TxnID { return sw.deleted }

// ---------------------------------------------------------------------------

// NoGC never deletes; it is the paper's original conflict scheduler and
// the reference side of every equivalence oracle.
type NoGC struct{}

// Name implements Policy.
func (NoGC) Name() string { return "nogc" }

// Sweep implements Policy.
func (NoGC) Sweep(*Sweep) {}

// ---------------------------------------------------------------------------

// Lemma1Policy deletes completed transactions that have no active
// predecessor at all (Lemma 1). It is strictly weaker than C1 (Example 1's
// T2 has an active predecessor yet is C1-deletable) but very cheap.
type Lemma1Policy struct{}

// Name implements Policy.
func (Lemma1Policy) Name() string { return "lemma1" }

// Sweep implements Policy.
func (Lemma1Policy) Sweep(sw *Sweep) {
	s := sw.s
	for {
		progress := false
		for _, id := range sw.Completed() {
			if !HasActivePredecessor(s, s.g, id) {
				if sw.Delete(id) {
					progress = true
				}
			}
		}
		if !progress {
			return
		}
	}
}

// ---------------------------------------------------------------------------

// GreedyC1 repeatedly deletes any completed transaction satisfying C1 on
// the successively reduced graph until none does. Theorem 3 guarantees
// each individual deletion is safe, hence (Theorem 2) the policy is
// correct. The result is maximal by inclusion; Theorem 5 shows finding the
// maximum is NP-complete, so greedy is the practical default.
//
// Order controls the scan order; OldestFirst (default) favors deleting
// older transactions, which empirically keeps the graph smaller because
// old nodes accumulate predecessor arcs.
type GreedyC1 struct {
	// NewestFirst scans candidates newest-first instead of oldest-first.
	NewestFirst bool
}

// Name implements Policy.
func (p GreedyC1) Name() string {
	if p.NewestFirst {
		return "greedy-c1-newest"
	}
	return "greedy-c1"
}

// Sweep implements Policy.
func (p GreedyC1) Sweep(sw *Sweep) {
	s := sw.s
	for {
		ids := sw.Completed()
		if p.NewestFirst {
			slices.SortFunc(ids, func(a, b model.TxnID) int { return cmp.Compare(b, a) })
		}
		progress := false
		for _, id := range ids {
			if ok, _ := s.CheckC1(id); ok {
				if sw.Delete(id) {
					progress = true
				}
			}
		}
		if !progress {
			return
		}
	}
}

// ---------------------------------------------------------------------------

// MaxSafeExact computes, at each sweep, a maximum-size safely deletable
// subset (the NP-complete problem of Theorem 5) by branch-and-bound over
// the C1 candidate set with C2 feasibility, then deletes it. Budget bounds
// the search nodes; on exhaustion it falls back to the best subset found
// (at least as large as greedy's, which seeds the incumbent).
type MaxSafeExact struct {
	// Budget bounds branch-and-bound nodes; 0 means DefaultMaxSafeBudget.
	Budget int
}

// Name implements Policy.
func (MaxSafeExact) Name() string { return "max-safe" }

// Sweep implements Policy.
func (p MaxSafeExact) Sweep(sw *Sweep) {
	s := sw.s
	for {
		best := MaxSafeSet(s, s.g, sw.Completed(), p.Budget)
		if len(best) == 0 || sw.DeleteSet(best) == 0 {
			return
		}
	}
}

// ---------------------------------------------------------------------------

// NoncurrentSafe deletes, at each sweep, every noncurrent completed
// transaction whose entities' current writers are all still present in the
// graph (and distinct from it). Presence of the current writer restores
// Corollary 1's witness on reduced graphs: for each entity x of Ti the
// last writer Tk is completed, conflicts with Ti (so the reduced graph has
// the arc Ti→Tk), and hence is a completed tight successor of every active
// tight predecessor of Ti. Because current writers are themselves current,
// they are never in the deleted batch, satisfying C2's outside-N
// requirement.
type NoncurrentSafe struct{}

// Name implements Policy.
func (NoncurrentSafe) Name() string { return "noncurrent-safe" }

// Sweep implements Policy.
func (NoncurrentSafe) Sweep(sw *Sweep) {
	s := sw.s
	for {
		batch := make(graph.NodeSet)
		for _, id := range sw.Completed() {
			if s.Noncurrent(id) && s.CurrentWriterPresent(id) {
				batch.Add(id)
			}
		}
		if len(batch) == 0 || sw.DeleteSet(batch) == 0 {
			return
		}
	}
}

// ---------------------------------------------------------------------------

// CommitGC is the UNSAFE policy that closes transactions at commit time,
// which is correct for locking schedulers but wrong for conflict-graph
// schedulers (paper, Section 1). It exists as a negative control: the
// equivalence oracle must catch it.
type CommitGC struct{}

// Name implements Policy.
func (CommitGC) Name() string { return "commit-gc-UNSAFE" }

// Sweep implements Policy.
func (CommitGC) Sweep(sw *Sweep) {
	if id := sw.JustCompleted(); id != model.NoTxn {
		sw.Delete(id)
	}
}

// ---------------------------------------------------------------------------

// Chain runs several policies in order within one sweep. It is how the
// paper's Example 1 trap is reproduced: Chain{GreedyC1{NewestFirst:true},
// NoncurrentNaive{}} first C1-deletes the current transaction T3 and then
// blindly noncurrent-deletes T2, whose witness is now gone — an unsafe
// deletion the oracle catches. Chain{GreedyC1{...}, NoncurrentSafe{}} is
// safe: the presence guard refuses T2.
type Chain []Policy

// Name implements Policy.
func (c Chain) Name() string {
	name := "chain("
	for i, p := range c {
		if i > 0 {
			name += "+"
		}
		name += p.Name()
	}
	return name + ")"
}

// Sweep implements Policy.
func (c Chain) Sweep(sw *Sweep) {
	for _, p := range c {
		p.Sweep(sw)
	}
}

// ---------------------------------------------------------------------------

// NoncurrentNaive applies Corollary 1 verbatim to whatever (possibly
// reduced) graph it is given: it deletes every noncurrent completed
// transaction without checking that the current writers are still present.
//
// Run STANDALONE this is actually safe — the policy never deletes a
// current transaction, so each entity's last writer (the corollary's
// witness) survives every batch, which re-establishes C2 on the reduced
// graph (experiment E10 verifies this empirically). But composed after a
// policy that can delete current transactions (GreedyC1 can), it performs
// exactly the unsafe deletion of the paper's Example 1 — which is why the
// paper stresses that Corollary 1 is a conflict-graph rule, not a
// reduced-graph rule. Treat it as a pedagogical control, not a policy.
type NoncurrentNaive struct{}

// Name implements Policy.
func (NoncurrentNaive) Name() string { return "noncurrent-naive-UNSAFE" }

// Sweep implements Policy.
func (NoncurrentNaive) Sweep(sw *Sweep) {
	s := sw.s
	for {
		batch := make(graph.NodeSet)
		for _, id := range sw.Completed() {
			if s.Noncurrent(id) {
				batch.Add(id)
			}
		}
		if len(batch) == 0 || sw.DeleteSet(batch) == 0 {
			return
		}
	}
}
