// Deletion conditions from the paper: Lemma 1, Theorem 1 (C1), Theorem 4
// (C2). All checkers operate on a StateView plus a graph so that they can
// be evaluated both on the live scheduler and on hypothetical graphs
// during search.
package core

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
)

// StateView is the read-only information the deletion conditions consume:
// transaction statuses and forgotten-able access sets. The conflict graph
// itself is passed alongside so the same view can be reused across reduced
// copies of the graph.
type StateView interface {
	// Status returns the lifecycle state of id; unknown/deleted
	// transactions report StatusAborted.
	Status(id model.TxnID) model.Status
	// Access returns the per-entity strongest accesses of id (nil if
	// unknown).
	Access(id model.TxnID) model.AccessSet
}

// terminated reports whether id counts as "completed" for tight paths
// (the basic model only uses StatusCompleted, but Finished/Committed from
// the multiple-write model also qualify, letting the checkers be reused).
func terminated(v StateView, id model.TxnID) bool {
	return v.Status(id).Terminated()
}

// ActiveTightPredecessors returns the active transactions Tj that have a
// path to ti in g whose intermediate nodes are all completed — the paper's
// "active tight predecessors". The result is sorted.
func ActiveTightPredecessors(v StateView, g *graph.Graph, ti model.TxnID) []model.TxnID {
	// The closure itself lives in graph scratch (it is consumed before any
	// other closure runs); only the — usually empty — result escapes.
	closure := g.BackwardClosureScratch(ti, func(n model.TxnID) bool { return terminated(v, n) })
	var out []model.TxnID
	for id := range closure {
		if v.Status(id) == model.StatusActive {
			out = append(out, id)
		}
	}
	sortTxns(out)
	return out
}

// CompletedTightSuccessors returns the completed transactions Tk reachable
// from tj in g through completed intermediates — the paper's "completed
// tight successors".
func CompletedTightSuccessors(v StateView, g *graph.Graph, tj model.TxnID) graph.NodeSet {
	closure := g.ForwardClosure(tj, func(n model.TxnID) bool { return terminated(v, n) })
	out := make(graph.NodeSet, len(closure))
	for id := range closure {
		if terminated(v, id) {
			out.Add(id)
		}
	}
	return out
}

// HasActivePredecessor reports whether any active transaction reaches id
// (by any path). Lemma 1: a completed transaction with no active
// predecessors will never participate in a future cycle, so it can be
// removed.
func HasActivePredecessor(v StateView, g *graph.Graph, id model.TxnID) bool {
	anc := g.AncestorsScratch(id)
	for a := range anc {
		if v.Status(a) == model.StatusActive {
			return true
		}
	}
	return false
}

// C1Violation is a witness that condition C1 fails: active tight
// predecessor Tj of Ti and entity X accessed by Ti such that no completed
// tight successor of Tj (other than Ti) accesses X at least as strongly as
// Ti does. The witness drives the necessity construction of Theorem 1.
type C1Violation struct {
	Ti model.TxnID
	Tj model.TxnID
	X  model.Entity
	// Strength is Ti's access strength on X (what a witness must match).
	Strength model.Access
}

// Error implements error (a violation explains why deletion is unsafe).
func (v *C1Violation) Error() string {
	return fmt.Sprintf("C1 violated for T%d: active tight predecessor T%d has no completed tight successor accessing entity %d at least as strongly as %v",
		v.Ti, v.Tj, v.X, v.Strength)
}

// CheckC1 evaluates Theorem 1's condition C1 for ti on graph g:
//
//	(C1) For all active tight predecessors Tj of Ti and for all entities x
//	accessed by Ti there is a completed tight successor Tk (≠ Ti) of Tj
//	that accesses x at least as strongly as Ti.
//
// By Theorem 3 the same test characterizes safe deletion on any reduced
// graph, so it may be applied repeatedly. CheckC1 returns false for
// transactions that are not completed (only completed transactions are
// removable).
func CheckC1(v StateView, g *graph.Graph, ti model.TxnID) (bool, *C1Violation) {
	if !g.HasNode(ti) || !terminated(v, ti) {
		return false, &C1Violation{Ti: ti, Tj: model.NoTxn}
	}
	access := v.Access(ti)
	preds := ActiveTightPredecessors(v, g, ti)
	if len(preds) == 0 {
		// Lemma 1 degenerate case: no active tight predecessor means no
		// active predecessor at all can complete a future cycle through
		// ti... not quite — there may be active non-tight predecessors.
		// But C1 quantifies over tight ones only, so it holds vacuously.
		return true, nil
	}
	for _, tj := range preds {
		succs := CompletedTightSuccessors(v, g, tj)
		// strongest[x] = strongest access on x among completed tight
		// successors of tj other than ti.
		strongest := make(map[model.Entity]model.Access)
		for tk := range succs {
			if tk == ti {
				continue
			}
			for x, a := range v.Access(tk) {
				if a > strongest[x] {
					strongest[x] = a
				}
			}
		}
		for x, need := range access {
			if !strongest[x].AtLeastAsStrong(need) {
				return false, &C1Violation{Ti: ti, Tj: tj, X: x, Strength: need}
			}
		}
	}
	return true, nil
}

// C2Violation is a witness that condition C2 fails for a set N: member Ti,
// active tight predecessor Tj, and entity X with no witness outside N.
type C2Violation struct {
	Ti model.TxnID
	Tj model.TxnID
	X  model.Entity
	// Strength is Ti's access strength on X.
	Strength model.Access
}

// Error implements error.
func (v *C2Violation) Error() string {
	return fmt.Sprintf("C2 violated for T%d in N: active tight predecessor T%d has no completed tight successor outside N accessing entity %d at least as strongly as %v",
		v.Ti, v.Tj, v.X, v.Strength)
}

// CheckC2 evaluates Theorem 4's condition C2 for the set N on graph g:
//
//	(C2) For all Ti in N, for all tight active predecessors Tj of Ti and
//	for all entities x accessed by Ti, there is a completed tight
//	successor of Tj NOT IN N which accesses x at least as strongly as Ti.
//
// The tight relations are those of g itself (not of intermediate
// reductions); Theorem 4 proves this characterizes safe simultaneous
// deletion of the whole set.
func CheckC2(v StateView, g *graph.Graph, n graph.NodeSet) (bool, *C2Violation) {
	for ti := range n {
		if !g.HasNode(ti) || !terminated(v, ti) {
			return false, &C2Violation{Ti: ti, Tj: model.NoTxn}
		}
	}
	// Cache completed-tight-successor strength maps per active tight
	// predecessor: several members of N often share predecessors.
	type strengthMap map[model.Entity]model.Access
	cache := make(map[model.TxnID]strengthMap)
	strongestFor := func(tj model.TxnID) strengthMap {
		if m, ok := cache[tj]; ok {
			return m
		}
		succs := CompletedTightSuccessors(v, g, tj)
		m := make(strengthMap)
		for tk := range succs {
			if n.Has(tk) {
				continue // witnesses must lie outside N
			}
			for x, a := range v.Access(tk) {
				if a > m[x] {
					m[x] = a
				}
			}
		}
		cache[tj] = m
		return m
	}
	for ti := range n {
		access := v.Access(ti)
		for _, tj := range ActiveTightPredecessors(v, g, ti) {
			strongest := strongestFor(tj)
			for x, need := range access {
				if !strongest[x].AtLeastAsStrong(need) {
					return false, &C2Violation{Ti: ti, Tj: tj, X: x, Strength: need}
				}
			}
		}
	}
	return true, nil
}

// C1Candidates returns the completed transactions of g that individually
// satisfy C1 — the paper's set M, of which every safely deletable set is a
// subset (Theorem 4 discussion).
func C1Candidates(v StateView, g *graph.Graph, completed []model.TxnID) []model.TxnID {
	var out []model.TxnID
	for _, id := range completed {
		if ok, _ := CheckC1(v, g, id); ok {
			out = append(out, id)
		}
	}
	return out
}

func sortTxns(ids []model.TxnID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
