package core

import (
	"testing"

	"repro/internal/model"
)

func TestNoGCKeepsEverything(t *testing.T) {
	s := Example1Scheduler(Config{Policy: NoGC{}})
	if s.NumCompleted() != 2 {
		t.Fatalf("NoGC deleted something: %d completed retained", s.NumCompleted())
	}
}

func TestGreedyC1DeletesExactlyOneOfExample1(t *testing.T) {
	s := Example1Scheduler(Config{Policy: GreedyC1{}})
	// Both T2 and T3 satisfy C1 but only one can go (deleting one
	// disables the other).
	if got := s.NumCompleted(); got != 1 {
		t.Fatalf("retained completed = %d, want 1", got)
	}
	// Oldest-first deletes T2 and keeps T3.
	if s.Txn(Ex1T3) == nil || s.Txn(Ex1T2) != nil {
		t.Fatalf("oldest-first should delete T2 and keep T3; kept: %v", s.CompletedTxns())
	}
}

func TestGreedyC1NewestFirstOrder(t *testing.T) {
	s := Example1Scheduler(Config{Policy: GreedyC1{NewestFirst: true}})
	if s.Txn(Ex1T2) == nil || s.Txn(Ex1T3) != nil {
		t.Fatalf("newest-first should delete T3 and keep T2; kept: %v", s.CompletedTxns())
	}
}

func TestGreedyC1DeletesAllWhenNoActives(t *testing.T) {
	s := NewScheduler(Config{Policy: GreedyC1{}})
	for id := model.TxnID(1); id <= 5; id++ {
		s.MustApply(model.Begin(id))
		s.MustApply(model.Read(id, model.Entity(id)))
		s.MustApply(model.WriteFinal(id, model.Entity(id)))
	}
	if got := s.NumCompleted(); got != 0 {
		t.Fatalf("with no actives every completed txn is C1-deletable; %d retained", got)
	}
}

func TestLemma1PolicyWeakerThanC1(t *testing.T) {
	// In Example 1 both completed txns have active predecessor T1, so
	// Lemma 1 deletes nothing, while C1 deletes one.
	s := Example1Scheduler(Config{Policy: Lemma1Policy{}})
	if s.NumCompleted() != 2 {
		t.Fatalf("Lemma1 should keep both; retained %d", s.NumCompleted())
	}
}

func TestLemma1PolicyDeletesUnreferenced(t *testing.T) {
	s := NewScheduler(Config{Policy: Lemma1Policy{}})
	s.MustApply(model.Begin(1))
	s.MustApply(model.WriteFinal(1, 0))
	if s.NumCompleted() != 0 {
		t.Fatal("isolated completed transaction should be deleted by Lemma 1")
	}
}

func TestMaxSafeExactOnExample1(t *testing.T) {
	s := Example1Scheduler(Config{Policy: MaxSafeExact{}})
	// The maximum safe subset of {T2, T3} has size 1.
	if got := s.NumCompleted(); got != 1 {
		t.Fatalf("retained = %d, want 1", got)
	}
}

func TestNoncurrentSafeDeletesT2KeepsT3(t *testing.T) {
	s := Example1Scheduler(Config{Policy: NoncurrentSafe{}})
	if s.Txn(Ex1T2) != nil {
		t.Fatal("T2 is noncurrent with present current writer: should delete")
	}
	if s.Txn(Ex1T3) == nil {
		t.Fatal("T3 is current: must be kept")
	}
}

func TestCommitGCDeletesAtCompletion(t *testing.T) {
	s := Example1Scheduler(Config{Policy: CommitGC{}})
	if s.NumCompleted() != 0 {
		t.Fatalf("CommitGC must delete at completion; %d retained", s.NumCompleted())
	}
}

func TestChainNameAndOrder(t *testing.T) {
	p := Chain{GreedyC1{NewestFirst: true}, NoncurrentNaive{}}
	if p.Name() != "chain(greedy-c1-newest+noncurrent-naive-UNSAFE)" {
		t.Fatalf("Name = %q", p.Name())
	}
}

func TestExample1TrapChainDeletesBoth(t *testing.T) {
	// The paper's Example 1 trap: C1-delete T3 (newest first), then the
	// naive noncurrent rule deletes T2 even though its witness is gone.
	s := Example1Scheduler(Config{Policy: Chain{GreedyC1{NewestFirst: true}, NoncurrentNaive{}}})
	if s.NumCompleted() != 0 {
		t.Fatalf("trap chain should (unsafely) delete both; retained %d", s.NumCompleted())
	}
	// Now T1's write of x must be ACCEPTED by this reduced scheduler --
	// the full scheduler would reject it (cycle with T2/T3). This is the
	// unsafe divergence; the oracle tests assert it end to end.
	res := s.MustApply(model.WriteFinal(Ex1T1, Ex1X))
	if !res.Accepted {
		t.Fatal("reduced scheduler should accept T1's write after the unsafe deletions")
	}
}

func TestExample1SafeChainRefusesT2(t *testing.T) {
	s := Example1Scheduler(Config{Policy: Chain{GreedyC1{NewestFirst: true}, NoncurrentSafe{}}})
	// GreedyC1-newest deletes T3; NoncurrentSafe must then refuse T2
	// because x's current writer (T3) is gone.
	if s.Txn(Ex1T2) == nil {
		t.Fatal("safe noncurrent variant must keep T2")
	}
	// And the full scheduler's verdict is preserved: T1's write rejected.
	res := s.MustApply(model.WriteFinal(Ex1T1, Ex1X))
	if res.Accepted {
		t.Fatal("T1's write must still be rejected (cycle through T2)")
	}
}

func TestSweepDeleteRejectsActives(t *testing.T) {
	var sawDelete bool
	p := policyFunc(func(sw *Sweep) {
		if sw.Delete(Ex1T1) {
			sawDelete = true
		}
	})
	Example1Scheduler(Config{Policy: p})
	if sawDelete {
		t.Fatal("Sweep.Delete must refuse active transactions")
	}
}

// policyFunc adapts a function to Policy for tests.
type policyFunc func(*Sweep)

func (policyFunc) Name() string      { return "test-policy" }
func (f policyFunc) Sweep(sw *Sweep) { f(sw) }

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{NoGC{}, Lemma1Policy{}, GreedyC1{}, GreedyC1{NewestFirst: true},
		MaxSafeExact{}, NoncurrentSafe{}, CommitGC{}, NoncurrentNaive{}} {
		if p.Name() == "" {
			t.Fatalf("%T has empty name", p)
		}
	}
}

func TestSweepAccessors(t *testing.T) {
	var checked bool
	p := policyFunc(func(sw *Sweep) {
		if sw.Scheduler() == nil {
			t.Error("Scheduler() nil")
		}
		if sw.JustCompleted() == Ex1T3 {
			checked = true
			if got := sw.Completed(); len(got) != 2 {
				t.Errorf("Completed = %v", got)
			}
			if !sw.CheckC1(Ex1T2) {
				t.Error("CheckC1(T2) should hold")
			}
			if sw.CheckC2(map[model.TxnID]struct{}{Ex1T2: {}, Ex1T3: {}}) {
				t.Error("CheckC2 pair should fail")
			}
			if len(sw.Deleted()) != 0 {
				t.Error("nothing deleted yet")
			}
		}
	})
	Example1Scheduler(Config{Policy: p})
	if !checked {
		t.Fatal("sweep for T3's completion never ran")
	}
}
