// Canonical schedules from the paper, reused by tests, experiments, and
// example programs.
package core

import "repro/internal/model"

// Example 1 (Fig. 1) transaction IDs.
const (
	Ex1T1 model.TxnID = 1 // long-running reader, still active
	Ex1T2 model.TxnID = 2 // first read-modify-write of x, completed
	Ex1T3 model.TxnID = 3 // second read-modify-write of x, completed
)

// Ex1X is the contended entity of Example 1.
const Ex1X model.Entity = 0

// Example1Steps returns the schedule p of the paper's Example 1 (Fig. 1):
// "Transaction T1 first reads (among other things) entity x. Subsequently,
// before T1 terminates, in a serial order T2 and T3 read and write x and
// complete." The conflict graph is T1→T2→T3 with chord T1→T3; both T2 and
// T3 satisfy C1, but deleting either one disables the condition for the
// other.
func Example1Steps() []model.Step {
	return []model.Step{
		model.Begin(Ex1T1),
		model.Read(Ex1T1, Ex1X),
		model.Begin(Ex1T2),
		model.Read(Ex1T2, Ex1X),
		model.WriteFinal(Ex1T2, Ex1X),
		model.Begin(Ex1T3),
		model.Read(Ex1T3, Ex1X),
		model.WriteFinal(Ex1T3, Ex1X),
	}
}

// Example1Scheduler replays Example 1 on a fresh scheduler with the given
// config and returns it. It panics if any step is rejected (none can be).
func Example1Scheduler(cfg Config) *Scheduler {
	s := NewScheduler(cfg)
	for _, st := range Example1Steps() {
		res := s.MustApply(st)
		if !res.Accepted {
			panic("core: Example 1 step rejected: " + st.String())
		}
	}
	return s
}
