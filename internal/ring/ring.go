// Package ring provides the bounded lock-free rings the engine's hot paths
// run on. Both types use the Vyukov bounded-MPMC cell protocol restricted
// to many producers and one consumer: every cell carries a sequence number,
// producers claim a slot with one CAS on the enqueue cursor and publish
// with one store to the cell's sequence, and the consumer walks the ring in
// order with plain loads. No mutex is ever taken on the publish path.
//
//   - MPSC is the fire-and-forget ring: TryPush either publishes or reports
//     the ring full (the emit.Bus drops and counts in that case). It is the
//     generalization of the ring proven inside internal/emit.
//   - Mailbox adds a request/reply rendezvous in the same cells: a producer
//     publishes a request, then parks on the cell's sequence word until the
//     consumer writes the reply back into the cell — no reply channel is
//     allocated, pooled, or selected on. This is the engine's shard
//     submission path.
//
// Both share the sleeping-consumer protocol: the consumer announces it is
// about to sleep, re-checks the ring, then parks on a 1-buffered wake
// channel; producers only touch that channel when they observe the
// announcement, so the steady-state publish cost is one atomic load.
package ring

import (
	"runtime"
	"sync/atomic"
	"time"
)

const (
	// claimYields bounds the yields a producer burns on a full ring before
	// it starts sleeping between probes: the consumer is behind, so the
	// right move is to hand it the CPU, then stop burning cycles entirely.
	claimYields = 128
	// claimSleep is the probe interval once a producer on a full ring has
	// exhausted its yields.
	claimSleep = 5 * time.Microsecond
	// replySpins is how many times a reply waiter re-checks the cell
	// (yielding between checks) before parking on the cell's wake channel.
	// A healthy consumer replies within a batch, so most waits end here.
	replySpins = 8
)

// roundUp returns the next power of two ≥ n (minimum 2).
func roundUp(n int) int {
	c := 2
	for c < n {
		c <<= 1
	}
	return c
}

// ---------------------------------------------------------------------------
// MPSC: fire-and-forget ring (the telemetry bus's transport).

// mcell is one MPSC slot. seq == pos means free for the producer claiming
// pos; seq == pos+1 means published; the consumer frees by storing
// pos+capacity, the next lap's base.
type mcell[T any] struct {
	seq atomic.Uint64
	val T
}

// MPSC is a bounded multi-producer single-consumer ring. TryPush never
// blocks; Pop and Park must be called from a single consumer goroutine.
type MPSC[T any] struct {
	cells []mcell[T]
	mask  uint64
	enq   atomic.Uint64
	// deq is owned by the consumer.
	deq uint64

	sleeping atomic.Int32
	wake     chan struct{}
}

// NewMPSC returns an MPSC ring with capacity n rounded up to a power of
// two.
func NewMPSC[T any](n int) *MPSC[T] {
	n = roundUp(n)
	r := &MPSC[T]{
		cells: make([]mcell[T], n),
		mask:  uint64(n - 1),
		wake:  make(chan struct{}, 1),
	}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *MPSC[T]) Cap() int { return len(r.cells) }

// TryPush publishes v and reports whether it was accepted; false means the
// ring is full (the consumer is a full lap behind). It never blocks and is
// safe from any number of goroutines.
func (r *MPSC[T]) TryPush(v T) bool {
	for {
		pos := r.enq.Load()
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if r.enq.CompareAndSwap(pos, pos+1) {
				c.val = v
				c.seq.Store(pos + 1)
				r.wakeConsumer()
				return true
			}
		case d < 0:
			// The cell still holds an unconsumed value from one lap ago.
			return false
		default:
			// Another producer advanced enq between our loads; retry.
		}
	}
}

func (r *MPSC[T]) wakeConsumer() {
	if r.sleeping.Load() != 0 {
		select {
		case r.wake <- struct{}{}:
		default:
		}
	}
}

// Pop consumes the next value in publish order. Single consumer only.
func (r *MPSC[T]) Pop() (T, bool) {
	c := &r.cells[r.deq&r.mask]
	var zero T
	if c.seq.Load() != r.deq+1 {
		return zero, false
	}
	v := c.val
	c.val = zero
	c.seq.Store(r.deq + uint64(len(r.cells)))
	r.deq++
	return v, true
}

// Park blocks the consumer until a producer publishes or stop is closed;
// false means stop fired first. The announce-then-recheck order makes the
// race with a concurrent publish safe: a producer that published before
// seeing the announcement is caught by the recheck, one that published
// after sees the announcement and sends the wake. A nil stop never fires.
func (r *MPSC[T]) Park(stop <-chan struct{}) bool {
	r.sleeping.Store(1)
	if r.cells[r.deq&r.mask].seq.Load() == r.deq+1 {
		r.sleeping.Store(0)
		return true
	}
	select {
	case <-r.wake:
		r.sleeping.Store(0)
		return true
	case <-stop:
		r.sleeping.Store(0)
		return false
	}
}

// ---------------------------------------------------------------------------
// Mailbox: request ring with in-cell reply rendezvous (the shard
// submission path).

// rcell is one Mailbox slot. The sequence states for the producer that
// claimed position pos:
//
//	seq == pos     free, claimable
//	seq == pos+1   request published, awaiting the consumer
//	seq == pos+2   reply written, awaiting the producer's pickup
//	seq == pos+cap freed for the next lap
//
// A fire-and-forget request skips the reply state: the consumer frees the
// cell the moment it copies the request out. wch is the cell's wake
// channel, allocated once at ring construction — never per request — and
// only used when the reply waiter gives up spinning; waiter is the flag
// coordinating that park with the consumer's Reply (a Dekker pair on
// sequentially consistent atomics, so a wake is never lost; stale tokens
// are tolerated by re-checking seq around every park).
type rcell[Req, Rep any] struct {
	seq    atomic.Uint64
	waiter atomic.Int32
	wch    chan struct{}
	fire   bool
	req    Req
	rep    Rep
}

// Mailbox is a bounded multi-producer single-consumer request ring with
// reply delivery through the same cells. Producers call Send (round-trip)
// or Post (fire-and-forget); the single consumer loops Next + Reply.
type Mailbox[Req, Rep any] struct {
	cells []rcell[Req, Rep]
	mask  uint64
	enq   atomic.Uint64
	// deq is owned by the consumer.
	deq uint64

	sleeping atomic.Int32
	wake     chan struct{}
}

// NewMailbox returns a Mailbox with capacity n rounded up to a power of
// two. Capacity bounds the submission backlog: a producer claiming a slot
// on a full ring waits (yield, then sleep-probe) until the consumer frees
// one — backpressure, never an unbounded queue.
func NewMailbox[Req, Rep any](n int) *Mailbox[Req, Rep] {
	n = roundUp(n)
	m := &Mailbox[Req, Rep]{
		cells: make([]rcell[Req, Rep], n),
		mask:  uint64(n - 1),
		wake:  make(chan struct{}, 1),
	}
	for i := range m.cells {
		m.cells[i].seq.Store(uint64(i))
		m.cells[i].wch = make(chan struct{}, 1)
	}
	return m
}

// Cap returns the ring capacity.
func (m *Mailbox[Req, Rep]) Cap() int { return len(m.cells) }

// claim CAS-acquires the next enqueue slot, applying backpressure while
// the ring is full. ok=false means stop was closed while waiting.
func (m *Mailbox[Req, Rep]) claim(stop <-chan struct{}) (*rcell[Req, Rep], uint64, bool) {
	spins := 0
	for {
		pos := m.enq.Load()
		c := &m.cells[pos&m.mask]
		seq := c.seq.Load()
		switch d := int64(seq) - int64(pos); {
		case d == 0:
			if m.enq.CompareAndSwap(pos, pos+1) {
				return c, pos, true
			}
		case d < 0:
			// Full: the consumer (or a slow reply pickup) still owns the
			// cell one lap back.
			select {
			case <-stop:
				return nil, 0, false
			default:
			}
			if spins < claimYields {
				spins++
				runtime.Gosched()
			} else {
				time.Sleep(claimSleep)
			}
		default:
			// Stale enq read; retry.
		}
	}
}

func (m *Mailbox[Req, Rep]) publish(c *rcell[Req, Rep], pos uint64, req Req, fire bool) {
	c.req = req
	c.fire = fire
	c.seq.Store(pos + 1)
	if m.sleeping.Load() != 0 {
		select {
		case m.wake <- struct{}{}:
		default:
		}
	}
}

// Send publishes req and waits for the consumer's reply. sent reports
// whether the request was published (false only when stop closed while the
// ring was full — the consumer never saw it); ok reports whether a reply
// was received. sent && !ok means the request was published but stop
// closed before the consumer replied: the cell is abandoned (a late reply
// may still be written into it, so it is never recycled), which only
// happens during shutdown, when the whole ring is about to be garbage.
func (m *Mailbox[Req, Rep]) Send(req Req, stop <-chan struct{}) (rep Rep, sent, ok bool) {
	c, pos, claimed := m.claim(stop)
	if !claimed {
		return rep, false, false
	}
	m.publish(c, pos, req, false)
	rep, ok = m.await(c, pos, stop)
	return rep, true, ok
}

// Post publishes a fire-and-forget request: the consumer recycles the cell
// as soon as it picks the request up, and no reply is ever written. false
// means stop closed while the ring was full.
func (m *Mailbox[Req, Rep]) Post(req Req, stop <-chan struct{}) bool {
	c, pos, claimed := m.claim(stop)
	if !claimed {
		return false
	}
	m.publish(c, pos, req, true)
	return true
}

// await waits for the reply to the request published at pos: spin briefly,
// then park on the cell's wake channel. The waiter-flag handshake with
// Reply runs on sequentially consistent atomics: either the waiter sees
// the reply's sequence store and skips the park, or Reply sees the waiter
// flag and sends the token — a lost wake would need both loads to precede
// both stores, which seq-cst forbids. Spurious tokens (from a waiter that
// raced past its own park, possibly a lap ago) are absorbed by re-checking
// the sequence around every park.
func (m *Mailbox[Req, Rep]) await(c *rcell[Req, Rep], pos uint64, stop <-chan struct{}) (Rep, bool) {
	done := pos + 2
	for i := 0; i < replySpins; i++ {
		if c.seq.Load() == done {
			return m.take(c, pos), true
		}
		runtime.Gosched()
	}
	c.waiter.Store(1)
	for {
		if c.seq.Load() == done {
			c.waiter.Store(0)
			return m.take(c, pos), true
		}
		select {
		case <-c.wch:
			// Re-check; the token may be stale.
		case <-stop:
			c.waiter.Store(0)
			// Last chance: the reply may have landed while we woke.
			if c.seq.Load() == done {
				return m.take(c, pos), true
			}
			// Abandon the cell (shutdown path; see Send).
			var zero Rep
			return zero, false
		}
	}
}

// take copies the reply out and frees the cell for the next lap.
func (m *Mailbox[Req, Rep]) take(c *rcell[Req, Rep], pos uint64) Rep {
	rep := c.rep
	var zero Rep
	c.rep = zero
	c.seq.Store(pos + uint64(len(m.cells)))
	return rep
}

// Next pops the next published request in order. fire reports a
// fire-and-forget request whose cell is already recycled; otherwise the
// consumer must call Reply(tk, …) exactly once. Single consumer only.
func (m *Mailbox[Req, Rep]) Next() (req Req, tk uint64, fire, ok bool) {
	c := &m.cells[m.deq&m.mask]
	if c.seq.Load() != m.deq+1 {
		return req, 0, false, false
	}
	req = c.req
	var zero Req
	c.req = zero
	tk = m.deq
	fire = c.fire
	m.deq++
	if fire {
		c.seq.Store(tk + uint64(len(m.cells)))
	}
	return req, tk, fire, true
}

// Reply delivers the reply for the request Next returned under ticket tk
// and wakes its parked producer, if any. The producer — not the consumer —
// frees the cell once it picks the reply up, so a slow producer
// backpressures the ring at its own cell instead of losing the reply.
func (m *Mailbox[Req, Rep]) Reply(tk uint64, rep Rep) {
	c := &m.cells[tk&m.mask]
	c.rep = rep
	c.seq.Store(tk + 2)
	if c.waiter.Load() != 0 {
		select {
		case c.wch <- struct{}{}:
		default:
		}
	}
}

// Park blocks the consumer until a producer publishes or stop is closed;
// false means stop fired first. Same protocol as MPSC.Park; a nil stop
// never fires.
func (m *Mailbox[Req, Rep]) Park(stop <-chan struct{}) bool {
	m.sleeping.Store(1)
	if m.cells[m.deq&m.mask].seq.Load() == m.deq+1 {
		m.sleeping.Store(0)
		return true
	}
	select {
	case <-m.wake:
		m.sleeping.Store(0)
		return true
	case <-stop:
		m.sleeping.Store(0)
		return false
	}
}
