package ring

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMPSCOrderedSingleProducer(t *testing.T) {
	r := NewMPSC[int](8)
	for i := 0; i < 8; i++ {
		if !r.TryPush(i) {
			t.Fatalf("TryPush(%d) = false on non-full ring", i)
		}
	}
	if r.TryPush(99) {
		t.Fatal("TryPush succeeded on a full ring")
	}
	for i := 0; i < 8; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop succeeded on an empty ring")
	}
	// Freed cells are claimable again (wraparound).
	if !r.TryPush(42) {
		t.Fatal("TryPush failed after drain")
	}
	if v, ok := r.Pop(); !ok || v != 42 {
		t.Fatalf("Pop after wrap = (%d, %v), want (42, true)", v, ok)
	}
}

func TestMPSCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ n, want int }{{0, 2}, {1, 2}, {3, 4}, {4, 4}, {1000, 1024}} {
		if got := NewMPSC[byte](tc.n).Cap(); got != tc.want {
			t.Errorf("NewMPSC(%d).Cap() = %d, want %d", tc.n, got, tc.want)
		}
	}
}

// TestMPSCConcurrentProducers hammers the ring from many producers with a
// consumer that parks when idle, and checks every pushed value arrives
// exactly once. Run under -race in CI.
func TestMPSCConcurrentProducers(t *testing.T) {
	const producers = 8
	const perProducer = 5000
	r := NewMPSC[int](256)
	stop := make(chan struct{})
	seen := make(map[int]bool, producers*perProducer)
	var pushed atomic.Int64
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		for {
			v, ok := r.Pop()
			if ok {
				if seen[v] {
					t.Errorf("value %d consumed twice", v)
				}
				seen[v] = true
				continue
			}
			if !r.Park(stop) {
				for {
					v, ok := r.Pop()
					if !ok {
						return
					}
					seen[v] = true
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if r.TryPush(p*perProducer + i) {
					pushed.Add(1)
				}
			}
		}(p)
	}
	wg.Wait()
	// Give the consumer a moment to drain the tail, then stop it.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	<-consumed
	if int64(len(seen)) != pushed.Load() {
		t.Fatalf("consumed %d values, pushed %d", len(seen), pushed.Load())
	}
}

func TestMailboxRoundTrip(t *testing.T) {
	m := NewMailbox[int, int](8)
	done := make(chan struct{})
	go func() {
		for {
			req, tk, fire, ok := m.Next()
			if !ok {
				if !m.Park(done) {
					return
				}
				continue
			}
			if fire {
				continue
			}
			m.Reply(tk, req*2)
		}
	}()
	defer close(done)
	for i := 1; i <= 100; i++ {
		rep, sent, ok := m.Send(i, nil)
		if !sent || !ok || rep != i*2 {
			t.Fatalf("Send(%d) = (%d, %v, %v), want (%d, true, true)", i, rep, sent, ok, i*2)
		}
	}
}

// TestMailboxConcurrentSenders verifies the rendezvous under contention:
// every sender must get back exactly the reply to its own request, across
// many laps of a small ring. Run under -race in CI.
func TestMailboxConcurrentSenders(t *testing.T) {
	const senders = 8
	const perSender = 3000
	m := NewMailbox[uint64, uint64](16) // small: force wraparound and full-ring waits
	done := make(chan struct{})
	var served atomic.Int64
	go func() {
		for {
			req, tk, fire, ok := m.Next()
			if !ok {
				if !m.Park(done) {
					return
				}
				continue
			}
			if fire {
				continue
			}
			served.Add(1)
			m.Reply(tk, req^0xdeadbeef)
		}
	}()
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				req := uint64(s)<<32 | uint64(i)
				rep, sent, ok := m.Send(req, nil)
				if !sent || !ok {
					t.Errorf("Send(%#x) failed: sent=%v ok=%v", req, sent, ok)
					return
				}
				if rep != req^0xdeadbeef {
					t.Errorf("Send(%#x) got reply %#x, want %#x", req, rep, req^0xdeadbeef)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	close(done)
	if served.Load() != senders*perSender {
		t.Fatalf("consumer served %d requests, want %d", served.Load(), senders*perSender)
	}
}

// TestMailboxPostFireAndForget checks Post requests are delivered without a
// reply and their cells recycle immediately.
func TestMailboxPostFireAndForget(t *testing.T) {
	m := NewMailbox[int, int](4)
	for i := 0; i < 10; i++ { // > capacity: proves Next recycles fire cells
		if !m.Post(i, nil) {
			t.Fatalf("Post(%d) = false", i)
		}
		req, _, fire, ok := m.Next()
		if !ok || !fire || req != i {
			t.Fatalf("Next = (%d, fire=%v, ok=%v), want (%d, true, true)", req, fire, ok, i)
		}
	}
}

// TestMailboxStopWhileFull checks a producer blocked on a full ring gives
// up when stop closes, reporting the request unsent.
func TestMailboxStopWhileFull(t *testing.T) {
	m := NewMailbox[int, int](2)
	if !m.Post(1, nil) || !m.Post(2, nil) {
		t.Fatal("setup posts failed")
	}
	stop := make(chan struct{})
	errc := make(chan error, 1)
	go func() {
		_, sent, ok := m.Send(3, stop)
		if sent || ok {
			errc <- nil // signal wrong outcome via non-nil check below
		}
		close(errc)
	}()
	time.Sleep(5 * time.Millisecond) // let the sender hit the full ring
	close(stop)
	select {
	case _, wrong := <-errc:
		if wrong {
			t.Fatal("Send on full ring with closed stop reported sent/ok")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Send did not return after stop closed")
	}
}

// TestMailboxStopWhileAwaitingReply checks a producer whose request was
// published but never served unblocks when stop closes, reporting
// sent-but-no-reply.
func TestMailboxStopWhileAwaitingReply(t *testing.T) {
	m := NewMailbox[int, int](4)
	stop := make(chan struct{})
	type outcome struct{ sent, ok bool }
	res := make(chan outcome, 1)
	go func() {
		_, sent, ok := m.Send(7, stop)
		res <- outcome{sent, ok}
	}()
	time.Sleep(5 * time.Millisecond) // let the sender publish and park
	close(stop)
	select {
	case o := <-res:
		if !o.sent || o.ok {
			t.Fatalf("Send = (sent=%v, ok=%v), want (true, false)", o.sent, o.ok)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Send did not return after stop closed")
	}
}

// TestMailboxLateReplyAfterStop pins the shutdown-drain contract: a reply
// written while the producer is giving up is still picked up (ok=true) —
// the last-chance seq check in await.
func TestMailboxLateReplyAfterStop(t *testing.T) {
	m := NewMailbox[int, int](4)
	stop := make(chan struct{})
	close(stop) // stop already fired: await takes the last-chance path
	// Serve the request from a goroutine racing the Send.
	go func() {
		for {
			req, tk, fire, ok := m.Next()
			if ok && !fire {
				m.Reply(tk, req+1)
				return
			}
		}
	}()
	rep, sent, ok := m.Send(10, stop)
	if !sent {
		t.Fatal("Send with room in the ring must publish even when stop is closed")
	}
	if ok && rep != 11 {
		t.Fatalf("late reply = %d, want 11", rep)
	}
	// ok=false is also legal (the consumer lost the race entirely); what
	// must never happen is a wrong reply, checked above.
}
