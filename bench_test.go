// Benchmarks: one testing.B anchor per experiment E1–E13 (each runs the
// harness driver in quick mode), plus micro-benchmarks for the hot paths
// (scheduler steps under each policy, condition checkers, the NP solvers,
// and the baselines). Regenerate the full tables with cmd/txgc-bench.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/locking"
	"repro/internal/model"
	"repro/internal/predeclared"
	"repro/internal/reduction"
	"repro/internal/sat"
	"repro/internal/setcover"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	exp, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables := exp.Run(bench.RunConfig{Seed: int64(i + 1), Quick: true})
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE1Example1(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkE2C1(b *testing.B)             { benchExperiment(b, "E2") }
func BenchmarkE3Bound(b *testing.B)          { benchExperiment(b, "E3") }
func BenchmarkE4SetCover(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5ThreeSAT(b *testing.B)       { benchExperiment(b, "E5") }
func BenchmarkE6Predeclared(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7Policies(b *testing.B)       { benchExperiment(b, "E7") }
func BenchmarkE8Ablation(b *testing.B)       { benchExperiment(b, "E8") }
func BenchmarkE9C3Cost(b *testing.B)         { benchExperiment(b, "E9") }
func BenchmarkE10Noncurrent(b *testing.B)    { benchExperiment(b, "E10") }
func BenchmarkE11CommitGC(b *testing.B)      { benchExperiment(b, "E11") }
func BenchmarkE12Certification(b *testing.B) { benchExperiment(b, "E12") }
func BenchmarkE13EmitTelemetry(b *testing.B) { benchExperiment(b, "E13") }

// --- micro: scheduler step throughput per policy ------------------------

func benchPolicy(b *testing.B, policy core.Policy) {
	cfg := workload.Config{
		Entities: 64, Txns: 200, MaxActive: 8,
		ReadsMin: 1, ReadsMax: 4, WritesMin: 1, WritesMax: 2, Seed: 7,
	}
	// Materialize once so each iteration replays the same stream.
	var steps []model.Step
	gen := workload.New(cfg)
	for {
		st, ok := gen.Next()
		if !ok {
			break
		}
		steps = append(steps, st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	total := 0
	for i := 0; i < b.N; i++ {
		s := core.NewScheduler(core.Config{Policy: policy})
		dead := map[model.TxnID]bool{}
		for _, st := range steps {
			if dead[st.Txn] {
				continue
			}
			res, err := s.Apply(st)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Accepted {
				dead[st.Txn] = true
			}
			total++
		}
	}
	b.ReportMetric(float64(total)/float64(b.N), "steps/op")
}

func BenchmarkStepNoGC(b *testing.B)           { benchPolicy(b, core.NoGC{}) }
func BenchmarkStepLemma1(b *testing.B)         { benchPolicy(b, core.Lemma1Policy{}) }
func BenchmarkStepGreedyC1(b *testing.B)       { benchPolicy(b, core.GreedyC1{}) }
func BenchmarkStepNoncurrentSafe(b *testing.B) { benchPolicy(b, core.NoncurrentSafe{}) }
func BenchmarkStepMaxSafe(b *testing.B)        { benchPolicy(b, core.MaxSafeExact{Budget: 20000}) }

// --- micro: condition checkers ------------------------------------------

func builtScheduler(n int) *core.Scheduler {
	s := core.NewScheduler(core.Config{})
	gen := workload.New(workload.Config{
		Entities: 16, Txns: n, MaxActive: 6,
		ReadsMin: 1, ReadsMax: 3, WritesMin: 1, WritesMax: 2, Seed: 13,
	})
	for {
		st, ok := gen.Next()
		if !ok {
			return s
		}
		res, err := s.Apply(st)
		if err == nil && !res.Accepted {
			gen.NotifyAbort(st.Txn)
		}
	}
}

func BenchmarkCheckC1(b *testing.B) {
	s := builtScheduler(150)
	ids := s.CompletedTxns()
	if len(ids) == 0 {
		b.Skip("no completed transactions")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CheckC1(ids[i%len(ids)])
	}
}

func BenchmarkCheckC2Pair(b *testing.B) {
	s := builtScheduler(150)
	ids := s.CompletedTxns()
	if len(ids) < 2 {
		b.Skip("need two completed transactions")
	}
	set := map[model.TxnID]struct{}{ids[0]: {}, ids[1]: {}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CheckC2(set)
	}
}

func BenchmarkMaxSafeSet(b *testing.B) {
	s := builtScheduler(150)
	completed := s.CompletedTxns()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.MaxSafeSet(s, s.Graph(), completed, 0)
	}
}

func BenchmarkNecessityContinuation(b *testing.B) {
	s := core.Example1Scheduler(core.Config{})
	if err := s.ForceDelete(core.Ex1T3); err != nil {
		b.Fatal(err)
	}
	_, viol := s.CheckC1(core.Ex1T2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NecessityContinuation(s, core.Ex1T2, viol, model.TxnID(1000+i), 77); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro: C3, C4, locking, solvers -------------------------------------

func BenchmarkCheckC3Gadget(b *testing.B) {
	f := &sat.Formula{NumVars: 3, Clauses: []sat.Clause{{1, -2, 3}, {-1, 2, -3}}}
	gad, err := reduction.BuildThreeSAT(f)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := gad.Sched.CheckC3(gad.C); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckC4(b *testing.B) {
	s := predeclared.Example2Scheduler(predeclared.Config{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CheckC4(predeclared.Ex2C)
	}
}

func BenchmarkLocking2PL(b *testing.B) {
	var steps []model.Step
	gen := workload.New(workload.Config{
		Entities: 64, Txns: 200, MaxActive: 8,
		ReadsMin: 1, ReadsMax: 4, WritesMin: 1, WritesMax: 2, Seed: 7,
	})
	for {
		st, ok := gen.Next()
		if !ok {
			break
		}
		steps = append(steps, st)
	}
	byTxn := map[model.TxnID][]model.Step{}
	var order []model.TxnID
	for _, st := range steps {
		if _, ok := byTxn[st.Txn]; !ok {
			order = append(order, st.Txn)
		}
		byTxn[st.Txn] = append(byTxn[st.Txn], st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := locking.NewScheduler()
		queues := map[model.TxnID][]model.Step{}
		for id, q := range byTxn {
			queues[id] = q
		}
		dead := map[model.TxnID]bool{}
		for {
			progress := false
			for _, id := range order {
				q := queues[id]
				if len(q) == 0 || dead[id] || s.IsBlocked(id) {
					continue
				}
				res, err := s.Apply(q[0])
				if err != nil {
					dead[id] = true
					continue
				}
				queues[id] = q[1:]
				progress = true
				if res.Outcome == locking.Aborted {
					dead[id] = true
				}
			}
			if !progress {
				break
			}
		}
	}
}

func BenchmarkDPLL(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var formulas []*sat.Formula
	for i := 0; i < 16; i++ {
		formulas = append(formulas, sat.Random3CNF(rng, 12, 50))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sat.Solve(formulas[i%len(formulas)])
	}
}

func BenchmarkSetCoverExact(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	var instances []*setcover.Instance
	for i := 0; i < 16; i++ {
		instances = append(instances, setcover.Random(rng, 12, 10))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		setcover.MinCover(instances[i%len(instances)])
	}
}

func BenchmarkPredeclaredSteps(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := predeclared.NewScheduler(predeclared.Config{GC: true})
		for id := model.TxnID(1); id <= 50; id++ {
			x := model.Entity(id % 16)
			if _, err := s.Begin(id, predeclared.Decl{Reads: []model.Entity{x}, Writes: []model.Entity{(x + 1) % 16}}); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Read(id, x); err != nil {
				b.Fatal(err)
			}
			if _, err := s.Write(id, (x+1)%16); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkReductionBuild3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	f := sat.Random3CNF(rng, 3, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reduction.BuildThreeSAT(f); err != nil {
			b.Fatal(err)
		}
	}
}

// Guard: the per-experiment benchmarks must cover every registered
// experiment (keeps this file honest when experiments are added).
func TestBenchmarksCoverAllExperiments(t *testing.T) {
	if len(bench.All()) != 13 {
		t.Fatalf("experiment registry changed (%d entries); update bench_test.go", len(bench.All()))
	}
	for _, e := range bench.All() {
		if _, ok := bench.ByID(e.ID); !ok {
			t.Fatalf("experiment %s not resolvable", e.ID)
		}
	}
	_ = fmt.Sprint() // keep fmt imported for future debugging rows
}
