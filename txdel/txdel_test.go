package txdel_test

import (
	"fmt"
	"testing"

	"repro/txdel"
)

// Example demonstrates the quick-start flow: schedule three transactions
// and watch the GreedyC1 policy forget the deletable one.
func Example() {
	s := txdel.NewScheduler(txdel.Config{Policy: txdel.GreedyC1{}})
	// A long-running reader of entity 0...
	s.MustApply(txdel.Begin(1))
	s.MustApply(txdel.Read(1, 0))
	// ...and two read-modify-write transactions of entity 0 (Example 1).
	for id := txdel.TxnID(2); id <= 3; id++ {
		s.MustApply(txdel.Begin(id))
		s.MustApply(txdel.Read(id, 0))
		s.MustApply(txdel.WriteFinal(id, 0))
	}
	fmt.Println("completed retained:", s.NumCompleted())
	fmt.Println("graph nodes:", s.Graph().NumNodes())
	// Output:
	// completed retained: 1
	// graph nodes: 2
}

func TestFacadeBasicFlow(t *testing.T) {
	s := txdel.NewScheduler(txdel.Config{Policy: txdel.GreedyC1{}})
	log := txdel.NewLog()
	gen := txdel.NewWorkload(txdel.WorkloadConfig{Entities: 8, Txns: 40, MaxActive: 4, Seed: 3})
	for {
		st, ok := gen.Next()
		if !ok {
			break
		}
		res, err := s.Apply(st)
		if err != nil {
			t.Fatal(err)
		}
		log.Append(st, res.Accepted)
		if !res.Accepted {
			gen.NotifyAbort(st.Txn)
		}
	}
	if err := log.CheckAcceptedCSR(); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Deleted == 0 {
		t.Fatal("policy never deleted anything")
	}
}

func TestFacadeConditionCheckers(t *testing.T) {
	s := txdel.NewScheduler(txdel.Config{})
	s.MustApply(txdel.Begin(1))
	s.MustApply(txdel.Read(1, 0))
	s.MustApply(txdel.Begin(2))
	s.MustApply(txdel.Read(2, 0))
	s.MustApply(txdel.WriteFinal(2, 0))
	s.MustApply(txdel.Begin(3))
	s.MustApply(txdel.Read(3, 0))
	s.MustApply(txdel.WriteFinal(3, 0))
	if ok, _ := txdel.CheckC1(s, 2); !ok {
		t.Fatal("T2 deletable")
	}
	if ok, _ := txdel.CheckC2(s, txdel.NodeSet{2: {}, 3: {}}); ok {
		t.Fatal("pair not deletable")
	}
	if got := txdel.MaxSafeSet(s, 0); len(got) != 1 {
		t.Fatalf("MaxSafeSet = %v", got)
	}
}

func TestFacadeMultiwrite(t *testing.T) {
	s := txdel.NewMWScheduler()
	s.MustApply(txdel.Begin(1))
	s.MustApply(txdel.Write(1, 0))
	s.MustApply(txdel.Begin(2))
	s.MustApply(txdel.Read(2, 0))
	s.MustApply(txdel.Finish(2))
	if s.Status(2) != txdel.StatusFinished {
		t.Fatalf("T2 = %v, want finished (depends on active T1)", s.Status(2))
	}
	res := s.MustApply(txdel.Finish(1))
	if len(res.Committed) != 2 {
		t.Fatalf("commit propagation: %v", res.Committed)
	}
}

func TestFacadePredeclared(t *testing.T) {
	s := txdel.NewPDScheduler(txdel.PDConfig{GC: true})
	if _, err := s.Begin(1, txdel.Decl{Writes: []txdel.Entity{0}}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Write(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != txdel.Executed {
		t.Fatal("write should execute")
	}
	if len(s.Completed()) != 0 {
		t.Fatal("isolated completed transaction should have been collected")
	}
}

func TestFacadeIsCSR(t *testing.T) {
	good := []txdel.Step{
		txdel.Begin(1), txdel.Read(1, 0), txdel.WriteFinal(1, 0),
		txdel.Begin(2), txdel.Read(2, 0), txdel.WriteFinal(2, 0),
	}
	if !txdel.IsCSR(good) {
		t.Fatal("serial schedule is CSR")
	}
	bad := []txdel.Step{
		txdel.Begin(1), txdel.Begin(2),
		txdel.Read(1, 0), txdel.Read(2, 1),
		txdel.WriteFinal(1, 1), txdel.WriteFinal(2, 0),
	}
	if txdel.IsCSR(bad) {
		t.Fatal("classic non-CSR interleaving")
	}
}

func TestFacadeCertifier(t *testing.T) {
	c := txdel.NewCertifier()
	if _, err := c.Apply(txdel.Begin(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Apply(txdel.Read(1, 0)); err != nil {
		t.Fatal(err)
	}
	res, err := c.Apply(txdel.WriteFinal(1, 0))
	if err != nil || !res.Accepted {
		t.Fatalf("certification: %v %v", res, err)
	}
}
