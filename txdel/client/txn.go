package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/emit"
	"repro/internal/engine"
	"repro/internal/model"
)

// BeginOption configures one Begin.
type BeginOption func(*beginOpts)

type beginOpts struct {
	id        TxnID
	hasID     bool
	footprint []Entity
	shards    []int
	pri       Priority
}

// WithID pins the transaction's ID instead of auto-allocating one. IDs
// must be unique over the DB's lifetime; reusing a live or retained ID
// fails the Begin with ErrProtocol. Callers mixing WithID with
// auto-allocated sessions own the disjointness of the two ID spaces.
func WithID(id TxnID) BeginOption {
	return func(o *beginOpts) { o.id = id; o.hasID = true }
}

// WithFootprint declares entities the transaction will touch (appending to
// any prior option). The engine routes the session to the shard owning the
// footprint — or, when it spans partitions, runs it cross-shard with the
// final Write committing through the two-phase path. Touching an entity
// outside the declared footprint's partitions aborts the transaction with
// ErrMisroute. An empty footprint falls back to hash-routing by ID.
func WithFootprint(xs ...Entity) BeginOption {
	return func(o *beginOpts) { o.footprint = append(o.footprint, xs...) }
}

// WithShards declares participant shards directly instead of deriving them
// from entities — for sessions that will roam a whole partition (or
// several) without a known entity set up front, like an audit scan. The
// session may then touch any entity owned by a listed shard.
func WithShards(shards ...int) BeginOption {
	return func(o *beginOpts) { o.shards = append(o.shards, shards...) }
}

// WithPriority sets the session's admission-control priority;
// PriorityHigh bypasses Config.OverloadWatermark shedding.
func WithPriority(p Priority) BeginOption {
	return func(o *beginOpts) { o.pri = p }
}

type txnState uint8

const (
	txnLive txnState = iota
	txnCommitted
	txnAborted
)

// Txn is one transaction session. A session is single-client state: drive
// it from one goroutine at a time (the DB itself is fully concurrent).
// The zero value is not usable; sessions come from DB.Begin.
type Txn struct {
	db *DB
	id TxnID
	// beginCtx is the context the transaction was begun under; every
	// operation runs under the merge of it and the operation's own
	// context, so a Begin deadline aborts the transaction even while an
	// operation — a two-phase commit included — is in flight.
	beginCtx context.Context
	// began is the session's wall-clock start, carried as the latency of
	// its terminal commit/abort event (zero without a bus — sessions never
	// call the clock unless telemetry wants it).
	began time.Time

	mu    sync.Mutex
	state txnState
	err   error // terminal abort cause; nil while live or committed
	// finished is closed on commit or abort; it stops the context watcher.
	finished chan struct{}
}

// Begin opens a transaction session. The context governs the whole
// transaction: if it is cancelled or its deadline expires while the
// transaction is live, the transaction aborts — even between PREPARE and
// the commit decision of a cross-shard Write, releasing prepared pins and
// registry entries. A Begin against an overloaded shard is shed with
// ErrOverload unless the session has PriorityHigh.
func (db *DB) Begin(ctx context.Context, opts ...BeginOption) (*Txn, error) {
	var bo beginOpts
	for _, o := range opts {
		o(&bo)
	}
	id := bo.id
	if !bo.hasID {
		id = TxnID(db.nextID.Add(1))
	}
	fp := bo.footprint
	for _, s := range bo.shards {
		if s < 0 || s >= db.eng.NumShards() {
			return nil, fmt.Errorf("client: WithShards(%d): shard out of range [0,%d): %w", s, db.eng.NumShards(), ErrProtocol)
		}
		// Entity s is owned by shard s (s mod Shards), so one representative
		// entity per listed shard declares exactly that participant set.
		fp = append(fp, Entity(s))
	}
	res := db.eng.SubmitPriority(ctx, model.BeginDeclared(id, fp...), bo.pri)
	if res.Err != nil {
		return nil, res.Err
	}
	t := &Txn{db: db, id: id, beginCtx: ctx, finished: make(chan struct{})}
	if db.bus != nil {
		t.began = time.Now()
		db.bus.Emit(emit.Event{Kind: emit.KindBegin, Class: emit.ClassOK,
			Shard: emit.NoShard, Txn: id})
	}
	if ctx.Done() != nil {
		go t.watch(ctx)
	}
	return t, nil
}

// opCtx merges the Begin context into an operation's context, so whichever
// dies first aborts the engine-side work. The common cases (only one of
// the two is cancellable) cost nothing; the merged case registers an
// AfterFunc, no goroutine. The engine reports the merged context's cause,
// so a Begin deadline still surfaces as context.DeadlineExceeded.
func (t *Txn) opCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if t.beginCtx.Done() == nil {
		return ctx, nil
	}
	// A Begin context that is already dead (or an op context that cannot
	// die) needs no merge — and the AfterFunc below fires asynchronously,
	// so the already-dead case must be caught synchronously here.
	if ctx.Done() == nil || t.beginCtx.Err() != nil {
		return t.beginCtx, nil
	}
	merged, cancel := context.WithCancelCause(ctx)
	stop := context.AfterFunc(t.beginCtx, func() { cancel(context.Cause(t.beginCtx)) })
	return merged, func() { stop(); cancel(nil) }
}

// watch aborts the transaction the moment its Begin context dies, so a
// deadline fires even while the client is idle between operations.
func (t *Txn) watch(ctx context.Context) {
	select {
	case <-ctx.Done():
		t.mu.Lock()
		if t.state == txnLive {
			t.db.eng.Abort(t.id)
			t.finishLocked(txnAborted, fmt.Errorf("client: T%d: %w (%w)", t.id, ErrTxnAborted, context.Cause(ctx)))
		}
		t.mu.Unlock()
	case <-t.finished:
	}
}

// finishLocked records the terminal state exactly once and emits the
// session's terminal event (Shard == -1, DurNanos = wall-clock lifetime,
// Class = the abort cause's outcome class). Caller holds t.mu and has
// checked t.state == txnLive.
func (t *Txn) finishLocked(s txnState, err error) {
	t.state = s
	t.err = err
	close(t.finished)
	if bus := t.db.bus; bus != nil {
		kind := emit.KindCommit
		if s != txnCommitted {
			kind = emit.KindAbort
		}
		bus.Emit(emit.Event{Kind: kind, Class: engine.ClassOf(err),
			Shard: emit.NoShard, Txn: t.id, DurNanos: int64(time.Since(t.began))})
	}
}

// terminalErrLocked is the error for an operation on a finished session.
func (t *Txn) terminalErrLocked() error {
	if t.state == txnCommitted {
		return fmt.Errorf("client: T%d already committed: %w", t.id, ErrProtocol)
	}
	return t.err
}

// noteLocked folds one engine result into the session state and returns
// the operation's error.
func (t *Txn) noteLocked(res Result) error {
	if res.Err == nil {
		if res.CompletedTxn == t.id {
			t.finishLocked(txnCommitted, nil)
		}
		return nil
	}
	if res.Aborted == t.id || errors.Is(res.Err, ErrClosed) {
		// Remember the cause, but make later operations on the dead session
		// match ErrTxnAborted too (the killing step itself reports the
		// specific cause it returned here).
		stored := res.Err
		if !errors.Is(stored, ErrTxnAborted) {
			stored = fmt.Errorf("client: T%d: %w (%w)", t.id, ErrTxnAborted, res.Err)
		}
		t.finishLocked(txnAborted, stored)
	}
	// Otherwise (ErrProtocol) the transaction is still live: engine state
	// is unchanged and the session may continue.
	return res.Err
}

// ID returns the session's transaction ID.
func (t *Txn) ID() TxnID { return t.id }

// Err returns the session's terminal abort cause: nil while the
// transaction is live or after a successful commit, and the wrapped
// taxonomy error once it aborted (context expiry included).
func (t *Txn) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Read reads one entity. A non-nil error wrapping anything but
// ErrProtocol means the transaction is dead.
func (t *Txn) Read(ctx context.Context, x Entity) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != txnLive {
		return t.terminalErrLocked()
	}
	opctx, stop := t.opCtx(ctx)
	if stop != nil {
		defer stop()
	}
	return t.noteLocked(t.db.eng.SubmitCtx(opctx, model.Read(t.id, x)))
}

// Write installs the transaction's whole write set atomically and commits
// it — the paper's final write; an empty write set is a read-only commit.
// For a cross-partition session the commit runs the two-phase protocol:
// PREPARE votes on every participant, then COMMIT or ABORT. A nil return
// means committed; a non-nil error means the transaction aborted (ErrCycle,
// ErrCrossCycle, ErrMisroute, ErrTxnAborted) unless it wraps ErrProtocol.
func (t *Txn) Write(ctx context.Context, xs ...Entity) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != txnLive {
		return t.terminalErrLocked()
	}
	opctx, stop := t.opCtx(ctx)
	if stop != nil {
		defer stop()
	}
	return t.noteLocked(t.db.eng.SubmitCtx(opctx, model.WriteFinal(t.id, xs...)))
}

// Abort aborts the session, releasing its state — sub-transactions and
// prepared pins included — on every shard. Aborting an already-aborted
// session is a no-op; aborting a committed one returns ErrProtocol.
func (t *Txn) Abort() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.state {
	case txnCommitted:
		return fmt.Errorf("client: abort of committed T%d: %w", t.id, ErrProtocol)
	case txnAborted:
		return nil
	}
	t.db.eng.Abort(t.id)
	t.finishLocked(txnAborted, fmt.Errorf("client: T%d: %w", t.id, ErrTxnAborted))
	return nil
}
