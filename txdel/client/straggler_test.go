package client

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestStragglerReapSurfacesTypedError runs the retention governor end to
// end through the session API: a sleeper session traps a victim past the
// watermark, the background governor loop reaps it, and the session's next
// operation must surface ErrStragglerAborted — still matching
// ErrTxnAborted for legacy branches — with the stable wire code
// "straggler-aborted". Run under -race in CI.
func TestStragglerReapSurfacesTypedError(t *testing.T) {
	db := open(t, Config{
		Shards:                1,
		Policy:                "greedy-c1",
		SweepEveryCompletions: 1,
		RetentionWatermark:    1, // one hostage is one too many
	})
	ctx := context.Background()

	// The sleeper reads entity 2 and then stalls forever.
	sleeper, err := db.Begin(ctx, WithFootprint(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := sleeper.Read(ctx, 2); err != nil {
		t.Fatal(err)
	}
	// The victim writes entity 2 and completes — trapped: the sleeper is an
	// active tight predecessor and no witness can ever appear. Retained hits
	// the watermark; the governor's next tick reaps the sleeper.
	victim, err := db.Begin(ctx, WithFootprint(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Write(ctx, 2); err != nil {
		t.Fatalf("victim commit: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	var opErr error
	for {
		opErr = sleeper.Read(ctx, 4)
		if opErr != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("governor never reaped the sleeper")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if !errors.Is(opErr, ErrStragglerAborted) {
		t.Fatalf("post-reap op err = %v, want ErrStragglerAborted", opErr)
	}
	if !errors.Is(opErr, ErrTxnAborted) {
		t.Fatalf("post-reap op err = %v, must still match ErrTxnAborted", opErr)
	}
	if code := ErrorCode(opErr); code != "straggler-aborted" {
		t.Fatalf("ErrorCode = %q, want \"straggler-aborted\"", code)
	}
	// The session is terminal with the same error.
	if err := sleeper.Err(); !errors.Is(err, ErrStragglerAborted) {
		t.Fatalf("session Err = %v, want ErrStragglerAborted", err)
	}
	if s := db.Stats(); s.Reaped < 1 {
		t.Fatalf("Stats.Reaped = %d, want >= 1", s.Reaped)
	}
}
